//===- tools/spec-lint.cpp - Batch specification checking -------*- C++ -*-===//
//
// Part of the Cable reproduction of "Debugging Temporal Specifications with
// Concept Analysis" (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//
//
// The non-interactive half of the paper's workflow: check a temporal
// specification against program traces and report the violations *grouped
// by concept* instead of as a flat list — §2.1's complaint is precisely
// that "the tool lists each trace with all of the calls it makes ... and
// in no particular order". For each maximal violation cluster the report
// shows the trace count, the shared reference-FA transitions, an
// sk-strings FA summary, and sample traces.
//
// Usage:
//   spec-lint --spec FILE --traces FILE            (scenario traces)
//   spec-lint --spec FILE --runs FILE --seeds a,b  (slice runs first)
//   spec-lint --spec-regex 'REGEX' ...
//
// Exit code: 0 = no violations, 1 = violations reported or an error
// (bad flags, unreadable files, malformed input — diagnosed on stderr
// with file:line:col positions, never an abort).
//
//===----------------------------------------------------------------------===//

#include "cable/Session.h"
#include "fa/Parse.h"
#include "fa/Regex.h"
#include "fa/Templates.h"
#include "support/AtomicFile.h"
#include "support/BuildInfo.h"
#include "support/CrashDump.h"
#include "support/Failpoint.h"
#include "support/Log.h"
#include "support/Metrics.h"
#include "support/RunReport.h"
#include "support/StringUtil.h"
#include "support/Subprocess.h"
#include "support/TraceEvent.h"
#include "verifier/Verifier.h"

#include <cstdarg>
#include <cstdlib>
#include <cstdio>
#include <cstring>
#include <optional>
#include <string>

#include <csignal>
#include <unistd.h>

using namespace cable;

namespace {

/// The cluster report accumulates here so it can go to stdout and (with
/// --report FILE) to an atomically-replaced file in one rendering pass.
void appendf(std::string &Out, const char *Fmt, ...)
    __attribute__((format(printf, 2, 3)));
void appendf(std::string &Out, const char *Fmt, ...) {
  va_list Ap;
  va_start(Ap, Fmt);
  char Stack[512];
  va_list Copy;
  va_copy(Copy, Ap);
  int N = std::vsnprintf(Stack, sizeof(Stack), Fmt, Ap);
  va_end(Ap);
  if (N < 0) {
    va_end(Copy);
    return;
  }
  if (static_cast<size_t>(N) < sizeof(Stack)) {
    Out.append(Stack, static_cast<size_t>(N));
  } else {
    std::string Big(static_cast<size_t>(N) + 1, '\0');
    std::vsnprintf(Big.data(), Big.size(), Fmt, Copy);
    Big.resize(static_cast<size_t>(N));
    Out += Big;
  }
  va_end(Copy);
}

bool parseCount(const std::string &Text, unsigned long &Out) {
  std::optional<unsigned long> N = parseUnsignedLong(Text);
  if (!N)
    return false;
  Out = *N;
  return true;
}

void printUsage() {
  std::printf(
      "spec-lint: check a temporal specification against traces and group\n"
      "the violations with concept analysis\n"
      "\n"
      "  --spec FILE        specification automaton (fa/Parse format)\n"
      "  --spec-regex RE    specification as a regex (fa/Regex syntax)\n"
      "  --traces FILE      scenario traces, one per line\n"
      "  --runs FILE        full program runs; sliced into scenarios\n"
      "  --seeds a,b,c      seed event names for --runs slicing\n"
      "  --max-samples N    sample traces shown per cluster (default 3)\n"
      "  --report FILE      also write the cluster report to FILE\n"
      "                     (atomic replace: readers never see a torn file)\n"
      "  --dot FILE         write the violation lattice as Graphviz DOT\n"
      "  --threads N        lattice-construction workers (0 = hardware\n"
      "                     concurrency, 1 = serial; default 0)\n"
      "  --shard-workers N  cluster violations in N crash-isolated worker\n"
      "                     processes (0 = off, the default); identical\n"
      "                     result at any worker count, degrading\n"
      "                     in-process when workers keep failing; worker\n"
      "                     telemetry is merged into the parent's metrics\n"
      "                     and trace\n"
      "  --shard-timeout MS per-shard deadline before a wedged worker is\n"
      "                     killed and its partition reassigned\n"
      "                     (default 30000)\n"
      "  --shard-retries N  retries per partition beyond the first attempt\n"
      "                     before it is computed in the supervisor\n"
      "                     (default 3)\n"
      "  --time-budget MS   wall-clock limit per pipeline phase (scenario\n"
      "                     checking, violation clustering)\n"
      "  --max-concepts N   stop clustering after enumerating N concepts\n"
      "  --keep-going       on budget exhaustion, report what was computed\n"
      "                     (prefix of scenarios, partial clusters) instead\n"
      "                     of exiting with an error\n"
      "  --cache-dir DIR    content-addressed lattice artifact store for\n"
      "                     the violation-clustering step: verified warm\n"
      "                     hits skip the rebuild, corrupt artifacts are\n"
      "                     quarantined and rebuilt, concurrent cold\n"
      "                     starts build once (per-key flock)\n"
      "                     (default: $CABLE_CACHE_DIR, else off)\n"
      "  --no-cache         ignore $CABLE_CACHE_DIR and any --cache-dir\n"
      "  --cache-verify M   'full' checks every artifact checksum on load\n"
      "                     (default); 'header' skips the body CRC\n"
      "  --list-failpoints  list fault-injection point names and exit\n"
      "\n"
      "observability (see docs/OBSERVABILITY.md):\n"
      "  --version          print version, git SHA, and build type; exit\n"
      "  --stats            print the metrics table before exiting\n"
      "  --metrics-out FILE write a cable-metrics/1 JSON snapshot at exit\n"
      "  --trace-out FILE   record tracing spans, write Chrome trace-event\n"
      "                     JSON at exit (Perfetto / chrome://tracing);\n"
      "                     sharded runs show one track per worker process\n"
      "                     with dispatch -> compute -> merge flow arrows\n"
      "  --run-report FILE  write a cable-run-report/1 JSON document, with\n"
      "                     a sharded section for multi-process runs\n"
      "  --log-out FILE     write structured cable-log/1 JSONL at exit\n"
      "                     (default: $CABLE_LOG, else off); sharded runs\n"
      "                     merge worker records into one log\n"
      "  --log-level LEVEL  debug|info|warn|error (default info)\n"
      "                     $CABLE_CRASH_DIR=DIR arms the flight recorder:\n"
      "                     a fatal signal, std::terminate, or injected\n"
      "                     crash leaves DIR/crash.<pid>.json\n");
}

/// Observability outputs, written on every exit path of main.
struct ObservabilityOptions {
  std::string TraceOut;
  std::string MetricsOut;
  std::string RunReportOut;
  std::string LogOut;
  bool PrintStats = false;
  std::vector<std::string> Args;
  bool Truncated = false;
  /// The pipeline ran to a report. Distinguishes exit 1 = "violations
  /// found" (clean) from exit 1 = "bad flags / unreadable input".
  bool Completed = false;
} GObs;

void emitObservability(int ExitCode) {
  if (GObs.PrintStats)
    std::printf("\n-- run statistics --\n%s", Metrics::renderTable().c_str());
  if (!GObs.TraceOut.empty()) {
    if (Status St = TraceLog::writeJson(GObs.TraceOut, "spec-lint");
        !St.isOk())
      std::fprintf(stderr, "warning: cannot write trace: %s\n",
                   St.diagnostic().render().c_str());
  }
  if (!GObs.MetricsOut.empty()) {
    if (Status St = writeMetricsJson(GObs.MetricsOut, "spec-lint");
        !St.isOk())
      std::fprintf(stderr, "warning: cannot write metrics: %s\n",
                   St.diagnostic().render().c_str());
  }
  if (!GObs.RunReportOut.empty()) {
    RunReportInfo Info;
    Info.Tool = "spec-lint";
    Info.Args = GObs.Args;
    Info.Truncated = GObs.Truncated;
    // Exit code 1 also covers "violations found", which is a clean run;
    // CleanExit means "the pipeline produced its report".
    Info.CleanExit = GObs.Completed;
    Info.ExitCode = ExitCode;
    if (Status St = writeRunReport(GObs.RunReportOut, Info); !St.isOk())
      std::fprintf(stderr, "warning: cannot write run report: %s\n",
                   St.diagnostic().render().c_str());
  }
  if (!GObs.LogOut.empty()) {
    if (Status St = Log::writeJsonl(GObs.LogOut, "spec-lint"); !St.isOk())
      std::fprintf(stderr, "warning: cannot write log: %s\n",
                   St.diagnostic().render().c_str());
  }
}

/// SIGINT/SIGTERM: take any live shard workers down with the process and
/// die with the conventional 128+signal code. Report/DOT outputs go
/// through AtomicFile (write-temp + fsync + rename), so there is no
/// half-written state to make durable — a partially rendered report
/// simply never replaces the previous file.
extern "C" void onTerminateSignal(int Sig) {
  Subprocess::killActiveFromSignalHandler();
  // Flush --metrics-out/--run-report/--log-out through the signal-safe
  // writer; an interrupted lint leaves evidence, not empty paths.
  CrashDump::writeArtifactsFromSignal(128 + Sig);
  ::_exit(128 + Sig);
}

void installSignalHandlers() {
  struct sigaction SA;
  std::memset(&SA, 0, sizeof(SA));
  SA.sa_handler = onTerminateSignal;
  ::sigaction(SIGINT, &SA, nullptr);
  ::sigaction(SIGTERM, &SA, nullptr);
  // A dead pipe reader (a closed pager, a crashed shard worker's socket)
  // must surface as an EPIPE error status, not kill the process.
  std::memset(&SA, 0, sizeof(SA));
  SA.sa_handler = SIG_IGN;
  ::sigaction(SIGPIPE, &SA, nullptr);
}

int runLint(int Argc, char **Argv) {
  installSignalHandlers();
  for (int I = 1; I < Argc; ++I)
    GObs.Args.emplace_back(Argv[I]);
  if (Status St = Failpoint::configureFromEnv(); !St.isOk()) {
    std::fprintf(stderr, "error: CABLE_FAILPOINTS: %s\n",
                 St.message().c_str());
    return 1;
  }
  std::string SpecFile, SpecRegex, TracesFile, RunsFile, SeedsArg;
  std::string ReportFile, DotFile;
  size_t MaxSamples = 3;
  bool NoCache = false;
  SessionOptions BuildOpts;
  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    auto Next = [&]() -> std::string {
      return I + 1 < Argc ? Argv[++I] : std::string();
    };
    if (Arg == "--spec")
      SpecFile = Next();
    else if (Arg == "--spec-regex")
      SpecRegex = Next();
    else if (Arg == "--traces")
      TracesFile = Next();
    else if (Arg == "--runs")
      RunsFile = Next();
    else if (Arg == "--seeds")
      SeedsArg = Next();
    else if (Arg == "--report")
      ReportFile = Next();
    else if (Arg == "--dot")
      DotFile = Next();
    else if (Arg == "--max-samples" || Arg == "--threads" ||
             Arg == "--time-budget" || Arg == "--max-concepts" ||
             Arg == "--shard-workers" || Arg == "--shard-timeout" ||
             Arg == "--shard-retries") {
      std::string Value = Next();
      unsigned long N;
      if (!parseCount(Value, N)) {
        std::fprintf(stderr, "error: %s expects a number, got '%s'\n",
                     Arg.c_str(), Value.c_str());
        return 1;
      }
      if (Arg == "--max-samples")
        MaxSamples = N;
      else if (Arg == "--threads")
        BuildOpts.NumThreads = static_cast<unsigned>(N);
      else if (Arg == "--time-budget")
        BuildOpts.ResourceBudget.TimeLimit = std::chrono::milliseconds(N);
      else if (Arg == "--shard-workers")
        BuildOpts.ShardWorkers = static_cast<unsigned>(N);
      else if (Arg == "--shard-timeout")
        BuildOpts.ShardTimeout = std::chrono::milliseconds(N);
      else if (Arg == "--shard-retries")
        BuildOpts.ShardRetries = static_cast<unsigned>(N);
      else
        BuildOpts.ResourceBudget.MaxConcepts = N;
    } else if (Arg == "--keep-going") {
      BuildOpts.KeepGoing = true;
    } else if (Arg == "--cache-dir") {
      BuildOpts.CacheDir = Next();
    } else if (Arg == "--no-cache") {
      NoCache = true;
    } else if (Arg == "--cache-verify") {
      std::string Mode = Next();
      if (Mode == "full")
        BuildOpts.CacheVerifyMode = LatticeVerify::Full;
      else if (Mode == "header")
        BuildOpts.CacheVerifyMode = LatticeVerify::Header;
      else {
        std::fprintf(stderr,
                     "error: --cache-verify expects 'full' or 'header', "
                     "got '%s'\n",
                     Mode.c_str());
        return 1;
      }
    } else if (Arg == "--list-failpoints") {
      for (const std::string &Name : Failpoint::registeredNames())
        std::printf("%s\n", Name.c_str());
      return 0;
    } else if (Arg == "--version") {
      std::printf("%s\n", buildinfo::versionLine("spec-lint").c_str());
      return 0;
    } else if (Arg == "--stats") {
      GObs.PrintStats = true;
      Metrics::setEnabled(true);
    } else if (Arg == "--metrics-out") {
      GObs.MetricsOut = Next();
      Metrics::setEnabled(true);
    } else if (Arg == "--run-report") {
      GObs.RunReportOut = Next();
      Metrics::setEnabled(true);
    } else if (Arg == "--trace-out") {
      GObs.TraceOut = Next();
      TraceLog::setEnabled(true);
      TraceLog::setThreadName("main");
    } else if (Arg == "--log-out") {
      GObs.LogOut = Next();
      Log::setEnabled(true);
    } else if (Arg == "--log-level") {
      std::string LevelText = Next();
      Log::Level L;
      if (!Log::parseLevel(LevelText, L)) {
        std::fprintf(stderr,
                     "error: --log-level expects debug, info, warn, or "
                     "error, got '%s'\n",
                     LevelText.c_str());
        return 1;
      }
      Log::setLevel(L);
    } else if (Arg == "--help" || Arg == "-h") {
      printUsage();
      return 0;
    } else {
      std::fprintf(stderr, "unknown option '%s'\n", Arg.c_str());
      return 1;
    }
  }
  if ((SpecFile.empty() == SpecRegex.empty()) ||
      (TracesFile.empty() == RunsFile.empty())) {
    printUsage();
    return 1;
  }
  if (BuildOpts.CacheDir.empty() && !NoCache)
    if (const char *Env = std::getenv("CABLE_CACHE_DIR"))
      BuildOpts.CacheDir = Env;
  if (NoCache)
    BuildOpts.CacheDir.clear();
  if (GObs.LogOut.empty())
    if (const char *Env = std::getenv("CABLE_LOG"); Env && *Env) {
      GObs.LogOut = Env;
      Log::setEnabled(true);
    }
  // Flight recorder (no-op without $CABLE_CRASH_DIR) and the signal-exit
  // artifact paths, armed before any input is read.
  CrashDump::install("spec-lint");
  CrashDump::registerSignalArtifacts("spec-lint", GObs.LogOut,
                                     GObs.MetricsOut, GObs.RunReportOut,
                                     GObs.Args);

  // Load traces or runs.
  std::string InputPath = TracesFile.empty() ? RunsFile : TracesFile;
  StatusOr<std::string> InputText = readFileToString(InputPath);
  if (!InputText) {
    std::fprintf(stderr, "%s\n",
                 InputText.status().diagnostic().render().c_str());
    return 1;
  }
  Diagnostic Diag;
  std::optional<TraceSet> Input = TraceSet::parse(*InputText, Diag);
  if (!Input) {
    Diag.File = InputPath;
    std::fprintf(stderr, "%s\n", Diag.render().c_str());
    return 1;
  }

  // Load the specification.
  Automaton Spec;
  if (!SpecFile.empty()) {
    StatusOr<std::string> SpecText = readFileToString(SpecFile);
    if (!SpecText) {
      std::fprintf(stderr, "%s\n",
                   SpecText.status().diagnostic().render().c_str());
      return 1;
    }
    std::optional<Automaton> FA =
        parseAutomaton(*SpecText, Input->table(), Diag);
    if (!FA) {
      Diag.File = SpecFile;
      std::fprintf(stderr, "%s\n", Diag.render().c_str());
      return 1;
    }
    Spec = std::move(*FA);
  } else {
    std::optional<Automaton> FA = compileRegex(SpecRegex, Input->table(), Diag);
    if (!FA) {
      Diag.File = "--spec-regex";
      std::fprintf(stderr, "%s\n", Diag.render().c_str());
      return 1;
    }
    Spec = FA->withoutEpsilons();
  }

  // Verify (budgeted: one checkpoint per scenario).
  BudgetMeter VerifyMeter(BuildOpts.ResourceBudget);
  VerificationResult R;
  TraceSpan LintSpan("spec-lint", static_cast<int64_t>(Input->size()));
  if (!RunsFile.empty()) {
    ExtractorOptions Extract;
    for (const std::string &Seed : splitString(SeedsArg, ','))
      if (!Seed.empty())
        Extract.SeedNames.push_back(Seed);
    if (Extract.SeedNames.empty()) {
      std::fprintf(stderr, "error: --runs requires --seeds\n");
      return 1;
    }
    Extract.TransitiveValues = true;
    R = verifyAgainstRuns(*Input, Spec, Extract, VerifyMeter);
  } else {
    R = verifyScenarios(*Input, Spec, VerifyMeter);
  }
  if (R.Truncated) {
    GObs.Truncated = true;
    if (!BuildOpts.KeepGoing) {
      std::fprintf(stderr, "%s\n",
                   R.CheckStatus.diagnostic().render().c_str());
      std::fprintf(stderr,
                   "error: scenario checking was truncated; rerun with "
                   "--keep-going to report the checked prefix\n");
      return 1;
    }
    Diagnostic Warn = R.CheckStatus.diagnostic();
    Warn.Level = Severity::Warning;
    std::printf("%s\n", Warn.render().c_str());
    std::printf("warning: only the first %zu scenario(s) were checked\n",
                R.NumScenarios);
  }

  std::string Report;
  appendf(Report,
          "spec-lint: %zu scenario(s) checked, %zu violation(s), "
          "%zu accepted\n",
          R.NumScenarios, R.Violations.size(), R.Accepted.size());
  auto Finish = [&](int Code) {
    std::printf("%s", Report.c_str());
    if (!ReportFile.empty()) {
      if (Status St = AtomicFile::write(ReportFile, Report); !St.isOk()) {
        std::fprintf(stderr, "%s\n", St.diagnostic().render().c_str());
        return 1;
      }
    }
    GObs.Completed = true;
    return Code;
  };
  if (R.Violations.empty()) {
    if (!DotFile.empty())
      appendf(Report, "no violations; %s not written\n", DotFile.c_str());
    return Finish(0);
  }

  // Cluster the violations and report the maximal clusters (the top
  // concept's children), each with the three §4.1 summaries.
  Automaton Ref = makeUnorderedFA(templateAlphabet(R.Violations.traces()),
                                  R.Violations.table());
  StatusOr<Session> Built =
      Session::build(std::move(R.Violations), std::move(Ref), BuildOpts);
  if (!Built) {
    std::fprintf(stderr, "%s\n", Built.status().diagnostic().render().c_str());
    return 1;
  }
  Session &S = *Built;
  // Cache trouble degrades to a plain rebuild; each incident still gets a
  // warning so a corrupting disk or a foreign file in the store is seen.
  for (const Status &CacheSt : S.cacheDiagnostics()) {
    Diagnostic Warn = CacheSt.diagnostic();
    Warn.Level = Severity::Warning;
    std::fprintf(stderr, "%s\n", Warn.render().c_str());
  }
  if (S.truncated()) {
    GObs.Truncated = true;
    const Diagnostic &D = S.buildStatus().diagnostic();
    if (!BuildOpts.KeepGoing) {
      std::fprintf(stderr, "%s\n", D.render().c_str());
      std::fprintf(stderr,
                   "error: violation clustering was truncated; rerun with "
                   "--keep-going to report the partial clusters\n");
      return 1;
    }
    Diagnostic Warn = D;
    Warn.Level = Severity::Warning;
    std::printf("%s\n", Warn.render().c_str());
    std::printf("warning: clusters below are from a partial lattice; the "
                "baseline identical-trace clustering still has all %zu "
                "class(es)\n",
                S.baselineClasses().numClasses());
  }
  const ConceptLattice &L = S.lattice();

  appendf(Report,
          "\n%zu unique violation trace(s) in %zu concept(s); maximal "
          "clusters:\n",
          S.numObjects(), L.size());
  std::vector<Session::NodeId> Clusters = L.children(L.top());
  if (Clusters.empty())
    Clusters.push_back(L.top());
  for (Session::NodeId Id : Clusters) {
    const Concept &C = L.node(Id);
    if (C.Extent.none())
      continue;
    appendf(Report,
            "\n== cluster c%u: %zu trace(s), %zu shared transition(s)\n", Id,
            C.Extent.count(), C.Intent.count());
    appendf(Report, "   transitions:");
    for (TransitionId TI : S.showTransitions(Id))
      appendf(Report, " %s",
              S.referenceFA().transition(TI).Label.render(S.table()).c_str());
    appendf(Report, "\n   summary FA:\n");
    Automaton FA = S.showFA(Id, TraceSelect::All);
    std::string Text = FA.renderText(S.table());
    // Indent the FA listing.
    std::string Indented = "     ";
    for (char Ch : Text) {
      Indented += Ch;
      if (Ch == '\n')
        Indented += "     ";
    }
    appendf(Report, "%s\n", Indented.c_str());
    size_t Shown = 0;
    for (size_t Obj : S.showTraces(Id, TraceSelect::All)) {
      if (++Shown > MaxSamples) {
        appendf(Report, "   ...\n");
        break;
      }
      appendf(Report, "   %s\n", S.object(Obj).render(S.table()).c_str());
    }
  }
  if (!DotFile.empty()) {
    if (Status St = AtomicFile::write(DotFile, S.renderDot("spec_lint"));
        !St.isOk()) {
      std::fprintf(stderr, "%s\n", St.diagnostic().render().c_str());
      return 1;
    }
  }
  return Finish(1);
}

} // namespace

int main(int Argc, char **Argv) {
  int Code = runLint(Argc, Argv);
  emitObservability(Code);
  CrashDump::disarm();
  return Code;
}
