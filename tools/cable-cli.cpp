//===- tools/cable-cli.cpp - The Cable tool ---------------------*- C++ -*-===//
//
// Part of the Cable reproduction of "Debugging Temporal Specifications with
// Concept Analysis" (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//
//
// A command-line rendition of the paper's Dotty-based Cable tool (§4). It
// loads traces (from a file, or a generated protocol workload), clusters
// them against a reference FA, and offers the paper's commands: concept
// listing with the green/yellow/red states, the three summary views, the
// `Label traces` command with its selection semantics, Focus sub-sessions
// with label merge-back, and DOT export. Reads commands from stdin (or a
// --script file), so it works both interactively and scripted.
//
// With --journal DIR every command is write-ahead logged before it is
// applied and the session state is snapshotted periodically, so a crash,
// Ctrl-C, or I/O failure never loses labeling work: restarting with the
// same --journal DIR (and the same input flags) replays the snapshot plus
// the journal tail through the same command dispatcher and resumes exactly
// where the session died.
//
// Usage:
//   cable-cli --traces FILE [--ref REGEX | --unordered | --seed EVENT]
//   cable-cli --protocol NAME [--seed EVENT | ...]   (synthetic workload)
//   cable-cli --help
//
//===----------------------------------------------------------------------===//

#include "cable/Advisor.h"
#include "cable/Journal.h"
#include "cable/Session.h"
#include "cable/Strategies.h"
#include "cable/WellFormed.h"
#include "fa/Dfa.h"
#include "fa/Parse.h"
#include "fa/Regex.h"
#include "fa/Templates.h"
#include "support/AtomicFile.h"
#include "support/BuildInfo.h"
#include "support/CrashDump.h"
#include "support/Failpoint.h"
#include "support/Log.h"
#include "support/Metrics.h"
#include "support/RNG.h"
#include "support/RunReport.h"
#include "support/StringUtil.h"
#include "support/Subprocess.h"
#include "support/TraceEvent.h"
#include "workload/Generator.h"
#include "workload/Oracle.h"
#include "workload/ReferenceFA.h"

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include <fcntl.h>
#include <unistd.h>

using namespace cable;

namespace {

void printUsage() {
  std::printf(
      "cable-cli: debug temporal specifications with concept analysis\n"
      "\n"
      "input (one of):\n"
      "  --traces FILE      load traces (one per line: name or name(v0,..))\n"
      "  --protocol NAME    generate the named synthetic workload\n"
      "                     (one of the 17 evaluation protocols or 'stdio')\n"
      "\n"
      "reference FA (default: unordered template):\n"
      "  --ref REGEX        compile REGEX (fa/Regex syntax)\n"
      "  --ref-file FILE    load an automaton in the fa/Parse format\n"
      "  --seed EVENT       seed-order template on EVENT, e.g. XtFree(v0)\n"
      "  --recommended      protocol's recommended FA (with --protocol)\n"
      "\n"
      "performance:\n"
      "  --threads N        lattice-construction workers (0 = hardware\n"
      "                     concurrency, 1 = serial; same lattice either\n"
      "                     way; default 0)\n"
      "  --shard-workers N  build the lattice in N crash-isolated worker\n"
      "                     processes under a supervising parent (0 = off,\n"
      "                     the default); identical lattice at any worker\n"
      "                     count, degrading in-process when forking is\n"
      "                     unavailable or workers keep failing; worker\n"
      "                     metrics and trace spans are merged back into\n"
      "                     the --stats/--metrics-out/--trace-out views\n"
      "  --shard-timeout MS per-shard deadline before a wedged worker is\n"
      "                     killed and its partition reassigned\n"
      "                     (default 30000)\n"
      "  --shard-retries N  retries per partition beyond the first attempt\n"
      "                     before it is computed in the supervisor\n"
      "                     (default 3)\n"
      "\n"
      "lattice cache:\n"
      "  --cache-dir DIR    content-addressed lattice artifact store: a\n"
      "                     completed build publishes its lattice (atomic\n"
      "                     write-temp + fsync + rename), later runs with\n"
      "                     the same context x builder x budget key start\n"
      "                     from a verified mmap instead of rebuilding;\n"
      "                     concurrent cold starts build once (per-key\n"
      "                     flock single-flight); corrupt artifacts are\n"
      "                     quarantined to <key>.corrupt.<n> and rebuilt\n"
      "                     (default: $CABLE_CACHE_DIR, else off)\n"
      "  --no-cache         ignore $CABLE_CACHE_DIR and any --cache-dir\n"
      "  --cache-verify M   'full' verifies every section checksum on\n"
      "                     load (default); 'header' skips the body CRC\n"
      "                     (structural bounds are always checked)\n"
      "\n"
      "resource budgets:\n"
      "  --time-budget MS   wall-clock limit for lattice construction\n"
      "  --max-concepts N   stop after enumerating N concepts\n"
      "  --keep-going       on budget exhaustion, continue with the partial\n"
      "                     lattice and the (always complete) identical-\n"
      "                     trace baseline clustering instead of exiting\n"
      "\n"
      "durability:\n"
      "  --journal DIR      write-ahead log + snapshots in DIR; restarting\n"
      "                     with the same DIR (and input flags) recovers\n"
      "                     and resumes the session after a crash\n"
      "  --snapshot-every N compact the journal every N commands\n"
      "                     (default 25; 0 = after every command)\n"
      "  --journal-sync M   when appends reach disk: 'always' fsyncs each\n"
      "                     command before applying it (interactive\n"
      "                     default; at most the in-flight command is\n"
      "                     lost, even to power failure), 'batch' defers\n"
      "                     the fsync to snapshots and shutdown (--script\n"
      "                     default; a process crash still loses nothing,\n"
      "                     and the script re-seeds anything a power cut\n"
      "                     could drop)\n"
      "  --script FILE      read commands from FILE instead of stdin; with\n"
      "                     --journal, resumes at the first line the\n"
      "                     journal has not yet made durable\n"
      "  --list-failpoints  list fault-injection point names and exit\n"
      "\n"
      "observability (see docs/OBSERVABILITY.md):\n"
      "  --version          print version, git SHA, and build type; exit\n"
      "  --stats            print the metrics table when the session ends\n"
      "  --metrics-out FILE write a cable-metrics/1 JSON snapshot at exit\n"
      "  --trace-out FILE   record tracing spans and write Chrome\n"
      "                     trace-event JSON at exit (open in Perfetto or\n"
      "                     chrome://tracing); with --shard-workers the\n"
      "                     file shows every worker process as its own\n"
      "                     track, flow arrows linking each block's\n"
      "                     dispatch -> compute -> merge\n"
      "  --run-report FILE  write a cable-run-report/1 JSON document (tool,\n"
      "                     argv, build stamp, metrics, truncation, and a\n"
      "                     sharded section for multi-process runs) at exit\n"
      "  --log-out FILE     write structured cable-log/1 JSONL at exit\n"
      "                     (default: $CABLE_LOG, else off); with\n"
      "                     --shard-workers, one merged multi-process log\n"
      "  --log-level LEVEL  debug|info|warn|error (default info)\n"
      "                     $CABLE_CRASH_DIR=DIR arms the flight recorder:\n"
      "                     a fatal signal, std::terminate, or injected\n"
      "                     crash leaves DIR/crash.<pid>.json\n"
      "\n"
      "commands (stdin):\n"
      "  ls                  list concepts (state, size, similarity)\n"
      "  fa ID [SEL]         Show FA summary (SEL: all|unlabeled|LABEL)\n"
      "  transitions ID      Show transitions of the concept's intent\n"
      "  traces ID [SEL]     Show traces\n"
      "  label ID NAME [SEL] Label traces (SEL: all|unlabeled|from OLD)\n"
      "  focus ID REGEX      start a Focus sub-session with REGEX\n"
      "  unfocus             end the sub-session, merging labels back\n"
      "  check NAME          FA over all traces labeled NAME (Step 2b)\n"
      "  diff NAME NAME      shortest trace separating two labels' FAs\n"
      "  suggest ID          rank focus seeds that would split concept ID\n"
      "  meet ID ID          greatest lower bound of two concepts\n"
      "  join ID ID          least upper bound of two concepts\n"
      "  undo                revert the last labeling operation\n"
      "  save FILE           save the current labels (atomic, checksummed)\n"
      "  load FILE           restore labels saved with 'save'\n"
      "  oracle              auto-label with the protocol oracle (demo)\n"
      "  dot FILE            write the lattice as Graphviz DOT (atomic)\n"
      "  classes             list identical-trace baseline classes (§5)\n"
      "  status              labeling progress\n"
      "  stats               metrics recorded so far (arm with --stats,\n"
      "                      --metrics-out, or --run-report)\n"
      "  help / quit\n");
}

struct CliState {
  std::unique_ptr<Session> Base;
  // Focus stack: sessions above Base; labels merge down on unfocus.
  std::vector<std::unique_ptr<FocusSession>> Stack;
  std::optional<ProtocolModel> Protocol;

  // Durability (idle unless --journal was given).
  Journal Wal;
  unsigned long SnapshotEvery = 25;
  uint64_t SinceSnapshot = 0;

  Session &current() {
    return Stack.empty() ? *Base : Stack.back()->Sub;
  }
  Session &parentOfTop() {
    return Stack.size() <= 1 ? *Base : Stack[Stack.size() - 2]->Sub;
  }
};

std::optional<TraceSelect> parseSelect(const std::vector<std::string> &Args,
                                       size_t From, Session &S,
                                       std::optional<LabelId> &FromLabel) {
  if (Args.size() <= From)
    return TraceSelect::All;
  if (Args[From] == "all")
    return TraceSelect::All;
  if (Args[From] == "unlabeled")
    return TraceSelect::Unlabeled;
  if (Args[From] == "from" && Args.size() > From + 1) {
    FromLabel = S.internLabel(Args[From + 1]);
    return TraceSelect::WithLabel;
  }
  // A bare label name.
  FromLabel = S.internLabel(Args[From]);
  return TraceSelect::WithLabel;
}

std::optional<Session::NodeId> parseConcept(const std::string &Text,
                                            const Session &S) {
  std::string_view Id = Text;
  if (!Id.empty() && Id[0] == 'c')
    Id.remove_prefix(1);
  std::optional<unsigned long> N = parseUnsignedLong(Id);
  if (!N) {
    std::printf("error: bad concept id '%s'\n", Text.c_str());
    return std::nullopt;
  }
  if (*N >= S.lattice().size()) {
    std::printf("error: concept %lu out of range (lattice has %zu)\n", *N,
                S.lattice().size());
    return std::nullopt;
  }
  return static_cast<Session::NodeId>(*N);
}

void cmdLs(Session &S) {
  for (Session::NodeId Id : S.lattice().topDownOrder()) {
    const char *State = "";
    switch (S.stateOf(Id)) {
    case ConceptState::Unlabeled:
      State = "[green ]";
      break;
    case ConceptState::PartlyLabeled:
      State = "[yellow]";
      break;
    case ConceptState::FullyLabeled:
      State = "[red   ]";
      break;
    }
    const Concept &C = S.lattice().node(Id);
    std::printf("%s c%-3u traces=%-4zu sim=%-3zu children:", State, Id,
                C.Extent.count(), C.Intent.count());
    for (Session::NodeId Child : S.lattice().children(Id))
      std::printf(" c%u", Child);
    std::printf("\n");
  }
}

void cmdStatus(Session &S) {
  size_t Unlabeled = S.unlabeledObjects().count();
  std::printf("%zu unique traces; %zu unlabeled; %zu labels; %zu concepts\n",
              S.numObjects(), Unlabeled, S.numLabels(), S.lattice().size());
  for (LabelId L = 0; L < S.numLabels(); ++L)
    std::printf("  %-16s %zu trace(s)\n", S.labelName(L).c_str(),
                S.objectsWithLabel(L).count());
  if (!S.rejectedObjects().empty())
    std::printf("warning: %zu trace(s) rejected by the reference FA\n",
                S.rejectedObjects().size());
}

/// Executes one already-split command. The dispatcher is shared between
/// live input and journal replay, which is what makes recovery exact: a
/// replayed command goes through byte-for-byte the same code path as the
/// original keystrokes. Returns false when the command failed (bad
/// arguments, I/O error); interactive sessions print and continue, but
/// scripted runs fail-stop so an error never silently corrupts a batch.
bool executeCommand(CliState &Cli, const std::vector<std::string> &Args) {
  Session &S = Cli.current();
  const std::string &Cmd = Args[0];

  // One span per session command; the name is only materialized when
  // tracing is armed.
  std::string SpanName;
  if (TraceLog::enabled())
    SpanName = "cmd " + Cmd;
  TraceSpan Span(SpanName);
  Metrics::counter("cli.commands").add();

  if (Cmd == "stats") {
    std::fputs(Metrics::renderTable().c_str(), stdout);
    return true;
  }
  if (Cmd == "help") {
    printUsage();
    return true;
  }
  if (Cmd == "ls") {
    cmdLs(S);
    return true;
  }
  if (Cmd == "status") {
    cmdStatus(S);
    return true;
  }
  if (Cmd == "classes") {
    const TraceClasses &Classes = S.baselineClasses();
    for (size_t C = 0; C < Classes.numClasses(); ++C)
      std::printf("  class %-3zu x%-4u %s\n", C, Classes.Multiplicity[C],
                  Classes.Representatives[C].render(S.table()).c_str());
    return true;
  }
  if (Cmd == "fa" && Args.size() >= 2) {
    std::optional<Session::NodeId> Id = parseConcept(Args[1], S);
    if (!Id)
      return false;
    std::optional<LabelId> From;
    std::optional<TraceSelect> Sel = parseSelect(Args, 2, S, From);
    if (!Sel)
      return false;
    Automaton FA = S.showFA(*Id, *Sel, From);
    std::printf("%s", FA.renderText(S.table()).c_str());
    return true;
  }
  if (Cmd == "transitions" && Args.size() >= 2) {
    std::optional<Session::NodeId> Id = parseConcept(Args[1], S);
    if (!Id)
      return false;
    for (TransitionId TI : S.showTransitions(*Id)) {
      const Transition &T = S.referenceFA().transition(TI);
      std::printf("  t%-3u q%u --%s--> q%u\n", TI, T.From,
                  T.Label.render(S.table()).c_str(), T.To);
    }
    return true;
  }
  if (Cmd == "traces" && Args.size() >= 2) {
    std::optional<Session::NodeId> Id = parseConcept(Args[1], S);
    if (!Id)
      return false;
    std::optional<LabelId> From;
    std::optional<TraceSelect> Sel = parseSelect(Args, 2, S, From);
    if (!Sel)
      return false;
    for (size_t Obj : S.showTraces(*Id, *Sel, From)) {
      std::string Label = S.labelOf(Obj)
                              ? S.labelName(*S.labelOf(Obj))
                              : std::string("-");
      std::printf("  [%s] %s\n", Label.c_str(),
                  S.object(Obj).render(S.table()).c_str());
    }
    return true;
  }
  if (Cmd == "label" && Args.size() >= 3) {
    std::optional<Session::NodeId> Id = parseConcept(Args[1], S);
    if (!Id)
      return false;
    LabelId NewLabel = S.internLabel(Args[2]);
    std::optional<LabelId> From;
    std::optional<TraceSelect> Sel = parseSelect(Args, 3, S, From);
    if (!Sel)
      return false;
    if (Args.size() == 3)
      Sel = TraceSelect::Unlabeled; // Default: label the unlabeled.
    size_t N = S.labelTraces(*Id, *Sel, NewLabel, From);
    std::printf("labeled %zu trace(s) as '%s'\n", N, Args[2].c_str());
    return true;
  }
  if (Cmd == "focus" && Args.size() >= 3) {
    std::optional<Session::NodeId> Id = parseConcept(Args[1], S);
    if (!Id)
      return false;
    std::string Pattern;
    for (size_t I = 2; I < Args.size(); ++I) {
      if (I != 2)
        Pattern += ' ';
      Pattern += Args[I];
    }
    std::string Err;
    std::optional<Automaton> FA = compileRegex(Pattern, S.table(), Err);
    if (!FA) {
      std::printf("error: bad focus regex: %s\n", Err.c_str());
      return false;
    }
    Cli.Stack.push_back(std::make_unique<FocusSession>(
        S.focus(*Id, FA->withoutEpsilons())));
    Session &Sub = Cli.current();
    std::printf("focused: %zu traces, %zu concepts",
                Sub.numObjects(), Sub.lattice().size());
    if (!Sub.rejectedObjects().empty())
      std::printf(" (%zu rejected by the focus FA)",
                  Sub.rejectedObjects().size());
    std::printf("\n");
    return true;
  }
  if (Cmd == "unfocus") {
    if (Cli.Stack.empty()) {
      std::printf("not in a focus session\n");
      return false;
    }
    Session &Parent = Cli.parentOfTop();
    Parent.mergeBack(*Cli.Stack.back());
    Cli.Stack.pop_back();
    std::printf("labels merged back\n");
    return true;
  }
  if (Cmd == "check" && Args.size() >= 2) {
    LabelId L = S.internLabel(Args[1]);
    Automaton FA = S.showFA(S.lattice().top(), TraceSelect::WithLabel, L);
    std::printf("FA over all traces labeled '%s':\n%s", Args[1].c_str(),
                FA.renderText(S.table()).c_str());
    return true;
  }
  if (Cmd == "oracle") {
    if (!Cli.Protocol) {
      std::printf("oracle requires --protocol\n");
      return false;
    }
    Oracle Truth(*Cli.Protocol, S.table());
    ReferenceLabeling Target = Truth.referenceLabeling(S);
    ExpertSimStrategy Expert;
    StrategyCost Cost = Expert.run(S, Target);
    std::printf("expert simulation: %zu inspections + %zu label ops "
                "(%s)\n",
                Cost.Inspections, Cost.LabelOps,
                Cost.Finished ? "finished" : "DID NOT FINISH");
    return true;
  }
  if ((Cmd == "meet" || Cmd == "join") && Args.size() >= 3) {
    std::optional<Session::NodeId> A = parseConcept(Args[1], S);
    std::optional<Session::NodeId> B = parseConcept(Args[2], S);
    if (!A || !B)
      return false;
    Session::NodeId R = Cmd == "meet" ? S.lattice().meet(*A, *B)
                                      : S.lattice().join(*A, *B);
    std::printf("%s(c%u, c%u) = %s\n", Cmd.c_str(), *A, *B,
                S.describeConcept(R).c_str());
    return true;
  }
  if (Cmd == "undo") {
    std::printf(S.undo() ? "undone\n" : "nothing to undo\n");
    return true;
  }
  if (Cmd == "diff" && Args.size() >= 3) {
    LabelId L1 = S.internLabel(Args[1]);
    LabelId L2 = S.internLabel(Args[2]);
    Automaton A = S.showFA(S.lattice().top(), TraceSelect::WithLabel, L1);
    Automaton B = S.showFA(S.lattice().top(), TraceSelect::WithLabel, L2);
    std::vector<Trace> Reps;
    for (size_t Obj = 0; Obj < S.numObjects(); ++Obj)
      Reps.push_back(S.object(Obj));
    std::vector<EventId> Alphabet = collectAlphabet(Reps);
    Dfa DA = Dfa::determinize(A, Alphabet, S.table());
    Dfa DB = Dfa::determinize(B, Alphabet, S.table());
    if (std::optional<Trace> W = Dfa::shortestDifference(DA, DB)) {
      std::printf("shortest separating trace: %s\n  accepted by the "
                  "'%s' FA: %s; by the '%s' FA: %s\n",
                  W->render(S.table()).c_str(), Args[1].c_str(),
                  DA.accepts(*W) ? "yes" : "no", Args[2].c_str(),
                  DB.accepts(*W) ? "yes" : "no");
    } else {
      std::printf("the two labels' FAs are language-equivalent over the "
                  "session alphabet\n");
    }
    return true;
  }
  if (Cmd == "suggest" && Args.size() >= 2) {
    std::optional<Session::NodeId> Id = parseConcept(Args[1], S);
    if (!Id)
      return false;
    std::vector<SeedSuggestion> Suggestions = suggestFocusSeeds(S, *Id);
    std::vector<ProjectionSuggestion> Projections =
        suggestNameProjections(S, *Id);
    if (Suggestions.empty() && Projections.empty()) {
      std::printf("no seed-order or name-projection template splits "
                  "this concept\n");
      return false;
    }
    for (const SeedSuggestion &Sg : Suggestions)
      std::printf("  seed order on %-24s -> %zu groups "
                  "(%zu traces carry the seed)\n",
                  S.table().renderEvent(Sg.Seed).c_str(), Sg.NumGroups,
                  Sg.NumAccepted);
    for (const ProjectionSuggestion &Pg : Projections)
      std::printf("  name projection on v%-13u -> %zu groups\n", Pg.Value,
                  Pg.NumGroups);
    return true;
  }
  if (Cmd == "save" && Args.size() >= 2) {
    // Atomic + checksummed: a crash mid-save leaves the previous file,
    // and a corrupted file is detected on load instead of half-applied.
    Status St = AtomicFile::write(
        Args[1], withChecksumHeader("cable-labels", 2, S.serializeLabels()));
    if (!St.isOk()) {
      std::printf("error: %s\n", St.diagnostic().render().c_str());
      return false;
    }
    std::printf("wrote labels to %s\n", Args[1].c_str());
    return true;
  }
  if (Cmd == "load" && Args.size() >= 2) {
    StatusOr<std::string> Text = readFileToString(Args[1]);
    if (!Text) {
      std::printf("error: %s\n", Text.status().diagnostic().render().c_str());
      return false;
    }
    // v2 files are checksum-verified; headerless v1 files still load.
    StatusOr<CheckedText> Checked =
        readChecksumHeader("cable-labels", *Text, Args[1],
                           /*AllowLegacy=*/true);
    if (!Checked) {
      std::printf("error: %s\n",
                  Checked.status().diagnostic().render().c_str());
      return false;
    }
    std::string Err;
    size_t Unmatched = 0;
    if (!S.loadLabels(Checked->Body, Err, &Unmatched)) {
      Diagnostic D;
      D.Code = ErrorCode::ParseError;
      D.File = Args[1];
      D.Message = Err;
      std::printf("error: %s\n", D.render().c_str());
      return false;
    }
    std::printf("labels loaded (%zu line(s) matched no trace here)\n",
                Unmatched);
    return true;
  }
  if (Cmd == "dot" && Args.size() >= 2) {
    Status St = AtomicFile::write(Args[1], S.renderDot("cable_lattice"));
    if (!St.isOk()) {
      std::printf("error: %s\n", St.diagnostic().render().c_str());
      return false;
    }
    std::printf("wrote %s\n", Args[1].c_str());
    return true;
  }
  std::printf("unknown command '%s' (try 'help')\n", Cmd.c_str());
  return false;
}

/// Temporarily routes stdout to /dev/null (journal replay re-executes
/// commands whose output the user already saw in the previous life).
class StdoutSilencer {
public:
  StdoutSilencer() {
    std::fflush(stdout);
    Saved = ::dup(1);
    int Null = ::open("/dev/null", O_WRONLY);
    if (Null >= 0) {
      ::dup2(Null, 1);
      ::close(Null);
    }
  }
  ~StdoutSilencer() {
    if (Saved >= 0) {
      std::fflush(stdout);
      ::dup2(Saved, 1);
      ::close(Saved);
    }
  }

private:
  int Saved = -1;
};

/// Observability outputs requested on the command line. Written by
/// emitObservability after runCli returns (every exit path except an
/// injected crash's _Exit), so partial runs still leave artifacts.
struct ObservabilityOptions {
  std::string TraceOut;
  std::string MetricsOut;
  std::string RunReportOut;
  std::string LogOut;
  bool PrintStats = false;
  std::vector<std::string> Args; ///< argv[1..] as invoked.
  bool Truncated = false;        ///< The lattice build was truncated.
} GObs;

void emitObservability(int ExitCode) {
  if (GObs.PrintStats)
    std::printf("\n-- run statistics --\n%s", Metrics::renderTable().c_str());
  if (!GObs.TraceOut.empty()) {
    if (Status St = TraceLog::writeJson(GObs.TraceOut, "cable-cli");
        !St.isOk()) {
      CABLE_LOG_WARN("tool", "observability-write-failed",
                     "trace not written",
                     {Log::str("path", GObs.TraceOut),
                      Log::str("error", St.message())});
      std::fprintf(stderr, "warning: cannot write trace: %s\n",
                   St.diagnostic().render().c_str());
    }
  }
  if (!GObs.MetricsOut.empty()) {
    if (Status St = writeMetricsJson(GObs.MetricsOut, "cable-cli");
        !St.isOk()) {
      CABLE_LOG_WARN("tool", "observability-write-failed",
                     "metrics not written",
                     {Log::str("path", GObs.MetricsOut),
                      Log::str("error", St.message())});
      std::fprintf(stderr, "warning: cannot write metrics: %s\n",
                   St.diagnostic().render().c_str());
    }
  }
  if (!GObs.RunReportOut.empty()) {
    RunReportInfo Info;
    Info.Tool = "cable-cli";
    Info.Args = GObs.Args;
    Info.Truncated = GObs.Truncated;
    Info.CleanExit = ExitCode == 0;
    Info.ExitCode = ExitCode;
    if (Status St = writeRunReport(GObs.RunReportOut, Info); !St.isOk()) {
      CABLE_LOG_WARN("tool", "observability-write-failed",
                     "run report not written",
                     {Log::str("path", GObs.RunReportOut),
                      Log::str("error", St.message())});
      std::fprintf(stderr, "warning: cannot write run report: %s\n",
                   St.diagnostic().render().c_str());
    }
  }
  // The log is written last so failures of the other artifact writers are
  // themselves on record as observability-write-failed events.
  if (!GObs.LogOut.empty()) {
    if (Status St = Log::writeJsonl(GObs.LogOut, "cable-cli"); !St.isOk())
      std::fprintf(stderr, "warning: cannot write log: %s\n",
                   St.diagnostic().render().c_str());
  }
}

/// Journal log fd for the signal handler; -1 when no journal is open.
volatile sig_atomic_t GJournalFd = -1;

/// SIGINT/SIGTERM: make the journal durable and die. Every applied
/// command was already fsynced before it ran (write-ahead), so this is
/// belt and braces; fsync and _exit are both async-signal-safe. Ctrl-C
/// therefore never loses labels.
extern "C" void onTerminateSignal(int Sig) {
  // Take any live shard workers down with the supervisor (kill(2) is
  // async-signal-safe) so Ctrl-C never leaks orphan processes.
  Subprocess::killActiveFromSignalHandler();
  int Fd = GJournalFd;
  if (Fd >= 0)
    ::fsync(Fd);
  // Flush the requested observability artifacts through the signal-safe
  // writer (crash-ring log records, crash-index metrics) so an
  // interrupted run still leaves evidence instead of empty paths.
  CrashDump::writeArtifactsFromSignal(128 + Sig);
  ::_exit(128 + Sig);
}

void installSignalHandlers() {
  struct sigaction SA;
  std::memset(&SA, 0, sizeof(SA));
  SA.sa_handler = onTerminateSignal;
  ::sigaction(SIGINT, &SA, nullptr);
  ::sigaction(SIGTERM, &SA, nullptr);
  // A dead pipe reader (a closed pager, a crashed shard worker's socket)
  // must surface as an EPIPE error status, not kill the process.
  std::memset(&SA, 0, sizeof(SA));
  SA.sa_handler = SIG_IGN;
  ::sigaction(SIGPIPE, &SA, nullptr);
}

/// Snapshot + compact when due. Only base-level state is snapshotted, so
/// while a Focus sub-session is open compaction waits (the journal tail
/// still holds the focus commands and replays them on recovery).
void maybeSnapshot(CliState &Cli, bool Force) {
  bool Due = Force ? Cli.SinceSnapshot > 0
                   : Cli.SinceSnapshot >= std::max(Cli.SnapshotEvery, 1ul);
  if (Cli.Wal.isOpen() && Cli.Stack.empty() && Due) {
    Status St = Cli.Wal.snapshot(Cli.Base->serializeSnapshot());
    if (St.isOk()) {
      Cli.SinceSnapshot = 0;
    } else {
      // Not fatal: the log still has everything; recovery just replays
      // more.
      Diagnostic D = St.diagnostic();
      D.Level = Severity::Warning;
      std::fprintf(stderr, "%s\n", D.render().c_str());
    }
  }
}

int runCli(int Argc, char **Argv) {
  // Installed before any work: SIGPIPE must be ignored from the first
  // write (a dead pipe reader is an EPIPE status, not a process death),
  // and SIGINT/SIGTERM must reap shard workers even without a journal.
  // Re-installed harmlessly when a journal opens and GJournalFd is live.
  installSignalHandlers();
  for (int I = 1; I < Argc; ++I)
    GObs.Args.emplace_back(Argv[I]);
  if (Status St = Failpoint::configureFromEnv(); !St.isOk()) {
    std::fprintf(stderr, "error: CABLE_FAILPOINTS: %s\n",
                 St.message().c_str());
    return 1;
  }

  std::string TracesFile, RefRegex, RefFile, SeedEvent, ProtocolName;
  std::string JournalDir, ScriptFile, JournalSync;
  bool Recommended = false;
  bool NoCache = false;
  SessionOptions BuildOpts;
  unsigned long SnapshotEvery = 25;
  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    auto Next = [&]() -> std::string {
      return I + 1 < Argc ? Argv[++I] : std::string();
    };
    auto NextNumber = [&](const char *Flag,
                          std::optional<unsigned long> &Out) {
      std::string N = Next();
      Out = parseUnsignedLong(N);
      if (!Out) {
        std::fprintf(stderr, "error: %s expects a number, got '%s'\n", Flag,
                     N.c_str());
        return false;
      }
      return true;
    };
    if (Arg == "--traces")
      TracesFile = Next();
    else if (Arg == "--ref")
      RefRegex = Next();
    else if (Arg == "--ref-file")
      RefFile = Next();
    else if (Arg == "--seed")
      SeedEvent = Next();
    else if (Arg == "--protocol")
      ProtocolName = Next();
    else if (Arg == "--recommended")
      Recommended = true;
    else if (Arg == "--journal")
      JournalDir = Next();
    else if (Arg == "--script")
      ScriptFile = Next();
    else if (Arg == "--snapshot-every") {
      std::optional<unsigned long> N;
      if (!NextNumber("--snapshot-every", N))
        return 1;
      SnapshotEvery = *N;
    } else if (Arg == "--journal-sync") {
      JournalSync = Next();
      if (JournalSync != "always" && JournalSync != "batch") {
        std::fprintf(stderr,
                     "error: --journal-sync expects 'always' or 'batch', "
                     "got '%s'\n",
                     JournalSync.c_str());
        return 1;
      }
    } else if (Arg == "--list-failpoints") {
      for (const std::string &Name : Failpoint::registeredNames())
        std::printf("%s\n", Name.c_str());
      return 0;
    } else if (Arg == "--version") {
      std::printf("%s\n", buildinfo::versionLine("cable-cli").c_str());
      return 0;
    } else if (Arg == "--stats") {
      GObs.PrintStats = true;
      Metrics::setEnabled(true);
    } else if (Arg == "--metrics-out") {
      // Armed at parse time, before the journal opens, so recovery
      // counters (torn tails, replayed commands) are captured.
      GObs.MetricsOut = Next();
      Metrics::setEnabled(true);
    } else if (Arg == "--run-report") {
      GObs.RunReportOut = Next();
      Metrics::setEnabled(true);
    } else if (Arg == "--trace-out") {
      GObs.TraceOut = Next();
      TraceLog::setEnabled(true);
      TraceLog::setThreadName("main");
    } else if (Arg == "--log-out") {
      // Armed at parse time like --metrics-out, so journal-recovery and
      // cache events from session setup are captured.
      GObs.LogOut = Next();
      Log::setEnabled(true);
    } else if (Arg == "--log-level") {
      std::string LevelText = Next();
      Log::Level L;
      if (!Log::parseLevel(LevelText, L)) {
        std::fprintf(stderr,
                     "error: --log-level expects debug, info, warn, or "
                     "error, got '%s'\n",
                     LevelText.c_str());
        return 1;
      }
      Log::setLevel(L);
    } else if (Arg == "--threads") {
      std::optional<unsigned long> N;
      if (!NextNumber("--threads", N))
        return 1;
      BuildOpts.NumThreads = static_cast<unsigned>(*N);
    } else if (Arg == "--shard-workers") {
      std::optional<unsigned long> N;
      if (!NextNumber("--shard-workers", N))
        return 1;
      BuildOpts.ShardWorkers = static_cast<unsigned>(*N);
    } else if (Arg == "--shard-timeout") {
      std::optional<unsigned long> N;
      if (!NextNumber("--shard-timeout", N))
        return 1;
      BuildOpts.ShardTimeout = std::chrono::milliseconds(*N);
    } else if (Arg == "--shard-retries") {
      std::optional<unsigned long> N;
      if (!NextNumber("--shard-retries", N))
        return 1;
      BuildOpts.ShardRetries = static_cast<unsigned>(*N);
    } else if (Arg == "--time-budget") {
      std::optional<unsigned long> N;
      if (!NextNumber("--time-budget", N))
        return 1;
      BuildOpts.ResourceBudget.TimeLimit = std::chrono::milliseconds(*N);
    } else if (Arg == "--max-concepts") {
      std::optional<unsigned long> N;
      if (!NextNumber("--max-concepts", N))
        return 1;
      BuildOpts.ResourceBudget.MaxConcepts = *N;
    } else if (Arg == "--keep-going") {
      BuildOpts.KeepGoing = true;
    } else if (Arg == "--cache-dir") {
      BuildOpts.CacheDir = Next();
    } else if (Arg == "--no-cache") {
      NoCache = true;
    } else if (Arg == "--cache-verify") {
      std::string Mode = Next();
      if (Mode == "full")
        BuildOpts.CacheVerifyMode = LatticeVerify::Full;
      else if (Mode == "header")
        BuildOpts.CacheVerifyMode = LatticeVerify::Header;
      else {
        std::fprintf(stderr,
                     "error: --cache-verify expects 'full' or 'header', "
                     "got '%s'\n",
                     Mode.c_str());
        return 1;
      }
    } else if (Arg == "--help" || Arg == "-h") {
      printUsage();
      return 0;
    } else {
      std::fprintf(stderr, "unknown option '%s' (try --help)\n", Arg.c_str());
      return 1;
    }
  }
  if (BuildOpts.CacheDir.empty() && !NoCache)
    if (const char *Env = std::getenv("CABLE_CACHE_DIR"))
      BuildOpts.CacheDir = Env;
  if (NoCache)
    BuildOpts.CacheDir.clear();
  if (GObs.LogOut.empty())
    if (const char *Env = std::getenv("CABLE_LOG"); Env && *Env) {
      GObs.LogOut = Env;
      Log::setEnabled(true);
    }
  // The flight recorder (a no-op without $CABLE_CRASH_DIR) and the
  // signal-exit artifact paths: both must be armed before the journal
  // opens so the earliest failure already leaves a black box.
  CrashDump::install("cable-cli");
  CrashDump::registerSignalArtifacts("cable-cli", GObs.LogOut,
                                     GObs.MetricsOut, GObs.RunReportOut,
                                     GObs.Args);

  CliState Cli;
  Cli.SnapshotEvery = SnapshotEvery;

  // Assemble the trace set.
  TraceSet Traces;
  if (!ProtocolName.empty()) {
    if (ProtocolName == "stdio") {
      Cli.Protocol = stdioProtocol();
    } else if (const ProtocolModel *M = findProtocol(ProtocolName)) {
      Cli.Protocol = *M;
    } else {
      std::fprintf(stderr, "error: unknown protocol '%s'; valid names:\n",
                   ProtocolName.c_str());
      std::fprintf(stderr, "  stdio\n");
      for (const std::string &Name : protocolNames())
        std::fprintf(stderr, "  %s\n", Name.c_str());
      return 1;
    }
    EventTable Table;
    WorkloadGenerator Gen(*Cli.Protocol, Table);
    RNG Rand(0xC11);
    Traces = Gen.generateScenarios(
        Rand, Cli.Protocol->NumRuns * Cli.Protocol->ScenariosPerRun);
    std::printf("generated %zu scenario traces for protocol %s\n",
                Traces.size(), Cli.Protocol->Name.c_str());
  } else if (!TracesFile.empty()) {
    StatusOr<std::string> Text = readFileToString(TracesFile);
    if (!Text) {
      std::fprintf(stderr, "%s\n",
                   Text.status().diagnostic().render().c_str());
      return 1;
    }
    Diagnostic Diag;
    std::optional<TraceSet> Parsed = TraceSet::parse(*Text, Diag);
    if (!Parsed) {
      Diag.File = TracesFile;
      std::fprintf(stderr, "%s\n", Diag.render().c_str());
      return 1;
    }
    Traces = std::move(*Parsed);
    std::printf("loaded %zu traces from %s\n", Traces.size(),
                TracesFile.c_str());
  } else {
    printUsage();
    return 1;
  }
  if (Traces.empty()) {
    std::fprintf(stderr, "error: no traces\n");
    return 1;
  }

  // Build the reference FA.
  Automaton Ref;
  if (!RefRegex.empty()) {
    Diagnostic Diag;
    std::optional<Automaton> FA = compileRegex(RefRegex, Traces.table(), Diag);
    if (!FA) {
      Diag.File = "--ref";
      std::fprintf(stderr, "%s\n", Diag.render().c_str());
      return 1;
    }
    Ref = FA->withoutEpsilons();
  } else if (!RefFile.empty()) {
    StatusOr<std::string> Text = readFileToString(RefFile);
    if (!Text) {
      std::fprintf(stderr, "%s\n",
                   Text.status().diagnostic().render().c_str());
      return 1;
    }
    Diagnostic Diag;
    std::optional<Automaton> FA = parseAutomaton(*Text, Traces.table(), Diag);
    if (!FA) {
      Diag.File = RefFile;
      std::fprintf(stderr, "%s\n", Diag.render().c_str());
      return 1;
    }
    Ref = std::move(*FA);
  } else if (!SeedEvent.empty()) {
    std::string Err;
    std::optional<EventId> Seed = Traces.table().parseEvent(SeedEvent, Err);
    if (!Seed) {
      std::fprintf(stderr, "error: bad --seed event: %s\n", Err.c_str());
      return 1;
    }
    Ref = makeSeedOrderFA(templateAlphabet(Traces.traces()), *Seed,
                          Traces.table());
  } else if (Recommended && Cli.Protocol) {
    Ref = makeProtocolReferenceFA(Traces.traces(), Traces.table(),
                                  *Cli.Protocol);
  } else {
    Ref = makeUnorderedFA(templateAlphabet(Traces.traces()), Traces.table());
  }

  StatusOr<Session> Built =
      Session::build(std::move(Traces), std::move(Ref), BuildOpts);
  if (!Built) {
    std::fprintf(stderr, "%s\n", Built.status().diagnostic().render().c_str());
    return 1;
  }
  Cli.Base = std::make_unique<Session>(std::move(*Built));
  GObs.Truncated = Cli.Base->truncated();
  // Cache problems never fail a build — they degrade to a normal one —
  // but each is worth a warning (a quarantined artifact is evidence of
  // disk corruption or a foreign file in the store).
  for (const Status &CacheSt : Cli.Base->cacheDiagnostics()) {
    Diagnostic Warn = CacheSt.diagnostic();
    Warn.Level = Severity::Warning;
    std::fprintf(stderr, "%s\n", Warn.render().c_str());
  }
  if (Cli.Base->cacheHit())
    std::printf("lattice loaded from cache (%s)\n",
                BuildOpts.CacheDir.c_str());
  if (Cli.Base->truncated()) {
    const Diagnostic &D = Cli.Base->buildStatus().diagnostic();
    if (!BuildOpts.KeepGoing) {
      std::fprintf(stderr, "%s\n", D.render().c_str());
      std::fprintf(stderr,
                   "error: lattice construction was truncated; rerun with "
                   "--keep-going to continue with the partial lattice and "
                   "the baseline trace classes\n");
      return 1;
    }
    Diagnostic Warn = D;
    Warn.Level = Severity::Warning;
    std::printf("%s\n", Warn.render().c_str());
    std::printf("continuing with a partial lattice (%zu concepts); the "
                "baseline identical-trace clustering (%zu classes) is "
                "complete — see 'classes'\n",
                Cli.Base->lattice().size(),
                Cli.Base->baselineClasses().numClasses());
  }
  std::printf("session: %zu unique traces, %zu FA transitions, %zu "
              "concepts\n",
              Cli.Base->numObjects(),
              Cli.Base->referenceFA().numTransitions(),
              Cli.Base->lattice().size());

  // Open the journal, recover, and replay. Recovery is write-ahead
  // replay: the snapshot restores labels and undo history, then the log
  // tail re-executes through executeCommand — the same dispatcher as
  // live input — with stdout silenced.
  uint64_t ScriptSkip = 0;
  if (!JournalDir.empty()) {
    Journal::Recovery Rec;
    StatusOr<Journal> J = Journal::open(JournalDir, Rec);
    if (!J) {
      std::fprintf(stderr, "%s\n", J.status().diagnostic().render().c_str());
      return 1;
    }
    Cli.Wal = std::move(*J);
    // Scripted runs group-commit by default: the script file already
    // re-seeds any tail a power cut could drop, so per-command fsyncs
    // buy nothing there. Interactive sessions keep fsync-per-command.
    bool Batch = JournalSync.empty() ? !ScriptFile.empty()
                                     : JournalSync == "batch";
    Cli.Wal.setSyncPolicy(Batch ? Journal::SyncPolicy::Batched
                                : Journal::SyncPolicy::EveryRecord);
    GJournalFd = Cli.Wal.fd();
    installSignalHandlers();
    if (!Rec.TornTail.isOk())
      std::fprintf(stderr, "%s\n", Rec.TornTail.diagnostic().render().c_str());
    if (Rec.HasSnapshot) {
      if (Status St = Cli.Base->loadSnapshot(Rec.SnapshotBody); !St.isOk()) {
        std::fprintf(stderr, "%s\n", St.diagnostic().render().c_str());
        std::fprintf(stderr,
                     "error: cannot restore the journal snapshot; was "
                     "%s created with different --traces/--protocol/--ref "
                     "flags?\n",
                     JournalDir.c_str());
        return 1;
      }
    }
    if (!Rec.Commands.empty()) {
      StdoutSilencer Quiet;
      for (const std::string &Cmd : Rec.Commands) {
        std::vector<std::string> Args = splitWhitespace(Cmd);
        if (!Args.empty())
          executeCommand(Cli, Args);
      }
    }
    ScriptSkip = Cli.Wal.lastSeq();
    if (Rec.UncleanShutdown)
      std::printf("journal: unclean shutdown detected; recovered the "
                  "session (snapshot seq %llu + %zu replayed command(s))\n",
                  static_cast<unsigned long long>(Rec.SnapshotSeq),
                  Rec.Commands.size());
    else if (Rec.HasSnapshot || !Rec.Commands.empty())
      std::printf("journal: resumed previous session (snapshot seq %llu + "
                  "%zu replayed command(s))\n",
                  static_cast<unsigned long long>(Rec.SnapshotSeq),
                  Rec.Commands.size());
    // Compact a long replayed tail right away so the next recovery is
    // cheap (no-op when the tail was empty or a focus is open).
    Cli.SinceSnapshot = Rec.Commands.size();
    maybeSnapshot(Cli, /*Force=*/!Rec.Commands.empty());
  }
  std::printf("type 'help' for commands\n");

  // Command source: stdin, or --script FILE (a journal-backed script run
  // resumes at the first command the journal has not made durable; blank
  // and comment lines are never journaled and never counted).
  std::vector<std::string> Script;
  size_t ScriptAt = 0;
  bool FromScript = !ScriptFile.empty();
  if (FromScript) {
    StatusOr<std::string> Text = readFileToString(ScriptFile);
    if (!Text) {
      std::fprintf(stderr, "%s\n",
                   Text.status().diagnostic().render().c_str());
      return 1;
    }
    Script = splitString(*Text, '\n');
  }
  auto NextLine = [&](std::string &Line) -> bool {
    for (;;) {
      if (FromScript) {
        if (ScriptAt >= Script.size())
          return false;
        Line = Script[ScriptAt++];
      } else {
        std::printf("cable> ");
        std::fflush(stdout);
        if (!std::getline(std::cin, Line))
          return false;
      }
      std::string_view Body = trimString(Line);
      if (Body.empty() || Body[0] == '#')
        continue;
      if (FromScript && ScriptSkip > 0) {
        --ScriptSkip; // Already durable and replayed; do not re-run.
        continue;
      }
      return true;
    }
  };

  std::string Line;
  while (NextLine(Line)) {
    std::vector<std::string> Args = splitWhitespace(Line);
    const std::string &Cmd = Args[0];
    if (Cmd == "quit" || Cmd == "exit")
      break;
    if (Cli.Wal.isOpen()) {
      // Write-ahead: the command must be durable before it can have any
      // effect. If the log cannot take it, applying it would silently
      // break the crash guarantee — refuse and die loudly instead.
      if (Status St = Cli.Wal.append(trimString(Line)); !St.isOk()) {
        std::fprintf(stderr, "%s\n", St.diagnostic().render().c_str());
        std::fprintf(stderr,
                     "error: journal append failed; exiting to preserve "
                     "durability (everything up to the previous command "
                     "is recoverable with --journal %s)\n",
                     JournalDir.c_str());
        return 3;
      }
      ++Cli.SinceSnapshot;
    }
    bool Ok = executeCommand(Cli, Args);
    if (!Ok && FromScript) {
      // Fail-stop before the post-command snapshot: the failed command is
      // already journaled but not covered by any snapshot, so a re-run
      // with the same --journal replays it (and a transient failure heals).
      std::fprintf(stderr,
                   "error: command '%s' failed; a scripted session stops "
                   "at the first error%s\n",
                   Line.c_str(),
                   Cli.Wal.isOpen()
                       ? " (re-run with the same --journal to retry it)"
                       : "");
      return 5;
    }
    maybeSnapshot(Cli, /*Force=*/false);
  }

  // Clean shutdown: snapshot whatever is pending (unless a focus is still
  // open — then the log tail carries it) and drop the ACTIVE marker.
  if (Cli.Wal.isOpen()) {
    maybeSnapshot(Cli, /*Force=*/true);
    GJournalFd = -1;
    if (Status St = Cli.Wal.closeClean(); !St.isOk())
      std::fprintf(stderr, "%s\n", St.diagnostic().render().c_str());
  }
  return 0;
}

} // namespace

int main(int Argc, char **Argv) {
  // A worker-thread exception (a real bad_alloc, or an injected
  // threadpool-dispatch fault) surfaces here instead of aborting; the
  // journal on disk stays valid either way.
  int Code;
  try {
    Code = runCli(Argc, Argv);
  } catch (const std::exception &E) {
    std::fprintf(stderr, "error: unhandled exception: %s\n", E.what());
    // The exit-4 path is a crash in every sense but the signal: leave a
    // black box before the normal writers run (they may be the casualty).
    CABLE_LOG_ERROR("tool", "unhandled-exception", "exception reached main",
                    {Log::str("what", E.what())});
    CrashDump::dumpNow("unhandled-exception");
    Code = 4;
  }
  // Trace/metrics/run-report files are written even when the run failed:
  // a report of a failed run is exactly when you want the evidence.
  emitObservability(Code);
  // Clean exits unlink the recorder's untouched pre-opened file.
  CrashDump::disarm();
  return Code;
}
