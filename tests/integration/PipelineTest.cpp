//===- tests/integration/PipelineTest.cpp ----------------------------------===//
//
// Part of the Cable reproduction of "Debugging Temporal Specifications with
// Concept Analysis" (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//
//
// The Table 1 pipeline as a per-protocol regression test: synthesize runs,
// extract scenarios, cluster against the recommended reference FA, label
// with the simulated expert, re-learn from the good traces, and check the
// debugged specification classifies the whole corpus exactly.
//
//===----------------------------------------------------------------------===//

#include "cable/Session.h"
#include "cable/Strategies.h"
#include "learner/SkStrings.h"
#include "miner/Miner.h"
#include "miner/ScenarioExtractor.h"
#include "support/RNG.h"
#include "workload/Generator.h"
#include "workload/Oracle.h"
#include "workload/ReferenceFA.h"

#include <gtest/gtest.h>

using namespace cable;

class PipelineTest : public ::testing::TestWithParam<std::string> {};

TEST_P(PipelineTest, DebuggedSpecIsCorpusExact) {
  ProtocolModel Model = GetParam() == "stdio"
                            ? stdioProtocol()
                            : protocolByName(GetParam());
  EventTable Table;
  WorkloadGenerator Gen(Model, Table);
  RNG Rand(0xE2E ^ std::hash<std::string>{}(Model.Name));
  TraceSet Runs = Gen.generateRuns(Rand);

  ExtractorOptions Extract;
  Extract.SeedNames = Model.Seeds;
  Extract.TransitiveValues = true;
  TraceSet Scenarios = extractScenarios(Runs, Extract);
  ASSERT_GT(Scenarios.size(), 0u);

  Automaton Ref =
      makeProtocolReferenceFA(Scenarios.traces(), Scenarios.table(), Model);
  Session S(std::move(Scenarios), std::move(Ref));
  Oracle Truth(Model, S.table());
  ReferenceLabeling Target = Truth.referenceLabeling(S);

  // The expert must finish (recommended reference FAs keep the lattice
  // well-formed) and must cost no more than the Baseline.
  ExpertSimStrategy Expert;
  StrategyCost Cost = Expert.run(S, Target);
  ASSERT_TRUE(Cost.Finished) << Model.Name;
  EXPECT_LE(Cost.total(), 2 * S.numObjects() + 2) << Model.Name;

  // Re-learn from good traces; the result must accept exactly the good
  // classes of the corpus.
  LabelId Good = S.internLabel("good");
  std::vector<Trace> GoodTraces;
  for (size_t Obj : S.objectsWithLabel(Good))
    GoodTraces.push_back(S.object(Obj));
  ASSERT_FALSE(GoodTraces.empty()) << Model.Name;
  SkStringsOptions Learn;
  Learn.S = 1.0;
  Automaton Debugged = learnSkStringsFA(GoodTraces, S.table(), Learn);

  for (size_t Obj = 0; Obj < S.numObjects(); ++Obj) {
    bool IsGood = *S.labelOf(Obj) == Good;
    EXPECT_EQ(Debugged.accepts(S.object(Obj), S.table()), IsGood)
        << Model.Name << ": " << S.object(Obj).render(S.table());
  }

  // And the expert's labels agree with ground truth everywhere.
  for (size_t Obj = 0; Obj < S.numObjects(); ++Obj)
    EXPECT_EQ(*S.labelOf(Obj), Target.Target[Obj]) << Model.Name;
}

INSTANTIATE_TEST_SUITE_P(AllProtocols, PipelineTest,
                         ::testing::Values(
                             "XGetSelOwner", "XSetSelOwner", "XtOwnSel",
                             "XInternAtom", "PrsTransTbl", "PrsAccelTbl",
                             "RmvTimeOut", "Quarks", "RegionsAlloc",
                             "RegionsBig", "XFreeGC", "XPutImage", "XSetFont",
                             "XtFree", "XOpenDisplay", "XCreatePixmap",
                             "XSaveContext", "stdio"));

// The end-to-end debug session over the stdio (fopen/popen) workload must
// be indistinguishable whether the lattice is built serially or on four
// workers: identical lattice, identical concept states, and identical
// per-trace labels after the simulated expert finishes.
TEST(PipelineThreadsTest, StdioSessionIdenticalAtOneAndFourThreads) {
  ProtocolModel Model = stdioProtocol();
  EventTable Table;
  WorkloadGenerator Gen(Model, Table);
  RNG Rand(0xE2E ^ std::hash<std::string>{}(Model.Name));
  TraceSet Runs = Gen.generateRuns(Rand);

  ExtractorOptions Extract;
  Extract.SeedNames = Model.Seeds;
  Extract.TransitiveValues = true;
  TraceSet Scenarios = extractScenarios(Runs, Extract);
  ASSERT_GT(Scenarios.size(), 0u);
  Automaton Ref =
      makeProtocolReferenceFA(Scenarios.traces(), Scenarios.table(), Model);

  // Both sessions go through the miner's debug-session wiring.
  MinerOptions Serial;
  Serial.Extract = Extract;
  Serial.NumThreads = 1;
  MinerOptions Parallel;
  Parallel.Extract = Extract;
  Parallel.NumThreads = 4;
  Session S1 = Miner(Serial).debugSession(Scenarios, Ref);
  Session S4 = Miner(Parallel).debugSession(std::move(Scenarios),
                                            std::move(Ref));
  EXPECT_EQ(S1.numThreads(), 1u);
  EXPECT_EQ(S4.numThreads(), 4u);

  // Bit-for-bit identical lattices: same ids, extents, intents, covers.
  ASSERT_EQ(S1.lattice().size(), S4.lattice().size());
  EXPECT_EQ(S1.lattice().top(), S4.lattice().top());
  EXPECT_EQ(S1.lattice().bottom(), S4.lattice().bottom());
  EXPECT_EQ(S1.lattice().numEdges(), S4.lattice().numEdges());
  for (Session::NodeId Id = 0; Id < S1.lattice().size(); ++Id) {
    EXPECT_TRUE(S1.lattice().node(Id).Extent == S4.lattice().node(Id).Extent)
        << "c" << Id;
    EXPECT_TRUE(S1.lattice().node(Id).Intent == S4.lattice().node(Id).Intent)
        << "c" << Id;
    EXPECT_EQ(S1.lattice().parents(Id), S4.lattice().parents(Id)) << "c" << Id;
    EXPECT_EQ(S1.lattice().children(Id), S4.lattice().children(Id))
        << "c" << Id;
  }

  // Run the full labeling session on both; every concept state and every
  // trace label must come out the same.
  Oracle Truth(Model, S1.table());
  ReferenceLabeling Target1 = Truth.referenceLabeling(S1);
  ReferenceLabeling Target4 = Truth.referenceLabeling(S4);
  ExpertSimStrategy Expert;
  StrategyCost Cost1 = Expert.run(S1, Target1);
  StrategyCost Cost4 = Expert.run(S4, Target4);
  ASSERT_TRUE(Cost1.Finished);
  ASSERT_TRUE(Cost4.Finished);
  EXPECT_EQ(Cost1.Inspections, Cost4.Inspections);
  EXPECT_EQ(Cost1.LabelOps, Cost4.LabelOps);

  for (Session::NodeId Id = 0; Id < S1.lattice().size(); ++Id)
    EXPECT_EQ(S1.stateOf(Id), S4.stateOf(Id)) << "c" << Id;
  for (size_t Obj = 0; Obj < S1.numObjects(); ++Obj) {
    ASSERT_TRUE(S1.labelOf(Obj).has_value()) << "object " << Obj;
    ASSERT_TRUE(S4.labelOf(Obj).has_value()) << "object " << Obj;
    EXPECT_EQ(S1.labelName(*S1.labelOf(Obj)), S4.labelName(*S4.labelOf(Obj)))
        << "object " << Obj;
  }
  EXPECT_EQ(S1.serializeLabels(), S4.serializeLabels());
}
