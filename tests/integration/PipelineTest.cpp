//===- tests/integration/PipelineTest.cpp ----------------------------------===//
//
// Part of the Cable reproduction of "Debugging Temporal Specifications with
// Concept Analysis" (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//
//
// The Table 1 pipeline as a per-protocol regression test: synthesize runs,
// extract scenarios, cluster against the recommended reference FA, label
// with the simulated expert, re-learn from the good traces, and check the
// debugged specification classifies the whole corpus exactly.
//
//===----------------------------------------------------------------------===//

#include "cable/Session.h"
#include "cable/Strategies.h"
#include "learner/SkStrings.h"
#include "miner/ScenarioExtractor.h"
#include "support/RNG.h"
#include "workload/Generator.h"
#include "workload/Oracle.h"
#include "workload/ReferenceFA.h"

#include <gtest/gtest.h>

using namespace cable;

class PipelineTest : public ::testing::TestWithParam<std::string> {};

TEST_P(PipelineTest, DebuggedSpecIsCorpusExact) {
  ProtocolModel Model = GetParam() == "stdio"
                            ? stdioProtocol()
                            : protocolByName(GetParam());
  EventTable Table;
  WorkloadGenerator Gen(Model, Table);
  RNG Rand(0xE2E ^ std::hash<std::string>{}(Model.Name));
  TraceSet Runs = Gen.generateRuns(Rand);

  ExtractorOptions Extract;
  Extract.SeedNames = Model.Seeds;
  Extract.TransitiveValues = true;
  TraceSet Scenarios = extractScenarios(Runs, Extract);
  ASSERT_GT(Scenarios.size(), 0u);

  Automaton Ref =
      makeProtocolReferenceFA(Scenarios.traces(), Scenarios.table(), Model);
  Session S(std::move(Scenarios), std::move(Ref));
  Oracle Truth(Model, S.table());
  ReferenceLabeling Target = Truth.referenceLabeling(S);

  // The expert must finish (recommended reference FAs keep the lattice
  // well-formed) and must cost no more than the Baseline.
  ExpertSimStrategy Expert;
  StrategyCost Cost = Expert.run(S, Target);
  ASSERT_TRUE(Cost.Finished) << Model.Name;
  EXPECT_LE(Cost.total(), 2 * S.numObjects() + 2) << Model.Name;

  // Re-learn from good traces; the result must accept exactly the good
  // classes of the corpus.
  LabelId Good = S.internLabel("good");
  std::vector<Trace> GoodTraces;
  for (size_t Obj : S.objectsWithLabel(Good))
    GoodTraces.push_back(S.object(Obj));
  ASSERT_FALSE(GoodTraces.empty()) << Model.Name;
  SkStringsOptions Learn;
  Learn.S = 1.0;
  Automaton Debugged = learnSkStringsFA(GoodTraces, S.table(), Learn);

  for (size_t Obj = 0; Obj < S.numObjects(); ++Obj) {
    bool IsGood = *S.labelOf(Obj) == Good;
    EXPECT_EQ(Debugged.accepts(S.object(Obj), S.table()), IsGood)
        << Model.Name << ": " << S.object(Obj).render(S.table());
  }

  // And the expert's labels agree with ground truth everywhere.
  for (size_t Obj = 0; Obj < S.numObjects(); ++Obj)
    EXPECT_EQ(*S.labelOf(Obj), Target.Target[Obj]) << Model.Name;
}

INSTANTIATE_TEST_SUITE_P(AllProtocols, PipelineTest,
                         ::testing::Values(
                             "XGetSelOwner", "XSetSelOwner", "XtOwnSel",
                             "XInternAtom", "PrsTransTbl", "PrsAccelTbl",
                             "RmvTimeOut", "Quarks", "RegionsAlloc",
                             "RegionsBig", "XFreeGC", "XPutImage", "XSetFont",
                             "XtFree", "XOpenDisplay", "XCreatePixmap",
                             "XSaveContext", "stdio"));
