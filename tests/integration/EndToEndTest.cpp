//===- tests/integration/EndToEndTest.cpp ----------------------------------===//
//
// Part of the Cable reproduction of "Debugging Temporal Specifications with
// Concept Analysis" (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Full-pipeline tests: the §2.1 debugging-by-testing flow and the §2.2
/// mined-specification flow, end to end, on the stdio workload.
///
//===----------------------------------------------------------------------===//

#include "cable/Session.h"
#include "cable/Strategies.h"
#include "cable/WellFormed.h"
#include "fa/Dfa.h"
#include "fa/Templates.h"
#include "miner/Miner.h"
#include "support/RNG.h"
#include "verifier/Verifier.h"
#include "workload/Generator.h"
#include "workload/Oracle.h"

#include "../TestHelpers.h"

#include <gtest/gtest.h>

using namespace cable;
using cable::test::compileFA;

namespace {

struct StdioWorld {
  ProtocolModel Model = stdioProtocol();
  EventTable Table;
  WorkloadGenerator Gen{Model, Table};
  RNG Rand{31337};
  TraceSet Runs;

  StdioWorld() { Runs = Gen.generateRuns(Rand); }
};

} // namespace

TEST(EndToEndTest, Section21DebuggingByTesting) {
  StdioWorld W;

  // The author tests the buggy Fig. 1 specification against the program.
  Automaton Buggy = compileFA(stdioBuggyRegex(), W.Runs.table());
  ExtractorOptions Extract;
  Extract.SeedNames = W.Model.Seeds;
  VerificationResult R = verifyAgainstRuns(W.Runs, Buggy, Extract);
  ASSERT_GT(R.Violations.size(), 0u)
      << "the buggy spec must reject the correct popen/pclose scenarios";

  // Step 1a: a reference FA recognizing the violation traces (unordered
  // template works; §2.1 says a great learner is not essential).
  Automaton Ref = makeUnorderedFA(templateAlphabet(R.Violations.traces()),
                                  R.Violations.table());

  // Steps 1b/1c: cluster.
  Session S(std::move(R.Violations), std::move(Ref));
  EXPECT_TRUE(S.rejectedObjects().empty());
  EXPECT_GT(S.lattice().size(), 2u);

  // Step 2: label. Violation traces that the *correct* protocol accepts
  // are good (spec bugs); the rest demonstrate program errors.
  Oracle Truth(W.Model, S.table());
  ReferenceLabeling Target = Truth.referenceLabeling(S);
  ASSERT_TRUE(checkWellFormed(S, Target).LatticeWellFormed);
  TopDownStrategy TD;
  StrategyCost Cost = TD.run(S, Target);
  ASSERT_TRUE(Cost.Finished);

  // Step 2b: check the labeling — the FA over good traces must accept
  // every good trace and no bad one.
  LabelId Good = S.internLabel("good");
  Automaton GoodFA = S.showFA(S.lattice().top(), TraceSelect::WithLabel, Good);
  for (size_t Obj = 0; Obj < S.numObjects(); ++Obj) {
    bool IsGood = Target.Target[Obj] == Good;
    EXPECT_EQ(GoodFA.accepts(S.object(Obj), S.table()), IsGood);
  }

  // Step 3: fix the specification: buggy spec ∪ good traces must accept
  // every correct scenario in the corpus while still rejecting bad ones
  // (here we check the language fix on the observed corpus).
  for (size_t Obj = 0; Obj < S.numObjects(); ++Obj) {
    if (Target.Target[Obj] == Good)
      EXPECT_TRUE(Truth.isCorrect(S.object(Obj), S.table()));
    else
      EXPECT_FALSE(Truth.isCorrect(S.object(Obj), S.table()));
  }
}

TEST(EndToEndTest, Section22DebuggingAMinedSpecification) {
  StdioWorld W;

  // Mine a specification from buggy training runs.
  MinerOptions Options;
  Options.Extract.SeedNames = W.Model.Seeds;
  Options.Learn.S = 1.0;
  Miner M(Options);
  MiningResult Mined = M.mine(W.Runs, "stdio");
  ASSERT_GT(Mined.Scenarios.size(), 0u);

  // Step 1a: the miner's FA is the reference FA (§2.2).
  Session S(Mined.Scenarios, Mined.Spec.FA);

  // Step 2: the expert labels scenario traces.
  Oracle Truth(W.Model, S.table());
  ReferenceLabeling Target = Truth.referenceLabeling(S);
  ExpertSimStrategy Expert;
  StrategyCost Cost = Expert.run(S, Target);
  if (!Cost.Finished) {
    // If the mined lattice is not well-formed, focus with the unordered
    // template (§4.3's remedy) and finish there.
    std::vector<Trace> Reps;
    for (size_t Obj = 0; Obj < S.numObjects(); ++Obj)
      Reps.push_back(S.object(Obj));
    FocusSession F = S.focus(
        S.lattice().top(),
        makeUnorderedFA(templateAlphabet(Reps), S.table()));
    ReferenceLabeling SubTarget = Truth.referenceLabeling(F.Sub);
    TopDownStrategy TD;
    ASSERT_TRUE(TD.run(F.Sub, SubTarget).Finished);
    S.mergeBack(F);
  }
  ASSERT_TRUE(S.allLabeled());

  // Step 3: rerun the back end on the good traces.
  LabelId Good = S.internLabel("good");
  std::vector<Trace> GoodTraces;
  for (size_t Obj = 0; Obj < S.numObjects(); ++Obj)
    if (*S.labelOf(Obj) == Good)
      GoodTraces.push_back(S.object(Obj));
  ASSERT_FALSE(GoodTraces.empty());
  Specification Fixed = M.learn(GoodTraces, S.table(), "stdio-fixed");

  // The fixed specification accepts all good and rejects all bad
  // scenarios.
  for (size_t Obj = 0; Obj < S.numObjects(); ++Obj) {
    bool IsGood = *S.labelOf(Obj) == Good;
    EXPECT_EQ(Fixed.FA.accepts(S.object(Obj), S.table()), IsGood)
        << S.object(Obj).render(S.table());
  }

  // And it generalizes: most freshly sampled correct scenarios (including
  // unseen read/write interleavings) are accepted. Perfect generalization
  // is not guaranteed — §2.2 discusses exactly this miner limitation — so
  // require a large majority rather than all.
  RNG Sample(77);
  size_t Accepted = 0, Sampled = 0;
  for (int I = 0; I < 50; ++I) {
    Trace T = W.Gen.generateCorrect(Sample).canonicalized(S.table());
    if (!Truth.isCorrect(T, S.table()))
      continue;
    ++Sampled;
    if (Fixed.FA.accepts(T, S.table()))
      ++Accepted;
  }
  EXPECT_GE(Accepted * 10, Sampled * 7)
      << "fixed spec accepted only " << Accepted << "/" << Sampled
      << " unseen correct scenarios";
}

TEST(EndToEndTest, CableBeatsBaselineOnXtFree) {
  // The headline result: on the XtFree-style workload, Cable's expert
  // cost is a small fraction of the Baseline cost (paper: 28 vs 224).
  ProtocolModel Model = protocolByName("XtFree");
  EventTable Table;
  WorkloadGenerator Gen(Model, Table);
  RNG Rand(4242);
  TraceSet Scenarios =
      Gen.generateScenarios(Rand, Model.NumRuns * Model.ScenariosPerRun);

  // The unordered template cannot separate a double free from a single
  // free (same event *set*, §4.3); the seed-order template on XtFree
  // distinguishes events before and after the free, which is exactly what
  // the protocol's errors hinge on.
  EventId Seed = Scenarios.table().internEvent("XtFree", {0});
  Automaton Ref = makeSeedOrderFA(templateAlphabet(Scenarios.traces()), Seed,
                                  Scenarios.table());
  Session S(std::move(Scenarios), std::move(Ref));
  Oracle Truth(Model, S.table());
  ReferenceLabeling Target = Truth.referenceLabeling(S);
  ASSERT_TRUE(checkWellFormed(S, Target).LatticeWellFormed);

  ExpertSimStrategy Expert;
  StrategyCost ExpertCost = Expert.run(S, Target);
  ASSERT_TRUE(ExpertCost.Finished);
  BaselineMethod Baseline;
  StrategyCost BaselineCost = Baseline.run(S, Target);

  EXPECT_GE(S.numObjects(), 60u) << "the workload regime must be large";
  EXPECT_LT(ExpertCost.total() * 3, BaselineCost.total())
      << "expert=" << ExpertCost.total()
      << " baseline=" << BaselineCost.total();
}

TEST(EndToEndTest, MultiGoodLabelsGuardAgainstOvergeneralization) {
  // §2.2: with good_fopen / good_popen labels, re-mining per label family
  // prevents the fopen/popen cross products.
  StdioWorld W;
  MinerOptions Options;
  Options.Extract.SeedNames = W.Model.Seeds;
  Miner M(Options);
  TraceSet Scenarios = M.extract(W.Runs);
  Automaton Ref = makeUnorderedFA(templateAlphabet(Scenarios.traces()),
                                  Scenarios.table());
  Session S(std::move(Scenarios), std::move(Ref));
  Oracle Truth(W.Model, S.table());
  ReferenceLabeling Target = Truth.referenceLabeling(S, /*Variants=*/true);
  EXPECT_GE(S.numLabels(), 2u);

  BottomUpStrategy BU;
  if (!BU.run(S, Target).Finished)
    GTEST_SKIP() << "variant labeling not separable on this lattice";

  // Mine one specification per good variant, then union: the result must
  // reject the cross products.
  EventTable &T = S.table();
  std::vector<Trace> AllGood;
  bool RejectsCross = true;
  for (LabelId L = 0; L < S.numLabels(); ++L) {
    if (S.labelName(L).rfind("good_", 0) != 0)
      continue;
    std::vector<Trace> Family;
    for (size_t Obj : S.objectsWithLabel(L))
      Family.push_back(S.object(Obj));
    if (Family.empty())
      continue;
    Specification Spec = M.learn(Family, T, S.labelName(L));
    Trace Cross = cable::test::makeTrace(T, "popen(v0) fclose(v0)");
    RejectsCross &= !Spec.FA.accepts(Cross, T);
    for (const Trace &Tr : Family)
      EXPECT_TRUE(Spec.FA.accepts(Tr, T));
  }
  EXPECT_TRUE(RejectsCross);
}
