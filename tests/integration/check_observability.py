#!/usr/bin/env python3
"""Validates the run artifacts a journaled cable-cli script run must
produce: a Chrome trace-event JSON (Perfetto-loadable shape), a
cable-metrics/1 snapshot, and a cable-run-report/1 document — plus the
black-box artifacts of the logging layer.

Usage:
  check_observability.py TRACE METRICS REPORT [--sharded SERIAL_METRICS]
  check_observability.py --log FILE [--multiproc]
  check_observability.py --crashdump FILE [--expect-failpoint NAME]

With --sharded the run used --shard-workers: the trace must additionally
stitch every worker process onto its own named pid track with complete
dispatch -> compute -> merge flow chains, the report must carry the
`sharded` section, and counter conservation is asserted against a serial
run's metrics snapshot (fault-free merged lattice.closures equals the
serial builder's count exactly).

With --log the file must be cable-log/1 JSONL: a header object followed
by records sorted by (pid, seq) with per-pid strictly increasing
sequence numbers; --multiproc additionally requires records from more
than one pid (a merged supervisor+worker log).

With --crashdump the file must be one cable-crashdump/1 JSON document;
--expect-failpoint NAME additionally requires the captured log tail to
end in a failpoint-crash record naming that failpoint — the black box
must identify what killed the process.

Exits non-zero with a message on the first violated invariant.
"""

import json
import sys


def fail(msg):
    print("check_observability: FAIL:", msg)
    sys.exit(1)


def check_sharded_trace(events):
    """One named track per process, flow arrows crossing pid tracks."""
    proc_names = {}
    for ev in events:
        if ev.get("name") == "process_name":
            pid = ev["pid"]
            if pid in proc_names:
                fail("pid %d named twice" % pid)
            proc_names[pid] = ev["args"]["name"]
    supervisors = [p for p, n in proc_names.items()
                   if not n.startswith("shard-worker-")]
    workers = {p for p, n in proc_names.items()
               if n.startswith("shard-worker-")}
    if len(supervisors) != 1:
        fail("expected exactly one supervisor track, have %r" % proc_names)
    if not workers:
        fail("no shard-worker pid tracks in %r" % proc_names)
    sup = supervisors[0]
    for ev in events:
        if ev["pid"] not in proc_names:
            fail("event on unnamed pid %d: %r" % (ev["pid"], ev))

    # Every flow id must form a complete chain: 's' (dispatch) and 'f'
    # (merge) on the supervisor track, 't' (compute) on a worker track.
    flows = {}
    for ev in events:
        if ev["ph"] in ("s", "t", "f"):
            flows.setdefault(ev["id"], {})[ev["ph"]] = ev["pid"]
    if not flows:
        fail("no flow events in a sharded trace")
    for fid, chain in flows.items():
        if sorted(chain) != ["f", "s", "t"]:
            fail("flow %r incomplete: %r" % (fid, chain))
        if chain["s"] != sup or chain["f"] != sup:
            fail("flow %r dispatch/merge not on the supervisor" % fid)
        if chain["t"] not in workers:
            fail("flow %r compute not on a worker track" % fid)
    worker_spans = [ev for ev in events
                    if ev["ph"] == "X" and ev["pid"] in workers]
    if not any(ev["name"] == "shard-block" for ev in worker_spans):
        fail("no shard-block span on any worker track")
    return len(workers), len(flows)


def check_sharded_ledger(counters, report, serial_counters):
    """Counter conservation and the report's sharded section."""
    for name in ("lattice.closures", "lattice.concepts"):
        got, want = counters.get(name, 0), serial_counters.get(name, 0)
        if got != want:
            fail("%s not conserved: sharded merged %d != serial %d"
                 % (name, got, want))
    if counters.get("shard.telemetry-lost", 0) != 0:
        fail("fault-free run lost telemetry: %r"
             % counters.get("shard.telemetry-lost"))
    merged = counters.get("shard.telemetry-merged", 0)
    dispatched = counters.get("shard.blocks-dispatched", 0)
    if dispatched <= 0:
        fail("no blocks dispatched in a sharded run")
    if merged < dispatched:
        fail("merged flushes %d < dispatched blocks %d"
             % (merged, dispatched))
    sharded = report.get("sharded")
    if not sharded:
        fail("run report missing the sharded section")
    if sharded["flushes_lost"] != 0 or sharded["workers"] <= 0:
        fail("bad sharded section %r" % sharded)
    if sum(sharded["blocks_per_worker"]) != sharded["blocks_dispatched"]:
        fail("per-worker attribution %r does not cover %d dispatched"
             % (sharded["blocks_per_worker"], sharded["blocks_dispatched"]))


LEVELS = ("debug", "info", "warn", "error")


def check_log(path, multiproc):
    """cable-log/1 JSONL: header, then records sorted by (pid, seq)."""
    lines = [ln for ln in open(path).read().splitlines() if ln]
    if not lines:
        fail("log file is empty")
    try:
        docs = [json.loads(ln) for ln in lines]
    except ValueError as e:
        fail("log line is not JSON: %s" % e)
    header, records = docs[0], docs[1:]
    if header.get("schema") != "cable-log/1":
        fail("bad log schema %r" % header.get("schema"))
    for key in ("tool", "pid"):
        if key not in header:
            fail("log header missing %r" % key)
    # A signal-interrupted run writes the header from the async-signal-safe
    # dumper, which cannot take the locks droppedCount needs; only those
    # headers may omit the counter.
    if "dropped" not in header and not header.get("interrupted"):
        fail("log header missing 'dropped'")
    if header.get("dropped", 0) < 0:
        fail("negative dropped count %r" % header["dropped"])

    last = {}  # pid -> last seq
    prev_pid = None
    for rec in records:
        for key in ("seq", "pid", "tid", "t_us", "level", "event",
                    "subsystem", "msg"):
            if key not in rec:
                fail("record missing %r: %r" % (key, rec))
        if rec["level"] not in LEVELS:
            fail("bad level %r" % rec["level"])
        for code in (rec["event"], rec["subsystem"]):
            if not code or not all(c.islower() or c.isdigit() or c == "-"
                                   for c in code):
                fail("event/subsystem not kebab-case: %r" % code)
        pid = rec["pid"]
        # Export order is (pid, seq): pid blocks never interleave, and
        # within a pid the sequence is strictly increasing — one coherent
        # per-process story even in a merged multi-process log.
        if prev_pid is not None and pid != prev_pid and pid in last:
            fail("pid %d appears in two separate blocks" % pid)
        if pid in last and rec["seq"] <= last[pid]:
            fail("pid %d seq not increasing: %d after %d"
                 % (pid, rec["seq"], last[pid]))
        last[pid] = rec["seq"]
        prev_pid = pid
    if multiproc and len(last) < 2:
        fail("merged log has records from %d pid(s), expected several"
             % len(last))
    print("check_observability: OK (log: %d records from %d pid(s), "
          "%s dropped)" % (len(records), len(last),
                           header.get("dropped", "?")))


def check_crashdump(path, expect_failpoint):
    """One cable-crashdump/1 document; optionally pin the cause."""
    try:
        dump = json.load(open(path))
    except ValueError as e:
        fail("crash dump is not JSON: %s" % e)
    if dump.get("schema") != "cable-crashdump/1":
        fail("bad crash dump schema %r" % dump.get("schema"))
    for key in ("tool", "pid", "reason", "log_records", "span_stacks",
                "metrics"):
        if key not in dump:
            fail("crash dump missing %r" % key)
    if dump["reason"] not in ("signal", "terminate", "unhandled-exception",
                              "failpoint-crash"):
        fail("unknown crash reason %r" % dump["reason"])
    if dump["reason"] == "signal" and "signal" not in dump:
        fail("signal dump carries no signal number")
    for section in ("counters", "gauges", "histograms"):
        if section not in dump["metrics"]:
            fail("crash dump metrics missing %r" % section)
    for rec in dump["log_records"]:
        if "event" not in rec or "seq" not in rec:
            fail("malformed captured log record %r" % rec)
    if expect_failpoint:
        crash_recs = [r for r in dump["log_records"]
                      if r["event"] == "failpoint-crash"]
        if not crash_recs:
            fail("no failpoint-crash record in the captured log tail")
        name = crash_recs[-1].get("fields", {}).get("name")
        if name != expect_failpoint:
            fail("crash record names failpoint %r, expected %r"
                 % (name, expect_failpoint))
    print("check_observability: OK (crash dump: reason %s, %d log records, "
          "%d span stacks)" % (dump["reason"], len(dump["log_records"]),
                               len(dump["span_stacks"])))


def main():
    if len(sys.argv) > 1 and sys.argv[1] == "--log":
        if len(sys.argv) < 3:
            fail("usage: --log FILE [--multiproc]")
        check_log(sys.argv[2], "--multiproc" in sys.argv[3:])
        return
    if len(sys.argv) > 1 and sys.argv[1] == "--crashdump":
        if len(sys.argv) < 3:
            fail("usage: --crashdump FILE [--expect-failpoint NAME]")
        expect = None
        if "--expect-failpoint" in sys.argv[3:]:
            at = sys.argv.index("--expect-failpoint")
            if at + 1 >= len(sys.argv):
                fail("--expect-failpoint needs a name")
            expect = sys.argv[at + 1]
        check_crashdump(sys.argv[2], expect)
        return

    trace_path, metrics_path, report_path = sys.argv[1:4]
    serial_metrics_path = None
    if len(sys.argv) > 4:
        if sys.argv[4] != "--sharded" or len(sys.argv) < 6:
            fail("usage: TRACE METRICS REPORT [--sharded SERIAL_METRICS]")
        serial_metrics_path = sys.argv[5]
    trace = json.load(open(trace_path))
    metrics = json.load(open(metrics_path))
    report = json.load(open(report_path))

    # --- trace: the object form Perfetto/chrome://tracing accept.
    events = trace["traceEvents"]
    if not isinstance(events, list) or not events:
        fail("traceEvents missing or empty")
    phases = ("X", "M", "s", "t", "f") if serial_metrics_path else ("X", "M")
    for ev in events:
        if ev["ph"] not in phases:
            fail("unexpected event phase %r" % ev["ph"])
        if ev["ph"] == "X" and (ev["ts"] < 0 or ev["dur"] < 0):
            fail("negative ts/dur in %r" % ev)
    names = {ev.get("name") for ev in events}
    for want in ("session-init", "lattice-build", "journal-fsync",
                 "cmd status", "cmd label"):
        if want not in names:
            fail("missing span %r (have %s)" % (want, sorted(names)))
    threads = {ev["args"]["name"] for ev in events
               if ev.get("name") == "thread_name"}
    if "main" not in threads:
        fail("main thread not named")
    if not any(t.startswith("pool-worker-") for t in threads):
        fail("no pool-worker thread in trace (ran with --threads 2)")
    if "otherData" not in trace or "git_sha" not in trace["otherData"]:
        fail("otherData build stamp missing")

    # --- metrics snapshot.
    if metrics["schema"] != "cable-metrics/1":
        fail("bad metrics schema %r" % metrics["schema"])
    counters = metrics["metrics"]["counters"]
    if counters.get("lattice.closures", 0) <= 0:
        fail("lattice.closures not counted")
    if counters.get("journal.appends", 0) <= 0:
        fail("journal.appends not counted")
    hist = metrics["metrics"]["histograms"]
    if hist.get("journal.fsync-us", {}).get("count", 0) <= 0:
        fail("journal.fsync-us histogram empty under --journal-sync always")

    # --- run report.
    if report["schema"] != "cable-run-report/1":
        fail("bad report schema %r" % report["schema"])
    if report["tool"] != "cable-cli":
        fail("bad tool %r" % report["tool"])
    if report["exit_code"] != 0 or not report["clean_exit"]:
        fail("run report says the run failed: %r" % report)
    if "--journal" not in report["args"]:
        fail("args not recorded")
    for key in ("version", "git_sha", "build_type"):
        if key not in report:
            fail("report missing %r" % key)

    # --- multi-process stitching and conservation.
    if serial_metrics_path:
        serial = json.load(open(serial_metrics_path))
        num_workers, num_flows = check_sharded_trace(events)
        check_sharded_ledger(counters, report,
                             serial["metrics"]["counters"])
        print("check_observability: OK (%d trace events, %d counters, "
              "%d worker tracks, %d flow chains)"
              % (len(events), len(counters), num_workers, num_flows))
        return

    print("check_observability: OK (%d trace events, %d counters)"
          % (len(events), len(counters)))


if __name__ == "__main__":
    main()
