#!/usr/bin/env python3
"""Validates the three run artifacts a journaled cable-cli script run
must produce: a Chrome trace-event JSON (Perfetto-loadable shape), a
cable-metrics/1 snapshot, and a cable-run-report/1 document.

Usage: check_observability.py TRACE METRICS REPORT
Exits non-zero with a message on the first violated invariant.
"""

import json
import sys


def fail(msg):
    print("check_observability: FAIL:", msg)
    sys.exit(1)


def main():
    trace_path, metrics_path, report_path = sys.argv[1:4]
    trace = json.load(open(trace_path))
    metrics = json.load(open(metrics_path))
    report = json.load(open(report_path))

    # --- trace: the object form Perfetto/chrome://tracing accept.
    events = trace["traceEvents"]
    if not isinstance(events, list) or not events:
        fail("traceEvents missing or empty")
    for ev in events:
        if ev["ph"] not in ("X", "M"):
            fail("unexpected event phase %r" % ev["ph"])
        if ev["ph"] == "X" and (ev["ts"] < 0 or ev["dur"] < 0):
            fail("negative ts/dur in %r" % ev)
    names = {ev.get("name") for ev in events}
    for want in ("session-init", "lattice-build", "journal-fsync",
                 "cmd status", "cmd label"):
        if want not in names:
            fail("missing span %r (have %s)" % (want, sorted(names)))
    threads = {ev["args"]["name"] for ev in events
               if ev.get("name") == "thread_name"}
    if "main" not in threads:
        fail("main thread not named")
    if not any(t.startswith("pool-worker-") for t in threads):
        fail("no pool-worker thread in trace (ran with --threads 2)")
    if "otherData" not in trace or "git_sha" not in trace["otherData"]:
        fail("otherData build stamp missing")

    # --- metrics snapshot.
    if metrics["schema"] != "cable-metrics/1":
        fail("bad metrics schema %r" % metrics["schema"])
    counters = metrics["metrics"]["counters"]
    if counters.get("lattice.closures", 0) <= 0:
        fail("lattice.closures not counted")
    if counters.get("journal.appends", 0) <= 0:
        fail("journal.appends not counted")
    hist = metrics["metrics"]["histograms"]
    if hist.get("journal.fsync-us", {}).get("count", 0) <= 0:
        fail("journal.fsync-us histogram empty under --journal-sync always")

    # --- run report.
    if report["schema"] != "cable-run-report/1":
        fail("bad report schema %r" % report["schema"])
    if report["tool"] != "cable-cli":
        fail("bad tool %r" % report["tool"])
    if report["exit_code"] != 0 or not report["clean_exit"]:
        fail("run report says the run failed: %r" % report)
    if "--journal" not in report["args"]:
        fail("args not recorded")
    for key in ("version", "git_sha", "build_type"):
        if key not in report:
            fail("report missing %r" % key)

    print("check_observability: OK (%d trace events, %d counters)"
          % (len(events), len(counters)))


if __name__ == "__main__":
    main()
