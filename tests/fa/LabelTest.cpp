//===- tests/fa/LabelTest.cpp ----------------------------------------------===//
//
// Part of the Cable reproduction of "Debugging Temporal Specifications with
// Concept Analysis" (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//

#include "fa/Label.h"

#include <gtest/gtest.h>

using namespace cable;

namespace {

struct LabelTest : ::testing::Test {
  EventTable T;
  NameId F = T.internName("f");
  NameId G = T.internName("g");
};

} // namespace

TEST_F(LabelTest, WildcardMatchesEverything) {
  TransitionLabel W = TransitionLabel::wildcard();
  EXPECT_TRUE(W.matches(Event(F, {})));
  EXPECT_TRUE(W.matches(Event(G, {1, 2})));
}

TEST_F(LabelTest, EpsilonMatchesNothing) {
  TransitionLabel E = TransitionLabel::epsilon();
  EXPECT_TRUE(E.isEpsilon());
  EXPECT_FALSE(E.matches(Event(F, {})));
}

TEST_F(LabelTest, NameAnyIgnoresArgs) {
  TransitionLabel L = TransitionLabel::nameAny(F);
  EXPECT_TRUE(L.matches(Event(F, {})));
  EXPECT_TRUE(L.matches(Event(F, {7, 8, 9})));
  EXPECT_FALSE(L.matches(Event(G, {})));
}

TEST_F(LabelTest, ExactMatchesNameArityAndValues) {
  TransitionLabel L = TransitionLabel::exact(
      F, {ArgPattern::value(1), ArgPattern::any()});
  EXPECT_TRUE(L.matches(Event(F, {1, 5})));
  EXPECT_TRUE(L.matches(Event(F, {1, 1})));
  EXPECT_FALSE(L.matches(Event(F, {2, 5}))) << "first arg must be 1";
  EXPECT_FALSE(L.matches(Event(F, {1}))) << "arity mismatch";
  EXPECT_FALSE(L.matches(Event(F, {1, 5, 6}))) << "arity mismatch";
  EXPECT_FALSE(L.matches(Event(G, {1, 5}))) << "name mismatch";
}

TEST_F(LabelTest, ExactEventBuildsConcretePatterns) {
  Event E(F, {3, 4});
  TransitionLabel L = TransitionLabel::exactEvent(E);
  EXPECT_TRUE(L.matches(E));
  EXPECT_FALSE(L.matches(Event(F, {3, 5})));
}

TEST_F(LabelTest, MentionsValue) {
  TransitionLabel L = TransitionLabel::exact(
      F, {ArgPattern::value(2), ArgPattern::any()});
  EXPECT_TRUE(L.mentionsValue(2));
  EXPECT_FALSE(L.mentionsValue(0)) << "wildcard arg mentions nothing";
  EXPECT_FALSE(TransitionLabel::wildcard().mentionsValue(2));
  EXPECT_FALSE(TransitionLabel::nameAny(F).mentionsValue(2));
}

TEST_F(LabelTest, Render) {
  EXPECT_EQ(TransitionLabel::wildcard().render(T), "<any>");
  EXPECT_EQ(TransitionLabel::epsilon().render(T), "<eps>");
  EXPECT_EQ(TransitionLabel::nameAny(F).render(T), "f(..)");
  EXPECT_EQ(TransitionLabel::exact(F, {}).render(T), "f");
  EXPECT_EQ(TransitionLabel::exact(F, {ArgPattern::value(0),
                                       ArgPattern::any()})
                .render(T),
            "f(v0,*)");
}

TEST_F(LabelTest, Equality) {
  TransitionLabel A = TransitionLabel::exact(F, {ArgPattern::value(1)});
  TransitionLabel B = TransitionLabel::exact(F, {ArgPattern::value(1)});
  TransitionLabel C = TransitionLabel::exact(F, {ArgPattern::any()});
  EXPECT_TRUE(A == B);
  EXPECT_FALSE(A == C);
  EXPECT_FALSE(A == TransitionLabel::wildcard());
}
