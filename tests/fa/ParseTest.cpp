//===- tests/fa/ParseTest.cpp ----------------------------------------------===//
//
// Part of the Cable reproduction of "Debugging Temporal Specifications with
// Concept Analysis" (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//

#include "fa/Parse.h"

#include "../TestHelpers.h"
#include "fa/Dfa.h"

#include <gtest/gtest.h>

using namespace cable;
using cable::test::compileFA;
using cable::test::makeTrace;

TEST(ParseTest, ParsesSimpleAutomaton) {
  EventTable T;
  std::string Err;
  std::optional<Automaton> FA = parseAutomaton(R"(
    # the stdio open/close core
    start q0
    accept q2
    q0 fopen(v0) q1
    q1 fread(v0) q1
    q1 fclose(v0) q2
  )",
                                               T, Err);
  ASSERT_TRUE(FA.has_value()) << Err;
  EXPECT_EQ(FA->numStates(), 3u);
  EXPECT_EQ(FA->numTransitions(), 3u);
  EXPECT_TRUE(FA->accepts(makeTrace(T, "fopen(v0) fclose(v0)"), T));
  EXPECT_TRUE(FA->accepts(
      makeTrace(T, "fopen(v0) fread(v0) fread(v0) fclose(v0)"), T));
  EXPECT_FALSE(FA->accepts(makeTrace(T, "fopen(v0)"), T));
}

TEST(ParseTest, WildcardAndNameAnyLabels) {
  EventTable T;
  std::string Err;
  std::optional<Automaton> FA = parseAutomaton("start q0\n"
                                               "accept q1\n"
                                               "q0 <any> q1\n"
                                               "q1 ~f q1\n",
                                               T, Err);
  ASSERT_TRUE(FA.has_value()) << Err;
  EXPECT_TRUE(FA->accepts(makeTrace(T, "zzz"), T));
  EXPECT_TRUE(FA->accepts(makeTrace(T, "zzz f(v0,v1) f"), T));
  EXPECT_FALSE(FA->accepts(makeTrace(T, "zzz g"), T));
}

TEST(ParseTest, WildcardArgPattern) {
  EventTable T;
  std::string Err;
  std::optional<Automaton> FA = parseAutomaton("start q0\naccept q1\n"
                                               "q0 f(v0,*) q1\n",
                                               T, Err);
  ASSERT_TRUE(FA.has_value()) << Err;
  EXPECT_TRUE(FA->accepts(makeTrace(T, "f(v0,v9)"), T));
  EXPECT_FALSE(FA->accepts(makeTrace(T, "f(v1,v9)"), T));
}

TEST(ParseTest, SparseStateIdsAreCompacted) {
  EventTable T;
  std::string Err;
  std::optional<Automaton> FA = parseAutomaton("start q10\naccept q99\n"
                                               "q10 a q99\n",
                                               T, Err);
  ASSERT_TRUE(FA.has_value()) << Err;
  EXPECT_EQ(FA->numStates(), 2u);
  EXPECT_TRUE(FA->accepts(makeTrace(T, "a"), T));
}

TEST(ParseTest, Errors) {
  EventTable T;
  std::string Err;
  EXPECT_FALSE(parseAutomaton("start\n", T, Err).has_value());
  EXPECT_NE(Err.find("line 1"), std::string::npos);
  EXPECT_FALSE(parseAutomaton("q0 a\n", T, Err).has_value());
  EXPECT_FALSE(parseAutomaton("x0 a q1\n", T, Err).has_value());
  EXPECT_FALSE(parseAutomaton("q0 a(vx) q1\n", T, Err).has_value());
  EXPECT_FALSE(parseAutomaton("q0 a(v0 q1\n", T, Err).has_value());
  EXPECT_FALSE(parseAutomaton("q0 ~ q1\n", T, Err).has_value());
}

TEST(ParseTest, RoundTripPreservesLanguage) {
  EventTable T;
  Automaton Orig = compileFA(
      "[fopen(v0) [fread(v0) | fwrite(v0)]* fclose(v0)] | "
      "[popen(v0) pclose(v0)]",
      T);
  std::string Text = renderAutomatonText(Orig, T);
  std::string Err;
  std::optional<Automaton> Again = parseAutomaton(Text, T, Err);
  ASSERT_TRUE(Again.has_value()) << Err;
  std::vector<EventId> Alphabet;
  for (const char *E :
       {"fopen(v0)", "fread(v0)", "fwrite(v0)", "fclose(v0)", "popen(v0)",
        "pclose(v0)"}) {
    std::string E2;
    Alphabet.push_back(*T.parseEvent(E, E2));
  }
  Dfa A = Dfa::determinize(Orig, Alphabet, T);
  Dfa B = Dfa::determinize(*Again, Alphabet, T);
  EXPECT_TRUE(Dfa::equivalent(A, B));
}

TEST(ParseTest, RoundTripKeepsLabelKinds) {
  EventTable T;
  std::string Err;
  std::optional<Automaton> FA = parseAutomaton("start q0\naccept q0\n"
                                               "q0 <any> q0\n"
                                               "q0 ~f q0\n"
                                               "q0 f(v0,*) q0\n",
                                               T, Err);
  ASSERT_TRUE(FA.has_value()) << Err;
  std::string Text = renderAutomatonText(*FA, T);
  EXPECT_NE(Text.find("<any>"), std::string::npos);
  EXPECT_NE(Text.find("~f"), std::string::npos);
  EXPECT_NE(Text.find("f(v0,*)"), std::string::npos);
}

TEST(ParseTest, DiagnosticCarriesLineAndColumn) {
  EventTable T;
  Diagnostic Diag;
  // Line 2: the bad label token starts at 0-based offset 3 -> column 4.
  EXPECT_FALSE(
      parseAutomaton("start q0\nq0 a(vx) q1\n", T, Diag).has_value());
  EXPECT_EQ(Diag.Code, ErrorCode::ParseError);
  EXPECT_EQ(Diag.Pos.Line, 2u);
  EXPECT_EQ(Diag.Pos.Col, 4u);

  // Bad source state: column 1 on line 1.
  Diagnostic D2;
  EXPECT_FALSE(parseAutomaton("x0 a q1\n", T, D2).has_value());
  EXPECT_EQ(D2.Pos.Line, 1u);
  EXPECT_EQ(D2.Pos.Col, 1u);
}

TEST(ParseTest, OverflowStateNameIsAnErrorNotACrash) {
  EventTable T;
  Diagnostic Diag;
  // A state number beyond unsigned long is a bad state name, not a crash.
  EXPECT_FALSE(
      parseAutomaton("start q0\nq0 a q99999999999999999999\n", T, Diag)
          .has_value());
  EXPECT_EQ(Diag.Pos.Line, 2u);
  EXPECT_EQ(Diag.Pos.Col, 6u);
  EXPECT_NE(Diag.Message.find("bad state name"), std::string::npos);
}
