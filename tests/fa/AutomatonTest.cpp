//===- tests/fa/AutomatonTest.cpp ------------------------------------------===//
//
// Part of the Cable reproduction of "Debugging Temporal Specifications with
// Concept Analysis" (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//

#include "fa/Automaton.h"

#include "../TestHelpers.h"
#include "support/RNG.h"

#include <gtest/gtest.h>

#include <set>

using namespace cable;
using cable::test::compileFA;
using cable::test::makeTrace;

namespace {

/// Brute force: enumerate every accepting run of \p FA over \p T (DFS on
/// (state, position)) and collect all transitions used on any of them.
/// Oracle for Automaton::executedTransitions.
BitVector bruteForceExecuted(const Automaton &FA, const Trace &T,
                             const EventTable &Table) {
  BitVector Out(FA.numTransitions());
  std::vector<TransitionId> Path;
  auto DFS = [&](auto &&Self, StateId S, size_t Pos) -> void {
    if (Pos == T.size()) {
      if (FA.isAccepting(S))
        for (TransitionId TI : Path)
          Out.set(TI);
      return;
    }
    const Event &E = Table.event(T[Pos]);
    for (TransitionId TI : FA.outgoing(S)) {
      const Transition &Tr = FA.transition(TI);
      if (!Tr.Label.matches(E))
        continue;
      Path.push_back(TI);
      Self(Self, Tr.To, Pos + 1);
      Path.pop_back();
    }
  };
  for (size_t S = 0; S < FA.numStates(); ++S)
    if (FA.isStart(static_cast<StateId>(S)))
      DFS(DFS, static_cast<StateId>(S), 0);
  return Out;
}

/// Generates a random epsilon-free NFA over \p Names.
Automaton randomNFA(RNG &Rand, EventTable &Table,
                    const std::vector<std::string> &Names) {
  Automaton FA;
  size_t NumStates = 2 + Rand.nextIndex(4);
  for (size_t S = 0; S < NumStates; ++S)
    FA.addState();
  FA.setStart(static_cast<StateId>(Rand.nextIndex(NumStates)));
  FA.setAccepting(static_cast<StateId>(Rand.nextIndex(NumStates)));
  if (Rand.nextBool(0.4))
    FA.setAccepting(static_cast<StateId>(Rand.nextIndex(NumStates)));
  size_t NumTransitions = 3 + Rand.nextIndex(8);
  for (size_t I = 0; I < NumTransitions; ++I) {
    StateId From = static_cast<StateId>(Rand.nextIndex(NumStates));
    StateId To = static_cast<StateId>(Rand.nextIndex(NumStates));
    const std::string &Name = Names[Rand.nextIndex(Names.size())];
    FA.addTransition(From, To,
                     TransitionLabel::exact(Table.internName(Name), {}));
  }
  return FA;
}

Trace randomTrace(RNG &Rand, EventTable &Table,
                  const std::vector<std::string> &Names, size_t MaxLen) {
  Trace T;
  size_t Len = Rand.nextIndex(MaxLen + 1);
  for (size_t I = 0; I < Len; ++I)
    T.append(Table.internEvent(Names[Rand.nextIndex(Names.size())]));
  return T;
}

} // namespace

TEST(AutomatonTest, EmptyAutomatonAcceptsNothing) {
  EventTable T;
  Automaton FA;
  StateId S = FA.addState();
  FA.setStart(S);
  EXPECT_FALSE(FA.accepts(Trace(), T));
  FA.setAccepting(S);
  EXPECT_TRUE(FA.accepts(Trace(), T));
}

TEST(AutomatonTest, AcceptsSimpleSequence) {
  EventTable T;
  Automaton FA = compileFA("a b c", T);
  EXPECT_TRUE(FA.accepts(makeTrace(T, "a b c"), T));
  EXPECT_FALSE(FA.accepts(makeTrace(T, "a b"), T));
  EXPECT_FALSE(FA.accepts(makeTrace(T, "a b c c"), T));
  EXPECT_FALSE(FA.accepts(makeTrace(T, "b a c"), T));
}

TEST(AutomatonTest, AcceptsKleeneAndAlternation) {
  EventTable T;
  Automaton FA = compileFA("open(v0) [read(v0) | write(v0)]* close(v0)", T);
  EXPECT_TRUE(FA.accepts(makeTrace(T, "open(v0) close(v0)"), T));
  EXPECT_TRUE(FA.accepts(
      makeTrace(T, "open(v0) read(v0) write(v0) read(v0) close(v0)"), T));
  EXPECT_FALSE(FA.accepts(makeTrace(T, "open(v0) read(v0)"), T));
  EXPECT_FALSE(FA.accepts(makeTrace(T, "open(v0) read(v1) close(v0)"), T))
      << "wrong value must not match";
}

TEST(AutomatonTest, MultipleStartStates) {
  EventTable T;
  Automaton FA;
  StateId A = FA.addState();
  StateId B = FA.addState();
  StateId End = FA.addState();
  FA.setStart(A);
  FA.setStart(B);
  FA.setAccepting(End);
  FA.addTransition(A, End, TransitionLabel::exact(T.internName("x"), {}));
  FA.addTransition(B, End, TransitionLabel::exact(T.internName("y"), {}));
  EXPECT_TRUE(FA.accepts(makeTrace(T, "x"), T));
  EXPECT_TRUE(FA.accepts(makeTrace(T, "y"), T));
  EXPECT_FALSE(FA.accepts(makeTrace(T, "x y"), T));
}

TEST(AutomatonTest, ExecutedTransitionsSimplePath) {
  EventTable T;
  Automaton FA = compileFA("a b", T);
  BitVector Ex = FA.executedTransitions(makeTrace(T, "a b"), T);
  EXPECT_EQ(Ex.count(), 2u);
}

TEST(AutomatonTest, ExecutedTransitionsEmptyForRejectedTrace) {
  EventTable T;
  Automaton FA = compileFA("a b", T);
  EXPECT_TRUE(FA.executedTransitions(makeTrace(T, "a"), T).none());
  EXPECT_TRUE(FA.executedTransitions(makeTrace(T, "b a"), T).none());
}

TEST(AutomatonTest, ExecutedTransitionsOnlyAcceptingRuns) {
  // Two branches on 'a': one leads to acceptance after 'b', the other dead
  // ends. Only the accepting branch's transitions are executed.
  EventTable T;
  Automaton FA;
  StateId S0 = FA.addState(), S1 = FA.addState(), S2 = FA.addState(),
          Dead = FA.addState();
  FA.setStart(S0);
  FA.setAccepting(S2);
  NameId A = T.internName("a"), B = T.internName("b");
  TransitionId Good = FA.addTransition(S0, S1, TransitionLabel::exact(A, {}));
  TransitionId Stray =
      FA.addTransition(S0, Dead, TransitionLabel::exact(A, {}));
  TransitionId Fin = FA.addTransition(S1, S2, TransitionLabel::exact(B, {}));
  BitVector Ex = FA.executedTransitions(makeTrace(T, "a b"), T);
  EXPECT_TRUE(Ex.test(Good));
  EXPECT_TRUE(Ex.test(Fin));
  EXPECT_FALSE(Ex.test(Stray)) << "dead-end branch is not on an accepting run";
}

TEST(AutomatonTest, ExecutedDistinguishesOrder) {
  // The paper's motivating property: traces that call popen before pclose
  // execute different transitions than those calling pclose before popen.
  EventTable T;
  Automaton FA = compileFA("[popen(v0) pclose(v0)] | [pclose(v0) popen(v0)]",
                           T);
  BitVector E1 = FA.executedTransitions(makeTrace(T, "popen(v0) pclose(v0)"),
                                        T);
  BitVector E2 = FA.executedTransitions(makeTrace(T, "pclose(v0) popen(v0)"),
                                        T);
  EXPECT_FALSE(E1.none());
  EXPECT_FALSE(E2.none());
  EXPECT_FALSE(E1.intersects(E2));
}

TEST(AutomatonTest, WildcardTransitionsExecute) {
  EventTable T;
  Automaton FA;
  StateId S = FA.addState();
  FA.setStart(S);
  FA.setAccepting(S);
  TransitionId W = FA.addTransition(S, S, TransitionLabel::wildcard());
  TransitionId X =
      FA.addTransition(S, S, TransitionLabel::exact(T.internName("x"), {}));
  BitVector Ex = FA.executedTransitions(makeTrace(T, "x y"), T);
  EXPECT_TRUE(Ex.test(W));
  EXPECT_TRUE(Ex.test(X));
  BitVector Ey = FA.executedTransitions(makeTrace(T, "y"), T);
  EXPECT_TRUE(Ey.test(W));
  EXPECT_FALSE(Ey.test(X));
}

TEST(AutomatonTest, WithoutEpsilonsPreservesLanguage) {
  EventTable T;
  std::string Err;
  std::optional<Automaton> Raw = compileRegex("a* [b | c]+", T, Err);
  ASSERT_TRUE(Raw.has_value()) << Err;
  ASSERT_TRUE(Raw->hasEpsilons());
  Automaton FA = Raw->withoutEpsilons();
  EXPECT_FALSE(FA.hasEpsilons());
  for (const char *Good : {"b", "c", "a b", "a a b c b"})
    EXPECT_TRUE(FA.accepts(makeTrace(T, Good), T)) << Good;
  for (const char *Bad : {"", "a", "b a"})
    EXPECT_FALSE(FA.accepts(makeTrace(T, Bad), T)) << Bad;
}

TEST(AutomatonTest, TrimmedDropsUselessStates) {
  EventTable T;
  Automaton FA;
  StateId S0 = FA.addState(), S1 = FA.addState();
  StateId Unreachable = FA.addState(), DeadEnd = FA.addState();
  FA.setStart(S0);
  FA.setAccepting(S1);
  NameId A = T.internName("a");
  FA.addTransition(S0, S1, TransitionLabel::exact(A, {}));
  FA.addTransition(S0, DeadEnd, TransitionLabel::exact(A, {}));
  FA.addTransition(Unreachable, S1, TransitionLabel::exact(A, {}));
  Automaton Trim = FA.trimmed();
  EXPECT_EQ(Trim.numStates(), 2u);
  EXPECT_EQ(Trim.numTransitions(), 1u);
  EXPECT_TRUE(Trim.accepts(makeTrace(T, "a"), T));
}

TEST(AutomatonTest, RenderTextAndDotContainStructure) {
  EventTable T;
  Automaton FA = compileFA("a b", T);
  std::string Text = FA.renderText(T);
  EXPECT_NE(Text.find("[start]"), std::string::npos);
  EXPECT_NE(Text.find("[accept]"), std::string::npos);
  EXPECT_NE(Text.find("--a-->"), std::string::npos);
  std::string Dot = FA.renderDot(T, "g");
  EXPECT_NE(Dot.find("doublecircle"), std::string::npos);
  EXPECT_NE(Dot.find("label=\"a\""), std::string::npos);
}

TEST(AutomatonTest, LongestAcceptedLengthOnDags) {
  EventTable T;
  EXPECT_EQ(compileFA("a b c", T).longestAcceptedLength(), 3u);
  EXPECT_EQ(compileFA("a | a b", T).longestAcceptedLength(), 2u);
  EXPECT_EQ(compileFA("", T).longestAcceptedLength(), 0u);
  EXPECT_EQ(compileFA("a? b?", T).longestAcceptedLength(), 2u);
}

TEST(AutomatonTest, LongestAcceptedLengthDetectsLoops) {
  EventTable T;
  EXPECT_FALSE(compileFA("a*", T).longestAcceptedLength().has_value());
  EXPECT_FALSE(compileFA("a b+ c", T).longestAcceptedLength().has_value());
  // A cycle outside every accepting path does not count.
  Automaton FA;
  StateId S0 = FA.addState(), S1 = FA.addState(), Spin = FA.addState();
  FA.setStart(S0);
  FA.setAccepting(S1);
  NameId A = T.internName("a");
  FA.addTransition(S0, S1, TransitionLabel::exact(A, {}));
  FA.addTransition(S0, Spin, TransitionLabel::exact(A, {}));
  FA.addTransition(Spin, Spin, TransitionLabel::exact(A, {}));
  EXPECT_EQ(FA.longestAcceptedLength(), 1u)
      << "the dead-end self-loop is trimmed away";
}

TEST(AutomatonTest, ReversedAcceptsReversedStrings) {
  EventTable T;
  Automaton FA = compileFA("a b c*", T);
  Automaton Rev = FA.reversed();
  RNG Rand(21);
  std::vector<std::string> Names{"a", "b", "c"};
  for (int I = 0; I < 100; ++I) {
    Trace Tr = randomTrace(Rand, T, Names, 6);
    std::vector<EventId> Backwards(Tr.events().rbegin(),
                                   Tr.events().rend());
    Trace RevTr{std::move(Backwards)};
    EXPECT_EQ(FA.accepts(Tr, T), Rev.accepts(RevTr, T)) << Tr.render(T);
  }
}

TEST(AutomatonTest, ReversedTwiceIsOriginalLanguage) {
  EventTable T;
  Automaton FA = compileFA("[a | b b]*", T);
  Automaton Twice = FA.reversed().reversed();
  RNG Rand(22);
  std::vector<std::string> Names{"a", "b"};
  for (int I = 0; I < 100; ++I) {
    Trace Tr = randomTrace(Rand, T, Names, 6);
    EXPECT_EQ(FA.accepts(Tr, T), Twice.accepts(Tr, T));
  }
}

TEST(AutomatonTest, DisjointUnionAcceptsEitherLanguage) {
  EventTable T;
  Automaton A = compileFA("a b", T);
  Automaton B = compileFA("c+", T);
  Automaton U = Automaton::disjointUnion(A, B);
  RNG Rand(23);
  std::vector<std::string> Names{"a", "b", "c"};
  for (int I = 0; I < 150; ++I) {
    Trace Tr = randomTrace(Rand, T, Names, 5);
    EXPECT_EQ(U.accepts(Tr, T), A.accepts(Tr, T) || B.accepts(Tr, T))
        << Tr.render(T);
  }
}

TEST(AutomatonTest, DisjointUnionUnionsExecutedTransitions) {
  // The property the recommended reference FAs rely on: the union's
  // attribute row is the concatenation of both components' rows.
  EventTable T;
  Automaton A = compileFA("x* y", T);
  Automaton B = compileFA("[x | y]*", T);
  Automaton U = Automaton::disjointUnion(A, B);
  ASSERT_EQ(U.numTransitions(), A.numTransitions() + B.numTransitions());
  RNG Rand(24);
  std::vector<std::string> Names{"x", "y"};
  for (int I = 0; I < 60; ++I) {
    Trace Tr = randomTrace(Rand, T, Names, 5);
    BitVector RowU = U.executedTransitions(Tr, T);
    BitVector RowA = A.executedTransitions(Tr, T);
    BitVector RowB = B.executedTransitions(Tr, T);
    for (size_t TI = 0; TI < A.numTransitions(); ++TI)
      EXPECT_EQ(RowU.test(TI), RowA.test(TI));
    for (size_t TI = 0; TI < B.numTransitions(); ++TI)
      EXPECT_EQ(RowU.test(A.numTransitions() + TI), RowB.test(TI));
  }
}

/// Property: executedTransitions agrees with brute-force path enumeration
/// on random NFAs and random traces.
class ExecutedTransitionsPropertyTest
    : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ExecutedTransitionsPropertyTest, MatchesBruteForce) {
  RNG Rand(GetParam());
  EventTable T;
  std::vector<std::string> Names{"a", "b", "c"};
  Automaton FA = randomNFA(Rand, T, Names);
  for (int I = 0; I < 40; ++I) {
    Trace Tr = randomTrace(Rand, T, Names, 6);
    BitVector Fast = FA.executedTransitions(Tr, T);
    BitVector Slow = bruteForceExecuted(FA, Tr, T);
    EXPECT_TRUE(Fast == Slow)
        << "trace: '" << Tr.render(T) << "'\n"
        << FA.renderText(T);
    if (!Tr.empty())
      EXPECT_EQ(!Fast.none(), FA.accepts(Tr, T))
          << "nonempty attribute set iff a nonempty trace is accepted";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExecutedTransitionsPropertyTest,
                         ::testing::Range<uint64_t>(0, 30));
