//===- tests/fa/DfaTest.cpp ------------------------------------------------===//
//
// Part of the Cable reproduction of "Debugging Temporal Specifications with
// Concept Analysis" (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//

#include "fa/Dfa.h"

#include "../TestHelpers.h"
#include "support/RNG.h"

#include <gtest/gtest.h>

using namespace cable;
using cable::test::compileFA;
using cable::test::makeTrace;

namespace {

std::vector<EventId> internAlphabet(EventTable &T,
                                    std::initializer_list<const char *> Names) {
  std::vector<EventId> Out;
  for (const char *N : Names)
    Out.push_back(T.internEvent(N));
  return Out;
}

Trace randomTraceOver(RNG &Rand, const std::vector<EventId> &Alphabet,
                      size_t MaxLen) {
  Trace T;
  size_t Len = Rand.nextIndex(MaxLen + 1);
  for (size_t I = 0; I < Len; ++I)
    T.append(Alphabet[Rand.nextIndex(Alphabet.size())]);
  return T;
}

} // namespace

TEST(DfaTest, CollectAlphabetFirstAppearanceOrder) {
  EventTable T;
  Trace A = makeTrace(T, "b a b c");
  Trace B = makeTrace(T, "c d");
  std::vector<EventId> Alpha = collectAlphabet({A, B});
  ASSERT_EQ(Alpha.size(), 4u);
  EXPECT_EQ(T.renderEvent(Alpha[0]), "b");
  EXPECT_EQ(T.renderEvent(Alpha[1]), "a");
  EXPECT_EQ(T.renderEvent(Alpha[2]), "c");
  EXPECT_EQ(T.renderEvent(Alpha[3]), "d");
}

TEST(DfaTest, DeterminizePreservesAcceptance) {
  EventTable T;
  Automaton NFA = compileFA("[a | a b]* c", T);
  std::vector<EventId> Alpha = internAlphabet(T, {"a", "b", "c"});
  Dfa D = Dfa::determinize(NFA, Alpha, T);
  RNG Rand(5);
  for (int I = 0; I < 200; ++I) {
    Trace Tr = randomTraceOver(Rand, Alpha, 7);
    EXPECT_EQ(D.accepts(Tr), NFA.accepts(Tr, T)) << Tr.render(T);
  }
}

TEST(DfaTest, AcceptRejectsOutOfAlphabetEvents) {
  EventTable T;
  Automaton NFA = compileFA("a", T);
  std::vector<EventId> Alpha = internAlphabet(T, {"a"});
  Dfa D = Dfa::determinize(NFA, Alpha, T);
  Trace Foreign;
  Foreign.append(T.internEvent("zzz"));
  EXPECT_FALSE(D.accepts(Foreign));
}

TEST(DfaTest, MinimizeReducesAndPreserves) {
  EventTable T;
  // a a | a a a a -> minimal DFA needs 6 states (incl. dead).
  Automaton NFA = compileFA("[a a] | [a a a a]", T);
  std::vector<EventId> Alpha = internAlphabet(T, {"a"});
  Dfa D = Dfa::determinize(NFA, Alpha, T);
  Dfa M = D.minimized();
  EXPECT_LE(M.numStates(), D.numStates());
  EXPECT_TRUE(Dfa::equivalent(D, M));
  RNG Rand(6);
  for (int I = 0; I < 100; ++I) {
    Trace Tr = randomTraceOver(Rand, Alpha, 6);
    EXPECT_EQ(M.accepts(Tr), D.accepts(Tr));
  }
}

TEST(DfaTest, MinimizedIsCanonicalAcrossPresentations) {
  EventTable T1, T2;
  // Same language, two different regexes.
  Automaton A = compileFA("[a b]* ", T1);
  Automaton B = compileFA("[a b [a b]*]? ", T2);
  std::vector<EventId> Alpha1 = internAlphabet(T1, {"a", "b"});
  std::vector<EventId> Alpha2 = internAlphabet(T2, {"a", "b"});
  Dfa DA = Dfa::determinize(A, Alpha1, T1).minimized();
  Dfa DB = Dfa::determinize(B, Alpha2, T2).minimized();
  EXPECT_EQ(DA.numStates(), DB.numStates())
      << "minimal DFAs of one language have equal size";
}

TEST(DfaTest, ComplementFlipsAcceptance) {
  EventTable T;
  Automaton NFA = compileFA("a b*", T);
  std::vector<EventId> Alpha = internAlphabet(T, {"a", "b"});
  Dfa D = Dfa::determinize(NFA, Alpha, T);
  Dfa C = D.complemented();
  RNG Rand(7);
  for (int I = 0; I < 100; ++I) {
    Trace Tr = randomTraceOver(Rand, Alpha, 6);
    EXPECT_NE(C.accepts(Tr), D.accepts(Tr));
  }
}

TEST(DfaTest, ProductIntersectionAndUnion) {
  EventTable T;
  Automaton A = compileFA("a .*", T);  // Starts with a.
  Automaton B = compileFA(".* b", T);  // Ends with b.
  std::vector<EventId> Alpha = internAlphabet(T, {"a", "b"});
  Dfa DA = Dfa::determinize(A, Alpha, T);
  Dfa DB = Dfa::determinize(B, Alpha, T);
  Dfa Inter = Dfa::product(DA, DB, /*WantUnion=*/false);
  Dfa Uni = Dfa::product(DA, DB, /*WantUnion=*/true);
  RNG Rand(8);
  for (int I = 0; I < 150; ++I) {
    Trace Tr = randomTraceOver(Rand, Alpha, 6);
    EXPECT_EQ(Inter.accepts(Tr), DA.accepts(Tr) && DB.accepts(Tr));
    EXPECT_EQ(Uni.accepts(Tr), DA.accepts(Tr) || DB.accepts(Tr));
  }
}

TEST(DfaTest, EquivalenceDetectsDifference) {
  EventTable T;
  std::vector<EventId> Alpha = internAlphabet(T, {"a", "b"});
  Dfa A = Dfa::determinize(compileFA("a b", T), Alpha, T);
  Dfa B = Dfa::determinize(compileFA("a b", T), Alpha, T);
  Dfa C = Dfa::determinize(compileFA("a b | b", T), Alpha, T);
  EXPECT_TRUE(Dfa::equivalent(A, B));
  EXPECT_FALSE(Dfa::equivalent(A, C));
}

TEST(DfaTest, IsEmpty) {
  EventTable T;
  std::vector<EventId> Alpha = internAlphabet(T, {"a"});
  Dfa NonEmpty = Dfa::determinize(compileFA("a", T), Alpha, T);
  EXPECT_FALSE(NonEmpty.isEmpty());
  // a AND not-a is empty.
  Dfa Empty = Dfa::product(NonEmpty, NonEmpty.complemented(), false);
  EXPECT_TRUE(Empty.isEmpty());
}

TEST(DfaTest, ToAutomatonRoundTripsLanguage) {
  EventTable T;
  Automaton NFA = compileFA("open [read | write]* close", T);
  std::vector<EventId> Alpha =
      internAlphabet(T, {"open", "read", "write", "close"});
  Dfa D = Dfa::determinize(NFA, Alpha, T).minimized();
  Automaton Back = D.toAutomaton(T);
  RNG Rand(9);
  for (int I = 0; I < 150; ++I) {
    Trace Tr = randomTraceOver(Rand, Alpha, 6);
    EXPECT_EQ(Back.accepts(Tr, T), D.accepts(Tr)) << Tr.render(T);
  }
}

TEST(DfaTest, ToAutomatonDropsDeadState) {
  EventTable T;
  Automaton NFA = compileFA("a b", T);
  std::vector<EventId> Alpha = internAlphabet(T, {"a", "b"});
  Dfa D = Dfa::determinize(NFA, Alpha, T).minimized();
  Automaton Back = D.toAutomaton(T);
  // The trimmed FA for "a b" is a 3-state chain with 2 transitions.
  EXPECT_EQ(Back.numStates(), 3u);
  EXPECT_EQ(Back.numTransitions(), 2u);
  EXPECT_EQ(D.numLiveStates(), 3u);
}

TEST(DfaTest, EmptyLanguageToAutomaton) {
  EventTable T;
  Automaton None = compileFA("a", T);
  std::vector<EventId> Alpha = internAlphabet(T, {"a"});
  Dfa D = Dfa::determinize(None, Alpha, T);
  Dfa Empty = Dfa::product(D, D.complemented(), false);
  Automaton Back = Empty.toAutomaton(T);
  EXPECT_FALSE(Back.accepts(makeTrace(T, "a"), T));
  EXPECT_FALSE(Back.accepts(Trace(), T));
}

TEST(DfaTest, ShortestDifferenceOnEquivalentIsNull) {
  EventTable T;
  std::vector<EventId> Alpha = internAlphabet(T, {"a", "b"});
  Dfa A = Dfa::determinize(compileFA("a b*", T), Alpha, T);
  Dfa B = Dfa::determinize(compileFA("a | a b b*", T), Alpha, T);
  // a b* == a | a b b*.
  EXPECT_FALSE(Dfa::shortestDifference(A, B).has_value());
}

TEST(DfaTest, ShortestDifferenceFindsMinimalWitness) {
  EventTable T;
  std::vector<EventId> Alpha = internAlphabet(T, {"a", "b"});
  Dfa A = Dfa::determinize(compileFA("a* b", T), Alpha, T);
  Dfa B = Dfa::determinize(compileFA("a a* b", T), Alpha, T);
  // They differ exactly on "b" (length 1), the shortest disagreement.
  std::optional<Trace> W = Dfa::shortestDifference(A, B);
  ASSERT_TRUE(W.has_value());
  EXPECT_EQ(W->render(T), "b");
  EXPECT_NE(A.accepts(*W), B.accepts(*W));
}

TEST(DfaTest, ShortestDifferenceAgainstEmptyLanguage) {
  EventTable T;
  std::vector<EventId> Alpha = internAlphabet(T, {"a"});
  Dfa A = Dfa::determinize(compileFA("a a a", T), Alpha, T);
  Dfa Empty = Dfa::product(A, A.complemented(), false);
  std::optional<Trace> W = Dfa::shortestDifference(A, Empty);
  ASSERT_TRUE(W.has_value());
  EXPECT_EQ(W->size(), 3u) << "the shortest accepted string is the witness";
  EXPECT_TRUE(A.accepts(*W));
}

TEST(DfaTest, SubsetOf) {
  EventTable T;
  std::vector<EventId> Alpha = internAlphabet(T, {"a", "b"});
  Dfa Narrow = Dfa::determinize(compileFA("a b", T), Alpha, T);
  Dfa Wide = Dfa::determinize(compileFA("a [a | b]*", T), Alpha, T);
  EXPECT_TRUE(Dfa::subsetOf(Narrow, Wide));
  EXPECT_FALSE(Dfa::subsetOf(Wide, Narrow));
  EXPECT_TRUE(Dfa::subsetOf(Narrow, Narrow));
  // Empty language is a subset of everything.
  Dfa Empty = Dfa::product(Narrow, Narrow.complemented(), false);
  EXPECT_TRUE(Dfa::subsetOf(Empty, Narrow));
  EXPECT_FALSE(Dfa::subsetOf(Narrow, Empty));
}

TEST(DfaTest, ShortestDifferenceConsistentWithEquivalent) {
  RNG Rand(31);
  EventTable T;
  std::vector<EventId> Alpha = internAlphabet(T, {"a", "b"});
  for (int I = 0; I < 20; ++I) {
    std::string P1 = Rand.nextBool(0.5) ? "a [a | b]*" : "a* b?";
    std::string P2 = Rand.nextBool(0.5) ? "a [a | b]*" : "a* b?";
    Dfa A = Dfa::determinize(compileFA(P1, T), Alpha, T);
    Dfa B = Dfa::determinize(compileFA(P2, T), Alpha, T);
    EXPECT_EQ(Dfa::equivalent(A, B),
              !Dfa::shortestDifference(A, B).has_value());
  }
}

/// Property: determinize/minimize agree with the NFA across random regexes
/// built from a tiny grammar.
class DfaPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DfaPropertyTest, PipelinePreservesLanguage) {
  RNG Rand(GetParam());
  // Random small regex: alternation of 1-3 concatenations of a/b/c atoms
  // with optional stars.
  std::string Pattern;
  size_t Alts = 1 + Rand.nextIndex(3);
  for (size_t A = 0; A < Alts; ++A) {
    if (A)
      Pattern += " | ";
    Pattern += "[";
    size_t Atoms = 1 + Rand.nextIndex(4);
    for (size_t I = 0; I < Atoms; ++I) {
      Pattern += " ";
      Pattern += static_cast<char>('a' + Rand.nextIndex(3));
      if (Rand.nextBool(0.3))
        Pattern += "*";
    }
    Pattern += " ]";
  }
  EventTable T;
  Automaton NFA = compileFA(Pattern, T);
  std::vector<EventId> Alpha = internAlphabet(T, {"a", "b", "c"});
  Dfa D = Dfa::determinize(NFA, Alpha, T);
  Dfa M = D.minimized();
  ASSERT_TRUE(Dfa::equivalent(D, M));
  for (int I = 0; I < 60; ++I) {
    Trace Tr = randomTraceOver(Rand, Alpha, 8);
    bool Expected = NFA.accepts(Tr, T);
    EXPECT_EQ(D.accepts(Tr), Expected) << Pattern << " on " << Tr.render(T);
    EXPECT_EQ(M.accepts(Tr), Expected) << Pattern << " on " << Tr.render(T);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DfaPropertyTest,
                         ::testing::Range<uint64_t>(0, 25));
