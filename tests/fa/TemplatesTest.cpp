//===- tests/fa/TemplatesTest.cpp ------------------------------------------===//
//
// Part of the Cable reproduction of "Debugging Temporal Specifications with
// Concept Analysis" (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//

#include "fa/Templates.h"

#include "../TestHelpers.h"

#include <gtest/gtest.h>

using namespace cable;
using cable::test::makeTrace;
using cable::test::parseTraces;

namespace {

struct TemplatesTest : ::testing::Test {
  EventTable T;
};

} // namespace

TEST_F(TemplatesTest, UnorderedAcceptsAnyOrderOfAlphabet) {
  Trace A = makeTrace(T, "x(v0) y(v0)");
  std::vector<EventId> Alpha = templateAlphabet({A});
  Automaton FA = makeUnorderedFA(Alpha, T);
  EXPECT_EQ(FA.numStates(), 1u);
  EXPECT_EQ(FA.numTransitions(), 2u);
  EXPECT_TRUE(FA.accepts(makeTrace(T, "y(v0) x(v0) x(v0)"), T));
  EXPECT_TRUE(FA.accepts(Trace(), T));
  EXPECT_FALSE(FA.accepts(makeTrace(T, "z(v0)"), T))
      << "events outside the alphabet are rejected";
}

TEST_F(TemplatesTest, UnorderedAttributesAreEventOccurrence) {
  // With the unordered template, the executed transitions are exactly the
  // events occurring in the trace — order is ignored (§4.1).
  Trace A = makeTrace(T, "x(v0) y(v0) z(v0)");
  std::vector<EventId> Alpha = templateAlphabet({A});
  Automaton FA = makeUnorderedFA(Alpha, T);
  BitVector E1 = FA.executedTransitions(makeTrace(T, "x(v0) y(v0)"), T);
  BitVector E2 = FA.executedTransitions(makeTrace(T, "y(v0) x(v0)"), T);
  EXPECT_TRUE(E1 == E2) << "order must not matter";
  EXPECT_EQ(E1.count(), 2u);
}

TEST_F(TemplatesTest, NameProjectionKeepsOnlyEventsMentioningValue) {
  Trace A = makeTrace(T, "bind(v0) use(v0,v1) other(v1) free(v0)");
  std::vector<EventId> Alpha = templateAlphabet({A});
  Automaton FA = makeNameProjectionFA(Alpha, /*V=*/0, T);
  // Self-loops: bind(v0), use(v0,v1), free(v0), and one wildcard.
  EXPECT_EQ(FA.numTransitions(), 4u);
  EXPECT_TRUE(FA.accepts(A, T));
  // The other(v1) event is matched only by the wildcard, so two traces
  // differing only in non-v0 events get the same projected attributes.
  BitVector E1 = FA.executedTransitions(
      makeTrace(T, "bind(v0) other(v1) free(v0)"), T);
  BitVector E2 = FA.executedTransitions(
      makeTrace(T, "bind(v0) somethingelse(v9) free(v0)"), T);
  EXPECT_TRUE(E1 == E2);
}

TEST_F(TemplatesTest, SeedOrderSplitsBeforeAfter) {
  Trace A = makeTrace(T, "a(v0) seed(v0) b(v0)");
  std::vector<EventId> Alpha = templateAlphabet({A});
  EventId Seed = T.internEvent("seed", {0});
  Automaton FA = makeSeedOrderFA(Alpha, Seed, T);
  EXPECT_TRUE(FA.accepts(A, T));
  EXPECT_TRUE(FA.accepts(makeTrace(T, "seed(v0)"), T));
  EXPECT_FALSE(FA.accepts(makeTrace(T, "a(v0) b(v0)"), T))
      << "a trace without the seed is rejected";

  // a-before-seed and a-after-seed execute different transitions.
  BitVector Before =
      FA.executedTransitions(makeTrace(T, "a(v0) seed(v0)"), T);
  BitVector After = FA.executedTransitions(makeTrace(T, "seed(v0) a(v0)"), T);
  EXPECT_FALSE(Before == After);
}

TEST_F(TemplatesTest, SeedOrderAcceptsRepeatedSeed) {
  Trace A = makeTrace(T, "seed(v0) seed(v0)");
  std::vector<EventId> Alpha = templateAlphabet({A});
  EventId Seed = T.internEvent("seed", {0});
  Automaton FA = makeSeedOrderFA(Alpha, Seed, T);
  EXPECT_TRUE(FA.accepts(A, T));
}

TEST_F(TemplatesTest, PrefixTreeAcceptsExactlyTheTraces) {
  TraceSet TS = parseTraces("a b\n"
                            "a c\n"
                            "d\n");
  Automaton FA = makePrefixTreeFA(TS.traces(), TS.table());
  for (const Trace &Tr : TS.traces())
    EXPECT_TRUE(FA.accepts(Tr, TS.table()));
  EXPECT_FALSE(FA.accepts(cable::test::makeTrace(TS.table(), "a"), TS.table()))
      << "prefixes are not accepted";
  EXPECT_FALSE(
      FA.accepts(cable::test::makeTrace(TS.table(), "a b c"), TS.table()));
  EXPECT_FALSE(FA.accepts(Trace(), TS.table()));
}

TEST_F(TemplatesTest, PrefixTreeSharesPrefixes) {
  TraceSet TS = parseTraces("a b c\n"
                            "a b d\n");
  Automaton FA = makePrefixTreeFA(TS.traces(), TS.table());
  // Root + shared a,b chain + two leaves = 5 states, 4 transitions.
  EXPECT_EQ(FA.numStates(), 5u);
  EXPECT_EQ(FA.numTransitions(), 4u);
}

TEST_F(TemplatesTest, PrefixTreeEmptyTraceAcceptedWhenPresent) {
  EventTable Table;
  std::vector<Trace> Traces{Trace()};
  Automaton FA = makePrefixTreeFA(Traces, Table);
  EXPECT_TRUE(FA.accepts(Trace(), Table));
}

TEST_F(TemplatesTest, AllTracesFAAcceptsEverythingOverAlphabet) {
  Trace A = makeTrace(T, "p q r");
  std::vector<EventId> Alpha = templateAlphabet({A});
  Automaton FA = makeAllTracesFA(Alpha, T);
  EXPECT_TRUE(FA.accepts(makeTrace(T, "r r q p"), T));
}
