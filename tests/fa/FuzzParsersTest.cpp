//===- tests/fa/FuzzParsersTest.cpp ----------------------------------------===//
//
// Part of the Cable reproduction of "Debugging Temporal Specifications with
// Concept Analysis" (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//
//
// Robustness sweeps: every text front end (trace sets, regexes, automaton
// files, label files) must survive arbitrary byte soup — returning a clean
// error or a valid object, never crashing.
//
//===----------------------------------------------------------------------===//

#include "cable/Session.h"
#include "fa/Parse.h"
#include "fa/Regex.h"
#include "fa/Templates.h"
#include "support/RNG.h"
#include "trace/TraceSet.h"

#include <gtest/gtest.h>

using namespace cable;

namespace {

/// Random text over a charset likely to hit parser edge cases.
std::string randomText(RNG &Rand, size_t MaxLen) {
  static const char Charset[] =
      "abcxyz019 ()[]|*+?~,.#\n\tv<>=-_\\\"q";
  std::string Out;
  size_t Len = Rand.nextIndex(MaxLen + 1);
  for (size_t I = 0; I < Len; ++I)
    Out += Charset[Rand.nextIndex(sizeof(Charset) - 1)];
  return Out;
}

} // namespace

class FuzzParsersTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FuzzParsersTest, TraceSetParseNeverCrashes) {
  RNG Rand(GetParam());
  for (int I = 0; I < 50; ++I) {
    std::string Text = randomText(Rand, 120);
    std::string Err;
    std::optional<TraceSet> TS = TraceSet::parse(Text, Err);
    if (!TS)
      EXPECT_FALSE(Err.empty());
    else
      // A successful parse must render back without crashing.
      (void)TS->render();
  }
}

TEST_P(FuzzParsersTest, RegexCompileNeverCrashes) {
  RNG Rand(GetParam() * 31 + 1);
  for (int I = 0; I < 50; ++I) {
    std::string Pattern = randomText(Rand, 60);
    EventTable T;
    std::string Err;
    std::optional<Automaton> FA = compileRegex(Pattern, T, Err);
    if (FA) {
      // Whatever parsed must be a usable automaton.
      Automaton Clean = FA->withoutEpsilons();
      Trace Probe;
      Probe.append(T.internEvent("a"));
      (void)Clean.accepts(Probe, T);
    } else {
      EXPECT_FALSE(Err.empty());
    }
  }
}

TEST_P(FuzzParsersTest, AutomatonParseNeverCrashes) {
  RNG Rand(GetParam() * 131 + 7);
  for (int I = 0; I < 50; ++I) {
    std::string Text = randomText(Rand, 120);
    EventTable T;
    std::string Err;
    std::optional<Automaton> FA = parseAutomaton(Text, T, Err);
    if (FA) {
      Trace Probe;
      Probe.append(T.internEvent("a"));
      (void)FA->accepts(Probe, T);
    } else {
      EXPECT_FALSE(Err.empty());
    }
  }
}

TEST_P(FuzzParsersTest, LabelLoadNeverCrashes) {
  RNG Rand(GetParam() * 733 + 11);
  std::string ParseErr;
  TraceSet Traces = *TraceSet::parse("a(v0) b(v0)\nc(v0)\n", ParseErr);
  Automaton Ref =
      makeUnorderedFA(templateAlphabet(Traces.traces()), Traces.table());
  Session S(std::move(Traces), std::move(Ref));
  for (int I = 0; I < 50; ++I) {
    std::string Text = randomText(Rand, 100);
    std::string Err;
    size_t Unmatched = 0;
    bool Ok = S.loadLabels(Text, Err, &Unmatched);
    if (!Ok)
      EXPECT_FALSE(Err.empty());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzParsersTest,
                         ::testing::Range<uint64_t>(0, 12));
