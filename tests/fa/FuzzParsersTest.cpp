//===- tests/fa/FuzzParsersTest.cpp ----------------------------------------===//
//
// Part of the Cable reproduction of "Debugging Temporal Specifications with
// Concept Analysis" (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//
//
// Robustness sweeps: every text front end (trace sets, regexes, automaton
// files, label files) must survive arbitrary byte soup — returning a clean
// error or a valid object, never crashing.
//
//===----------------------------------------------------------------------===//

#include "cable/Session.h"
#include "fa/Parse.h"
#include "fa/Regex.h"
#include "fa/Templates.h"
#include "support/RNG.h"
#include "trace/TraceSet.h"

#include <gtest/gtest.h>

using namespace cable;

namespace {

/// Random text over a charset likely to hit parser edge cases.
std::string randomText(RNG &Rand, size_t MaxLen) {
  static const char Charset[] =
      "abcxyz019 ()[]|*+?~,.#\n\tv<>=-_\\\"q";
  std::string Out;
  size_t Len = Rand.nextIndex(MaxLen + 1);
  for (size_t I = 0; I < Len; ++I)
    Out += Charset[Rand.nextIndex(sizeof(Charset) - 1)];
  return Out;
}

} // namespace

class FuzzParsersTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FuzzParsersTest, TraceSetParseNeverCrashes) {
  RNG Rand(GetParam());
  for (int I = 0; I < 50; ++I) {
    std::string Text = randomText(Rand, 120);
    std::string Err;
    std::optional<TraceSet> TS = TraceSet::parse(Text, Err);
    if (!TS)
      EXPECT_FALSE(Err.empty());
    else
      // A successful parse must render back without crashing.
      (void)TS->render();
  }
}

TEST_P(FuzzParsersTest, RegexCompileNeverCrashes) {
  RNG Rand(GetParam() * 31 + 1);
  for (int I = 0; I < 50; ++I) {
    std::string Pattern = randomText(Rand, 60);
    EventTable T;
    std::string Err;
    std::optional<Automaton> FA = compileRegex(Pattern, T, Err);
    if (FA) {
      // Whatever parsed must be a usable automaton.
      Automaton Clean = FA->withoutEpsilons();
      Trace Probe;
      Probe.append(T.internEvent("a"));
      (void)Clean.accepts(Probe, T);
    } else {
      EXPECT_FALSE(Err.empty());
    }
  }
}

TEST_P(FuzzParsersTest, AutomatonParseNeverCrashes) {
  RNG Rand(GetParam() * 131 + 7);
  for (int I = 0; I < 50; ++I) {
    std::string Text = randomText(Rand, 120);
    EventTable T;
    std::string Err;
    std::optional<Automaton> FA = parseAutomaton(Text, T, Err);
    if (FA) {
      Trace Probe;
      Probe.append(T.internEvent("a"));
      (void)FA->accepts(Probe, T);
    } else {
      EXPECT_FALSE(Err.empty());
    }
  }
}

TEST_P(FuzzParsersTest, LabelLoadNeverCrashes) {
  RNG Rand(GetParam() * 733 + 11);
  std::string ParseErr;
  TraceSet Traces = *TraceSet::parse("a(v0) b(v0)\nc(v0)\n", ParseErr);
  Automaton Ref =
      makeUnorderedFA(templateAlphabet(Traces.traces()), Traces.table());
  Session S(std::move(Traces), std::move(Ref));
  for (int I = 0; I < 50; ++I) {
    std::string Text = randomText(Rand, 100);
    std::string Err;
    size_t Unmatched = 0;
    bool Ok = S.loadLabels(Text, Err, &Unmatched);
    if (!Ok)
      EXPECT_FALSE(Err.empty());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzParsersTest,
                         ::testing::Range<uint64_t>(0, 12));

namespace {

/// Hand-built malformed inputs targeting specific parser weak spots:
/// truncated lines, bad value tokens, unbalanced brackets/parens, and
/// pathologically oversized events. Shared across the three front ends —
/// a corpus entry is allowed to parse (some are valid for one syntax and
/// not another), but must never crash and must produce a positioned
/// diagnostic when it fails.
std::vector<std::string> malformedCorpus() {
  std::vector<std::string> Out = {
      // Truncated lines.
      "fopen(",
      "fopen(v0",
      "a(v0) b(",
      "start",
      "q0 fopen(v0)",
      "~",
      "a(v0) ~",
      // Bad value tokens.
      "fopen(x)",
      "fopen(v)",
      "fopen(vv1)",
      "fopen(v0,)",
      "fopen(,v0)",
      "fopen(v-1)",
      "fopen(v99999999999999999999)",
      "q0 fopen(w1) q1",
      // Unbalanced brackets and parens.
      "[a(v0)",
      "a(v0)]",
      "[[a(v0)]",
      "a(v0))",
      "(a(v0)",
      "[a(v0) | b(v0)",
      "q0 ) q1",
      // Oversized events.
      std::string(100000, 'a'),
      std::string(1000, 'a') + "(" + std::string(1000, 'v') + ")",
      "a(" + std::string(50000, '*') + ")",
  };
  // One event with 10k comma-separated arguments.
  std::string Wide = "big(";
  for (int I = 0; I < 10000; ++I)
    Wide += (I ? ",v" : "v") + std::to_string(I);
  Wide += ')';
  Out.push_back(Wide);
  return Out;
}

} // namespace

TEST(MalformedCorpusTest, TraceSetParseSurvivesAndPositionsErrors) {
  for (const std::string &Text : malformedCorpus()) {
    Diagnostic Diag;
    std::optional<TraceSet> TS = TraceSet::parse(Text, Diag);
    if (TS) {
      (void)TS->render();
      continue;
    }
    // Failures carry a 1-based line and column inside the input.
    EXPECT_FALSE(Diag.Message.empty());
    EXPECT_GE(Diag.Pos.Line, 1u);
    EXPECT_GE(Diag.Pos.Col, 1u);
    EXPECT_FALSE(Diag.render().empty());
  }
}

TEST(MalformedCorpusTest, RegexCompileSurvivesAndPositionsErrors) {
  for (const std::string &Pattern : malformedCorpus()) {
    EventTable T;
    Diagnostic Diag;
    std::optional<Automaton> FA = compileRegex(Pattern, T, Diag);
    if (FA) {
      (void)FA->withoutEpsilons();
      continue;
    }
    EXPECT_FALSE(Diag.Message.empty());
    EXPECT_EQ(Diag.Pos.Line, 1u); // Patterns are single-line.
    EXPECT_GE(Diag.Pos.Col, 1u);
    EXPECT_LE(Diag.Pos.Col, Pattern.size() + 1);
  }
}

TEST(MalformedCorpusTest, AutomatonParseSurvivesAndPositionsErrors) {
  for (const std::string &Text : malformedCorpus()) {
    EventTable T;
    Diagnostic Diag;
    std::optional<Automaton> FA = parseAutomaton(Text, T, Diag);
    if (FA)
      continue;
    EXPECT_FALSE(Diag.Message.empty());
    EXPECT_GE(Diag.Pos.Line, 1u);
    EXPECT_GE(Diag.Pos.Col, 1u);
  }
}
