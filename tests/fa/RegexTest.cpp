//===- tests/fa/RegexTest.cpp ----------------------------------------------===//
//
// Part of the Cable reproduction of "Debugging Temporal Specifications with
// Concept Analysis" (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//

#include "fa/Regex.h"

#include "../TestHelpers.h"

#include <gtest/gtest.h>

using namespace cable;
using cable::test::compileFA;
using cable::test::makeTrace;

TEST(RegexTest, SingleEvent) {
  EventTable T;
  Automaton FA = compileFA("a", T);
  EXPECT_TRUE(FA.accepts(makeTrace(T, "a"), T));
  EXPECT_FALSE(FA.accepts(Trace(), T));
  EXPECT_FALSE(FA.accepts(makeTrace(T, "a a"), T));
}

TEST(RegexTest, EmptyPatternAcceptsEmptyTrace) {
  EventTable T;
  Automaton FA = compileFA("", T);
  EXPECT_TRUE(FA.accepts(Trace(), T));
  EXPECT_FALSE(FA.accepts(makeTrace(T, "a"), T));
}

TEST(RegexTest, Concatenation) {
  EventTable T;
  Automaton FA = compileFA("a b c", T);
  EXPECT_TRUE(FA.accepts(makeTrace(T, "a b c"), T));
  EXPECT_FALSE(FA.accepts(makeTrace(T, "a c b"), T));
}

TEST(RegexTest, Alternation) {
  EventTable T;
  Automaton FA = compileFA("a | b | c", T);
  for (const char *Good : {"a", "b", "c"})
    EXPECT_TRUE(FA.accepts(makeTrace(T, Good), T)) << Good;
  EXPECT_FALSE(FA.accepts(makeTrace(T, "a b"), T));
}

TEST(RegexTest, StarPlusQuestion) {
  EventTable T;
  Automaton Star = compileFA("a*", T);
  EXPECT_TRUE(Star.accepts(Trace(), T));
  EXPECT_TRUE(Star.accepts(makeTrace(T, "a a a"), T));

  Automaton Plus = compileFA("a+", T);
  EXPECT_FALSE(Plus.accepts(Trace(), T));
  EXPECT_TRUE(Plus.accepts(makeTrace(T, "a"), T));
  EXPECT_TRUE(Plus.accepts(makeTrace(T, "a a"), T));

  Automaton Quest = compileFA("a?", T);
  EXPECT_TRUE(Quest.accepts(Trace(), T));
  EXPECT_TRUE(Quest.accepts(makeTrace(T, "a"), T));
  EXPECT_FALSE(Quest.accepts(makeTrace(T, "a a"), T));
}

TEST(RegexTest, GroupingWithBrackets) {
  EventTable T;
  Automaton FA = compileFA("[a b]* c", T);
  EXPECT_TRUE(FA.accepts(makeTrace(T, "c"), T));
  EXPECT_TRUE(FA.accepts(makeTrace(T, "a b c"), T));
  EXPECT_TRUE(FA.accepts(makeTrace(T, "a b a b c"), T));
  EXPECT_FALSE(FA.accepts(makeTrace(T, "a c"), T));
}

TEST(RegexTest, DotMatchesAnyEvent) {
  EventTable T;
  Automaton FA = compileFA(". b", T);
  EXPECT_TRUE(FA.accepts(makeTrace(T, "a b"), T));
  EXPECT_TRUE(FA.accepts(makeTrace(T, "zzz b"), T));
  EXPECT_TRUE(FA.accepts(makeTrace(T, "b b"), T));
  EXPECT_FALSE(FA.accepts(makeTrace(T, "b"), T));
}

TEST(RegexTest, NameAnyAtom) {
  EventTable T;
  Automaton FA = compileFA("~f g", T);
  EXPECT_TRUE(FA.accepts(makeTrace(T, "f g"), T));
  EXPECT_TRUE(FA.accepts(makeTrace(T, "f(v0,v1) g"), T));
  EXPECT_FALSE(FA.accepts(makeTrace(T, "h g"), T));
}

TEST(RegexTest, EventArgumentsAndWildcardArg) {
  EventTable T;
  Automaton FA = compileFA("f(v0,*) g(v1)", T);
  EXPECT_TRUE(FA.accepts(makeTrace(T, "f(v0,v7) g(v1)"), T));
  EXPECT_TRUE(FA.accepts(makeTrace(T, "f(v0,v0) g(v1)"), T));
  EXPECT_FALSE(FA.accepts(makeTrace(T, "f(v1,v7) g(v1)"), T));
  EXPECT_FALSE(FA.accepts(makeTrace(T, "f(v0) g(v1)"), T)) << "arity";
}

TEST(RegexTest, PaperFig1BuggySpecification) {
  // Fig. 1: allows fclose on any pointer regardless of source.
  EventTable T;
  Automaton FA = compileFA(
      "[fopen(v0) | popen(v0)] [fread(v0) | fwrite(v0)]* fclose(v0)", T);
  EXPECT_TRUE(FA.accepts(makeTrace(T, "fopen(v0) fread(v0) fclose(v0)"), T));
  EXPECT_TRUE(FA.accepts(makeTrace(T, "popen(v0) fclose(v0)"), T))
      << "the bug: pipe closed with fclose is (wrongly) accepted";
  EXPECT_FALSE(FA.accepts(makeTrace(T, "popen(v0) pclose(v0)"), T))
      << "the bug: correct pipe usage is (wrongly) rejected";
}

TEST(RegexTest, PaperFig6FixedSpecification) {
  EventTable T;
  Automaton FA = compileFA(
      "[fopen(v0) [fread(v0) | fwrite(v0)]* fclose(v0)] | "
      "[popen(v0) [fread(v0) | fwrite(v0)]* pclose(v0)]",
      T);
  EXPECT_TRUE(FA.accepts(makeTrace(T, "fopen(v0) fclose(v0)"), T));
  EXPECT_TRUE(FA.accepts(makeTrace(T, "popen(v0) fwrite(v0) pclose(v0)"), T));
  EXPECT_FALSE(FA.accepts(makeTrace(T, "popen(v0) fclose(v0)"), T));
  EXPECT_FALSE(FA.accepts(makeTrace(T, "fopen(v0) pclose(v0)"), T));
}

TEST(RegexTest, NestedGroups) {
  EventTable T;
  Automaton FA = compileFA("[[a | b] c]* d", T);
  EXPECT_TRUE(FA.accepts(makeTrace(T, "d"), T));
  EXPECT_TRUE(FA.accepts(makeTrace(T, "a c b c d"), T));
  EXPECT_FALSE(FA.accepts(makeTrace(T, "a d"), T));
}

TEST(RegexTest, SyntaxErrors) {
  EventTable T;
  std::string Err;
  EXPECT_FALSE(compileRegex("[a", T, Err).has_value());
  EXPECT_FALSE(compileRegex("a]", T, Err).has_value());
  EXPECT_FALSE(compileRegex("*", T, Err).has_value());
  EXPECT_FALSE(compileRegex("f(v0", T, Err).has_value());
  EXPECT_FALSE(compileRegex("f(vx)", T, Err).has_value());
  EXPECT_FALSE(compileRegex("~", T, Err).has_value());
  EXPECT_FALSE(compileRegex("a ) b", T, Err).has_value());
  EXPECT_FALSE(Err.empty());
}

TEST(RegexTest, DoubleStarIsIdempotent) {
  EventTable T;
  Automaton FA = compileFA("a**", T);
  EXPECT_TRUE(FA.accepts(Trace(), T));
  EXPECT_TRUE(FA.accepts(makeTrace(T, "a a"), T));
}
