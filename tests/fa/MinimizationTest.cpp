//===- tests/fa/MinimizationTest.cpp ---------------------------------------===//
//
// Part of the Cable reproduction of "Debugging Temporal Specifications with
// Concept Analysis" (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//
//
// Cross-validation of the three minimization routes: Moore refinement,
// Hopcroft's algorithm, and Brzozowski's double-reversal. All must agree
// on state counts and language.
//
//===----------------------------------------------------------------------===//

#include "fa/Dfa.h"

#include "../TestHelpers.h"
#include "support/RNG.h"

#include <gtest/gtest.h>

using namespace cable;
using cable::test::compileFA;

namespace {

std::vector<EventId> internAlphabet(EventTable &T,
                                    std::initializer_list<const char *> Names) {
  std::vector<EventId> Out;
  for (const char *N : Names)
    Out.push_back(T.internEvent(N));
  return Out;
}

} // namespace

TEST(MinimizationTest, ThreeRoutesAgreeOnSimpleLanguage) {
  EventTable T;
  Automaton NFA = compileFA("[a | a b]* c", T);
  std::vector<EventId> Alpha = internAlphabet(T, {"a", "b", "c"});
  Dfa D = Dfa::determinize(NFA, Alpha, T);
  Dfa Moore = D.minimized();
  Dfa Hopcroft = D.minimizedHopcroft();
  Dfa Brzozowski = Dfa::minimizeBrzozowski(NFA, Alpha, T);
  EXPECT_EQ(Moore.numStates(), Hopcroft.numStates());
  EXPECT_EQ(Moore.numStates(), Brzozowski.numStates());
  EXPECT_TRUE(Dfa::equivalent(Moore, Hopcroft));
  EXPECT_TRUE(Dfa::equivalent(Moore, Brzozowski));
}

TEST(MinimizationTest, EmptyLanguage) {
  EventTable T;
  Automaton NFA = compileFA("a", T);
  std::vector<EventId> Alpha = internAlphabet(T, {"a"});
  Dfa D = Dfa::determinize(NFA, Alpha, T);
  Dfa Empty = Dfa::product(D, D.complemented(), /*WantUnion=*/false);
  Dfa M = Empty.minimized();
  Dfa H = Empty.minimizedHopcroft();
  EXPECT_EQ(M.numStates(), 1u) << "empty language = one dead state";
  EXPECT_EQ(H.numStates(), 1u);
  EXPECT_TRUE(M.isEmpty());
}

TEST(MinimizationTest, FullLanguage) {
  EventTable T;
  Automaton NFA = compileFA("a*", T);
  std::vector<EventId> Alpha = internAlphabet(T, {"a"});
  Dfa D = Dfa::determinize(NFA, Alpha, T);
  EXPECT_EQ(D.minimized().numStates(), 1u);
  EXPECT_EQ(D.minimizedHopcroft().numStates(), 1u);
}

TEST(MinimizationTest, ProductUnreachableStatesDropped) {
  // Products materialize the full cross product; minimization must not
  // count unreachable pairs.
  EventTable T;
  std::vector<EventId> Alpha = internAlphabet(T, {"a", "b"});
  Dfa A = Dfa::determinize(compileFA("a a a", T), Alpha, T);
  Dfa B = Dfa::determinize(compileFA("b b b", T), Alpha, T);
  Dfa P = Dfa::product(A, B, /*WantUnion=*/true);
  Dfa M = P.minimized();
  Dfa H = P.minimizedHopcroft();
  EXPECT_EQ(M.numStates(), H.numStates());
  EXPECT_LT(M.numStates(), P.numStates());
  EXPECT_TRUE(Dfa::equivalent(M, P));
}

/// Property: all three minimization routes agree on random regexes.
class MinimizationPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MinimizationPropertyTest, RoutesAgree) {
  RNG Rand(GetParam() * 1337 + 7);
  // Random regex over {a, b, c} as in DfaPropertyTest.
  std::string Pattern;
  size_t Alts = 1 + Rand.nextIndex(3);
  for (size_t A = 0; A < Alts; ++A) {
    if (A)
      Pattern += " | ";
    Pattern += "[";
    size_t Atoms = 1 + Rand.nextIndex(5);
    for (size_t I = 0; I < Atoms; ++I) {
      Pattern += " ";
      Pattern += static_cast<char>('a' + Rand.nextIndex(3));
      if (Rand.nextBool(0.3))
        Pattern += "*";
      if (Rand.nextBool(0.15))
        Pattern += "?";
    }
    Pattern += " ]";
  }
  EventTable T;
  Automaton NFA = compileFA(Pattern, T);
  std::vector<EventId> Alpha = internAlphabet(T, {"a", "b", "c"});
  Dfa D = Dfa::determinize(NFA, Alpha, T);
  Dfa Moore = D.minimized();
  Dfa Hopcroft = D.minimizedHopcroft();
  Dfa Brzozowski = Dfa::minimizeBrzozowski(NFA, Alpha, T);
  EXPECT_EQ(Moore.numStates(), Hopcroft.numStates()) << Pattern;
  EXPECT_EQ(Moore.numStates(), Brzozowski.numStates()) << Pattern;
  ASSERT_TRUE(Dfa::equivalent(Moore, Hopcroft)) << Pattern;
  ASSERT_TRUE(Dfa::equivalent(Moore, Brzozowski)) << Pattern;
  ASSERT_TRUE(Dfa::equivalent(Moore, D)) << Pattern;
}

INSTANTIATE_TEST_SUITE_P(Seeds, MinimizationPropertyTest,
                         ::testing::Range<uint64_t>(0, 40));
