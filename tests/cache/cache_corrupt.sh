#!/usr/bin/env bash
#===- tests/cache/cache_corrupt.sh - Corrupt-artifact corpus ----------------===#
#
# Part of the Cable reproduction of "Debugging Temporal Specifications with
# Concept Analysis" (PLDI 2003). MIT license.
#
#===------------------------------------------------------------------------===#
#
# Poisons a warm lattice cache five different ways — truncation, a body
# bit-flip, a stale format version, an artifact stamped with a foreign
# context hash, and a zero-length file — and proves the degradation ladder
# holds for each: the run still exits with the golden rc and a
# bit-identical DOT, the bad artifact is quarantined to <key>.corrupt.<n>
# (and the key rebuilt and re-published), the cache.* counters record the
# rejection, and stderr carries a positioned warning naming the artifact.
#
# Usage: cache_corrupt.sh <spec-lint> <workdir>
#
#===------------------------------------------------------------------------===#

set -u

LINT=${1:?usage: cache_corrupt.sh <spec-lint> <workdir>}
WORK=${2:?usage: cache_corrupt.sh <spec-lint> <workdir>}
DATA=$(cd "$(dirname "$0")/../../examples/data" && pwd)
LFLAGS="--spec $DATA/stdio_buggy.fa --traces $DATA/stdio_traces.txt --threads 2"

rm -rf "$WORK"
mkdir -p "$WORK"
cd "$WORK" || exit 1

say() { printf '%s\n' "$*"; }
metric_ge1() { grep -q "\"$2\": [1-9]" "$1"; }

# Golden uncached run.
$LINT $LFLAGS --no-cache --dot golden.dot > golden.out 2>&1
golden_rc=$?
if [ ! -s golden.dot ]; then
  say "FATAL: golden run produced no DOT output"
  cat golden.out
  exit 1
fi

# A second, different context (one trace dropped) whose artifact carries a
# foreign context hash but is otherwise perfectly well-formed.
head -n -1 "$DATA/stdio_traces.txt" > other_traces.txt
$LINT --spec "$DATA/stdio_buggy.fa" --traces other_traces.txt --threads 2 \
  --cache-dir OTHER --dot other.dot > other.out 2>&1
OTHER_ART=$(ls OTHER/*.nextclosure.* 2>other_ls.err | head -1)
if [ -z "$OTHER_ART" ]; then
  say "FATAL: foreign-context priming run published no artifact"
  cat other.out
  exit 1
fi

fail=0

# Re-primes the store and returns the artifact path in $ART.
prime() {
  rm -rf C
  $LINT $LFLAGS --cache-dir C --dot prime.dot > prime.out 2>&1
  local rc=$?
  if [ $rc -ne $golden_rc ]; then
    say "FATAL: priming run exited $rc, golden $golden_rc"
    exit 1
  fi
  ART=$(ls C/*.nextclosure.* | grep -v '\.lock$' | grep -v '\.corrupt\.' | head -1)
  if [ -z "$ART" ]; then
    say "FATAL: priming run published no artifact"
    exit 1
  fi
}

# One corpus case: a name and a corruption command run after priming.
corrupt_case() {
  local name=$1
  shift
  prime
  "$@" || { say "FATAL: corruption step failed for $name"; exit 1; }
  rm -f out.dot m.json
  $LINT $LFLAGS --cache-dir C --dot out.dot --metrics-out m.json \
    > run.out 2>&1
  local rc=$?
  if [ $rc -ne $golden_rc ]; then
    say "FAIL $name: exit $rc, golden exited $golden_rc"
    tail -5 run.out
    fail=1
    return
  fi
  if ! cmp -s golden.dot out.dot; then
    say "FAIL $name: lattice differs from golden after rejection"
    diff golden.dot out.dot | head -10
    fail=1
    return
  fi
  if ! ls "$ART".corrupt.* > corrupt_ls.out 2>&1; then
    say "FAIL $name: rejected artifact was not quarantined"
    ls C
    fail=1
    return
  fi
  for m in cache.verify-failed cache.quarantined cache.stores; do
    if ! metric_ge1 m.json $m; then
      say "FAIL $name: expected $m >= 1"
      cat m.json
      fail=1
      return
    fi
  done
  # The diagnostic must name the artifact and be a warning, not an error.
  if ! grep -q "warning: cable-lattice artifact" run.out; then
    say "FAIL $name: no positioned artifact warning on stderr"
    cat run.out
    fail=1
    return
  fi
  # The rebuild re-published: a follow-up run is a clean hit.
  rm -f m.json
  $LINT $LFLAGS --cache-dir C --dot rerun.dot --metrics-out m.json \
    > rerun.out 2>&1
  if ! metric_ge1 m.json cache.hits; then
    say "FAIL $name: store not re-warmed after quarantine"
    cat m.json
    fail=1
    return
  fi
  say "ok $name"
}

# The corruption commands (run with $ART pointing at the warm artifact).
truncate_art() { head -c 96 "$ART" > t.bin && mv t.bin "$ART"; }
bitflip_art() {
  python3 - "$ART" <<'EOF'
import sys
p = sys.argv[1]
b = bytearray(open(p, 'rb').read())
b[-9] ^= 0x10  # a body word, away from the zero pad
open(p, 'wb').write(b)
EOF
}
staleversion_art() {
  python3 - "$ART" <<'EOF'
import sys
p = sys.argv[1]
b = bytearray(open(p, 'rb').read())
b[8] = 99  # format version field
open(p, 'wb').write(b)
EOF
}
foreignhash_art() { cp "$OTHER_ART" "$ART"; }
zerolen_art() { : > "$ART"; }

corrupt_case truncated truncate_art
corrupt_case bit-flipped-body bitflip_art
corrupt_case stale-format-version staleversion_art
corrupt_case foreign-context-hash foreignhash_art
corrupt_case zero-length zerolen_art

if [ $fail -eq 0 ]; then
  say "cache corrupt corpus: PASS"
fi
exit $fail
