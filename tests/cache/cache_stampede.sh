#!/usr/bin/env bash
#===- tests/cache/cache_stampede.sh - Cold-key stampede ---------------------===#
#
# Part of the Cable reproduction of "Debugging Temporal Specifications with
# Concept Analysis" (PLDI 2003). MIT license.
#
#===------------------------------------------------------------------------===#
#
# Races N=8 spec-lint processes at the same cold cache key. The per-key
# flock must collapse the stampede to a single build: exactly one process
# publishes (cache.stores sums to 1 across the fleet), every other process
# waits on the key lock and then hits (cache.hits sums to N-1), and all N
# outputs are bit-identical to the uncached golden.
#
# Usage: cache_stampede.sh <spec-lint> <workdir>
#
#===------------------------------------------------------------------------===#

set -u

LINT=${1:?usage: cache_stampede.sh <spec-lint> <workdir>}
WORK=${2:?usage: cache_stampede.sh <spec-lint> <workdir>}
DATA=$(cd "$(dirname "$0")/../../examples/data" && pwd)
LFLAGS="--spec $DATA/stdio_buggy.fa --traces $DATA/stdio_traces.txt --threads 2"
N=8

rm -rf "$WORK"
mkdir -p "$WORK"
cd "$WORK" || exit 1

say() { printf '%s\n' "$*"; }
metric_val() {
  local v
  v=$(grep -o "\"$2\": [0-9]*" "$1" | head -1 | grep -o '[0-9]*$')
  printf '%s' "${v:-0}"
}

# Golden uncached run.
$LINT $LFLAGS --no-cache --dot golden.dot > golden.out 2>&1
golden_rc=$?
if [ ! -s golden.dot ]; then
  say "FATAL: golden run produced no DOT output"
  cat golden.out
  exit 1
fi

# The stampede: N processes, one shared cold store.
rm -rf C
pids=
for i in $(seq 1 $N); do
  $LINT $LFLAGS --cache-dir C --dot "out$i.dot" --metrics-out "m$i.json" \
    > "run$i.out" 2>&1 &
  pids="$pids $!"
done

fail=0
i=0
for pid in $pids; do
  i=$((i + 1))
  wait "$pid"
  rc=$?
  if [ $rc -ne $golden_rc ]; then
    say "FAIL: process $i exited $rc, golden exited $golden_rc"
    tail -5 "run$i.out"
    fail=1
  fi
done

stores=0
hits=0
misses=0
for i in $(seq 1 $N); do
  if ! cmp -s golden.dot "out$i.dot"; then
    say "FAIL: process $i's lattice differs from golden"
    fail=1
  fi
  stores=$((stores + $(metric_val "m$i.json" cache.stores)))
  hits=$((hits + $(metric_val "m$i.json" cache.hits)))
  misses=$((misses + $(metric_val "m$i.json" cache.misses)))
done

# Exactly one build escaped to the store; everyone else converged on it.
if [ "$stores" -ne 1 ]; then
  say "FAIL: expected exactly 1 store across the fleet, got $stores"
  fail=1
fi
if [ "$hits" -ne $((N - 1)) ]; then
  say "FAIL: expected $((N - 1)) hits across the fleet, got $hits"
  fail=1
fi
if [ $((hits + misses)) -ne $N ]; then
  say "FAIL: hit/miss ledger does not cover the fleet: $hits + $misses != $N"
  fail=1
fi

# Exactly one artifact (plus its lock file) in the store.
arts=$(ls C/*.nextclosure.* | grep -v '\.lock$' | grep -cv '\.corrupt\.')
if [ "$arts" -ne 1 ]; then
  say "FAIL: expected 1 artifact in the store, found $arts"
  ls C
  fail=1
fi

if [ $fail -eq 0 ]; then
  say "cache stampede: $N process(es), $stores store, $hits hit(s): PASS"
fi
exit $fail
