//===- tests/program/ProgramTest.cpp ---------------------------------------===//
//
// Part of the Cable reproduction of "Debugging Temporal Specifications with
// Concept Analysis" (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//

#include "program/Program.h"
#include "program/Synthesize.h"

#include "../TestHelpers.h"
#include "miner/ScenarioExtractor.h"
#include "workload/Oracle.h"

#include <gtest/gtest.h>

using namespace cable;

TEST(ProgramTest, SequenceOfCallsEmitsEvents) {
  EventTable T;
  Program P;
  P.Name = "p";
  P.NumLocals = 2;
  P.Body = {Stmt::alloc(0), Stmt::alloc(1), Stmt::call("open", {0}),
            Stmt::call("link", {0, 1}), Stmt::call("close", {1})};
  Interpreter Interp(T);
  RNG Rand(1);
  ValueId Next = 0;
  Trace Tr = Interp.run(P, Rand, Next);
  ASSERT_EQ(Tr.size(), 3u);
  Trace Canon = Tr.canonicalized(T);
  EXPECT_EQ(Canon.render(T), "open(v0) link(v0,v1) close(v1)");
}

TEST(ProgramTest, AllocDrawsFreshValues) {
  EventTable T;
  Program P;
  P.Name = "p";
  P.NumLocals = 1;
  P.Body = {Stmt::alloc(0), Stmt::call("use", {0}), Stmt::alloc(0),
            Stmt::call("use", {0})};
  Interpreter Interp(T);
  RNG Rand(2);
  ValueId Next = 0;
  Trace Tr = Interp.run(P, Rand, Next);
  ASSERT_EQ(Tr.size(), 2u);
  EXPECT_NE(T.event(Tr[0]).Args[0], T.event(Tr[1]).Args[0])
      << "a second Alloc rebinds the local to a fresh value";
}

TEST(ProgramTest, IfProbabilityExtremes) {
  EventTable T;
  Program Always;
  Always.NumLocals = 1;
  Always.Body = {Stmt::alloc(0),
                 Stmt::iff(1.0, {Stmt::call("yes", {0})},
                           {Stmt::call("no", {0})})};
  Program Never = Always;
  Never.Body[1].Prob = 0.0;
  Interpreter Interp(T);
  RNG Rand(3);
  ValueId Next = 0;
  for (int I = 0; I < 20; ++I) {
    Trace A = Interp.run(Always, Rand, Next);
    EXPECT_EQ(T.nameText(T.event(A[0]).Name), "yes");
    Trace B = Interp.run(Never, Rand, Next);
    EXPECT_EQ(T.nameText(T.event(B[0]).Name), "no");
  }
}

TEST(ProgramTest, LoopBoundsRespected) {
  EventTable T;
  Program P;
  P.NumLocals = 1;
  P.Body = {Stmt::alloc(0),
            Stmt::loop(1, 3, {Stmt::call("tick", {0})})};
  Interpreter Interp(T);
  RNG Rand(4);
  ValueId Next = 0;
  bool SawMin = false, SawMax = false;
  for (int I = 0; I < 100; ++I) {
    Trace Tr = Interp.run(P, Rand, Next);
    EXPECT_GE(Tr.size(), 1u);
    EXPECT_LE(Tr.size(), 3u);
    SawMin |= Tr.size() == 1;
    SawMax |= Tr.size() == 3;
  }
  EXPECT_TRUE(SawMin);
  EXPECT_TRUE(SawMax);
}

TEST(ProgramTest, NumCallSitesCountsNested) {
  Program P;
  P.NumLocals = 1;
  P.Body = {Stmt::call("a", {0}),
            Stmt::iff(0.5, {Stmt::call("b", {0})}, {Stmt::call("c", {0})}),
            Stmt::loop(0, 2, {Stmt::call("d", {0})}),
            Stmt::seq({Stmt::call("e", {0})}), Stmt::alloc(0)};
  EXPECT_EQ(P.numCallSites(), 5u);
}

TEST(SynthesizeTest, CorrectSitesYieldOracleAcceptedScenarios) {
  ProtocolModel Model = protocolByName("XFreeGC");
  EventTable T;
  RNG Rand(10);
  CorpusOptions Options;
  Options.NumPrograms = 8;
  Options.RunsPerProgram = 2;
  Options.SitesPerProgram = 3;
  Options.BuggySiteRate = 0.0;
  TraceSet Runs = generateProgramCorpus(Model, T, Rand, Options);
  ASSERT_EQ(Runs.size(), 16u);

  ExtractorOptions Extract;
  Extract.SeedNames = Model.Seeds;
  Extract.TransitiveValues = true;
  TraceSet Scenarios = extractScenarios(Runs, Extract);
  ASSERT_EQ(Scenarios.size(),
            Options.NumPrograms * Options.RunsPerProgram *
                Options.SitesPerProgram);
  Oracle Truth(Model, Scenarios.table());
  for (const Trace &Tr : Scenarios.traces())
    EXPECT_TRUE(Truth.isCorrect(Tr, Scenarios.table()))
        << Tr.render(Scenarios.table());
}

TEST(SynthesizeTest, BuggySitesAreBuggyInEveryRun) {
  // The regime that defeats coring: with every site buggy, every run of
  // every program emits only erroneous scenarios.
  ProtocolModel Model = protocolByName("XFreeGC");
  EventTable T;
  RNG Rand(11);
  CorpusOptions Options;
  Options.NumPrograms = 6;
  Options.RunsPerProgram = 3;
  Options.SitesPerProgram = 2;
  Options.BuggySiteRate = 1.0;
  TraceSet Runs = generateProgramCorpus(Model, T, Rand, Options);

  ExtractorOptions Extract;
  Extract.SeedNames = Model.Seeds;
  Extract.TransitiveValues = true;
  TraceSet Scenarios = extractScenarios(Runs, Extract);
  ASSERT_GT(Scenarios.size(), 0u);
  Oracle Truth(Model, Scenarios.table());
  for (const Trace &Tr : Scenarios.traces())
    EXPECT_FALSE(Truth.isCorrect(Tr, Scenarios.table()))
        << Tr.render(Scenarios.table());
}

TEST(SynthesizeTest, MixedCorpusHasBothKinds) {
  ProtocolModel Model = protocolByName("RegionsAlloc");
  EventTable T;
  RNG Rand(12);
  CorpusOptions Options;
  Options.NumPrograms = 10;
  Options.RunsPerProgram = 2;
  Options.SitesPerProgram = 4;
  Options.BuggySiteRate = 0.3;
  TraceSet Runs = generateProgramCorpus(Model, T, Rand, Options);

  ExtractorOptions Extract;
  Extract.SeedNames = Model.Seeds;
  Extract.TransitiveValues = true;
  TraceSet Scenarios = extractScenarios(Runs, Extract);
  Oracle Truth(Model, Scenarios.table());
  size_t Good = 0, Bad = 0;
  for (const Trace &Tr : Scenarios.traces())
    (Truth.isCorrect(Tr, Scenarios.table()) ? Good : Bad) += 1;
  EXPECT_GT(Good, 0u);
  EXPECT_GT(Bad, 0u);
  EXPECT_GT(Good, Bad);
}

TEST(SynthesizeTest, RunsOfOneProgramShareBuggySites) {
  // Synthesize a single program with one (forcibly buggy) site and run it
  // repeatedly: either every run's scenario is bad, or (if the chosen
  // mutation was a no-op) every run's scenario is good — never a mix,
  // because the bug lives in the program, not the run.
  ProtocolModel Model = protocolByName("XPutImage");
  EventTable T;
  RNG Rand(13);
  Program P = synthesizeProgram(Model, Rand, "p", /*NumSites=*/1,
                                /*NumBuggy=*/1);
  Interpreter Interp(T);
  ValueId Next = 0;
  Oracle Truth(Model, T);
  ExtractorOptions Extract;
  Extract.SeedNames = Model.Seeds;
  Extract.TransitiveValues = true;

  std::optional<bool> AllCorrect;
  for (int R = 0; R < 10; ++R) {
    Trace RunTrace = Interp.run(P, Rand, Next); // Interns into T first.
    TraceSet Runs;
    Runs.table() = T;
    Runs.add(std::move(RunTrace));
    TraceSet Scenarios = extractScenarios(Runs, Extract);
    ASSERT_EQ(Scenarios.size(), 1u);
    bool Correct = Truth.isCorrect(Scenarios[0], Scenarios.table());
    if (!AllCorrect)
      AllCorrect = Correct;
    EXPECT_EQ(*AllCorrect, Correct)
        << "a site's correctness must not vary across runs";
  }
}

TEST(SynthesizeTest, SiteCountMatches) {
  ProtocolModel Model = stdioProtocol();
  RNG Rand(14);
  Program P = synthesizeProgram(Model, Rand, "p", 3, 0);
  // Each stdio site has one open, one close, and a loop; at least 2 calls
  // per site at the top level.
  EXPECT_GE(P.numCallSites(), 6u);
  EXPECT_EQ(P.Name, "p");
  EXPECT_GT(P.NumLocals, 0u);
}
