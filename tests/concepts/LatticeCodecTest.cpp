//===- tests/concepts/LatticeCodecTest.cpp ---------------------------------===//
//
// Part of the Cable reproduction of "Debugging Temporal Specifications with
// Concept Analysis" (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The `cable-lattice/1` codec: round-trip exactness (bytes, structure,
/// rendered DOT, traversal order), content-hash canonicality across kernel
/// dispatch levels, and rejection of a corpus of corrupted artifacts with
/// positioned diagnostics.
///
//===----------------------------------------------------------------------===//

#include "concepts/Lattice.h"

#include "concepts/NextClosureBuilder.h"
#include "support/RNG.h"
#include "support/simd/Kernels.h"

#include <gtest/gtest.h>

#include <cstring>

using namespace cable;

namespace {

/// The animals-and-adjectives context used across the lattice suites.
Context animalsContext() {
  Context Ctx(4, 5);
  Ctx.relate(0, 0);
  Ctx.relate(0, 1);
  Ctx.relate(0, 2);
  Ctx.relate(1, 0);
  Ctx.relate(1, 1);
  Ctx.relate(1, 2);
  Ctx.relate(2, 0);
  Ctx.relate(2, 1);
  Ctx.relate(2, 3);
  Ctx.relate(3, 3);
  Ctx.relate(3, 4);
  return Ctx;
}

Context randomContext(size_t NObj, size_t NAttr, double Density,
                      uint64_t Seed) {
  Context Ctx(NObj, NAttr);
  RNG R(Seed);
  for (size_t O = 0; O < NObj; ++O)
    for (size_t A = 0; A < NAttr; ++A)
      if (R.nextDouble() < Density)
        Ctx.relate(O, A);
  return Ctx;
}

LatticeArtifactMeta metaFor(const Context &Ctx) {
  LatticeArtifactMeta M;
  M.ContextHash = Ctx.contentHash();
  M.Builder = "nextclosure";
  M.Budget = "full";
  M.NumObjects = Ctx.numObjects();
  M.NumAttributes = Ctx.numAttributes();
  return M;
}

std::string plainDot(const ConceptLattice &L) {
  return L.renderDot("t", [](ConceptLattice::NodeId Id) {
    return "n" + std::to_string(Id);
  });
}

/// Asserts \p A and \p B are indistinguishable through every public
/// surface label inheritance and rendering depend on.
void expectLatticesIdentical(const ConceptLattice &A,
                             const ConceptLattice &B) {
  ASSERT_EQ(A.size(), B.size());
  EXPECT_EQ(A.top(), B.top());
  EXPECT_EQ(A.bottom(), B.bottom());
  EXPECT_EQ(A.numEdges(), B.numEdges());
  for (ConceptLattice::NodeId Id = 0; Id < A.size(); ++Id) {
    EXPECT_TRUE(A.node(Id).Extent == B.node(Id).Extent) << "extent " << Id;
    EXPECT_TRUE(A.node(Id).Intent == B.node(Id).Intent) << "intent " << Id;
    EXPECT_EQ(A.parents(Id), B.parents(Id)) << "parents " << Id;
    EXPECT_EQ(A.children(Id), B.children(Id)) << "children " << Id;
  }
  EXPECT_EQ(A.topDownOrder(), B.topDownOrder());
  EXPECT_EQ(plainDot(A), plainDot(B));
}

/// Expects deserialize to fail, and the diagnostic to name the file and
/// carry a byte offset (positioned rejection, never a silent half-load).
void expectRejected(std::string_view Bytes, const LatticeArtifactMeta &Expect,
                    const char *MessagePart) {
  StatusOr<ConceptLattice> R = ConceptLattice::deserialize(
      Bytes, Expect, LatticeVerify::Full, "artifact.bin");
  ASSERT_FALSE(R.isOk()) << "expected rejection: " << MessagePart;
  EXPECT_NE(R.status().message().find(MessagePart), std::string::npos)
      << "got: " << R.status().message();
  EXPECT_NE(R.status().message().find("byte offset"), std::string::npos)
      << "got: " << R.status().message();
  EXPECT_EQ(R.status().diagnostic().File, "artifact.bin");
}

} // namespace

TEST(LatticeCodecTest, RoundTripAnimals) {
  Context Ctx = animalsContext();
  ConceptLattice L = NextClosureBuilder::buildLattice(Ctx);
  LatticeArtifactMeta Meta = metaFor(Ctx);

  std::string Bytes = L.serialize(Meta);
  LatticeArtifactMeta Got;
  StatusOr<ConceptLattice> R = ConceptLattice::deserialize(
      Bytes, Meta, LatticeVerify::Full, "artifact.bin", &Got);
  ASSERT_TRUE(R.isOk()) << R.status().message();
  expectLatticesIdentical(L, R.value());

  EXPECT_EQ(Got.ContextHash, Meta.ContextHash);
  EXPECT_EQ(Got.Builder, "nextclosure");
  EXPECT_EQ(Got.Budget, "full");
  EXPECT_EQ(Got.NumObjects, 4u);
  EXPECT_EQ(Got.NumAttributes, 5u);
  EXPECT_FALSE(Got.Truncated);

  // Re-serializing the decoded lattice reproduces the artifact
  // byte-for-byte: the codec is canonical, not merely faithful.
  EXPECT_EQ(R.value().serialize(Meta), Bytes);
}

TEST(LatticeCodecTest, RoundTripRandomContexts) {
  for (uint64_t Seed : {7u, 21u, 99u}) {
    Context Ctx = randomContext(40, 17, 0.3, Seed);
    ConceptLattice L = NextClosureBuilder::buildLattice(Ctx);
    LatticeArtifactMeta Meta = metaFor(Ctx);

    std::string Bytes = L.serialize(Meta);
    StatusOr<ConceptLattice> R = ConceptLattice::deserialize(
        Bytes, Meta, LatticeVerify::Full, "artifact.bin");
    ASSERT_TRUE(R.isOk()) << "seed " << Seed << ": " << R.status().message();
    expectLatticesIdentical(L, R.value());
    EXPECT_EQ(R.value().serialize(Meta), Bytes) << "seed " << Seed;

    std::string Why;
    EXPECT_TRUE(R.value().verify(Ctx, &Why)) << Why;
  }
}

TEST(LatticeCodecTest, HeaderModeSkipsBodyCrcOnly) {
  Context Ctx = animalsContext();
  ConceptLattice L = NextClosureBuilder::buildLattice(Ctx);
  LatticeArtifactMeta Meta = metaFor(Ctx);
  std::string Bytes = L.serialize(Meta);

  // Header mode still decodes a clean artifact correctly...
  StatusOr<ConceptLattice> R = ConceptLattice::deserialize(
      Bytes, Meta, LatticeVerify::Header, "artifact.bin");
  ASSERT_TRUE(R.isOk()) << R.status().message();
  expectLatticesIdentical(L, R.value());

  // ...and still enforces every structural invariant: truncation is
  // caught by section-length checks, not the CRC.
  std::string Short = Bytes.substr(0, Bytes.size() - 8);
  EXPECT_FALSE(ConceptLattice::deserialize(Short, Meta, LatticeVerify::Header,
                                           "artifact.bin")
                   .isOk());
}

TEST(LatticeCodecTest, ExpectMismatchRejected) {
  Context Ctx = animalsContext();
  ConceptLattice L = NextClosureBuilder::buildLattice(Ctx);
  LatticeArtifactMeta Meta = metaFor(Ctx);
  std::string Bytes = L.serialize(Meta);

  LatticeArtifactMeta WrongHash = Meta;
  WrongHash.ContextHash = "0000000000000000";
  expectRejected(Bytes, WrongHash, "context hash");

  LatticeArtifactMeta WrongBuilder = Meta;
  WrongBuilder.Builder = "lindig";
  expectRejected(Bytes, WrongBuilder, "builder");

  LatticeArtifactMeta WrongBudget = Meta;
  WrongBudget.Budget = "mc10";
  expectRejected(Bytes, WrongBudget, "budget");

  LatticeArtifactMeta WrongShape = Meta;
  WrongShape.NumObjects = 5;
  expectRejected(Bytes, WrongShape, "object");

  // Empty Expect fields match anything: a bare probe decodes fine.
  LatticeArtifactMeta AnyMeta;
  EXPECT_TRUE(ConceptLattice::deserialize(Bytes, AnyMeta, LatticeVerify::Full,
                                          "artifact.bin")
                  .isOk());
}

TEST(LatticeCodecTest, CorruptCorpusRejectedWithPosition) {
  Context Ctx = animalsContext();
  ConceptLattice L = NextClosureBuilder::buildLattice(Ctx);
  LatticeArtifactMeta Meta = metaFor(Ctx);
  std::string Bytes = L.serialize(Meta);

  // Zero-length and sub-preamble files.
  expectRejected("", Meta, "truncated preamble");
  expectRejected(Bytes.substr(0, 17), Meta, "truncated preamble");

  // Wrong magic.
  std::string BadMagic = Bytes;
  BadMagic[0] = 'X';
  expectRejected(BadMagic, Meta, "magic");

  // Unknown (future) format version at offset 8.
  std::string BadVersion = Bytes;
  BadVersion[8] = 99;
  expectRejected(BadVersion, Meta, "version");

  // Header CRC mismatch: flip a header byte.
  std::string BadHeader = Bytes;
  BadHeader[44] ^= 0x40;
  expectRejected(BadHeader, Meta, "header checksum");

  // Body CRC mismatch: flip a bit in the last body byte.
  std::string BadBody = Bytes;
  BadBody.back() ^= 0x01;
  expectRejected(BadBody, Meta, "body checksum");

  // Truncated body.
  expectRejected(Bytes.substr(0, Bytes.size() - 1), Meta, "length");

  // Trailing garbage.
  expectRejected(Bytes + "x", Meta, "length");
}

TEST(LatticeCodecTest, AsymmetricAdjacencyRejectedEvenInHeaderMode) {
  Context Ctx = animalsContext();
  ConceptLattice L = NextClosureBuilder::buildLattice(Ctx);
  LatticeArtifactMeta Meta = metaFor(Ctx);
  std::string Bytes = L.serialize(Meta);

  // Rewrite the low byte of the first parent id to a different (still
  // in-range) node: the CSR stays well-formed, only the parent/child
  // cover symmetry breaks. Header mode skips the body CRC, so this is
  // exactly the corruption only the symmetry check can catch.
  const size_t C = L.size();
  const size_t EW = (Meta.NumObjects + 63) / 64;
  const size_t IW = (Meta.NumAttributes + 63) / 64;
  uint32_t HeaderLen = 0;
  for (int B = 0; B < 4; ++B)
    HeaderLen |= static_cast<uint32_t>(
                     static_cast<unsigned char>(Bytes[12 + B]))
                 << (8 * B);
  size_t IdsAt = 40 + HeaderLen + C * (EW + IW) * 8 + (C + 1) * 4;
  ASSERT_LT(IdsAt, Bytes.size());
  unsigned OldId = static_cast<unsigned char>(Bytes[IdsAt]);
  Bytes[IdsAt] = static_cast<char>((OldId + 1) % C);

  StatusOr<ConceptLattice> R = ConceptLattice::deserialize(
      Bytes, Meta, LatticeVerify::Header, "artifact.bin");
  ASSERT_FALSE(R.isOk());
  EXPECT_NE(R.status().message().find("adjacency lists disagree"),
            std::string::npos)
      << R.status().message();
}

TEST(LatticeCodecTest, ContentHashCanonicalAcrossKernels) {
  // The content hash is the cache key: it must depend only on the
  // relation, never on how bit-vector kernels are dispatched.
  Context Ctx = randomContext(65, 67, 0.25, 3);
  std::string Baseline = Ctx.contentHash();
  EXPECT_EQ(Baseline.size(), 16u);
  for (simd::Level Lv :
       {simd::Level::Scalar, simd::Level::Unrolled, simd::Level::Vector}) {
    simd::ForcedLevelGuard Guard(Lv);
    EXPECT_EQ(randomContext(65, 67, 0.25, 3).contentHash(), Baseline)
        << simd::levelName(Lv);
  }

  // And it separates contexts that differ in a single cell.
  Context Other = randomContext(65, 67, 0.25, 3);
  Other.relate(64, 66);
  EXPECT_NE(Other.contentHash(), Baseline);
}

TEST(LatticeCodecTest, TruncatedFlagRoundTrips) {
  Context Ctx = animalsContext();
  ConceptLattice L = NextClosureBuilder::buildLattice(Ctx);
  LatticeArtifactMeta Meta = metaFor(Ctx);
  Meta.Budget = "mc500";
  Meta.Truncated = true;

  LatticeArtifactMeta Got;
  StatusOr<ConceptLattice> R =
      ConceptLattice::deserialize(L.serialize(Meta), Meta, LatticeVerify::Full,
                                  "artifact.bin", &Got);
  ASSERT_TRUE(R.isOk()) << R.status().message();
  EXPECT_TRUE(Got.Truncated);
  EXPECT_EQ(Got.Budget, "mc500");
}
