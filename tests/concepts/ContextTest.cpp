//===- tests/concepts/ContextTest.cpp --------------------------------------===//
//
// Part of the Cable reproduction of "Debugging Temporal Specifications with
// Concept Analysis" (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//

#include "concepts/Context.h"

#include "support/RNG.h"

#include <gtest/gtest.h>

using namespace cable;

namespace {

BitVector bits(size_t N, std::initializer_list<size_t> Set) {
  BitVector BV(N);
  for (size_t I : Set)
    BV.set(I);
  return BV;
}

Context randomContext(RNG &Rand, size_t MaxObjects, size_t MaxAttrs,
                      double Density) {
  size_t O = 1 + Rand.nextIndex(MaxObjects);
  size_t A = 1 + Rand.nextIndex(MaxAttrs);
  Context Ctx(O, A);
  for (size_t I = 0; I < O; ++I)
    for (size_t J = 0; J < A; ++J)
      if (Rand.nextBool(Density))
        Ctx.relate(I, J);
  return Ctx;
}

} // namespace

TEST(ContextTest, RelateAndQuery) {
  Context Ctx(3, 4);
  Ctx.relate(0, 1);
  Ctx.relate(2, 3);
  EXPECT_TRUE(Ctx.related(0, 1));
  EXPECT_FALSE(Ctx.related(1, 0));
  EXPECT_TRUE(Ctx.objectRow(0).test(1));
  EXPECT_TRUE(Ctx.attributeCol(3).test(2));
}

TEST(ContextTest, SigmaOfEmptySetIsAllAttributes) {
  Context Ctx(3, 4);
  BitVector Empty(3);
  EXPECT_EQ(Ctx.sigma(Empty).count(), 4u);
}

TEST(ContextTest, TauOfEmptySetIsAllObjects) {
  Context Ctx(3, 4);
  BitVector Empty(4);
  EXPECT_EQ(Ctx.tau(Empty).count(), 3u);
}

TEST(ContextTest, SigmaComputesCommonAttributes) {
  Context Ctx(3, 3);
  // Object 0: {0,1}; object 1: {1,2}; object 2: {1}.
  Ctx.relate(0, 0);
  Ctx.relate(0, 1);
  Ctx.relate(1, 1);
  Ctx.relate(1, 2);
  Ctx.relate(2, 1);
  EXPECT_TRUE(Ctx.sigma(bits(3, {0, 1})) == bits(3, {1}));
  EXPECT_TRUE(Ctx.sigma(bits(3, {0})) == bits(3, {0, 1}));
  EXPECT_TRUE(Ctx.sigma(bits(3, {0, 1, 2})) == bits(3, {1}));
}

TEST(ContextTest, SimilarityIsSigmaCardinality) {
  Context Ctx(2, 5);
  for (size_t A : {0u, 1u, 2u})
    Ctx.relate(0, A);
  for (size_t A : {1u, 2u, 3u})
    Ctx.relate(1, A);
  EXPECT_EQ(Ctx.similarity(bits(2, {0})), 3u);
  EXPECT_EQ(Ctx.similarity(bits(2, {0, 1})), 2u);
}

TEST(ContextTest, ClarifiedMergesDuplicateRowsAndColumns) {
  // Objects 0 and 2 share a row; attributes 1 and 3 share a column
  // (attribute 0 additionally relates to object 1, so it stays separate).
  Context Ctx(3, 4);
  Ctx.relate(0, 0);
  Ctx.relate(0, 1);
  Ctx.relate(0, 3);
  Ctx.relate(2, 0);
  Ctx.relate(2, 1);
  Ctx.relate(2, 3);
  Ctx.relate(1, 0);
  Ctx.relate(1, 2);
  std::vector<size_t> ObjMap, AttrMap;
  Context C = Ctx.clarified(&ObjMap, &AttrMap);
  EXPECT_EQ(C.numObjects(), 2u);
  EXPECT_EQ(C.numAttributes(), 3u);
  EXPECT_EQ(ObjMap[0], ObjMap[2]);
  EXPECT_NE(ObjMap[0], ObjMap[1]);
  EXPECT_EQ(AttrMap[1], AttrMap[3]);
  // Relation preserved through the maps.
  for (size_t O = 0; O < Ctx.numObjects(); ++O)
    for (size_t A = 0; A < Ctx.numAttributes(); ++A)
      EXPECT_EQ(Ctx.related(O, A), C.related(ObjMap[O], AttrMap[A]));
}

TEST(ContextTest, ClarifiedOfClarifiedIsIdentitySized) {
  RNG Rand(5);
  Context Ctx(8, 8);
  for (size_t O = 0; O < 8; ++O)
    for (size_t A = 0; A < 8; ++A)
      if (Rand.nextBool(0.4))
        Ctx.relate(O, A);
  Context C1 = Ctx.clarified();
  Context C2 = C1.clarified();
  EXPECT_EQ(C1.numObjects(), C2.numObjects());
  EXPECT_EQ(C1.numAttributes(), C2.numAttributes());
}

/// Galois-connection laws on random contexts.
class GaloisPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(GaloisPropertyTest, Laws) {
  RNG Rand(GetParam());
  Context Ctx = randomContext(Rand, 12, 12, 0.4);
  size_t O = Ctx.numObjects(), A = Ctx.numAttributes();

  for (int Trial = 0; Trial < 20; ++Trial) {
    BitVector X(O), Y(A);
    for (size_t I = 0; I < O; ++I)
      if (Rand.nextBool(0.3))
        X.set(I);
    for (size_t J = 0; J < A; ++J)
      if (Rand.nextBool(0.3))
        Y.set(J);

    // Extensivity: X ⊆ tau(sigma(X)), Y ⊆ sigma(tau(Y)).
    EXPECT_TRUE(X.isSubsetOf(Ctx.closeExtent(X)));
    EXPECT_TRUE(Y.isSubsetOf(Ctx.closeIntent(Y)));

    // Idempotence of closure.
    BitVector CX = Ctx.closeExtent(X);
    EXPECT_TRUE(Ctx.closeExtent(CX) == CX);
    BitVector CY = Ctx.closeIntent(Y);
    EXPECT_TRUE(Ctx.closeIntent(CY) == CY);

    // sigma is antitone: X1 ⊆ X2 implies sigma(X2) ⊆ sigma(X1).
    BitVector X2 = X;
    for (size_t I = 0; I < O; ++I)
      if (Rand.nextBool(0.2))
        X2.set(I);
    EXPECT_TRUE(Ctx.sigma(X2).isSubsetOf(Ctx.sigma(X)));

    // Galois: X ⊆ tau(Y) iff Y ⊆ sigma(X).
    EXPECT_EQ(X.isSubsetOf(Ctx.tau(Y)), Y.isSubsetOf(Ctx.sigma(X)));

    // sigma = sigma ∘ tau ∘ sigma.
    EXPECT_TRUE(Ctx.sigma(Ctx.tau(Ctx.sigma(X))) == Ctx.sigma(X));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GaloisPropertyTest,
                         ::testing::Range<uint64_t>(0, 20));
