//===- tests/concepts/ContextLayoutTest.cpp - Arena layout equivalence ----===//
//
// Part of the Cable reproduction of "Debugging Temporal Specifications with
// Concept Analysis" (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//
//
// Property suite for the blocked arena Context layout: on random and
// degenerate contexts, the fused sigma/tau (packed row/column arenas +
// andSelectInto) must agree bit-for-bit with the retained pre-arena
// reference implementations, at every kernel dispatch level; and entire
// lattices built by all four builders must be identical between the new
// and legacy derivation paths.
//
//===----------------------------------------------------------------------===//

#include "concepts/GodinBuilder.h"
#include "concepts/LindigBuilder.h"
#include "concepts/NextClosureBuilder.h"
#include "concepts/ParallelBuilder.h"

#include "support/RNG.h"
#include "support/simd/Kernels.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

using namespace cable;

namespace {

/// Same shape family as the builder differential sweep: tall, wide,
/// sparse, and dense regimes out of one seed.
Context seededContext(uint64_t Seed) {
  RNG Rand(Seed * 6364136223846793005ULL + 1442695040888963407ULL);
  size_t O = Rand.nextIndex(13); // 0..12 objects
  size_t A = Rand.nextIndex(11); // 0..10 attributes
  double Density = 0.05 + 0.9 * Rand.nextDouble();
  Context Ctx(O, A);
  for (size_t I = 0; I < O; ++I)
    for (size_t J = 0; J < A; ++J)
      if (Rand.nextBool(Density))
        Ctx.relate(I, J);
  return Ctx;
}

/// Contranominal scale N: every object has every attribute except its own
/// diagonal — the worst-case 2^N lattice and the bench workload shape.
Context contranominal(size_t N) {
  Context Ctx(N, N);
  for (size_t O = 0; O < N; ++O)
    for (size_t A = 0; A < N; ++A)
      if (O != A)
        Ctx.relate(O, A);
  return Ctx;
}

BitVector randomSubset(RNG &Rand, size_t Universe) {
  BitVector Out(Universe);
  for (size_t I = 0; I < Universe; ++I)
    if (Rand.nextBool(0.4))
      Out.set(I);
  return Out;
}

/// Checks sigma/tau and both closures against the reference path for a
/// battery of random subsets, plus the empty and full subsets.
void expectDerivationsMatchReference(const Context &Ctx, uint64_t Seed,
                                     const char *What) {
  RNG Rand(Seed);
  std::vector<BitVector> ObjSets = {BitVector(Ctx.numObjects()),
                                    BitVector(Ctx.numObjects())};
  ObjSets[1].setAll();
  std::vector<BitVector> AttrSets = {BitVector(Ctx.numAttributes()),
                                     BitVector(Ctx.numAttributes())};
  AttrSets[1].setAll();
  for (int I = 0; I < 20; ++I) {
    ObjSets.push_back(randomSubset(Rand, Ctx.numObjects()));
    AttrSets.push_back(randomSubset(Rand, Ctx.numAttributes()));
  }
  for (const BitVector &X : ObjSets) {
    EXPECT_TRUE(Ctx.sigma(X) == Ctx.sigmaReference(X)) << What;
    EXPECT_TRUE(Ctx.closeExtent(X) == Ctx.closeExtentReference(X)) << What;
  }
  for (const BitVector &Y : AttrSets) {
    EXPECT_TRUE(Ctx.tau(Y) == Ctx.tauReference(Y)) << What;
    EXPECT_TRUE(Ctx.closeIntent(Y) == Ctx.closeIntentReference(Y)) << What;
  }
}

/// Runs the reference-match battery at every kernel level this host can
/// dispatch to.
void expectDerivationsMatchAtEveryLevel(const Context &Ctx, uint64_t Seed,
                                        const char *What) {
  std::vector<simd::Level> Levels = {simd::Level::Scalar,
                                     simd::Level::Unrolled};
  if (simd::maxSupportedLevel() == simd::Level::Vector)
    Levels.push_back(simd::Level::Vector);
  for (simd::Level L : Levels) {
    simd::ForcedLevelGuard Guard(L);
    expectDerivationsMatchReference(Ctx, Seed, What);
  }
}

/// Asserts two lattices are bit-for-bit identical (same ids, same sets,
/// same adjacency order) — the strong form, as in the builder suite.
void expectIdenticalLattices(const ConceptLattice &A, const ConceptLattice &B,
                             const std::string &What) {
  ASSERT_EQ(A.size(), B.size()) << What;
  EXPECT_EQ(A.top(), B.top()) << What;
  EXPECT_EQ(A.bottom(), B.bottom()) << What;
  EXPECT_EQ(A.numEdges(), B.numEdges()) << What;
  for (ConceptLattice::NodeId Id = 0; Id < A.size(); ++Id) {
    EXPECT_TRUE(A.node(Id).Extent == B.node(Id).Extent) << What << " c" << Id;
    EXPECT_TRUE(A.node(Id).Intent == B.node(Id).Intent) << What << " c" << Id;
    EXPECT_EQ(A.parents(Id), B.parents(Id)) << What << " c" << Id;
    EXPECT_EQ(A.children(Id), B.children(Id)) << What << " c" << Id;
  }
}

/// Builds with all four builders on the arena path and again on the
/// legacy reference path; every pair must be identical.
void expectBuildersIdenticalAcrossPaths(Context Ctx, const char *What) {
  ConceptLattice NewG = GodinBuilder::buildLattice(Ctx);
  ConceptLattice NewL = LindigBuilder::buildLattice(Ctx);
  ConceptLattice NewN = NextClosureBuilder::buildLattice(Ctx);
  ConceptLattice NewP = ParallelBuilder::buildLattice(Ctx, /*NumThreads=*/4);

  Ctx.setUseReferencePaths(true);
  expectIdenticalLattices(NewG, GodinBuilder::buildLattice(Ctx),
                          std::string(What) + " godin");
  expectIdenticalLattices(NewL, LindigBuilder::buildLattice(Ctx),
                          std::string(What) + " lindig");
  expectIdenticalLattices(NewN, NextClosureBuilder::buildLattice(Ctx),
                          std::string(What) + " next-closure");
  expectIdenticalLattices(NewP, ParallelBuilder::buildLattice(Ctx, 4),
                          std::string(What) + " parallel");
}

} // namespace

/// 150-seed sweep: fused derivations equal the reference at every level.
class ContextLayoutTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ContextLayoutTest, DerivationsMatchReferenceAtEveryLevel) {
  Context Ctx = seededContext(GetParam());
  expectDerivationsMatchAtEveryLevel(Ctx, GetParam() ^ 0xD15EA5E,
                                     "seeded context");
}

INSTANTIATE_TEST_SUITE_P(Seeds, ContextLayoutTest,
                         ::testing::Range<uint64_t>(0, 150));

TEST(ContextLayoutDegenerateTest, EmptyContext) {
  expectDerivationsMatchAtEveryLevel(Context(0, 0), 1, "0x0");
}

TEST(ContextLayoutDegenerateTest, ObjectsWithoutAttributes) {
  expectDerivationsMatchAtEveryLevel(Context(7, 0), 2, "7x0");
}

TEST(ContextLayoutDegenerateTest, AttributesWithoutObjects) {
  expectDerivationsMatchAtEveryLevel(Context(0, 9), 3, "0x9");
}

TEST(ContextLayoutDegenerateTest, Contranominal) {
  // 2^10 concepts; also crosses the one-word boundary at 10 bits? No —
  // the point is the densest off-diagonal shape the bench uses.
  expectDerivationsMatchAtEveryLevel(contranominal(10), 4, "contranominal10");
}

TEST(ContextLayoutDegenerateTest, WideContextCrossesWordBoundaries) {
  // 70 attributes → 2-word rows; 130 objects → 3-word columns, so both
  // arenas exercise multi-word strides and tail masks.
  RNG Rand(99);
  Context Ctx(130, 70);
  for (size_t O = 0; O < 130; ++O)
    for (size_t A = 0; A < 70; ++A)
      if (Rand.nextBool(0.3))
        Ctx.relate(O, A);
  expectDerivationsMatchAtEveryLevel(Ctx, 5, "130x70");
}

/// 60-seed sweep: whole lattices are identical old-path vs new-path for
/// every builder.
class ContextPathEquivalenceTest : public ::testing::TestWithParam<uint64_t> {
};

TEST_P(ContextPathEquivalenceTest, AllBuildersIdenticalOldVsNewPath) {
  expectBuildersIdenticalAcrossPaths(seededContext(GetParam() * 37 + 5),
                                     "seeded context");
}

INSTANTIATE_TEST_SUITE_P(Seeds, ContextPathEquivalenceTest,
                         ::testing::Range<uint64_t>(0, 60));

TEST(ContextPathEquivalenceTest, DegenerateContexts) {
  expectBuildersIdenticalAcrossPaths(Context(0, 0), "0x0");
  expectBuildersIdenticalAcrossPaths(Context(5, 0), "5x0");
  expectBuildersIdenticalAcrossPaths(Context(0, 6), "0x6");
  expectBuildersIdenticalAcrossPaths(contranominal(8), "contranominal8");
}

TEST(ContextPathEquivalenceTest, LatticesIdenticalAcrossKernelLevels) {
  // The same builds pinned to scalar and to the best level must agree —
  // dispatch changes instruction selection, never results.
  for (uint64_t Seed : {11ULL, 222ULL, 3333ULL}) {
    Context Ctx = seededContext(Seed);
    ConceptLattice Scalar = [&] {
      simd::ForcedLevelGuard Guard(simd::Level::Scalar);
      return NextClosureBuilder::buildLattice(Ctx);
    }();
    ConceptLattice Best = [&] {
      simd::ForcedLevelGuard Guard(simd::maxSupportedLevel());
      return NextClosureBuilder::buildLattice(Ctx);
    }();
    expectIdenticalLattices(Scalar, Best,
                            "level sweep seed " + std::to_string(Seed));
    ConceptLattice ScalarP = [&] {
      simd::ForcedLevelGuard Guard(simd::Level::Scalar);
      return ParallelBuilder::buildLattice(Ctx, 4);
    }();
    ConceptLattice BestP = [&] {
      simd::ForcedLevelGuard Guard(simd::maxSupportedLevel());
      return ParallelBuilder::buildLattice(Ctx, 4);
    }();
    expectIdenticalLattices(ScalarP, BestP,
                            "parallel level sweep seed " +
                                std::to_string(Seed));
  }
}
