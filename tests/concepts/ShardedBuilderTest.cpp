//===- tests/concepts/ShardedBuilderTest.cpp -------------------------------===//
//
// Part of the Cable reproduction of "Debugging Temporal Specifications with
// Concept Analysis" (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//
//
// The multi-process determinism and robustness contract. Sharded builds
// must be bit-for-bit identical to serial NextClosure at every worker
// count — on generated contexts, degenerate corners, and exact ConceptCap
// truncations — and must stay identical when workers are crashed, wedged,
// or made to lie at every lifecycle failpoint. std::bad_alloc containment
// at the budgeted boundary is covered here too, via the `lattice-oom`
// failpoint.
//
//===----------------------------------------------------------------------===//

#include "concepts/NextClosureBuilder.h"
#include "concepts/ParallelBuilder.h"
#include "concepts/ShardedBuilder.h"

#include "support/Failpoint.h"
#include "support/Metrics.h"
#include "support/RNG.h"
#include "support/Subprocess.h"
#include "support/TraceEvent.h"

#include <gtest/gtest.h>

using namespace cable;

namespace {

/// Asserts two lattices are bit-for-bit identical: same node ids, same
/// extents/intents, same parent/child adjacency in the same order.
void expectIdenticalLattices(const ConceptLattice &A, const ConceptLattice &B,
                             const std::string &What) {
  ASSERT_EQ(A.size(), B.size()) << What;
  EXPECT_EQ(A.top(), B.top()) << What;
  EXPECT_EQ(A.bottom(), B.bottom()) << What;
  EXPECT_EQ(A.numEdges(), B.numEdges()) << What;
  for (ConceptLattice::NodeId Id = 0; Id < A.size(); ++Id) {
    EXPECT_TRUE(A.node(Id).Extent == B.node(Id).Extent) << What << " c" << Id;
    EXPECT_TRUE(A.node(Id).Intent == B.node(Id).Intent) << What << " c" << Id;
    EXPECT_EQ(A.parents(Id), B.parents(Id)) << What << " c" << Id;
    EXPECT_EQ(A.children(Id), B.children(Id)) << What << " c" << Id;
  }
}

/// Same seeded generator as the differential suite, so the sharded sweep
/// covers the same tall/wide/sparse/dense regimes.
Context seededContext(uint64_t Seed) {
  RNG Rand(Seed * 6364136223846793005ULL + 1442695040888963407ULL);
  size_t O = Rand.nextIndex(13); // 0..12 objects
  size_t A = Rand.nextIndex(11); // 0..10 attributes
  double Density = 0.05 + 0.9 * Rand.nextDouble();
  Context Ctx(O, A);
  for (size_t I = 0; I < O; ++I)
    for (size_t J = 0; J < A; ++J)
      if (Rand.nextBool(Density))
        Ctx.relate(I, J);
  return Ctx;
}

/// The 5x5 contranominal scale: 2^5 = 32 concepts, so a small MaxConcepts
/// is guaranteed to truncate.
Context contranominalContext() {
  Context Ctx(5, 5);
  for (size_t O = 0; O < 5; ++O)
    for (size_t A = 0; A < 5; ++A)
      if (O != A)
        Ctx.relate(O, A);
  return Ctx;
}

ShardOptions shardOpts(unsigned Workers) {
  ShardOptions Opts;
  Opts.NumWorkers = Workers;
  Opts.NumThreads = 2;
  return Opts;
}

/// Fast-failure knobs for the fault-injection tests: one retry, millisecond
/// backoff, so a crash-every-spawn site degrades inline in well under a
/// second instead of walking the full default budget.
ShardOptions faultyOpts(unsigned Workers,
                        std::chrono::milliseconds Timeout =
                            std::chrono::milliseconds(30000)) {
  ShardOptions Opts = shardOpts(Workers);
  Opts.ShardTimeout = Timeout;
  Opts.MaxRetries = 1;
  Opts.RetryBackoff = std::chrono::milliseconds(1);
  return Opts;
}

void expectShardedMatchesSerial(const Context &Ctx, const ShardOptions &Opts,
                                const std::string &What) {
  ConceptLattice Serial = NextClosureBuilder::buildLattice(Ctx);
  ConceptLattice Sharded = ShardedBuilder::buildLattice(Ctx, Opts);
  expectIdenticalLattices(Serial, Sharded, What);
  std::string Why;
  EXPECT_TRUE(Sharded.verify(Ctx, &Why)) << What << ": " << Why;
}

} // namespace

/// The determinism sweep: bit-for-bit identical to serial NextClosure at
/// every worker count, including counts far above the block count.
class ShardedDeterminismTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ShardedDeterminismTest, BitForBitIdenticalAcrossWorkerCounts) {
  Context Ctx = seededContext(GetParam() * 131 + 29);
  ConceptLattice Serial = NextClosureBuilder::buildLattice(Ctx);
  for (unsigned W : {1u, 2u, 4u, 8u}) {
    ConceptLattice Sharded = ShardedBuilder::buildLattice(Ctx, shardOpts(W));
    expectIdenticalLattices(Serial, Sharded,
                            "workers=" + std::to_string(W));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ShardedDeterminismTest,
                         ::testing::Range<uint64_t>(0, 12));

TEST(ShardedDegenerateTest, EmptyContext) {
  expectShardedMatchesSerial(Context(0, 0), shardOpts(4), "0x0 context");
}

TEST(ShardedDegenerateTest, ObjectsWithoutAttributes) {
  // No attributes means no partition blocks at all: the build is the top
  // concept alone and must not wait on workers that have nothing to do.
  expectShardedMatchesSerial(Context(5, 0), shardOpts(4), "5x0 context");
}

TEST(ShardedDegenerateTest, AttributesWithoutObjects) {
  expectShardedMatchesSerial(Context(0, 6), shardOpts(4), "0x6 context");
}

TEST(ShardedDegenerateTest, FullRelation) {
  Context Ctx(4, 5);
  for (size_t O = 0; O < 4; ++O)
    for (size_t A = 0; A < 5; ++A)
      Ctx.relate(O, A);
  expectShardedMatchesSerial(Ctx, shardOpts(8), "full relation");
}

TEST(ShardedFallbackTest, ZeroWorkersUsesTheInProcessPath) {
  Context Ctx = seededContext(777);
  expectShardedMatchesSerial(Ctx, shardOpts(0), "workers=0 fallback");
}

/// A MaxConcepts cut is exact and identical at every worker count: the
/// canonical merge truncates the same lectic prefix the serial enumerator
/// stops at.
TEST(ShardedBudgetTest, ConceptCapCutIsIdenticalToSerial) {
  Context Ctx = contranominalContext();
  Budget B;
  B.MaxConcepts = 7;
  BudgetMeter SerialMeter(B);
  LatticeBuildResult Serial =
      NextClosureBuilder::buildLatticeBudgeted(Ctx, SerialMeter);
  ASSERT_TRUE(Serial.Truncated);
  for (unsigned W : {1u, 2u, 4u}) {
    BudgetMeter Meter(B);
    LatticeBuildResult Sharded =
        ShardedBuilder::buildLatticeBudgeted(Ctx, Meter, shardOpts(W));
    EXPECT_TRUE(Sharded.Truncated) << "workers=" << W;
    EXPECT_FALSE(Sharded.BuildStatus.isOk()) << "workers=" << W;
    expectIdenticalLattices(Serial.Lattice, Sharded.Lattice,
                            "cap=7 workers=" + std::to_string(W));
  }
}

TEST(ShardedBudgetTest, ExpiredMeterStillReturnsAWellFormedLattice) {
  Context Ctx = seededContext(4242);
  Budget B;
  B.TimeLimit = std::chrono::milliseconds(0);
  BudgetMeter Meter(B);
  LatticeBuildResult R =
      ShardedBuilder::buildLatticeBudgeted(Ctx, Meter, shardOpts(4));
  EXPECT_TRUE(R.Truncated);
  EXPECT_EQ(ErrorCode::ResourceExhausted, R.BuildStatus.code());
  std::string Why;
  EXPECT_TRUE(R.Lattice.verify(Ctx, &Why)) << Why;
}

TEST(ShardedBudgetTest, CancelledMeterReportsCancellation) {
  Context Ctx = seededContext(4242);
  BudgetMeter Meter{Budget{}};
  Meter.cancel();
  LatticeBuildResult R =
      ShardedBuilder::buildLatticeBudgeted(Ctx, Meter, shardOpts(2));
  EXPECT_TRUE(R.Truncated);
  EXPECT_EQ(ErrorCode::Cancelled, R.BuildStatus.code());
  std::string Why;
  EXPECT_TRUE(R.Lattice.verify(Ctx, &Why)) << Why;
}

/// The fault matrix, in-process edition: every worker-lifecycle failpoint,
/// in crash and error modes, must leave the recovered lattice bit-for-bit
/// identical to serial. Failpoint arming is fork-copied, so an @1 fault on
/// a site every worker passes re-fires in every respawn — driving the
/// supervisor through retry, reassignment, and finally inline degradation,
/// all of which must preserve the result.
class ShardedFaultTest : public ::testing::Test {
protected:
  void TearDown() override { Failpoint::reset(); }
};

TEST_F(ShardedFaultTest, CrashAtEveryLifecycleSiteRecoversIdentically) {
  Context Ctx = seededContext(99);
  for (const char *Site :
       {"shard-pre-fork", "shard-post-compute", "shard-pre-reply",
        "shard-mid-frame"}) {
    ASSERT_TRUE(
        Failpoint::configure(std::string(Site) + "=crash").isOk());
    expectShardedMatchesSerial(Ctx, faultyOpts(2),
                               std::string(Site) + "=crash");
    Failpoint::reset();
  }
}

TEST_F(ShardedFaultTest, ErrorAtEveryLifecycleSiteRecoversIdentically) {
  Context Ctx = seededContext(99);
  for (const char *Site :
       {"shard-pre-fork", "shard-post-compute", "shard-pre-reply",
        "shard-mid-frame"}) {
    ASSERT_TRUE(
        Failpoint::configure(std::string(Site) + "=error").isOk());
    expectShardedMatchesSerial(Ctx, faultyOpts(2),
                               std::string(Site) + "=error");
    Failpoint::reset();
  }
}

TEST_F(ShardedFaultTest, LaterTriggerIndexRecoversByRetryAlone) {
  // An @3 fault fires once in one worker's lifetime; the supervisor
  // recovers it with a plain retry/reassign, no degradation needed.
  Context Ctx = seededContext(99);
  ASSERT_TRUE(Failpoint::configure("shard-post-compute=crash@3").isOk());
  expectShardedMatchesSerial(Ctx, faultyOpts(4), "post-compute crash@3");
}

TEST_F(ShardedFaultTest, WedgedWorkerIsTimedOutAndRecovered) {
  Context Ctx = seededContext(99);
  ASSERT_TRUE(Failpoint::configure("shard-post-compute=hang").isOk());
  expectShardedMatchesSerial(
      Ctx, faultyOpts(2, std::chrono::milliseconds(100)),
      "post-compute hang");
}

TEST_F(ShardedFaultTest, FaultsUnderAConceptCapKeepTheCutExact) {
  // Crash-recovery and budget truncation compose: the reassembled prefix
  // under MaxConcepts is still the serial one.
  Context Ctx = contranominalContext();
  Budget B;
  B.MaxConcepts = 7;
  BudgetMeter SerialMeter(B);
  LatticeBuildResult Serial =
      NextClosureBuilder::buildLatticeBudgeted(Ctx, SerialMeter);
  ASSERT_TRUE(Serial.Truncated);
  ASSERT_TRUE(Failpoint::configure("shard-pre-reply=crash@2").isOk());
  BudgetMeter Meter(B);
  LatticeBuildResult Sharded =
      ShardedBuilder::buildLatticeBudgeted(Ctx, Meter, faultyOpts(2));
  EXPECT_TRUE(Sharded.Truncated);
  expectIdenticalLattices(Serial.Lattice, Sharded.Lattice,
                          "cap=7 with pre-reply crash");
}

/// std::bad_alloc containment at the budgeted boundary, driven by the
/// `lattice-oom` failpoint.
class OomContainmentTest : public ::testing::Test {
protected:
  void TearDown() override { Failpoint::reset(); }
};

TEST_F(OomContainmentTest, SerialBuilderKeepsThePrefixAndReportsExhaustion) {
  Context Ctx = seededContext(4242);
  ASSERT_TRUE(Failpoint::configure("lattice-oom=error@4").isOk());
  BudgetMeter Meter{Budget{}};
  LatticeBuildResult R = NextClosureBuilder::buildLatticeBudgeted(Ctx, Meter);
  EXPECT_TRUE(R.Truncated);
  EXPECT_EQ(ErrorCode::ResourceExhausted, R.BuildStatus.code());
  EXPECT_NE(std::string::npos, R.BuildStatus.message().find("memory"));
  std::string Why;
  EXPECT_TRUE(R.Lattice.verify(Ctx, &Why)) << Why;
  EXPECT_GE(R.Lattice.size(), 2u); // Top and bottom survive at minimum.
}

TEST_F(OomContainmentTest, ParallelBuilderContainsTheThrowPerBlock) {
  Context Ctx = seededContext(4242);
  ASSERT_TRUE(Failpoint::configure("lattice-oom=error@2").isOk());
  BudgetMeter Meter{Budget{}};
  LatticeBuildResult R =
      ParallelBuilder::buildLatticeBudgeted(Ctx, Meter, /*NumThreads=*/2);
  EXPECT_TRUE(R.Truncated);
  EXPECT_EQ(ErrorCode::ResourceExhausted, R.BuildStatus.code());
  std::string Why;
  EXPECT_TRUE(R.Lattice.verify(Ctx, &Why)) << Why;
}

TEST_F(OomContainmentTest, WorkerOomBecomesAnErrorReplyNotACrash) {
  // A worker whose block allocation fails reports 'E' and lives; the
  // supervisor's retry (the failpoint has burned its one shot in that
  // worker) completes the build identically.
  Context Ctx = seededContext(99);
  ConceptLattice Serial = NextClosureBuilder::buildLattice(Ctx);
  ASSERT_TRUE(Failpoint::configure("lattice-oom=error@2").isOk());
  // Default retries: with 2 workers and one burnable shot each, every
  // block completes on a worker before inline degradation could arm the
  // parent's own copy of the failpoint.
  ConceptLattice Sharded = ShardedBuilder::buildLattice(Ctx, shardOpts(2));
  expectIdenticalLattices(Serial, Sharded, "worker oom");
}

/// Cross-process telemetry: workers flush Metrics deltas and TraceLog
/// rings back to the supervisor, which merges them so a fault-free
/// sharded build reports exactly the serial enumeration ledger, crashes
/// are accounted on shard.telemetry-lost, and one trace export shows
/// every process on a shared timeline.
class ShardedTelemetryTest : public ::testing::Test {
protected:
  void SetUp() override {
    Metrics::reset();
    TraceLog::reset();
    Metrics::setEnabled(true);
  }
  void TearDown() override {
    Metrics::setEnabled(false);
    TraceLog::setEnabled(false);
    Failpoint::reset();
    Metrics::reset();
    TraceLog::reset();
  }
};

TEST_F(ShardedTelemetryTest, FaultFreeClosureCountsMatchSerial) {
  Context Ctx = seededContext(99);
  ConceptLattice Serial = NextClosureBuilder::buildLattice(Ctx);
  uint64_t SerialClosures = Metrics::counterValue("lattice.closures");
  uint64_t SerialConcepts = Metrics::counterValue("lattice.concepts");
  ASSERT_GT(SerialClosures, 0u);
  for (unsigned W : {1u, 2u, 4u, 8u}) {
    Metrics::reset();
    ConceptLattice Sharded = ShardedBuilder::buildLattice(Ctx, shardOpts(W));
    expectIdenticalLattices(Serial, Sharded, "workers=" + std::to_string(W));
    // Counter conservation: the supervisor's own closure(∅) plus the
    // workers' flushed per-block deltas must equal the serial ledger —
    // same closures performed, merely in other processes.
    EXPECT_EQ(Metrics::counterValue("lattice.closures"), SerialClosures)
        << "workers=" << W;
    EXPECT_EQ(Metrics::counterValue("lattice.concepts"), SerialConcepts)
        << "workers=" << W;
    EXPECT_EQ(Metrics::counterValue("shard.telemetry-lost"), 0u)
        << "workers=" << W;
    // Every dispatched block's flush plus one shutdown flush per worker.
    EXPECT_GE(Metrics::counterValue("shard.telemetry-merged"),
              Metrics::counterValue("shard.blocks-dispatched"))
        << "workers=" << W;
  }
}

TEST_F(ShardedTelemetryTest, KernelCountsAreWorkerCountInvariant) {
  Context Ctx = seededContext(101);
  // The in-process parallel builder shares the sharded path's assembly,
  // so its armed kernel tally is the reference the merged cross-process
  // tally must hit exactly, at every worker count.
  BudgetMeter RefMeter{Budget{}};
  ParallelBuilder::buildLatticeBudgeted(Ctx, RefMeter, /*NumThreads=*/2);
  uint64_t RefFusedAnd = Metrics::counterValue("kernels.fused-and-calls");
  uint64_t RefSigma = Metrics::counterValue("context.sigma-calls");
  for (unsigned W : {1u, 2u, 4u, 8u}) {
    Metrics::reset();
    ShardedBuilder::buildLattice(Ctx, shardOpts(W));
    EXPECT_EQ(Metrics::counterValue("kernels.fused-and-calls"), RefFusedAnd)
        << "workers=" << W;
    EXPECT_EQ(Metrics::counterValue("context.sigma-calls"), RefSigma)
        << "workers=" << W;
  }
}

TEST_F(ShardedTelemetryTest, CrashedWorkersAreAccountedAsLostFlushes) {
  Context Ctx = seededContext(99);
  ASSERT_TRUE(Failpoint::configure("shard-pre-reply=crash").isOk());
  ConceptLattice Serial = NextClosureBuilder::buildLattice(Ctx);
  Metrics::reset();
  ConceptLattice Sharded = ShardedBuilder::buildLattice(Ctx, faultyOpts(2));
  expectIdenticalLattices(Serial, Sharded, "crash accounting");
  // Every crash-killed attempt forfeits its flush; the ledger must say
  // so, and merged + lost must cover every dispatched attempt.
  uint64_t Lost = Metrics::counterValue("shard.telemetry-lost");
  uint64_t Merged = Metrics::counterValue("shard.telemetry-merged");
  uint64_t Dispatched = Metrics::counterValue("shard.blocks-dispatched");
  EXPECT_GE(Lost, 1u);
  EXPECT_GE(Merged + Lost, Dispatched);
}

TEST_F(ShardedTelemetryTest, SharedTraceShowsWorkerTracksAndFlowArrows) {
  TraceLog::setEnabled(true);
  Context Ctx = seededContext(99);
  ShardedBuilder::buildLattice(Ctx, shardOpts(2));
  std::string Json = TraceLog::exportJson("shard-test");
  // Supervisor-side spans plus at least one ingested worker track with
  // the full dispatch -> compute -> merge flow chain.
  EXPECT_NE(Json.find("\"shard-supervise\""), std::string::npos) << Json;
  EXPECT_NE(Json.find("\"shard-dispatch\""), std::string::npos);
  EXPECT_NE(Json.find("\"shard-block\""), std::string::npos);
  EXPECT_NE(Json.find("\"shard-merge\""), std::string::npos);
  EXPECT_NE(Json.find("\"shard-worker-"), std::string::npos);
  EXPECT_NE(Json.find("\"process_name\""), std::string::npos);
  EXPECT_NE(Json.find("\"ph\": \"s\""), std::string::npos);
  EXPECT_NE(Json.find("\"ph\": \"t\""), std::string::npos);
  EXPECT_NE(Json.find("\"ph\": \"f\""), std::string::npos);
  EXPECT_NE(Json.find("\"bp\": \"e\""), std::string::npos);
}

TEST_F(ShardedTelemetryTest, PerWorkerBlockAttributionCoversAllBlocks) {
  Context Ctx = seededContext(99);
  ShardedBuilder::buildLattice(Ctx, shardOpts(4));
  uint64_t Dispatched = Metrics::counterValue("shard.blocks-dispatched");
  ASSERT_GT(Dispatched, 0u);
  uint64_t Attributed = 0;
  for (int I = 0; I < 8; ++I)
    Attributed += Metrics::counterValue("shard.worker-blocks." +
                                        std::to_string(I));
  // Fault-free every dispatched block lands on exactly one worker.
  EXPECT_EQ(Attributed, Dispatched);
  EXPECT_GE(Metrics::gauge("shard.workers").high(), 1);
}

TEST_F(ShardedTelemetryTest, DisarmedBuildsSkipTelemetryEntirely) {
  Metrics::setEnabled(false);
  Context Ctx = seededContext(99);
  ConceptLattice Serial = NextClosureBuilder::buildLattice(Ctx);
  ConceptLattice Sharded = ShardedBuilder::buildLattice(Ctx, shardOpts(2));
  expectIdenticalLattices(Serial, Sharded, "disarmed telemetry");
  Metrics::setEnabled(true);
  EXPECT_EQ(Metrics::counterValue("shard.telemetry-merged"), 0u);
  EXPECT_EQ(Metrics::counterValue("shard.telemetry-lost"), 0u);
}
