//===- tests/concepts/LatticeTest.cpp --------------------------------------===//
//
// Part of the Cable reproduction of "Debugging Temporal Specifications with
// Concept Analysis" (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//

#include "concepts/Lattice.h"

#include "concepts/GodinBuilder.h"
#include "concepts/NextClosureBuilder.h"
#include "support/RNG.h"

#include <gtest/gtest.h>

#include <algorithm>

using namespace cable;

namespace {

/// The animals-and-adjectives example in the spirit of Fig. 9 (the paper
/// borrows it from Siff's thesis; the exact table lives in a figure, so
/// this is a representative instance).
/// Objects: cat, gerbil, dog, dolphin.
/// Attrs:   0 four-legged, 1 hair-covered, 2 small, 3 smart, 4 marine.
Context animalsContext() {
  Context Ctx(4, 5);
  // cat: four-legged, hair-covered, small.
  Ctx.relate(0, 0);
  Ctx.relate(0, 1);
  Ctx.relate(0, 2);
  // gerbil: four-legged, hair-covered, small.
  Ctx.relate(1, 0);
  Ctx.relate(1, 1);
  Ctx.relate(1, 2);
  // dog: four-legged, hair-covered, smart.
  Ctx.relate(2, 0);
  Ctx.relate(2, 1);
  Ctx.relate(2, 3);
  // dolphin: smart, marine.
  Ctx.relate(3, 3);
  Ctx.relate(3, 4);
  return Ctx;
}

} // namespace

TEST(LatticeTest, AnimalsLatticeStructure) {
  Context Ctx = animalsContext();
  ConceptLattice L = GodinBuilder::buildLattice(Ctx);

  std::string Why;
  EXPECT_TRUE(L.verify(Ctx, &Why)) << Why;

  // Expected concepts: top {all}x{}, {cat,gerbil,dog}x{4l,hair},
  // {cat,gerbil}x{4l,hair,small}, {dog,dolphin}x{smart},
  // {dog}x{4l,hair,smart}, {dolphin}x{smart,marine}, bottom {}x{all}.
  EXPECT_EQ(L.size(), 7u);

  const Concept &Top = L.node(L.top());
  EXPECT_EQ(Top.Extent.count(), 4u);
  EXPECT_EQ(Top.Intent.count(), 0u);
  const Concept &Bottom = L.node(L.bottom());
  EXPECT_EQ(Bottom.Extent.count(), 0u);
  EXPECT_EQ(Bottom.Intent.count(), 5u);

  // The {cat,gerbil} concept exists and sits below {cat,gerbil,dog}.
  BitVector CatGerbil(4);
  CatGerbil.set(0);
  CatGerbil.set(1);
  std::optional<ConceptLattice::NodeId> CG = L.findByExtent(CatGerbil);
  ASSERT_TRUE(CG.has_value());
  EXPECT_EQ(L.node(*CG).Intent.count(), 3u);
  ASSERT_EQ(L.parents(*CG).size(), 1u);
  EXPECT_EQ(L.node(L.parents(*CG)[0]).Extent.count(), 3u);
}

TEST(LatticeTest, SimilarityIncreasesDownward) {
  Context Ctx = animalsContext();
  ConceptLattice L = GodinBuilder::buildLattice(Ctx);
  for (ConceptLattice::NodeId Id = 0; Id < L.size(); ++Id)
    for (ConceptLattice::NodeId C : L.children(Id)) {
      EXPECT_GE(L.node(C).Intent.count(), L.node(Id).Intent.count())
          << "children are at least as similar (paper §3.1)";
      EXPECT_TRUE(L.node(C).Extent.isSubsetOf(L.node(Id).Extent));
    }
}

TEST(LatticeTest, MeetAndJoin) {
  Context Ctx = animalsContext();
  ConceptLattice L = GodinBuilder::buildLattice(Ctx);
  // meet({cat,gerbil,dog}, {dog,dolphin}) = {dog}.
  BitVector Mammals(4);
  Mammals.set(0);
  Mammals.set(1);
  Mammals.set(2);
  BitVector Smart(4);
  Smart.set(2);
  Smart.set(3);
  auto A = L.findByExtent(Mammals);
  auto B = L.findByExtent(Smart);
  ASSERT_TRUE(A && B);
  ConceptLattice::NodeId M = L.meet(*A, *B);
  EXPECT_EQ(L.node(M).Extent.toIndices(), (std::vector<size_t>{2}));
  // join of {dog} and {dolphin} = {dog,dolphin}.
  BitVector Dog(4), Dolphin(4);
  Dog.set(2);
  Dolphin.set(3);
  auto D1 = L.findByExtent(Dog);
  auto D2 = L.findByExtent(Dolphin);
  ASSERT_TRUE(D1 && D2);
  ConceptLattice::NodeId J = L.join(*D1, *D2);
  EXPECT_EQ(L.node(J).Extent.toIndices(), (std::vector<size_t>{2, 3}));
}

TEST(LatticeTest, LessEqualIsExtentInclusion) {
  Context Ctx = animalsContext();
  ConceptLattice L = GodinBuilder::buildLattice(Ctx);
  EXPECT_TRUE(L.lessEqual(L.bottom(), L.top()));
  EXPECT_FALSE(L.lessEqual(L.top(), L.bottom()));
  for (ConceptLattice::NodeId Id = 0; Id < L.size(); ++Id) {
    EXPECT_TRUE(L.lessEqual(Id, Id));
    EXPECT_TRUE(L.lessEqual(Id, L.top()));
    EXPECT_TRUE(L.lessEqual(L.bottom(), Id));
  }
}

TEST(LatticeTest, TopDownOrderRespectsCovers) {
  Context Ctx = animalsContext();
  ConceptLattice L = GodinBuilder::buildLattice(Ctx);
  std::vector<ConceptLattice::NodeId> Order = L.topDownOrder();
  ASSERT_EQ(Order.size(), L.size());
  std::vector<size_t> Pos(L.size());
  for (size_t I = 0; I < Order.size(); ++I)
    Pos[Order[I]] = I;
  EXPECT_EQ(Order.front(), L.top());
  for (ConceptLattice::NodeId Id = 0; Id < L.size(); ++Id)
    for (ConceptLattice::NodeId C : L.children(Id))
      EXPECT_LT(Pos[Id], Pos[C]);
}

TEST(LatticeTest, HeightOfAnimalsLattice) {
  Context Ctx = animalsContext();
  ConceptLattice L = GodinBuilder::buildLattice(Ctx);
  // top -> {4l,hair} -> {cat,gerbil} -> bottom is a longest chain.
  EXPECT_EQ(L.height(), 3u);
}

/// Lattice algebra laws on random contexts.
class LatticeAlgebraTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(LatticeAlgebraTest, MeetJoinLaws) {
  RNG Rand(GetParam() * 211 + 17);
  size_t O = 2 + Rand.nextIndex(7);
  size_t A = 2 + Rand.nextIndex(7);
  Context Ctx(O, A);
  for (size_t I = 0; I < O; ++I)
    for (size_t J = 0; J < A; ++J)
      if (Rand.nextBool(0.4))
        Ctx.relate(I, J);
  ConceptLattice L = GodinBuilder::buildLattice(Ctx);

  for (int Trial = 0; Trial < 30; ++Trial) {
    auto X = static_cast<ConceptLattice::NodeId>(Rand.nextIndex(L.size()));
    auto Y = static_cast<ConceptLattice::NodeId>(Rand.nextIndex(L.size()));
    auto Z = static_cast<ConceptLattice::NodeId>(Rand.nextIndex(L.size()));

    // Commutativity.
    EXPECT_EQ(L.meet(X, Y), L.meet(Y, X));
    EXPECT_EQ(L.join(X, Y), L.join(Y, X));
    // Idempotence.
    EXPECT_EQ(L.meet(X, X), X);
    EXPECT_EQ(L.join(X, X), X);
    // Associativity.
    EXPECT_EQ(L.meet(L.meet(X, Y), Z), L.meet(X, L.meet(Y, Z)));
    EXPECT_EQ(L.join(L.join(X, Y), Z), L.join(X, L.join(Y, Z)));
    // Absorption.
    EXPECT_EQ(L.meet(X, L.join(X, Y)), X);
    EXPECT_EQ(L.join(X, L.meet(X, Y)), X);
    // Bounds and order coherence.
    EXPECT_TRUE(L.lessEqual(L.meet(X, Y), X));
    EXPECT_TRUE(L.lessEqual(X, L.join(X, Y)));
    EXPECT_EQ(L.meet(X, L.bottom()), L.bottom());
    EXPECT_EQ(L.join(X, L.top()), L.top());
    // x <= y iff meet(x,y) == x iff join(x,y) == y.
    bool LE = L.lessEqual(X, Y);
    EXPECT_EQ(LE, L.meet(X, Y) == X);
    EXPECT_EQ(LE, L.join(X, Y) == Y);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LatticeAlgebraTest,
                         ::testing::Range<uint64_t>(0, 15));

TEST(LatticeTest, SingleConceptLattice) {
  // One object with zero attributes: the lattice degenerates.
  Context Ctx(1, 0);
  ConceptLattice L = GodinBuilder::buildLattice(Ctx);
  EXPECT_EQ(L.size(), 1u);
  EXPECT_EQ(L.top(), L.bottom());
  EXPECT_EQ(L.height(), 0u);
  std::string Why;
  EXPECT_TRUE(L.verify(Ctx, &Why)) << Why;
}

TEST(LatticeTest, RenderDotHasAllNodes) {
  Context Ctx = animalsContext();
  ConceptLattice L = GodinBuilder::buildLattice(Ctx);
  std::string Dot = L.renderDot("animals", [](ConceptLattice::NodeId Id) {
    return "node" + std::to_string(Id);
  });
  for (ConceptLattice::NodeId Id = 0; Id < L.size(); ++Id)
    EXPECT_NE(Dot.find("node" + std::to_string(Id)), std::string::npos);
}

TEST(LatticeTest, DisjointObjectsProduceDiamond) {
  // Two objects with disjoint attributes: top, two atoms, bottom.
  Context Ctx(2, 2);
  Ctx.relate(0, 0);
  Ctx.relate(1, 1);
  ConceptLattice L = GodinBuilder::buildLattice(Ctx);
  EXPECT_EQ(L.size(), 4u);
  EXPECT_EQ(L.children(L.top()).size(), 2u);
  EXPECT_EQ(L.parents(L.bottom()).size(), 2u);
  std::string Why;
  EXPECT_TRUE(L.verify(Ctx, &Why)) << Why;
}
