//===- tests/concepts/BudgetTest.cpp ---------------------------------------===//
//
// Part of the Cable reproduction of "Debugging Temporal Specifications with
// Concept Analysis" (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//
//
// Budget-exhaustion suite for all four lattice builders. The adversarial
// input is the contranominal context of dimension N (object i related to
// every attribute but i), whose lattice is the full powerset: 2^N
// concepts. At N=24 that is ~16.7M concepts — unbuildable within a 100 ms
// deadline — so every builder must stop cooperatively, flag the result
// Truncated, and still hand back a well-formed sub-lattice (top, bottom,
// consistent covers) within a small multiple of the deadline.
//
// MaxConcepts truncation is exact and deterministic: serial NextClosure
// and the parallel builder at any thread count return bit-identical
// truncated lattices, and a cap equal to the true concept count does not
// truncate at all.
//
//===----------------------------------------------------------------------===//

#include "concepts/BuildResult.h"
#include "concepts/GodinBuilder.h"
#include "concepts/LindigBuilder.h"
#include "concepts/NextClosureBuilder.h"
#include "concepts/ParallelBuilder.h"

#include "support/RNG.h"

#include <gtest/gtest.h>

#include <chrono>
#include <functional>
#include <thread>

using namespace cable;

// Sanitizers slow wall-clock-sensitive code by an order of magnitude;
// relax the overshoot bound accordingly.
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define CABLE_TEST_SANITIZED 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
#define CABLE_TEST_SANITIZED 1
#endif
#endif

namespace {

constexpr int DeadlineMs = 100;
#ifdef CABLE_TEST_SANITIZED
constexpr int OvershootFactor = 20;
#else
constexpr int OvershootFactor = 2;
#endif

/// Object i related to every attribute except i: the concept lattice is
/// the boolean lattice with 2^N concepts.
Context contranominal(size_t N) {
  Context Ctx(N, N);
  for (size_t I = 0; I < N; ++I)
    for (size_t J = 0; J < N; ++J)
      if (I != J)
        Ctx.relate(I, J);
  return Ctx;
}

Context randomContext(RNG &Rand, size_t MaxObjects, size_t MaxAttrs,
                      double Density) {
  size_t O = Rand.nextIndex(MaxObjects + 1);
  size_t A = Rand.nextIndex(MaxAttrs + 1);
  Context Ctx(O, A);
  for (size_t I = 0; I < O; ++I)
    for (size_t J = 0; J < A; ++J)
      if (Rand.nextBool(Density))
        Ctx.relate(I, J);
  return Ctx;
}

/// Structural sanity of any (possibly truncated) lattice over \p Ctx.
void expectWellFormed(const ConceptLattice &L, const Context &Ctx) {
  ASSERT_GE(L.size(), 1u);
  // Top holds every object; bottom holds the objects common to every
  // attribute.
  const Concept &Top = L.node(L.top());
  EXPECT_EQ(Top.Extent.count(), Ctx.numObjects());
  BitVector AllAttrs(Ctx.numAttributes());
  AllAttrs.setAll();
  const Concept &Bottom = L.node(L.bottom());
  EXPECT_EQ(Bottom.Extent.toIndices(), Ctx.tau(AllAttrs).toIndices());
  // Every intent is exact (Godin's truncated snapshots are sub-context
  // concepts, so extents need not be tau-closed over the full context),
  // and every cover edge is a strict superset relation on extents.
  for (ConceptLattice::NodeId Id = 0; Id < L.size(); ++Id) {
    const Concept &C = L.node(Id);
    EXPECT_EQ(Ctx.sigma(C.Extent).toIndices(), C.Intent.toIndices());
    for (ConceptLattice::NodeId Child : L.children(Id)) {
      EXPECT_TRUE(L.node(Child).Extent.isSubsetOf(C.Extent));
      EXPECT_LT(L.node(Child).Extent.count(), C.Extent.count());
    }
  }
}

/// Node-for-node equality: same size, same extents/intents in the same
/// order, same cover lists.
void expectIdentical(const ConceptLattice &A, const ConceptLattice &B) {
  ASSERT_EQ(A.size(), B.size());
  for (ConceptLattice::NodeId Id = 0; Id < A.size(); ++Id) {
    EXPECT_EQ(A.node(Id).Extent.toIndices(), B.node(Id).Extent.toIndices());
    EXPECT_EQ(A.node(Id).Intent.toIndices(), B.node(Id).Intent.toIndices());
    EXPECT_EQ(A.children(Id), B.children(Id));
  }
  EXPECT_EQ(A.top(), B.top());
  EXPECT_EQ(A.bottom(), B.bottom());
}

struct NamedBuilder {
  const char *Name;
  std::function<LatticeBuildResult(const Context &, const BudgetMeter &)> Run;
};

std::vector<NamedBuilder> allBudgetedBuilders() {
  return {
      {"NextClosure",
       [](const Context &Ctx, const BudgetMeter &M) {
         return NextClosureBuilder::buildLatticeBudgeted(Ctx, M);
       }},
      {"Godin",
       [](const Context &Ctx, const BudgetMeter &M) {
         return GodinBuilder::buildLatticeBudgeted(Ctx, M);
       }},
      {"Lindig",
       [](const Context &Ctx, const BudgetMeter &M) {
         return LindigBuilder::buildLatticeBudgeted(Ctx, M);
       }},
      {"Parallel/1",
       [](const Context &Ctx, const BudgetMeter &M) {
         return ParallelBuilder::buildLatticeBudgeted(Ctx, M, 1u);
       }},
      {"Parallel/4",
       [](const Context &Ctx, const BudgetMeter &M) {
         return ParallelBuilder::buildLatticeBudgeted(Ctx, M, 4u);
       }},
  };
}

} // namespace

TEST(BudgetBuilderTest, DeadlineTruncatesEveryBuilderInTime) {
  Context Ctx = contranominal(24);
  for (const NamedBuilder &B : allBudgetedBuilders()) {
    SCOPED_TRACE(B.Name);
    Budget Limits;
    Limits.TimeLimit = std::chrono::milliseconds(DeadlineMs);
    BudgetMeter Meter(Limits);
    auto T0 = std::chrono::steady_clock::now();
    LatticeBuildResult R = B.Run(Ctx, Meter);
    auto ElapsedMs = std::chrono::duration_cast<std::chrono::milliseconds>(
                         std::chrono::steady_clock::now() - T0)
                         .count();
    EXPECT_TRUE(R.Truncated);
    EXPECT_FALSE(R.BuildStatus.isOk());
    EXPECT_EQ(R.BuildStatus.code(), ErrorCode::ResourceExhausted);
    EXPECT_LE(ElapsedMs, DeadlineMs * OvershootFactor)
        << B.Name << " overshot the deadline";
    expectWellFormed(R.Lattice, Ctx);
    // 2^24 concepts can't fit; the result must be a strict subset.
    EXPECT_LT(R.Lattice.size(), size_t(1) << 24);
  }
}

TEST(BudgetBuilderTest, ConceptCapTruncatesEveryBuilder) {
  Context Ctx = contranominal(16); // 65536 concepts in full.
  for (const NamedBuilder &B : allBudgetedBuilders()) {
    SCOPED_TRACE(B.Name);
    Budget Limits;
    Limits.MaxConcepts = 500;
    BudgetMeter Meter(Limits);
    LatticeBuildResult R = B.Run(Ctx, Meter);
    EXPECT_TRUE(R.Truncated);
    EXPECT_EQ(R.BuildStatus.code(), ErrorCode::ResourceExhausted);
    expectWellFormed(R.Lattice, Ctx);
    // Cap + the always-ensured top and bottom.
    EXPECT_LE(R.Lattice.size(), 502u);
  }
}

TEST(BudgetBuilderTest, ConceptCapIsDeterministicAcrossThreadCounts) {
  Context Ctx = contranominal(16);
  Budget Limits;
  Limits.MaxConcepts = 1000;
  BudgetMeter MSerial(Limits), M1(Limits), M4(Limits);
  LatticeBuildResult Serial =
      NextClosureBuilder::buildLatticeBudgeted(Ctx, MSerial);
  LatticeBuildResult P1 = ParallelBuilder::buildLatticeBudgeted(Ctx, M1, 1u);
  LatticeBuildResult P4 = ParallelBuilder::buildLatticeBudgeted(Ctx, M4, 4u);
  EXPECT_TRUE(Serial.Truncated);
  EXPECT_TRUE(P1.Truncated);
  EXPECT_TRUE(P4.Truncated);
  EXPECT_EQ(Serial.NumEnumerated, P4.NumEnumerated);
  expectIdentical(Serial.Lattice, P1.Lattice);
  expectIdentical(Serial.Lattice, P4.Lattice);
}

TEST(BudgetBuilderTest, ConceptCapDeterminismOnRandomContexts) {
  RNG Rand(0xB1D6E7);
  for (int Trial = 0; Trial < 40; ++Trial) {
    Context Ctx = randomContext(Rand, 10, 10, 0.4);
    size_t TrueSize = NextClosureBuilder::buildLattice(Ctx).size();
    // Caps below, at, and above the true size.
    for (size_t Cap : {size_t(1), TrueSize / 2 + 1, TrueSize, TrueSize + 5}) {
      SCOPED_TRACE("trial " + std::to_string(Trial) + " cap " +
                   std::to_string(Cap));
      Budget Limits;
      Limits.MaxConcepts = Cap;
      BudgetMeter MSerial(Limits), M4(Limits);
      LatticeBuildResult Serial =
          NextClosureBuilder::buildLatticeBudgeted(Ctx, MSerial);
      LatticeBuildResult P4 =
          ParallelBuilder::buildLatticeBudgeted(Ctx, M4, 4u);
      EXPECT_EQ(Serial.Truncated, P4.Truncated);
      expectIdentical(Serial.Lattice, P4.Lattice);
      // The flag is exact: a cap covering the whole lattice never trips.
      if (Cap >= TrueSize) {
        EXPECT_FALSE(Serial.Truncated);
        EXPECT_EQ(Serial.Lattice.size(), TrueSize);
        EXPECT_TRUE(Serial.BuildStatus.isOk());
      } else {
        EXPECT_TRUE(Serial.Truncated);
      }
    }
  }
}

TEST(BudgetBuilderTest, UnlimitedBudgetMatchesUnbudgetedBuild) {
  RNG Rand(0xFEED);
  for (int Trial = 0; Trial < 20; ++Trial) {
    Context Ctx = randomContext(Rand, 9, 9, 0.5);
    ConceptLattice Full = ParallelBuilder::buildLattice(Ctx, 4u);
    Budget Unlimited;
    BudgetMeter Meter(Unlimited);
    LatticeBuildResult R =
        ParallelBuilder::buildLatticeBudgeted(Ctx, Meter, 4u);
    EXPECT_FALSE(R.Truncated);
    EXPECT_TRUE(R.BuildStatus.isOk());
    expectIdentical(Full, R.Lattice);
  }
}

TEST(BudgetBuilderTest, ExternalCancelStopsTheBuild) {
  Context Ctx = contranominal(24);
  Budget Unlimited; // Only cancel() can stop this one.
  BudgetMeter Meter(Unlimited);
  std::thread Canceller([&Meter] {
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    Meter.cancel();
  });
  LatticeBuildResult R = ParallelBuilder::buildLatticeBudgeted(Ctx, Meter, 4u);
  Canceller.join();
  EXPECT_TRUE(R.Truncated);
  EXPECT_EQ(R.BuildStatus.code(), ErrorCode::Cancelled);
  expectWellFormed(R.Lattice, Ctx);
}

TEST(BudgetBuilderTest, ContextCellCapShortCircuits) {
  Context Ctx = contranominal(24); // 576 cells.
  for (const NamedBuilder &B : allBudgetedBuilders()) {
    SCOPED_TRACE(B.Name);
    Budget Limits;
    Limits.MaxContextCells = 100;
    BudgetMeter Meter(Limits);
    LatticeBuildResult R = B.Run(Ctx, Meter);
    EXPECT_TRUE(R.Truncated);
    EXPECT_EQ(R.BuildStatus.code(), ErrorCode::ResourceExhausted);
    // Degenerate but usable: top and bottom only.
    expectWellFormed(R.Lattice, Ctx);
    EXPECT_LE(R.Lattice.size(), 2u);
  }
}

TEST(BudgetBuilderTest, MeetJoinDegradeGracefullyOnTruncatedLattices) {
  Context Ctx = contranominal(10); // 1024 concepts in full.
  Budget Limits;
  Limits.MaxConcepts = 40;
  BudgetMeter Meter(Limits);
  LatticeBuildResult R = ParallelBuilder::buildLatticeBudgeted(Ctx, Meter, 4u);
  ASSERT_TRUE(R.Truncated);
  const ConceptLattice &L = R.Lattice;
  for (ConceptLattice::NodeId A = 0; A < L.size(); ++A) {
    for (ConceptLattice::NodeId B = 0; B < L.size(); ++B) {
      ConceptLattice::NodeId M = L.meet(A, B);
      // Best-approximation meet: a concept below both arguments.
      EXPECT_TRUE(L.node(M).Extent.isSubsetOf(L.node(A).Extent));
      EXPECT_TRUE(L.node(M).Extent.isSubsetOf(L.node(B).Extent));
      ConceptLattice::NodeId J = L.join(A, B);
      EXPECT_TRUE(L.node(J).Intent.isSubsetOf(L.node(A).Intent));
      EXPECT_TRUE(L.node(J).Intent.isSubsetOf(L.node(B).Intent));
    }
  }
}
