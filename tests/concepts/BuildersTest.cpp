//===- tests/concepts/BuildersTest.cpp -------------------------------------===//
//
// Part of the Cable reproduction of "Debugging Temporal Specifications with
// Concept Analysis" (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//

#include "concepts/GodinBuilder.h"
#include "concepts/LindigBuilder.h"
#include "concepts/NextClosureBuilder.h"

#include "support/RNG.h"

#include <gtest/gtest.h>

#include <set>

using namespace cable;

namespace {

Context randomContext(RNG &Rand, size_t MaxObjects, size_t MaxAttrs,
                      double Density) {
  size_t O = Rand.nextIndex(MaxObjects + 1);
  size_t A = Rand.nextIndex(MaxAttrs + 1);
  Context Ctx(O, A);
  for (size_t I = 0; I < O; ++I)
    for (size_t J = 0; J < A; ++J)
      if (Rand.nextBool(Density))
        Ctx.relate(I, J);
  return Ctx;
}

/// Canonical form of a lattice's concept set for comparison.
std::set<std::pair<std::vector<size_t>, std::vector<size_t>>>
conceptSet(const ConceptLattice &L) {
  std::set<std::pair<std::vector<size_t>, std::vector<size_t>>> Out;
  for (ConceptLattice::NodeId Id = 0; Id < L.size(); ++Id)
    Out.insert({L.node(Id).Extent.toIndices(), L.node(Id).Intent.toIndices()});
  return Out;
}

/// Exhaustive concept enumeration for tiny contexts: closures of all 2^|O|
/// object subsets.
std::set<std::pair<std::vector<size_t>, std::vector<size_t>>>
bruteForceConcepts(const Context &Ctx) {
  std::set<std::pair<std::vector<size_t>, std::vector<size_t>>> Out;
  size_t O = Ctx.numObjects();
  for (size_t Mask = 0; Mask < (size_t(1) << O); ++Mask) {
    BitVector X(O);
    for (size_t I = 0; I < O; ++I)
      if (Mask & (size_t(1) << I))
        X.set(I);
    BitVector Intent = Ctx.sigma(X);
    BitVector Extent = Ctx.tau(Intent);
    Out.insert({Extent.toIndices(), Intent.toIndices()});
  }
  return Out;
}

} // namespace

TEST(GodinBuilderTest, EmptyContext) {
  GodinBuilder B(3);
  ConceptLattice L = B.build();
  EXPECT_EQ(L.size(), 1u);
  EXPECT_EQ(L.node(L.top()).Intent.count(), 3u);
}

TEST(GodinBuilderTest, SingleObject) {
  GodinBuilder B(3);
  BitVector Attrs(3);
  Attrs.set(0);
  Attrs.set(2);
  B.addObject(Attrs);
  ConceptLattice L = B.build();
  // ({o}, {0,2}) and bottom (∅, {0,1,2}).
  EXPECT_EQ(L.size(), 2u);
  EXPECT_EQ(L.node(L.top()).Extent.count(), 1u);
  EXPECT_EQ(L.node(L.top()).Intent.count(), 2u);
  EXPECT_EQ(L.node(L.bottom()).Extent.count(), 0u);
}

TEST(GodinBuilderTest, ObjectWithAllAttributesMergesBottom) {
  GodinBuilder B(2);
  BitVector All(2);
  All.setAll();
  B.addObject(All);
  ConceptLattice L = B.build();
  EXPECT_EQ(L.size(), 1u);
  EXPECT_EQ(L.node(L.top()).Extent.count(), 1u);
  EXPECT_EQ(L.node(L.top()).Intent.count(), 2u);
}

TEST(GodinBuilderTest, DuplicateObjectsShareConcepts) {
  GodinBuilder B(2);
  BitVector A(2);
  A.set(0);
  B.addObject(A);
  size_t Before = B.numConcepts();
  B.addObject(A);
  EXPECT_EQ(B.numConcepts(), Before)
      << "an identical object creates no new concepts";
  ConceptLattice L = B.build();
  BitVector Both(2);
  Both.set(0);
  Both.set(1);
  (void)Both;
  std::optional<ConceptLattice::NodeId> N = L.findByIntent(A);
  ASSERT_TRUE(N.has_value());
  EXPECT_EQ(L.node(*N).Extent.count(), 2u);
}

TEST(NextClosureBuilderTest, EnumeratesAllClosedIntentsInLecticOrder) {
  Context Ctx(2, 2);
  Ctx.relate(0, 0);
  Ctx.relate(1, 1);
  std::vector<BitVector> Intents = NextClosureBuilder::allClosedIntents(Ctx);
  // Closed intents: {}, {0}, {1}, {0,1}.
  EXPECT_EQ(Intents.size(), 4u);
  for (size_t I = 1; I < Intents.size(); ++I)
    EXPECT_FALSE(Intents[I] == Intents[I - 1]);
}

/// Canonical form of a lattice's cover edges: pairs of (parent extent,
/// child extent).
std::set<std::pair<std::vector<size_t>, std::vector<size_t>>>
coverSet(const ConceptLattice &L) {
  std::set<std::pair<std::vector<size_t>, std::vector<size_t>>> Out;
  for (ConceptLattice::NodeId Id = 0; Id < L.size(); ++Id)
    for (ConceptLattice::NodeId C : L.children(Id))
      Out.insert({L.node(Id).Extent.toIndices(), L.node(C).Extent.toIndices()});
  return Out;
}

/// The central cross-validation: Godin (incremental, the paper's
/// algorithm), NextClosure (lectic batch), Lindig (neighbor-based, with
/// native cover edges), and brute force must all agree on random
/// contexts, and every lattice must verify.
class BuilderAgreementTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BuilderAgreementTest, AllBuildersAgreeWithBruteForce) {
  RNG Rand(GetParam());
  Context Ctx = randomContext(Rand, 9, 8, 0.35);
  ConceptLattice G = GodinBuilder::buildLattice(Ctx);
  ConceptLattice N = NextClosureBuilder::buildLattice(Ctx);
  ConceptLattice Li = LindigBuilder::buildLattice(Ctx);

  EXPECT_EQ(conceptSet(G), conceptSet(N));
  EXPECT_EQ(conceptSet(G), conceptSet(Li));
  EXPECT_EQ(conceptSet(G), bruteForceConcepts(Ctx));

  std::string Why;
  EXPECT_TRUE(G.verify(Ctx, &Why)) << "Godin: " << Why;
  EXPECT_TRUE(N.verify(Ctx, &Why)) << "NextClosure: " << Why;
  EXPECT_TRUE(Li.verify(Ctx, &Why)) << "Lindig: " << Why;

  // Same cover structure: Lindig's native edges must equal the
  // transitive-reduction edges the other builders compute afterwards.
  EXPECT_EQ(coverSet(G), coverSet(Li));
  EXPECT_EQ(G.numEdges(), N.numEdges());
  EXPECT_EQ(G.height(), Li.height());
}

INSTANTIATE_TEST_SUITE_P(Seeds, BuilderAgreementTest,
                         ::testing::Range<uint64_t>(0, 40));

/// Denser and sparser regimes.
class BuilderAgreementDenseTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BuilderAgreementDenseTest, AgreesAtHighAndLowDensity) {
  RNG Rand(GetParam() * 7919 + 13);
  for (double Density : {0.1, 0.8}) {
    Context Ctx = randomContext(Rand, 7, 7, Density);
    ConceptLattice G = GodinBuilder::buildLattice(Ctx);
    ConceptLattice N = NextClosureBuilder::buildLattice(Ctx);
    EXPECT_EQ(conceptSet(G), conceptSet(N));
    EXPECT_EQ(conceptSet(G), bruteForceConcepts(Ctx));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BuilderAgreementDenseTest,
                         ::testing::Range<uint64_t>(0, 15));

TEST(GodinBuilderTest, IncrementalMatchesBatchAtEveryPrefix) {
  RNG Rand(99);
  Context Full = randomContext(Rand, 8, 6, 0.4);
  GodinBuilder B(Full.numAttributes());
  for (size_t O = 0; O < Full.numObjects(); ++O) {
    B.addObject(Full.objectRow(O));
    // Prefix context with objects 0..O.
    Context Prefix(O + 1, Full.numAttributes());
    for (size_t I = 0; I <= O; ++I)
      for (size_t A : Full.objectRow(I))
        Prefix.relate(I, A);
    ConceptLattice Inc = B.build();
    ConceptLattice Batch = NextClosureBuilder::buildLattice(Prefix);
    EXPECT_EQ(conceptSet(Inc), conceptSet(Batch)) << "after object " << O;
  }
}

TEST(GodinBuilderTest, ClarifiedContextHasIsomorphicLattice) {
  RNG Rand(77);
  Context Ctx = randomContext(Rand, 10, 8, 0.35);
  Context C = Ctx.clarified();
  ConceptLattice Full = GodinBuilder::buildLattice(Ctx);
  ConceptLattice Small = GodinBuilder::buildLattice(C);
  EXPECT_EQ(Full.size(), Small.size())
      << "clarification must preserve the lattice's shape";
  EXPECT_EQ(Full.numEdges(), Small.numEdges());
  EXPECT_EQ(Full.height(), Small.height());
}

TEST(GodinBuilderTest, LatticeSizeNeverDecreasesWithPaperBound) {
  // §3.1.1: with k an upper bound on attributes per object, the lattice
  // has at most 2^k times more concepts than objects (loose check: bounded
  // by (|O|+1) * 2^k).
  RNG Rand(123);
  size_t K = 4;
  GodinBuilder B(10);
  for (size_t O = 0; O < 30; ++O) {
    BitVector Attrs(10);
    for (size_t J = 0; J < K; ++J)
      Attrs.set(Rand.nextIndex(10));
    B.addObject(Attrs);
    EXPECT_LE(B.numConcepts(), (O + 2) * (size_t(1) << K));
  }
}
