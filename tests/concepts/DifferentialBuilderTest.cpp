//===- tests/concepts/DifferentialBuilderTest.cpp --------------------------===//
//
// Part of the Cable reproduction of "Debugging Temporal Specifications with
// Concept Analysis" (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//
//
// Property-based differential suite over all four lattice builders: Godin
// (incremental, the paper's algorithm), Lindig (neighbor-based, native
// covers), NextClosure (serial lectic batch), and ParallelBuilder
// (lectic-prefix-partitioned batch). ~200 generated contexts of varied
// density and shape, plus the degenerate corners (empty contexts, empty
// rows/columns, full relation) — every builder must produce the same
// concept set, cover relation, and top/bottom, and the parallel builder
// must be bit-for-bit identical to serial NextClosure at every thread
// count.
//
//===----------------------------------------------------------------------===//

#include "concepts/GodinBuilder.h"
#include "concepts/LindigBuilder.h"
#include "concepts/NextClosureBuilder.h"
#include "concepts/ParallelBuilder.h"

#include "support/RNG.h"

#include <gtest/gtest.h>

#include <set>

using namespace cable;

namespace {

using ExtentIntent = std::pair<std::vector<size_t>, std::vector<size_t>>;

/// Canonical form of a lattice's concept set (node ids differ across
/// builders, extent/intent pairs may not).
std::set<ExtentIntent> conceptSet(const ConceptLattice &L) {
  std::set<ExtentIntent> Out;
  for (ConceptLattice::NodeId Id = 0; Id < L.size(); ++Id)
    Out.insert({L.node(Id).Extent.toIndices(), L.node(Id).Intent.toIndices()});
  return Out;
}

/// Canonical form of the cover relation: (parent extent, child extent).
std::set<std::pair<std::vector<size_t>, std::vector<size_t>>>
coverSet(const ConceptLattice &L) {
  std::set<std::pair<std::vector<size_t>, std::vector<size_t>>> Out;
  for (ConceptLattice::NodeId Id = 0; Id < L.size(); ++Id)
    for (ConceptLattice::NodeId C : L.children(Id))
      Out.insert({L.node(Id).Extent.toIndices(), L.node(C).Extent.toIndices()});
  return Out;
}

/// Asserts the four builders agree on concepts, covers, and top/bottom.
void expectAllBuildersAgree(const Context &Ctx, const char *What) {
  ConceptLattice G = GodinBuilder::buildLattice(Ctx);
  ConceptLattice Li = LindigBuilder::buildLattice(Ctx);
  ConceptLattice N = NextClosureBuilder::buildLattice(Ctx);
  ConceptLattice P = ParallelBuilder::buildLattice(Ctx, /*NumThreads=*/4);

  EXPECT_EQ(conceptSet(G), conceptSet(N)) << What;
  EXPECT_EQ(conceptSet(G), conceptSet(Li)) << What;
  EXPECT_EQ(conceptSet(G), conceptSet(P)) << What;

  EXPECT_EQ(coverSet(G), coverSet(N)) << What;
  EXPECT_EQ(coverSet(G), coverSet(Li)) << What;
  EXPECT_EQ(coverSet(G), coverSet(P)) << What;

  // Top/bottom are characterized by their extents, not their ids.
  EXPECT_TRUE(G.node(G.top()).Extent == P.node(P.top()).Extent) << What;
  EXPECT_TRUE(G.node(G.bottom()).Extent == P.node(P.bottom()).Extent) << What;
  EXPECT_TRUE(Li.node(Li.top()).Extent == N.node(N.top()).Extent) << What;
  EXPECT_TRUE(Li.node(Li.bottom()).Extent == N.node(N.bottom()).Extent)
      << What;

  std::string Why;
  EXPECT_TRUE(P.verify(Ctx, &Why)) << What << ": " << Why;
}

/// Asserts two lattices are bit-for-bit identical: same node ids, same
/// extents/intents, same parent/child adjacency in the same order.
void expectIdenticalLattices(const ConceptLattice &A, const ConceptLattice &B,
                             const char *What) {
  ASSERT_EQ(A.size(), B.size()) << What;
  EXPECT_EQ(A.top(), B.top()) << What;
  EXPECT_EQ(A.bottom(), B.bottom()) << What;
  EXPECT_EQ(A.numEdges(), B.numEdges()) << What;
  for (ConceptLattice::NodeId Id = 0; Id < A.size(); ++Id) {
    EXPECT_TRUE(A.node(Id).Extent == B.node(Id).Extent) << What << " c" << Id;
    EXPECT_TRUE(A.node(Id).Intent == B.node(Id).Intent) << What << " c" << Id;
    EXPECT_EQ(A.parents(Id), B.parents(Id)) << What << " c" << Id;
    EXPECT_EQ(A.children(Id), B.children(Id)) << What << " c" << Id;
  }
}

/// A random context whose shape and density are derived from the seed, so
/// the 200-case sweep covers tall, wide, sparse, and dense regimes.
Context seededContext(uint64_t Seed) {
  RNG Rand(Seed * 6364136223846793005ULL + 1442695040888963407ULL);
  size_t O = Rand.nextIndex(13); // 0..12 objects
  size_t A = Rand.nextIndex(11); // 0..10 attributes
  double Density = 0.05 + 0.9 * Rand.nextDouble();
  Context Ctx(O, A);
  for (size_t I = 0; I < O; ++I)
    for (size_t J = 0; J < A; ++J)
      if (Rand.nextBool(Density))
        Ctx.relate(I, J);
  return Ctx;
}

} // namespace

/// The 200-context differential sweep.
class DifferentialBuilderTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DifferentialBuilderTest, AllFourBuildersAgree) {
  Context Ctx = seededContext(GetParam());
  expectAllBuildersAgree(Ctx, "seeded context");
}

INSTANTIATE_TEST_SUITE_P(Seeds, DifferentialBuilderTest,
                         ::testing::Range<uint64_t>(0, 200));

TEST(DifferentialBuilderDegenerateTest, EmptyContext) {
  expectAllBuildersAgree(Context(0, 0), "0x0 context");
}

TEST(DifferentialBuilderDegenerateTest, ObjectsWithoutAttributes) {
  expectAllBuildersAgree(Context(5, 0), "5x0 context");
}

TEST(DifferentialBuilderDegenerateTest, AttributesWithoutObjects) {
  expectAllBuildersAgree(Context(0, 6), "0x6 context");
}

TEST(DifferentialBuilderDegenerateTest, EmptyRelation) {
  expectAllBuildersAgree(Context(4, 5), "4x5 empty relation");
}

TEST(DifferentialBuilderDegenerateTest, FullRelation) {
  Context Ctx(4, 5);
  for (size_t O = 0; O < 4; ++O)
    for (size_t A = 0; A < 5; ++A)
      Ctx.relate(O, A);
  expectAllBuildersAgree(Ctx, "full relation");
}

TEST(DifferentialBuilderDegenerateTest, EmptyRowAmongFullOnes) {
  // Object 1 executes nothing (an FA-rejected trace's attribute row).
  Context Ctx(3, 4);
  for (size_t A = 0; A < 4; ++A) {
    Ctx.relate(0, A);
    Ctx.relate(2, A);
  }
  expectAllBuildersAgree(Ctx, "empty row");
}

TEST(DifferentialBuilderDegenerateTest, EmptyColumnAmongFullOnes) {
  // Attribute 2 is never executed (a dead reference-FA transition).
  Context Ctx(4, 4);
  for (size_t O = 0; O < 4; ++O)
    for (size_t A = 0; A < 4; ++A)
      if (A != 2)
        Ctx.relate(O, A);
  expectAllBuildersAgree(Ctx, "empty column");
}

TEST(DifferentialBuilderDegenerateTest, SingleCell) {
  Context Ctx(1, 1);
  Ctx.relate(0, 0);
  expectAllBuildersAgree(Ctx, "1x1 full");
}

TEST(DifferentialBuilderDegenerateTest, IdenticalRowsAndColumns) {
  // Clarifiable context: duplicate rows and duplicate columns.
  Context Ctx(6, 6);
  for (size_t O = 0; O < 6; ++O)
    for (size_t A = 0; A < 6; ++A)
      if ((O / 2 + A / 2) % 2 == 0)
        Ctx.relate(O, A);
  expectAllBuildersAgree(Ctx, "duplicate rows/columns");
}

/// The determinism contract: the parallel path is bit-for-bit the serial
/// NextClosure lattice at every thread count, including thread counts far
/// above the attribute count.
class ParallelDeterminismTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ParallelDeterminismTest, BitForBitIdenticalAcrossThreadCounts) {
  Context Ctx = seededContext(GetParam() * 31 + 17);
  ConceptLattice Serial = NextClosureBuilder::buildLattice(Ctx);
  for (unsigned T : {1u, 2u, 3u, 4u, 8u, 16u}) {
    ConceptLattice P = ParallelBuilder::buildLattice(Ctx, T);
    expectIdenticalLattices(Serial, P,
                            ("threads=" + std::to_string(T)).c_str());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParallelDeterminismTest,
                         ::testing::Range<uint64_t>(0, 25));

TEST(ParallelEnumerationTest, ClosedIntentsMatchSerialLecticOrder) {
  for (uint64_t Seed = 0; Seed < 50; ++Seed) {
    Context Ctx = seededContext(Seed * 101 + 7);
    std::vector<BitVector> Serial = NextClosureBuilder::allClosedIntents(Ctx);
    for (unsigned T : {2u, 5u}) {
      ThreadPool Pool(T);
      std::vector<BitVector> Par = ParallelBuilder::allClosedIntents(Ctx, Pool);
      ASSERT_EQ(Serial.size(), Par.size()) << "seed " << Seed;
      for (size_t I = 0; I < Serial.size(); ++I)
        EXPECT_TRUE(Serial[I] == Par[I])
            << "seed " << Seed << " position " << I;
    }
  }
}

TEST(ParallelEnumerationTest, BlocksPartitionTheClosedIntents) {
  // Every closed intent except closure(∅) lands in exactly the block of
  // its minimum attribute; blocks for attributes inside closure(∅)'s
  // closure or with pulled-down closures are empty.
  Context Ctx = seededContext(12345);
  size_t M = Ctx.numAttributes();
  BitVector TopIntent = Ctx.closeIntent(BitVector(M));
  size_t Total = 1;
  for (size_t P = 0; P < M; ++P) {
    for (const BitVector &Intent : ParallelBuilder::blockIntents(Ctx, P,
                                                                 TopIntent)) {
      EXPECT_EQ(Intent.findFirst(), P);
      EXPECT_FALSE(Intent == TopIntent);
      ++Total;
    }
  }
  EXPECT_EQ(Total, NextClosureBuilder::allClosedIntents(Ctx).size());
}
