//===- tests/learner/CountedAutomatonTest.cpp ------------------------------===//
//
// Part of the Cable reproduction of "Debugging Temporal Specifications with
// Concept Analysis" (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//

#include "learner/CountedAutomaton.h"

#include "../TestHelpers.h"

#include <gtest/gtest.h>

using namespace cable;
using cable::test::makeTrace;
using cable::test::parseTraces;

TEST(CountedAutomatonTest, PTAAcceptsExactlyTrainingSet) {
  TraceSet TS = parseTraces("a b c\n"
                            "a b d\n"
                            "e\n");
  CountedAutomaton PTA = CountedAutomaton::buildPTA(TS.traces());
  Automaton FA = PTA.toAutomaton(TS.table());
  for (const Trace &T : TS.traces())
    EXPECT_TRUE(FA.accepts(T, TS.table())) << T.render(TS.table());
  EXPECT_FALSE(FA.accepts(makeTrace(TS.table(), "a b"), TS.table()));
  EXPECT_FALSE(FA.accepts(makeTrace(TS.table(), "a b c d"), TS.table()));
  EXPECT_FALSE(FA.accepts(Trace(), TS.table()));
}

TEST(CountedAutomatonTest, PTACountsAccumulate) {
  TraceSet TS = parseTraces("a b\n"
                            "a b\n"
                            "a c\n");
  CountedAutomaton PTA = CountedAutomaton::buildPTA(TS.traces());
  // Root has one outgoing edge on 'a' with count 3.
  ASSERT_EQ(PTA.outgoing(0).size(), 1u);
  EXPECT_EQ(PTA.edge(PTA.outgoing(0)[0]).Count, 3u);
  EXPECT_EQ(PTA.totalCount(0), 3u);
  // The 'a' state splits 2/1.
  StateId AState = PTA.edge(PTA.outgoing(0)[0]).To;
  ASSERT_EQ(PTA.outgoing(AState).size(), 2u);
  uint64_t C0 = PTA.edge(PTA.outgoing(AState)[0]).Count;
  uint64_t C1 = PTA.edge(PTA.outgoing(AState)[1]).Count;
  EXPECT_EQ(C0 + C1, 3u);
}

TEST(CountedAutomatonTest, FinalCountsTrackTraceEnds) {
  TraceSet TS = parseTraces("a\n"
                            "a b\n"
                            "a\n");
  CountedAutomaton PTA = CountedAutomaton::buildPTA(TS.traces());
  StateId AState = PTA.edge(PTA.outgoing(0)[0]).To;
  EXPECT_EQ(PTA.finalCount(AState), 2u);
  EXPECT_TRUE(PTA.isFinal(AState));
  EXPECT_FALSE(PTA.isFinal(0));
  EXPECT_EQ(PTA.totalCount(AState), 3u) << "2 ends + 1 outgoing";
}

TEST(CountedAutomatonTest, EmptyTrainingSet) {
  CountedAutomaton PTA = CountedAutomaton::buildPTA({});
  EXPECT_EQ(PTA.numStates(), 1u);
  EventTable T;
  Automaton FA = PTA.toAutomaton(T);
  EXPECT_FALSE(FA.accepts(Trace(), T));
}

TEST(CountedAutomatonTest, EmptyTraceMakesRootFinal) {
  std::vector<Trace> Traces{Trace()};
  CountedAutomaton PTA = CountedAutomaton::buildPTA(Traces);
  EXPECT_TRUE(PTA.isFinal(0));
  EventTable T;
  EXPECT_TRUE(PTA.toAutomaton(T).accepts(Trace(), T));
}

TEST(CountedAutomatonTest, AddEdgeMergesParallelEdges) {
  CountedAutomaton CA;
  CA.addState();
  CA.addState();
  CA.addEdge(0, 1, 7, 2);
  CA.addEdge(0, 1, 7, 3);
  ASSERT_EQ(CA.numEdges(), 1u);
  EXPECT_EQ(CA.edge(0).Count, 5u);
  CA.addEdge(0, 1, 8);
  EXPECT_EQ(CA.numEdges(), 2u);
}
