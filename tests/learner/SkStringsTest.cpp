//===- tests/learner/SkStringsTest.cpp -------------------------------------===//
//
// Part of the Cable reproduction of "Debugging Temporal Specifications with
// Concept Analysis" (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//

#include "learner/SkStrings.h"

#include "../TestHelpers.h"
#include "support/RNG.h"

#include <gtest/gtest.h>

using namespace cable;
using cable::test::makeTrace;
using cable::test::parseTraces;

TEST(SkStringsTest, AcceptsAllTrainingTraces) {
  TraceSet TS = parseTraces("open(v0) read(v0) close(v0)\n"
                            "open(v0) write(v0) close(v0)\n"
                            "open(v0) close(v0)\n");
  Automaton FA = learnSkStringsFA(TS.traces(), TS.table());
  for (const Trace &T : TS.traces())
    EXPECT_TRUE(FA.accepts(T, TS.table())) << T.render(TS.table());
}

TEST(SkStringsTest, GeneralizesRepetition) {
  // Fig. 8's point: traces with 0..3 reads should induce an FA accepting
  // unboundedly many reads once states merge.
  TraceSet TS = parseTraces("open(v0) close(v0)\n"
                            "open(v0) read(v0) close(v0)\n"
                            "open(v0) read(v0) read(v0) close(v0)\n"
                            "open(v0) read(v0) read(v0) read(v0) close(v0)\n");
  SkStringsOptions Options;
  Options.K = 2;
  Options.S = 1.0;
  Options.Agreement = SkStringsOptions::Variant::AND;
  Automaton FA = learnSkStringsFA(TS.traces(), TS.table(), Options);
  Trace Longer = makeTrace(
      TS.table(),
      "open(v0) read(v0) read(v0) read(v0) read(v0) read(v0) close(v0)");
  EXPECT_TRUE(FA.accepts(Longer, TS.table()))
      << "merging must generalize the read loop:\n"
      << FA.renderText(TS.table());
}

TEST(SkStringsTest, MergingReducesStates) {
  TraceSet TS = parseTraces("a b\n"
                            "a a b\n"
                            "a a a b\n"
                            "a a a a b\n");
  CountedAutomaton PTA = CountedAutomaton::buildPTA(TS.traces());
  CountedAutomaton Merged = learnSkStrings(TS.traces());
  EXPECT_LT(Merged.numStates(), PTA.numStates());
}

TEST(SkStringsTest, KeepsDistinctProtocolsApartWithStrictS) {
  // fopen...fclose vs popen...pclose: with s = 1 and AND agreement, the
  // closing events differ, so the final states must not merge into
  // something accepting the cross products.
  TraceSet TS = parseTraces("fopen(v0) fclose(v0)\n"
                            "popen(v0) pclose(v0)\n");
  SkStringsOptions Options;
  Options.K = 2;
  Options.S = 1.0;
  Automaton FA = learnSkStringsFA(TS.traces(), TS.table(), Options);
  EXPECT_TRUE(FA.accepts(makeTrace(TS.table(), "fopen(v0) fclose(v0)"),
                         TS.table()));
  EXPECT_TRUE(FA.accepts(makeTrace(TS.table(), "popen(v0) pclose(v0)"),
                         TS.table()));
  EXPECT_FALSE(FA.accepts(makeTrace(TS.table(), "popen(v0) fclose(v0)"),
                          TS.table()))
      << FA.renderText(TS.table());
}

TEST(SkStringsTest, EmptyAndSingletonInputs) {
  EventTable T;
  Automaton None = learnSkStringsFA({}, T);
  EXPECT_FALSE(None.accepts(Trace(), T));
  TraceSet TS = parseTraces("a\n");
  Automaton One = learnSkStringsFA(TS.traces(), TS.table());
  EXPECT_TRUE(One.accepts(TS[0], TS.table()));
  EXPECT_FALSE(One.accepts(Trace(), TS.table()));
}

TEST(SkStringsTest, AllVariantsProduceValidLearners) {
  // Every agreement variant must stay within the PTA's size and keep
  // accepting the training set. (OR agreement is weaker than AND, so it
  // merges at least as eagerly on any single test; final sizes depend on
  // merge order, so only the sound bounds are asserted.)
  TraceSet TS = parseTraces("a b c\n"
                            "a c\n"
                            "b b c\n"
                            "b c c\n"
                            "a b b c\n");
  size_t PTAStates = CountedAutomaton::buildPTA(TS.traces()).numStates();
  for (auto V :
       {SkStringsOptions::Variant::AND, SkStringsOptions::Variant::OR,
        SkStringsOptions::Variant::LAX}) {
    SkStringsOptions Options;
    Options.K = 2;
    Options.S = 0.5;
    Options.Agreement = V;
    CountedAutomaton Learned = learnSkStrings(TS.traces(), Options);
    EXPECT_LE(Learned.numStates(), PTAStates);
    Automaton FA = Learned.toAutomaton(TS.table());
    for (const Trace &T : TS.traces())
      EXPECT_TRUE(FA.accepts(T, TS.table()));
  }
}

/// Property: whatever the options, the learner accepts every training
/// trace (the sk-strings guarantee Cable's Show FA summary relies on).
class SkStringsPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SkStringsPropertyTest, AlwaysAcceptsTrainingSet) {
  RNG Rand(GetParam());
  EventTable T;
  std::vector<std::string> Names{"a", "b", "c", "d"};
  std::vector<Trace> Traces;
  size_t N = 1 + Rand.nextIndex(12);
  for (size_t I = 0; I < N; ++I) {
    Trace Tr;
    size_t Len = Rand.nextIndex(7);
    for (size_t J = 0; J < Len; ++J)
      Tr.append(T.internEvent(Names[Rand.nextIndex(Names.size())]));
    Traces.push_back(std::move(Tr));
  }
  SkStringsOptions Options;
  Options.K = 1 + static_cast<unsigned>(Rand.nextIndex(3));
  Options.S = 0.3 + 0.7 * Rand.nextDouble();
  Options.Agreement = static_cast<SkStringsOptions::Variant>(
      Rand.nextIndex(3));
  Automaton FA = learnSkStringsFA(Traces, T, Options);
  for (const Trace &Tr : Traces)
    EXPECT_TRUE(FA.accepts(Tr, T))
        << "k=" << Options.K << " s=" << Options.S << " trace '"
        << Tr.render(T) << "'\n"
        << FA.renderText(T);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SkStringsPropertyTest,
                         ::testing::Range<uint64_t>(0, 30));
