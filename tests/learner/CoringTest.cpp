//===- tests/learner/CoringTest.cpp ----------------------------------------===//
//
// Part of the Cable reproduction of "Debugging Temporal Specifications with
// Concept Analysis" (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//

#include "learner/Coring.h"

#include "../TestHelpers.h"

#include <gtest/gtest.h>

using namespace cable;
using cable::test::makeTrace;
using cable::test::parseTraces;

TEST(CoringTest, ZeroThresholdKeepsEverything) {
  TraceSet TS = parseTraces("a b\na c\n");
  CountedAutomaton PTA = CountedAutomaton::buildPTA(TS.traces());
  Automaton FA = coreAutomaton(PTA, TS.table(), 0.0);
  for (const Trace &T : TS.traces())
    EXPECT_TRUE(FA.accepts(T, TS.table()));
}

TEST(CoringTest, DropsLowFrequencyBranch) {
  // 9 good traces, 1 erroneous one; coring at 20% drops the rare branch.
  TraceSet TS = parseTraces("open close\nopen close\nopen close\n"
                            "open close\nopen close\nopen close\n"
                            "open close\nopen close\nopen close\n"
                            "open leak\n");
  CountedAutomaton PTA = CountedAutomaton::buildPTA(TS.traces());
  Automaton FA = coreAutomaton(PTA, TS.table(), 0.2);
  EXPECT_TRUE(FA.accepts(makeTrace(TS.table(), "open close"), TS.table()));
  EXPECT_FALSE(FA.accepts(makeTrace(TS.table(), "open leak"), TS.table()));
}

TEST(CoringTest, CannotSeparateFrequentErrors) {
  // The paper's point (§6): when buggy traces are frequent, coring either
  // keeps them or also drops valid behavior — Cable exists because of
  // this. 4 good vs 4 bad: no threshold separates them.
  TraceSet TS = parseTraces("open close\nopen close\nopen close\nopen close\n"
                            "open leak\nopen leak\nopen leak\nopen leak\n");
  CountedAutomaton PTA = CountedAutomaton::buildPTA(TS.traces());
  for (double Threshold : {0.1, 0.3, 0.6, 0.9}) {
    Automaton FA = coreAutomaton(PTA, TS.table(), Threshold);
    bool KeepsGood =
        FA.accepts(makeTrace(TS.table(), "open close"), TS.table());
    bool KeepsBad = FA.accepts(makeTrace(TS.table(), "open leak"), TS.table());
    EXPECT_EQ(KeepsGood, KeepsBad)
        << "equal-frequency branches must share their fate at threshold "
        << Threshold;
  }
}

TEST(CoringTest, FullThresholdKeepsOnlyDominantPath) {
  TraceSet TS = parseTraces("a\na\na\nb\n");
  CountedAutomaton PTA = CountedAutomaton::buildPTA(TS.traces());
  Automaton FA = coreAutomaton(PTA, TS.table(), 0.5);
  EXPECT_TRUE(FA.accepts(makeTrace(TS.table(), "a"), TS.table()));
  EXPECT_FALSE(FA.accepts(makeTrace(TS.table(), "b"), TS.table()));
}
