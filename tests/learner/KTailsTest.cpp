//===- tests/learner/KTailsTest.cpp ----------------------------------------===//
//
// Part of the Cable reproduction of "Debugging Temporal Specifications with
// Concept Analysis" (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//

#include "learner/KTails.h"

#include "../TestHelpers.h"
#include "fa/Dfa.h"
#include "fa/Templates.h"
#include "support/RNG.h"

#include <gtest/gtest.h>

using namespace cable;
using cable::test::makeTrace;
using cable::test::parseTraces;

TEST(KTailsTest, AcceptsAllTrainingTraces) {
  TraceSet TS = parseTraces("open read close\n"
                            "open write close\n"
                            "open close\n");
  for (unsigned K : {0u, 1u, 2u, 5u}) {
    Automaton FA = learnKTailsFA(TS.traces(), TS.table(), K);
    for (const Trace &T : TS.traces())
      EXPECT_TRUE(FA.accepts(T, TS.table())) << "k=" << K;
  }
}

TEST(KTailsTest, LargeKIsExact) {
  // Once k exceeds the longest trace, every PTA state keeps a distinct
  // tail set unless truly equivalent, so the language equals the training
  // set's (prefix-tree) language.
  TraceSet TS = parseTraces("a b\n"
                            "a c\n"
                            "b\n");
  Automaton KT = learnKTailsFA(TS.traces(), TS.table(), 10);
  Automaton PT = makePrefixTreeFA(TS.traces(), TS.table());
  std::vector<EventId> Alpha = collectAlphabet(TS.traces());
  Dfa A = Dfa::determinize(KT, Alpha, TS.table());
  Dfa B = Dfa::determinize(PT, Alpha, TS.table());
  EXPECT_TRUE(Dfa::equivalent(A, B));
}

TEST(KTailsTest, SmallKMergesAggressively) {
  TraceSet TS = parseTraces("a b\n"
                            "a a b\n"
                            "a a a b\n");
  CountedAutomaton K0 = learnKTails(TS.traces(), 0);
  CountedAutomaton K1 = learnKTails(TS.traces(), 1);
  CountedAutomaton K9 = learnKTails(TS.traces(), 9);
  EXPECT_LE(K0.numStates(), K1.numStates());
  EXPECT_LE(K1.numStates(), K9.numStates());
  EXPECT_LT(K1.numStates(),
            CountedAutomaton::buildPTA(TS.traces()).numStates());
}

TEST(KTailsTest, K1GeneralizesTheReadLoop) {
  TraceSet TS = parseTraces("open close\n"
                            "open read close\n"
                            "open read read close\n");
  Automaton FA = learnKTailsFA(TS.traces(), TS.table(), 1);
  EXPECT_TRUE(FA.accepts(
      makeTrace(TS.table(), "open read read read read close"), TS.table()))
      << FA.renderText(TS.table());
}

TEST(KTailsTest, TailEquivalenceIsExactNotStochastic) {
  // Unlike sk-strings, k-tails ignores frequencies entirely: duplicating
  // a trace many times must not change the learned language.
  TraceSet Few = parseTraces("a b\na c\n");
  TraceSet Many = parseTraces("a b\na b\na b\na b\na b\na b\na c\n");
  Automaton A = learnKTailsFA(Few.traces(), Few.table(), 2);
  Automaton B = learnKTailsFA(Many.traces(), Many.table(), 2);
  std::vector<EventId> Alpha = collectAlphabet(Few.traces());
  EXPECT_TRUE(Dfa::equivalent(Dfa::determinize(A, Alpha, Few.table()),
                              Dfa::determinize(B, Alpha, Many.table())));
}

TEST(KTailsTest, EmptyInput) {
  EventTable T;
  Automaton FA = learnKTailsFA({}, T, 2);
  EXPECT_FALSE(FA.accepts(Trace(), T));
}

/// Property: training traces are always accepted, for random inputs and k.
class KTailsPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(KTailsPropertyTest, AlwaysAcceptsTrainingSet) {
  RNG Rand(GetParam());
  EventTable T;
  std::vector<std::string> Names{"a", "b", "c"};
  std::vector<Trace> Traces;
  size_t N = 1 + Rand.nextIndex(10);
  for (size_t I = 0; I < N; ++I) {
    Trace Tr;
    size_t Len = Rand.nextIndex(6);
    for (size_t J = 0; J < Len; ++J)
      Tr.append(T.internEvent(Names[Rand.nextIndex(Names.size())]));
    Traces.push_back(std::move(Tr));
  }
  unsigned K = static_cast<unsigned>(Rand.nextIndex(4));
  Automaton FA = learnKTailsFA(Traces, T, K);
  for (const Trace &Tr : Traces)
    EXPECT_TRUE(FA.accepts(Tr, T)) << "k=" << K << " '" << Tr.render(T) << "'";
}

INSTANTIATE_TEST_SUITE_P(Seeds, KTailsPropertyTest,
                         ::testing::Range<uint64_t>(0, 20));
