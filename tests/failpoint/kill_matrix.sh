#!/usr/bin/env bash
#===- tests/failpoint/kill_matrix.sh - Crash-recovery kill matrix ----------===#
#
# Part of the Cable reproduction of "Debugging Temporal Specifications with
# Concept Analysis" (PLDI 2003). MIT license.
#
#===------------------------------------------------------------------------===#
#
# Drives a scripted ~50-op labeling session into every registered failpoint,
# in both `crash` (std::_Exit mid-syscall, simulating power loss) and `error`
# (injected I/O failure) mode, at a spread of trigger indices. After each
# fault the session is restarted with the same --journal directory until it
# completes, then the journal's final snapshot — the full label + undo
# state — must be bit-identical to the uninterrupted golden run's. At most
# the single in-flight command may be lost, and the script resume replays
# exactly that command, so even "lost" work reappears.
#
# A second phase (KILL_MATRIX_PHASE=shard, spec-lint path as the third
# argument) drives the multi-process lattice build instead: every
# worker-lifecycle failpoint (shard-pre-fork, shard-post-compute,
# shard-pre-reply, shard-mid-frame) x {crash,error} x trigger indices x
# {1,2,4,8} workers, plus a wedged-worker (hang) sweep under a short
# --shard-timeout. A crashed worker's counters die with it, so the
# observable record is the supervisor's shard.* counters: whenever a
# run shows fault evidence (worker-crashes / timed-out / error-replies /
# frames-rejected) it must also show recovery work (retries / reassigned /
# degraded-*), the telemetry ledger must balance (merged + lost flushes
# cover every dispatched block — nothing vanishes silently), and every
# run — faulted or not — must emit a violation lattice byte-identical to
# the serial golden DOT.
#
# A third phase (KILL_MATRIX_PHASE=cache) drives the lattice artifact
# store: every cache failpoint x {crash,error} x trigger indices, against
# cold and pre-warmed stores. Injected errors must degrade to an uncached
# build with golden output; crashes must leave the store empty-or-valid,
# proven by a golden-identical recovery run with zero verify failures.
#
# Usage: kill_matrix.sh <cable-cli> <workdir> [spec-lint]
#   KILL_MATRIX_PHASE          session (default), shard, or cache
#   KILL_MATRIX_INDICES        override the trigger indices (default spread)
#   KILL_MATRIX_POINTS         override the failpoint list (default: all)
#   KILL_MATRIX_SHARD_INDICES  override the shard trigger indices
#   KILL_MATRIX_SHARD_WORKERS  override the shard worker counts
#   KILL_MATRIX_CACHE_INDICES  override the cache trigger indices
#
#===------------------------------------------------------------------------===#

set -u

CLI=${1:?usage: kill_matrix.sh <cable-cli> <workdir> [spec-lint]}
WORK=${2:?usage: kill_matrix.sh <cable-cli> <workdir> [spec-lint]}
LINT=${3:-}
PHASE=${KILL_MATRIX_PHASE:-session}
DATA=$(cd "$(dirname "$0")/../../examples/data" && pwd)
INDICES=${KILL_MATRIX_INDICES:-"1 2 3 4 5 8 13 21 34 50"}
# Every run gets 2 workers so threadpool dispatch is a real crosspoint even
# on single-core machines (the lattice is bit-identical at any count), and
# fsync-per-command sync so the journal-fsync point triggers at every
# append, not only at snapshot/shutdown flushes (scripted runs default to
# --journal-sync batch; the batched path is covered by the resume test and
# the Journal unit tests).
FLAGS="--protocol stdio --recommended --threads 2 --snapshot-every 10 --journal-sync always"
MAX_RESTARTS=60

# Metrics snapshots let the matrix assert on structured counters
# ("journal.unclean-recoveries": 1) instead of grepping stderr prose;
# snapshotJson() guarantees the exact `"name": value` spacing below.
metric_ge1() { grep -q "\"$2\": [1-9]" "$1"; }
# Numeric value of a counter (0 when absent), for arithmetic assertions.
metric_val() {
  local v
  v=$(grep -o "\"$2\": [0-9]*" "$1" | head -1 | grep -o '[0-9]*$')
  printf '%s' "${v:-0}"
}

rm -rf "$WORK"
mkdir -p "$WORK"
cd "$WORK" || exit 1

say() { printf '%s\n' "$*"; }

# Flight-recorder assertions: every injected crash must leave a parseable
# cable-crashdump/1 black box in the per-case CABLE_CRASH_DIR whose
# captured log tail names the failpoint that killed the process. The
# schema check needs python3; without it only the nonempty-dump check
# runs (the matrix itself never skips).
HAVE_PY=0
command -v python3 > /dev/null 2>&1 && HAVE_PY=1
CHECK_OBS=$(cd "$(dirname "$0")/../integration" && pwd)/check_observability.py

assert_dump() { # assert_dump <tag> <failpoint> -> sets fail on violation
  local tag=$1 p=$2 dump
  # Hung/SIGKILLed processes leave the pre-opened file empty; a crash
  # that went through the dumper leaves a nonempty document.
  dump=$(find D -name 'crash.*.json' -size +0c 2>/dev/null | head -1)
  if [ -z "$dump" ]; then
    say "FAIL $tag: injected crash left no flight-recorder dump"
    fail=1
    return
  fi
  if [ "$HAVE_PY" = 1 ] &&
     ! python3 "$CHECK_OBS" --crashdump "$dump" --expect-failpoint "$p" \
         > dumpcheck.out 2>&1; then
    say "FAIL $tag: crash dump $dump does not identify failpoint $p"
    cat dumpcheck.out
    fail=1
  fi
}

#===------------------------------------------------------------------------===#
# Phase: shard — the multi-process worker-lifecycle matrix.
#===------------------------------------------------------------------------===#

if [ "$PHASE" = shard ]; then
  if [ -z "$LINT" ]; then
    say "FATAL: KILL_MATRIX_PHASE=shard needs a spec-lint path (third argument)"
    exit 1
  fi
  LFLAGS="--spec $DATA/stdio_buggy.fa --traces $DATA/stdio_traces.txt --threads 2"
  SITES="shard-pre-fork shard-post-compute shard-pre-reply shard-mid-frame"
  SHARD_INDICES=${KILL_MATRIX_SHARD_INDICES:-"1 2"}
  SHARD_WORKERS=${KILL_MATRIX_SHARD_WORKERS:-"1 2 4 8"}

  # Golden serial violation lattice. spec-lint exits 1 when violations
  # exist; every sharded run must reproduce both the exit code and the
  # DOT bytes.
  $LINT $LFLAGS --dot golden.dot > golden.out 2>&1
  golden_rc=$?
  if [ ! -s golden.dot ]; then
    say "FATAL: golden spec-lint run produced no DOT output:"
    cat golden.out
    exit 1
  fi

  fail=0
  cases=0
  faulted=0

  # One shard-matrix case: site, mode, index, workers, per-shard timeout.
  shard_case() {
    local p=$1 mode=$2 n=$3 w=$4 tmo=$5
    cases=$((cases + 1))
    rm -f out.dot m.json
    rm -rf D && mkdir D
    CABLE_FAILPOINTS="$p=$mode@$n" CABLE_CRASH_DIR="$PWD/D" \
      $LINT $LFLAGS --shard-workers "$w" --shard-timeout "$tmo" \
      --shard-retries 2 --dot out.dot --metrics-out m.json > run.out 2>&1
    local rc=$?
    local tag="$p=$mode@$n w=$w"
    if [ $rc -ne $golden_rc ]; then
      say "FAIL $tag: exit $rc, golden exited $golden_rc"
      tail -5 run.out
      fail=1
      return
    fi
    if ! cmp -s golden.dot out.dot; then
      say "FAIL $tag: sharded violation lattice differs from serial golden"
      diff golden.dot out.dot | head -10
      fail=1
      return
    fi
    # Telemetry ledger: every dispatched block's flush is either merged
    # or accounted as lost — faults may destroy worker telemetry but must
    # never let it vanish silently. A timed-out slot always had a block
    # in flight, so its flush necessarily lands in the lost column.
    local merged lost dispatched
    merged=$(metric_val m.json shard.telemetry-merged)
    lost=$(metric_val m.json shard.telemetry-lost)
    dispatched=$(metric_val m.json shard.blocks-dispatched)
    if [ $((merged + lost)) -lt "$dispatched" ]; then
      say "FAIL $tag: telemetry leak: merged=$merged + lost=$lost < dispatched=$dispatched"
      cat m.json
      fail=1
      return
    fi
    if metric_ge1 m.json shard.timed-out && [ "$lost" -lt 1 ]; then
      say "FAIL $tag: timed-out worker but no telemetry accounted as lost"
      cat m.json
      fail=1
      return
    fi
    # The fault is real only if the supervisor saw it (a worker's own hit
    # counters die with the worker; an @N index a short-lived worker never
    # reaches leaves a clean run, which is still a valid identity case).
    if metric_ge1 m.json shard.worker-crashes ||
       metric_ge1 m.json shard.timed-out ||
       metric_ge1 m.json shard.error-replies ||
       metric_ge1 m.json shard.frames-rejected; then
      faulted=$((faulted + 1))
      if ! metric_ge1 m.json shard.retries &&
         ! metric_ge1 m.json shard.reassigned &&
         ! metric_ge1 m.json shard.degraded-blocks &&
         ! metric_ge1 m.json shard.degraded-builds; then
        say "FAIL $tag: fault evidence but no recovery counters"
        cat m.json
        fail=1
      fi
    fi
    # A crashed worker's flight recorder must have fired before _Exit;
    # hang cases are SIGKILLed and rightly leave no dump.
    if [ "$mode" = crash ] && metric_ge1 m.json shard.worker-crashes; then
      assert_dump "$tag" "$p"
    fi
  }

  for p in $SITES; do
    for mode in crash error; do
      for n in $SHARD_INDICES; do
        for w in $SHARD_WORKERS; do
          shard_case "$p" "$mode" "$n" "$w" 30000
        done
      done
    done
    # Wedged workers: a short deadline keeps the timeout/kill/reassign
    # sweep bounded (each hung attempt costs one deadline).
    shard_case "$p" hang 1 2 500
  done

  say "shard kill matrix: $cases case(s), $faulted with observed faults, $((cases - faulted)) never triggered"
  if [ $fail -eq 0 ]; then
    say "shard kill matrix: PASS"
  fi
  exit $fail
fi

#===------------------------------------------------------------------------===#
# Phase: cache — the lattice artifact-store matrix.
#===------------------------------------------------------------------------===#
#
# Every cache failpoint (cache-serialize, cache-publish, cache-lock,
# cache-load, cache-mmap) x {crash,error} x trigger indices, against both a
# cold and a pre-warmed store. The contract under test:
#
#  - error mode: the cache degrades, it never decides. The faulted run
#    itself must exit with the golden rc and a bit-identical DOT.
#  - crash mode: a crash at any cache site leaves the store empty or
#    valid — proven by a recovery run (same store, no failpoints) that is
#    bit-identical to the golden and reports zero verification failures
#    and zero quarantines.

if [ "$PHASE" = cache ]; then
  if [ -z "$LINT" ]; then
    say "FATAL: KILL_MATRIX_PHASE=cache needs a spec-lint path (third argument)"
    exit 1
  fi
  LFLAGS="--spec $DATA/stdio_buggy.fa --traces $DATA/stdio_traces.txt --threads 2"
  SITES="cache-serialize cache-publish cache-lock cache-load cache-mmap"
  CACHE_INDICES=${KILL_MATRIX_CACHE_INDICES:-"1 2"}

  # Golden uncached run: the cache must never change this, only its cost.
  $LINT $LFLAGS --no-cache --dot golden.dot > golden.out 2>&1
  golden_rc=$?
  if [ ! -s golden.dot ]; then
    say "FATAL: golden spec-lint run produced no DOT output:"
    cat golden.out
    exit 1
  fi

  fail=0
  cases=0
  faulted=0

  # One cache-matrix case: site, mode, trigger index, store temperature.
  cache_case() {
    local p=$1 mode=$2 n=$3 temp=$4
    cases=$((cases + 1))
    local tag="$p=$mode@$n $temp"
    rm -rf C
    if [ "$temp" = warm ]; then
      $LINT $LFLAGS --cache-dir C --dot prime.dot > prime.out 2>&1
      local prc=$?
      if [ $prc -ne $golden_rc ]; then
        say "FAIL $tag: warm-store priming run exited $prc, golden $golden_rc"
        tail -5 prime.out
        fail=1
        return
      fi
      if ! ls C/*.nextclosure.* > prime_ls.out 2>&1; then
        say "FAIL $tag: priming run published no artifact"
        fail=1
        return
      fi
    fi
    rm -f out.dot m.json
    rm -rf D && mkdir D
    CABLE_FAILPOINTS="$p=$mode@$n" CABLE_CRASH_DIR="$PWD/D" \
      $LINT $LFLAGS --cache-dir C --dot out.dot --metrics-out m.json \
      > run.out 2>&1
    local rc=$?
    if [ "$mode" = crash ] && [ $rc -eq 86 ]; then
      faulted=$((faulted + 1))
      assert_dump "$tag" "$p"
    elif [ $rc -ne $golden_rc ]; then
      say "FAIL $tag: exit $rc, golden exited $golden_rc"
      tail -5 run.out
      fail=1
      return
    else
      # Error-mode (or a crash index the run never reached): the faulted
      # run itself must already be the golden build.
      if ! cmp -s golden.dot out.dot; then
        say "FAIL $tag: degraded run's lattice differs from golden"
        diff golden.dot out.dot | head -10
        fail=1
        return
      fi
      [ "$mode" = error ] && metric_ge1 m.json failpoint.hits &&
        faulted=$((faulted + 1))
    fi
    # Recovery run against whatever the fault left behind: the store must
    # read as empty or valid — never as a half-written artifact that a
    # verifier has to quarantine.
    rm -f out.dot m.json
    $LINT $LFLAGS --cache-dir C --dot out.dot --metrics-out m.json \
      > recover.out 2>&1
    local rrc=$?
    if [ $rrc -ne $golden_rc ]; then
      say "FAIL $tag: recovery run exited $rrc, golden exited $golden_rc"
      tail -5 recover.out
      fail=1
      return
    fi
    if ! cmp -s golden.dot out.dot; then
      say "FAIL $tag: recovered lattice differs from golden"
      diff golden.dot out.dot | head -10
      fail=1
      return
    fi
    if metric_ge1 m.json cache.verify-failed ||
       metric_ge1 m.json cache.quarantined; then
      say "FAIL $tag: crash left a torn artifact (verify-failed/quarantined)"
      cat m.json
      fail=1
      return
    fi
  }

  for p in $SITES; do
    for mode in crash error; do
      for n in $CACHE_INDICES; do
        cache_case "$p" "$mode" "$n" cold
        cache_case "$p" "$mode" "$n" warm
      done
    done
  done

  say "cache kill matrix: $cases case(s), $faulted with observed faults, $((cases - faulted)) never triggered"
  if [ $fail -eq 0 ]; then
    say "cache kill matrix: PASS"
  fi
  exit $fail
fi

#===------------------------------------------------------------------------===#
# Phase: session — the durable-session journal matrix.
#===------------------------------------------------------------------------===#

# A ~50-op session exercising every durable-state path: labeling across
# selections, undo, focus/unfocus (including undo inside the focus), a
# mid-session save/load cycle, and read-only commands interleaved.
cat > script.txt <<'EOF'
status
ls
label c1 good
label c2 bad all
status
undo
label c2 bad all
classes
fa c1
label c3 ugly unlabeled
transitions c1
undo
label c3 ugly unlabeled
traces c2
meet c1 c2
join c1 c2
focus c0 popen(v0).*
ls
label c1 inner
undo
label c1 inner
status
unfocus
status
check good
suggest c0
label c4 good from bad
undo
diff good bad
save mid.labels
label c5 extra
undo
load mid.labels
label c0 sweep unlabeled
status
undo
label c0 sweep unlabeled
fa c2 bad
focus c0 pclose(v0).*
label c0 deep all
unfocus
status
label c6 good all
undo
check bad
label c6 tail
ls
undo
label c6 tail
status
save final.labels
EOF

# Replays any journal tail and compacts it into the snapshot, so the
# snapshot alone is the full recoverable state. (A fault injected into the
# final compaction leaves a valid stale-snapshot + tail journal; the state
# is intact but must be drained before byte comparison.)
drain() {
  # An empty file, not /dev/null: on a sandboxed system where /dev/null is
  # a plain file, other processes' redirected output becomes readable
  # there, and the drain would replay it as commands.
  : > empty.script
  "$CLI" $FLAGS --script empty.script --journal "$1" > drain.out 2>&1
}

# Golden, uninterrupted run (also journaled: its final snapshot is the
# reference state).
rm -rf JG
if ! "$CLI" $FLAGS --script script.txt --journal JG > golden.out 2>&1; then
  say "FATAL: golden run failed:"
  cat golden.out
  exit 1
fi
drain JG
if [ ! -f JG/snapshot.cable ]; then
  say "FATAL: golden run produced no snapshot"
  exit 1
fi

points=$(${KILL_MATRIX_POINTS:+echo "$KILL_MATRIX_POINTS"} )
[ -n "$points" ] || points=$("$CLI" --list-failpoints)
if [ -z "$points" ]; then
  say "FATAL: --list-failpoints reported nothing"
  exit 1
fi

fail=0
cases=0
faulted=0
for p in $points; do
  for mode in crash error; do
    for n in $INDICES; do
      cases=$((cases + 1))
      rm -rf J final.labels mid.labels fault.mjson recover.mjson
      rm -rf D && mkdir D
      CABLE_FAILPOINTS="$p=$mode@$n" CABLE_CRASH_DIR="$PWD/D" \
        "$CLI" $FLAGS --metrics-out fault.mjson --script script.txt \
        --journal J > run.out 2>&1
      rc=$?
      first_rc=$rc
      # rc 86 is the injected-crash exit: the flight recorder must have
      # written its black box on the way down.
      if [ "$mode" = crash ] && [ $rc -eq 86 ]; then
        assert_dump "$p=$mode@$n" "$p"
      fi
      # Whether the fault landed while the journal was open: only then
      # does the restart owe us an unclean-recovery count. A crash before
      # Journal::open (e.g. threadpool-dispatch during the initial session
      # build) or after closeClean leaves nothing unclean to detect.
      had_active=0
      [ -f J/ACTIVE ] && had_active=1
      [ $rc -ne 0 ] && faulted=$((faulted + 1))
      restarts=0
      while [ $rc -ne 0 ]; do
        restarts=$((restarts + 1))
        if [ $restarts -gt $MAX_RESTARTS ]; then
          say "FAIL $p=$mode@$n: did not recover after $MAX_RESTARTS restarts (last rc=$rc)"
          cat run.out
          fail=1
          break
        fi
        "$CLI" $FLAGS --metrics-out recover.mjson --script script.txt \
          --journal J > run.out 2>&1
        rc=$?
      done
      [ $rc -ne 0 ] && continue
      if [ "$first_rc" -ne 0 ]; then
        if [ "$mode" = crash ]; then
          # The crashed run _Exit()s before writing metrics; the restart
          # that found the ACTIVE marker must have counted the unclean
          # recovery (and any torn tail is a counter too, not prose).
          if [ "$had_active" = 1 ] &&
             ! metric_ge1 recover.mjson journal.unclean-recoveries; then
            say "FAIL $p=$mode@$n: restart metrics show no unclean recovery"
            cat recover.mjson 2>/dev/null
            fail=1
            continue
          fi
        else
          # Injected-error runs exit through the normal path, so the
          # faulted process itself reports the failpoint hit.
          if ! metric_ge1 fault.mjson failpoint.hits; then
            say "FAIL $p=$mode@$n: faulted-run metrics show no failpoint hit"
            cat fault.mjson 2>/dev/null
            fail=1
            continue
          fi
        fi
      fi
      if ! drain J; then
        say "FAIL $p=$mode@$n: journal drain failed"
        cat drain.out
        fail=1
        continue
      fi
      if [ ! -f J/snapshot.cable ]; then
        say "FAIL $p=$mode@$n: no snapshot after recovery"
        fail=1
        continue
      fi
      if ! cmp -s JG/snapshot.cable J/snapshot.cable; then
        say "FAIL $p=$mode@$n: recovered state differs from golden"
        diff <(cat JG/snapshot.cable) <(cat J/snapshot.cable) | head -10
        fail=1
      fi
      if [ -f J/ACTIVE ]; then
        say "FAIL $p=$mode@$n: ACTIVE marker left after clean exit"
        fail=1
      fi
    done
  done
done

say "kill matrix: $cases case(s), $faulted faulted at least once, $((cases - faulted)) never triggered"
if [ $fail -eq 0 ]; then
  say "kill matrix: PASS"
fi
exit $fail
