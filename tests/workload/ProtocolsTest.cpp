//===- tests/workload/ProtocolsTest.cpp ------------------------------------===//
//
// Part of the Cable reproduction of "Debugging Temporal Specifications with
// Concept Analysis" (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//

#include "workload/Protocols.h"

#include "../TestHelpers.h"
#include "cable/Strategies.h"
#include "miner/ScenarioExtractor.h"
#include "support/RNG.h"
#include "workload/Generator.h"
#include "workload/Oracle.h"
#include "workload/ReferenceFA.h"

#include <gtest/gtest.h>

#include <set>

using namespace cable;

TEST(ProtocolsTest, ExactlySeventeenProtocols) {
  EXPECT_EQ(allProtocols().size(), 17u);
}

TEST(ProtocolsTest, NamesFromThePaperArePresent) {
  std::set<std::string> Names;
  for (const ProtocolModel &M : allProtocols())
    Names.insert(M.Name);
  for (const char *Expected :
       {"XGetSelOwner", "XSetSelOwner", "XtOwnSel", "XInternAtom",
        "PrsTransTbl", "PrsAccelTbl", "RmvTimeOut", "Quarks", "RegionsAlloc",
        "RegionsBig", "XFreeGC", "XPutImage", "XSetFont", "XtFree"})
    EXPECT_TRUE(Names.count(Expected)) << Expected;
}

TEST(ProtocolsTest, ExactlyThreeReconstructedRows) {
  size_t Reconstructed = 0;
  for (const ProtocolModel &M : allProtocols())
    if (M.Reconstructed)
      ++Reconstructed;
  EXPECT_EQ(Reconstructed, 3u);
}

TEST(ProtocolsTest, ProtocolByNameFindsEach) {
  for (const ProtocolModel &M : allProtocols())
    EXPECT_EQ(protocolByName(M.Name).Name, M.Name);
}

TEST(ProtocolsTest, ModelsAreComplete) {
  for (const ProtocolModel &M : allProtocols()) {
    EXPECT_FALSE(M.Description.empty()) << M.Name;
    EXPECT_FALSE(M.CorrectRegex.empty()) << M.Name;
    EXPECT_FALSE(M.Seeds.empty()) << M.Name;
    EXPECT_FALSE(M.Shapes.empty()) << M.Name;
    EXPECT_FALSE(M.Errors.empty()) << M.Name;
    EXPECT_GT(M.NumRuns, 0u) << M.Name;
    EXPECT_GT(M.ErrorRate, 0.0) << M.Name;
    EXPECT_LT(M.ErrorRate, 1.0) << M.Name;
  }
}

/// Per-protocol properties, parameterized over all 17 + stdio.
class PerProtocolTest : public ::testing::TestWithParam<std::string> {
protected:
  ProtocolModel model() const {
    if (GetParam() == "stdio")
      return stdioProtocol();
    return protocolByName(GetParam());
  }
};

TEST_P(PerProtocolTest, CorrectScenariosAreAcceptedByOracle) {
  ProtocolModel M = model();
  EventTable Table;
  WorkloadGenerator Gen(M, Table);
  Oracle Truth(M, Table);
  RNG Rand(42);
  for (int I = 0; I < 100; ++I) {
    Trace T = Gen.generateCorrect(Rand).canonicalized(Table);
    EXPECT_TRUE(Truth.isCorrect(T, Table))
        << M.Name << ": correct scenario rejected: " << T.render(Table);
  }
}

TEST_P(PerProtocolTest, ErrorModesProduceRejectedOrUnchangedTraces) {
  ProtocolModel M = model();
  EventTable Table;
  WorkloadGenerator Gen(M, Table);
  Oracle Truth(M, Table);
  RNG Rand(43);
  for (int I = 0; I < 60; ++I) {
    Trace Correct = Gen.generateCorrect(Rand);
    for (const auto &[W, Mode] : M.Errors) {
      Trace Mutated = Gen.applyError(Correct, Mode, Rand);
      if (Mutated == Correct)
        continue; // The mutation had no target event; still correct.
      Trace Canon = Mutated.canonicalized(Table);
      EXPECT_FALSE(Truth.isCorrect(Canon, Table))
          << M.Name << ": mutant accepted: " << Canon.render(Table);
    }
  }
}

TEST_P(PerProtocolTest, RunsContainBothKinds) {
  ProtocolModel M = model();
  EventTable Table;
  WorkloadGenerator Gen(M, Table);
  RNG Rand(44);
  TraceSet Runs = Gen.generateRuns(Rand);
  EXPECT_EQ(Runs.size(), M.NumRuns);

  ExtractorOptions Extract;
  Extract.SeedNames = M.Seeds;
  Extract.TransitiveValues = true;
  TraceSet Scenarios = extractScenarios(Runs, Extract);
  EXPECT_GE(Scenarios.size(), M.NumRuns * M.ScenariosPerRun / 2)
      << "extraction must recover most scenarios";

  Oracle Truth(M, Scenarios.table());
  size_t Good = 0, Bad = 0;
  for (const Trace &T : Scenarios.traces()) {
    if (Truth.isCorrect(T, Scenarios.table()))
      ++Good;
    else
      ++Bad;
  }
  EXPECT_GT(Good, 0u) << M.Name;
  EXPECT_GT(Bad, 0u) << M.Name;
  EXPECT_GT(Good, Bad) << "correct behavior must dominate";
}

TEST_P(PerProtocolTest, ExtractionRecoversGeneratedScenarios) {
  // Generating scenarios directly and slicing them out of interleaved
  // runs must produce the same multiset of canonical traces.
  ProtocolModel M = model();
  M.NoisePerRun = 3;
  EventTable TableA;
  WorkloadGenerator GenA(M, TableA);
  RNG RandRuns(7);
  ValueId Next = 0;
  Trace Run = GenA.generateRun(RandRuns, Next);

  // Regenerate the same scenarios with an identical RNG stream.
  EventTable TableB;
  WorkloadGenerator GenB(M, TableB);
  RNG RandDirect(7);
  std::multiset<std::string> Direct;
  for (size_t I = 0; I < M.ScenariosPerRun; ++I) {
    Trace S = GenB.generateScenario(RandDirect);
    // Only scenarios containing a seed event are recoverable by the
    // extractor; mutations are designed to preserve one, but filter
    // defensively.
    bool HasSeed = false;
    for (EventId E : S.events()) {
      const std::string &Name = TableB.nameText(TableB.event(E).Name);
      for (const std::string &Seed : M.Seeds)
        if (Name == Seed && !TableB.event(E).Args.empty())
          HasSeed = true;
    }
    if (HasSeed)
      Direct.insert(S.canonicalized(TableB).render(TableB));
  }

  TraceSet Runs;
  Runs.table() = TableA;
  Runs.add(Run);
  ExtractorOptions Extract;
  Extract.SeedNames = M.Seeds;
  Extract.TransitiveValues = true;
  TraceSet Scenarios = extractScenarios(Runs, Extract);
  std::multiset<std::string> Extracted;
  for (const Trace &T : Scenarios.traces())
    Extracted.insert(T.render(Scenarios.table()));

  EXPECT_EQ(Extracted, Direct) << M.Name;
}

TEST_P(PerProtocolTest, ReferenceFAYieldsWellFormedLattice) {
  // The Table 3 measurements require that the recommended reference FA
  // separates good from bad: the induced lattice must be well-formed for
  // the oracle labeling, and the lattice-based strategies must finish.
  ProtocolModel M = model();
  EventTable Table;
  WorkloadGenerator Gen(M, Table);
  RNG Rand(321);
  TraceSet Scenarios =
      Gen.generateScenarios(Rand, M.NumRuns * M.ScenariosPerRun);
  Automaton Ref =
      makeProtocolReferenceFA(Scenarios.traces(), Scenarios.table(), M);
  Session S(std::move(Scenarios), std::move(Ref));
  Oracle Truth(M, S.table());
  ReferenceLabeling Target = Truth.referenceLabeling(S);
  EXPECT_TRUE(checkWellFormed(S, Target).LatticeWellFormed) << M.Name;
  TopDownStrategy TD;
  EXPECT_TRUE(TD.run(S, Target).Finished) << M.Name;
  ExpertSimStrategy Expert;
  EXPECT_TRUE(Expert.run(S, Target).Finished) << M.Name;
}

INSTANTIATE_TEST_SUITE_P(AllProtocols, PerProtocolTest,
                         ::testing::Values(
                             "XGetSelOwner", "XSetSelOwner", "XtOwnSel",
                             "XInternAtom", "PrsTransTbl", "PrsAccelTbl",
                             "RmvTimeOut", "Quarks", "RegionsAlloc",
                             "RegionsBig", "XFreeGC", "XPutImage", "XSetFont",
                             "XtFree", "XOpenDisplay", "XCreatePixmap",
                             "XSaveContext", "stdio"));

TEST(ProtocolsTest, StdioBuggySpecHasTheFig1Bug) {
  EventTable T;
  Automaton Buggy = cable::test::compileFA(stdioBuggyRegex(), T);
  EXPECT_TRUE(
      Buggy.accepts(cable::test::makeTrace(T, "popen(v0) fclose(v0)"), T));
  EXPECT_FALSE(
      Buggy.accepts(cable::test::makeTrace(T, "popen(v0) pclose(v0)"), T));
}

TEST(ProtocolsTest, XtFreeRegimeIsLarge) {
  // §5.3: the XtFree specification had on the order of a hundred unique
  // scenario classes (Baseline 224 => ~112 classes).
  ProtocolModel M = protocolByName("XtFree");
  EventTable Table;
  WorkloadGenerator Gen(M, Table);
  RNG Rand(1);
  TraceSet Scenarios =
      Gen.generateScenarios(Rand, M.NumRuns * M.ScenariosPerRun);
  size_t Unique = Scenarios.computeClasses().numClasses();
  EXPECT_GE(Unique, 60u);
  EXPECT_LE(Unique, 180u);
}

TEST(ProtocolsTest, SmallProtocolsStaySmall) {
  for (const char *Name : {"XGetSelOwner", "PrsTransTbl", "RmvTimeOut"}) {
    ProtocolModel M = protocolByName(Name);
    EventTable Table;
    WorkloadGenerator Gen(M, Table);
    RNG Rand(2);
    TraceSet Scenarios =
        Gen.generateScenarios(Rand, M.NumRuns * M.ScenariosPerRun);
    EXPECT_LE(Scenarios.computeClasses().numClasses(), 12u) << Name;
  }
}
