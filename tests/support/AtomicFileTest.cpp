//===- tests/support/AtomicFileTest.cpp ------------------------------------===//
//
// Part of the Cable reproduction of "Debugging Temporal Specifications with
// Concept Analysis" (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/AtomicFile.h"

#include "support/Failpoint.h"

#include <gtest/gtest.h>

#include <dirent.h>
#include <sys/stat.h>

using namespace cable;

namespace {

class AtomicFileTest : public ::testing::Test {
protected:
  void SetUp() override {
    Dir = ::testing::TempDir() + "cable_atomicfile_" +
          ::testing::UnitTest::GetInstance()->current_test_info()->name();
    ::mkdir(Dir.c_str(), 0755);
  }
  void TearDown() override { Failpoint::reset(); }

  std::string path(const char *Name) const { return Dir + "/" + Name; }

  std::vector<std::string> entries() const {
    std::vector<std::string> Names;
    DIR *D = ::opendir(Dir.c_str());
    if (!D)
      return Names;
    while (struct dirent *E = ::readdir(D)) {
      std::string Name = E->d_name;
      if (Name != "." && Name != "..")
        Names.push_back(Name);
    }
    ::closedir(D);
    return Names;
  }

  std::string Dir;
};

TEST_F(AtomicFileTest, Crc32MatchesTheIEEECheckValue) {
  // The standard CRC-32 check value.
  EXPECT_EQ(crc32("123456789"), 0xCBF43926u);
  EXPECT_EQ(crc32(""), 0u);
  // Seeding chains incremental computation.
  EXPECT_EQ(crc32("456789", crc32("123")), crc32("123456789"));
}

TEST_F(AtomicFileTest, WriteCreatesAndReplaces) {
  std::string P = path("out.txt");
  ASSERT_TRUE(AtomicFile::write(P, "first\n").isOk());
  StatusOr<std::string> Back = readFileToString(P);
  ASSERT_TRUE(Back.isOk());
  EXPECT_EQ(*Back, "first\n");

  ASSERT_TRUE(AtomicFile::write(P, "second\n").isOk());
  Back = readFileToString(P);
  ASSERT_TRUE(Back.isOk());
  EXPECT_EQ(*Back, "second\n");
  // No temporary residue.
  EXPECT_EQ(entries().size(), 1u);
}

TEST_F(AtomicFileTest, FailedWriteLeavesTheOldFileAndNoTemporary) {
  std::string P = path("out.txt");
  ASSERT_TRUE(AtomicFile::write(P, "precious\n").isOk());
  ASSERT_TRUE(Failpoint::configure("atomicfile-rename=error").isOk());
  Status St = AtomicFile::write(P, "doomed\n");
  ASSERT_FALSE(St.isOk());
  EXPECT_EQ(St.diagnostic().Code, ErrorCode::IoError);
  StatusOr<std::string> Back = readFileToString(P);
  ASSERT_TRUE(Back.isOk());
  EXPECT_EQ(*Back, "precious\n");
  EXPECT_EQ(entries().size(), 1u) << "temporary not cleaned up";
}

TEST_F(AtomicFileTest, EveryWriteStepIsFaultable) {
  for (const char *Point : {"atomicfile-open", "atomicfile-write",
                            "atomicfile-fsync", "atomicfile-rename"}) {
    ASSERT_TRUE(
        Failpoint::configure(std::string(Point) + "=error").isOk());
    EXPECT_FALSE(AtomicFile::write(path("f.txt"), "x").isOk()) << Point;
    Failpoint::reset();
  }
}

TEST_F(AtomicFileTest, ReadMissingFileIsAPositionedIoError) {
  StatusOr<std::string> R = readFileToString(path("absent.txt"));
  ASSERT_FALSE(R.isOk());
  EXPECT_EQ(R.status().diagnostic().Code, ErrorCode::IoError);
  EXPECT_EQ(R.status().diagnostic().File, path("absent.txt"));
}

TEST_F(AtomicFileTest, ReadFaultable) {
  ASSERT_TRUE(AtomicFile::write(path("f.txt"), "x").isOk());
  ASSERT_TRUE(Failpoint::configure("file-read=error").isOk());
  EXPECT_FALSE(readFileToString(path("f.txt")).isOk());
  EXPECT_TRUE(readFileToString(path("f.txt")).isOk()); // one-shot
}

TEST_F(AtomicFileTest, FramedRoundTrip) {
  std::string Stream = encodeFramedRecord("alpha") +
                       encodeFramedRecord("") +
                       encodeFramedRecord(std::string(1000, 'z'));
  FramedScan Scan = scanFramedRecords(Stream);
  EXPECT_FALSE(Scan.Torn);
  ASSERT_EQ(Scan.Records.size(), 3u);
  EXPECT_EQ(Scan.Records[0].Payload, "alpha");
  EXPECT_EQ(Scan.Records[0].Offset, 0u);
  EXPECT_EQ(Scan.Records[1].Payload, "");
  EXPECT_EQ(Scan.Records[2].Payload, std::string(1000, 'z'));
}

TEST_F(AtomicFileTest, TruncatedFinalFrameIsTornNotFatal) {
  std::string Stream =
      encodeFramedRecord("whole") + encodeFramedRecord("torn");
  Stream.resize(Stream.size() - 2); // Chop the tail mid-payload.
  FramedScan Scan = scanFramedRecords(Stream);
  ASSERT_EQ(Scan.Records.size(), 1u);
  EXPECT_EQ(Scan.Records[0].Payload, "whole");
  EXPECT_TRUE(Scan.Torn);
  EXPECT_EQ(Scan.TornOffset, encodeFramedRecord("whole").size());
  ASSERT_FALSE(Scan.TornStatus.isOk());
  const Diagnostic &D = Scan.TornStatus.diagnostic();
  EXPECT_EQ(D.Level, Severity::Warning);
  EXPECT_EQ(D.Pos.Line, 2u) << "positioned by 1-based record number";
}

TEST_F(AtomicFileTest, CorruptedPayloadFailsTheChecksum) {
  std::string Stream = encodeFramedRecord("aaaa") + encodeFramedRecord("bbbb");
  Stream[Stream.size() - 1] ^= 0x40; // Flip a bit in the last payload.
  FramedScan Scan = scanFramedRecords(Stream);
  ASSERT_EQ(Scan.Records.size(), 1u);
  EXPECT_TRUE(Scan.Torn);
  EXPECT_NE(Scan.TornStatus.message().find("checksum"), std::string::npos)
      << Scan.TornStatus.message();
}

TEST_F(AtomicFileTest, ChecksumHeaderRoundTrip) {
  std::string Text = withChecksumHeader("cable-labels", 2, "a b\nc d\n");
  EXPECT_EQ(Text.compare(0, 15, "#%cable-labels "), 0) << Text;
  StatusOr<CheckedText> R =
      readChecksumHeader("cable-labels", Text, "f", /*AllowLegacy=*/false);
  ASSERT_TRUE(R.isOk()) << R.status().render();
  EXPECT_EQ(R->Body, "a b\nc d\n");
  EXPECT_EQ(R->Version, 2u);
  EXPECT_FALSE(R->Legacy);
}

TEST_F(AtomicFileTest, CorruptBodyIsAPositionedChecksumMismatch) {
  std::string Text = withChecksumHeader("cable-labels", 2, "a b\n");
  Text[Text.size() - 2] = 'X';
  StatusOr<CheckedText> R =
      readChecksumHeader("cable-labels", Text, "lbl.txt", false);
  ASSERT_FALSE(R.isOk());
  const Diagnostic &D = R.status().diagnostic();
  EXPECT_EQ(D.Code, ErrorCode::ParseError);
  EXPECT_EQ(D.File, "lbl.txt");
  EXPECT_EQ(D.Pos.Line, 1u);
  EXPECT_NE(D.Message.find("checksum mismatch"), std::string::npos);
}

TEST_F(AtomicFileTest, TruncatedBodyDetected) {
  std::string Text = withChecksumHeader("cable-labels", 2, "a b\nc d\n");
  Text.resize(Text.size() - 4);
  EXPECT_FALSE(
      readChecksumHeader("cable-labels", Text, "f", false).isOk());
}

TEST_F(AtomicFileTest, WrongMagicRejected) {
  std::string Text = withChecksumHeader("cable-snapshot", 1, "x\n");
  StatusOr<CheckedText> R =
      readChecksumHeader("cable-labels", Text, "f", /*AllowLegacy=*/true);
  EXPECT_FALSE(R.isOk());
}

TEST_F(AtomicFileTest, LegacyHeaderlessText) {
  StatusOr<CheckedText> R =
      readChecksumHeader("cable-labels", "good x(v0)\n", "f",
                         /*AllowLegacy=*/true);
  ASSERT_TRUE(R.isOk());
  EXPECT_TRUE(R->Legacy);
  EXPECT_EQ(R->Body, "good x(v0)\n");
  EXPECT_FALSE(
      readChecksumHeader("cable-labels", "good x(v0)\n", "f",
                         /*AllowLegacy=*/false)
          .isOk());
}

} // namespace
