//===- tests/support/KernelDispatchTest.cpp - Dispatch thread safety ------===//
//
// Part of the Cable reproduction of "Debugging Temporal Specifications with
// Concept Analysis" (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//
//
// Lives in the cable_parallel_tests binary so the TSan lane proves the
// kernel dispatch singleton is race-free: many pool workers hitting ops()
// as their first-ever use (the lazy-init path) and then hammering kernels
// concurrently must produce correct results and no data-race reports.
//
//===----------------------------------------------------------------------===//

#include "support/BitVector.h"
#include "support/ThreadPool.h"
#include "support/simd/Kernels.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <vector>

using namespace cable;

TEST(KernelDispatchConcurrencyTest, ConcurrentFirstUseResolvesOneTable) {
  // ops() may already be resolved by an earlier test; the point is that
  // concurrent loads all observe the same table and level.
  ThreadPool Pool(8);
  std::vector<const simd::KernelOps *> Seen(64, nullptr);
  Pool.parallelFor(Seen.size(), [&](size_t Begin, size_t End) {
    for (size_t I = Begin; I < End; ++I)
      Seen[I] = &simd::ops();
  });
  for (const simd::KernelOps *P : Seen)
    EXPECT_EQ(P, Seen[0]);
  EXPECT_STREQ(Seen[0]->Name, simd::levelName(simd::activeLevel()));
}

TEST(KernelDispatchConcurrencyTest, ConcurrentKernelCallsAreRaceFree) {
  // Each worker owns its operands (kernels share only the immutable
  // dispatch table); a race here is a dispatch bug, not a data bug.
  ThreadPool Pool(8);
  std::atomic<size_t> TotalBits{0};
  constexpr size_t Lanes = 32;
  Pool.parallelFor(Lanes, [&](size_t Begin, size_t End) {
    for (size_t I = Begin; I < End; ++I) {
      BitVector A(600), B(600);
      for (size_t J = I; J < 600; J += 3)
        A.set(J);
      for (size_t J = 0; J < 600; J += 2)
        B.set(J);
      A &= B;
      ASSERT_TRUE(A.isSubsetOf(B));
      TotalBits.fetch_add(A.count(), std::memory_order_relaxed);
    }
  });
  EXPECT_GT(TotalBits.load(), 0u);
}

TEST(KernelDispatchConcurrencyTest, ForcedLevelVisibleToWorkers) {
  simd::ForcedLevelGuard Guard(simd::Level::Scalar);
  ThreadPool Pool(4);
  std::vector<int> Levels(16, -1);
  Pool.parallelFor(Levels.size(), [&](size_t Begin, size_t End) {
    for (size_t I = Begin; I < End; ++I)
      Levels[I] = static_cast<int>(simd::activeLevel());
  });
  for (int L : Levels)
    EXPECT_EQ(L, static_cast<int>(simd::Level::Scalar));
}
