//===- tests/support/BitVectorTest.cpp -------------------------------------===//
//
// Part of the Cable reproduction of "Debugging Temporal Specifications with
// Concept Analysis" (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/BitVector.h"

#include "support/RNG.h"

#include <gtest/gtest.h>

#include <set>

using namespace cable;

TEST(BitVectorTest, StartsEmpty) {
  BitVector BV(100);
  EXPECT_EQ(BV.size(), 100u);
  EXPECT_EQ(BV.count(), 0u);
  EXPECT_TRUE(BV.none());
  EXPECT_FALSE(BV.any());
}

TEST(BitVectorTest, SetResetTest) {
  BitVector BV(70);
  BV.set(0);
  BV.set(63);
  BV.set(64);
  BV.set(69);
  EXPECT_TRUE(BV.test(0));
  EXPECT_TRUE(BV.test(63));
  EXPECT_TRUE(BV.test(64));
  EXPECT_TRUE(BV.test(69));
  EXPECT_FALSE(BV.test(1));
  EXPECT_EQ(BV.count(), 4u);
  BV.reset(63);
  EXPECT_FALSE(BV.test(63));
  EXPECT_EQ(BV.count(), 3u);
}

TEST(BitVectorTest, SetAllRespectsUniverse) {
  BitVector BV(67);
  BV.setAll();
  EXPECT_EQ(BV.count(), 67u);
  BV.flipAll();
  EXPECT_EQ(BV.count(), 0u);
}

TEST(BitVectorTest, FlipAllOnPartialWord) {
  BitVector BV(5);
  BV.set(1);
  BV.flipAll();
  EXPECT_EQ(BV.count(), 4u);
  EXPECT_FALSE(BV.test(1));
  EXPECT_TRUE(BV.test(0));
  EXPECT_TRUE(BV.test(4));
}

TEST(BitVectorTest, ResizeGrowClearsNewBits) {
  BitVector BV(3);
  BV.setAll();
  BV.resize(130);
  EXPECT_EQ(BV.count(), 3u);
  EXPECT_FALSE(BV.test(129));
}

TEST(BitVectorTest, ResizeShrinkDropsBits) {
  BitVector BV(130);
  BV.setAll();
  BV.resize(3);
  EXPECT_EQ(BV.count(), 3u);
  BV.resize(130);
  EXPECT_EQ(BV.count(), 3u) << "bits past the old end must not reappear";
}

TEST(BitVectorTest, AndOrXorAndNot) {
  BitVector A(10), B(10);
  A.set(1);
  A.set(2);
  B.set(2);
  B.set(3);
  BitVector And = A & B;
  EXPECT_EQ(And.toIndices(), (std::vector<size_t>{2}));
  BitVector Or = A | B;
  EXPECT_EQ(Or.toIndices(), (std::vector<size_t>{1, 2, 3}));
  BitVector Xor = A;
  Xor ^= B;
  EXPECT_EQ(Xor.toIndices(), (std::vector<size_t>{1, 3}));
  BitVector Diff = A;
  Diff.andNot(B);
  EXPECT_EQ(Diff.toIndices(), (std::vector<size_t>{1}));
}

TEST(BitVectorTest, SubsetAndIntersects) {
  BitVector A(200), B(200);
  A.set(5);
  A.set(150);
  B.set(5);
  B.set(150);
  B.set(199);
  EXPECT_TRUE(A.isSubsetOf(B));
  EXPECT_FALSE(B.isSubsetOf(A));
  EXPECT_TRUE(A.isSubsetOf(A));
  EXPECT_TRUE(A.intersects(B));
  BitVector C(200);
  C.set(7);
  EXPECT_FALSE(A.intersects(C));
  BitVector Empty(200);
  EXPECT_TRUE(Empty.isSubsetOf(A));
  EXPECT_FALSE(Empty.intersects(A));
}

TEST(BitVectorTest, FindFirstNext) {
  BitVector BV(200);
  EXPECT_EQ(BV.findFirst(), BitVector::npos);
  BV.set(3);
  BV.set(64);
  BV.set(199);
  EXPECT_EQ(BV.findFirst(), 3u);
  EXPECT_EQ(BV.findNext(3), 64u);
  EXPECT_EQ(BV.findNext(64), 199u);
  EXPECT_EQ(BV.findNext(199), BitVector::npos);
}

TEST(BitVectorTest, IterationMatchesToIndices) {
  BitVector BV(300);
  for (size_t I : {0u, 63u, 64u, 65u, 128u, 299u})
    BV.set(I);
  std::vector<size_t> Seen;
  for (size_t I : BV)
    Seen.push_back(I);
  EXPECT_EQ(Seen, BV.toIndices());
  EXPECT_EQ(Seen.size(), 6u);
}

TEST(BitVectorTest, EqualityIncludesUniverseSize) {
  BitVector A(10), B(11);
  EXPECT_FALSE(A == B);
  BitVector C(10);
  EXPECT_TRUE(A == C);
  C.set(0);
  EXPECT_FALSE(A == C);
}

TEST(BitVectorTest, HashEqualForEqualVectors) {
  BitVector A(100), B(100);
  A.set(42);
  B.set(42);
  EXPECT_EQ(A.hashValue(), B.hashValue());
}

TEST(BitVectorTest, ZeroSizedVector) {
  BitVector BV(0);
  EXPECT_EQ(BV.count(), 0u);
  EXPECT_TRUE(BV.none());
  EXPECT_EQ(BV.findFirst(), BitVector::npos);
  BitVector Other(0);
  EXPECT_TRUE(BV == Other);
  EXPECT_TRUE(BV.isSubsetOf(Other));
}

/// Property sweep: random sets obey set-algebra laws.
class BitVectorPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BitVectorPropertyTest, RandomSetAlgebraLaws) {
  RNG Rand(GetParam());
  size_t N = 1 + Rand.nextIndex(300);
  BitVector A(N), B(N);
  std::set<size_t> RefA, RefB;
  for (size_t I = 0; I < N; ++I) {
    if (Rand.nextBool(0.3)) {
      A.set(I);
      RefA.insert(I);
    }
    if (Rand.nextBool(0.3)) {
      B.set(I);
      RefB.insert(I);
    }
  }
  EXPECT_EQ(A.count(), RefA.size());

  // De Morgan: ~(A | B) == ~A & ~B.
  BitVector L = A | B;
  L.flipAll();
  BitVector NA = A, NB = B;
  NA.flipAll();
  NB.flipAll();
  EXPECT_TRUE(L == (NA & NB));

  // A \ B == A & ~B.
  BitVector D1 = A;
  D1.andNot(B);
  EXPECT_TRUE(D1 == (A & NB));

  // Subset coherence: (A & B) subset of both.
  BitVector M = A & B;
  EXPECT_TRUE(M.isSubsetOf(A));
  EXPECT_TRUE(M.isSubsetOf(B));
  EXPECT_EQ(M.any(), A.intersects(B));

  // Iteration agrees with the reference set.
  std::set<size_t> Iterated;
  for (size_t I : A)
    Iterated.insert(I);
  EXPECT_EQ(Iterated, RefA);
}

INSTANTIATE_TEST_SUITE_P(Seeds, BitVectorPropertyTest,
                         ::testing::Range<uint64_t>(0, 24));

//===----------------------------------------------------------------------===//
// Tail-bit invariant audit.
//===----------------------------------------------------------------------===//

namespace cable {

/// Friend backdoor that plants garbage past size() — a state no public
/// operation can produce — to prove dirty tails neither leak through the
/// kernel-backed reads nor survive any mutating operation.
struct BitVectorTestPeer {
  static void dirtyTail(BitVector &BV) {
    if (!BV.Words.empty())
      BV.Words.back() |= ~BV.tailMask();
  }
};

} // namespace cable

namespace {

BitVector patternedVector(size_t Bits, uint64_t Seed) {
  RNG Rand(Seed);
  BitVector BV(Bits);
  for (size_t I = 0; I < Bits; ++I)
    if (Rand.nextBool(0.4))
      BV.set(I);
  return BV;
}

} // namespace

TEST(BitVectorTailInvariantTest, PublicOperationsKeepTheTailClean) {
  for (size_t Bits : {size_t(1), size_t(63), size_t(65), size_t(100),
                      size_t(128), size_t(130)}) {
    BitVector A = patternedVector(Bits, Bits);
    BitVector B = patternedVector(Bits, Bits + 1);
    EXPECT_TRUE(A.tailIsClean());
    A.setAll();
    EXPECT_TRUE(A.tailIsClean());
    A.flipAll();
    EXPECT_TRUE(A.tailIsClean());
    A = patternedVector(Bits, Bits);
    A &= B;
    EXPECT_TRUE(A.tailIsClean());
    A |= B;
    EXPECT_TRUE(A.tailIsClean());
    A ^= B;
    EXPECT_TRUE(A.tailIsClean());
    A.andNot(B);
    EXPECT_TRUE(A.tailIsClean());
    A.resize(Bits + 7);
    EXPECT_TRUE(A.tailIsClean());
    A.resize(Bits > 3 ? Bits - 3 : 0);
    EXPECT_TRUE(A.tailIsClean());
  }
}

TEST(BitVectorTailInvariantTest, DirtyTailCannotLeakIntoKernelReads) {
  for (size_t Bits : {size_t(1), size_t(5), size_t(63), size_t(65),
                      size_t(127), size_t(130), size_t(257)}) {
    BitVector A = patternedVector(Bits, Bits * 31);
    BitVector B = patternedVector(Bits, Bits * 31 + 1);
    BitVector DirtyA = A, DirtyB = B;
    BitVectorTestPeer::dirtyTail(DirtyA);
    BitVectorTestPeer::dirtyTail(DirtyB);
    // The masked read paths must see the clean values through the dirt.
    EXPECT_EQ(DirtyA.count(), A.count()) << Bits;
    EXPECT_EQ(DirtyA.none(), A.none()) << Bits;
    EXPECT_EQ(DirtyA.any(), A.any()) << Bits;
    EXPECT_EQ(DirtyA.isSubsetOf(B), A.isSubsetOf(B)) << Bits;
    EXPECT_EQ(DirtyA.isSubsetOf(DirtyB), A.isSubsetOf(B)) << Bits;
    EXPECT_EQ(A.isSubsetOf(DirtyB), A.isSubsetOf(B)) << Bits;
    EXPECT_EQ(DirtyA.intersects(DirtyB), A.intersects(B)) << Bits;
    EXPECT_EQ(DirtyA.intersects(B), A.intersects(B)) << Bits;
  }
}

TEST(BitVectorTailInvariantTest, EveryMutatingOpScrubsAPlantedDirtyTail) {
  // A dirty tail must not survive the next mutation, even though no public
  // operation can create one: mutating ops re-mask defensively.
  for (size_t Bits : {size_t(5), size_t(65), size_t(130)}) {
    BitVector B = patternedVector(Bits, Bits);
    auto Dirty = [&] {
      BitVector V = patternedVector(Bits, Bits + 9);
      BitVectorTestPeer::dirtyTail(V);
      return V;
    };
    BitVector V = Dirty();
    V &= B;
    EXPECT_TRUE(V.tailIsClean()) << Bits;
    V = Dirty();
    V |= B;
    EXPECT_TRUE(V.tailIsClean()) << Bits;
    V = Dirty();
    V ^= B;
    EXPECT_TRUE(V.tailIsClean()) << Bits;
    V = Dirty();
    V.andNot(B);
    EXPECT_TRUE(V.tailIsClean()) << Bits;
    V = Dirty();
    V.flipAll();
    EXPECT_TRUE(V.tailIsClean()) << Bits;
    V = Dirty();
    V.setAll();
    EXPECT_TRUE(V.tailIsClean()) << Bits;
    V = Dirty();
    V.resize(Bits);
    EXPECT_TRUE(V.tailIsClean()) << Bits;
  }
}
