//===- tests/support/StringUtilTest.cpp ------------------------------------===//
//
// Part of the Cable reproduction of "Debugging Temporal Specifications with
// Concept Analysis" (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/StringUtil.h"

#include "support/Dot.h"

#include <gtest/gtest.h>

using namespace cable;

TEST(StringUtilTest, SplitBasic) {
  EXPECT_EQ(splitString("a,b,c", ','),
            (std::vector<std::string>{"a", "b", "c"}));
}

TEST(StringUtilTest, SplitKeepsEmptyFields) {
  EXPECT_EQ(splitString("a,,c", ','), (std::vector<std::string>{"a", "", "c"}));
  EXPECT_EQ(splitString("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(splitString(",", ','), (std::vector<std::string>{"", ""}));
}

TEST(StringUtilTest, SplitWhitespaceDropsEmpty) {
  EXPECT_EQ(splitWhitespace("  a\t b\n  c  "),
            (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_TRUE(splitWhitespace("   ").empty());
  EXPECT_TRUE(splitWhitespace("").empty());
}

TEST(StringUtilTest, Trim) {
  EXPECT_EQ(trimString("  hi  "), "hi");
  EXPECT_EQ(trimString("hi"), "hi");
  EXPECT_EQ(trimString("   "), "");
  EXPECT_EQ(trimString(""), "");
  EXPECT_EQ(trimString("\t\na b\t\n"), "a b");
}

TEST(StringUtilTest, Join) {
  EXPECT_EQ(joinStrings({"a", "b"}, ", "), "a, b");
  EXPECT_EQ(joinStrings({"a"}, ", "), "a");
  EXPECT_EQ(joinStrings({}, ", "), "");
}

TEST(StringUtilTest, IsAllDigits) {
  EXPECT_TRUE(isAllDigits("0123"));
  EXPECT_FALSE(isAllDigits(""));
  EXPECT_FALSE(isAllDigits("12a"));
  EXPECT_FALSE(isAllDigits("-1"));
}

TEST(StringUtilTest, PadString) {
  EXPECT_EQ(padString("ab", 4), "ab  ");
  EXPECT_EQ(padString("abcdef", 4), "abcd");
  EXPECT_EQ(padString("", 2), "  ");
}

TEST(DotTest, EscapesQuotesAndNewlines) {
  EXPECT_EQ(DotWriter::escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
}

TEST(DotTest, RendersDigraph) {
  DotWriter W("g");
  W.addRaw("rankdir=LR;");
  W.addNode("n1", "label one", "shape=box");
  W.addNode("n2", "two");
  W.addEdge("n1", "n2", "edge");
  W.addEdge("n2", "n1");
  std::string Out = W.str();
  EXPECT_NE(Out.find("digraph \"g\" {"), std::string::npos);
  EXPECT_NE(Out.find("\"n1\" [label=\"label one\", shape=box];"),
            std::string::npos);
  EXPECT_NE(Out.find("\"n1\" -> \"n2\" [label=\"edge\"];"), std::string::npos);
  EXPECT_NE(Out.find("\"n2\" -> \"n1\";"), std::string::npos);
  EXPECT_EQ(Out.back(), '\n');
}
