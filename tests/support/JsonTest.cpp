//===- tests/support/JsonTest.cpp - JSON emitter escaping tests ------------===//
//
// Part of the Cable reproduction of "Debugging Temporal Specifications with
// Concept Analysis" (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//
//
// The observability documents (metrics, run reports, traces, bench JSON,
// crash dumps) all funnel arbitrary bytes — paths, error strings, user
// spec names — through JsonWriter. These tests pin the escaping contract:
// whatever goes in, the emitted document parses under the repo's own
// strict validator.
//
//===----------------------------------------------------------------------===//

#include "support/Json.h"

#include <gtest/gtest.h>

#include <string>

using namespace cable;

namespace {

/// quote() then check the result is one strict-JSON string literal.
std::string quoteAndValidate(std::string_view S) {
  std::string Q = JsonWriter::quote(S);
  std::string Err;
  EXPECT_TRUE(validateJson(Q, Err)) << Err << "\n" << Q;
  return Q;
}

TEST(JsonQuoteTest, EscapesQuotesAndBackslashes) {
  EXPECT_EQ(quoteAndValidate("say \"hi\""), "\"say \\\"hi\\\"\"");
  EXPECT_EQ(quoteAndValidate("a\\b\\\\c"), "\"a\\\\b\\\\\\\\c\"");
  EXPECT_EQ(quoteAndValidate("C:\\path\"x"), "\"C:\\\\path\\\"x\"");
}

TEST(JsonQuoteTest, EscapesNamedWhitespace) {
  EXPECT_EQ(quoteAndValidate("a\nb\rc\td"), "\"a\\nb\\rc\\td\"");
}

TEST(JsonQuoteTest, HexEscapesRemainingControlChars) {
  EXPECT_EQ(quoteAndValidate(std::string_view("\x00\x01\x1f", 3)),
            "\"\\u0000\\u0001\\u001f\"");
  // 0x20 (space) is the first byte that passes through untouched.
  EXPECT_EQ(quoteAndValidate(" \x1f "), "\" \\u001f \"");
}

TEST(JsonQuoteTest, EmptyAndPlainStringsAreJustDelimited) {
  EXPECT_EQ(quoteAndValidate(""), "\"\"");
  EXPECT_EQ(quoteAndValidate("cache-verify-failed"),
            "\"cache-verify-failed\"");
}

TEST(JsonQuoteTest, ValidUtf8PassesThroughByteExact) {
  // é (U+00E9) and a 4-byte emoji: multi-byte sequences are not escaped,
  // the document stays valid UTF-8 because the input was.
  EXPECT_EQ(quoteAndValidate("caf\xc3\xa9"), "\"caf\xc3\xa9\"");
  EXPECT_EQ(quoteAndValidate("\xf0\x9f\x94\xa7"), "\"\xf0\x9f\x94\xa7\"");
}

TEST(JsonQuoteTest, InvalidUtf8StaysDelimitedAndSyntacticallyValid) {
  // JsonWriter is byte-transparent above 0x1F: invalid UTF-8 (stray
  // continuation bytes, lone 0xFF from a hostile filename) passes
  // through. The validator is a syntax checker, not a UTF-8 checker, so
  // the literal still parses; consumers needing guaranteed-clean text
  // use the Log renderer, which hex-escapes >= 0x7F.
  std::string Q = quoteAndValidate(std::string_view("\xff\xfe\x80", 3));
  EXPECT_EQ(Q, std::string("\"\xff\xfe\x80\"", 5));
  // The quoting never loses the delimiters even around hostile bytes.
  EXPECT_EQ(Q.front(), '"');
  EXPECT_EQ(Q.back(), '"');
}

TEST(JsonWriterTest, KeysAndValuesShareTheEscaper) {
  JsonWriter W;
  W.beginObject();
  W.key("pa\"th");
  W.value("a\nb");
  W.key("nested");
  W.beginArray();
  W.value(std::string_view("\x02", 1));
  W.endArray();
  W.endObject();
  std::string Doc = W.take();
  EXPECT_EQ(Doc, "{\"pa\\\"th\": \"a\\nb\",\"nested\": [\"\\u0002\"]}");
  std::string Err;
  EXPECT_TRUE(validateJson(Doc, Err)) << Err;
}

TEST(JsonWriterTest, HostileBytesEverywhereStillValidate) {
  // One document using every writer entry point with adversarial strings.
  std::string Hostile;
  for (int C = 0; C < 256; ++C)
    Hostile.push_back(static_cast<char>(C));
  JsonWriter W;
  W.beginObject();
  W.member("all_bytes", std::string_view(Hostile));
  W.key(Hostile);
  W.value(int64_t(-7));
  W.member("flag", true);
  W.key("null");
  W.valueNull();
  W.endObject();
  std::string Doc = W.take();
  std::string Err;
  EXPECT_TRUE(validateJson(Doc, Err)) << Err;
}

} // namespace
