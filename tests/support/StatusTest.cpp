//===- tests/support/StatusTest.cpp ----------------------------------------===//
//
// Part of the Cable reproduction of "Debugging Temporal Specifications with
// Concept Analysis" (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/Budget.h"
#include "support/Status.h"

#include <gtest/gtest.h>

#include <thread>

using namespace cable;

TEST(DiagnosticTest, RenderFullPosition) {
  Diagnostic D;
  D.Level = Severity::Error;
  D.Code = ErrorCode::ParseError;
  D.File = "traces.txt";
  D.Pos.Line = 3;
  D.Pos.Col = 7;
  D.Message = "bad value token 'zz'";
  EXPECT_EQ(D.render(),
            "traces.txt:3:7: error: bad value token 'zz' [parse-error]");
}

TEST(DiagnosticTest, RenderOmitsAbsentParts) {
  Diagnostic D;
  D.Level = Severity::Warning;
  D.Code = ErrorCode::ResourceExhausted;
  D.Message = "budget exceeded";
  // No file, no position: just severity + message + code.
  EXPECT_EQ(D.render(), "warning: budget exceeded [resource-exhausted]");

  D.Pos.Line = 2; // Line without column.
  D.File = "f";
  EXPECT_EQ(D.render(), "f:2: warning: budget exceeded [resource-exhausted]");
}

TEST(DiagnosticTest, PositionValidity) {
  SourcePos P;
  EXPECT_FALSE(P.valid());
  P.Line = 1;
  EXPECT_TRUE(P.valid());
  EXPECT_FALSE(P.hasCol());
  P.Col = 1;
  EXPECT_TRUE(P.hasCol());
}

TEST(StatusTest, OkByDefault) {
  Status S;
  EXPECT_TRUE(S.isOk());
  EXPECT_TRUE(static_cast<bool>(S));
  EXPECT_EQ(S.code(), ErrorCode::Ok);
  EXPECT_EQ(S.message(), "");
  EXPECT_EQ(S.render(), "ok");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status S = Status::error(ErrorCode::InvalidArgument, "no such thing");
  EXPECT_FALSE(S.isOk());
  EXPECT_EQ(S.code(), ErrorCode::InvalidArgument);
  EXPECT_EQ(S.message(), "no such thing");
  EXPECT_EQ(S.render(), "error: no such thing [invalid-argument]");
}

TEST(StatusTest, StatusOrValueAndError) {
  StatusOr<int> Good = 42;
  ASSERT_TRUE(Good.isOk());
  EXPECT_EQ(*Good, 42);

  StatusOr<int> Bad = Status::error(ErrorCode::NotFound, "missing");
  EXPECT_FALSE(Bad.isOk());
  EXPECT_EQ(Bad.status().code(), ErrorCode::NotFound);
}

TEST(BudgetTest, DefaultIsUnlimited) {
  Budget B;
  EXPECT_TRUE(B.unlimited());
  BudgetMeter M(B);
  EXPECT_FALSE(M.expired());
  EXPECT_FALSE(M.wasCancelled());
}

TEST(BudgetTest, ZeroDeadlineExpiresImmediately) {
  Budget B;
  B.TimeLimit = std::chrono::milliseconds(0);
  BudgetMeter M(B);
  EXPECT_TRUE(M.expired());
  // Sticky: stays expired.
  EXPECT_TRUE(M.expired());
  Status S = M.stopStatus("op");
  EXPECT_EQ(S.code(), ErrorCode::ResourceExhausted);
  EXPECT_NE(S.message().find("op exceeded the time budget"),
            std::string::npos);
}

TEST(BudgetTest, CancelLatchesAndReportsCancelled) {
  Budget B; // Unlimited: only cancel() can stop it.
  BudgetMeter M(B);
  EXPECT_FALSE(M.expired());
  M.cancel();
  EXPECT_TRUE(M.expired());
  EXPECT_TRUE(M.wasCancelled());
  EXPECT_EQ(M.stopStatus("op").code(), ErrorCode::Cancelled);
}

TEST(BudgetTest, DeadlineExpiresAfterSleep) {
  Budget B;
  B.TimeLimit = std::chrono::milliseconds(5);
  BudgetMeter M(B);
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_TRUE(M.expired());
  EXPECT_GE(M.elapsed().count(), 5);
}

TEST(ErrorCodeTest, NamesAreKebabCase) {
  EXPECT_STREQ(errorCodeName(ErrorCode::Ok), "ok");
  EXPECT_STREQ(errorCodeName(ErrorCode::InvalidArgument), "invalid-argument");
  EXPECT_STREQ(errorCodeName(ErrorCode::ParseError), "parse-error");
  EXPECT_STREQ(errorCodeName(ErrorCode::NotFound), "not-found");
  EXPECT_STREQ(errorCodeName(ErrorCode::ResourceExhausted),
               "resource-exhausted");
  EXPECT_STREQ(errorCodeName(ErrorCode::Cancelled), "cancelled");
  EXPECT_STREQ(errorCodeName(ErrorCode::IoError), "io-error");
  EXPECT_STREQ(errorCodeName(ErrorCode::Internal), "internal");
}
