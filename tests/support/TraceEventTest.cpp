//===- tests/support/TraceEventTest.cpp - Tracing span tests ---------------===//
//
// Part of the Cable reproduction of "Debugging Temporal Specifications with
// Concept Analysis" (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/Json.h"
#include "support/Metrics.h"
#include "support/TraceEvent.h"

#include <gtest/gtest.h>

#include <thread>

using namespace cable;

namespace {

/// Arms tracing for one test and restores the disarmed default.
class TraceEventTest : public ::testing::Test {
protected:
  void SetUp() override {
    TraceLog::reset();
    TraceLog::setEnabled(true);
  }
  void TearDown() override {
    TraceLog::setEnabled(false);
    TraceLog::setRingCapacity(65536);
    TraceLog::reset();
  }
};

TEST_F(TraceEventTest, DisarmedSpansRecordNothing) {
  TraceLog::setEnabled(false);
  uint64_t Before = TraceLog::spanCount();
  { TraceSpan Span("should-not-appear"); }
  EXPECT_EQ(TraceLog::spanCount(), Before);
}

TEST_F(TraceEventTest, ExportIsValidChromeTraceJson) {
  TraceLog::setThreadName("test-main");
  { TraceSpan Span("outer-span", 42); }
  std::string Json = TraceLog::exportJson("trace-test");
  std::string Error;
  EXPECT_TRUE(validateJson(Json, Error)) << Error << "\n" << Json;
  // The object form chrome://tracing and Perfetto accept.
  EXPECT_NE(Json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(Json.find("\"otherData\""), std::string::npos);
  EXPECT_NE(Json.find("\"outer-span\""), std::string::npos);
  // The integer argument is exported as args.n.
  EXPECT_NE(Json.find("\"n\": 42"), std::string::npos) << Json;
  // Thread-name metadata event.
  EXPECT_NE(Json.find("\"thread_name\""), std::string::npos);
  EXPECT_NE(Json.find("\"test-main\""), std::string::npos);
}

TEST_F(TraceEventTest, NestedSpansBothRecorded) {
  uint64_t Before = TraceLog::spanCount();
  {
    TraceSpan Outer("nest-outer");
    { TraceSpan Inner("nest-inner"); }
  }
  EXPECT_EQ(TraceLog::spanCount(), Before + 2);
  std::string Json = TraceLog::exportJson("trace-test");
  // Completion order: the inner span closes (and is recorded) first.
  size_t InnerAt = Json.find("\"nest-inner\"");
  size_t OuterAt = Json.find("\"nest-outer\"");
  ASSERT_NE(InnerAt, std::string::npos);
  ASSERT_NE(OuterAt, std::string::npos);
  EXPECT_LT(InnerAt, OuterAt);
}

TEST_F(TraceEventTest, RingWraparoundCountsDropped) {
  TraceLog::setRingCapacity(4);
  uint64_t SpansBefore = TraceLog::spanCount();
  uint64_t DroppedBefore = TraceLog::droppedCount();
  // Capacity changes apply to rings created after the call, so record
  // from a fresh thread.
  std::thread Recorder([] {
    for (int I = 0; I < 10; ++I)
      TraceSpan Span("wrap-span");
  });
  Recorder.join();
  EXPECT_EQ(TraceLog::spanCount() - SpansBefore, 10u);
  EXPECT_EQ(TraceLog::droppedCount() - DroppedBefore, 6u);
  // The export still holds the newest 4 and stays valid JSON.
  std::string Json = TraceLog::exportJson("trace-test");
  std::string Error;
  EXPECT_TRUE(validateJson(Json, Error)) << Error;
  EXPECT_NE(Json.find("\"wrap-span\""), std::string::npos);
}

TEST_F(TraceEventTest, SpansFromWorkerThreadsGetDistinctTids) {
  { TraceSpan Span("main-span"); }
  std::thread Worker([] {
    TraceLog::setThreadName("worker-thread");
    TraceSpan Span("worker-span");
  });
  Worker.join();
  std::string Json = TraceLog::exportJson("trace-test");
  EXPECT_NE(Json.find("\"main-span\""), std::string::npos);
  EXPECT_NE(Json.find("\"worker-span\""), std::string::npos);
  EXPECT_NE(Json.find("\"worker-thread\""), std::string::npos);
}

// -- Cross-process stitching (drain / ingest / flow events) ---------------

TEST_F(TraceEventTest, RingWraparoundTicksSpansDroppedCounter) {
  Metrics::reset();
  Metrics::setEnabled(true);
  TraceLog::setRingCapacity(4);
  std::thread Recorder([] {
    for (int I = 0; I < 10; ++I)
      TraceSpan Span("drop-counter-span");
  });
  Recorder.join();
  EXPECT_EQ(Metrics::counterValue("trace.spans-dropped"), 6u);
  Metrics::setEnabled(false);
  Metrics::reset();
}

TEST_F(TraceEventTest, DrainSpansEmptiesRingsAndCarriesMetadata) {
  TraceLog::setThreadName("drain-thread");
  { TraceSpan Span("drain-span", 17); }
  TraceLog::recordFlow(99, 't');
  std::vector<TraceLog::RawSpan> Spans = TraceLog::drainSpans();
  ASSERT_EQ(Spans.size(), 2u);
  EXPECT_EQ(Spans[0].Name, "drain-span");
  EXPECT_EQ(Spans[0].Arg, 17);
  EXPECT_TRUE(Spans[0].HasArg);
  EXPECT_EQ(Spans[0].FlowPhase, 0);
  EXPECT_EQ(Spans[0].ThreadName, "drain-thread");
  EXPECT_EQ(Spans[1].FlowPhase, 't');
  EXPECT_EQ(Spans[1].FlowId, 99u);
  // A second drain finds the rings empty; the cumulative span count
  // survives the drain.
  EXPECT_TRUE(TraceLog::drainSpans().empty());
  EXPECT_GE(TraceLog::spanCount(), 2u);
}

TEST_F(TraceEventTest, IngestRemoteExportsPerPidTracks) {
  { TraceSpan Span("supervisor-span"); }
  TraceLog::RawSpan Remote;
  Remote.Name = "remote-span";
  Remote.StartUs = 5;
  Remote.DurUs = 10;
  Remote.Tid = 0;
  Remote.ThreadName = "remote-main";
  TraceLog::ingestRemote(4242, "shard-worker-0", {Remote});
  std::string Json = TraceLog::exportJson("trace-test");
  std::string Error;
  EXPECT_TRUE(validateJson(Json, Error)) << Error << "\n" << Json;
  EXPECT_NE(Json.find("\"remote-span\""), std::string::npos);
  EXPECT_NE(Json.find("\"pid\": 4242"), std::string::npos) << Json;
  EXPECT_NE(Json.find("\"shard-worker-0\""), std::string::npos);
  EXPECT_NE(Json.find("\"process_name\""), std::string::npos);
  EXPECT_NE(Json.find("\"remote-main\""), std::string::npos);
}

TEST_F(TraceEventTest, FlowEventsExportWithSharedIdAndBindingPoint) {
  {
    TraceSpan Dispatch("flow-dispatch");
    TraceLog::recordFlow(7, 's');
  }
  TraceLog::RawSpan Step;
  Step.Name = "shard-flow";
  Step.StartUs = 3;
  Step.FlowPhase = 't';
  Step.FlowId = 7;
  TraceLog::ingestRemote(999, "shard-worker-1", {Step});
  {
    TraceSpan Merge("flow-merge");
    TraceLog::recordFlow(7, 'f');
  }
  std::string Json = TraceLog::exportJson("trace-test");
  std::string Error;
  EXPECT_TRUE(validateJson(Json, Error)) << Error << "\n" << Json;
  EXPECT_NE(Json.find("\"ph\": \"s\""), std::string::npos) << Json;
  EXPECT_NE(Json.find("\"ph\": \"t\""), std::string::npos);
  EXPECT_NE(Json.find("\"ph\": \"f\""), std::string::npos);
  // The flow finish must carry bp:e so Perfetto binds it to the
  // enclosing slice rather than the next one.
  EXPECT_NE(Json.find("\"bp\": \"e\""), std::string::npos) << Json;
  EXPECT_NE(Json.find("\"id\": 7"), std::string::npos);
  EXPECT_NE(Json.find("\"cat\": \"shard\""), std::string::npos);
}

TEST_F(TraceEventTest, IngestRemoteFoldsRemoteDropsIntoDroppedCount) {
  uint64_t Before = TraceLog::droppedCount();
  TraceLog::ingestRemote(777, "shard-worker-2", {}, 5);
  EXPECT_EQ(TraceLog::droppedCount() - Before, 5u);
}

TEST_F(TraceEventTest, ResetAfterForkClearsLocalAndForeignSpans) {
  { TraceSpan Span("pre-fork-span"); }
  TraceLog::RawSpan Remote;
  Remote.Name = "pre-fork-foreign";
  TraceLog::ingestRemote(31337, "shard-worker-3", {Remote});
  TraceLog::resetAfterFork();
  EXPECT_TRUE(TraceLog::drainSpans().empty());
  std::string Json = TraceLog::exportJson("trace-test");
  EXPECT_EQ(Json.find("pre-fork-span"), std::string::npos);
  EXPECT_EQ(Json.find("pre-fork-foreign"), std::string::npos);
  // The log stays usable after the clear.
  { TraceSpan Span("post-fork-span"); }
  EXPECT_NE(TraceLog::exportJson("t").find("post-fork-span"),
            std::string::npos);
}

} // namespace
