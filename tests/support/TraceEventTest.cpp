//===- tests/support/TraceEventTest.cpp - Tracing span tests ---------------===//
//
// Part of the Cable reproduction of "Debugging Temporal Specifications with
// Concept Analysis" (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/Json.h"
#include "support/TraceEvent.h"

#include <gtest/gtest.h>

#include <thread>

using namespace cable;

namespace {

/// Arms tracing for one test and restores the disarmed default.
class TraceEventTest : public ::testing::Test {
protected:
  void SetUp() override {
    TraceLog::reset();
    TraceLog::setEnabled(true);
  }
  void TearDown() override {
    TraceLog::setEnabled(false);
    TraceLog::setRingCapacity(65536);
    TraceLog::reset();
  }
};

TEST_F(TraceEventTest, DisarmedSpansRecordNothing) {
  TraceLog::setEnabled(false);
  uint64_t Before = TraceLog::spanCount();
  { TraceSpan Span("should-not-appear"); }
  EXPECT_EQ(TraceLog::spanCount(), Before);
}

TEST_F(TraceEventTest, ExportIsValidChromeTraceJson) {
  TraceLog::setThreadName("test-main");
  { TraceSpan Span("outer-span", 42); }
  std::string Json = TraceLog::exportJson("trace-test");
  std::string Error;
  EXPECT_TRUE(validateJson(Json, Error)) << Error << "\n" << Json;
  // The object form chrome://tracing and Perfetto accept.
  EXPECT_NE(Json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(Json.find("\"otherData\""), std::string::npos);
  EXPECT_NE(Json.find("\"outer-span\""), std::string::npos);
  // The integer argument is exported as args.n.
  EXPECT_NE(Json.find("\"n\": 42"), std::string::npos) << Json;
  // Thread-name metadata event.
  EXPECT_NE(Json.find("\"thread_name\""), std::string::npos);
  EXPECT_NE(Json.find("\"test-main\""), std::string::npos);
}

TEST_F(TraceEventTest, NestedSpansBothRecorded) {
  uint64_t Before = TraceLog::spanCount();
  {
    TraceSpan Outer("nest-outer");
    { TraceSpan Inner("nest-inner"); }
  }
  EXPECT_EQ(TraceLog::spanCount(), Before + 2);
  std::string Json = TraceLog::exportJson("trace-test");
  // Completion order: the inner span closes (and is recorded) first.
  size_t InnerAt = Json.find("\"nest-inner\"");
  size_t OuterAt = Json.find("\"nest-outer\"");
  ASSERT_NE(InnerAt, std::string::npos);
  ASSERT_NE(OuterAt, std::string::npos);
  EXPECT_LT(InnerAt, OuterAt);
}

TEST_F(TraceEventTest, RingWraparoundCountsDropped) {
  TraceLog::setRingCapacity(4);
  uint64_t SpansBefore = TraceLog::spanCount();
  uint64_t DroppedBefore = TraceLog::droppedCount();
  // Capacity changes apply to rings created after the call, so record
  // from a fresh thread.
  std::thread Recorder([] {
    for (int I = 0; I < 10; ++I)
      TraceSpan Span("wrap-span");
  });
  Recorder.join();
  EXPECT_EQ(TraceLog::spanCount() - SpansBefore, 10u);
  EXPECT_EQ(TraceLog::droppedCount() - DroppedBefore, 6u);
  // The export still holds the newest 4 and stays valid JSON.
  std::string Json = TraceLog::exportJson("trace-test");
  std::string Error;
  EXPECT_TRUE(validateJson(Json, Error)) << Error;
  EXPECT_NE(Json.find("\"wrap-span\""), std::string::npos);
}

TEST_F(TraceEventTest, SpansFromWorkerThreadsGetDistinctTids) {
  { TraceSpan Span("main-span"); }
  std::thread Worker([] {
    TraceLog::setThreadName("worker-thread");
    TraceSpan Span("worker-span");
  });
  Worker.join();
  std::string Json = TraceLog::exportJson("trace-test");
  EXPECT_NE(Json.find("\"main-span\""), std::string::npos);
  EXPECT_NE(Json.find("\"worker-span\""), std::string::npos);
  EXPECT_NE(Json.find("\"worker-thread\""), std::string::npos);
}

} // namespace
