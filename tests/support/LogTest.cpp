//===- tests/support/LogTest.cpp - Structured logging tests ----------------===//
//
// Part of the Cable reproduction of "Debugging Temporal Specifications with
// Concept Analysis" (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//
//
// This file lives in cable_parallel_tests so the concurrent-emit test runs
// under -DCABLE_SANITIZE=thread: the armed path's contract is per-thread
// rings that are lock-free against each other, which TSan verifies has no
// data race rather than a benign one.
//
//===----------------------------------------------------------------------===//

#include "support/Json.h"
#include "support/Log.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

using namespace cable;

namespace {

/// Arms structured logging for one test and restores the disarmed default
/// (other tests in this binary assume instrumentation is off). The
/// registry has no dedicated test reset; resetAfterFork clears exactly
/// the state a test can leave behind (local rings, foreign batches, the
/// crash ring) so it doubles as the fixture scrub.
class LogTest : public ::testing::Test {
protected:
  void SetUp() override {
    Log::resetAfterFork();
    Log::setLevel(Log::Level::Info);
    Log::setEnabled(true);
  }
  void TearDown() override {
    Log::setEnabled(false);
    Log::setCrashCapture(false);
    Log::resetAfterFork();
    Log::setLevel(Log::Level::Info);
  }
};

/// Splits JSONL into its non-empty lines.
std::vector<std::string> lines(const std::string &Doc) {
  std::vector<std::string> Out;
  size_t At = 0;
  while (At < Doc.size()) {
    size_t Nl = Doc.find('\n', At);
    if (Nl == std::string::npos)
      Nl = Doc.size();
    if (Nl > At)
      Out.push_back(Doc.substr(At, Nl - At));
    At = Nl + 1;
  }
  return Out;
}

TEST_F(LogTest, DisarmedEmitIsDropped) {
  Log::setEnabled(false);
  CABLE_LOG_WARN("test", "test-disarmed", "must not be recorded");
  Log::emit(Log::Level::Error, "test", "test-disarmed-direct", "nor this");
  EXPECT_TRUE(Log::drainRecords().empty());
}

TEST_F(LogTest, ArmedRecordsCarryMonotonicSeqAndFields) {
  CABLE_LOG_INFO("cache", "cache-miss", "first",
                 {Log::str("key", "k1"), Log::num("bytes", 42)});
  CABLE_LOG_WARN("shard", "shard-worker-crashed", "second");
  CABLE_LOG_ERROR("journal", "journal-torn-tail", "third");

  std::vector<Log::Record> Recs = Log::drainRecords();
  ASSERT_EQ(Recs.size(), 3u);
  EXPECT_LT(Recs[0].Seq, Recs[1].Seq);
  EXPECT_LT(Recs[1].Seq, Recs[2].Seq);
  EXPECT_EQ(Recs[0].Event, "cache-miss");
  EXPECT_EQ(Recs[0].Subsystem, "cache");
  EXPECT_GT(Recs[0].Tid, 0u);
  ASSERT_EQ(Recs[0].Fields.size(), 2u);
  EXPECT_EQ(Recs[0].Fields[0].Key, "key");
  EXPECT_EQ(Recs[0].Fields[0].Value, "k1");
  EXPECT_FALSE(Recs[0].Fields[0].Numeric);
  EXPECT_EQ(Recs[0].Fields[1].Value, "42");
  EXPECT_TRUE(Recs[0].Fields[1].Numeric);
  EXPECT_EQ(Recs[1].Lvl, Log::Level::Warn);
  EXPECT_EQ(Recs[2].Lvl, Log::Level::Error);

  // Drained means drained: a second drain is empty.
  EXPECT_TRUE(Log::drainRecords().empty());
}

TEST_F(LogTest, LevelThresholdFiltersAtEmit) {
  Log::setLevel(Log::Level::Warn);
  CABLE_LOG_INFO("test", "test-below", "dropped at the emit site");
  CABLE_LOG_WARN("test", "test-at", "kept");
  CABLE_LOG_ERROR("test", "test-above", "kept");

  std::vector<Log::Record> Recs = Log::drainRecords();
  ASSERT_EQ(Recs.size(), 2u);
  EXPECT_EQ(Recs[0].Event, "test-at");
  EXPECT_EQ(Recs[1].Event, "test-above");
}

TEST_F(LogTest, ParseLevelAcceptsCanonicalNamesOnly) {
  Log::Level L;
  ASSERT_TRUE(Log::parseLevel("debug", L));
  EXPECT_EQ(L, Log::Level::Debug);
  ASSERT_TRUE(Log::parseLevel("warn", L));
  EXPECT_EQ(L, Log::Level::Warn);
  ASSERT_TRUE(Log::parseLevel("warning", L));
  EXPECT_EQ(L, Log::Level::Warn);
  ASSERT_TRUE(Log::parseLevel("error", L));
  EXPECT_EQ(L, Log::Level::Error);
  EXPECT_FALSE(Log::parseLevel("", L));
  EXPECT_FALSE(Log::parseLevel("WARN", L));
  EXPECT_FALSE(Log::parseLevel("verbose", L));
}

TEST_F(LogTest, WireRoundTripPreservesEveryMember) {
  std::vector<Log::Record> In(2);
  In[0].Seq = 7;
  In[0].TimeUs = 123456;
  In[0].Lvl = Log::Level::Warn;
  In[0].Event = "cache-verify-failed";
  In[0].Subsystem = "cache";
  In[0].Msg = "stored artifact failed verification";
  In[0].Fields = {Log::str("key", "abc"), Log::num("bytes", -3)};
  In[0].Tid = 2;
  In[1].Seq = 9;
  In[1].TimeUs = 123999;
  In[1].Lvl = Log::Level::Error;
  In[1].Event = "failpoint-crash";
  In[1].Subsystem = "failpoint";
  In[1].Msg = "";
  In[1].Tid = 1;

  std::string Wire = Log::encodeRecords(In);
  std::vector<Log::Record> Out;
  ASSERT_TRUE(Log::decodeRecords(Wire, Out));
  ASSERT_EQ(Out.size(), 2u);
  EXPECT_EQ(Out[0].Seq, 7u);
  EXPECT_EQ(Out[0].TimeUs, 123456u);
  EXPECT_EQ(Out[0].Lvl, Log::Level::Warn);
  EXPECT_EQ(Out[0].Event, "cache-verify-failed");
  EXPECT_EQ(Out[0].Subsystem, "cache");
  EXPECT_EQ(Out[0].Msg, "stored artifact failed verification");
  ASSERT_EQ(Out[0].Fields.size(), 2u);
  EXPECT_EQ(Out[0].Fields[0].Key, "key");
  EXPECT_EQ(Out[0].Fields[0].Value, "abc");
  EXPECT_FALSE(Out[0].Fields[0].Numeric);
  EXPECT_EQ(Out[0].Fields[1].Value, "-3");
  EXPECT_TRUE(Out[0].Fields[1].Numeric);
  EXPECT_EQ(Out[0].Tid, 2u);
  EXPECT_EQ(Out[1].Event, "failpoint-crash");
  EXPECT_EQ(Out[1].Msg, "");

  // Empty batch round-trips too (the common fault-free flush).
  std::string Empty = Log::encodeRecords({});
  ASSERT_TRUE(Log::decodeRecords(Empty, Out));
  EXPECT_TRUE(Out.empty());
}

TEST_F(LogTest, DecodeIsStrictAboutTruncationAndTrailingBytes) {
  std::vector<Log::Record> In(1);
  In[0].Seq = 1;
  In[0].Event = "cache-hit";
  In[0].Subsystem = "cache";
  In[0].Msg = "m";
  In[0].Fields = {Log::str("key", "k")};
  std::string Wire = Log::encodeRecords(In);
  std::vector<Log::Record> Out;

  // Every proper prefix is a truncated frame and must be rejected.
  for (size_t Len = 0; Len < Wire.size(); ++Len)
    EXPECT_FALSE(Log::decodeRecords(std::string_view(Wire.data(), Len), Out))
        << "prefix of " << Len << " bytes accepted";

  // Exact-consume: one trailing byte is corruption, not slack.
  EXPECT_FALSE(Log::decodeRecords(Wire + '\0', Out));

  // Out-of-range level byte (offset 4 count + 8 seq + 8 time).
  std::string BadLevel = Wire;
  BadLevel[20] = 9;
  EXPECT_FALSE(Log::decodeRecords(BadLevel, Out));

  // The pristine frame still decodes after all that prodding.
  EXPECT_TRUE(Log::decodeRecords(Wire, Out));
}

TEST_F(LogTest, ExportMergesRemoteRecordsByPidThenSeq) {
  CABLE_LOG_INFO("test", "test-local-a", "local one");
  CABLE_LOG_INFO("test", "test-local-b", "local two");

  std::vector<Log::Record> Remote(2);
  Remote[0].Seq = 5;
  Remote[0].Event = "test-remote-late";
  Remote[0].Subsystem = "test";
  Remote[1].Seq = 2;
  Remote[1].Event = "test-remote-early";
  Remote[1].Subsystem = "test";
  // A pid above any real one so the foreign block sorts after local.
  Log::ingestRemote(1 << 30, std::move(Remote), 3);

  std::string Doc = Log::exportJsonl("spec-lint");
  std::vector<std::string> Ls = lines(Doc);
  ASSERT_EQ(Ls.size(), 5u); // header + 2 local + 2 remote

  std::string Err;
  for (const std::string &L : Ls)
    EXPECT_TRUE(validateJson(L, Err)) << Err << "\n" << L;

  EXPECT_NE(Ls[0].find("\"schema\":\"cable-log/1\""), std::string::npos);
  EXPECT_NE(Ls[0].find("\"tool\":\"spec-lint\""), std::string::npos);
  // The ingested drop delta is folded into the header's counter.
  EXPECT_NE(Ls[0].find("\"dropped\":"), std::string::npos);
  EXPECT_NE(Ls[1].find("test-local-a"), std::string::npos);
  EXPECT_NE(Ls[2].find("test-local-b"), std::string::npos);
  // Foreign pid block last, reordered by seq within the pid.
  EXPECT_NE(Ls[3].find("test-remote-early"), std::string::npos);
  EXPECT_NE(Ls[4].find("test-remote-late"), std::string::npos);
  EXPECT_NE(Ls[3].find("\"pid\":" + std::to_string(1 << 30)),
            std::string::npos);
}

TEST_F(LogTest, ExportedLinesAreAsciiJsonEvenWithHostileBytes) {
  std::string Hostile = "quote\" slash\\ ctl\x01 nl\n high\xff\xc3\xa9";
  CABLE_LOG_WARN("test", "test-hostile", Hostile,
                 {Log::str("path", Hostile)});

  std::string Doc = Log::exportJsonl("cable-cli");
  std::string Err;
  for (const std::string &L : lines(Doc))
    ASSERT_TRUE(validateJson(L, Err)) << Err << "\n" << L;
  // Stricter than JsonWriter: every byte >= 0x7F is hex-escaped so the
  // log is pure ASCII no matter what the message carried.
  for (unsigned char C : Doc)
    EXPECT_LT(C, 0x7Fu);
  EXPECT_NE(Doc.find("\\u00ff"), std::string::npos);
}

TEST_F(LogTest, CrashRingCapturesParseableLinesWithoutStructuredArming) {
  Log::setEnabled(false);
  Log::setCrashCapture(true);
  CABLE_LOG_ERROR("failpoint", "failpoint-crash", "injected crash",
                  {Log::str("name", "cache-publish")});

  char Buf[8192];
  size_t N = Log::copyCrashRecords(Buf, sizeof(Buf));
  ASSERT_GT(N, 0u);
  std::string Captured(Buf, N);
  EXPECT_NE(Captured.find("failpoint-crash"), std::string::npos);
  EXPECT_NE(Captured.find("cache-publish"), std::string::npos);
  std::string Err;
  for (const std::string &L : lines(Captured))
    EXPECT_TRUE(validateJson(L, Err)) << Err << "\n" << L;

  // A buffer too small for one whole line gets nothing, never a torn
  // prefix — the dump must stay parseable.
  EXPECT_EQ(Log::copyCrashRecords(Buf, 8), 0u);
}

TEST_F(LogTest, ConcurrentEmittersKeepDistinctSeqs) {
  constexpr int kThreads = 4;
  constexpr int kPerThread = 64;
  std::vector<std::thread> Workers;
  for (int T = 0; T < kThreads; ++T)
    Workers.emplace_back([T] {
      for (int I = 0; I < kPerThread; ++I)
        CABLE_LOG_INFO("test", "test-concurrent", "t" + std::to_string(T));
    });
  for (std::thread &W : Workers)
    W.join();

  std::vector<Log::Record> Recs = Log::drainRecords();
  ASSERT_EQ(Recs.size(), static_cast<size_t>(kThreads * kPerThread));
  for (size_t I = 1; I < Recs.size(); ++I)
    EXPECT_LT(Recs[I - 1].Seq, Recs[I].Seq); // drained sorted, all unique
}

} // namespace
