//===- tests/support/ThreadPoolTest.cpp ------------------------------------===//
//
// Part of the Cable reproduction of "Debugging Temporal Specifications with
// Concept Analysis" (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//
//
// The three properties the parallel lattice builder leans on: static task
// assignment makes results independent of the thread count, exceptions
// propagate out of workers deterministically, and shutdown drains queued
// work instead of dropping it.
//
//===----------------------------------------------------------------------===//

#include "support/ThreadPool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <numeric>
#include <stdexcept>
#include <thread>

using namespace cable;

TEST(ThreadPoolTest, ResolveThreadCount) {
  EXPECT_GE(ThreadPool::resolveThreadCount(0), 1u);
  EXPECT_EQ(ThreadPool::resolveThreadCount(1), 1u);
  EXPECT_EQ(ThreadPool::resolveThreadCount(7), 7u);
}

TEST(ThreadPoolTest, SingleThreadRunsInlineOnCaller) {
  ThreadPool Pool(1);
  EXPECT_EQ(Pool.numThreads(), 1u);
  std::thread::id Executor;
  std::future<void> Done =
      Pool.submit([&] { Executor = std::this_thread::get_id(); });
  // Inline execution: the task already ran, on this thread.
  EXPECT_EQ(Done.wait_for(std::chrono::seconds(0)),
            std::future_status::ready);
  EXPECT_EQ(Executor, std::this_thread::get_id());
}

TEST(ThreadPoolTest, SameTaskSetSameResultsAtEveryThreadCount) {
  // Each task writes a pure function of its index into its own slot; the
  // assembled vector must not depend on the worker count.
  constexpr size_t N = 512;
  std::vector<uint64_t> Reference;
  for (unsigned T = 1; T <= 8; ++T) {
    ThreadPool Pool(T);
    std::vector<uint64_t> Results(N, 0);
    std::vector<std::future<void>> Futures;
    for (size_t I = 0; I < N; ++I)
      Futures.push_back(Pool.submit(
          [&Results, I] { Results[I] = I * I + 7 * I + 3; }));
    for (std::future<void> &F : Futures)
      F.get();
    if (T == 1)
      Reference = Results;
    else
      EXPECT_EQ(Results, Reference) << "thread count " << T;
  }
}

TEST(ThreadPoolTest, ParallelForSameResultsAtEveryThreadCount) {
  constexpr size_t N = 1000;
  std::vector<uint64_t> Reference;
  for (unsigned T = 1; T <= 8; ++T) {
    ThreadPool Pool(T);
    std::vector<uint64_t> Results(N, 0);
    Pool.parallelFor(N, [&](size_t Begin, size_t End) {
      for (size_t I = Begin; I < End; ++I)
        Results[I] = (I * 2654435761u) % 1000003;
    });
    if (T == 1)
      Reference = Results;
    else
      EXPECT_EQ(Results, Reference) << "thread count " << T;
  }
}

TEST(ThreadPoolTest, ParallelForCoversEveryIndexExactlyOnce) {
  for (unsigned T : {2u, 3u, 5u, 8u}) {
    for (size_t N : {size_t(0), size_t(1), size_t(7), size_t(64),
                     size_t(1001)}) {
      ThreadPool Pool(T);
      std::vector<std::atomic<uint32_t>> Hits(N);
      Pool.parallelFor(N, [&](size_t Begin, size_t End) {
        for (size_t I = Begin; I < End; ++I)
          Hits[I].fetch_add(1, std::memory_order_relaxed);
      });
      for (size_t I = 0; I < N; ++I)
        ASSERT_EQ(Hits[I].load(), 1u) << "N=" << N << " T=" << T;
    }
  }
}

TEST(ThreadPoolTest, SubmitPropagatesExceptions) {
  for (unsigned T : {1u, 4u}) {
    ThreadPool Pool(T);
    std::future<void> Done =
        Pool.submit([] { throw std::runtime_error("worker failed"); });
    EXPECT_THROW(
        {
          try {
            Done.get();
          } catch (const std::runtime_error &E) {
            EXPECT_STREQ(E.what(), "worker failed");
            throw;
          }
        },
        std::runtime_error);
    // The pool survives a throwing task.
    std::atomic<bool> Ran{false};
    Pool.submit([&] { Ran = true; }).get();
    EXPECT_TRUE(Ran);
  }
}

TEST(ThreadPoolTest, ParallelForRethrowsLowestChunkException) {
  // Every chunk throws, tagged with its begin index; the surfaced error
  // must deterministically be the lowest-indexed chunk's.
  for (unsigned T : {1u, 2u, 4u, 8u}) {
    ThreadPool Pool(T);
    try {
      Pool.parallelFor(64, [](size_t Begin, size_t) {
        throw std::runtime_error(std::to_string(Begin));
      });
      FAIL() << "parallelFor must rethrow";
    } catch (const std::runtime_error &E) {
      EXPECT_STREQ(E.what(), "0") << "thread count " << T;
    }
  }
}

TEST(ThreadPoolTest, ParallelForPartialFailureStillRunsAllChunks) {
  ThreadPool Pool(4);
  std::atomic<size_t> Visited{0};
  try {
    Pool.parallelFor(100, [&](size_t Begin, size_t End) {
      Visited.fetch_add(End - Begin);
      if (Begin == 0)
        throw std::runtime_error("first chunk");
    });
    FAIL() << "parallelFor must rethrow";
  } catch (const std::runtime_error &E) {
    EXPECT_STREQ(E.what(), "first chunk");
  }
  // parallelFor waits for every chunk before rethrowing, so all indices
  // were visited even though one chunk failed.
  EXPECT_EQ(Visited.load(), 100u);
}

TEST(ThreadPoolTest, DestructorDrainsQueuedWork) {
  std::atomic<size_t> Completed{0};
  constexpr size_t NumTasks = 64;
  {
    ThreadPool Pool(2);
    for (size_t I = 0; I < NumTasks; ++I)
      Pool.submit([&Completed] {
        std::this_thread::sleep_for(std::chrono::microseconds(200));
        Completed.fetch_add(1, std::memory_order_relaxed);
      });
    // Destruction with most of the queue still pending.
  }
  EXPECT_EQ(Completed.load(), NumTasks)
      << "shutdown must finish queued tasks, not drop them";
}

TEST(ThreadPoolTest, ManyConcurrentSubmittersSeeEveryTask) {
  // submit must be callable from multiple threads at once (the pool is
  // also used from test drivers that fan out sessions).
  ThreadPool Pool(4);
  std::atomic<size_t> Count{0};
  std::vector<std::thread> Producers;
  constexpr size_t PerProducer = 200;
  std::vector<std::vector<std::future<void>>> Futures(4);
  for (size_t P = 0; P < 4; ++P)
    Producers.emplace_back([&, P] {
      for (size_t I = 0; I < PerProducer; ++I)
        Futures[P].push_back(Pool.submit([&Count] { Count.fetch_add(1); }));
    });
  for (std::thread &Th : Producers)
    Th.join();
  for (std::vector<std::future<void>> &FS : Futures)
    for (std::future<void> &F : FS)
      F.get();
  EXPECT_EQ(Count.load(), 4 * PerProducer);
}
