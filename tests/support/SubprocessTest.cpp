//===- tests/support/SubprocessTest.cpp ------------------------------------===//
//
// Part of the Cable reproduction of "Debugging Temporal Specifications with
// Concept Analysis" (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//
//
// The crash-isolation substrate under the shard supervisor: worker spawn
// and reaping (clean exits, nonzero exits, signal deaths), and the
// CRC-framed wire protocol's refusal to trust damage — torn headers, torn
// payloads, flipped bytes, and wedged peers all come back as error
// Statuses, never as data.
//
//===----------------------------------------------------------------------===//

#include "support/Subprocess.h"

#include "support/AtomicFile.h"
#include "support/Failpoint.h"

#include <gtest/gtest.h>

#include <csignal>
#include <string>

#include <sys/socket.h>
#include <unistd.h>

using namespace cable;

namespace {

/// A connected AF_UNIX socket pair torn down with the test.
struct SocketPair {
  int Fds[2] = {-1, -1};
  SocketPair() { EXPECT_EQ(0, ::socketpair(AF_UNIX, SOCK_STREAM, 0, Fds)); }
  ~SocketPair() {
    if (Fds[0] >= 0)
      ::close(Fds[0]);
    if (Fds[1] >= 0)
      ::close(Fds[1]);
  }
};

TEST(FrameTest, RoundTripsPayloads) {
  SocketPair SP;
  for (const std::string &Payload :
       {std::string(), std::string("x"), std::string("hello frame"),
        std::string(100000, '\xab')}) {
    ASSERT_TRUE(sendFrame(SP.Fds[0], Payload).isOk());
    StatusOr<std::string> Got = recvFrame(SP.Fds[1], 2000);
    ASSERT_TRUE(Got) << Got.status().message();
    EXPECT_EQ(Payload, *Got);
  }
}

TEST(FrameTest, BackToBackFramesStayDelimited) {
  SocketPair SP;
  ASSERT_TRUE(sendFrame(SP.Fds[0], "first").isOk());
  ASSERT_TRUE(sendFrame(SP.Fds[0], "").isOk());
  ASSERT_TRUE(sendFrame(SP.Fds[0], "third").isOk());
  EXPECT_EQ("first", *recvFrame(SP.Fds[1], 2000));
  EXPECT_EQ("", *recvFrame(SP.Fds[1], 2000));
  EXPECT_EQ("third", *recvFrame(SP.Fds[1], 2000));
}

TEST(FrameTest, CleanEofIsPeerClosed) {
  SocketPair SP;
  ::close(SP.Fds[0]);
  SP.Fds[0] = -1;
  StatusOr<std::string> Got = recvFrame(SP.Fds[1], 2000);
  ASSERT_FALSE(Got);
  EXPECT_EQ(ErrorCode::IoError, Got.status().code());
  EXPECT_NE(std::string::npos, Got.status().message().find("peer closed"));
}

TEST(FrameTest, EofInsideHeaderIsTorn) {
  SocketPair SP;
  std::string Frame = encodeFramedRecord("payload");
  ASSERT_TRUE(sendBytes(SP.Fds[0], Frame.data(), 5).isOk());
  ::close(SP.Fds[0]);
  SP.Fds[0] = -1;
  StatusOr<std::string> Got = recvFrame(SP.Fds[1], 2000);
  ASSERT_FALSE(Got);
  EXPECT_NE(std::string::npos, Got.status().message().find("torn frame"));
}

TEST(FrameTest, EofInsidePayloadIsTorn) {
  SocketPair SP;
  std::string Frame = encodeFramedRecord("a long enough payload to cut");
  ASSERT_TRUE(sendBytes(SP.Fds[0], Frame.data(), Frame.size() - 7).isOk());
  ::close(SP.Fds[0]);
  SP.Fds[0] = -1;
  StatusOr<std::string> Got = recvFrame(SP.Fds[1], 2000);
  ASSERT_FALSE(Got);
  EXPECT_NE(std::string::npos, Got.status().message().find("torn frame"));
}

TEST(FrameTest, FlippedPayloadByteFailsTheChecksum) {
  SocketPair SP;
  std::string Frame = encodeFramedRecord("checksummed payload");
  Frame[Frame.size() - 3] ^= 0x40;
  ASSERT_TRUE(sendBytes(SP.Fds[0], Frame.data(), Frame.size()).isOk());
  StatusOr<std::string> Got = recvFrame(SP.Fds[1], 2000);
  ASSERT_FALSE(Got);
  EXPECT_NE(std::string::npos,
            Got.status().message().find("checksum mismatch"));
}

TEST(FrameTest, AbsurdLengthHeaderIsRejectedNotAllocated) {
  SocketPair SP;
  // Length field 0xffffffff: recvFrame must refuse before allocating.
  std::string Header = {'\xff', '\xff', '\xff', '\xff', 0, 0, 0, 0};
  ASSERT_TRUE(sendBytes(SP.Fds[0], Header.data(), Header.size()).isOk());
  StatusOr<std::string> Got = recvFrame(SP.Fds[1], 2000);
  ASSERT_FALSE(Got);
  EXPECT_NE(std::string::npos, Got.status().message().find("wire limit"));
}

TEST(FrameTest, SilentPeerTimesOut) {
  SocketPair SP;
  StatusOr<std::string> Got = recvFrame(SP.Fds[1], 50);
  ASSERT_FALSE(Got);
  EXPECT_EQ(ErrorCode::ResourceExhausted, Got.status().code());
}

TEST(FrameTest, HalfFrameThenSilenceTimesOut) {
  SocketPair SP;
  std::string Frame = encodeFramedRecord("will never finish");
  ASSERT_TRUE(sendBytes(SP.Fds[0], Frame.data(), Frame.size() / 2).isOk());
  StatusOr<std::string> Got = recvFrame(SP.Fds[1], 50);
  ASSERT_FALSE(Got);
  EXPECT_EQ(ErrorCode::ResourceExhausted, Got.status().code());
}

TEST(SubprocessTest, ChildExitCodeIsReported) {
  StatusOr<Subprocess> P = Subprocess::spawn([](int) { return 42; });
  ASSERT_TRUE(P) << P.status().message();
  Subprocess::ExitStatus E = P->wait();
  EXPECT_FALSE(E.Signaled);
  EXPECT_EQ(42, E.Code);
  EXPECT_FALSE(P->running());
}

TEST(SubprocessTest, ChildRunsOverTheSocket) {
  StatusOr<Subprocess> P = Subprocess::spawn([](int Fd) {
    StatusOr<std::string> Req = recvFrame(Fd, 5000);
    if (!Req || *Req != "ping")
      return 1;
    return sendFrame(Fd, "pong").isOk() ? 0 : 2;
  });
  ASSERT_TRUE(P);
  ASSERT_TRUE(sendFrame(P->fd(), "ping").isOk());
  StatusOr<std::string> Reply = recvFrame(P->fd(), 5000);
  ASSERT_TRUE(Reply) << Reply.status().message();
  EXPECT_EQ("pong", *Reply);
  EXPECT_EQ(0, P->wait().Code);
}

TEST(SubprocessTest, SignalDeathIsClassified) {
  StatusOr<Subprocess> P = Subprocess::spawn([](int) {
    ::raise(SIGKILL);
    return 0;
  });
  ASSERT_TRUE(P);
  Subprocess::ExitStatus E = P->wait();
  EXPECT_TRUE(E.Signaled);
  EXPECT_EQ(SIGKILL, E.Code);
}

TEST(SubprocessTest, KillTerminatesAWedgedChild) {
  StatusOr<Subprocess> P = Subprocess::spawn([](int Fd) {
    // Block forever waiting for a request that never comes.
    (void)recvFrame(Fd);
    return 0;
  });
  ASSERT_TRUE(P);
  EXPECT_FALSE(P->tryWait().has_value());
  P->kill();
  Subprocess::ExitStatus E = P->wait();
  EXPECT_TRUE(E.Signaled);
  EXPECT_EQ(SIGKILL, E.Code);
}

TEST(SubprocessTest, ParentSeesEofWhenChildDies) {
  StatusOr<Subprocess> P = Subprocess::spawn([](int) { return 0; });
  ASSERT_TRUE(P);
  StatusOr<std::string> Got = recvFrame(P->fd(), 5000);
  ASSERT_FALSE(Got);
  EXPECT_NE(std::string::npos, Got.status().message().find("peer closed"));
  P->wait();
}

TEST(SubprocessTest, DestructorReapsARunningChild) {
  // Must not leak or block: the destructor SIGKILLs and reaps.
  StatusOr<Subprocess> P = Subprocess::spawn([](int Fd) {
    (void)recvFrame(Fd);
    return 0;
  });
  ASSERT_TRUE(P);
  pid_t Pid = P->pid();
  { Subprocess Doomed = std::move(*P); }
  // The pid is reaped: kill(pid, 0) on a reaped child is ESRCH (unless
  // recycled, which a just-freed pid will not be within this process).
  EXPECT_NE(0, ::kill(Pid, 0));
}

TEST(SubprocessTest, PreForkFailpointErrorBecomesNonzeroExit) {
  ASSERT_TRUE(Failpoint::configure("shard-pre-fork=error").isOk());
  StatusOr<Subprocess> P = Subprocess::spawn([](int) { return 0; });
  ASSERT_TRUE(P);
  Subprocess::ExitStatus E = P->wait();
  Failpoint::reset();
  EXPECT_FALSE(E.Signaled);
  EXPECT_EQ(7, E.Code); // The worker came up broken, not dead.
}

TEST(SubprocessTest, PreForkFailpointCrashKillsOnlyTheChild) {
  ASSERT_TRUE(Failpoint::configure("shard-pre-fork=crash").isOk());
  StatusOr<Subprocess> P = Subprocess::spawn([](int) { return 0; });
  ASSERT_TRUE(P);
  Subprocess::ExitStatus E = P->wait();
  Failpoint::reset();
  EXPECT_FALSE(E.Signaled);
  EXPECT_EQ(Failpoint::kCrashExitCode, E.Code);
  // And the parent is, observably, still here.
}

} // namespace
