//===- tests/support/ArtifactStoreTest.cpp ---------------------------------===//
//
// Part of the Cable reproduction of "Debugging Temporal Specifications with
// Concept Analysis" (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The content-addressed artifact store: publish/load round-trips,
/// quarantine of consumer-rejected artifacts, per-key lock exclusivity
/// and bounded waiting, and the failpoint hooks at each syscall boundary.
///
//===----------------------------------------------------------------------===//

#include "support/ArtifactStore.h"

#include "support/Failpoint.h"
#include "support/Metrics.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <optional>
#include <fstream>
#include <sys/stat.h>
#include <thread>
#include <unistd.h>

using namespace cable;

namespace {

/// A fresh store directory and an armed metric registry per test (the
/// disarmed default is restored on teardown).
class ArtifactStoreTest : public ::testing::Test {
protected:
  void SetUp() override {
    Metrics::reset();
    Metrics::setEnabled(true);
    char Template[] = "/tmp/cable-store-XXXXXX";
    ASSERT_NE(mkdtemp(Template), nullptr);
    Root = Template;
    Store.emplace(Root + "/cache");
    ASSERT_TRUE(Store->prepare().isOk());
  }

  void TearDown() override {
    Metrics::setEnabled(false);
    Metrics::reset();
    std::string Cmd = "rm -rf '" + Root + "'";
    ASSERT_EQ(std::system(Cmd.c_str()), 0);
  }

  bool exists(const std::string &Path) const {
    struct stat St;
    return ::stat(Path.c_str(), &St) == 0;
  }

  std::string Root;
  std::optional<ArtifactStore> Store;
};

Status acceptInto(std::string &Out, std::string_view Bytes) {
  Out.assign(Bytes);
  return Status::ok();
}

} // namespace

TEST_F(ArtifactStoreTest, StoreThenLoadRoundTrips) {
  std::string Payload(100000, 'x');
  Payload[12345] = 'y';
  ASSERT_TRUE(Store->store("k1", Payload).isOk());

  std::string Loaded;
  Status S = Store->load(
      "k1", [&](std::string_view B) { return acceptInto(Loaded, B); });
  ASSERT_TRUE(S.isOk()) << S.message();
  EXPECT_EQ(Loaded, Payload);
  EXPECT_TRUE(exists(Store->artifactPath("k1")));
}

TEST_F(ArtifactStoreTest, MissingKeyIsNotFound) {
  Status S =
      Store->load("absent", [](std::string_view) { return Status::ok(); });
  ASSERT_FALSE(S.isOk());
  EXPECT_EQ(S.diagnostic().Code, ErrorCode::NotFound);
  // A not-found load never quarantines anything.
  EXPECT_FALSE(exists(Store->artifactPath("absent") + ".corrupt.0"));
}

TEST_F(ArtifactStoreTest, RejectedArtifactIsQuarantined) {
  ASSERT_TRUE(Store->store("bad", "garbage").isOk());
  uint64_t QuarantinedBefore = Metrics::counterValue("cache.quarantined");

  Status S = Store->load("bad", [](std::string_view) {
    return Status::error(ErrorCode::ParseError, "rejected by verifier");
  });
  ASSERT_FALSE(S.isOk());
  EXPECT_NE(S.message().find("rejected by verifier"), std::string::npos);

  // The artifact moved aside: key absent, quarantine slot 0 present.
  EXPECT_FALSE(exists(Store->artifactPath("bad")));
  EXPECT_TRUE(exists(Store->artifactPath("bad") + ".corrupt.0"));
  EXPECT_EQ(Metrics::counterValue("cache.quarantined"), QuarantinedBefore + 1);

  // A second poisoned artifact under the same key claims the next slot.
  ASSERT_TRUE(Store->store("bad", "more garbage").isOk());
  Store->load("bad", [](std::string_view) {
    return Status::error(ErrorCode::ParseError, "rejected again");
  });
  EXPECT_TRUE(exists(Store->artifactPath("bad") + ".corrupt.1"));

  // After quarantine the key reads as cold, so callers rebuild.
  Status Again =
      Store->load("bad", [](std::string_view) { return Status::ok(); });
  ASSERT_FALSE(Again.isOk());
  EXPECT_EQ(Again.diagnostic().Code, ErrorCode::NotFound);
}

TEST_F(ArtifactStoreTest, StoreOverwritesAtomically) {
  ASSERT_TRUE(Store->store("k", "old").isOk());
  ASSERT_TRUE(Store->store("k", "new").isOk());
  std::string Loaded;
  ASSERT_TRUE(
      Store
          ->load("k", [&](std::string_view B) { return acceptInto(Loaded, B); })
          .isOk());
  EXPECT_EQ(Loaded, "new");
}

TEST_F(ArtifactStoreTest, LockIsExclusivePerKey) {
  ArtifactStore::KeyLock A =
      Store->lockKey("k", std::chrono::milliseconds(1000));
  ASSERT_TRUE(A.held());

  // A second contender (separate fd, as a separate process would hold)
  // times out against the held lock...
  uint64_t TimeoutsBefore = Metrics::counterValue("cache.lock-timeouts");
  ArtifactStore::KeyLock B = Store->lockKey("k", std::chrono::milliseconds(50));
  EXPECT_FALSE(B.held());
  EXPECT_EQ(Metrics::counterValue("cache.lock-timeouts"), TimeoutsBefore + 1);

  // ...while an unrelated key is immediately free...
  ArtifactStore::KeyLock C =
      Store->lockKey("other", std::chrono::milliseconds(50));
  EXPECT_TRUE(C.held());

  // ...and release hands the key over.
  A.release();
  EXPECT_FALSE(A.held());
  ArtifactStore::KeyLock D = Store->lockKey("k", std::chrono::milliseconds(50));
  EXPECT_TRUE(D.held());
}

TEST_F(ArtifactStoreTest, LockWaitSucceedsWhenHolderReleases) {
  ArtifactStore::KeyLock A =
      Store->lockKey("k", std::chrono::milliseconds(1000));
  ASSERT_TRUE(A.held());

  std::thread Releaser([&A] {
    std::this_thread::sleep_for(std::chrono::milliseconds(60));
    A.release();
  });
  // Bounded wait long enough to observe the release: the waiter acquires
  // instead of timing out.
  ArtifactStore::KeyLock B =
      Store->lockKey("k", std::chrono::milliseconds(5000));
  Releaser.join();
  EXPECT_TRUE(B.held());
}

TEST_F(ArtifactStoreTest, FailpointsCoverEverySyscallBoundary) {
  for (const char *Name : {"cache-serialize", "cache-publish", "cache-lock",
                           "cache-load", "cache-mmap"}) {
    std::vector<std::string> Names = Failpoint::registeredNames();
    EXPECT_NE(std::find(Names.begin(), Names.end(), Name), Names.end())
        << Name;
  }

  // cache-publish=error makes store() fail without publishing.
  ASSERT_TRUE(Failpoint::configure("cache-publish=error@1").isOk());
  EXPECT_FALSE(Store->store("fp", "bytes").isOk());
  EXPECT_FALSE(exists(Store->artifactPath("fp")));
  Failpoint::reset();

  // cache-load=error makes load() fail before touching the file, and the
  // intact artifact is NOT quarantined (the error is ours, not the
  // artifact's).
  ASSERT_TRUE(Store->store("fp", "bytes").isOk());
  ASSERT_TRUE(Failpoint::configure("cache-load=error@1").isOk());
  EXPECT_FALSE(
      Store->load("fp", [](std::string_view) { return Status::ok(); }).isOk());
  Failpoint::reset();
  EXPECT_TRUE(exists(Store->artifactPath("fp")));

  // cache-mmap=error only disables the mmap fast path: load still
  // succeeds through the read() fallback.
  ASSERT_TRUE(Failpoint::configure("cache-mmap=error@1").isOk());
  std::string Loaded;
  EXPECT_TRUE(
      Store
          ->load("fp",
                 [&](std::string_view B) { return acceptInto(Loaded, B); })
          .isOk());
  EXPECT_EQ(Loaded, "bytes");
  Failpoint::reset();

  // cache-lock=error yields an un-held lock instead of blocking.
  ASSERT_TRUE(Failpoint::configure("cache-lock=error@1").isOk());
  EXPECT_FALSE(Store->lockKey("fp", std::chrono::milliseconds(50)).held());
  Failpoint::reset();
}

TEST_F(ArtifactStoreTest, PrepareCreatesNestedDirectories) {
  ArtifactStore Deep(Root + "/a/b/c");
  ASSERT_TRUE(Deep.prepare().isOk());
  ASSERT_TRUE(Deep.store("k", "v").isOk());
  std::string Loaded;
  EXPECT_TRUE(
      Deep.load("k", [&](std::string_view B) { return acceptInto(Loaded, B); })
          .isOk());
  EXPECT_EQ(Loaded, "v");
}
