//===- tests/support/KernelsTest.cpp - Differential kernel battery --------===//
//
// Part of the Cable reproduction of "Debugging Temporal Specifications with
// Concept Analysis" (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//
//
// Every kernel variant (scalar, unrolled, and whichever vector ISA this
// build carries) is checked against an independent bit-at-a-time model:
// exhaustively on all sizes 0..130 bits (covering every tail-word length
// and the 1-word/2-word/3-word boundaries) over a fixed pattern alphabet,
// then on 10k seeded-random pairs. Read kernels are additionally fed
// deliberately dirty tail words to prove TailMask keeps garbage past
// size() out of every verdict.
//
//===----------------------------------------------------------------------===//

#include "support/simd/Kernels.h"

#include "gtest/gtest.h"

#include <cstdint>
#include <random>
#include <string>
#include <vector>

using namespace cable;
using namespace cable::simd;

namespace {

struct NamedTable {
  const char *Label;
  const KernelOps *Ops;
};

// Every kernel table compiled into this binary. The vector table is only
// exercised when the host CPU can actually run it.
std::vector<NamedTable> allTables() {
  std::vector<NamedTable> T = {{"scalar", &detail::scalarOps()},
                               {"unrolled", &detail::unrolledOps()}};
#ifdef CABLE_KERNELS_HAVE_AVX2
  if (maxSupportedLevel() == Level::Vector)
    T.push_back({"avx2", &detail::avx2Ops()});
#endif
#ifdef CABLE_KERNELS_HAVE_NEON
  if (maxSupportedLevel() == Level::Vector)
    T.push_back({"neon", &detail::neonOps()});
#endif
  return T;
}

size_t wordsFor(size_t NumBits) { return (NumBits + 63) / 64; }

uint64_t tailMaskFor(size_t NumBits) {
  size_t Tail = NumBits % 64;
  return Tail == 0 ? ~uint64_t(0) : (uint64_t(1) << Tail) - 1;
}

using Words = std::vector<uint64_t>;

bool bitOf(const Words &W, size_t I) { return (W[I / 64] >> (I % 64)) & 1; }

void setBit(Words &W, size_t I) { W[I / 64] |= uint64_t(1) << (I % 64); }

// The independent model: plain bit loops over the logical size, written
// without reference to any kernel code.
bool refIsSubset(const Words &A, const Words &B, size_t NumBits) {
  for (size_t I = 0; I < NumBits; ++I)
    if (bitOf(A, I) && !bitOf(B, I))
      return false;
  return true;
}

bool refIntersects(const Words &A, const Words &B, size_t NumBits) {
  for (size_t I = 0; I < NumBits; ++I)
    if (bitOf(A, I) && bitOf(B, I))
      return true;
  return false;
}

size_t refPopcount(const Words &A, size_t NumBits) {
  size_t N = 0;
  for (size_t I = 0; I < NumBits; ++I)
    N += bitOf(A, I);
  return N;
}

enum class WordOp { And, Or, Xor, AndNot };

Words refWordOp(WordOp Op, Words Dst, const Words &Src) {
  for (size_t I = 0; I < Dst.size(); ++I) {
    switch (Op) {
    case WordOp::And:
      Dst[I] &= Src[I];
      break;
    case WordOp::Or:
      Dst[I] |= Src[I];
      break;
    case WordOp::Xor:
      Dst[I] ^= Src[I];
      break;
    case WordOp::AndNot:
      Dst[I] &= ~Src[I];
      break;
    }
  }
  return Dst;
}

void runWordOp(const KernelOps &Ops, WordOp Op, Words &Dst, const Words &Src) {
  switch (Op) {
  case WordOp::And:
    Ops.AndInto(Dst.data(), Src.data(), Dst.size());
    break;
  case WordOp::Or:
    Ops.OrInto(Dst.data(), Src.data(), Dst.size());
    break;
  case WordOp::Xor:
    Ops.XorInto(Dst.data(), Src.data(), Dst.size());
    break;
  case WordOp::AndNot:
    Ops.AndNotInto(Dst.data(), Src.data(), Dst.size());
    break;
  }
}

constexpr WordOp AllWordOps[] = {WordOp::And, WordOp::Or, WordOp::Xor,
                                 WordOp::AndNot};

// The fixed pattern alphabet used for the exhaustive sweep: the edge
// shapes most likely to expose tail or unroll-boundary bugs.
std::vector<Words> patternsFor(size_t NumBits) {
  size_t N = wordsFor(NumBits);
  std::vector<Words> Out;
  Out.push_back(Words(N, 0)); // empty
  Words Full(N, 0);
  for (size_t I = 0; I < NumBits; ++I)
    setBit(Full, I);
  Out.push_back(Full); // full
  if (NumBits > 0) {
    Words First(N, 0), Last(N, 0), Mid(N, 0);
    setBit(First, 0);
    setBit(Last, NumBits - 1);
    setBit(Mid, NumBits / 2);
    Out.push_back(First);
    Out.push_back(Last);
    Out.push_back(Mid);
  }
  Words Alt(N, 0);
  for (size_t I = 0; I < NumBits; I += 2)
    setBit(Alt, I);
  Out.push_back(Alt); // alternating
  return Out;
}

Words randomWords(std::mt19937_64 &Rng, size_t NumWords) {
  Words W(NumWords);
  for (uint64_t &X : W)
    X = Rng();
  return W;
}

// Clears bits past NumBits so the buffer honors the BitVector tail
// invariant (mutating-kernel inputs are always clean in production).
void cleanTail(Words &W, size_t NumBits) {
  if (!W.empty())
    W.back() &= tailMaskFor(NumBits);
}

} // namespace

// Exhaustive sweep: every size 0..130 bits covers the empty buffer, every
// tail length within a word, and the 4-way unroll boundary at 4 words plus
// both off-by-one neighbors (128 and 130 bits).
TEST(KernelsDifferentialTest, ExhaustiveSmallSizesAllPatternPairs) {
  for (const NamedTable &T : allTables()) {
    for (size_t Bits = 0; Bits <= 130; ++Bits) {
      size_t N = wordsFor(Bits);
      uint64_t Mask = tailMaskFor(Bits);
      std::vector<Words> Pats = patternsFor(Bits);
      for (const Words &A : Pats) {
        EXPECT_EQ(T.Ops->Popcount(A.data(), N, Mask), refPopcount(A, Bits))
            << T.Label << " popcount bits=" << Bits;
        for (const Words &B : Pats) {
          EXPECT_EQ(T.Ops->IsSubsetOf(A.data(), B.data(), N, Mask),
                    refIsSubset(A, B, Bits))
              << T.Label << " subset bits=" << Bits;
          EXPECT_EQ(T.Ops->Intersects(A.data(), B.data(), N, Mask),
                    refIntersects(A, B, Bits))
              << T.Label << " intersects bits=" << Bits;
          for (WordOp Op : AllWordOps) {
            Words Dst = A;
            runWordOp(*T.Ops, Op, Dst, B);
            EXPECT_EQ(Dst, refWordOp(Op, A, B))
                << T.Label << " wordop=" << static_cast<int>(Op)
                << " bits=" << Bits;
          }
        }
      }
    }
  }
}

// 10k seeded-random pairs per table, sizes spanning 0..~1100 bits so the
// vector main loops run many full blocks plus every remainder length.
TEST(KernelsDifferentialTest, SeededRandomPairs) {
  for (const NamedTable &T : allTables()) {
    std::mt19937_64 Rng(0xC0FFEE);
    for (int Iter = 0; Iter < 10000; ++Iter) {
      size_t Bits = Rng() % 1100;
      size_t N = wordsFor(Bits);
      uint64_t Mask = tailMaskFor(Bits);
      Words A = randomWords(Rng, N);
      Words B = randomWords(Rng, N);
      // Half the pairs carry garbage past size(); read kernels must mask
      // it out, so dirty tails cannot change any verdict.
      bool Dirty = Rng() & 1;
      if (!Dirty) {
        cleanTail(A, Bits);
        cleanTail(B, Bits);
      }
      EXPECT_EQ(T.Ops->Popcount(A.data(), N, Mask), refPopcount(A, Bits))
          << T.Label << " iter=" << Iter;
      EXPECT_EQ(T.Ops->IsSubsetOf(A.data(), B.data(), N, Mask),
                refIsSubset(A, B, Bits))
          << T.Label << " iter=" << Iter;
      EXPECT_EQ(T.Ops->Intersects(A.data(), B.data(), N, Mask),
                refIntersects(A, B, Bits))
          << T.Label << " iter=" << Iter;
      WordOp Op = AllWordOps[Rng() % 4];
      Words Dst = A;
      runWordOp(*T.Ops, Op, Dst, B);
      EXPECT_EQ(Dst, refWordOp(Op, A, B)) << T.Label << " iter=" << Iter;
    }
  }
}

// The fused multi-operand AND: K = 0 must leave Dst untouched, and any K
// must equal folding the operands one at a time.
TEST(KernelsDifferentialTest, AndManyIntoMatchesFold) {
  for (const NamedTable &T : allTables()) {
    std::mt19937_64 Rng(0xAB5EED);
    for (size_t NumWords : {size_t(0), size_t(1), size_t(2), size_t(3),
                            size_t(4), size_t(5), size_t(15), size_t(16),
                            size_t(17), size_t(33)}) {
      for (size_t K = 0; K <= 9; ++K) {
        Words Dst = randomWords(Rng, NumWords);
        std::vector<Words> Rows;
        std::vector<const uint64_t *> Ptrs;
        for (size_t R = 0; R < K; ++R) {
          Rows.push_back(randomWords(Rng, NumWords));
          Ptrs.push_back(Rows.back().data());
        }
        Words Expect = Dst;
        for (const Words &Row : Rows)
          Expect = refWordOp(WordOp::And, Expect, Row);
        T.Ops->AndManyInto(Dst.data(), Ptrs.data(), K, NumWords);
        EXPECT_EQ(Dst, Expect)
            << T.Label << " K=" << K << " words=" << NumWords;
      }
    }
  }
}

// andSelectInto goes through the *dispatched* table, so it is pinned to
// each level with ForcedLevelGuard and compared against a naive per-row
// fold over the same arena.
TEST(KernelsDifferentialTest, AndSelectIntoMatchesNaiveAtEveryLevel) {
  std::vector<Level> Levels = {Level::Scalar, Level::Unrolled};
  if (maxSupportedLevel() == Level::Vector)
    Levels.push_back(Level::Vector);
  for (Level L : Levels) {
    ForcedLevelGuard Guard(L);
    ASSERT_EQ(activeLevel(), L);
    std::mt19937_64 Rng(0x5E1EC7);
    for (int Iter = 0; Iter < 300; ++Iter) {
      size_t NumRows = Rng() % 70;
      size_t NumWords = Rng() % 9;
      size_t Stride = NumWords + Rng() % 3; // rows may be over-aligned
      Words Arena = randomWords(Rng, NumRows * Stride);
      size_t SelWords = wordsFor(NumRows);
      Words Sel = randomWords(Rng, SelWords);
      cleanTail(Sel, NumRows);
      Words Dst = randomWords(Rng, NumWords);

      Words Expect = Dst;
      for (size_t P = 0; P < NumRows; ++P)
        if (bitOf(Sel, P))
          for (size_t I = 0; I < NumWords; ++I)
            Expect[I] &= Arena[P * Stride + I];

      andSelectInto(Dst.data(), Arena.data(), Stride, Sel.data(), SelWords,
                    NumWords);
      EXPECT_EQ(Dst, Expect)
          << levelName(L) << " iter=" << Iter << " rows=" << NumRows;
    }
  }
}

// A tail stuffed with all-ones garbage must be invisible to every read
// kernel: identical verdicts and counts as the clean copy.
TEST(KernelsDifferentialTest, DirtyTailsCannotLeakIntoVerdicts) {
  for (const NamedTable &T : allTables()) {
    for (size_t Bits : {size_t(1), size_t(63), size_t(65), size_t(127),
                        size_t(130), size_t(257)}) {
      size_t N = wordsFor(Bits);
      uint64_t Mask = tailMaskFor(Bits);
      std::mt19937_64 Rng(Bits);
      Words A = randomWords(Rng, N);
      Words B = randomWords(Rng, N);
      cleanTail(A, Bits);
      cleanTail(B, Bits);
      Words DirtyA = A, DirtyB = B;
      DirtyA.back() |= ~tailMaskFor(Bits);
      DirtyB.back() |= ~tailMaskFor(Bits);
      if (Bits % 64 == 0) {
        // Whole-word sizes have no tail to dirty; the mask is all-ones.
        EXPECT_EQ(Mask, ~uint64_t(0));
        continue;
      }
      EXPECT_EQ(T.Ops->Popcount(DirtyA.data(), N, Mask),
                T.Ops->Popcount(A.data(), N, Mask))
          << T.Label << " bits=" << Bits;
      EXPECT_EQ(T.Ops->IsSubsetOf(DirtyA.data(), DirtyB.data(), N, Mask),
                T.Ops->IsSubsetOf(A.data(), B.data(), N, Mask))
          << T.Label << " bits=" << Bits;
      // Subset must also hold across clean/dirty mixes: garbage in A's
      // tail must not make A appear to escape B.
      EXPECT_EQ(T.Ops->IsSubsetOf(DirtyA.data(), B.data(), N, Mask),
                T.Ops->IsSubsetOf(A.data(), B.data(), N, Mask))
          << T.Label << " bits=" << Bits;
      EXPECT_EQ(T.Ops->Intersects(DirtyA.data(), DirtyB.data(), N, Mask),
                T.Ops->Intersects(A.data(), B.data(), N, Mask))
          << T.Label << " bits=" << Bits;
    }
  }
}

TEST(KernelsDispatchTest, ParseLevelAcceptsAllSpellings) {
  EXPECT_EQ(parseLevel("scalar"), Level::Scalar);
  EXPECT_EQ(parseLevel("unrolled"), Level::Unrolled);
  EXPECT_EQ(parseLevel("vector"), Level::Vector);
  EXPECT_EQ(parseLevel("avx2"), Level::Vector);
  EXPECT_EQ(parseLevel("neon"), Level::Vector);
  EXPECT_EQ(parseLevel(""), std::nullopt);
  EXPECT_EQ(parseLevel("sse9"), std::nullopt);
}

TEST(KernelsDispatchTest, ForcedLevelGuardRestores) {
  Level Before = activeLevel();
  {
    ForcedLevelGuard Guard(Level::Scalar);
    EXPECT_EQ(activeLevel(), Level::Scalar);
    EXPECT_STREQ(ops().Name, "scalar");
  }
  EXPECT_EQ(activeLevel(), Before);
}

TEST(KernelsDispatchTest, ForceLevelClampsToSupported) {
  ForcedLevelGuard Outer(Level::Scalar);
  forceLevel(Level::Vector);
  EXPECT_LE(static_cast<int>(activeLevel()),
            static_cast<int>(maxSupportedLevel()));
  EXPECT_STREQ(ops().Name, levelName(activeLevel()));
}

TEST(KernelsDispatchTest, LevelNamesAreStable) {
  EXPECT_STREQ(levelName(Level::Scalar), "scalar");
  EXPECT_STREQ(levelName(Level::Unrolled), "unrolled");
  // Vector resolves to the host ISA's name.
  std::string V = levelName(Level::Vector);
  EXPECT_TRUE(V == "avx2" || V == "neon" || V == "unrolled") << V;
}
