//===- tests/support/FailpointTest.cpp -------------------------------------===//
//
// Part of the Cable reproduction of "Debugging Temporal Specifications with
// Concept Analysis" (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/Failpoint.h"

#include <gtest/gtest.h>

#include <algorithm>

using namespace cable;

namespace {

// A test-local hit site, registered like the production ones.
Failpoint::Registrar RegTestPoint("test-point");
Failpoint::Registrar RegOtherPoint("test-other");

class FailpointTest : public ::testing::Test {
protected:
  void TearDown() override { Failpoint::reset(); }
};

TEST_F(FailpointTest, DisabledHitIsOk) {
  ASSERT_FALSE(Failpoint::anyArmed());
  EXPECT_TRUE(Failpoint::hit("test-point").isOk());
  // Unregistered names are fine on the fast path too.
  EXPECT_TRUE(Failpoint::hit("no-such-point").isOk());
}

TEST_F(FailpointTest, ErrorModeFiresOnceAtFirstHit) {
  ASSERT_TRUE(Failpoint::configure("test-point=error").isOk());
  ASSERT_TRUE(Failpoint::anyArmed());
  Status S = Failpoint::hit("test-point");
  ASSERT_FALSE(S.isOk());
  EXPECT_EQ(S.diagnostic().Code, ErrorCode::IoError);
  EXPECT_NE(S.message().find("test-point"), std::string::npos);
  // One-shot: the next hit succeeds, like a transient I/O failure.
  EXPECT_TRUE(Failpoint::hit("test-point").isOk());
}

TEST_F(FailpointTest, TriggerCountDelaysTheFault) {
  ASSERT_TRUE(Failpoint::configure("test-point=error@3").isOk());
  EXPECT_TRUE(Failpoint::hit("test-point").isOk());
  EXPECT_TRUE(Failpoint::hit("test-point").isOk());
  EXPECT_FALSE(Failpoint::hit("test-point").isOk());
  EXPECT_TRUE(Failpoint::hit("test-point").isOk());
  EXPECT_EQ(Failpoint::hitCount("test-point"), 4u);
}

TEST_F(FailpointTest, ArmedPointsAreIndependent) {
  ASSERT_TRUE(
      Failpoint::configure("test-point=error, test-other=error@2").isOk());
  EXPECT_TRUE(Failpoint::hit("test-other").isOk());
  EXPECT_FALSE(Failpoint::hit("test-point").isOk());
  EXPECT_FALSE(Failpoint::hit("test-other").isOk());
}

TEST_F(FailpointTest, ResetDisarms) {
  ASSERT_TRUE(Failpoint::configure("test-point=error").isOk());
  Failpoint::reset();
  EXPECT_FALSE(Failpoint::anyArmed());
  EXPECT_TRUE(Failpoint::hit("test-point").isOk());
  EXPECT_EQ(Failpoint::hitCount("test-point"), 0u);
}

TEST_F(FailpointTest, ReconfigureReplaces) {
  ASSERT_TRUE(Failpoint::configure("test-point=error").isOk());
  ASSERT_TRUE(Failpoint::configure("test-other=error").isOk());
  EXPECT_TRUE(Failpoint::hit("test-point").isOk());
  EXPECT_FALSE(Failpoint::hit("test-other").isOk());
}

TEST_F(FailpointTest, MalformedSpecsRejected) {
  EXPECT_FALSE(Failpoint::configure("test-point").isOk());
  EXPECT_FALSE(Failpoint::configure("test-point=explode").isOk());
  EXPECT_FALSE(Failpoint::configure("test-point=crash@").isOk());
  EXPECT_FALSE(Failpoint::configure("test-point=crash@0").isOk());
  EXPECT_FALSE(Failpoint::configure("=error").isOk());
  // A failed configure leaves nothing armed.
  EXPECT_FALSE(Failpoint::anyArmed());
}

TEST_F(FailpointTest, RegisteredNamesIncludeHitSites) {
  std::vector<std::string> Names = Failpoint::registeredNames();
  EXPECT_TRUE(std::is_sorted(Names.begin(), Names.end()));
  auto Has = [&](const char *N) {
    return std::find(Names.begin(), Names.end(), N) != Names.end();
  };
  EXPECT_TRUE(Has("test-point"));
  // Production sites linked into this binary self-register too.
  EXPECT_TRUE(Has("atomicfile-rename"));
  EXPECT_TRUE(Has("file-read"));
  EXPECT_TRUE(Has("journal-append"));
  EXPECT_TRUE(Has("threadpool-dispatch"));
}

TEST_F(FailpointTest, CrashModeTerminatesWithTheCrashExitCode) {
  EXPECT_EXIT(
      {
        (void)Failpoint::configure("test-point=crash@2");
        (void)Failpoint::hit("test-point"); // hit 1: survives
        (void)Failpoint::hit("test-point"); // hit 2: _Exit(86)
        exit(0);                            // not reached
      },
      ::testing::ExitedWithCode(Failpoint::kCrashExitCode), "");
}

} // namespace
