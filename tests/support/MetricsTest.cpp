//===- tests/support/MetricsTest.cpp - Metrics registry tests --------------===//
//
// Part of the Cable reproduction of "Debugging Temporal Specifications with
// Concept Analysis" (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//
//
// This file lives in cable_parallel_tests so the concurrent-increment
// tests run under -DCABLE_SANITIZE=thread: the registry's contract is a
// lock-free armed hot path with *exact* counts, which TSan verifies has
// no data race rather than a benign one.
//
//===----------------------------------------------------------------------===//

#include "support/Json.h"
#include "support/Metrics.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <thread>
#include <vector>

using namespace cable;

namespace {

/// Arms the registry for one test and restores the disarmed default
/// (other tests in this binary assume instrumentation is off).
class MetricsTest : public ::testing::Test {
protected:
  void SetUp() override {
    Metrics::reset();
    Metrics::setEnabled(true);
  }
  void TearDown() override {
    Metrics::setEnabled(false);
    Metrics::reset();
  }
};

TEST_F(MetricsTest, CounterFindOrCreateReturnsSameHandle) {
  Metrics::Counter &A = Metrics::counter("test.same-handle");
  Metrics::Counter &B = Metrics::counter("test.same-handle");
  EXPECT_EQ(&A, &B);
}

TEST_F(MetricsTest, DisarmedMutationsAreDropped) {
  Metrics::setEnabled(false);
  Metrics::Counter &C = Metrics::counter("test.disarmed-counter");
  Metrics::Gauge &G = Metrics::gauge("test.disarmed-gauge");
  Metrics::Histogram &H = Metrics::histogram("test.disarmed-histogram");
  C.add(5);
  G.set(7);
  G.addHighWater(3);
  H.record(11);
  EXPECT_EQ(C.value(), 0u);
  EXPECT_EQ(G.value(), 0);
  EXPECT_EQ(G.high(), 0);
  EXPECT_EQ(H.count(), 0u);
}

TEST_F(MetricsTest, ConcurrentCounterIncrementsAreExact) {
  constexpr int NumThreads = 8;
  constexpr uint64_t PerThread = 50000;
  Metrics::Counter &C = Metrics::counter("test.concurrent-counter");
  std::vector<std::thread> Threads;
  for (int T = 0; T < NumThreads; ++T)
    Threads.emplace_back([&C] {
      for (uint64_t I = 0; I < PerThread; ++I)
        C.add();
    });
  for (std::thread &T : Threads)
    T.join();
  EXPECT_EQ(C.value(), NumThreads * PerThread);
}

TEST_F(MetricsTest, ConcurrentHistogramCountsAreExact) {
  constexpr int NumThreads = 4;
  constexpr uint64_t PerThread = 20000;
  Metrics::Histogram &H = Metrics::histogram("test.concurrent-histogram");
  std::vector<std::thread> Threads;
  for (int T = 0; T < NumThreads; ++T)
    Threads.emplace_back([&H, T] {
      for (uint64_t I = 0; I < PerThread; ++I)
        H.record(static_cast<uint64_t>(T));
    });
  for (std::thread &T : Threads)
    T.join();
  EXPECT_EQ(H.count(), NumThreads * PerThread);
  EXPECT_EQ(H.max(), 3u);
  // Values 0..3 land in buckets 0 (v==0), 1 (v==1), 2 (2<=v<4).
  EXPECT_EQ(H.bucketCount(0), PerThread);
  EXPECT_EQ(H.bucketCount(1), PerThread);
  EXPECT_EQ(H.bucketCount(2), 2 * PerThread);
}

TEST_F(MetricsTest, ConcurrentGaugeHighWaterNeverBelowPeak) {
  Metrics::Gauge &G = Metrics::gauge("test.concurrent-gauge");
  std::vector<std::thread> Threads;
  for (int T = 0; T < 4; ++T)
    Threads.emplace_back([&G] {
      for (int I = 0; I < 10000; ++I) {
        G.addHighWater(1);
        G.add(-1);
      }
    });
  for (std::thread &T : Threads)
    T.join();
  EXPECT_EQ(G.value(), 0);
  EXPECT_GE(G.high(), 1);
  EXPECT_LE(G.high(), 4);
}

TEST_F(MetricsTest, HistogramBucketEdges) {
  using H = Metrics::Histogram;
  EXPECT_EQ(H::bucketIndex(0), 0u);
  EXPECT_EQ(H::bucketIndex(1), 1u);
  EXPECT_EQ(H::bucketIndex(2), 2u);
  EXPECT_EQ(H::bucketIndex(3), 2u);
  EXPECT_EQ(H::bucketIndex(4), 3u);
  EXPECT_EQ(H::bucketIndex(7), 3u);
  EXPECT_EQ(H::bucketIndex(8), 4u);
  // The overflow bucket absorbs everything too large for 2^28.
  EXPECT_EQ(H::bucketIndex(std::numeric_limits<uint64_t>::max()),
            H::kNumBuckets - 1);
  // Edges are inclusive upper bounds: bucketIndex(edge) == that bucket,
  // bucketIndex(edge + 1) == the next one.
  for (size_t I = 1; I + 1 < H::kNumBuckets; ++I) {
    uint64_t Edge = H::bucketUpperEdge(I);
    EXPECT_EQ(H::bucketIndex(Edge), I) << "edge of bucket " << I;
    EXPECT_EQ(H::bucketIndex(Edge + 1), I + 1) << "past edge of bucket " << I;
  }
  EXPECT_EQ(H::bucketUpperEdge(H::kNumBuckets - 1),
            std::numeric_limits<uint64_t>::max());
}

TEST_F(MetricsTest, HistogramQuantilesAreBucketUpperEdges) {
  Metrics::Histogram &H = Metrics::histogram("test.quantile-histogram");
  // 9 values of 1 and a single 1000: p50 resolves to bucket(1)'s edge,
  // p90 must reach the bucket holding 1000 only at higher quantiles.
  for (int I = 0; I < 9; ++I)
    H.record(1);
  H.record(1000);
  EXPECT_EQ(H.quantile(0.5), 1u);
  EXPECT_EQ(H.quantile(0.9), 1u);
  // The estimate is capped at the recorded max, which is tighter than
  // bucket 1000's upper edge (1023).
  EXPECT_EQ(H.quantile(1.0), 1000u);
}

TEST_F(MetricsTest, CounterValueLooksUpByName) {
  Metrics::counter("test.lookup").add(42);
  EXPECT_EQ(Metrics::counterValue("test.lookup"), 42u);
  EXPECT_EQ(Metrics::counterValue("test.never-registered"), 0u);
}

TEST_F(MetricsTest, ResetZeroesButKeepsHandles) {
  Metrics::Counter &C = Metrics::counter("test.reset");
  C.add(9);
  Metrics::reset();
  EXPECT_EQ(C.value(), 0u);
  C.add(1);
  EXPECT_EQ(Metrics::counterValue("test.reset"), 1u);
}

TEST_F(MetricsTest, SnapshotJsonIsValidAndGreppable) {
  Metrics::counter("test.snapshot-counter").add(3);
  Metrics::gauge("test.snapshot-gauge").set(-4);
  Metrics::histogram("test.snapshot-histogram").record(100);
  std::string Json = Metrics::snapshotJson();
  std::string Error;
  EXPECT_TRUE(validateJson(Json, Error)) << Error;
  // The kill-matrix harness greps for this exact `"name": value` shape;
  // changing the spacing breaks shell consumers.
  EXPECT_NE(Json.find("\"test.snapshot-counter\": 3"), std::string::npos)
      << Json;
  EXPECT_NE(Json.find("\"test.snapshot-gauge\""), std::string::npos);
  EXPECT_NE(Json.find("\"test.snapshot-histogram\""), std::string::npos);
}

TEST_F(MetricsTest, RenderTableListsNonEmptyMetrics) {
  Metrics::counter("test.table-counter").add(7);
  std::string Table = Metrics::renderTable();
  EXPECT_NE(Table.find("test.table-counter"), std::string::npos) << Table;
  EXPECT_NE(Table.find("7"), std::string::npos);
}

TEST_F(MetricsTest, MetricTimerRecordsOnlyWhenArmed) {
  Metrics::Histogram &H = Metrics::histogram("test.timer-histogram");
  { MetricTimer T(H); }
  EXPECT_EQ(H.count(), 1u);
  Metrics::setEnabled(false);
  { MetricTimer T(H); }
  EXPECT_EQ(H.count(), 1u);
}

// -- Telemetry delta / merge / wire round-trip (the shard flush path) ------

/// Finds a sample by name; nullptr when the delta dropped it as unchanged.
const Metrics::Sample *findSample(const std::vector<Metrics::Sample> &Samples,
                                  std::string_view Name) {
  for (const Metrics::Sample &S : Samples)
    if (S.Name == Name)
      return &S;
  return nullptr;
}

TEST_F(MetricsTest, DeltaSinceReportsOnlyChangedSamples) {
  Metrics::counter("test.delta-unchanged").add(5);
  Metrics::Counter &C = Metrics::counter("test.delta-counter");
  C.add(10);
  std::vector<Metrics::Sample> Baseline = Metrics::snapshot();
  C.add(7);
  Metrics::histogram("test.delta-histogram").record(3);
  std::vector<Metrics::Sample> Delta = Metrics::deltaSince(Baseline);
  EXPECT_EQ(findSample(Delta, "test.delta-unchanged"), nullptr);
  const Metrics::Sample *DC = findSample(Delta, "test.delta-counter");
  ASSERT_NE(DC, nullptr);
  EXPECT_EQ(DC->Count, 7u); // The delta, not the absolute 17.
  const Metrics::Sample *DH = findSample(Delta, "test.delta-histogram");
  ASSERT_NE(DH, nullptr);
  EXPECT_EQ(DH->Count, 1u);
}

TEST_F(MetricsTest, MergeDeltaAddsCountersAndHistogramBuckets) {
  Metrics::Counter &C = Metrics::counter("test.merge-counter");
  Metrics::Histogram &H = Metrics::histogram("test.merge-histogram");
  C.add(100);
  H.record(2);
  std::vector<Metrics::Sample> Baseline = Metrics::snapshot();
  C.add(11);
  H.record(2);
  H.record(1000);
  std::vector<Metrics::Sample> Delta = Metrics::deltaSince(Baseline);
  // Merging a worker's delta on top of the same registry doubles the
  // post-baseline work, exactly what a supervisor + one worker doing the
  // same increments would report.
  Metrics::mergeDelta(Delta);
  EXPECT_EQ(C.value(), 122u);
  EXPECT_EQ(H.count(), 5u);
  EXPECT_EQ(H.max(), 1000u);
  // Bucket(2) saw one pre-baseline and one post-baseline record; the
  // merged delta adds the post-baseline one again: 2 + 1.
  EXPECT_EQ(H.bucketCount(Metrics::Histogram::bucketIndex(2)), 3u);
}

TEST_F(MetricsTest, MergeDeltaGaugeKeepsHighWater) {
  Metrics::Gauge &G = Metrics::gauge("test.merge-gauge");
  G.addHighWater(3);
  G.add(-3);
  std::vector<Metrics::Sample> Delta;
  Metrics::Sample S;
  S.Name = "test.merge-gauge";
  S.K = Metrics::Sample::KindGauge;
  S.Value = 2;
  S.High = 9;
  Delta.push_back(S);
  Metrics::mergeDelta(Delta);
  EXPECT_EQ(G.value(), 2);  // High-water policy: max(0, 2).
  EXPECT_EQ(G.high(), 9);   // max(3, 9).
}

TEST_F(MetricsTest, MergeDeltaSkipsKindMismatch) {
  Metrics::counter("test.merge-kind").add(4);
  std::vector<Metrics::Sample> Delta;
  Metrics::Sample S;
  S.Name = "test.merge-kind";
  S.K = Metrics::Sample::KindGauge; // A lying worker.
  S.Value = 99;
  Delta.push_back(S);
  Metrics::mergeDelta(Delta); // Must not abort or clobber.
  EXPECT_EQ(Metrics::counterValue("test.merge-kind"), 4u);
}

TEST_F(MetricsTest, EncodeDecodeSamplesRoundTrips) {
  Metrics::counter("test.wire-counter").add(42);
  Metrics::gauge("test.wire-gauge").addHighWater(17);
  Metrics::Histogram &H = Metrics::histogram("test.wire-histogram");
  H.record(0);
  H.record(5);
  H.record(1 << 20);
  std::vector<Metrics::Sample> Samples = Metrics::snapshot();
  std::string Wire = Metrics::encodeSamples(Samples);
  std::vector<Metrics::Sample> Decoded;
  ASSERT_TRUE(Metrics::decodeSamples(Wire, Decoded));
  ASSERT_EQ(Decoded.size(), Samples.size());
  for (size_t I = 0; I < Samples.size(); ++I) {
    EXPECT_EQ(Decoded[I].Name, Samples[I].Name);
    EXPECT_EQ(Decoded[I].K, Samples[I].K);
    EXPECT_EQ(Decoded[I].Count, Samples[I].Count);
    EXPECT_EQ(Decoded[I].Value, Samples[I].Value);
    EXPECT_EQ(Decoded[I].High, Samples[I].High);
    EXPECT_EQ(Decoded[I].Sum, Samples[I].Sum);
    EXPECT_EQ(Decoded[I].Max, Samples[I].Max);
    EXPECT_EQ(Decoded[I].Buckets, Samples[I].Buckets);
  }
}

TEST_F(MetricsTest, DecodeSamplesRejectsMalformedBytes) {
  std::vector<Metrics::Sample> Out;
  EXPECT_FALSE(Metrics::decodeSamples("xyz", Out));
  Metrics::counter("test.wire-reject").add(1);
  std::string Wire = Metrics::encodeSamples(Metrics::snapshot());
  // Truncation and trailing garbage both fail the strict decode.
  EXPECT_FALSE(
      Metrics::decodeSamples(std::string_view(Wire).substr(0, Wire.size() - 1),
                             Out));
  EXPECT_FALSE(Metrics::decodeSamples(Wire + "x", Out));
  EXPECT_TRUE(Metrics::decodeSamples(Wire, Out));
}

} // namespace
