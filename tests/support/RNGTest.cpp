//===- tests/support/RNGTest.cpp -------------------------------------------===//
//
// Part of the Cable reproduction of "Debugging Temporal Specifications with
// Concept Analysis" (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/RNG.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

using namespace cable;

TEST(RNGTest, DeterministicPerSeed) {
  RNG A(42), B(42);
  for (int I = 0; I < 100; ++I)
    EXPECT_EQ(A.next(), B.next());
}

TEST(RNGTest, DifferentSeedsDiffer) {
  RNG A(1), B(2);
  bool AnyDiff = false;
  for (int I = 0; I < 16; ++I)
    AnyDiff |= (A.next() != B.next());
  EXPECT_TRUE(AnyDiff);
}

TEST(RNGTest, BoundedStaysInRange) {
  RNG Rand(7);
  for (int I = 0; I < 1000; ++I) {
    EXPECT_LT(Rand.nextBounded(17), 17u);
    EXPECT_LT(Rand.nextBounded(1), 1u);
  }
}

TEST(RNGTest, BoundedCoversRange) {
  RNG Rand(9);
  std::vector<bool> Seen(8, false);
  for (int I = 0; I < 500; ++I)
    Seen[Rand.nextBounded(8)] = true;
  for (bool B : Seen)
    EXPECT_TRUE(B);
}

TEST(RNGTest, DoubleInUnitInterval) {
  RNG Rand(11);
  for (int I = 0; I < 1000; ++I) {
    double D = Rand.nextDouble();
    EXPECT_GE(D, 0.0);
    EXPECT_LT(D, 1.0);
  }
}

TEST(RNGTest, NextBoolExtremes) {
  RNG Rand(13);
  for (int I = 0; I < 100; ++I) {
    EXPECT_FALSE(Rand.nextBool(0.0));
    EXPECT_TRUE(Rand.nextBool(1.0));
  }
}

TEST(RNGTest, ShuffleIsPermutation) {
  RNG Rand(17);
  std::vector<int> V(50);
  std::iota(V.begin(), V.end(), 0);
  std::vector<int> Orig = V;
  Rand.shuffle(V);
  EXPECT_FALSE(std::is_sorted(V.begin(), V.end()))
      << "a 50-element shuffle staying sorted is vanishingly unlikely";
  std::sort(V.begin(), V.end());
  EXPECT_EQ(V, Orig);
}

TEST(RNGTest, PickWeightedRespectsZeroWeights) {
  RNG Rand(19);
  std::vector<double> W{0.0, 1.0, 0.0};
  for (int I = 0; I < 200; ++I)
    EXPECT_EQ(Rand.pickWeighted(W), 1u);
}

TEST(RNGTest, PickWeightedRoughProportions) {
  RNG Rand(23);
  std::vector<double> W{1.0, 3.0};
  int Counts[2] = {0, 0};
  for (int I = 0; I < 4000; ++I)
    ++Counts[Rand.pickWeighted(W)];
  double Ratio = static_cast<double>(Counts[1]) / Counts[0];
  EXPECT_GT(Ratio, 2.0);
  EXPECT_LT(Ratio, 4.5);
}

TEST(RNGTest, ForkIndependentOfParentContinuation) {
  RNG A(31);
  RNG Child = A.fork();
  uint64_t C1 = Child.next();
  RNG B(31);
  RNG Child2 = B.fork();
  EXPECT_EQ(C1, Child2.next()) << "forking must be deterministic";
}
