#!/usr/bin/env bash
#===- tests/bench/overhead_guard.sh - Disarmed-instrumentation guard -------===#
#
# Part of the Cable reproduction of "Debugging Temporal Specifications with
# Concept Analysis" (PLDI 2003). MIT license.
#
#===------------------------------------------------------------------------===#
#
# The observability layer promises that leaving instrumentation compiled
# in (but disarmed) is free: every site is one relaxed atomic load. This
# guard makes that a regression test. It builds the instrument_overhead
# bench twice — from the enclosing build tree (instrumented, disarmed at
# runtime) and from a nested -DCABLE_NO_INSTRUMENT=ON tree (the calls
# compiled out entirely) — runs both interleaved, and requires the
# instrumented binary's min-of-N NextClosure wall time to be at most 2%
# slower than the stripped one (faster is trivially a pass).
#
# Exit codes: 0 pass, 1 regression, 77 skip (nested build unavailable or
# the machine is too noisy to produce a stable baseline).
#
# Usage: overhead_guard.sh <source-dir> <build-dir>
#
#===------------------------------------------------------------------------===#

set -u

SRC=${1:?usage: overhead_guard.sh <source-dir> <build-dir>}
BUILD=${2:?usage: overhead_guard.sh <source-dir> <build-dir>}
NESTED="$BUILD/no_instrument"
THRESHOLD_PCT=${CABLE_OVERHEAD_THRESHOLD_PCT:-2.0}
ATTEMPTS=3

say() { printf '%s\n' "$*"; }

# Match the enclosing build's configuration so only CABLE_NO_INSTRUMENT
# differs between the two binaries.
build_type=$(sed -n 's/^CMAKE_BUILD_TYPE:[^=]*=//p' "$BUILD/CMakeCache.txt")
sanitize=$(sed -n 's/^CABLE_SANITIZE:[^=]*=//p' "$BUILD/CMakeCache.txt")

instrumented="$BUILD/bench/instrument_overhead"
if [ ! -x "$instrumented" ]; then
  cmake --build "$BUILD" --target instrument_overhead -j "$(nproc)" \
    > /dev/null 2>&1
fi
if [ ! -x "$instrumented" ]; then
  say "SKIP: instrumented bench binary missing"
  exit 77
fi

# Nested build (cached across ctest runs: reconfigure is a no-op and the
# build is incremental).
if ! cmake -S "$SRC" -B "$NESTED" -DCABLE_NO_INSTRUMENT=ON \
      ${build_type:+-DCMAKE_BUILD_TYPE="$build_type"} \
      ${sanitize:+-DCABLE_SANITIZE="$sanitize"} > "$NESTED.configure.log" 2>&1
then
  say "SKIP: nested CABLE_NO_INSTRUMENT configure failed"
  tail -5 "$NESTED.configure.log"
  exit 77
fi
if ! cmake --build "$NESTED" --target instrument_overhead -j "$(nproc)" \
      > "$NESTED.build.log" 2>&1; then
  say "SKIP: nested CABLE_NO_INSTRUMENT build failed"
  tail -5 "$NESTED.build.log"
  exit 77
fi
stripped="$NESTED/bench/instrument_overhead"

# The stripped binary must really be compiled out: its --stats-free run
# reports armed == disarmed because arming is impossible.
"$stripped" > /dev/null 2>&1 || { say "SKIP: stripped binary does not run"; exit 77; }

min_ms() { # min_ms <binary> -> disarmed_min_ms
  CABLE_BENCH_QUICK=1 CABLE_BENCH_OUT="${TMPDIR:-/tmp}" "$1" 2>/dev/null \
    | sed -n 's/^disarmed_min_ms //p'
}

best_delta=""
for attempt in $(seq 1 $ATTEMPTS); do
  # Interleave the runs so slow drift (thermal, noisy neighbors) hits
  # both binaries equally; keep the per-binary minimum.
  a1=$(min_ms "$instrumented"); b1=$(min_ms "$stripped")
  a2=$(min_ms "$instrumented"); b2=$(min_ms "$stripped")
  # One-sided: only instrumented-slower-than-stripped counts as overhead.
  # A faster instrumented binary (codegen/alignment luck) is a pass.
  result=$(awk -v a1="$a1" -v a2="$a2" -v b1="$b1" -v b2="$b2" \
               -v thr="$THRESHOLD_PCT" 'BEGIN {
    a = (a1 < a2) ? a1 : a2
    b = (b1 < b2) ? b1 : b2
    if (a <= 0 || b <= 0) { print "bad"; exit }
    d = (a - b) / b * 100
    printf "%.2f %.4f %.4f %s\n", d, a, b, (d <= thr ? "pass" : "over")
  }')
  set -- $result
  [ "${1:-bad}" = bad ] && { say "SKIP: could not parse bench output"; exit 77; }
  delta=$1; a=$2; b=$3; verdict=$4
  say "attempt $attempt: instrumented-disarmed ${a}ms vs no-instrument ${b}ms (overhead ${delta}%)"
  [ -z "$best_delta" ] && best_delta=$delta
  best_delta=$(awk -v x="$best_delta" -v y="$delta" 'BEGIN{print (y<x)?y:x}')
  [ "$verdict" = pass ] && { say "overhead guard: PASS (overhead ${delta}% <= ${THRESHOLD_PCT}%)"; exit 0; }
done

say "overhead guard: FAIL (best overhead ${best_delta}% > ${THRESHOLD_PCT}% after $ATTEMPTS attempts)"
exit 1
