#!/usr/bin/env bash
#===- tests/bench/overhead_guard.sh - Disarmed-instrumentation guard -------===#
#
# Part of the Cable reproduction of "Debugging Temporal Specifications with
# Concept Analysis" (PLDI 2003). MIT license.
#
#===------------------------------------------------------------------------===#
#
# The observability layer promises that leaving instrumentation compiled
# in (but disarmed) is free: every site is one relaxed atomic load. This
# guard makes that a regression test. It builds the instrument_overhead
# bench twice — from the enclosing build tree (instrumented, disarmed at
# runtime) and from a nested -DCABLE_NO_INSTRUMENT=ON tree (the calls
# compiled out entirely) — runs both interleaved, and requires the
# instrumented binary's min-of-N NextClosure wall time to be at most 2%
# slower than the stripped one (faster is trivially a pass).
#
# Exit codes: 0 pass, 1 regression or malformed bench output, 77 skip —
# strictly for a missing/unbuildable bench binary or nested tree. A bench
# that runs but prints garbage is a failure, not a skip.
#
# Usage: overhead_guard.sh <source-dir> <build-dir>
#
#===------------------------------------------------------------------------===#

set -u

SRC=${1:?usage: overhead_guard.sh <source-dir> <build-dir>}
BUILD=${2:?usage: overhead_guard.sh <source-dir> <build-dir>}
NESTED="$BUILD/no_instrument"
THRESHOLD_PCT=${CABLE_OVERHEAD_THRESHOLD_PCT:-2.0}
# Armed-but-quiet logging (--log-out set, no hot-loop emit sites) gets a
# looser one-sided bound than the disarmed check: the gate load is the
# same, but the phase runs later in the process so it sees more drift.
LOG_THRESHOLD_PCT=${CABLE_LOG_THRESHOLD_PCT:-10.0}
ATTEMPTS=3

say() { printf '%s\n' "$*"; }

# Match the enclosing build's configuration so only CABLE_NO_INSTRUMENT
# differs between the two binaries.
build_type=$(sed -n 's/^CMAKE_BUILD_TYPE:[^=]*=//p' "$BUILD/CMakeCache.txt")
sanitize=$(sed -n 's/^CABLE_SANITIZE:[^=]*=//p' "$BUILD/CMakeCache.txt")

instrumented="$BUILD/bench/instrument_overhead"
if [ ! -x "$instrumented" ]; then
  cmake --build "$BUILD" --target instrument_overhead -j "$(nproc)" \
    > /dev/null 2>&1
fi
if [ ! -x "$instrumented" ]; then
  say "SKIP: instrumented bench binary missing"
  exit 77
fi

# Nested build (cached across ctest runs: reconfigure is a no-op and the
# build is incremental).
if ! cmake -S "$SRC" -B "$NESTED" -DCABLE_NO_INSTRUMENT=ON \
      ${build_type:+-DCMAKE_BUILD_TYPE="$build_type"} \
      ${sanitize:+-DCABLE_SANITIZE="$sanitize"} > "$NESTED.configure.log" 2>&1
then
  say "SKIP: nested CABLE_NO_INSTRUMENT configure failed"
  tail -5 "$NESTED.configure.log"
  exit 77
fi
if ! cmake --build "$NESTED" --target instrument_overhead -j "$(nproc)" \
      > "$NESTED.build.log" 2>&1; then
  say "SKIP: nested CABLE_NO_INSTRUMENT build failed"
  tail -5 "$NESTED.build.log"
  exit 77
fi
stripped="$NESTED/bench/instrument_overhead"

# The stripped binary must really be compiled out: its --stats-free run
# reports armed == disarmed because arming is impossible.
"$stripped" > /dev/null 2>&1 || { say "SKIP: stripped binary does not run"; exit 77; }

mins_of() { # mins_of <binary> -> "disarmed_min_ms log_armed_min_ms"
  CABLE_BENCH_QUICK=1 CABLE_BENCH_OUT="${TMPDIR:-/tmp}" "$1" 2>/dev/null \
    | awk '/^disarmed_min_ms /{d=$2} /^log_armed_min_ms /{l=$2}
           END{if (d && l) print d, l}'
}

best_delta=""
for attempt in $(seq 1 $ATTEMPTS); do
  # Interleave the runs so slow drift (thermal, noisy neighbors) hits
  # both binaries equally; keep the per-binary minimum.
  set -- $(mins_of "$instrumented"); a1=${1:-}; l1=${2:-}
  set -- $(mins_of "$stripped");     b1=${1:-}
  set -- $(mins_of "$instrumented"); a2=${1:-}; l2=${2:-}
  set -- $(mins_of "$stripped");     b2=${1:-}
  # The bench ran but its output is structurally wrong — that is a broken
  # bench, not a missing one; fail rather than skip.
  if [ -z "$a1" ] || [ -z "$a2" ] || [ -z "$b1" ] || [ -z "$b2" ] \
     || [ -z "$l1" ] || [ -z "$l2" ]; then
    say "overhead guard: FAIL (could not parse bench output)"
    exit 1
  fi
  # One-sided on both checks: only slower-than-baseline counts as
  # overhead. A faster run (codegen/alignment luck) is a pass.
  result=$(awk -v a1="$a1" -v a2="$a2" -v b1="$b1" -v b2="$b2" \
               -v l1="$l1" -v l2="$l2" \
               -v thr="$THRESHOLD_PCT" -v lthr="$LOG_THRESHOLD_PCT" 'BEGIN {
    a = (a1 < a2) ? a1 : a2
    b = (b1 < b2) ? b1 : b2
    l = (l1 < l2) ? l1 : l2
    if (a <= 0 || b <= 0 || l <= 0) { print "bad"; exit }
    d = (a - b) / b * 100
    ld = (l - a) / a * 100
    printf "%.2f %.2f %.4f %.4f %.4f %s\n", d, ld, a, b, l,
           (d <= thr && ld <= lthr ? "pass" : "over")
  }')
  set -- $result
  [ "${1:-bad}" = bad ] && { say "overhead guard: FAIL (non-positive bench timings)"; exit 1; }
  delta=$1; ldelta=$2; a=$3; b=$4; l=$5; verdict=$6
  say "attempt $attempt: instrumented-disarmed ${a}ms vs no-instrument ${b}ms (overhead ${delta}%)"
  say "attempt $attempt: log-armed-quiet ${l}ms vs disarmed ${a}ms (overhead ${ldelta}%)"
  [ -z "$best_delta" ] && best_delta=$delta
  best_delta=$(awk -v x="$best_delta" -v y="$delta" 'BEGIN{print (y<x)?y:x}')
  if [ "$verdict" = pass ]; then
    say "overhead guard: PASS (disarmed ${delta}% <= ${THRESHOLD_PCT}%, log-armed ${ldelta}% <= ${LOG_THRESHOLD_PCT}%)"
    exit 0
  fi
done

say "overhead guard: FAIL (best overhead ${best_delta}% > ${THRESHOLD_PCT}% after $ATTEMPTS attempts)"
exit 1
