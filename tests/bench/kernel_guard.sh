#!/usr/bin/env bash
#===- tests/bench/kernel_guard.sh - SIMD kernel regression guard -----------===#
#
# Part of the Cable reproduction of "Debugging Temporal Specifications with
# Concept Analysis" (PLDI 2003). MIT license.
#
#===------------------------------------------------------------------------===#
#
# Gates the vectorized kernel layer on three promises:
#
#   1. BENCH_scaling_lattice.json is schema-valid (cable-bench/1) and
#      carries the per-kernel throughput sections and closure counters.
#   2. One-sided: the dispatched kernel level is never slower than the
#      scalar reference on any kernel section (within a noise margin —
#      slower-than-scalar dispatch would mean the runtime selection is
#      actively harmful on this machine).
#   3. The fused closure path did not regress against the retained legacy
#      baseline: closure_speedup_* >= 1.0 (the ≥4x acceptance number is
#      recorded in the JSON; the guard enforces the never-slower floor so
#      it stays meaningful on noisy shared runners).
#
# Exit codes: 0 pass, 1 failure (timing regression, or schema/structural
# breakage in the emitted JSON — that outcome is deterministic, not noise),
# 77 skip (genuinely environmental: bench binary or python3 missing, or no
# JSON produced).
#
# Usage: kernel_guard.sh <source-dir> <build-dir>
#
#===------------------------------------------------------------------------===#

set -u

SRC=${1:?usage: kernel_guard.sh <source-dir> <build-dir>}
BUILD=${2:?usage: kernel_guard.sh <source-dir> <build-dir>}
MARGIN_PCT=${CABLE_KERNEL_GUARD_MARGIN_PCT:-25.0}
ATTEMPTS=3

say() { printf '%s\n' "$*"; }

bench="$BUILD/bench/scaling_lattice"
if [ ! -x "$bench" ]; then
  cmake --build "$BUILD" --target scaling_lattice -j "$(nproc)" \
    > /dev/null 2>&1
fi
if [ ! -x "$bench" ]; then
  say "SKIP: scaling_lattice bench binary missing"
  exit 77
fi
command -v python3 > /dev/null 2>&1 || { say "SKIP: python3 missing"; exit 77; }

workdir="$BUILD/kernel_guard"
mkdir -p "$workdir"
json="$workdir/BENCH_scaling_lattice.json"

run_bench() {
  rm -f "$json"
  CABLE_BENCH_QUICK=1 CABLE_BENCH_OUT="$workdir" "$bench" > /dev/null 2>&1
  [ -s "$json" ]
}

# Schema + structural validation happens once; the timing comparison gets
# interleaved attempts because quick-mode medians are noisy.
verdict_of() { # verdict_of <json> <margin-pct> -> pass/over/bad + details
  python3 - "$1" "$2" <<'EOF'
import json, sys

path, margin = sys.argv[1], float(sys.argv[2])
try:
    doc = json.load(open(path))
except Exception as e:
    print("bad", f"unreadable JSON: {e}")
    sys.exit(0)

if doc.get("schema") != "cable-bench/1":
    print("bad", f"schema={doc.get('schema')!r}")
    sys.exit(0)
sections = {s["name"]: s for s in doc.get("sections", [])}
counters = doc.get("counters", {})

required_counters = [
    "kernel_active_level", "kernel_max_level",
    "closure_speedup_contranominal24", "closure_speedup_xtfree",
    "closures_per_s_contranominal24", "closures_per_s_xtfree",
]
missing = [c for c in required_counters if c not in counters]
kernels = ["and", "subset", "popcount", "andmany"]
for k in kernels:
    if f"kernel-{k}-scalar" not in sections:
        missing.append(f"kernel-{k}-scalar")
for tag in ["contranominal24", "xtfree"]:
    for sec in (f"closure-{tag}", f"closure-{tag}-ref"):
        if sec not in sections:
            missing.append(sec)
if missing:
    print("bad", "missing " + ",".join(missing))
    sys.exit(0)

level_names = {0: "scalar", 1: "unrolled", 2: None}
active = int(counters["kernel_active_level"])
# Resolve the vector level's section suffix by probing what was emitted.
active_name = level_names.get(active)
if active_name is None:
    for cand in ("avx2", "neon"):
        if f"kernel-and-{cand}" in sections:
            active_name = cand
            break
    else:
        active_name = "unrolled"

failures = []
# One-sided: dispatched level must not be slower than scalar beyond the
# noise margin. Faster is trivially fine.
for k in kernels:
    scalar = sections[f"kernel-{k}-scalar"]["median_ms"]
    act_sec = sections.get(f"kernel-{k}-{active_name}")
    if act_sec is None or scalar <= 0:
        continue
    slowdown = (act_sec["median_ms"] - scalar) / scalar * 100
    if slowdown > margin:
        failures.append(f"kernel-{k}-{active_name} {slowdown:.1f}% slower than scalar")

for tag in ["contranominal24", "xtfree"]:
    speedup = counters[f"closure_speedup_{tag}"]
    if speedup < 1.0:
        failures.append(f"closure_speedup_{tag}={speedup:.2f} < 1.0")

if failures:
    print("over", "; ".join(failures))
else:
    print("pass",
          f"active={active_name}"
          f" speedup_contranominal24={counters['closure_speedup_contranominal24']:.2f}"
          f" speedup_xtfree={counters['closure_speedup_xtfree']:.2f}")
EOF
}

last_detail=""
for attempt in $(seq 1 $ATTEMPTS); do
  if ! run_bench; then
    say "SKIP: bench run produced no JSON"
    exit 77
  fi
  result=$(verdict_of "$json" "$MARGIN_PCT")
  verdict=${result%% *}
  detail=${result#* }
  say "attempt $attempt: $verdict ($detail)"
  case "$verdict" in
    pass) say "kernel guard: PASS"; exit 0 ;;
    # Schema/structural breakage is deterministic — a bench that stops
    # emitting the required sections or counters must fail, not skip.
    bad)  say "kernel guard: FAIL ($detail)"; exit 1 ;;
    *)    last_detail=$detail ;;
  esac
done

say "kernel guard: FAIL ($last_detail after $ATTEMPTS attempts)"
exit 1
