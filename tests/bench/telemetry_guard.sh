#!/usr/bin/env bash
#===- tests/bench/telemetry_guard.sh - Armed-telemetry sharded guard -------===#
#
# Part of the Cable reproduction of "Debugging Temporal Specifications with
# Concept Analysis" (PLDI 2003). MIT license.
#
#===------------------------------------------------------------------------===#
#
# Bounds the cost of the cross-process telemetry harvest. The
# instrument_overhead bench builds the same context through
# ShardedBuilder twice — telemetry disarmed, then metrics + trace rings
# armed in every process (worker deltas and spans encoded, framed,
# decoded, and merged in the supervisor) — and this guard requires the
# armed min-of-N wall time to be at most CABLE_TELEMETRY_THRESHOLD_PCT
# (default 10%) slower than the disarmed one. One-sided: a faster armed
# run is trivially a pass. The 10% bound is deliberately looser than the
# 2% disarmed guard: armed telemetry is opt-in (--stats/--metrics-out/
# --trace-out), so it buys observability with bounded — not zero — cost.
#
# Exit codes: 0 pass, 1 regression or malformed bench output, 77 skip —
# strictly for a missing/unbuildable bench binary. A bench that runs but
# prints garbage is a failure, not a skip.
#
# Usage: telemetry_guard.sh <source-dir> <build-dir>
#
#===------------------------------------------------------------------------===#

set -u

SRC=${1:?usage: telemetry_guard.sh <source-dir> <build-dir>}
BUILD=${2:?usage: telemetry_guard.sh <source-dir> <build-dir>}
THRESHOLD_PCT=${CABLE_TELEMETRY_THRESHOLD_PCT:-10.0}
ATTEMPTS=3

say() { printf '%s\n' "$*"; }

bench="$BUILD/bench/instrument_overhead"
if [ ! -x "$bench" ]; then
  cmake --build "$BUILD" --target instrument_overhead -j "$(nproc)" \
    > /dev/null 2>&1
fi
if [ ! -x "$bench" ]; then
  say "SKIP: instrument_overhead bench binary missing"
  exit 77
fi

# One bench run prints both phases, measured back to back in the same
# process, so slow drift (thermal, noisy neighbors) cancels within a run.
run_mins() { # -> "sharded_disarmed_min sharded_armed_min"
  CABLE_BENCH_QUICK=1 CABLE_BENCH_OUT="${TMPDIR:-/tmp}" "$bench" 2>/dev/null \
    | awk '/^sharded_disarmed_min_ms /{d=$2} /^sharded_armed_min_ms /{a=$2}
           END{if (d && a) print d, a}'
}

best_delta=""
for attempt in $(seq 1 $ATTEMPTS); do
  set -- $(run_mins)
  d=${1:-}; a=${2:-}
  if [ -z "$d" ] || [ -z "$a" ]; then
    say "telemetry guard: FAIL (could not parse bench output)"
    exit 1
  fi
  # One-sided: only armed-slower-than-disarmed counts as overhead.
  result=$(awk -v d="$d" -v a="$a" -v thr="$THRESHOLD_PCT" 'BEGIN {
    if (d <= 0 || a <= 0) { print "bad"; exit }
    pct = (a - d) / d * 100
    printf "%.2f %s\n", pct, (pct <= thr ? "pass" : "over")
  }')
  set -- $result
  [ "${1:-bad}" = bad ] && { say "telemetry guard: FAIL (non-positive bench timings)"; exit 1; }
  delta=$1; verdict=$2
  say "attempt $attempt: sharded disarmed ${d}ms vs armed telemetry ${a}ms (overhead ${delta}%)"
  [ -z "$best_delta" ] && best_delta=$delta
  best_delta=$(awk -v x="$best_delta" -v y="$delta" 'BEGIN{print (y<x)?y:x}')
  if [ "$verdict" = pass ]; then
    say "telemetry guard: PASS (overhead ${delta}% <= ${THRESHOLD_PCT}%)"
    exit 0
  fi
done

say "telemetry guard: FAIL (best overhead ${best_delta}% > ${THRESHOLD_PCT}% after $ATTEMPTS attempts)"
exit 1
