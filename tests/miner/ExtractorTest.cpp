//===- tests/miner/ExtractorTest.cpp ---------------------------------------===//
//
// Part of the Cable reproduction of "Debugging Temporal Specifications with
// Concept Analysis" (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//

#include "miner/ScenarioExtractor.h"

#include "../TestHelpers.h"

#include <gtest/gtest.h>

#include <set>

using namespace cable;
using cable::test::parseTraces;

namespace {

std::multiset<std::string> renderedSet(const TraceSet &TS) {
  std::multiset<std::string> Out;
  for (const Trace &T : TS.traces())
    Out.insert(T.render(TS.table()));
  return Out;
}

} // namespace

TEST(ExtractorTest, SlicesInterleavedScenariosApart) {
  // Two fopen protocols interleaved in one run.
  TraceSet Runs = parseTraces(
      "fopen(v1) fopen(v2) fread(v1) fwrite(v2) fclose(v2) fclose(v1)\n");
  ExtractorOptions Options;
  Options.SeedNames = {"fopen"};
  TraceSet Scenarios = extractScenarios(Runs, Options);
  EXPECT_EQ(renderedSet(Scenarios),
            (std::multiset<std::string>{"fopen(v0) fread(v0) fclose(v0)",
                                        "fopen(v0) fwrite(v0) fclose(v0)"}));
}

TEST(ExtractorTest, IgnoresNonSeedObjects) {
  TraceSet Runs = parseTraces("noise(v9) fopen(v1) other(v3) fclose(v1)\n");
  ExtractorOptions Options;
  Options.SeedNames = {"fopen"};
  TraceSet Scenarios = extractScenarios(Runs, Options);
  ASSERT_EQ(Scenarios.size(), 1u);
  EXPECT_EQ(Scenarios[0].render(Scenarios.table()), "fopen(v0) fclose(v0)");
}

TEST(ExtractorTest, ArglessEventsNeverJoinScenarios) {
  TraceSet Runs = parseTraces("fopen(v1) barrier fclose(v1)\n");
  ExtractorOptions Options;
  Options.SeedNames = {"fopen"};
  TraceSet Scenarios = extractScenarios(Runs, Options);
  ASSERT_EQ(Scenarios.size(), 1u);
  EXPECT_EQ(Scenarios[0].render(Scenarios.table()), "fopen(v0) fclose(v0)");
}

TEST(ExtractorTest, MultipleSeedNames) {
  TraceSet Runs = parseTraces("fopen(v1) fclose(v1) popen(v2) pclose(v2)\n");
  ExtractorOptions Options;
  Options.SeedNames = {"fopen", "popen"};
  TraceSet Scenarios = extractScenarios(Runs, Options);
  EXPECT_EQ(renderedSet(Scenarios),
            (std::multiset<std::string>{"fopen(v0) fclose(v0)",
                                        "popen(v0) pclose(v0)"}));
}

TEST(ExtractorTest, RepeatedSeedOnSameObjectOpensOneScenario) {
  TraceSet Runs = parseTraces("seed(v1) use(v1) seed(v1) use(v1)\n");
  ExtractorOptions Options;
  Options.SeedNames = {"seed"};
  TraceSet Scenarios = extractScenarios(Runs, Options);
  ASSERT_EQ(Scenarios.size(), 1u);
  EXPECT_EQ(Scenarios[0].render(Scenarios.table()),
            "seed(v0) use(v0) seed(v0) use(v0)");
}

TEST(ExtractorTest, TransitiveValuesFollowSharedEvents) {
  TraceSet Runs =
      parseTraces("seed(v1) bridge(v1,v2) tail(v2) lonely(v3)\n");
  ExtractorOptions Direct;
  Direct.SeedNames = {"seed"};
  Direct.TransitiveValues = false;
  TraceSet S1 = extractScenarios(Runs, Direct);
  ASSERT_EQ(S1.size(), 1u);
  EXPECT_EQ(S1[0].render(S1.table()), "seed(v0) bridge(v0,v1)")
      << "without transitivity, tail(v2) is not reached";

  ExtractorOptions Transitive = Direct;
  Transitive.TransitiveValues = true;
  TraceSet S2 = extractScenarios(Runs, Transitive);
  ASSERT_EQ(S2.size(), 1u);
  EXPECT_EQ(S2[0].render(S2.table()), "seed(v0) bridge(v0,v1) tail(v1)")
      << "with transitivity, v2 joins through the bridge event; lonely(v3) "
         "stays out";
}

TEST(ExtractorTest, ScenariosAreCanonicalized) {
  TraceSet Runs = parseTraces("fopen(v7) fclose(v7)\n"
                              "fopen(v42) fclose(v42)\n");
  ExtractorOptions Options;
  Options.SeedNames = {"fopen"};
  TraceSet Scenarios = extractScenarios(Runs, Options);
  ASSERT_EQ(Scenarios.size(), 2u);
  EXPECT_TRUE(Scenarios[0] == Scenarios[1])
      << "same protocol from different runs must compare equal";
}

TEST(ExtractorTest, MaxScenarioLengthTruncates) {
  TraceSet Runs = parseTraces("seed(v1) a(v1) b(v1) c(v1) d(v1)\n");
  ExtractorOptions Options;
  Options.SeedNames = {"seed"};
  Options.MaxScenarioLength = 3;
  TraceSet Scenarios = extractScenarios(Runs, Options);
  ASSERT_EQ(Scenarios.size(), 1u);
  EXPECT_EQ(Scenarios[0].size(), 3u);
}

TEST(ExtractorTest, NoSeedsNoScenarios) {
  TraceSet Runs = parseTraces("a(v1) b(v1)\n");
  ExtractorOptions Options;
  Options.SeedNames = {"zzz"};
  TraceSet Scenarios = extractScenarios(Runs, Options);
  EXPECT_TRUE(Scenarios.empty());
}
