//===- tests/miner/MinerTest.cpp -------------------------------------------===//
//
// Part of the Cable reproduction of "Debugging Temporal Specifications with
// Concept Analysis" (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//

#include "miner/Miner.h"

#include "../TestHelpers.h"
#include "support/RNG.h"
#include "workload/Generator.h"
#include "workload/Oracle.h"

#include <gtest/gtest.h>

using namespace cable;
using cable::test::makeTrace;

namespace {

MinerOptions stdioMinerOptions() {
  MinerOptions Options;
  Options.Extract.SeedNames = {"fopen", "popen"};
  Options.Learn.K = 2;
  Options.Learn.S = 1.0;
  return Options;
}

} // namespace

TEST(MinerTest, MinedSpecAcceptsAllScenarios) {
  ProtocolModel Model = stdioProtocol();
  EventTable Table;
  WorkloadGenerator Gen(Model, Table);
  RNG Rand(2024);
  TraceSet Runs = Gen.generateRuns(Rand);
  ASSERT_FALSE(Runs.empty());

  Miner M(stdioMinerOptions());
  MiningResult Result = M.mine(Runs, "stdio");
  ASSERT_FALSE(Result.Scenarios.empty());
  for (const Trace &T : Result.Scenarios.traces())
    EXPECT_TRUE(Result.Spec.FA.accepts(T, Result.Scenarios.table()))
        << T.render(Result.Scenarios.table());
}

TEST(MinerTest, MinedSpecFromBuggyTrainingAcceptsBuggyTraces) {
  // §2.2: erroneous scenarios in the training set make the miner learn a
  // specification that accepts erroneous traces — the debugging problem.
  ProtocolModel Model = stdioProtocol();
  Model.ErrorRate = 0.4;
  EventTable Table;
  WorkloadGenerator Gen(Model, Table);
  RNG Rand(7);
  TraceSet Runs = Gen.generateRuns(Rand);
  Miner M(stdioMinerOptions());
  MiningResult Result = M.mine(Runs, "stdio");

  Oracle Truth(Model, Result.Scenarios.table());
  bool AcceptsSomeBad = false;
  for (const Trace &T : Result.Scenarios.traces())
    if (!Truth.isCorrect(T, Result.Scenarios.table()))
      AcceptsSomeBad |= Result.Spec.FA.accepts(T, Result.Scenarios.table());
  EXPECT_TRUE(AcceptsSomeBad)
      << "with 40% error rate the mined FA must cover erroneous traces";
}

TEST(MinerTest, RelearningFromGoodTracesFixesSpec) {
  // The §2.2 fix: rerun the back end on the good traces only; the result
  // must accept good scenarios and reject the bad ones.
  ProtocolModel Model = stdioProtocol();
  EventTable Table;
  WorkloadGenerator Gen(Model, Table);
  RNG Rand(11);
  TraceSet Runs = Gen.generateRuns(Rand);
  Miner M(stdioMinerOptions());
  TraceSet Scenarios = M.extract(Runs);
  ASSERT_FALSE(Scenarios.empty());

  Oracle Truth(Model, Scenarios.table());
  std::vector<Trace> Good;
  std::vector<Trace> Bad;
  for (const Trace &T : Scenarios.traces()) {
    if (Truth.isCorrect(T, Scenarios.table()))
      Good.push_back(T);
    else
      Bad.push_back(T);
  }
  ASSERT_FALSE(Good.empty());
  ASSERT_FALSE(Bad.empty());

  Specification Fixed = M.learn(Good, Scenarios.table(), "stdio-fixed");
  for (const Trace &T : Good)
    EXPECT_TRUE(Fixed.FA.accepts(T, Scenarios.table()));
  for (const Trace &T : Bad)
    EXPECT_FALSE(Fixed.FA.accepts(T, Scenarios.table()))
        << T.render(Scenarios.table());
}

TEST(MinerTest, SpecificationCounts) {
  EventTable Table;
  std::vector<Trace> Traces{makeTrace(Table, "a b"),
                            makeTrace(Table, "a c")};
  Miner M(MinerOptions{});
  Specification Spec = M.learn(Traces, Table, "tiny");
  EXPECT_EQ(Spec.Name, "tiny");
  EXPECT_EQ(Spec.numStates(), Spec.FA.numStates());
  EXPECT_EQ(Spec.numTransitions(), Spec.FA.numTransitions());
  EXPECT_GT(Spec.numStates(), 0u);
}
