//===- tests/trace/TraceSetTest.cpp ----------------------------------------===//
//
// Part of the Cable reproduction of "Debugging Temporal Specifications with
// Concept Analysis" (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//

#include "trace/TraceSet.h"

#include <gtest/gtest.h>

using namespace cable;

namespace {

TraceSet parseOrDie(const char *Text) {
  std::string Err;
  std::optional<TraceSet> TS = TraceSet::parse(Text, Err);
  EXPECT_TRUE(TS.has_value()) << Err;
  return std::move(*TS);
}

} // namespace

TEST(TraceSetTest, ParsesLinesSkippingCommentsAndBlanks) {
  TraceSet TS = parseOrDie("# header\n"
                           "a(v0) b(v0)\n"
                           "\n"
                           "  # indented comment\n"
                           "c\n");
  ASSERT_EQ(TS.size(), 2u);
  EXPECT_EQ(TS[0].size(), 2u);
  EXPECT_EQ(TS[1].size(), 1u);
}

TEST(TraceSetTest, ParseReportsLineNumber) {
  std::string Err;
  std::optional<TraceSet> TS = TraceSet::parse("a(v0)\nb(vX)\n", Err);
  EXPECT_FALSE(TS.has_value());
  EXPECT_NE(Err.find("line 2"), std::string::npos) << Err;
}

TEST(TraceSetTest, RenderParseRoundTrip) {
  TraceSet TS = parseOrDie("a(v0) b(v0,v1)\nc d(v2)\n");
  TraceSet Again = parseOrDie(TS.render().c_str());
  ASSERT_EQ(Again.size(), TS.size());
  for (size_t I = 0; I < TS.size(); ++I)
    EXPECT_EQ(Again[I].render(Again.table()), TS[I].render(TS.table()));
}

TEST(TraceSetTest, ComputeClassesGroupsIdenticalTraces) {
  TraceSet TS = parseOrDie("a b\n"
                           "c\n"
                           "a b\n"
                           "a b\n"
                           "c\n");
  TraceClasses C = TS.computeClasses();
  ASSERT_EQ(C.numClasses(), 2u);
  EXPECT_EQ(C.Multiplicity[0], 3u);
  EXPECT_EQ(C.Multiplicity[1], 2u);
  EXPECT_EQ(C.Members[0], (std::vector<size_t>{0, 2, 3}));
  EXPECT_EQ(C.ClassOf, (std::vector<size_t>{0, 1, 0, 0, 1}));
}

TEST(TraceSetTest, DedupKeepsFirstAppearanceOrder) {
  TraceSet TS = parseOrDie("b\na\nb\na\nc\n");
  TraceSet D = TS.dedup();
  ASSERT_EQ(D.size(), 3u);
  EXPECT_EQ(D[0].render(D.table()), "b");
  EXPECT_EQ(D[1].render(D.table()), "a");
  EXPECT_EQ(D[2].render(D.table()), "c");
}

TEST(TraceSetTest, SubsetSelectsByIndex) {
  TraceSet TS = parseOrDie("a\nb\nc\n");
  TraceSet Sub = TS.subset({2, 0});
  ASSERT_EQ(Sub.size(), 2u);
  EXPECT_EQ(Sub[0].render(Sub.table()), "c");
  EXPECT_EQ(Sub[1].render(Sub.table()), "a");
}

TEST(TraceSetTest, FilterKeepsMatchingTraces) {
  TraceSet TS = parseOrDie("a b\nc\na\n");
  TraceSet Long = TS.filter([](const Trace &T) { return T.size() >= 2; });
  ASSERT_EQ(Long.size(), 1u);
  EXPECT_EQ(Long[0].render(Long.table()), "a b");
  TraceSet None = TS.filter([](const Trace &) { return false; });
  EXPECT_TRUE(None.empty());
  TraceSet All = TS.filter([](const Trace &) { return true; });
  EXPECT_EQ(All.size(), TS.size());
}

TEST(TraceSetTest, EmptySetBehaves) {
  TraceSet TS = parseOrDie("");
  EXPECT_TRUE(TS.empty());
  EXPECT_EQ(TS.computeClasses().numClasses(), 0u);
  EXPECT_EQ(TS.render(), "");
}

TEST(TraceSetTest, ClassesDistinguishValuePatterns) {
  // Same event names, different value wiring: distinct classes.
  TraceSet TS = parseOrDie("open(v0) close(v0)\n"
                           "open(v0) close(v1)\n");
  EXPECT_EQ(TS.computeClasses().numClasses(), 2u);
}

TEST(TraceSetTest, DiagnosticCarriesLineAndColumn) {
  Diagnostic Diag;
  // Line 2: the bad token 'vX' starts at 0-based offset 2 -> column 3.
  EXPECT_FALSE(TraceSet::parse("a(v0)\nb(vX)\n", Diag).has_value());
  EXPECT_EQ(Diag.Code, ErrorCode::ParseError);
  EXPECT_EQ(Diag.Pos.Line, 2u);
  EXPECT_EQ(Diag.Pos.Col, 3u);

  // The column is rebased onto the whole line, not the failing event:
  // 'zz' inside the second event starts at offset 8 -> column 9.
  Diagnostic D2;
  EXPECT_FALSE(TraceSet::parse("a(v0) b(zz)\n", D2).has_value());
  EXPECT_EQ(D2.Pos.Line, 1u);
  EXPECT_EQ(D2.Pos.Col, 9u);
}

TEST(TraceSetTest, OverflowValueTokenIsAnErrorNotACrash) {
  Diagnostic Diag;
  EXPECT_FALSE(
      TraceSet::parse("a(v99999999999999999999)\n", Diag).has_value());
  EXPECT_EQ(Diag.Pos.Line, 1u);
  EXPECT_EQ(Diag.Pos.Col, 3u);
  EXPECT_NE(Diag.Message.find("bad value token"), std::string::npos);
}
