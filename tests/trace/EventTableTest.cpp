//===- tests/trace/EventTableTest.cpp --------------------------------------===//
//
// Part of the Cable reproduction of "Debugging Temporal Specifications with
// Concept Analysis" (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//

#include "trace/EventTable.h"

#include <gtest/gtest.h>

using namespace cable;

TEST(EventTableTest, NameInterningIsStable) {
  EventTable T;
  NameId A = T.internName("fopen");
  NameId B = T.internName("fclose");
  EXPECT_NE(A, B);
  EXPECT_EQ(T.internName("fopen"), A);
  EXPECT_EQ(T.nameText(A), "fopen");
  EXPECT_EQ(T.numNames(), 2u);
}

TEST(EventTableTest, LookupNameWithoutInterning) {
  EventTable T;
  EXPECT_FALSE(T.lookupName("nope").has_value());
  NameId A = T.internName("yes");
  ASSERT_TRUE(T.lookupName("yes").has_value());
  EXPECT_EQ(*T.lookupName("yes"), A);
}

TEST(EventTableTest, EventInterningDedups) {
  EventTable T;
  EventId A = T.internEvent("fopen", {0});
  EventId B = T.internEvent("fopen", {0});
  EventId C = T.internEvent("fopen", {1});
  EventId D = T.internEvent("fopen");
  EXPECT_EQ(A, B);
  EXPECT_NE(A, C);
  EXPECT_NE(A, D);
  EXPECT_EQ(T.numEvents(), 3u);
}

TEST(EventTableTest, RenderEvent) {
  EventTable T;
  EventId A = T.internEvent("f", {0, 2});
  EventId B = T.internEvent("g");
  EXPECT_EQ(T.renderEvent(A), "f(v0,v2)");
  EXPECT_EQ(T.renderEvent(B), "g");
}

TEST(EventTableTest, ParseRoundTrip) {
  EventTable T;
  std::string Err;
  for (const char *Text : {"f(v0,v2)", "g", "h(v10)"}) {
    std::optional<EventId> Id = T.parseEvent(Text, Err);
    ASSERT_TRUE(Id.has_value()) << Err;
    EXPECT_EQ(T.renderEvent(*Id), Text);
  }
}

TEST(EventTableTest, ParseToleratesSpaces) {
  EventTable T;
  std::string Err;
  std::optional<EventId> Id = T.parseEvent(" f( v0 , v1 ) ", Err);
  ASSERT_TRUE(Id.has_value()) << Err;
  EXPECT_EQ(T.renderEvent(*Id), "f(v0,v1)");
}

TEST(EventTableTest, ParseEmptyArgList) {
  EventTable T;
  std::string Err;
  std::optional<EventId> Id = T.parseEvent("f()", Err);
  ASSERT_TRUE(Id.has_value()) << Err;
  EXPECT_EQ(T.event(*Id).Args.size(), 0u);
}

TEST(EventTableTest, ParseErrors) {
  EventTable T;
  std::string Err;
  EXPECT_FALSE(T.parseEvent("", Err).has_value());
  EXPECT_FALSE(T.parseEvent("f(v0", Err).has_value());
  EXPECT_FALSE(T.parseEvent("f(x0)", Err).has_value());
  EXPECT_FALSE(T.parseEvent("f(v)", Err).has_value());
  EXPECT_FALSE(T.parseEvent("(v0)", Err).has_value());
  EXPECT_FALSE(T.parseEvent("fv0)", Err).has_value());
  EXPECT_FALSE(Err.empty());
}

TEST(EventTableTest, DiagnosticColumnsAreOneBased) {
  EventTable T;
  Diagnostic Diag;
  // 'x0' starts at 0-based offset 2 -> column 3.
  EXPECT_FALSE(T.parseEvent("f(x0)", Diag).has_value());
  EXPECT_EQ(Diag.Code, ErrorCode::ParseError);
  EXPECT_EQ(Diag.Pos.Col, 3u);

  // Missing ')': the column points at the opening paren.
  Diagnostic D2;
  EXPECT_FALSE(T.parseEvent("f(v0", D2).has_value());
  EXPECT_EQ(D2.Pos.Col, 2u);

  // Leading whitespace counts toward the column: 'w1' at offset 4 -> 5.
  Diagnostic D3;
  EXPECT_FALSE(T.parseEvent("  f(w1)", D3).has_value());
  EXPECT_EQ(D3.Pos.Col, 5u);
}

TEST(EventTableTest, OverflowValueTokenFailsCleanly) {
  EventTable T;
  std::string Err;
  EXPECT_FALSE(T.parseEvent("f(v99999999999999999999)", Err).has_value());
  EXPECT_NE(Err.find("bad value token"), std::string::npos);
}
