//===- tests/trace/TraceTest.cpp -------------------------------------------===//
//
// Part of the Cable reproduction of "Debugging Temporal Specifications with
// Concept Analysis" (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//

#include "trace/Trace.h"

#include "trace/TraceSet.h"

#include <gtest/gtest.h>

using namespace cable;

namespace {

Trace makeTrace(EventTable &T, std::initializer_list<const char *> Events) {
  Trace Out;
  std::string Err;
  for (const char *E : Events) {
    std::optional<EventId> Id = T.parseEvent(E, Err);
    EXPECT_TRUE(Id.has_value()) << Err;
    Out.append(*Id);
  }
  return Out;
}

} // namespace

TEST(TraceTest, RenderSpaceSeparated) {
  EventTable T;
  Trace Tr = makeTrace(T, {"a(v0)", "b", "c(v0,v1)"});
  EXPECT_EQ(Tr.render(T), "a(v0) b c(v0,v1)");
}

TEST(TraceTest, CanonicalizeRenumbersByFirstOccurrence) {
  EventTable T;
  Trace Tr = makeTrace(T, {"open(v7)", "use(v7,v3)", "close(v3)"});
  Trace Canon = Tr.canonicalized(T);
  EXPECT_EQ(Canon.render(T), "open(v0) use(v0,v1) close(v1)");
}

TEST(TraceTest, CanonicalizeIsIdempotent) {
  EventTable T;
  Trace Tr = makeTrace(T, {"a(v5)", "b(v5,v9)", "c(v9)"});
  Trace C1 = Tr.canonicalized(T);
  Trace C2 = C1.canonicalized(T);
  EXPECT_TRUE(C1 == C2);
}

TEST(TraceTest, CanonicalizeMergesRenamedCopies) {
  EventTable T;
  Trace A = makeTrace(T, {"open(v1)", "close(v1)"});
  Trace B = makeTrace(T, {"open(v8)", "close(v8)"});
  EXPECT_FALSE(A == B);
  EXPECT_TRUE(A.canonicalized(T) == B.canonicalized(T));
}

TEST(TraceTest, EmptyTrace) {
  EventTable T;
  Trace Tr;
  EXPECT_TRUE(Tr.empty());
  EXPECT_EQ(Tr.render(T), "");
  EXPECT_TRUE(Tr.canonicalized(T) == Tr);
}

TEST(TraceTest, HashEqualTracesEqualHashes) {
  EventTable T;
  Trace A = makeTrace(T, {"a(v0)", "b(v0)"});
  Trace B = makeTrace(T, {"a(v0)", "b(v0)"});
  EXPECT_EQ(TraceHash{}(A), TraceHash{}(B));
}
