//===- tests/TestHelpers.h - Shared test utilities --------------*- C++ -*-===//
//
// Part of the Cable reproduction of "Debugging Temporal Specifications with
// Concept Analysis" (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//

#ifndef CABLE_TESTS_TESTHELPERS_H
#define CABLE_TESTS_TESTHELPERS_H

#include "fa/Regex.h"
#include "support/StringUtil.h"
#include "trace/TraceSet.h"

#include <gtest/gtest.h>

namespace cable::test {

/// Parses one trace from space-separated event text.
inline Trace makeTrace(EventTable &Table, std::string_view Text) {
  std::string Err;
  Trace Out;
  for (const std::string &Tok : splitWhitespace(Text)) {
    std::optional<EventId> Id = Table.parseEvent(Tok, Err);
    EXPECT_TRUE(Id.has_value()) << "bad event '" << Tok << "': " << Err;
    if (Id)
      Out.append(*Id);
  }
  return Out;
}

/// Parses a multi-line trace set, failing the test on errors.
inline TraceSet parseTraces(const char *Text) {
  std::string Err;
  std::optional<TraceSet> TS = TraceSet::parse(Text, Err);
  EXPECT_TRUE(TS.has_value()) << Err;
  return TS ? std::move(*TS) : TraceSet();
}

/// Compiles a regex to an epsilon-free FA, failing the test on errors.
inline Automaton compileFA(std::string_view Pattern, EventTable &Table) {
  std::string Err;
  std::optional<Automaton> FA = compileRegex(Pattern, Table, Err);
  EXPECT_TRUE(FA.has_value()) << "bad pattern '" << Pattern << "': " << Err;
  return FA ? FA->withoutEpsilons() : Automaton();
}

} // namespace cable::test

#endif // CABLE_TESTS_TESTHELPERS_H
