//===- tests/cable/PersistenceTest.cpp -------------------------------------===//
//
// Part of the Cable reproduction of "Debugging Temporal Specifications with
// Concept Analysis" (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//

#include "cable/Session.h"

#include "../TestHelpers.h"
#include "fa/Templates.h"

#include <gtest/gtest.h>

using namespace cable;
using cable::test::compileFA;
using cable::test::parseTraces;

namespace {

Session makeSession(const char *Text) {
  TraceSet Traces = parseTraces(Text);
  Automaton Ref =
      makeUnorderedFA(templateAlphabet(Traces.traces()), Traces.table());
  return Session(std::move(Traces), std::move(Ref));
}

} // namespace

TEST(PersistenceTest, RoundTripPreservesLabels) {
  Session A = makeSession("x(v0) y(v0)\nx(v0)\ny(v0)\n");
  LabelId Good = A.internLabel("good");
  LabelId Bad = A.internLabel("bad");
  A.setLabel(0, Good);
  A.setLabel(1, Bad);
  // Object 2 left unlabeled.
  std::string Saved = A.serializeLabels();

  Session B = makeSession("x(v0) y(v0)\nx(v0)\ny(v0)\n");
  std::string Err;
  size_t Unmatched = 0;
  ASSERT_TRUE(B.loadLabels(Saved, Err, &Unmatched)) << Err;
  EXPECT_EQ(Unmatched, 0u);
  EXPECT_EQ(B.labelName(*B.labelOf(0)), "good");
  EXPECT_EQ(B.labelName(*B.labelOf(1)), "bad");
  EXPECT_FALSE(B.labelOf(2).has_value());
}

TEST(PersistenceTest, LabelsSurviveReclusteringWithDifferentFA) {
  // The §4.3 remedy re-clusters with a new FA; labels are matched by
  // trace content, so they carry over.
  Session A = makeSession("seed(v0) a(v0)\nseed(v0) b(v0)\n");
  A.setLabel(0, A.internLabel("good"));
  A.setLabel(1, A.internLabel("bad"));
  std::string Saved = A.serializeLabels();

  TraceSet Traces = parseTraces("seed(v0) b(v0)\nseed(v0) a(v0)\n");
  EventId Seed = Traces.table().internEvent("seed", {0});
  Automaton Ref = makeSeedOrderFA(templateAlphabet(Traces.traces()), Seed,
                                  Traces.table());
  Session B(std::move(Traces), std::move(Ref));
  std::string Err;
  ASSERT_TRUE(B.loadLabels(Saved, Err)) << Err;
  // Object order differs; match by content.
  EXPECT_EQ(B.labelName(*B.labelOf(0)), "bad");  // seed b
  EXPECT_EQ(B.labelName(*B.labelOf(1)), "good"); // seed a
}

TEST(PersistenceTest, UnmatchedTracesCounted) {
  Session A = makeSession("x(v0)\n");
  A.setLabel(0, A.internLabel("good"));
  std::string Saved = A.serializeLabels() + "bad z(v0) w(v0)\n";

  Session B = makeSession("x(v0)\n");
  std::string Err;
  size_t Unmatched = 0;
  ASSERT_TRUE(B.loadLabels(Saved, Err, &Unmatched)) << Err;
  EXPECT_EQ(Unmatched, 1u);
  EXPECT_EQ(B.labelName(*B.labelOf(0)), "good");
}

TEST(PersistenceTest, CommentsAndBlanksIgnored) {
  Session A = makeSession("x(v0)\n");
  std::string Err;
  ASSERT_TRUE(A.loadLabels("# comment\n\n  \ngood x(v0)\n", Err)) << Err;
  EXPECT_EQ(A.labelName(*A.labelOf(0)), "good");
}

TEST(PersistenceTest, MalformedLineRejected) {
  Session A = makeSession("x(v0)\n");
  std::string Err;
  EXPECT_FALSE(A.loadLabels("justonetoken\n", Err));
  EXPECT_NE(Err.find("line 1"), std::string::npos) << Err;
}

TEST(PersistenceTest, ConceptStatesReflectLoadedLabels) {
  Session A = makeSession("x(v0)\ny(v0)\n");
  std::string Err;
  ASSERT_TRUE(A.loadLabels("good x(v0)\ngood y(v0)\n", Err)) << Err;
  EXPECT_TRUE(A.allLabeled());
  EXPECT_EQ(A.stateOf(A.lattice().top()), ConceptState::FullyLabeled);
}

// -- Session snapshots (journal compaction state) ---------------------------

TEST(PersistenceTest, SnapshotRoundTripsLabelsInternOrderAndUndo) {
  Session A = makeSession("x(v0) y(v0)\nx(v0)\ny(v0)\n");
  // Intern a label that never gets used: the order must still survive,
  // or replayed label-id allocation would diverge.
  A.internLabel("zebra");
  LabelId Good = A.internLabel("good");
  A.setLabel(0, Good);
  A.labelTraces(A.lattice().top(), TraceSelect::Unlabeled,
                A.internLabel("bad"));
  ASSERT_TRUE(A.undo());
  A.setLabel(1, Good);

  Session B = makeSession("x(v0) y(v0)\nx(v0)\ny(v0)\n");
  ASSERT_TRUE(B.loadSnapshot(A.serializeSnapshot()).isOk());
  EXPECT_EQ(B.serializeSnapshot(), A.serializeSnapshot());
  EXPECT_EQ(B.numLabels(), A.numLabels());
  EXPECT_EQ(B.labelName(0), "zebra");
  EXPECT_EQ(B.labelName(*B.labelOf(0)), "good");
  EXPECT_EQ(B.labelName(*B.labelOf(1)), "good");
  EXPECT_EQ(B.undoDepth(), A.undoDepth());

  // The undo history replays identically: both sessions step back to the
  // same states.
  while (A.undoDepth() > 0) {
    ASSERT_TRUE(A.undo());
    ASSERT_TRUE(B.undo());
    EXPECT_EQ(B.serializeSnapshot(), A.serializeSnapshot());
  }
  EXPECT_FALSE(B.undo());
}

TEST(PersistenceTest, SnapshotRejectsObjectCountMismatch) {
  Session A = makeSession("x(v0)\ny(v0)\n");
  A.setLabel(0, A.internLabel("good"));
  std::string Snap = A.serializeSnapshot();

  Session B = makeSession("x(v0)\n");
  Status St = B.loadSnapshot(Snap);
  ASSERT_FALSE(St.isOk());
  EXPECT_EQ(St.diagnostic().Code, ErrorCode::InvalidArgument);
  // The failed load left B untouched.
  EXPECT_EQ(B.numLabels(), 0u);
  EXPECT_FALSE(B.labelOf(0).has_value());
}

TEST(PersistenceTest, SnapshotRejectsGarbageWithAPositionedError) {
  Session A = makeSession("x(v0)\n");
  Status St = A.loadSnapshot("objects 1\nwat 7 barf\n");
  ASSERT_FALSE(St.isOk());
  EXPECT_EQ(St.diagnostic().Code, ErrorCode::ParseError);
  EXPECT_EQ(St.diagnostic().Pos.Line, 2u);
  EXPECT_EQ(A.numLabels(), 0u);
}

TEST(PersistenceTest, SnapshotOfEmptySessionIsLoadable) {
  Session A = makeSession("x(v0)\n");
  Session B = makeSession("x(v0)\n");
  ASSERT_TRUE(B.loadSnapshot(A.serializeSnapshot()).isOk());
  EXPECT_EQ(B.numLabels(), 0u);
  EXPECT_EQ(B.undoDepth(), 0u);
}
