//===- tests/cable/SessionModelTest.cpp ------------------------------------===//
//
// Part of the Cable reproduction of "Debugging Temporal Specifications with
// Concept Analysis" (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//
//
// Model-based testing of the Session's labeling state machine: a random
// sequence of label / setLabel / undo / mergeBack operations is applied
// both to the Session and to a trivial reference model (a map from object
// to label plus an explicit history). After every step the two must
// agree, and the derived views (concept states, selections, label
// populations) must match recomputation from the model.
//
//===----------------------------------------------------------------------===//

#include "cable/Session.h"

#include "../TestHelpers.h"
#include "fa/Templates.h"
#include "support/RNG.h"

#include <gtest/gtest.h>

#include <map>
#include <optional>

using namespace cable;

namespace {

/// The reference model: labels plus an undo history of full snapshots.
struct Model {
  std::vector<std::optional<LabelId>> Labels;
  std::vector<std::vector<std::optional<LabelId>>> History;

  explicit Model(size_t N) : Labels(N) {}

  void snapshot() { History.push_back(Labels); }
  bool undo() {
    if (History.empty())
      return false;
    Labels = History.back();
    History.pop_back();
    return true;
  }
};

Session makeRandomSession(RNG &Rand) {
  TraceSet Traces;
  std::vector<std::string> Pool{"a", "b", "c", "d"};
  size_t N = 3 + Rand.nextIndex(8);
  for (size_t I = 0; I < N; ++I) {
    Trace T;
    size_t Len = 1 + Rand.nextIndex(4);
    for (size_t J = 0; J < Len; ++J)
      T.append(Traces.table().internEvent(Pool[Rand.nextIndex(Pool.size())]));
    Traces.add(std::move(T));
  }
  Automaton Ref =
      makeUnorderedFA(templateAlphabet(Traces.traces()), Traces.table());
  return Session(std::move(Traces), std::move(Ref));
}

void expectAgreement(const Session &S, const Model &M) {
  ASSERT_EQ(M.Labels.size(), S.numObjects());
  for (size_t Obj = 0; Obj < S.numObjects(); ++Obj)
    EXPECT_EQ(S.labelOf(Obj), M.Labels[Obj]) << "object " << Obj;

  // Global views.
  size_t Unlabeled = 0;
  for (const auto &L : M.Labels)
    Unlabeled += !L.has_value();
  EXPECT_EQ(S.unlabeledObjects().count(), Unlabeled);
  EXPECT_EQ(S.allLabeled(), Unlabeled == 0);
  EXPECT_EQ(S.undoDepth(), M.History.size());

  // Concept states recomputed from the model.
  for (ConceptLattice::NodeId Id = 0; Id < S.lattice().size(); ++Id) {
    bool AnyLabeled = false, AnyUnlabeled = false;
    for (size_t Obj : S.lattice().node(Id).Extent) {
      (M.Labels[Obj] ? AnyLabeled : AnyUnlabeled) = true;
    }
    ConceptState Expected =
        AnyLabeled && AnyUnlabeled
            ? ConceptState::PartlyLabeled
            : (AnyUnlabeled ? ConceptState::Unlabeled
                            : ConceptState::FullyLabeled);
    EXPECT_EQ(S.stateOf(Id), Expected) << "concept " << Id;
  }
}

} // namespace

class SessionModelTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SessionModelTest, RandomOperationSequencesAgreeWithModel) {
  RNG Rand(GetParam() * 9176 + 3);
  Session S = makeRandomSession(Rand);
  Model M(S.numObjects());

  LabelId Good = S.internLabel("good");
  LabelId Bad = S.internLabel("bad");
  std::vector<LabelId> AllLabels{Good, Bad};

  for (int Step = 0; Step < 60; ++Step) {
    switch (Rand.nextBounded(5)) {
    case 0: { // labelTraces with a random selection mode.
      auto Id = static_cast<ConceptLattice::NodeId>(
          Rand.nextIndex(S.lattice().size()));
      LabelId L = AllLabels[Rand.nextIndex(AllLabels.size())];
      size_t Mode = Rand.nextBounded(3);
      TraceSelect Select = Mode == 0   ? TraceSelect::All
                           : Mode == 1 ? TraceSelect::Unlabeled
                                       : TraceSelect::WithLabel;
      std::optional<LabelId> From;
      if (Select == TraceSelect::WithLabel)
        From = AllLabels[Rand.nextIndex(AllLabels.size())];

      M.snapshot();
      size_t Changed = S.labelTraces(Id, Select, L, From);
      size_t ModelChanged = 0;
      for (size_t Obj : S.lattice().node(Id).Extent) {
        bool Selected =
            Select == TraceSelect::All ||
            (Select == TraceSelect::Unlabeled && !M.Labels[Obj]) ||
            (Select == TraceSelect::WithLabel && M.Labels[Obj] == From);
        if (Selected && M.Labels[Obj] != std::optional<LabelId>(L)) {
          M.Labels[Obj] = L;
          ++ModelChanged;
        }
      }
      EXPECT_EQ(Changed, ModelChanged);
      break;
    }
    case 1: { // setLabel.
      size_t Obj = Rand.nextIndex(S.numObjects());
      LabelId L = AllLabels[Rand.nextIndex(AllLabels.size())];
      M.snapshot();
      S.setLabel(Obj, L);
      M.Labels[Obj] = L;
      break;
    }
    case 2: { // undo.
      bool Expected = M.undo();
      EXPECT_EQ(S.undo(), Expected);
      break;
    }
    case 3: { // focus + label inside + mergeBack.
      auto Id = static_cast<ConceptLattice::NodeId>(
          Rand.nextIndex(S.lattice().size()));
      if (S.lattice().node(Id).Extent.none())
        break;
      FocusSession F = S.focus(
          Id, makeUnorderedFA(templateAlphabet(S.allTraces().traces()),
                              S.table()));
      // Label a random sub-object with a random label.
      size_t SubObj = Rand.nextIndex(F.Sub.numObjects());
      LabelId L = F.Sub.internLabel(Rand.nextBool(0.5) ? "good" : "bad");
      F.Sub.setLabel(SubObj, L);
      M.snapshot();
      S.mergeBack(F);
      M.Labels[F.ParentObjects[SubObj]] =
          S.internLabel(F.Sub.labelName(L));
      break;
    }
    case 4: { // Serialization round trip must be faithful mid-stream.
      std::string Saved = S.serializeLabels();
      size_t Lines = 0;
      for (char C : Saved)
        Lines += C == '\n';
      size_t LabeledCount = 0;
      for (const auto &L : M.Labels)
        LabeledCount += L.has_value();
      EXPECT_EQ(Lines, LabeledCount);
      break;
    }
    }
    expectAgreement(S, M);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SessionModelTest,
                         ::testing::Range<uint64_t>(0, 20));
