//===- tests/cable/SessionTest.cpp -----------------------------------------===//
//
// Part of the Cable reproduction of "Debugging Temporal Specifications with
// Concept Analysis" (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//

#include "cable/Session.h"

#include "../TestHelpers.h"
#include "cable/Strategies.h"
#include "fa/Templates.h"

#include <gtest/gtest.h>

using namespace cable;
using cable::test::compileFA;
using cable::test::makeTrace;
using cable::test::parseTraces;

namespace {

/// The §2.1 violation-trace population over the Fig. 3-style reference FA.
Session makeStdioSession() {
  TraceSet Traces = parseTraces("popen(v0) fread(v0) pclose(v0)\n"
                                "popen(v0) fwrite(v0) pclose(v0)\n"
                                "popen(v0) fread(v0)\n"
                                "fopen(v0) fread(v0)\n"
                                "fopen(v0) pclose(v0)\n"
                                "popen(v0) fread(v0) pclose(v0)\n");
  Automaton RefFA = makeUnorderedFA(templateAlphabet(Traces.traces()),
                                    Traces.table());
  return Session(std::move(Traces), std::move(RefFA));
}

} // namespace

TEST(SessionTest, ObjectsAreIdenticalTraceClasses) {
  Session S = makeStdioSession();
  EXPECT_EQ(S.allTraces().size(), 6u);
  EXPECT_EQ(S.numObjects(), 5u) << "two identical popen traces share a class";
  EXPECT_EQ(S.multiplicity(0), 2u);
}

TEST(SessionTest, ContextIsExecutedTransitionRelation) {
  Session S = makeStdioSession();
  const Context &Ctx = S.context();
  EXPECT_EQ(Ctx.numObjects(), S.numObjects());
  EXPECT_EQ(Ctx.numAttributes(), S.referenceFA().numTransitions());
  for (size_t Obj = 0; Obj < S.numObjects(); ++Obj) {
    BitVector Expected =
        S.referenceFA().executedTransitions(S.object(Obj), S.table());
    EXPECT_TRUE(Ctx.objectRow(Obj) == Expected);
  }
  EXPECT_TRUE(S.rejectedObjects().empty())
      << "the unordered reference FA accepts every trace";
}

TEST(SessionTest, RejectedObjectsReported) {
  TraceSet Traces = parseTraces("a(v0)\nb(v0)\n");
  Automaton RefFA = compileFA("a(v0)", Traces.table());
  Session S(std::move(Traces), std::move(RefFA));
  ASSERT_EQ(S.rejectedObjects().size(), 1u);
  EXPECT_EQ(S.rejectedObjects()[0], 1u);
}

TEST(SessionTest, LabelInterningStable) {
  Session S = makeStdioSession();
  LabelId Good = S.internLabel("good");
  LabelId Bad = S.internLabel("bad");
  EXPECT_NE(Good, Bad);
  EXPECT_EQ(S.internLabel("good"), Good);
  EXPECT_EQ(S.labelName(Bad), "bad");
  EXPECT_EQ(S.numLabels(), 2u);
}

TEST(SessionTest, ConceptStatesTransition) {
  Session S = makeStdioSession();
  LabelId Good = S.internLabel("good");
  Session::NodeId Top = S.lattice().top();
  EXPECT_EQ(S.stateOf(Top), ConceptState::Unlabeled);

  // Label one object by hand: top becomes partly labeled.
  S.setLabel(0, Good);
  EXPECT_EQ(S.stateOf(Top), ConceptState::PartlyLabeled);

  // Label everything: fully labeled.
  S.labelTraces(Top, TraceSelect::Unlabeled, Good);
  EXPECT_EQ(S.stateOf(Top), ConceptState::FullyLabeled);
  EXPECT_TRUE(S.allLabeled());
}

TEST(SessionTest, EmptyConceptIsFullyLabeled) {
  Session S = makeStdioSession();
  Session::NodeId Bottom = S.lattice().bottom();
  if (S.lattice().node(Bottom).Extent.none())
    EXPECT_EQ(S.stateOf(Bottom), ConceptState::FullyLabeled);
}

TEST(SessionTest, LabelingDescendantAffectsAncestor) {
  Session S = makeStdioSession();
  LabelId Good = S.internLabel("good");
  Session::NodeId Top = S.lattice().top();
  // Label any non-top concept's traces; top must become PartlyLabeled.
  for (Session::NodeId Id = 0; Id < S.lattice().size(); ++Id) {
    if (Id == Top)
      continue;
    BitVector Extent = S.lattice().node(Id).Extent;
    if (Extent.none() || Extent.count() == S.numObjects())
      continue;
    S.labelTraces(Id, TraceSelect::All, Good);
    EXPECT_EQ(S.stateOf(Top), ConceptState::PartlyLabeled);
    EXPECT_EQ(S.stateOf(Id), ConceptState::FullyLabeled);
    return;
  }
  FAIL() << "no suitable concept found";
}

TEST(SessionTest, LabelSelectionModes) {
  Session S = makeStdioSession();
  LabelId Good = S.internLabel("good");
  LabelId Bad = S.internLabel("bad");
  Session::NodeId Top = S.lattice().top();

  S.setLabel(0, Good);
  S.setLabel(1, Good);
  // Unlabeled selection labels only the remaining three.
  size_t Changed = S.labelTraces(Top, TraceSelect::Unlabeled, Bad);
  EXPECT_EQ(Changed, S.numObjects() - 2);
  EXPECT_EQ(*S.labelOf(0), Good);
  EXPECT_EQ(*S.labelOf(2), Bad);

  // Relabel: WithLabel moves all good to bad.
  Changed = S.labelTraces(Top, TraceSelect::WithLabel, Bad, Good);
  EXPECT_EQ(Changed, 2u);
  for (size_t Obj = 0; Obj < S.numObjects(); ++Obj)
    EXPECT_EQ(*S.labelOf(Obj), Bad);

  // All: overwrite everything back to good.
  Changed = S.labelTraces(Top, TraceSelect::All, Good);
  EXPECT_EQ(Changed, S.numObjects());
}

TEST(SessionTest, ClearLabelsResets) {
  Session S = makeStdioSession();
  LabelId Good = S.internLabel("good");
  S.labelTraces(S.lattice().top(), TraceSelect::All, Good);
  EXPECT_TRUE(S.allLabeled());
  S.clearLabels();
  EXPECT_FALSE(S.allLabeled());
  EXPECT_EQ(S.unlabeledObjects().count(), S.numObjects());
}

TEST(SessionTest, ShowTransitionsIsIntent) {
  Session S = makeStdioSession();
  for (Session::NodeId Id = 0; Id < S.lattice().size(); ++Id) {
    std::vector<TransitionId> Ts = S.showTransitions(Id);
    EXPECT_EQ(Ts.size(), S.lattice().node(Id).Intent.count());
  }
}

TEST(SessionTest, ShowFASummarizesSelectedTraces) {
  Session S = makeStdioSession();
  Session::NodeId Top = S.lattice().top();
  Automaton FA = S.showFA(Top, TraceSelect::All);
  for (size_t Obj = 0; Obj < S.numObjects(); ++Obj)
    EXPECT_TRUE(FA.accepts(S.object(Obj), S.table()));

  // Labeled subset: FA of good traces only accepts those.
  LabelId Good = S.internLabel("good");
  S.setLabel(0, Good);
  Automaton GoodFA = S.showFA(Top, TraceSelect::WithLabel, Good);
  EXPECT_TRUE(GoodFA.accepts(S.object(0), S.table()));
  EXPECT_FALSE(GoodFA.accepts(S.object(3), S.table()));
}

TEST(SessionTest, OwnObjectsDisjointFromChildren) {
  Session S = makeStdioSession();
  for (Session::NodeId Id = 0; Id < S.lattice().size(); ++Id) {
    BitVector Own = S.ownObjects(Id);
    EXPECT_TRUE(Own.isSubsetOf(S.lattice().node(Id).Extent));
    for (Session::NodeId C : S.lattice().children(Id))
      EXPECT_FALSE(Own.intersects(S.lattice().node(C).Extent));
  }
}

TEST(SessionTest, FocusAndMergeBack) {
  Session S = makeStdioSession();
  Session::NodeId Top = S.lattice().top();

  // Focus on the whole trace set with a seed-order FA on pclose.
  std::vector<Trace> Reps;
  for (size_t Obj = 0; Obj < S.numObjects(); ++Obj)
    Reps.push_back(S.object(Obj));
  EventTable &T = S.table();
  std::vector<EventId> Alpha = templateAlphabet(Reps);
  EventId Seed = T.internEvent("pclose", {0});
  FocusSession F = S.focus(Top, makeSeedOrderFA(Alpha, Seed, T));

  EXPECT_EQ(F.Sub.numObjects(), S.numObjects());
  // In the sub-session, traces without pclose are rejected by the
  // reference FA.
  EXPECT_FALSE(F.Sub.rejectedObjects().empty());

  LabelId SubGood = F.Sub.internLabel("good");
  F.Sub.setLabel(0, SubGood);
  F.Sub.setLabel(2, SubGood);
  S.mergeBack(F);

  LabelId Good = S.internLabel("good");
  EXPECT_EQ(*S.labelOf(F.ParentObjects[0]), Good);
  EXPECT_EQ(*S.labelOf(F.ParentObjects[2]), Good);
  EXPECT_FALSE(S.labelOf(F.ParentObjects[1]).has_value());
}

TEST(SessionTest, UndoRevertsLabelTraces) {
  Session S = makeStdioSession();
  LabelId Good = S.internLabel("good");
  LabelId Bad = S.internLabel("bad");
  EXPECT_EQ(S.undoDepth(), 0u);
  EXPECT_FALSE(S.undo());

  S.labelTraces(S.lattice().top(), TraceSelect::All, Good);
  EXPECT_EQ(S.undoDepth(), 1u);
  S.labelTraces(S.lattice().top(), TraceSelect::All, Bad);
  EXPECT_EQ(S.undoDepth(), 2u);

  ASSERT_TRUE(S.undo());
  for (size_t Obj = 0; Obj < S.numObjects(); ++Obj)
    EXPECT_EQ(*S.labelOf(Obj), Good);
  ASSERT_TRUE(S.undo());
  for (size_t Obj = 0; Obj < S.numObjects(); ++Obj)
    EXPECT_FALSE(S.labelOf(Obj).has_value());
  EXPECT_FALSE(S.undo());
}

TEST(SessionTest, UndoRevertsSetLabelAndMergeBack) {
  Session S = makeStdioSession();
  LabelId Good = S.internLabel("good");
  S.setLabel(2, Good);
  ASSERT_TRUE(S.undo());
  EXPECT_FALSE(S.labelOf(2).has_value());

  FocusSession F = S.focus(
      S.lattice().top(),
      makeUnorderedFA(templateAlphabet(S.allTraces().traces()), S.table()));
  F.Sub.setLabel(0, F.Sub.internLabel("bad"));
  S.mergeBack(F);
  ASSERT_TRUE(S.labelOf(F.ParentObjects[0]).has_value());
  ASSERT_TRUE(S.undo());
  EXPECT_FALSE(S.labelOf(F.ParentObjects[0]).has_value());
}

TEST(SessionTest, ClearLabelsDropsUndoHistory) {
  Session S = makeStdioSession();
  S.labelTraces(S.lattice().top(), TraceSelect::All, S.internLabel("good"));
  EXPECT_GT(S.undoDepth(), 0u);
  S.clearLabels();
  EXPECT_EQ(S.undoDepth(), 0u);
  EXPECT_FALSE(S.undo());
}

TEST(SessionTest, LoadLabelsIsAtomicOnErrors) {
  Session S = makeStdioSession();
  std::string Err;
  // First line valid, second malformed: no label may stick.
  std::string Text = S.object(0).render(S.table());
  EXPECT_FALSE(S.loadLabels("good " + Text + "\nmalformed\n", Err));
  for (size_t Obj = 0; Obj < S.numObjects(); ++Obj)
    EXPECT_FALSE(S.labelOf(Obj).has_value());
}

TEST(SessionTest, RenderDotShowsStateColors) {
  Session S = makeStdioSession();
  std::string Dot = S.renderDot("s");
  EXPECT_NE(Dot.find("palegreen"), std::string::npos);
  LabelId Good = S.internLabel("good");
  S.labelTraces(S.lattice().top(), TraceSelect::All, Good);
  Dot = S.renderDot("s");
  EXPECT_EQ(Dot.find("palegreen"), std::string::npos);
  EXPECT_NE(Dot.find("lightcoral"), std::string::npos);
}

TEST(SessionTest, EmptyTraceSetDegeneratesGracefully) {
  TraceSet Traces; // No traces at all.
  EventTable &T = Traces.table();
  Automaton Ref;
  StateId S0 = Ref.addState();
  Ref.setStart(S0);
  Ref.setAccepting(S0);
  Ref.addTransition(S0, S0, TransitionLabel::exact(T.internName("a"), {}));
  Session S(std::move(Traces), std::move(Ref));
  EXPECT_EQ(S.numObjects(), 0u);
  EXPECT_TRUE(S.allLabeled()) << "vacuously";
  EXPECT_GE(S.lattice().size(), 1u);
  EXPECT_EQ(S.stateOf(S.lattice().top()), ConceptState::FullyLabeled);
  LabelId Good = S.internLabel("good");
  EXPECT_EQ(S.labelTraces(S.lattice().top(), TraceSelect::All, Good), 0u);
  EXPECT_EQ(S.serializeLabels(), "");
}

TEST(SessionTest, TransitionlessReferenceFA) {
  // A reference FA with no transitions: every nonempty trace is rejected,
  // all attribute rows are empty, and the lattice collapses to one
  // concept — a degenerate but legal session.
  TraceSet Traces = parseTraces("a\nb\n");
  Automaton Ref;
  StateId S0 = Ref.addState();
  Ref.setStart(S0);
  Ref.setAccepting(S0);
  Session S(std::move(Traces), std::move(Ref));
  EXPECT_EQ(S.rejectedObjects().size(), 2u);
  EXPECT_EQ(S.lattice().size(), 1u);
  // Labeling still works (everything lands in the top concept).
  LabelId Bad = S.internLabel("bad");
  EXPECT_EQ(S.labelTraces(S.lattice().top(), TraceSelect::All, Bad), 2u);
  EXPECT_TRUE(S.allLabeled());
}

TEST(SessionTest, SingleTraceSession) {
  TraceSet Traces = parseTraces("a(v0) b(v0)\n");
  Automaton Ref =
      makeUnorderedFA(templateAlphabet(Traces.traces()), Traces.table());
  Session S(std::move(Traces), std::move(Ref));
  EXPECT_EQ(S.numObjects(), 1u);
  EXPECT_GE(S.lattice().size(), 1u);
  ReferenceLabeling Target = makeReferenceLabeling(S, {"good"});
  TopDownStrategy TD;
  StrategyCost Cost = TD.run(S, Target);
  EXPECT_TRUE(Cost.Finished);
  EXPECT_EQ(Cost.total(), 2u);
}

TEST(SessionTest, DescribeConceptMentionsStateAndSim) {
  Session S = makeStdioSession();
  std::string Desc = S.describeConcept(S.lattice().top());
  EXPECT_NE(Desc.find("sim="), std::string::npos);
  EXPECT_NE(Desc.find("unlabeled"), std::string::npos);
}

TEST(SessionTest, BuildRejectsEpsilonAutomaton) {
  TraceSet Traces = parseTraces("a(v0)\n");
  Automaton Eps;
  StateId S0 = Eps.addState(), S1 = Eps.addState();
  Eps.setStart(S0);
  Eps.setAccepting(S1);
  Eps.addTransition(S0, S1, TransitionLabel::epsilon());
  StatusOr<Session> Built = Session::build(std::move(Traces), std::move(Eps));
  ASSERT_FALSE(Built.isOk());
  EXPECT_EQ(Built.status().code(), ErrorCode::InvalidArgument);
}

TEST(SessionTest, ConceptCapTruncatesButKeepsBaselineClasses) {
  TraceSet Traces = parseTraces("popen(v0) fread(v0) pclose(v0)\n"
                                "popen(v0) fwrite(v0) pclose(v0)\n"
                                "popen(v0) fread(v0)\n"
                                "fopen(v0) fread(v0)\n"
                                "fopen(v0) pclose(v0)\n");
  Automaton RefFA = makeUnorderedFA(templateAlphabet(Traces.traces()),
                                    Traces.table());
  SessionOptions Opts;
  Opts.ResourceBudget.MaxConcepts = 2;
  StatusOr<Session> Built =
      Session::build(std::move(Traces), std::move(RefFA), Opts);
  ASSERT_TRUE(Built.isOk()) << Built.status().render();
  EXPECT_TRUE(Built->truncated());
  EXPECT_EQ(Built->buildStatus().code(), ErrorCode::ResourceExhausted);
  // The §5 baseline clustering never depends on the lattice budget.
  EXPECT_EQ(Built->baselineClasses().numClasses(), 5u);
  // The partial lattice is still a usable bounded structure.
  EXPECT_GE(Built->lattice().size(), 1u);
  EXPECT_LE(Built->lattice().size(), 4u);
}

TEST(SessionTest, ContextCellCapFailsUnlessKeepGoing) {
  SessionOptions Tight;
  Tight.ResourceBudget.MaxContextCells = 1;
  {
    TraceSet Traces = parseTraces("a(v0) b(v0)\nc(v0)\n");
    Automaton RefFA = makeUnorderedFA(templateAlphabet(Traces.traces()),
                                      Traces.table());
    StatusOr<Session> Built =
        Session::build(std::move(Traces), std::move(RefFA), Tight);
    ASSERT_FALSE(Built.isOk());
    EXPECT_EQ(Built.status().code(), ErrorCode::ResourceExhausted);
  }
  {
    Tight.KeepGoing = true;
    TraceSet Traces = parseTraces("a(v0) b(v0)\nc(v0)\n");
    Automaton RefFA = makeUnorderedFA(templateAlphabet(Traces.traces()),
                                      Traces.table());
    StatusOr<Session> Built =
        Session::build(std::move(Traces), std::move(RefFA), Tight);
    ASSERT_TRUE(Built.isOk()) << Built.status().render();
    EXPECT_EQ(Built->baselineClasses().numClasses(), 2u);
  }
}

TEST(SessionTest, UnlimitedBuildMatchesLegacyConstructor) {
  Session Legacy = makeStdioSession();
  TraceSet Traces = parseTraces("popen(v0) fread(v0) pclose(v0)\n"
                                "popen(v0) fwrite(v0) pclose(v0)\n"
                                "popen(v0) fread(v0)\n"
                                "fopen(v0) fread(v0)\n"
                                "fopen(v0) pclose(v0)\n"
                                "popen(v0) fread(v0) pclose(v0)\n");
  Automaton RefFA = makeUnorderedFA(templateAlphabet(Traces.traces()),
                                    Traces.table());
  StatusOr<Session> Built = Session::build(std::move(Traces), std::move(RefFA));
  ASSERT_TRUE(Built.isOk());
  EXPECT_FALSE(Built->truncated());
  EXPECT_EQ(Built->lattice().size(), Legacy.lattice().size());
  EXPECT_EQ(Built->numObjects(), Legacy.numObjects());
}

// -- Undo inside Focus sub-sessions -----------------------------------------
//
// A Focus sub-session is a full Session with its own undo history; undoing
// inside it must neither leak into the parent's history nor survive the
// merge-back incorrectly.

TEST(SessionTest, UndoInsideFocusOnlyAffectsTheSubSession) {
  Session S = makeStdioSession();
  S.setLabel(3, S.internLabel("outer"));
  size_t ParentDepth = S.undoDepth();

  FocusSession F = S.focus(
      S.lattice().top(),
      makeUnorderedFA(templateAlphabet(S.allTraces().traces()), S.table()));
  LabelId Good = F.Sub.internLabel("good");
  LabelId Bad = F.Sub.internLabel("bad");
  F.Sub.setLabel(0, Bad);
  F.Sub.setLabel(1, Good);
  EXPECT_EQ(F.Sub.undoDepth(), 2u);

  // Undo the mislabel inside the focus, then relabel.
  ASSERT_TRUE(F.Sub.undo());
  ASSERT_TRUE(F.Sub.undo());
  EXPECT_FALSE(F.Sub.labelOf(0).has_value());
  F.Sub.setLabel(0, Good);

  // The parent's history never moved.
  EXPECT_EQ(S.undoDepth(), ParentDepth);

  S.mergeBack(F);
  EXPECT_EQ(S.labelName(*S.labelOf(F.ParentObjects[0])), "good");
  EXPECT_FALSE(S.labelOf(F.ParentObjects[1]).has_value())
      << "undone sub-session label leaked through merge-back";
  EXPECT_EQ(S.labelName(*S.labelOf(3)), "outer");
}

TEST(SessionTest, MergeBackAfterSubSessionUndoIsOneParentUndoStep) {
  Session S = makeStdioSession();
  FocusSession F = S.focus(
      S.lattice().top(),
      makeUnorderedFA(templateAlphabet(S.allTraces().traces()), S.table()));
  F.Sub.setLabel(0, F.Sub.internLabel("bad"));
  ASSERT_TRUE(F.Sub.undo());
  F.Sub.setLabel(0, F.Sub.internLabel("good"));
  F.Sub.setLabel(2, F.Sub.internLabel("good"));

  size_t Before = S.undoDepth();
  S.mergeBack(F);
  EXPECT_EQ(S.undoDepth(), Before + 1);

  // One undo reverts the entire merge, including labels whose sub-session
  // history was rewritten by undo.
  ASSERT_TRUE(S.undo());
  EXPECT_FALSE(S.labelOf(F.ParentObjects[0]).has_value());
  EXPECT_FALSE(S.labelOf(F.ParentObjects[2]).has_value());
}

TEST(SessionTest, UndoInsideFocusThenMergeBackRoundTripsThroughSnapshot) {
  // The journal snapshots only base-level state, so the exact labels that
  // exist after an undo-inside-focus merge must survive serializeSnapshot.
  Session S = makeStdioSession();
  FocusSession F = S.focus(
      S.lattice().top(),
      makeUnorderedFA(templateAlphabet(S.allTraces().traces()), S.table()));
  F.Sub.setLabel(0, F.Sub.internLabel("bad"));
  ASSERT_TRUE(F.Sub.undo());
  F.Sub.setLabel(0, F.Sub.internLabel("good"));
  S.mergeBack(F);

  Session R = makeStdioSession();
  ASSERT_TRUE(R.loadSnapshot(S.serializeSnapshot()).isOk());
  EXPECT_EQ(R.serializeSnapshot(), S.serializeSnapshot());
  ASSERT_TRUE(R.undo());
  EXPECT_FALSE(R.labelOf(F.ParentObjects[0]).has_value());
}
