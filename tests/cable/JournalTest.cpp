//===- tests/cable/JournalTest.cpp -----------------------------------------===//
//
// Part of the Cable reproduction of "Debugging Temporal Specifications with
// Concept Analysis" (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//

#include "cable/Journal.h"

#include "support/AtomicFile.h"
#include "support/Failpoint.h"

#include <gtest/gtest.h>

#include <sys/stat.h>
#include <unistd.h>

using namespace cable;

namespace {

class JournalTest : public ::testing::Test {
protected:
  void SetUp() override {
    Dir = ::testing::TempDir() + "cable_journal_" +
          ::testing::UnitTest::GetInstance()->current_test_info()->name();
    // A stale directory from an earlier run would corrupt the test.
    ::unlink(Journal::logPath(Dir).c_str());
    ::unlink(Journal::snapshotPath(Dir).c_str());
    ::unlink(Journal::markerPath(Dir).c_str());
    ::rmdir(Dir.c_str());
  }
  void TearDown() override { Failpoint::reset(); }

  static bool exists(const std::string &P) {
    struct stat St;
    return ::stat(P.c_str(), &St) == 0;
  }

  std::string Dir;
};

TEST_F(JournalTest, FreshDirectoryIsEmptyAndClean) {
  Journal::Recovery Rec;
  StatusOr<Journal> J = Journal::open(Dir, Rec);
  ASSERT_TRUE(J.isOk()) << J.status().render();
  EXPECT_FALSE(Rec.HasSnapshot);
  EXPECT_FALSE(Rec.UncleanShutdown);
  EXPECT_TRUE(Rec.Commands.empty());
  EXPECT_TRUE(Rec.TornTail.isOk());
  EXPECT_EQ(J->lastSeq(), 0u);
  EXPECT_TRUE(exists(Journal::markerPath(Dir)));
}

TEST_F(JournalTest, AppendsSurviveACrashAndReplayInOrder) {
  {
    Journal::Recovery Rec;
    StatusOr<Journal> J = Journal::open(Dir, Rec);
    ASSERT_TRUE(J.isOk());
    ASSERT_TRUE(J->append("label c1 good").isOk());
    ASSERT_TRUE(J->append("undo").isOk());
    ASSERT_TRUE(J->append("label c2 bad all").isOk());
    EXPECT_EQ(J->lastSeq(), 3u);
    // The Journal is destroyed without closeClean: a crash.
  }
  Journal::Recovery Rec;
  StatusOr<Journal> J = Journal::open(Dir, Rec);
  ASSERT_TRUE(J.isOk());
  EXPECT_TRUE(Rec.UncleanShutdown);
  EXPECT_FALSE(Rec.HasSnapshot);
  ASSERT_EQ(Rec.Commands.size(), 3u);
  EXPECT_EQ(Rec.Commands[0], "label c1 good");
  EXPECT_EQ(Rec.Commands[1], "undo");
  EXPECT_EQ(Rec.Commands[2], "label c2 bad all");
  EXPECT_EQ(J->lastSeq(), 3u);
}

TEST_F(JournalTest, CleanCloseClearsTheMarker) {
  {
    Journal::Recovery Rec;
    StatusOr<Journal> J = Journal::open(Dir, Rec);
    ASSERT_TRUE(J.isOk());
    ASSERT_TRUE(J->append("ls").isOk());
    ASSERT_TRUE(J->closeClean().isOk());
    EXPECT_FALSE(J->isOpen());
  }
  EXPECT_FALSE(exists(Journal::markerPath(Dir)));
  Journal::Recovery Rec;
  StatusOr<Journal> J = Journal::open(Dir, Rec);
  ASSERT_TRUE(J.isOk());
  EXPECT_FALSE(Rec.UncleanShutdown);
  // No snapshot was taken, so the command still replays.
  ASSERT_EQ(Rec.Commands.size(), 1u);
}

TEST_F(JournalTest, SnapshotCompactsTheLog) {
  {
    Journal::Recovery Rec;
    StatusOr<Journal> J = Journal::open(Dir, Rec);
    ASSERT_TRUE(J.isOk());
    ASSERT_TRUE(J->append("a").isOk());
    ASSERT_TRUE(J->append("b").isOk());
    ASSERT_TRUE(J->snapshot("objects 0\nundo 0\n").isOk());
    ASSERT_TRUE(J->append("c").isOk());
  }
  Journal::Recovery Rec;
  StatusOr<Journal> J = Journal::open(Dir, Rec);
  ASSERT_TRUE(J.isOk());
  ASSERT_TRUE(Rec.HasSnapshot);
  EXPECT_EQ(Rec.SnapshotSeq, 2u);
  EXPECT_EQ(Rec.SnapshotBody, "objects 0\nundo 0\n");
  // Only the post-snapshot tail replays.
  ASSERT_EQ(Rec.Commands.size(), 1u);
  EXPECT_EQ(Rec.Commands[0], "c");
  EXPECT_EQ(J->lastSeq(), 3u);
}

TEST_F(JournalTest, SequenceNumbersContinueAcrossReopen) {
  {
    Journal::Recovery Rec;
    StatusOr<Journal> J = Journal::open(Dir, Rec);
    ASSERT_TRUE(J.isOk());
    ASSERT_TRUE(J->append("a").isOk());
    ASSERT_TRUE(J->snapshot("s\n").isOk());
  }
  {
    Journal::Recovery Rec;
    StatusOr<Journal> J = Journal::open(Dir, Rec);
    ASSERT_TRUE(J.isOk());
    EXPECT_EQ(J->lastSeq(), 1u);
    ASSERT_TRUE(J->append("b").isOk());
    EXPECT_EQ(J->lastSeq(), 2u);
  }
  Journal::Recovery Rec;
  StatusOr<Journal> J = Journal::open(Dir, Rec);
  ASSERT_TRUE(J.isOk());
  ASSERT_EQ(Rec.Commands.size(), 1u);
  EXPECT_EQ(Rec.Commands[0], "b");
  EXPECT_EQ(J->lastSeq(), 2u);
}

TEST_F(JournalTest, TornTailIsSkippedWithAWarningAndTruncatedAway) {
  {
    Journal::Recovery Rec;
    StatusOr<Journal> J = Journal::open(Dir, Rec);
    ASSERT_TRUE(J.isOk());
    ASSERT_TRUE(J->append("kept").isOk());
    ASSERT_TRUE(J->append("torn-away").isOk());
  }
  // Chop into the final record, as a crash mid-write would.
  struct stat St;
  ASSERT_EQ(::stat(Journal::logPath(Dir).c_str(), &St), 0);
  ASSERT_EQ(::truncate(Journal::logPath(Dir).c_str(), St.st_size - 3), 0);
  {
    Journal::Recovery Rec;
    StatusOr<Journal> J = Journal::open(Dir, Rec);
    ASSERT_TRUE(J.isOk());
    ASSERT_EQ(Rec.Commands.size(), 1u);
    EXPECT_EQ(Rec.Commands[0], "kept");
    ASSERT_FALSE(Rec.TornTail.isOk());
    EXPECT_EQ(Rec.TornTail.diagnostic().Level, Severity::Warning);
    EXPECT_EQ(Rec.TornTail.diagnostic().File, Journal::logPath(Dir));
    // Appending after recovery lands where the torn record was.
    ASSERT_TRUE(J->append("replacement").isOk());
  }
  Journal::Recovery Rec;
  StatusOr<Journal> J = Journal::open(Dir, Rec);
  ASSERT_TRUE(J.isOk());
  EXPECT_TRUE(Rec.TornTail.isOk()) << "torn bytes were not truncated away";
  ASSERT_EQ(Rec.Commands.size(), 2u);
  EXPECT_EQ(Rec.Commands[1], "replacement");
}

TEST_F(JournalTest, ForeignLogFileRefused) {
  ASSERT_EQ(::mkdir(Dir.c_str(), 0755), 0);
  ASSERT_TRUE(
      AtomicFile::write(Journal::logPath(Dir), "not a journal at all").isOk());
  Journal::Recovery Rec;
  StatusOr<Journal> J = Journal::open(Dir, Rec);
  ASSERT_FALSE(J.isOk());
  EXPECT_EQ(J.status().diagnostic().Code, ErrorCode::ParseError);
  EXPECT_NE(J.status().message().find("magic"), std::string::npos);
}

TEST_F(JournalTest, CorruptSnapshotIsReportedNotIgnored) {
  {
    Journal::Recovery Rec;
    StatusOr<Journal> J = Journal::open(Dir, Rec);
    ASSERT_TRUE(J.isOk());
    ASSERT_TRUE(J->append("a").isOk());
    ASSERT_TRUE(J->snapshot("state\n").isOk());
  }
  StatusOr<std::string> Text = readFileToString(Journal::snapshotPath(Dir));
  ASSERT_TRUE(Text.isOk());
  std::string Broken = *Text;
  Broken[Broken.size() - 2] ^= 0x1;
  ASSERT_TRUE(AtomicFile::write(Journal::snapshotPath(Dir), Broken).isOk());
  Journal::Recovery Rec;
  StatusOr<Journal> J = Journal::open(Dir, Rec);
  ASSERT_FALSE(J.isOk());
  EXPECT_NE(J.status().message().find("checksum mismatch"),
            std::string::npos);
}

TEST_F(JournalTest, AppendFaultsPropagate) {
  Journal::Recovery Rec;
  StatusOr<Journal> J = Journal::open(Dir, Rec);
  ASSERT_TRUE(J.isOk());
  ASSERT_TRUE(Failpoint::configure("journal-append=error").isOk());
  EXPECT_FALSE(J->append("doomed").isOk());
  EXPECT_EQ(J->lastSeq(), 0u);
  // The fault was one-shot; the journal keeps working.
  EXPECT_TRUE(J->append("fine").isOk());
  EXPECT_EQ(J->lastSeq(), 1u);
}

TEST_F(JournalTest, BatchedAppendsSurviveAProcessCrash) {
  {
    Journal::Recovery Rec;
    StatusOr<Journal> J = Journal::open(Dir, Rec);
    ASSERT_TRUE(J.isOk());
    J->setSyncPolicy(Journal::SyncPolicy::Batched);
    ASSERT_TRUE(J->append("a").isOk());
    ASSERT_TRUE(J->append("b").isOk());
    EXPECT_EQ(J->lastSeq(), 2u);
    // Destroyed without flush or closeClean: a process crash. The kernel
    // already has the writes, so recovery still sees both records.
  }
  Journal::Recovery Rec;
  StatusOr<Journal> J = Journal::open(Dir, Rec);
  ASSERT_TRUE(J.isOk());
  EXPECT_TRUE(Rec.UncleanShutdown);
  ASSERT_EQ(Rec.Commands.size(), 2u);
  EXPECT_EQ(Rec.Commands[0], "a");
  EXPECT_EQ(Rec.Commands[1], "b");
}

TEST_F(JournalTest, BatchedModeDefersTheFsyncToFlush) {
  Journal::Recovery Rec;
  StatusOr<Journal> J = Journal::open(Dir, Rec);
  ASSERT_TRUE(J.isOk());
  J->setSyncPolicy(Journal::SyncPolicy::Batched);
  // An armed journal-fsync fault does not fire on a batched append...
  ASSERT_TRUE(Failpoint::configure("journal-fsync=error").isOk());
  EXPECT_TRUE(J->append("a").isOk());
  // ...it fires on the deferred flush.
  EXPECT_FALSE(J->flush().isOk());
  // The fault was one-shot; the retry lands and clears the dirty state,
  // after which flush is a no-op (no further fsync to fault).
  EXPECT_TRUE(J->flush().isOk());
  ASSERT_TRUE(Failpoint::configure("journal-fsync=error").isOk());
  EXPECT_TRUE(J->flush().isOk());
  Failpoint::reset();
  EXPECT_TRUE(J->closeClean().isOk());
}

TEST_F(JournalTest, SnapshotFaultLeavesOldSnapshotAndLog) {
  Journal::Recovery Rec0;
  StatusOr<Journal> J = Journal::open(Dir, Rec0);
  ASSERT_TRUE(J.isOk());
  ASSERT_TRUE(J->append("a").isOk());
  ASSERT_TRUE(J->snapshot("old\n").isOk());
  ASSERT_TRUE(J->append("b").isOk());
  ASSERT_TRUE(Failpoint::configure("atomicfile-rename=error").isOk());
  EXPECT_FALSE(J->snapshot("new\n").isOk());
  Failpoint::reset();
  // Reopen elsewhere: the old snapshot and the tail are both intact.
  Journal::Recovery Rec;
  {
    Journal Gone = std::move(*J); // Release the fd before reopening.
    (void)Gone;
  }
  StatusOr<Journal> J2 = Journal::open(Dir, Rec);
  ASSERT_TRUE(J2.isOk());
  EXPECT_EQ(Rec.SnapshotBody, "old\n");
  ASSERT_EQ(Rec.Commands.size(), 1u);
  EXPECT_EQ(Rec.Commands[0], "b");
}

} // namespace
