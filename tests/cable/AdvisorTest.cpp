//===- tests/cable/AdvisorTest.cpp -----------------------------------------===//
//
// Part of the Cable reproduction of "Debugging Temporal Specifications with
// Concept Analysis" (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//

#include "cable/Advisor.h"

#include "../TestHelpers.h"
#include "fa/Templates.h"
#include "support/RNG.h"
#include "workload/Generator.h"
#include "workload/Oracle.h"

#include <gtest/gtest.h>

using namespace cable;
using cable::test::parseTraces;

namespace {

/// A session whose unordered lattice is ill-formed: "use after free" only
/// differs from a correct trace in event order.
struct OrderOnlyFixture {
  std::unique_ptr<Session> S;
  ReferenceLabeling Target;

  OrderOnlyFixture() {
    TraceSet Traces = parseTraces(
        "alloc(v0) use(v0) free(v0)\n"
        "alloc(v0) free(v0)\n"
        "alloc(v0) use(v0) use(v0) free(v0)\n"
        "alloc(v0) free(v0) use(v0)\n"        // Use after free.
        "alloc(v0) use(v0) free(v0) use(v0)\n" // Use after free.
        "alloc(v0) use(v0) free(v0) free(v0)\n"); // Double free.
    Automaton Ref =
        makeUnorderedFA(templateAlphabet(Traces.traces()), Traces.table());
    S = std::make_unique<Session>(std::move(Traces), std::move(Ref));
    std::vector<std::string> Names{"good", "good", "good",
                                   "bad",  "bad",  "bad"};
    Target = makeReferenceLabeling(*S, Names);
  }
};

} // namespace

TEST(AdvisorTest, SuggestsSeedsThatSplitMixedConcepts) {
  OrderOnlyFixture F;
  ASSERT_FALSE(checkWellFormed(*F.S, F.Target).LatticeWellFormed)
      << "the fixture must be ill-formed for the unordered template";

  std::vector<SeedSuggestion> Suggestions =
      suggestFocusSeeds(*F.S, F.S->lattice().top());
  ASSERT_FALSE(Suggestions.empty());
  for (const SeedSuggestion &Sg : Suggestions)
    EXPECT_GE(Sg.NumGroups, 2u);

  // A seed-order template on `free` separates use-after-free and double
  // free from correct traces; it must be among the suggestions.
  bool FreeSuggested = false;
  for (const SeedSuggestion &Sg : Suggestions)
    if (F.S->table().nameText(F.S->table().event(Sg.Seed).Name) == "free")
      FreeSuggested = true;
  EXPECT_TRUE(FreeSuggested);
}

TEST(AdvisorTest, SuggestionsEmptyForSingletons) {
  OrderOnlyFixture F;
  // Find a singleton concept.
  for (Session::NodeId Id = 0; Id < F.S->lattice().size(); ++Id)
    if (F.S->lattice().node(Id).Extent.count() <= 1)
      EXPECT_TRUE(suggestFocusSeeds(*F.S, Id).empty());
}

TEST(AdvisorTest, BuildSuggestedFocusFAAcceptsAllConceptTraces) {
  OrderOnlyFixture F;
  Session::NodeId Top = F.S->lattice().top();
  std::vector<SeedSuggestion> Suggestions = suggestFocusSeeds(*F.S, Top);
  ASSERT_FALSE(Suggestions.empty());
  Automaton FA = buildSuggestedFocusFA(*F.S, Top, Suggestions[0].Seed);
  for (size_t Obj = 0; Obj < F.S->numObjects(); ++Obj)
    EXPECT_TRUE(FA.accepts(F.S->object(Obj), F.S->table()))
        << "the union with the unordered template accepts everything";
}

TEST(AdvisorTest, NameProjectionSuggestionsSplitMultiObjectConcepts) {
  // Two-object traces where only the second object's fate differs; a
  // projection onto v1 separates them, a projection onto v0 does not.
  TraceSet Traces = parseTraces("bind(v0,v1) use(v0) close(v1)\n"
                                "bind(v0,v1) use(v0) leak(v1)\n"
                                "bind(v0,v1) use(v0) close(v1)\n");
  Automaton Ref =
      makeUnorderedFA(templateAlphabet(Traces.traces()), Traces.table());
  Session S(std::move(Traces), std::move(Ref));
  std::vector<ProjectionSuggestion> Suggestions =
      suggestNameProjections(S, S.lattice().top());
  ASSERT_FALSE(Suggestions.empty());
  for (const ProjectionSuggestion &Sg : Suggestions)
    EXPECT_GE(Sg.NumGroups, 2u);
  // v1 must rank at least as well as anything else (it is the
  // discriminating name).
  bool V1Listed = false;
  for (const ProjectionSuggestion &Sg : Suggestions)
    V1Listed |= (Sg.Value == 1);
  EXPECT_TRUE(V1Listed);
}

TEST(AdvisorTest, NameProjectionSuggestionsEmptyWhenNothingSplits) {
  TraceSet Traces = parseTraces("a(v0)\na(v0)\n");
  Automaton Ref =
      makeUnorderedFA(templateAlphabet(Traces.traces()), Traces.table());
  Session S(std::move(Traces), std::move(Ref));
  EXPECT_TRUE(suggestNameProjections(S, S.lattice().top()).empty());
}

TEST(AdvisorTest, AutoFocusRepairsIllFormedLattice) {
  OrderOnlyFixture F;
  TopDownStrategy TD;
  EXPECT_FALSE(TD.run(*F.S, F.Target).Finished)
      << "plain top-down must fail on the ill-formed lattice";

  AutoFocusStrategy AF;
  StrategyCost Cost = AF.run(*F.S, F.Target);
  EXPECT_TRUE(Cost.Finished)
      << "auto-focus must finish by re-clustering the stuck concept";
  for (size_t Obj = 0; Obj < F.S->numObjects(); ++Obj)
    EXPECT_EQ(*F.S->labelOf(Obj), F.Target.Target[Obj]);
}

TEST(AdvisorTest, AutoFocusMatchesTopDownWhenWellFormed) {
  // On a well-formed lattice the strategy degenerates to plain top-down.
  TraceSet Traces = parseTraces("a(v0) b(v0)\n"
                                "a(v0) c(v0)\n"
                                "a(v0) err(v0)\n");
  Automaton Ref =
      makeUnorderedFA(templateAlphabet(Traces.traces()), Traces.table());
  Session S(std::move(Traces), std::move(Ref));
  ReferenceLabeling Target =
      makeReferenceLabeling(S, {"good", "good", "bad"});

  AutoFocusStrategy AF;
  StrategyCost AFCost = AF.run(S, Target);
  ASSERT_TRUE(AFCost.Finished);
  TopDownStrategy TD;
  StrategyCost TDCost = TD.run(S, Target);
  ASSERT_TRUE(TDCost.Finished);
  EXPECT_EQ(AFCost.total(), TDCost.total());
}

TEST(AdvisorTest, AutoFocusGivesUpOnInseparableLabelings) {
  // The §4.3 parity labeling is beyond seed-order repair too (counting
  // needs more than before/after distinctions).
  TraceSet Traces = parseTraces("foo\nfoo foo\nfoo foo foo\n"
                                "foo foo foo foo\nfoo foo foo foo foo\n");
  EventTable &T = Traces.table();
  Automaton Ref = makeUnorderedFA(templateAlphabet(Traces.traces()), T);
  Session S(std::move(Traces), std::move(Ref));
  std::vector<std::string> Names;
  for (size_t Obj = 0; Obj < S.numObjects(); ++Obj)
    Names.push_back(S.object(Obj).size() % 2 == 0 ? "good" : "bad");
  ReferenceLabeling Target = makeReferenceLabeling(S, Names);

  AutoFocusStrategy AF;
  EXPECT_FALSE(AF.run(S, Target).Finished);
}

TEST(AdvisorTest, AutoFocusHandlesUnorderedProtocolWorkloads) {
  // End-to-end: protocols whose unordered lattices are ill-formed (order-
  // only errors) become solvable with auto-focus.
  for (const char *Name : {"XFreeGC", "XtFree"}) {
    ProtocolModel Model = protocolByName(Name);
    EventTable Table;
    WorkloadGenerator Gen(Model, Table);
    RNG Rand(99);
    TraceSet Scenarios = Gen.generateScenarios(Rand, 80);
    Automaton Ref = makeUnorderedFA(templateAlphabet(Scenarios.traces()),
                                    Scenarios.table());
    Session S(std::move(Scenarios), std::move(Ref));
    Oracle Truth(Model, S.table());
    ReferenceLabeling Target = Truth.referenceLabeling(S);

    TopDownStrategy TD;
    bool TopDownFinished = TD.run(S, Target).Finished;
    AutoFocusStrategy AF;
    StrategyCost Cost = AF.run(S, Target);
    EXPECT_TRUE(Cost.Finished) << Name;
    if (!TopDownFinished)
      EXPECT_GT(Cost.total(), 0u);
  }
}
