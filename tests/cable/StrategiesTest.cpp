//===- tests/cable/StrategiesTest.cpp --------------------------------------===//
//
// Part of the Cable reproduction of "Debugging Temporal Specifications with
// Concept Analysis" (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//

#include "cable/Strategies.h"

#include "../TestHelpers.h"
#include "fa/Templates.h"
#include "support/RNG.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

using namespace cable;
using cable::test::compileFA;
using cable::test::parseTraces;

namespace {

/// A session where traces containing `bad_op` are erroneous — cleanly
/// separable by the unordered lattice.
struct SeparableFixture {
  std::unique_ptr<Session> S;
  ReferenceLabeling Target;

  SeparableFixture() {
    TraceSet Traces = parseTraces("open(v0) close(v0)\n"
                                  "open(v0) read(v0) close(v0)\n"
                                  "open(v0) write(v0) close(v0)\n"
                                  "open(v0) read(v0) write(v0) close(v0)\n"
                                  "open(v0) bad_op(v0) close(v0)\n"
                                  "open(v0) read(v0) bad_op(v0) close(v0)\n");
    Automaton Ref =
        makeUnorderedFA(templateAlphabet(Traces.traces()), Traces.table());
    S = std::make_unique<Session>(std::move(Traces), std::move(Ref));
    std::vector<std::string> Names;
    for (size_t Obj = 0; Obj < S->numObjects(); ++Obj) {
      bool Bad = false;
      for (EventId E : S->object(Obj).events())
        if (S->table().nameText(S->table().event(E).Name) == "bad_op")
          Bad = true;
      Names.push_back(Bad ? "bad" : "good");
    }
    Target = makeReferenceLabeling(*S, Names);
  }
};

void expectMatchesTarget(const Session &S, const ReferenceLabeling &Target) {
  for (size_t Obj = 0; Obj < S.numObjects(); ++Obj) {
    ASSERT_TRUE(S.labelOf(Obj).has_value()) << "object " << Obj;
    EXPECT_EQ(*S.labelOf(Obj), Target.Target[Obj]) << "object " << Obj;
  }
}

} // namespace

TEST(StrategiesTest, TopDownFinishesAndMatchesTarget) {
  SeparableFixture F;
  TopDownStrategy TD;
  StrategyCost Cost = TD.run(*F.S, F.Target);
  EXPECT_TRUE(Cost.Finished);
  EXPECT_GT(Cost.Inspections, 0u);
  EXPECT_GT(Cost.LabelOps, 0u);
  expectMatchesTarget(*F.S, F.Target);
}

TEST(StrategiesTest, BottomUpFinishesAndMatchesTarget) {
  SeparableFixture F;
  BottomUpStrategy BU;
  StrategyCost Cost = BU.run(*F.S, F.Target);
  EXPECT_TRUE(Cost.Finished);
  expectMatchesTarget(*F.S, F.Target);
}

TEST(StrategiesTest, RandomFinishesAndMatchesTarget) {
  SeparableFixture F;
  RandomStrategy R(RNG{17});
  StrategyCost Cost = R.run(*F.S, F.Target);
  EXPECT_TRUE(Cost.Finished);
  expectMatchesTarget(*F.S, F.Target);
}

TEST(StrategiesTest, ExpertFinishesAndMatchesTarget) {
  SeparableFixture F;
  ExpertSimStrategy E;
  StrategyCost Cost = E.run(*F.S, F.Target);
  EXPECT_TRUE(Cost.Finished);
  expectMatchesTarget(*F.S, F.Target);
}

TEST(StrategiesTest, OptimalFinishesAndMatchesTarget) {
  SeparableFixture F;
  OptimalStrategy O;
  StrategyCost Cost = O.run(*F.S, F.Target);
  EXPECT_TRUE(Cost.Finished);
  EXPECT_EQ(Cost.Inspections, Cost.LabelOps)
      << "optimal never inspects without labeling";
  expectMatchesTarget(*F.S, F.Target);
}

TEST(StrategiesTest, BaselineCostsTwoPerClass) {
  SeparableFixture F;
  BaselineMethod B;
  StrategyCost Cost = B.run(*F.S, F.Target);
  EXPECT_TRUE(Cost.Finished);
  EXPECT_EQ(Cost.total(), 2 * F.S->numObjects());
  expectMatchesTarget(*F.S, F.Target);
}

TEST(StrategiesTest, OptimalIsNoWorseThanOtherStrategies) {
  SeparableFixture F;
  OptimalStrategy O;
  size_t OptCost = O.run(*F.S, F.Target).total();
  TopDownStrategy TD;
  EXPECT_LE(OptCost, TD.run(*F.S, F.Target).total());
  BottomUpStrategy BU;
  EXPECT_LE(OptCost, BU.run(*F.S, F.Target).total());
  ExpertSimStrategy E;
  EXPECT_LE(OptCost, E.run(*F.S, F.Target).total());
  RandomStrategy R(RNG{3});
  EXPECT_LE(OptCost, R.run(*F.S, F.Target).total());
}

TEST(StrategiesTest, OptimalLowerBoundTwoMovesHere) {
  // Two labels exist, so at least two label commands (and two
  // inspections) are needed; with a perfect lattice that's also enough.
  SeparableFixture F;
  OptimalStrategy O;
  StrategyCost Cost = O.run(*F.S, F.Target);
  EXPECT_GE(Cost.total(), 4u);
}

TEST(StrategiesTest, IllFormedLatticeReportedUnfinished) {
  // §4.3 parity example: no strategy can finish.
  TraceSet Traces = parseTraces("foo\nfoo foo\nfoo foo foo\n");
  Automaton Ref = compileFA("foo*", Traces.table());
  Session S(std::move(Traces), std::move(Ref));
  std::vector<std::string> Names;
  for (size_t Obj = 0; Obj < S.numObjects(); ++Obj)
    Names.push_back(S.object(Obj).size() % 2 == 0 ? "good" : "bad");
  ReferenceLabeling Target = makeReferenceLabeling(S, Names);

  TopDownStrategy TD;
  EXPECT_FALSE(TD.run(S, Target).Finished);
  BottomUpStrategy BU;
  EXPECT_FALSE(BU.run(S, Target).Finished);
  RandomStrategy R(RNG{5});
  EXPECT_FALSE(R.run(S, Target).Finished);
  ExpertSimStrategy E;
  EXPECT_FALSE(E.run(S, Target).Finished);
  OptimalStrategy O;
  EXPECT_FALSE(O.run(S, Target).Finished);
}

TEST(StrategiesTest, SingleLabelSessionCostsOneVisit) {
  TraceSet Traces = parseTraces("a\nb\na b\n");
  Automaton Ref =
      makeUnorderedFA(templateAlphabet(Traces.traces()), Traces.table());
  Session S(std::move(Traces), std::move(Ref));
  ReferenceLabeling Target = makeReferenceLabeling(
      S, std::vector<std::string>(S.numObjects(), "good"));
  OptimalStrategy O;
  StrategyCost Cost = O.run(S, Target);
  EXPECT_TRUE(Cost.Finished);
  EXPECT_EQ(Cost.total(), 2u) << "label everything at the top concept";
  TopDownStrategy TD;
  StrategyCost TDCost = TD.run(S, Target);
  EXPECT_TRUE(TDCost.Finished);
  EXPECT_EQ(TDCost.total(), 2u) << "top-down labels at the top immediately";
}

TEST(StrategiesTest, RandomMeanIsAveraged) {
  SeparableFixture F;
  RandomSummary Summary = measureRandomMean(*F.S, F.Target, 32, 99);
  EXPECT_TRUE(Summary.Finished);
  // The mean sits between the optimal cost and a generous upper bound.
  OptimalStrategy O;
  double Opt = static_cast<double>(O.run(*F.S, F.Target).total());
  EXPECT_GE(Summary.MeanTotal, Opt);
  EXPECT_LE(Summary.MeanTotal,
            static_cast<double>(8 * F.S->lattice().size()));
}

TEST(StrategiesTest, MeasureRandomMeanIsDeterministicPerSeed) {
  SeparableFixture F;
  RandomSummary A = measureRandomMean(*F.S, F.Target, 16, 7);
  RandomSummary B = measureRandomMean(*F.S, F.Target, 16, 7);
  EXPECT_EQ(A.MeanTotal, B.MeanTotal);
}

TEST(StrategiesTest, OptimalStateCapReportsUnfinished) {
  SeparableFixture F;
  OptimalStrategy Tiny(/*StateCap=*/1);
  StrategyCost Cost = Tiny.run(*F.S, F.Target);
  EXPECT_FALSE(Cost.Finished)
      << "a 1-state cap must abort like the paper's tool on large specs";
}

TEST(StrategiesTest, HandLabelFallbackMatchesTopDownWhenWellFormed) {
  SeparableFixture F;
  HandLabelFallbackStrategy HL;
  StrategyCost HLCost = HL.run(*F.S, F.Target);
  ASSERT_TRUE(HLCost.Finished);
  expectMatchesTarget(*F.S, F.Target);
  TopDownStrategy TD;
  StrategyCost TDCost = TD.run(*F.S, F.Target);
  ASSERT_TRUE(TDCost.Finished);
  EXPECT_EQ(HLCost.total(), TDCost.total());
}

TEST(StrategiesTest, HandLabelFallbackFinishesIllFormedLattices) {
  TraceSet Traces = parseTraces("foo\nfoo foo\nfoo foo foo\n");
  Automaton Ref = compileFA("foo*", Traces.table());
  Session S(std::move(Traces), std::move(Ref));
  std::vector<std::string> Names;
  for (size_t Obj = 0; Obj < S.numObjects(); ++Obj)
    Names.push_back(S.object(Obj).size() % 2 == 0 ? "good" : "bad");
  ReferenceLabeling Target = makeReferenceLabeling(S, Names);

  TopDownStrategy TD;
  StrategyCost Stalled = TD.run(S, Target);
  ASSERT_FALSE(Stalled.Finished);
  size_t LeftOver = S.unlabeledObjects().count();

  HandLabelFallbackStrategy HL;
  StrategyCost Cost = HL.run(S, Target);
  ASSERT_TRUE(Cost.Finished);
  EXPECT_EQ(Cost.total(), Stalled.total() + 2 * LeftOver);
  for (size_t Obj = 0; Obj < S.numObjects(); ++Obj)
    EXPECT_EQ(*S.labelOf(Obj), Target.Target[Obj]);
}

TEST(StrategiesTest, RandomizedTopDownStillFinishes) {
  SeparableFixture F;
  for (uint64_t Seed : {1u, 2u, 3u}) {
    TopDownStrategy TD{RNG(Seed)};
    StrategyCost Cost = TD.run(*F.S, F.Target);
    EXPECT_TRUE(Cost.Finished);
    expectMatchesTarget(*F.S, F.Target);
  }
}

TEST(StrategiesTest, RandomizedBottomUpStillFinishes) {
  SeparableFixture F;
  for (uint64_t Seed : {1u, 2u, 3u}) {
    BottomUpStrategy BU{RNG(Seed)};
    StrategyCost Cost = BU.run(*F.S, F.Target);
    EXPECT_TRUE(Cost.Finished);
    expectMatchesTarget(*F.S, F.Target);
  }
}

TEST(StrategiesTest, MeasureLowestCostTakesTheMinimum) {
  SeparableFixture F;
  LowestSummary Low = measureLowestCost(
      *F.S, F.Target, 32, 5, [](RNG Rand) -> std::unique_ptr<Strategy> {
        return std::make_unique<TopDownStrategy>(Rand);
      });
  ASSERT_TRUE(Low.Finished);
  // Bounded below by Optimal.
  OptimalStrategy O;
  StrategyCost Opt = O.run(*F.S, F.Target);
  ASSERT_TRUE(Opt.Finished);
  EXPECT_GE(Low.LowestTotal, Opt.total());
  // And it really is the minimum of the trials: replaying the same seeded
  // fork stream by hand gives the same number.
  RNG Root(5);
  size_t Expected = static_cast<size_t>(-1);
  for (int Trial = 0; Trial < 32; ++Trial) {
    TopDownStrategy TD{Root.fork()};
    StrategyCost Cost = TD.run(*F.S, F.Target);
    ASSERT_TRUE(Cost.Finished);
    Expected = std::min(Expected, Cost.total());
  }
  EXPECT_EQ(Low.LowestTotal, Expected);
}

TEST(StrategiesTest, MeasureLowestCostUnfinishedOnIllFormed) {
  TraceSet Traces = parseTraces("foo\nfoo foo\nfoo foo foo\n");
  Automaton Ref = compileFA("foo*", Traces.table());
  Session S(std::move(Traces), std::move(Ref));
  std::vector<std::string> Names;
  for (size_t Obj = 0; Obj < S.numObjects(); ++Obj)
    Names.push_back(S.object(Obj).size() % 2 == 0 ? "good" : "bad");
  ReferenceLabeling Target = makeReferenceLabeling(S, Names);
  LowestSummary Low = measureLowestCost(
      S, Target, 4, 5, [](RNG Rand) -> std::unique_ptr<Strategy> {
        return std::make_unique<BottomUpStrategy>(Rand);
      });
  EXPECT_FALSE(Low.Finished);
}

/// Property: on random separable sessions every strategy agrees with the
/// target labeling and optimal is minimal.
class StrategyPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(StrategyPropertyTest, AllStrategiesAgreeOnSeparableSessions) {
  RNG Rand(GetParam());
  // Separable by construction: "bad" traces contain the event `err`.
  TraceSet Traces;
  std::vector<std::string> Pool{"a", "b", "c"};
  size_t N = 2 + Rand.nextIndex(7);
  for (size_t I = 0; I < N; ++I) {
    Trace T;
    size_t Len = 1 + Rand.nextIndex(3);
    for (size_t J = 0; J < Len; ++J)
      T.append(Traces.table().internEvent(Pool[Rand.nextIndex(Pool.size())]));
    if (Rand.nextBool(0.4))
      T.append(Traces.table().internEvent("err"));
    Traces.add(std::move(T));
  }
  Automaton Ref =
      makeUnorderedFA(templateAlphabet(Traces.traces()), Traces.table());
  Session S(std::move(Traces), std::move(Ref));
  std::vector<std::string> Names;
  for (size_t Obj = 0; Obj < S.numObjects(); ++Obj) {
    bool Bad = false;
    for (EventId E : S.object(Obj).events())
      if (S.table().nameText(S.table().event(E).Name) == "err")
        Bad = true;
    Names.push_back(Bad ? "bad" : "good");
  }
  ReferenceLabeling Target = makeReferenceLabeling(S, Names);
  ASSERT_TRUE(checkWellFormed(S, Target).LatticeWellFormed);

  OptimalStrategy O;
  StrategyCost Opt = O.run(S, Target);
  ASSERT_TRUE(Opt.Finished);

  std::vector<std::unique_ptr<Strategy>> Others;
  Others.push_back(std::make_unique<TopDownStrategy>());
  Others.push_back(std::make_unique<BottomUpStrategy>());
  Others.push_back(std::make_unique<ExpertSimStrategy>());
  Others.push_back(std::make_unique<RandomStrategy>(RNG{GetParam() * 31}));
  Others.push_back(std::make_unique<BaselineMethod>());
  for (auto &Strat : Others) {
    StrategyCost Cost = Strat->run(S, Target);
    EXPECT_TRUE(Cost.Finished) << Strat->name();
    EXPECT_LE(Opt.total(), Cost.total())
        << Strat->name() << " beat Optimal, which is impossible";
    for (size_t Obj = 0; Obj < S.numObjects(); ++Obj)
      EXPECT_EQ(*S.labelOf(Obj), Target.Target[Obj]) << Strat->name();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, StrategyPropertyTest,
                         ::testing::Range<uint64_t>(0, 25));
