//===- tests/cable/WellFormedTest.cpp --------------------------------------===//
//
// Part of the Cable reproduction of "Debugging Temporal Specifications with
// Concept Analysis" (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//

#include "cable/WellFormed.h"

#include "../TestHelpers.h"
#include "cable/Strategies.h"
#include "fa/Templates.h"
#include "support/RNG.h"

#include <gtest/gtest.h>

using namespace cable;
using cable::test::compileFA;
using cable::test::parseTraces;

TEST(WellFormedTest, UniformLabelingIsAlwaysWellFormed) {
  TraceSet Traces = parseTraces("a(v0) b(v0)\n"
                                "a(v0) c(v0)\n"
                                "b(v0)\n");
  Automaton Ref =
      makeUnorderedFA(templateAlphabet(Traces.traces()), Traces.table());
  Session S(std::move(Traces), std::move(Ref));
  ReferenceLabeling Target = makeReferenceLabeling(
      S, std::vector<std::string>(S.numObjects(), "good"));
  WellFormedness WF = checkWellFormed(S, Target);
  EXPECT_TRUE(WF.LatticeWellFormed);
  EXPECT_TRUE(WF.IllFormed.empty());
}

TEST(WellFormedTest, PaperParityExampleIsIllFormed) {
  // §4.3's example: foo must be called an even number of times; the
  // reference FA has a single foo self-loop, so every trace lands in one
  // concept and even/odd cannot be separated.
  TraceSet Traces = parseTraces("foo foo\n"
                                "foo\n"
                                "foo foo foo\n"
                                "foo foo foo foo\n");
  Automaton Ref = compileFA("foo*", Traces.table());
  Session S(std::move(Traces), std::move(Ref));

  std::vector<std::string> Names;
  for (size_t Obj = 0; Obj < S.numObjects(); ++Obj)
    Names.push_back(S.object(Obj).size() % 2 == 0 ? "good" : "bad");
  ReferenceLabeling Target = makeReferenceLabeling(S, Names);

  WellFormedness WF = checkWellFormed(S, Target);
  EXPECT_FALSE(WF.LatticeWellFormed);
  EXPECT_FALSE(WF.IllFormed.empty());
}

TEST(WellFormedTest, SeparableLabelingIsWellFormed) {
  // pclose-traces good, the rest bad: the unordered lattice separates
  // them because the label depends only on which events occur.
  TraceSet Traces = parseTraces("popen(v0) pclose(v0)\n"
                                "popen(v0) fread(v0) pclose(v0)\n"
                                "popen(v0) fread(v0)\n"
                                "popen(v0)\n");
  Automaton Ref =
      makeUnorderedFA(templateAlphabet(Traces.traces()), Traces.table());
  Session S(std::move(Traces), std::move(Ref));
  std::vector<std::string> Names;
  for (size_t Obj = 0; Obj < S.numObjects(); ++Obj) {
    bool HasPclose = false;
    for (EventId E : S.object(Obj).events())
      if (S.table().nameText(S.table().event(E).Name) == "pclose")
        HasPclose = true;
    Names.push_back(HasPclose ? "good" : "bad");
  }
  ReferenceLabeling Target = makeReferenceLabeling(S, Names);
  EXPECT_TRUE(checkWellFormed(S, Target).LatticeWellFormed);
}

TEST(WellFormedTest, UniformHelpers) {
  TraceSet Traces = parseTraces("a\nb\n");
  Automaton Ref =
      makeUnorderedFA(templateAlphabet(Traces.traces()), Traces.table());
  Session S(std::move(Traces), std::move(Ref));
  ReferenceLabeling Target =
      makeReferenceLabeling(S, {"good", "bad"});
  BitVector None(2);
  EXPECT_TRUE(Target.uniform(None)) << "vacuously uniform";
  BitVector Both(2);
  Both.setAll();
  EXPECT_FALSE(Target.uniform(Both));
  BitVector JustOne(2);
  JustOne.set(1);
  EXPECT_TRUE(Target.uniform(JustOne));
  EXPECT_EQ(Target.sharedLabel(JustOne), Target.Target[1]);
}

/// The paper's implicit equivalence: a lattice is well-formed for a
/// labeling iff the Bottom-up strategy reaches that labeling.
class WellFormedEquivalenceTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(WellFormedEquivalenceTest, WellFormedIffBottomUpFinishes) {
  RNG Rand(GetParam());
  // Random traces over a small alphabet, random target labeling.
  TraceSet Traces;
  std::vector<std::string> Names{"a", "b", "c", "d"};
  size_t N = 2 + Rand.nextIndex(8);
  for (size_t I = 0; I < N; ++I) {
    Trace T;
    size_t Len = 1 + Rand.nextIndex(4);
    for (size_t J = 0; J < Len; ++J)
      T.append(Traces.table().internEvent(Names[Rand.nextIndex(4)]));
    Traces.add(std::move(T));
  }
  Automaton Ref =
      makeUnorderedFA(templateAlphabet(Traces.traces()), Traces.table());
  Session S(std::move(Traces), std::move(Ref));

  std::vector<std::string> LabelNames;
  for (size_t Obj = 0; Obj < S.numObjects(); ++Obj)
    LabelNames.push_back(Rand.nextBool(0.5) ? "good" : "bad");
  ReferenceLabeling Target = makeReferenceLabeling(S, LabelNames);

  bool WF = checkWellFormed(S, Target).LatticeWellFormed;
  BottomUpStrategy BU;
  StrategyCost Cost = BU.run(S, Target);
  EXPECT_EQ(WF, Cost.Finished)
      << "well-formedness must coincide with bottom-up feasibility";
  if (Cost.Finished)
    for (size_t Obj = 0; Obj < S.numObjects(); ++Obj)
      EXPECT_EQ(*S.labelOf(Obj), Target.Target[Obj]);
}

INSTANTIATE_TEST_SUITE_P(Seeds, WellFormedEquivalenceTest,
                         ::testing::Range<uint64_t>(0, 40));
