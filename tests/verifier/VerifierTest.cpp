//===- tests/verifier/VerifierTest.cpp -------------------------------------===//
//
// Part of the Cable reproduction of "Debugging Temporal Specifications with
// Concept Analysis" (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//

#include "verifier/Verifier.h"

#include "../TestHelpers.h"
#include "support/RNG.h"
#include "workload/Generator.h"
#include "workload/Oracle.h"

#include <gtest/gtest.h>

using namespace cable;
using cable::test::compileFA;
using cable::test::parseTraces;

TEST(VerifierTest, PartitionsScenariosByAcceptance) {
  TraceSet Scenarios = parseTraces("a(v0) b(v0)\n"
                                   "a(v0) c(v0)\n"
                                   "a(v0) b(v0)\n");
  Automaton Spec = compileFA("a(v0) b(v0)", Scenarios.table());
  VerificationResult R = verifyScenarios(Scenarios, Spec);
  EXPECT_EQ(R.NumScenarios, 3u);
  EXPECT_EQ(R.Accepted.size(), 2u);
  ASSERT_EQ(R.Violations.size(), 1u);
  EXPECT_EQ(R.Violations[0].render(R.Violations.table()), "a(v0) c(v0)");
}

TEST(VerifierTest, AgainstRunsExtractsThenChecks) {
  TraceSet Runs = parseTraces(
      "fopen(v1) fclose(v1) popen(v2) pclose(v2) popen(v3) fclose(v3)\n");
  Automaton Buggy = compileFA(
      "[fopen(v0) | popen(v0)] [fread(v0) | fwrite(v0)]* fclose(v0)",
      Runs.table());
  ExtractorOptions Extract;
  Extract.SeedNames = {"fopen", "popen"};
  VerificationResult R = verifyAgainstRuns(Runs, Buggy, Extract);
  EXPECT_EQ(R.NumScenarios, 3u);
  // The buggy spec rejects the *correct* popen/pclose scenario and accepts
  // the wrong popen/fclose one — exactly the §2.1 situation.
  ASSERT_EQ(R.Violations.size(), 1u);
  EXPECT_EQ(R.Violations[0].render(R.Violations.table()),
            "popen(v0) pclose(v0)");
  EXPECT_EQ(R.Accepted.size(), 2u);
}

TEST(VerifierTest, CorrectSpecYieldsOnlyTrueErrors) {
  // Against the *correct* spec, the violation set is exactly the oracle's
  // bad set.
  ProtocolModel Model = stdioProtocol();
  EventTable Table;
  WorkloadGenerator Gen(Model, Table);
  RNG Rand(5);
  TraceSet Runs = Gen.generateRuns(Rand);
  Oracle Truth(Model, Table);

  ExtractorOptions Extract;
  Extract.SeedNames = Model.Seeds;
  VerificationResult R =
      verifyAgainstRuns(Runs, Truth.correctFA(), Extract);
  EXPECT_GT(R.NumScenarios, 0u);
  for (const Trace &T : R.Violations.traces())
    EXPECT_FALSE(Truth.isCorrect(T, R.Violations.table()));
  for (const Trace &T : R.Accepted.traces())
    EXPECT_TRUE(Truth.isCorrect(T, R.Accepted.table()));
}

TEST(VerifierTest, EmptyRunsEmptyResult) {
  TraceSet Runs;
  EventTable T;
  Automaton Spec = compileFA("a", T);
  ExtractorOptions Extract;
  Extract.SeedNames = {"a"};
  VerificationResult R = verifyAgainstRuns(Runs, Spec, Extract);
  EXPECT_EQ(R.NumScenarios, 0u);
  EXPECT_TRUE(R.Violations.empty());
  EXPECT_TRUE(R.Accepted.empty());
}

TEST(VerifierTest, BudgetTruncationChecksOnlyAPrefix) {
  TraceSet Scenarios = parseTraces("a(v0) b(v0)\n"
                                   "a(v0) c(v0)\n"
                                   "b(v0) b(v0)\n"
                                   "a(v0) b(v0) c(v0)\n");
  Automaton Spec = compileFA("a(v0) b(v0)", Scenarios.table());
  Budget B;
  B.TimeLimit = std::chrono::milliseconds(0); // Already expired.
  BudgetMeter Meter(B);
  VerificationResult R = verifyScenarios(Scenarios, Spec, Meter);
  EXPECT_TRUE(R.Truncated);
  EXPECT_EQ(R.CheckStatus.code(), ErrorCode::ResourceExhausted);
  EXPECT_EQ(R.NumScenarios, 0u);

  // An unlimited meter checks everything and reports no truncation.
  BudgetMeter Unlimited{Budget{}};
  VerificationResult Full = verifyScenarios(Scenarios, Spec, Unlimited);
  EXPECT_FALSE(Full.Truncated);
  EXPECT_TRUE(Full.CheckStatus.isOk());
  EXPECT_EQ(Full.NumScenarios, 4u);
}

TEST(VerifierTest, CancelledMeterReportsCancelled) {
  TraceSet Scenarios = parseTraces("a(v0)\n");
  Automaton Spec = compileFA("a(v0)", Scenarios.table());
  BudgetMeter Meter{Budget{}};
  Meter.cancel();
  VerificationResult R = verifyScenarios(Scenarios, Spec, Meter);
  EXPECT_TRUE(R.Truncated);
  EXPECT_EQ(R.CheckStatus.code(), ErrorCode::Cancelled);
}
