//===- bench/BenchCommon.h - Shared evaluation harness ----------*- C++ -*-===//
//
// Part of the Cable reproduction of "Debugging Temporal Specifications with
// Concept Analysis" (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Shared plumbing for the table/figure reproduction binaries: a fixed-
/// width ASCII table printer and the per-protocol evaluation pipeline
/// (generate runs -> extract scenarios -> build the reference FA -> build
/// the session -> oracle labeling), seeded deterministically so every
/// bench run reproduces the same numbers.
///
//===----------------------------------------------------------------------===//

#ifndef CABLE_BENCH_BENCHCOMMON_H
#define CABLE_BENCH_BENCHCOMMON_H

#include "cable/Session.h"
#include "cable/Strategies.h"
#include "cable/WellFormed.h"
#include "miner/Miner.h"
#include "support/RNG.h"
#include "workload/Generator.h"
#include "workload/Oracle.h"
#include "workload/ReferenceFA.h"

#include <chrono>
#include <functional>
#include <memory>
#include <string>
#include <vector>

namespace cable::bench {

/// Machine-readable companion to a bench binary's text output: collects
/// named timing sections and counters, then writes a schema-versioned
/// `BENCH_<name>.json` (schema "cable-bench/1") with per-section
/// median/p90 wall times, the build stamp, and a metrics snapshot.
///
/// Construction arms the Metrics registry so the snapshot is populated;
/// the constructor also registers itself as `current()` so shared
/// helpers (evaluateProtocol) can contribute samples without plumbing.
///
/// Output directory: $CABLE_BENCH_OUT if set, else the working
/// directory. Set CABLE_BENCH_QUICK=1 to make `quick()` return true;
/// binaries shrink their sweeps accordingly (CI smoke mode).
class BenchReport {
public:
  explicit BenchReport(std::string Name);
  ~BenchReport();

  BenchReport(const BenchReport &) = delete;
  BenchReport &operator=(const BenchReport &) = delete;

  /// True when CABLE_BENCH_QUICK is set to anything but "0".
  static bool quick();

  /// The live report for this process, or null outside a bench main.
  static BenchReport *current();

  /// Appends one wall-time sample (milliseconds) to \p Section.
  void sample(const std::string &Section, double Ms);

  /// Sets a named scalar result (sizes, speedups, rates).
  void counter(const std::string &Name, double Value);

  /// Times Fn once and records the sample; returns the milliseconds.
  double timeSample(const std::string &Section, const std::function<void()> &Fn);

  /// Renders the cable-bench/1 JSON document.
  std::string renderJson() const;

  /// Writes BENCH_<name>.json; warns on stderr and returns false on
  /// failure (bench output is best-effort, never fatal).
  bool write() const;

private:
  std::string Name;
  /// Insertion-ordered section names -> samples in ms.
  std::vector<std::pair<std::string, std::vector<double>>> Sections;
  std::vector<std::pair<std::string, double>> Counters;
  /// Construction time: renderJson() appends a single-sample "total"
  /// section from it, so even a binary that records nothing else has a
  /// wall-time trajectory.
  std::chrono::steady_clock::time_point Start;
};

/// RAII one-sample timer: records into \p Report on destruction.
class BenchTimer {
public:
  BenchTimer(BenchReport &Report, std::string Section)
      : Report(Report), Section(std::move(Section)),
        Start(std::chrono::steady_clock::now()) {}
  ~BenchTimer() {
    Report.sample(Section,
                  std::chrono::duration<double, std::milli>(
                      std::chrono::steady_clock::now() - Start)
                      .count());
  }

private:
  BenchReport &Report;
  std::string Section;
  std::chrono::steady_clock::time_point Start;
};

/// Prints fixed-width ASCII tables with a header row and a rule.
class TablePrinter {
public:
  explicit TablePrinter(std::vector<std::pair<std::string, size_t>> Columns);

  /// Adds one row; cell count must match the column count.
  void addRow(std::vector<std::string> Cells);

  /// Prints the whole table to stdout.
  void print() const;

private:
  std::vector<std::pair<std::string, size_t>> Columns;
  std::vector<std::vector<std::string>> Rows;
};

/// Everything the evaluation needs about one specification's workload.
struct SpecEvaluation {
  ProtocolModel Model;
  TraceSet Runs;
  /// One Session owning the extracted scenarios and the reference FA.
  std::unique_ptr<Session> S;
  /// Oracle ground truth over the session's objects.
  ReferenceLabeling Target;
  /// The protocol's correct FA compiled into the session's table.
  Automaton CorrectFA;
};

/// Runs the front half of the pipeline for \p Model with a seed derived
/// from the protocol name (fully deterministic across runs).
SpecEvaluation evaluateProtocol(const ProtocolModel &Model);

/// Runs evaluateProtocol for all 17 protocols, in Table 1 order.
std::vector<SpecEvaluation> evaluateAllProtocols();

/// Formats a size_t for a table cell.
std::string cell(size_t N);

/// Formats a double with one decimal for a table cell.
std::string cell1(double D);

} // namespace cable::bench

#endif // CABLE_BENCH_BENCHCOMMON_H
