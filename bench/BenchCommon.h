//===- bench/BenchCommon.h - Shared evaluation harness ----------*- C++ -*-===//
//
// Part of the Cable reproduction of "Debugging Temporal Specifications with
// Concept Analysis" (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Shared plumbing for the table/figure reproduction binaries: a fixed-
/// width ASCII table printer and the per-protocol evaluation pipeline
/// (generate runs -> extract scenarios -> build the reference FA -> build
/// the session -> oracle labeling), seeded deterministically so every
/// bench run reproduces the same numbers.
///
//===----------------------------------------------------------------------===//

#ifndef CABLE_BENCH_BENCHCOMMON_H
#define CABLE_BENCH_BENCHCOMMON_H

#include "cable/Session.h"
#include "cable/Strategies.h"
#include "cable/WellFormed.h"
#include "miner/Miner.h"
#include "support/RNG.h"
#include "workload/Generator.h"
#include "workload/Oracle.h"
#include "workload/ReferenceFA.h"

#include <memory>
#include <string>
#include <vector>

namespace cable::bench {

/// Prints fixed-width ASCII tables with a header row and a rule.
class TablePrinter {
public:
  explicit TablePrinter(std::vector<std::pair<std::string, size_t>> Columns);

  /// Adds one row; cell count must match the column count.
  void addRow(std::vector<std::string> Cells);

  /// Prints the whole table to stdout.
  void print() const;

private:
  std::vector<std::pair<std::string, size_t>> Columns;
  std::vector<std::vector<std::string>> Rows;
};

/// Everything the evaluation needs about one specification's workload.
struct SpecEvaluation {
  ProtocolModel Model;
  TraceSet Runs;
  /// One Session owning the extracted scenarios and the reference FA.
  std::unique_ptr<Session> S;
  /// Oracle ground truth over the session's objects.
  ReferenceLabeling Target;
  /// The protocol's correct FA compiled into the session's table.
  Automaton CorrectFA;
};

/// Runs the front half of the pipeline for \p Model with a seed derived
/// from the protocol name (fully deterministic across runs).
SpecEvaluation evaluateProtocol(const ProtocolModel &Model);

/// Runs evaluateProtocol for all 17 protocols, in Table 1 order.
std::vector<SpecEvaluation> evaluateAllProtocols();

/// Formats a size_t for a table cell.
std::string cell(size_t N);

/// Formats a double with one decimal for a table cell.
std::string cell1(double D);

} // namespace cable::bench

#endif // CABLE_BENCH_BENCHCOMMON_H
