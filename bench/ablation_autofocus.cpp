//===- bench/ablation_autofocus.cpp - §6 future work: auto-focus -----------===//
//
// Part of the Cable reproduction of "Debugging Temporal Specifications with
// Concept Analysis" (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//
//
// §6 suggests "interactive algorithms, which would allow the user to
// fine-tune the concept lattice as he uses it for labeling". This bench
// measures the implemented version of that idea: start every
// specification from the *weakest* reference FA (the plain unordered
// template, which goes ill-formed on order-only errors) and compare
//
//   Top-down            — stalls wherever the lattice is ill-formed;
//   Top-down+autofocus  — detects the stall, asks the advisor for a
//                         focus seed, relabels inside the focused
//                         sub-lattice, and merges back;
//   Top-down @ recommended — the hand-chosen reference FA of Table 3
//                         (what a careful user would pick up front).
//
// The shape to see: auto-focus turns every '-' into a finished run while
// staying within shouting distance of the hand-tuned reference FA.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "cable/Advisor.h"
#include "fa/Templates.h"

#include <cstdio>

using namespace cable;
using namespace cable::bench;

int main() {
  cable::bench::BenchReport Report("ablation_autofocus");
  std::printf("Ablation: auto-focus (the §6 interactive fine-tuning, made "
              "concrete)\n\n");

  TablePrinter T({{"Specification", 14},
                  {"TD@unordered", 12},
                  {"TD+hand", 8},
                  {"TD+autofocus", 12},
                  {"TD@recommended", 14}});

  size_t Repaired = 0, Stalled = 0;
  for (SpecEvaluation &E : evaluateAllProtocols()) {
    Session &Rec = *E.S;

    // A second session over the same traces with the unordered template.
    std::vector<Trace> Reps;
    for (size_t Obj = 0; Obj < Rec.numObjects(); ++Obj)
      Reps.push_back(Rec.object(Obj));
    TraceSet Traces = Rec.allTraces();
    Automaton Unordered =
        makeUnorderedFA(templateAlphabet(Reps), Traces.table());
    Session Weak(std::move(Traces), std::move(Unordered));
    Oracle Truth(E.Model, Weak.table());
    ReferenceLabeling WeakTarget = Truth.referenceLabeling(Weak);

    TopDownStrategy TD;
    StrategyCost Plain = TD.run(Weak, WeakTarget);
    HandLabelFallbackStrategy HL;
    StrategyCost Hand = HL.run(Weak, WeakTarget);
    AutoFocusStrategy AF;
    StrategyCost Auto = AF.run(Weak, WeakTarget);
    StrategyCost RecCost = TD.run(Rec, E.Target);

    auto Fmt = [](const StrategyCost &C) {
      return C.Finished ? std::to_string(C.total()) : std::string("-");
    };
    T.addRow({E.Model.Name, Fmt(Plain), Fmt(Hand), Fmt(Auto), Fmt(RecCost)});
    if (!Plain.Finished && Auto.Finished)
      ++Repaired;
    if (!Auto.Finished)
      ++Stalled;
  }

  T.print();
  std::printf("\nauto-focus repaired %zu ill-formed lattices; %zu remained "
              "stuck.\n",
              Repaired, Stalled);
  Report.write();
  return 0;
}
