//===- bench/fig3_4_reference_fas.cpp - Reproduces Figs. 3 and 4 -----------===//
//
// Part of the Cable reproduction of "Debugging Temporal Specifications with
// Concept Analysis" (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//
//
// Figure 3: a small reference FA recognizing the stdio violation traces,
// learned with sk-strings (Step 1a; the paper notes the ordering of popen
// vs pclose is distinguishable here). Figure 4: the coarser unordered FA
// that ignores ordering and induces a simpler lattice.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "fa/Regex.h"
#include "fa/Templates.h"
#include "learner/SkStrings.h"
#include "support/RNG.h"
#include "verifier/Verifier.h"
#include "workload/Generator.h"

#include <cstdio>

using namespace cable;

int main() {
  cable::bench::BenchReport Report("fig3_4_reference_fas");
  ProtocolModel Model = stdioProtocol();
  EventTable Table;
  WorkloadGenerator Gen(Model, Table);
  RNG Rand(0xF162);
  TraceSet Runs = Gen.generateRuns(Rand);
  Automaton Buggy = compileRegexOrDie(stdioBuggyRegex(), Runs.table());
  ExtractorOptions Extract;
  Extract.SeedNames = Model.Seeds;
  VerificationResult R = verifyAgainstRuns(Runs, Buggy, Extract);

  std::printf("Figure 3: sk-strings reference FA over the violation "
              "traces\n\n");
  SkStringsOptions Learn;
  Learn.S = 1.0;
  Automaton Fig3 =
      learnSkStringsFA(R.Violations.dedup().traces(), R.Violations.table(),
                       Learn);
  std::printf("%s\n", Fig3.renderText(R.Violations.table()).c_str());

  std::printf("Figure 4: unordered reference FA (coarser distinctions, "
              "smaller lattice)\n\n");
  Automaton Fig4 = makeUnorderedFA(templateAlphabet(R.Violations.traces()),
                                   R.Violations.table());
  std::printf("%s\n", Fig4.renderText(R.Violations.table()).c_str());

  // Both must recognize every violation trace (the Step 1a requirement).
  size_t Fig3Accepts = 0, Fig4Accepts = 0;
  for (const Trace &T : R.Violations.traces()) {
    Fig3Accepts += Fig3.accepts(T, R.Violations.table());
    Fig4Accepts += Fig4.accepts(T, R.Violations.table());
  }
  std::printf("recognition check: Fig3 %zu/%zu, Fig4 %zu/%zu violation "
              "traces accepted\n",
              Fig3Accepts, R.Violations.size(), Fig4Accepts,
              R.Violations.size());

  std::printf("\nDOT (Figure 3):\n%s",
              Fig3.renderDot(R.Violations.table(), "fig3").c_str());
  std::printf("\nDOT (Figure 4):\n%s",
              Fig4.renderDot(R.Violations.table(), "fig4").c_str());
  Report.write();
  return 0;
}
