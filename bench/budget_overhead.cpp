//===- bench/budget_overhead.cpp - Budget checkpoint cost ------------------===//
//
// Part of the Cable reproduction of "Debugging Temporal Specifications with
// Concept Analysis" (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//
//
// The budgeted entry points poll a BudgetMeter once per candidate closure
// (docs/ALGORITHMS.md, "Budgets, cancellation, and truncation"). These
// sweeps measure that overhead: each builder runs the same context through
// its unbudgeted path and through buildLatticeBudgeted with an unlimited
// meter — the pair should be within noise of each other. A third sweep
// measures how quickly a 10 ms deadline actually stops a contranominal
// build (the worst-case exponential input), reporting the enumerated
// prefix size as a counter.
//
//===----------------------------------------------------------------------===//

#include "concepts/GodinBuilder.h"
#include "concepts/LindigBuilder.h"
#include "concepts/NextClosureBuilder.h"
#include "concepts/ParallelBuilder.h"
#include "support/Budget.h"
#include "support/RNG.h"

#include "BenchCommon.h"

#include <benchmark/benchmark.h>

using namespace cable;

namespace {

Context randomContext(size_t NumObjects, size_t K, size_t PoolSize,
                      uint64_t Seed) {
  RNG Rand(Seed);
  Context Ctx(NumObjects, PoolSize);
  for (size_t O = 0; O < NumObjects; ++O)
    for (size_t J = 0; J < K; ++J)
      Ctx.relate(O, Rand.nextIndex(PoolSize));
  return Ctx;
}

/// Object i related to every attribute except i: the lattice is the full
/// powerset, 2^N concepts — the adversarial budget-test input.
Context contranominal(size_t N) {
  Context Ctx(N, N);
  for (size_t O = 0; O < N; ++O)
    for (size_t A = 0; A < N; ++A)
      if (O != A)
        Ctx.relate(O, A);
  return Ctx;
}

void BM_NextClosureUnbudgeted(benchmark::State &State) {
  Context Ctx = randomContext(64, 6, 24, 42);
  for (auto _ : State) {
    ConceptLattice L = NextClosureBuilder::buildLattice(Ctx);
    benchmark::DoNotOptimize(L);
  }
}
BENCHMARK(BM_NextClosureUnbudgeted);

void BM_NextClosureUnlimitedMeter(benchmark::State &State) {
  Context Ctx = randomContext(64, 6, 24, 42);
  for (auto _ : State) {
    BudgetMeter Meter{Budget{}};
    LatticeBuildResult R = NextClosureBuilder::buildLatticeBudgeted(Ctx, Meter);
    benchmark::DoNotOptimize(R);
  }
}
BENCHMARK(BM_NextClosureUnlimitedMeter);

void BM_GodinUnbudgeted(benchmark::State &State) {
  Context Ctx = randomContext(64, 6, 24, 42);
  for (auto _ : State) {
    ConceptLattice L = GodinBuilder::buildLattice(Ctx);
    benchmark::DoNotOptimize(L);
  }
}
BENCHMARK(BM_GodinUnbudgeted);

void BM_GodinUnlimitedMeter(benchmark::State &State) {
  Context Ctx = randomContext(64, 6, 24, 42);
  for (auto _ : State) {
    BudgetMeter Meter{Budget{}};
    LatticeBuildResult R = GodinBuilder::buildLatticeBudgeted(Ctx, Meter);
    benchmark::DoNotOptimize(R);
  }
}
BENCHMARK(BM_GodinUnlimitedMeter);

void BM_LindigUnbudgeted(benchmark::State &State) {
  Context Ctx = randomContext(64, 6, 24, 42);
  for (auto _ : State) {
    ConceptLattice L = LindigBuilder::buildLattice(Ctx);
    benchmark::DoNotOptimize(L);
  }
}
BENCHMARK(BM_LindigUnbudgeted);

void BM_LindigUnlimitedMeter(benchmark::State &State) {
  Context Ctx = randomContext(64, 6, 24, 42);
  for (auto _ : State) {
    BudgetMeter Meter{Budget{}};
    LatticeBuildResult R = LindigBuilder::buildLatticeBudgeted(Ctx, Meter);
    benchmark::DoNotOptimize(R);
  }
}
BENCHMARK(BM_LindigUnlimitedMeter);

void BM_ParallelUnbudgeted(benchmark::State &State) {
  Context Ctx = randomContext(64, 6, 24, 42);
  unsigned Threads = static_cast<unsigned>(State.range(0));
  for (auto _ : State) {
    ConceptLattice L = ParallelBuilder::buildLattice(Ctx, Threads);
    benchmark::DoNotOptimize(L);
  }
}
BENCHMARK(BM_ParallelUnbudgeted)->Arg(1)->Arg(4);

void BM_ParallelUnlimitedMeter(benchmark::State &State) {
  Context Ctx = randomContext(64, 6, 24, 42);
  unsigned Threads = static_cast<unsigned>(State.range(0));
  for (auto _ : State) {
    BudgetMeter Meter{Budget{}};
    LatticeBuildResult R =
        ParallelBuilder::buildLatticeBudgeted(Ctx, Meter, Threads);
    benchmark::DoNotOptimize(R);
  }
}
BENCHMARK(BM_ParallelUnlimitedMeter)->Arg(1)->Arg(4);

/// How fast a 10 ms deadline stops the exponential worst case, and how
/// large a prefix survives. Not a throughput number — the interesting
/// output is wall time staying near the deadline instead of 2^22.
void BM_DeadlineStopsContranominal(benchmark::State &State) {
  Context Ctx = contranominal(22);
  size_t Kept = 0;
  for (auto _ : State) {
    Budget B;
    B.TimeLimit = std::chrono::milliseconds(10);
    BudgetMeter Meter(B);
    LatticeBuildResult R =
        ParallelBuilder::buildLatticeBudgeted(Ctx, Meter, 4u);
    Kept = R.Lattice.size();
    benchmark::DoNotOptimize(R);
  }
  State.counters["kept_concepts"] = static_cast<double>(Kept);
}
BENCHMARK(BM_DeadlineStopsContranominal)->Unit(benchmark::kMillisecond);

} // namespace

// Custom main instead of BENCHMARK_MAIN(): always emit the BENCH JSON
// (a fixed paired probe of the unbudgeted vs. unlimited-meter paths),
// and run the full google-benchmark sweeps only outside quick mode.
int main(int Argc, char **Argv) {
  cable::bench::BenchReport Report("budget_overhead");
  {
    Context Ctx = randomContext(64, 6, 24, 42);
    int Samples = cable::bench::BenchReport::quick() ? 3 : 11;
    for (int I = 0; I < Samples; ++I) {
      Report.timeSample("next-closure-unbudgeted", [&] {
        ConceptLattice L = NextClosureBuilder::buildLattice(Ctx);
        benchmark::DoNotOptimize(L);
      });
      Report.timeSample("next-closure-unlimited-meter", [&] {
        BudgetMeter Meter{Budget{}};
        LatticeBuildResult R =
            NextClosureBuilder::buildLatticeBudgeted(Ctx, Meter);
        benchmark::DoNotOptimize(R);
      });
      Report.timeSample("parallel4-unlimited-meter", [&] {
        BudgetMeter Meter{Budget{}};
        LatticeBuildResult R =
            ParallelBuilder::buildLatticeBudgeted(Ctx, Meter, 4u);
        benchmark::DoNotOptimize(R);
      });
    }
    Budget B;
    B.TimeLimit = std::chrono::milliseconds(10);
    BudgetMeter Meter(B);
    LatticeBuildResult R =
        ParallelBuilder::buildLatticeBudgeted(contranominal(22), Meter, 4u);
    Report.counter("deadline_kept_concepts",
                   static_cast<double>(R.Lattice.size()));
  }
  if (!cable::bench::BenchReport::quick()) {
    benchmark::Initialize(&Argc, Argv);
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
  }
  Report.write();
  return 0;
}
