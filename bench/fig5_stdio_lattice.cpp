//===- bench/fig5_stdio_lattice.cpp - Reproduces Fig. 5 --------------------===//
//
// Part of the Cable reproduction of "Debugging Temporal Specifications with
// Concept Analysis" (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//
//
// Figure 5: the concept lattice induced by the stdio violation traces
// with respect to the reference FA. Each concept is printed with its
// trace count, similarity (shared transitions), an sk-strings FA summary
// one-liner, and the transitions of its intent — the three Cable summary
// views. The key §2.1 concepts must be present: "traces that execute
// popen" and, below it, "traces that execute popen and pclose".
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "cable/Session.h"
#include "fa/Regex.h"
#include "fa/Templates.h"
#include "support/RNG.h"
#include "verifier/Verifier.h"
#include "workload/Generator.h"

#include <cstdio>

using namespace cable;

int main() {
  cable::bench::BenchReport Report("fig5_stdio_lattice");
  ProtocolModel Model = stdioProtocol();
  EventTable Table;
  WorkloadGenerator Gen(Model, Table);
  RNG Rand(0xF162);
  TraceSet Runs = Gen.generateRuns(Rand);
  Automaton Buggy = compileRegexOrDie(stdioBuggyRegex(), Runs.table());
  ExtractorOptions Extract;
  Extract.SeedNames = Model.Seeds;
  VerificationResult R = verifyAgainstRuns(Runs, Buggy, Extract);

  Automaton Ref = makeUnorderedFA(templateAlphabet(R.Violations.traces()),
                                  R.Violations.table());
  Session S(std::move(R.Violations), std::move(Ref));

  std::printf("Figure 5: concept lattice over the stdio violation traces\n");
  std::printf("(%zu unique traces, %zu concepts)\n\n", S.numObjects(),
              S.lattice().size());

  for (Session::NodeId Id : S.lattice().topDownOrder()) {
    const Concept &C = S.lattice().node(Id);
    std::printf("%s\n", S.describeConcept(Id).c_str());
    std::printf("  transitions:");
    for (TransitionId TI : S.showTransitions(Id))
      std::printf(" %s",
                  S.referenceFA()
                      .transition(TI)
                      .Label.render(S.table())
                      .c_str());
    std::printf("\n  children:");
    for (Session::NodeId Child : S.lattice().children(Id))
      std::printf(" c%u", Child);
    std::printf("\n  traces:\n");
    size_t Shown = 0;
    for (size_t Obj : S.showTraces(Id, TraceSelect::All)) {
      if (++Shown > 3) {
        std::printf("    ...\n");
        break;
      }
      std::printf("    %s\n", S.object(Obj).render(S.table()).c_str());
    }
  }

  std::printf("\nDOT:\n%s", S.renderDot("fig5_lattice").c_str());
  Report.write();
  return 0;
}
