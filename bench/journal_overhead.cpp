//===- bench/journal_overhead.cpp - Durable-session cost -------------------===//
//
// Part of the Cable reproduction of "Debugging Temporal Specifications with
// Concept Analysis" (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//
//
// The --journal flag makes every command durable before it is applied
// (cable/Journal.h). These sweeps put a number on that durability tax
// over a scripted ~50-op labeling session of the shape the paper's Step 2
// describes — inspect a suggested concept (describe, FA summary, traces),
// label it, occasionally undo — so the "journal append overhead stays
// under 5% of the session it protects" claim is measured, not assumed.
// Both sync policies are swept: batch (the --script default, group
// commit) is the one the 5% budget applies to; always (the interactive
// default, fsync per command) shows what per-command power-loss
// durability costs on this filesystem. The disabled-failpoint sweep pins
// the other robustness claim: an unarmed Failpoint::hit() is one relaxed
// atomic load, cheap enough to leave compiled into every fsync and
// rename on the hot path.
//
//===----------------------------------------------------------------------===//

#include "cable/Journal.h"
#include "cable/Session.h"
#include "support/Failpoint.h"
#include "workload/Protocols.h"

#include "BenchCommon.h"

#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>
#include <sys/stat.h>
#include <unistd.h>

using namespace cable;

namespace {

/// One scripted labeling pass over \p S: 10 rounds of the paper's
/// inspect-then-label loop, ~60 journaled commands total. When \p J is
/// set, each command is appended before it is applied, the cable-cli
/// write-ahead discipline. Snapshot compaction is a separately tunable
/// (--snapshot-every) cost with its own sweep below.
void runScriptedSession(Session &S, Journal *J) {
  auto Op = [&](const char *Cmd) {
    if (J)
      benchmark::DoNotOptimize(J->append(Cmd));
  };
  LabelId Good = S.internLabel("good");
  LabelId Bad = S.internLabel("bad");
  size_t N = S.lattice().size();
  for (int Round = 0; Round < 10; ++Round) {
    Session::NodeId Id = static_cast<Session::NodeId>((Round + 1) % N);
    // Inspect before labeling, the way a user would.
    Op("ls");
    benchmark::DoNotOptimize(S.describeConcept(Id));
    Op("fa cN");
    benchmark::DoNotOptimize(S.showFA(Id, TraceSelect::All));
    Op("traces cN");
    benchmark::DoNotOptimize(S.showTraces(Id, TraceSelect::All));
    Op("label cN good");
    S.labelTraces(Id, TraceSelect::All, Good);
    Op("label cN bad unlabeled");
    S.labelTraces(static_cast<Session::NodeId>((Round + 2) % N),
                  TraceSelect::Unlabeled, Bad);
    Op("undo");
    S.undo();
  }
  S.clearLabels();
}

/// Builds the stdio session once; iterations reuse it (clearLabels resets
/// all mutable state the script touches).
Session &stdioSession() {
  static bench::SpecEvaluation Eval =
      bench::evaluateProtocol(stdioProtocol());
  return *Eval.S;
}

void removeJournalDir(const std::string &Dir) {
  ::unlink(Journal::logPath(Dir).c_str());
  ::unlink(Journal::snapshotPath(Dir).c_str());
  ::unlink(Journal::markerPath(Dir).c_str());
  ::rmdir(Dir.c_str());
}

void BM_ScriptedSessionPlain(benchmark::State &State) {
  Session &S = stdioSession();
  for (auto _ : State)
    runScriptedSession(S, nullptr);
}
BENCHMARK(BM_ScriptedSessionPlain)->Unit(benchmark::kMicrosecond);

/// Arg 0 = SyncPolicy::Batched (the --script default; the <=5% append-
/// overhead budget is judged against this row), 1 = EveryRecord (the
/// interactive default: one fsync per command, the price of surviving a
/// power cut with at most the in-flight command lost). The journal stays
/// open across iterations the way it stays open across a session; its
/// one-time open/close cost is not an append cost.
void BM_ScriptedSessionJournaled(benchmark::State &State) {
  Session &S = stdioSession();
  Journal::SyncPolicy Policy = State.range(0) == 0
                                   ? Journal::SyncPolicy::Batched
                                   : Journal::SyncPolicy::EveryRecord;
  std::string Dir = "/tmp/cable_bench_journal";
  removeJournalDir(Dir);
  Journal::Recovery Rec;
  StatusOr<Journal> J = Journal::open(Dir, Rec);
  if (!J.isOk()) {
    State.SkipWithError(J.status().message().c_str());
    return;
  }
  J->setSyncPolicy(Policy);
  for (auto _ : State) {
    runScriptedSession(S, &*J);
    // Compact outside the timed region so the log cannot grow without
    // bound; the snapshot cost has its own sweep below.
    State.PauseTiming();
    benchmark::DoNotOptimize(J->snapshot(S.serializeSnapshot()));
    State.ResumeTiming();
  }
  benchmark::DoNotOptimize(J->closeClean());
  removeJournalDir(Dir);
}
BENCHMARK(BM_ScriptedSessionJournaled)
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMicrosecond);

/// One compaction: serialize the session state, write it atomically,
/// truncate the log. Paid every --snapshot-every commands (default 25)
/// and once at clean shutdown.
void BM_JournalSnapshotCompaction(benchmark::State &State) {
  Session &S = stdioSession();
  std::string Dir = "/tmp/cable_bench_snapshot";
  removeJournalDir(Dir);
  Journal::Recovery Rec;
  StatusOr<Journal> J = Journal::open(Dir, Rec);
  if (!J.isOk()) {
    State.SkipWithError(J.status().message().c_str());
    return;
  }
  LabelId Good = S.internLabel("good");
  S.labelTraces(0, TraceSelect::All, Good);
  for (auto _ : State)
    benchmark::DoNotOptimize(J->snapshot(S.serializeSnapshot()));
  S.clearLabels();
  benchmark::DoNotOptimize(J->closeClean());
  removeJournalDir(Dir);
}
BENCHMARK(BM_JournalSnapshotCompaction)->Unit(benchmark::kMicrosecond);

/// A disabled failpoint is one relaxed atomic load; this is the cost paid
/// on every fsync/rename/read with CABLE_FAILPOINTS unset.
void BM_FailpointHitDisabled(benchmark::State &State) {
  Failpoint::reset();
  for (auto _ : State) {
    Status S = Failpoint::hit("journal-append");
    benchmark::DoNotOptimize(S);
  }
}
BENCHMARK(BM_FailpointHitDisabled);

/// Baseline for the sweep above: the same loop minus the hit() call.
void BM_FailpointLoopBaseline(benchmark::State &State) {
  for (auto _ : State) {
    Status S;
    benchmark::DoNotOptimize(S);
  }
}
BENCHMARK(BM_FailpointLoopBaseline);

} // namespace

// Custom main instead of BENCHMARK_MAIN(): always emit the BENCH JSON
// (plain vs. journaled scripted-session probes under both sync
// policies), and run the google-benchmark sweeps only outside quick
// mode. The metrics snapshot picks up journal.append-us / fsync-us
// histograms from the probes for free.
int main(int Argc, char **Argv) {
  cable::bench::BenchReport Report("journal_overhead");
  {
    Session &S = stdioSession();
    int Samples = cable::bench::BenchReport::quick() ? 3 : 11;
    for (int I = 0; I < Samples; ++I)
      Report.timeSample("scripted-session-plain",
                        [&] { runScriptedSession(S, nullptr); });
    for (Journal::SyncPolicy Policy :
         {Journal::SyncPolicy::Batched, Journal::SyncPolicy::EveryRecord}) {
      std::string Dir = "/tmp/cable_bench_journal_json";
      removeJournalDir(Dir);
      Journal::Recovery Rec;
      StatusOr<Journal> J = Journal::open(Dir, Rec);
      if (!J.isOk()) {
        std::fprintf(stderr, "warning: %s\n", J.status().message().c_str());
        continue;
      }
      J->setSyncPolicy(Policy);
      const char *Section = Policy == Journal::SyncPolicy::Batched
                                ? "scripted-session-journal-batch"
                                : "scripted-session-journal-fsync";
      for (int I = 0; I < Samples; ++I) {
        Report.timeSample(Section, [&] { runScriptedSession(S, &*J); });
        benchmark::DoNotOptimize(J->snapshot(S.serializeSnapshot()));
      }
      benchmark::DoNotOptimize(J->closeClean());
      removeJournalDir(Dir);
    }
  }
  if (!cable::bench::BenchReport::quick()) {
    benchmark::Initialize(&Argc, Argv);
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
  }
  Report.write();
  return 0;
}
