//===- bench/table3_labeling_cost.cpp - Reproduces Table 3 -----------------===//
//
// Part of the Cable reproduction of "Debugging Temporal Specifications with
// Concept Analysis" (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//
//
// Table 3: the cost (inspections + label operations, §4.2) of obtaining
// the expert's labeling with each method:
//
//   Baseline  — 2 ops per class of identical traces (no lattice);
//   Expert    — simulated expert (mostly top-down, steered by
//               discriminating transitions);
//   Top-down / Bottom-up — the automatic traversals; like the paper,
//               the lowest cost over their nondeterministic orderings
//               (64 sampled orders);
//   Random    — arithmetic mean of 1024 trials (as in the paper);
//   Optimal   — exhaustive search; '-' when the state cap is hit, like
//               the paper's evaluation program on its largest four specs.
//
// Shapes to check against the paper: Expert well under Baseline overall
// (less than a third of the decisions on average; 28 vs 224 on the
// XtFree-like row), near-parity on specs with <10 unique traces,
// Bottom-up == Baseline on loop-free specs, Top-down and Random beating
// Baseline nearly everywhere.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include <cstdio>

using namespace cable;
using namespace cable::bench;

int main() {
  cable::bench::BenchReport Report("table3_labeling_cost");
  std::printf("Table 3: cost of labeling, by method "
              "(Random = mean of 1024 trials)\n\n");

  TablePrinter T({{"Specification", 14},
                  {"Unique", 6},
                  {"Baseline", 8},
                  {"Expert", 6},
                  {"Top-down", 8},
                  {"Bottom-up", 9},
                  {"Random", 7},
                  {"Optimal", 7}});

  double ExpertTotal = 0, BaselineTotal = 0;
  for (SpecEvaluation &E : evaluateAllProtocols()) {
    Session &S = *E.S;

    BaselineMethod Baseline;
    size_t BaselineCost = Baseline.run(S, E.Target).total();

    ExpertSimStrategy Expert;
    StrategyCost ExpertCost = Expert.run(S, E.Target);

    // The paper reports the lowest cost over Top-down's and Bottom-up's
    // nondeterministic orderings; sample 64 randomized orders each.
    LowestSummary TDCost = measureLowestCost(
        S, E.Target, 64, 0x7D, [](RNG Rand) -> std::unique_ptr<Strategy> {
          return std::make_unique<TopDownStrategy>(Rand);
        });
    LowestSummary BUCost = measureLowestCost(
        S, E.Target, 64, 0xB0, [](RNG Rand) -> std::unique_ptr<Strategy> {
          return std::make_unique<BottomUpStrategy>(Rand);
        });

    RandomSummary Random = measureRandomMean(S, E.Target, 1024, 0xCAB1E);

    OptimalStrategy Optimal(/*StateCap=*/250'000);
    StrategyCost OptCost = Optimal.run(S, E.Target);

    auto Fmt = [](const StrategyCost &C) {
      return C.Finished ? cell(C.total()) : std::string("-");
    };
    auto FmtLow = [](const LowestSummary &C) {
      return C.Finished ? cell(C.LowestTotal) : std::string("-");
    };
    T.addRow({E.Model.Name, cell(S.numObjects()), cell(BaselineCost),
              Fmt(ExpertCost), FmtLow(TDCost), FmtLow(BUCost),
              Random.Finished ? cell1(Random.MeanTotal) : std::string("-"),
              Fmt(OptCost)});

    if (ExpertCost.Finished) {
      ExpertTotal += static_cast<double>(ExpertCost.total());
      BaselineTotal += static_cast<double>(BaselineCost);
    }
  }

  T.print();
  std::printf("\nTotals: Expert %.0f vs Baseline %.0f ops "
              "(ratio %.2f; paper: < 1/3 on average).\n"
              "'-' = did not finish (Optimal state cap, like the paper's "
              "four largest specs).\n",
              ExpertTotal, BaselineTotal, ExpertTotal / BaselineTotal);
  Report.write();
  return 0;
}
