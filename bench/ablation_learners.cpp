//===- bench/ablation_learners.cpp - FA-learner comparison -----------------===//
//
// Part of the Cable reproduction of "Debugging Temporal Specifications with
// Concept Analysis" (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//
//
// §6 points at Murphy's survey of FA learners and notes Strauss uses
// Raman & Patrick's sk-strings. This ablation swaps the back-end learner
// while keeping the Cable debugging loop fixed: each learner re-learns a
// specification from the oracle-good traces, and the result is scored
// against ground truth (good-acceptance on *fresh* correct scenarios to
// expose generalization, and bad-rejection on the training corpus) plus
// its FA size.
//
// Learners: sk-strings (AND/OR variants at s=0.5 and s=1.0) and k-tails
// (k = 1, 2, 4).
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "learner/KTails.h"
#include "learner/SkStrings.h"

#include <cstdio>
#include <functional>

using namespace cable;
using namespace cable::bench;

namespace {

struct LearnerSpec {
  std::string Name;
  std::function<Automaton(const std::vector<Trace> &, EventTable &)> Learn;
};

std::string cell2(double D) {
  char Buf[16];
  std::snprintf(Buf, sizeof(Buf), "%.2f", D);
  return Buf;
}

} // namespace

int main() {
  cable::bench::BenchReport Report("ablation_learners");
  std::printf("Ablation: FA learners as the Strauss back end\n");
  std::printf("cells: fresh-good-acceptance / corpus-bad-rejection / "
              "states\n\n");

  std::vector<LearnerSpec> Learners;
  for (auto [S, V, Label] :
       {std::tuple{1.0, SkStringsOptions::Variant::AND, "sk-AND@1.0"},
        std::tuple{0.5, SkStringsOptions::Variant::AND, "sk-AND@0.5"},
        std::tuple{0.5, SkStringsOptions::Variant::OR, "sk-OR@0.5"}}) {
    SkStringsOptions Options;
    Options.S = S;
    Options.Agreement = V;
    Learners.push_back(
        {Label, [Options](const std::vector<Trace> &Tr, EventTable &T) {
           return learnSkStringsFA(Tr, T, Options);
         }});
  }
  for (unsigned K : {1u, 2u, 4u})
    Learners.push_back({"k-tails@" + std::to_string(K),
                        [K](const std::vector<Trace> &Tr, EventTable &T) {
                          return learnKTailsFA(Tr, T, K);
                        }});

  std::vector<std::pair<std::string, size_t>> Columns{{"Specification", 14}};
  for (const LearnerSpec &L : Learners)
    Columns.push_back({L.Name, 16});
  TablePrinter T(Columns);

  for (SpecEvaluation &E : evaluateAllProtocols()) {
    Session &S = *E.S;
    LabelId Good = S.internLabel("good");

    std::vector<Trace> GoodTraces;
    for (size_t Obj = 0; Obj < S.numObjects(); ++Obj)
      if (E.Target.Target[Obj] == Good)
        GoodTraces.push_back(S.object(Obj));

    // Fresh correct scenarios for the generalization score.
    EventTable FreshTable = S.table();
    WorkloadGenerator Gen(E.Model, FreshTable);
    RNG Rand(0xFEED ^ std::hash<std::string>{}(E.Model.Name));
    std::vector<Trace> FreshGood;
    for (int I = 0; I < 60; ++I)
      FreshGood.push_back(Gen.generateCorrect(Rand).canonicalized(FreshTable));

    std::vector<std::string> Row{E.Model.Name};
    for (const LearnerSpec &L : Learners) {
      EventTable Table = FreshTable;
      Automaton FA = L.Learn(GoodTraces, Table);

      size_t FreshAccepted = 0;
      for (const Trace &Tr : FreshGood)
        FreshAccepted += FA.accepts(Tr, Table);
      size_t Bad = 0, BadRejected = 0;
      for (size_t Obj = 0; Obj < S.numObjects(); ++Obj) {
        if (E.Target.Target[Obj] == Good)
          continue;
        ++Bad;
        BadRejected += !FA.accepts(S.object(Obj), Table);
      }
      double GoodAcc =
          FreshGood.empty()
              ? 1.0
              : static_cast<double>(FreshAccepted) / FreshGood.size();
      double BadRej =
          Bad == 0 ? 1.0 : static_cast<double>(BadRejected) / Bad;
      Row.push_back(cell2(GoodAcc) + "/" + cell2(BadRej) + "/" +
                    std::to_string(FA.trimmed().numStates()));
    }
    T.addRow(std::move(Row));
  }

  T.print();
  std::printf("\nExpected shape: lower s and smaller k generalize more\n"
              "(higher fresh-good acceptance) at some risk of accepting\n"
              "erroneous traces; conservative settings are exact on the\n"
              "corpus but reject unseen correct interleavings.\n");
  Report.write();
  return 0;
}
