//===- bench/corpus_pipeline.cpp - Program-corpus evaluation ---------------===//
//
// Part of the Cable reproduction of "Debugging Temporal Specifications with
// Concept Analysis" (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//
//
// The evaluation pipeline rerun over *program corpora* instead of directly
// sampled traces: for each specification, a fleet of toy programs is
// synthesized (some call sites buggy, buggy in every run — the paper's
// corpus regime), run several times, sliced by the Strauss front end, and
// debugged. Reported per specification:
//
//   programs/runs/scenarios, unique classes, how often the most frequent
//   *erroneous* class recurs (the §6 "buggy traces occurred so
//   frequently" statistic), lattice size, and Expert vs Baseline labeling
//   cost.
//
// Shapes to check: the qualitative Table 2/3 conclusions survive the
// corpus change — costs still land well below Baseline on the diverse
// specs — and erroneous classes recur across runs (multiplicity > 1),
// which is what makes frequency-based debugging hopeless.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "miner/ScenarioExtractor.h"
#include "program/Synthesize.h"

#include <cstdio>

using namespace cable;
using namespace cable::bench;

int main() {
  cable::bench::BenchReport Report("corpus_pipeline");
  std::printf("Program-corpus pipeline (buggy sites recur in every run)\n\n");

  TablePrinter T({{"Specification", 14},
                  {"Progs", 5},
                  {"Runs", 4},
                  {"Scen", 5},
                  {"Unique", 6},
                  {"MaxBadMult", 10},
                  {"Concepts", 8},
                  {"Expert", 6},
                  {"Baseline", 8}});

  double ExpertTotal = 0, BaselineTotal = 0;
  for (const ProtocolModel &Model : allProtocols()) {
    EventTable Table;
    uint64_t Seed = 0x5EED;
    for (char C : Model.Name)
      Seed = Seed * 131 + static_cast<unsigned char>(C);
    RNG Rand(Seed);

    CorpusOptions Options;
    Options.NumPrograms = std::max<size_t>(6, Model.NumRuns);
    Options.RunsPerProgram = 2;
    Options.SitesPerProgram = std::max<size_t>(2, Model.ScenariosPerRun / 2);
    Options.BuggySiteRate = Model.ErrorRate;
    TraceSet Runs = generateProgramCorpus(Model, Table, Rand, Options);

    ExtractorOptions Extract;
    Extract.SeedNames = Model.Seeds;
    Extract.TransitiveValues = true;
    TraceSet Scenarios = extractScenarios(Runs, Extract);
    TraceClasses Classes = Scenarios.computeClasses();

    Automaton Ref = makeProtocolReferenceFA(Scenarios.traces(),
                                            Scenarios.table(), Model);
    Session S(std::move(Scenarios), std::move(Ref));
    Oracle Truth(Model, S.table());
    ReferenceLabeling Target = Truth.referenceLabeling(S);

    size_t MaxBadMult = 0;
    for (size_t C = 0; C < Classes.numClasses(); ++C)
      if (!Truth.isCorrect(Classes.Representatives[C], S.table()))
        MaxBadMult = std::max(MaxBadMult, size_t(Classes.Multiplicity[C]));

    ExpertSimStrategy Expert;
    StrategyCost Cost = Expert.run(S, Target);
    size_t Baseline = 2 * S.numObjects();

    T.addRow({Model.Name, cell(Options.NumPrograms),
              cell(Options.NumPrograms * Options.RunsPerProgram),
              cell(S.allTraces().size()), cell(S.numObjects()),
              cell(MaxBadMult), cell(S.lattice().size()),
              Cost.Finished ? cell(Cost.total()) : std::string("-"),
              cell(Baseline)});
    if (Cost.Finished) {
      ExpertTotal += static_cast<double>(Cost.total());
      BaselineTotal += static_cast<double>(Baseline);
    }
  }

  T.print();
  std::printf("\nTotals: Expert %.0f vs Baseline %.0f (ratio %.2f) on "
              "program corpora.\n",
              ExpertTotal, BaselineTotal, ExpertTotal / BaselineTotal);
  Report.write();
  return 0;
}
