//===- bench/ablation_reference_fa.cpp - Reference-FA choice ablation ------===//
//
// Part of the Cable reproduction of "Debugging Temporal Specifications with
// Concept Analysis" (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//
//
// §2.1/§4.1 argue the reference FA is a tunable knob: a large FA makes
// fine distinctions (bigger lattice, more labeling power), a small one
// coarser distinctions (smaller lattice, risk of ill-formedness). This
// ablation measures, per specification and per reference-FA choice:
// whether the induced lattice is well-formed for the oracle labeling, the
// lattice size, and the Expert labeling cost.
//
// Choices: unordered template; recommended (unordered + seed-order
// components, what Table 3 uses); prefix tree (finest — every class its
// own attribute path); sk-strings mined FA (§2.2's default).
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "fa/Templates.h"
#include "learner/SkStrings.h"

#include <cstdio>
#include <functional>

using namespace cable;
using namespace cable::bench;

namespace {

std::string measure(const SpecEvaluation &E, Automaton Ref) {
  // Fresh session on the same scenarios with the candidate reference FA.
  Session S(E.S->allTraces(), std::move(Ref));
  Oracle Truth(E.Model, S.table());
  ReferenceLabeling Target = Truth.referenceLabeling(S);
  bool WF = checkWellFormed(S, Target).LatticeWellFormed;
  ExpertSimStrategy Expert;
  StrategyCost Cost = Expert.run(S, Target);
  std::string Out = WF ? "wf" : "ILL";
  Out += "/" + std::to_string(S.lattice().size()) + "/";
  Out += Cost.Finished ? std::to_string(Cost.total()) : std::string("-");
  return Out;
}

} // namespace

int main() {
  cable::bench::BenchReport Report("ablation_reference_fa");
  std::printf("Ablation: reference-FA choice "
              "(cells: well-formed? / concepts / expert cost)\n\n");

  TablePrinter T({{"Specification", 14},
                  {"unordered", 14},
                  {"recommended", 14},
                  {"prefix-tree", 14},
                  {"mined(sk)", 14}});

  for (SpecEvaluation &E : evaluateAllProtocols()) {
    Session &S = *E.S;
    std::vector<Trace> Reps;
    for (size_t Obj = 0; Obj < S.numObjects(); ++Obj)
      Reps.push_back(S.object(Obj));
    std::vector<EventId> Alphabet = templateAlphabet(Reps);

    std::string Unordered =
        measure(E, makeUnorderedFA(Alphabet, S.table()));
    std::string Recommended = measure(
        E, makeProtocolReferenceFA(Reps, S.table(), E.Model));
    std::string PrefixTree =
        measure(E, makePrefixTreeFA(Reps, S.table()));
    SkStringsOptions Learn;
    Learn.S = 1.0;
    std::string Mined =
        measure(E, learnSkStringsFA(Reps, S.table(), Learn));

    T.addRow({E.Model.Name, Unordered, Recommended, PrefixTree, Mined});
  }

  T.print();
  std::printf("\nExpected shape: 'recommended' is always well-formed with "
              "moderate lattices;\n'unordered' goes ill-formed exactly on "
              "specs with order-only errors; the\nprefix tree is always "
              "well-formed but barely beats Baseline (lattice too\nfine); "
              "the mined FA usually works (§2.2: \"usually a good starting "
              "point\").\n");
  Report.write();
  return 0;
}
