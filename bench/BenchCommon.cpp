//===- bench/BenchCommon.cpp - Shared evaluation harness -------------------===//
//
// Part of the Cable reproduction of "Debugging Temporal Specifications with
// Concept Analysis" (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "fa/Regex.h"
#include "support/StringUtil.h"

#include <cassert>
#include <cstdio>

using namespace cable;
using namespace cable::bench;

TablePrinter::TablePrinter(
    std::vector<std::pair<std::string, size_t>> Columns)
    : Columns(std::move(Columns)) {}

void TablePrinter::addRow(std::vector<std::string> Cells) {
  assert(Cells.size() == Columns.size() && "cell count mismatch");
  Rows.push_back(std::move(Cells));
}

void TablePrinter::print() const {
  std::string Header, Rule;
  for (const auto &[Name, Width] : Columns) {
    Header += padString(Name, Width) + "  ";
    Rule += std::string(Width, '-') + "  ";
  }
  std::printf("%s\n%s\n", Header.c_str(), Rule.c_str());
  for (const auto &Row : Rows) {
    std::string Line;
    for (size_t I = 0; I < Row.size(); ++I)
      Line += padString(Row[I], Columns[I].second) + "  ";
    std::printf("%s\n", Line.c_str());
  }
}

std::string cable::bench::cell(size_t N) { return std::to_string(N); }

std::string cable::bench::cell1(double D) {
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), "%.1f", D);
  return Buf;
}

SpecEvaluation cable::bench::evaluateProtocol(const ProtocolModel &Model) {
  SpecEvaluation Out;
  Out.Model = Model;

  // Deterministic seed from the protocol name.
  uint64_t Seed = 0xcbf29ce484222325ULL;
  for (char C : Model.Name) {
    Seed ^= static_cast<unsigned char>(C);
    Seed *= 0x100000001b3ULL;
  }
  RNG Rand(Seed);

  EventTable Table;
  WorkloadGenerator Gen(Model, Table);
  Out.Runs = Gen.generateRuns(Rand);

  ExtractorOptions Extract;
  Extract.SeedNames = Model.Seeds;
  Extract.TransitiveValues = true;
  TraceSet Scenarios = extractScenarios(Out.Runs, Extract);

  Automaton Ref =
      makeProtocolReferenceFA(Scenarios.traces(), Scenarios.table(), Model);
  Out.S = std::make_unique<Session>(std::move(Scenarios), std::move(Ref));

  Oracle Truth(Model, Out.S->table());
  Out.Target = Truth.referenceLabeling(*Out.S);
  Out.CorrectFA = Truth.correctFA();
  return Out;
}

std::vector<SpecEvaluation> cable::bench::evaluateAllProtocols() {
  std::vector<SpecEvaluation> Out;
  for (const ProtocolModel &Model : allProtocols())
    Out.push_back(evaluateProtocol(Model));
  return Out;
}
