//===- bench/BenchCommon.cpp - Shared evaluation harness -------------------===//
//
// Part of the Cable reproduction of "Debugging Temporal Specifications with
// Concept Analysis" (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "fa/Regex.h"
#include "support/AtomicFile.h"
#include "support/BuildInfo.h"
#include "support/Json.h"
#include "support/Metrics.h"
#include "support/StringUtil.h"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <cstdlib>
#include <optional>

using namespace cable;
using namespace cable::bench;

namespace {

BenchReport *CurrentReport = nullptr;

/// Nearest-rank percentile over a sorted copy of the samples.
double percentile(std::vector<double> Samples, double P) {
  if (Samples.empty())
    return 0;
  std::sort(Samples.begin(), Samples.end());
  size_t Rank = static_cast<size_t>(P * (Samples.size() - 1) + 0.5);
  return Samples[std::min(Rank, Samples.size() - 1)];
}

} // namespace

BenchReport::BenchReport(std::string Name)
    : Name(std::move(Name)), Start(std::chrono::steady_clock::now()) {
  // Arm metrics so the snapshot section is populated; bench binaries are
  // measuring the armed path anyway (the disarmed path has its own
  // dedicated guard in instrument_overhead).
  Metrics::setEnabled(true);
  CurrentReport = this;
}

BenchReport::~BenchReport() {
  if (CurrentReport == this)
    CurrentReport = nullptr;
}

bool BenchReport::quick() {
  const char *Env = std::getenv("CABLE_BENCH_QUICK");
  return Env && *Env && std::string(Env) != "0";
}

BenchReport *BenchReport::current() { return CurrentReport; }

void BenchReport::sample(const std::string &Section, double Ms) {
  for (auto &[Existing, Samples] : Sections) {
    if (Existing == Section) {
      Samples.push_back(Ms);
      return;
    }
  }
  Sections.push_back({Section, {Ms}});
}

void BenchReport::counter(const std::string &Name, double Value) {
  for (auto &[Existing, V] : Counters) {
    if (Existing == Name) {
      V = Value;
      return;
    }
  }
  Counters.push_back({Name, Value});
}

double BenchReport::timeSample(const std::string &Section,
                               const std::function<void()> &Fn) {
  auto Start = std::chrono::steady_clock::now();
  Fn();
  double Ms = std::chrono::duration<double, std::milli>(
                  std::chrono::steady_clock::now() - Start)
                  .count();
  sample(Section, Ms);
  return Ms;
}

std::string BenchReport::renderJson() const {
  JsonWriter W;
  W.beginObject();
  W.member("schema", "cable-bench/1");
  W.member("name", Name);
  W.member("version", buildinfo::kVersion);
  W.member("git_sha", buildinfo::kGitSha);
  W.member("build_type", buildinfo::kBuildType);
  W.member("sanitize", buildinfo::kSanitize);
  W.member("instrumented", buildinfo::kInstrumented);
  W.member("quick", quick());
  auto All = Sections;
  All.push_back({"total",
                 {std::chrono::duration<double, std::milli>(
                      std::chrono::steady_clock::now() - Start)
                      .count()}});
  W.key("sections");
  W.beginArray();
  for (const auto &[Section, Samples] : All) {
    W.beginObject();
    W.member("name", Section);
    W.key("samples_ms");
    W.beginArray();
    for (double Ms : Samples)
      W.value(Ms);
    W.endArray();
    W.member("median_ms", percentile(Samples, 0.5));
    W.member("p90_ms", percentile(Samples, 0.9));
    W.endObject();
  }
  W.endArray();
  W.key("counters");
  W.beginObject();
  for (const auto &[CounterName, Value] : Counters)
    W.member(CounterName, Value);
  W.endObject();
  W.key("metrics");
  W.rawValue(Metrics::snapshotJson());
  W.endObject();
  return W.take();
}

bool BenchReport::write() const {
  std::string Dir = ".";
  if (const char *Env = std::getenv("CABLE_BENCH_OUT"); Env && *Env)
    Dir = Env;
  std::string Path = Dir + "/BENCH_" + Name + ".json";
  if (Status St = AtomicFile::write(Path, renderJson() + "\n"); !St.isOk()) {
    std::fprintf(stderr, "warning: cannot write %s: %s\n", Path.c_str(),
                 St.diagnostic().render().c_str());
    return false;
  }
  return true;
}

TablePrinter::TablePrinter(
    std::vector<std::pair<std::string, size_t>> Columns)
    : Columns(std::move(Columns)) {}

void TablePrinter::addRow(std::vector<std::string> Cells) {
  assert(Cells.size() == Columns.size() && "cell count mismatch");
  Rows.push_back(std::move(Cells));
}

void TablePrinter::print() const {
  std::string Header, Rule;
  for (const auto &[Name, Width] : Columns) {
    Header += padString(Name, Width) + "  ";
    Rule += std::string(Width, '-') + "  ";
  }
  std::printf("%s\n%s\n", Header.c_str(), Rule.c_str());
  for (const auto &Row : Rows) {
    std::string Line;
    for (size_t I = 0; I < Row.size(); ++I)
      Line += padString(Row[I], Columns[I].second) + "  ";
    std::printf("%s\n", Line.c_str());
  }
}

std::string cable::bench::cell(size_t N) { return std::to_string(N); }

std::string cable::bench::cell1(double D) {
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), "%.1f", D);
  return Buf;
}

SpecEvaluation cable::bench::evaluateProtocol(const ProtocolModel &Model) {
  // Contribute one pipeline-front-half sample per protocol to the live
  // bench report, so every table/figure binary gets a real timing
  // distribution (17 protocols -> 17 samples) for free.
  std::optional<BenchTimer> Timer;
  if (BenchReport *Report = BenchReport::current())
    Timer.emplace(*Report, "evaluate-protocol");
  SpecEvaluation Out;
  Out.Model = Model;

  // Deterministic seed from the protocol name.
  uint64_t Seed = 0xcbf29ce484222325ULL;
  for (char C : Model.Name) {
    Seed ^= static_cast<unsigned char>(C);
    Seed *= 0x100000001b3ULL;
  }
  RNG Rand(Seed);

  EventTable Table;
  WorkloadGenerator Gen(Model, Table);
  Out.Runs = Gen.generateRuns(Rand);

  ExtractorOptions Extract;
  Extract.SeedNames = Model.Seeds;
  Extract.TransitiveValues = true;
  TraceSet Scenarios = extractScenarios(Out.Runs, Extract);

  Automaton Ref =
      makeProtocolReferenceFA(Scenarios.traces(), Scenarios.table(), Model);
  Out.S = std::make_unique<Session>(std::move(Scenarios), std::move(Ref));

  Oracle Truth(Model, Out.S->table());
  Out.Target = Truth.referenceLabeling(*Out.S);
  Out.CorrectFA = Truth.correctFA();
  return Out;
}

std::vector<SpecEvaluation> cable::bench::evaluateAllProtocols() {
  std::vector<SpecEvaluation> Out;
  for (const ProtocolModel &Model : allProtocols())
    Out.push_back(evaluateProtocol(Model));
  return Out;
}
