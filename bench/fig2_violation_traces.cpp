//===- bench/fig2_violation_traces.cpp - Reproduces Fig. 2 -----------------===//
//
// Part of the Cable reproduction of "Debugging Temporal Specifications with
// Concept Analysis" (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//
//
// Figure 2: example violation traces produced by testing the buggy Fig. 1
// specification against a program. The verifier substrate slices the
// synthetic stdio runs into scenarios and reports the ones the buggy FA
// rejects. The three §2.1 families must all appear: correct popen/pclose
// scenarios (spec bugs), leaked pointers, and fopen closed with pclose.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "fa/Regex.h"
#include "support/RNG.h"
#include "verifier/Verifier.h"
#include "workload/Generator.h"
#include "workload/Oracle.h"

#include <cstdio>

using namespace cable;

int main() {
  cable::bench::BenchReport Report("fig2_violation_traces");
  ProtocolModel Model = stdioProtocol();
  EventTable Table;
  WorkloadGenerator Gen(Model, Table);
  RNG Rand(0xF162);
  TraceSet Runs = Gen.generateRuns(Rand);

  Automaton Buggy = compileRegexOrDie(stdioBuggyRegex(), Runs.table());
  ExtractorOptions Extract;
  Extract.SeedNames = Model.Seeds;
  VerificationResult R = verifyAgainstRuns(Runs, Buggy, Extract);

  std::printf("Figure 2: violation traces from testing the buggy stdio "
              "specification\n\n");
  std::printf("scenarios examined: %zu; violations: %zu; accepted: %zu\n\n",
              R.NumScenarios, R.Violations.size(), R.Accepted.size());

  Oracle Truth(Model, R.Violations.table());
  size_t SpecBugs = 0, ProgramBugs = 0;
  std::printf("violation traces (as the tool lists them, in no particular "
              "order):\n");
  for (size_t I = 0; I < R.Violations.size(); ++I) {
    const Trace &T = R.Violations[I];
    bool Correct = Truth.isCorrect(T, R.Violations.table());
    (Correct ? SpecBugs : ProgramBugs) += 1;
    if (I < 24)
      std::printf("  %-52s  <- %s\n",
                  T.render(R.Violations.table()).c_str(),
                  Correct ? "specification bug (trace is correct)"
                          : "program error");
  }
  if (R.Violations.size() > 24)
    std::printf("  ... %zu more\n", R.Violations.size() - 24);

  std::printf("\nof %zu violations: %zu expose the specification bug, %zu "
              "are real program errors\n",
              R.Violations.size(), SpecBugs, ProgramBugs);
  Report.write();
  return 0;
}
