//===- bench/table1_specifications.cpp - Reproduces Table 1 ----------------===//
//
// Part of the Cable reproduction of "Debugging Temporal Specifications with
// Concept Analysis" (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//
//
// Table 1: the seventeen debugged specifications, with the number of
// states and transitions of each specification's FA after debugging, and
// the specification in English. The pipeline per row: mine scenarios from
// synthetic runs, debug them in a Cable session (ExpertSim labeling), then
// re-learn from the good traces and minimize over the scenario alphabet.
// A final column checks the debugged FA against the protocol's correct
// language on the observed corpus.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "fa/Dfa.h"
#include "learner/SkStrings.h"

#include <cstdio>

using namespace cable;
using namespace cable::bench;

int main() {
  cable::bench::BenchReport Report("table1_specifications");
  std::printf("Table 1: debugged specifications "
              "(states/transitions of the FA after debugging)\n\n");

  TablePrinter T({{"Specification", 14},
                  {"States", 6},
                  {"Trans", 5},
                  {"MaxScen", 7},
                  {"Corpus-exact", 12},
                  {"Note", 5},
                  {"English", 62}});

  for (SpecEvaluation &E : evaluateAllProtocols()) {
    Session &S = *E.S;

    // Debug: label every trace with the expert strategy.
    ExpertSimStrategy Expert;
    StrategyCost Cost = Expert.run(S, E.Target);
    if (!Cost.Finished) {
      T.addRow(
          {E.Model.Name, "-", "-", "-", "-", "", "labeling did not finish"});
      continue;
    }

    // Fix: re-learn from the traces labeled good (Step 3 of §2.2).
    LabelId Good = S.internLabel("good");
    std::vector<Trace> GoodTraces;
    for (size_t Obj = 0; Obj < S.numObjects(); ++Obj)
      if (*S.labelOf(Obj) == Good)
        GoodTraces.push_back(S.object(Obj));
    SkStringsOptions Learn;
    Learn.S = 1.0;
    Automaton Debugged = learnSkStringsFA(GoodTraces, S.table(), Learn);

    // Report the canonical (minimal trimmed DFA) size over the scenario
    // alphabet, as the paper's state/transition counts do.
    std::vector<EventId> Alphabet = collectAlphabet(GoodTraces);
    Dfa Min = Dfa::determinize(Debugged, Alphabet, S.table()).minimized();
    Automaton Canonical = Min.toAutomaton(S.table());

    // Sanity: on the observed corpus the debugged spec accepts exactly
    // the good traces.
    bool CorpusExact = true;
    for (size_t Obj = 0; Obj < S.numObjects(); ++Obj) {
      bool IsGood = *S.labelOf(Obj) == Good;
      if (Debugged.accepts(S.object(Obj), S.table()) != IsGood)
        CorpusExact = false;
    }

    // §5.1: these specifications are loop-free with short scenarios.
    std::optional<size_t> MaxScenario = Canonical.longestAcceptedLength();
    T.addRow({E.Model.Name, cell(Canonical.numStates()),
              cell(Canonical.numTransitions()),
              MaxScenario ? cell(*MaxScenario) : std::string("loop"),
              CorpusExact ? "yes" : "NO",
              E.Model.Reconstructed ? "(rec)" : "", E.Model.Description});
  }

  T.print();
  std::printf(
      "\n(rec) = row reconstructed; the paper names only 14 of the 17\n"
      "specifications in its text (see DESIGN.md section 6).\n"
      "Counts are minimal trimmed DFAs over each corpus alphabet; the\n"
      "paper's specs are likewise small loop-free FAs with short "
      "scenarios.\n");
  Report.write();
  return 0;
}
