//===- bench/scaling_lattice.cpp - §5.2 / §3.1.1 scaling claims ------------===//
//
// Part of the Cable reproduction of "Debugging Temporal Specifications with
// Concept Analysis" (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//
//
// The paper's efficiency claims:
//   §3.1.1 — Godin's algorithm runs in O(2^2k * |O|) for k an upper bound
//            on attributes per object (k < 10, |O| up to hundreds there);
//   §5.2   — lattice sizes grew roughly linearly with the number of FA
//            transitions, and times slightly worse than linearly.
//
// Benchmarks sweep |O| at fixed k (expect ~linear time) and k at fixed
// |O| (expect steep growth), and a trace-workload sweep over the number
// of reference-FA transitions. Concept counts are reported as counters.
//
//===----------------------------------------------------------------------===//

#include "concepts/GodinBuilder.h"
#include "concepts/LindigBuilder.h"
#include "concepts/NextClosureBuilder.h"
#include "concepts/ParallelBuilder.h"
#include "fa/Templates.h"
#include "support/RNG.h"
#include "cable/Session.h"
#include "workload/Generator.h"
#include "workload/ReferenceFA.h"

#include "BenchCommon.h"

#include <benchmark/benchmark.h>

#include <chrono>

using namespace cable;

namespace {

/// Random context with exactly K attributes per object, drawn from a pool
/// whose size scales with K (mirrors FA transitions per trace).
Context randomContext(size_t NumObjects, size_t K, size_t PoolSize,
                      uint64_t Seed) {
  RNG Rand(Seed);
  Context Ctx(NumObjects, PoolSize);
  for (size_t O = 0; O < NumObjects; ++O) {
    for (size_t J = 0; J < K; ++J)
      Ctx.relate(O, Rand.nextIndex(PoolSize));
  }
  return Ctx;
}

void BM_GodinVsObjects(benchmark::State &State) {
  size_t NumObjects = static_cast<size_t>(State.range(0));
  Context Ctx = randomContext(NumObjects, /*K=*/6, /*PoolSize=*/24, 42);
  size_t Concepts = 0;
  for (auto _ : State) {
    ConceptLattice L = GodinBuilder::buildLattice(Ctx);
    Concepts = L.size();
    benchmark::DoNotOptimize(L);
  }
  State.counters["concepts"] = static_cast<double>(Concepts);
  State.counters["objects"] = static_cast<double>(NumObjects);
}

void BM_LindigVsObjects(benchmark::State &State) {
  size_t NumObjects = static_cast<size_t>(State.range(0));
  Context Ctx = randomContext(NumObjects, /*K=*/6, /*PoolSize=*/24, 42);
  size_t Concepts = 0;
  for (auto _ : State) {
    ConceptLattice L = LindigBuilder::buildLattice(Ctx);
    Concepts = L.size();
    benchmark::DoNotOptimize(L);
  }
  State.counters["concepts"] = static_cast<double>(Concepts);
  State.counters["objects"] = static_cast<double>(NumObjects);
}

void BM_GodinVsK(benchmark::State &State) {
  size_t K = static_cast<size_t>(State.range(0));
  Context Ctx = randomContext(/*NumObjects=*/128, K, /*PoolSize=*/4 * K, 43);
  size_t Concepts = 0;
  for (auto _ : State) {
    ConceptLattice L = GodinBuilder::buildLattice(Ctx);
    Concepts = L.size();
    benchmark::DoNotOptimize(L);
  }
  State.counters["concepts"] = static_cast<double>(Concepts);
  State.counters["k"] = static_cast<double>(K);
}

/// §5.2's x-axis: the number of reference-FA transitions, varied by
/// growing the XtFree-style alphabet; lattice size should track it
/// roughly linearly.
void BM_LatticeVsTransitions(benchmark::State &State) {
  size_t NumUses = static_cast<size_t>(State.range(0));
  ProtocolModel M = protocolByName("XtFree");
  // Regenerate the optional-use pool at the requested width.
  std::vector<ProtoEvent> Uses;
  for (size_t I = 0; I < NumUses; ++I)
    Uses.push_back(ProtoEvent{"Use" + std::to_string(I), {0}});
  M.Shapes[0].second.Steps[1] = ShapeStep::optional(Uses, 0.5);

  EventTable Table;
  WorkloadGenerator Gen(M, Table);
  RNG Rand(44);
  TraceSet Scenarios = Gen.generateScenarios(Rand, 200);
  TraceSet Unique = Scenarios.dedup();
  Automaton Ref =
      makeUnorderedFA(templateAlphabet(Unique.traces()), Unique.table());

  Context Ctx(Unique.size(), Ref.numTransitions());
  for (size_t Obj = 0; Obj < Unique.size(); ++Obj)
    for (size_t A : Ref.executedTransitions(Unique[Obj], Unique.table()))
      Ctx.relate(Obj, A);

  size_t Concepts = 0;
  for (auto _ : State) {
    ConceptLattice L = GodinBuilder::buildLattice(Ctx);
    Concepts = L.size();
    benchmark::DoNotOptimize(L);
  }
  State.counters["fa_transitions"] = static_cast<double>(Ref.numTransitions());
  State.counters["concepts"] = static_cast<double>(Concepts);
  State.counters["unique_traces"] = static_cast<double>(Unique.size());
}

/// End-to-end session construction (R computation + Godin + covers) on
/// the largest evaluation workload.
void BM_SessionBuild(benchmark::State &State) {
  ProtocolModel M = protocolByName("XtFree");
  EventTable Table;
  WorkloadGenerator Gen(M, Table);
  RNG Rand(46);
  TraceSet Scenarios =
      Gen.generateScenarios(Rand, static_cast<size_t>(State.range(0)));
  Automaton Ref =
      makeProtocolReferenceFA(Scenarios.traces(), Scenarios.table(), M);
  size_t Concepts = 0;
  for (auto _ : State) {
    Session S(Scenarios, Ref);
    Concepts = S.lattice().size();
    benchmark::DoNotOptimize(S);
  }
  State.counters["concepts"] = static_cast<double>(Concepts);
  State.counters["scenarios"] =
      static_cast<double>(State.range(0));
}

/// Serial NextClosure baseline on the largest context of the sweep — the
/// denominator for BM_ParallelVsThreads' speedup counter.
void BM_NextClosureSerial(benchmark::State &State) {
  Context Ctx = randomContext(/*NumObjects=*/512, /*K=*/6, /*PoolSize=*/24, 42);
  size_t Concepts = 0;
  for (auto _ : State) {
    ConceptLattice L = NextClosureBuilder::buildLattice(Ctx);
    Concepts = L.size();
    benchmark::DoNotOptimize(L);
  }
  State.counters["concepts"] = static_cast<double>(Concepts);
  State.counters["lattices_per_s"] =
      benchmark::Counter(static_cast<double>(State.iterations()),
                         benchmark::Counter::kIsRate);
}

/// The parallel builder at 1/2/4/8 workers on the same context. The
/// speedup counter is measured against a serial NextClosure run timed
/// inside this process, so the report is self-contained; identical==1
/// confirms the bit-for-bit contract held on this machine.
void BM_ParallelVsThreads(benchmark::State &State) {
  unsigned NumThreads = static_cast<unsigned>(State.range(0));
  Context Ctx = randomContext(/*NumObjects=*/512, /*K=*/6, /*PoolSize=*/24, 42);

  // One-shot serial baseline (outside the timed loop).
  auto SerialStart = std::chrono::steady_clock::now();
  ConceptLattice Serial = NextClosureBuilder::buildLattice(Ctx);
  double SerialSecs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    SerialStart)
          .count();

  ThreadPool Pool(NumThreads);
  size_t Concepts = 0;
  auto ParallelStart = std::chrono::steady_clock::now();
  for (auto _ : State) {
    ConceptLattice L = ParallelBuilder::buildLattice(Ctx, Pool);
    Concepts = L.size();
    benchmark::DoNotOptimize(L);
  }
  double ParallelSecs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    ParallelStart)
          .count() /
      static_cast<double>(State.iterations());

  ConceptLattice P = ParallelBuilder::buildLattice(Ctx, Pool);
  bool Identical = P.size() == Serial.size() && P.top() == Serial.top() &&
                   P.bottom() == Serial.bottom() &&
                   P.numEdges() == Serial.numEdges();
  for (ConceptLattice::NodeId Id = 0; Identical && Id < P.size(); ++Id)
    Identical = P.node(Id).Extent == Serial.node(Id).Extent &&
                P.node(Id).Intent == Serial.node(Id).Intent &&
                P.parents(Id) == Serial.parents(Id) &&
                P.children(Id) == Serial.children(Id);

  State.counters["threads"] = static_cast<double>(Pool.numThreads());
  State.counters["concepts"] = static_cast<double>(Concepts);
  State.counters["lattices_per_s"] =
      benchmark::Counter(static_cast<double>(State.iterations()),
                         benchmark::Counter::kIsRate);
  State.counters["speedup_vs_serial"] =
      ParallelSecs > 0 ? SerialSecs / ParallelSecs : 0;
  State.counters["identical"] = Identical ? 1 : 0;
}

void BM_ExecutedTransitions(benchmark::State &State) {
  ProtocolModel M = protocolByName("XtFree");
  EventTable Table;
  WorkloadGenerator Gen(M, Table);
  RNG Rand(45);
  TraceSet Scenarios = Gen.generateScenarios(Rand, 64);
  Automaton Ref =
      makeUnorderedFA(templateAlphabet(Scenarios.traces()), Scenarios.table());
  size_t I = 0;
  for (auto _ : State) {
    BitVector Row = Ref.executedTransitions(
        Scenarios[I++ % Scenarios.size()], Scenarios.table());
    benchmark::DoNotOptimize(Row);
  }
}

} // namespace

BENCHMARK(BM_GodinVsObjects)
    ->Arg(32)
    ->Arg(64)
    ->Arg(128)
    ->Arg(256)
    ->Arg(512)
    ->Unit(benchmark::kMillisecond)
    ->MinTime(0.05);
BENCHMARK(BM_LindigVsObjects)
    ->Arg(32)
    ->Arg(64)
    ->Arg(128)
    ->Unit(benchmark::kMillisecond)
    ->MinTime(0.05);
BENCHMARK(BM_GodinVsK)
    ->DenseRange(2, 9, 1)
    ->Unit(benchmark::kMillisecond)
    ->MinTime(0.05);
BENCHMARK(BM_LatticeVsTransitions)
    ->Arg(2)
    ->Arg(4)
    ->Arg(6)
    ->Arg(8)
    ->Arg(10)
    ->Unit(benchmark::kMillisecond)
    ->MinTime(0.05);
BENCHMARK(BM_SessionBuild)
    ->Arg(64)
    ->Arg(128)
    ->Arg(256)
    ->Unit(benchmark::kMillisecond)
    ->MinTime(0.05);
BENCHMARK(BM_NextClosureSerial)->Unit(benchmark::kMillisecond)->MinTime(0.05);
BENCHMARK(BM_ParallelVsThreads)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->MinTime(0.05);
BENCHMARK(BM_ExecutedTransitions)->MinTime(0.05);

// Custom main instead of BENCHMARK_MAIN(): always emit the BENCH JSON
// (fixed Godin / parallel-builder probes on the 512-object sweep
// context), and run the full google-benchmark sweeps only outside quick
// mode. This binary is also the subject of the disarmed-instrumentation
// overhead guard (tests/bench/overhead_guard.sh), which compares its
// probe medians across a CABLE_NO_INSTRUMENT build.
int main(int Argc, char **Argv) {
  cable::bench::BenchReport Report("scaling_lattice");
  {
    Context Ctx = randomContext(/*NumObjects=*/512, /*K=*/6, /*PoolSize=*/24,
                                42);
    int Samples = cable::bench::BenchReport::quick() ? 3 : 11;
    size_t Concepts = 0;
    for (int I = 0; I < Samples; ++I) {
      Report.timeSample("godin-512", [&] {
        ConceptLattice L = GodinBuilder::buildLattice(Ctx);
        Concepts = L.size();
        benchmark::DoNotOptimize(L);
      });
      Report.timeSample("next-closure-512", [&] {
        ConceptLattice L = NextClosureBuilder::buildLattice(Ctx);
        benchmark::DoNotOptimize(L);
      });
      Report.timeSample("parallel4-512", [&] {
        ConceptLattice L = ParallelBuilder::buildLattice(Ctx, 4u);
        benchmark::DoNotOptimize(L);
      });
    }
    Report.counter("concepts", static_cast<double>(Concepts));
  }
  if (!cable::bench::BenchReport::quick()) {
    benchmark::Initialize(&Argc, Argv);
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
  }
  Report.write();
  return 0;
}
