//===- bench/scaling_lattice.cpp - §5.2 / §3.1.1 scaling claims ------------===//
//
// Part of the Cable reproduction of "Debugging Temporal Specifications with
// Concept Analysis" (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//
//
// The paper's efficiency claims:
//   §3.1.1 — Godin's algorithm runs in O(2^2k * |O|) for k an upper bound
//            on attributes per object (k < 10, |O| up to hundreds there);
//   §5.2   — lattice sizes grew roughly linearly with the number of FA
//            transitions, and times slightly worse than linearly.
//
// Benchmarks sweep |O| at fixed k (expect ~linear time) and k at fixed
// |O| (expect steep growth), and a trace-workload sweep over the number
// of reference-FA transitions. Concept counts are reported as counters.
//
//===----------------------------------------------------------------------===//

#include "concepts/GodinBuilder.h"
#include "concepts/LindigBuilder.h"
#include "concepts/NextClosureBuilder.h"
#include "concepts/ParallelBuilder.h"
#include "concepts/ShardedBuilder.h"
#include "fa/Templates.h"
#include "support/RNG.h"
#include "cable/Session.h"
#include "workload/Generator.h"
#include "workload/ReferenceFA.h"

#include "support/simd/Kernels.h"

#include "BenchCommon.h"

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <string>
#include <vector>

using namespace cable;

namespace {

/// Random context with exactly K attributes per object, drawn from a pool
/// whose size scales with K (mirrors FA transitions per trace).
Context randomContext(size_t NumObjects, size_t K, size_t PoolSize,
                      uint64_t Seed) {
  RNG Rand(Seed);
  Context Ctx(NumObjects, PoolSize);
  for (size_t O = 0; O < NumObjects; ++O) {
    for (size_t J = 0; J < K; ++J)
      Ctx.relate(O, Rand.nextIndex(PoolSize));
  }
  return Ctx;
}

void BM_GodinVsObjects(benchmark::State &State) {
  size_t NumObjects = static_cast<size_t>(State.range(0));
  Context Ctx = randomContext(NumObjects, /*K=*/6, /*PoolSize=*/24, 42);
  size_t Concepts = 0;
  for (auto _ : State) {
    ConceptLattice L = GodinBuilder::buildLattice(Ctx);
    Concepts = L.size();
    benchmark::DoNotOptimize(L);
  }
  State.counters["concepts"] = static_cast<double>(Concepts);
  State.counters["objects"] = static_cast<double>(NumObjects);
}

void BM_LindigVsObjects(benchmark::State &State) {
  size_t NumObjects = static_cast<size_t>(State.range(0));
  Context Ctx = randomContext(NumObjects, /*K=*/6, /*PoolSize=*/24, 42);
  size_t Concepts = 0;
  for (auto _ : State) {
    ConceptLattice L = LindigBuilder::buildLattice(Ctx);
    Concepts = L.size();
    benchmark::DoNotOptimize(L);
  }
  State.counters["concepts"] = static_cast<double>(Concepts);
  State.counters["objects"] = static_cast<double>(NumObjects);
}

void BM_GodinVsK(benchmark::State &State) {
  size_t K = static_cast<size_t>(State.range(0));
  Context Ctx = randomContext(/*NumObjects=*/128, K, /*PoolSize=*/4 * K, 43);
  size_t Concepts = 0;
  for (auto _ : State) {
    ConceptLattice L = GodinBuilder::buildLattice(Ctx);
    Concepts = L.size();
    benchmark::DoNotOptimize(L);
  }
  State.counters["concepts"] = static_cast<double>(Concepts);
  State.counters["k"] = static_cast<double>(K);
}

/// §5.2's x-axis: the number of reference-FA transitions, varied by
/// growing the XtFree-style alphabet; lattice size should track it
/// roughly linearly.
void BM_LatticeVsTransitions(benchmark::State &State) {
  size_t NumUses = static_cast<size_t>(State.range(0));
  ProtocolModel M = protocolByName("XtFree");
  // Regenerate the optional-use pool at the requested width.
  std::vector<ProtoEvent> Uses;
  for (size_t I = 0; I < NumUses; ++I)
    Uses.push_back(ProtoEvent{"Use" + std::to_string(I), {0}});
  M.Shapes[0].second.Steps[1] = ShapeStep::optional(Uses, 0.5);

  EventTable Table;
  WorkloadGenerator Gen(M, Table);
  RNG Rand(44);
  TraceSet Scenarios = Gen.generateScenarios(Rand, 200);
  TraceSet Unique = Scenarios.dedup();
  Automaton Ref =
      makeUnorderedFA(templateAlphabet(Unique.traces()), Unique.table());

  Context Ctx(Unique.size(), Ref.numTransitions());
  for (size_t Obj = 0; Obj < Unique.size(); ++Obj)
    for (size_t A : Ref.executedTransitions(Unique[Obj], Unique.table()))
      Ctx.relate(Obj, A);

  size_t Concepts = 0;
  for (auto _ : State) {
    ConceptLattice L = GodinBuilder::buildLattice(Ctx);
    Concepts = L.size();
    benchmark::DoNotOptimize(L);
  }
  State.counters["fa_transitions"] = static_cast<double>(Ref.numTransitions());
  State.counters["concepts"] = static_cast<double>(Concepts);
  State.counters["unique_traces"] = static_cast<double>(Unique.size());
}

/// End-to-end session construction (R computation + Godin + covers) on
/// the largest evaluation workload.
void BM_SessionBuild(benchmark::State &State) {
  ProtocolModel M = protocolByName("XtFree");
  EventTable Table;
  WorkloadGenerator Gen(M, Table);
  RNG Rand(46);
  TraceSet Scenarios =
      Gen.generateScenarios(Rand, static_cast<size_t>(State.range(0)));
  Automaton Ref =
      makeProtocolReferenceFA(Scenarios.traces(), Scenarios.table(), M);
  size_t Concepts = 0;
  for (auto _ : State) {
    Session S(Scenarios, Ref);
    Concepts = S.lattice().size();
    benchmark::DoNotOptimize(S);
  }
  State.counters["concepts"] = static_cast<double>(Concepts);
  State.counters["scenarios"] =
      static_cast<double>(State.range(0));
}

/// Serial NextClosure baseline on the largest context of the sweep — the
/// denominator for BM_ParallelVsThreads' speedup counter.
void BM_NextClosureSerial(benchmark::State &State) {
  Context Ctx = randomContext(/*NumObjects=*/512, /*K=*/6, /*PoolSize=*/24, 42);
  size_t Concepts = 0;
  for (auto _ : State) {
    ConceptLattice L = NextClosureBuilder::buildLattice(Ctx);
    Concepts = L.size();
    benchmark::DoNotOptimize(L);
  }
  State.counters["concepts"] = static_cast<double>(Concepts);
  State.counters["lattices_per_s"] =
      benchmark::Counter(static_cast<double>(State.iterations()),
                         benchmark::Counter::kIsRate);
}

/// The parallel builder at 1/2/4/8 workers on the same context. The
/// speedup counter is measured against a serial NextClosure run timed
/// inside this process, so the report is self-contained; identical==1
/// confirms the bit-for-bit contract held on this machine.
void BM_ParallelVsThreads(benchmark::State &State) {
  unsigned NumThreads = static_cast<unsigned>(State.range(0));
  Context Ctx = randomContext(/*NumObjects=*/512, /*K=*/6, /*PoolSize=*/24, 42);

  // One-shot serial baseline (outside the timed loop).
  auto SerialStart = std::chrono::steady_clock::now();
  ConceptLattice Serial = NextClosureBuilder::buildLattice(Ctx);
  double SerialSecs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    SerialStart)
          .count();

  ThreadPool Pool(NumThreads);
  size_t Concepts = 0;
  auto ParallelStart = std::chrono::steady_clock::now();
  for (auto _ : State) {
    ConceptLattice L = ParallelBuilder::buildLattice(Ctx, Pool);
    Concepts = L.size();
    benchmark::DoNotOptimize(L);
  }
  double ParallelSecs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    ParallelStart)
          .count() /
      static_cast<double>(State.iterations());

  ConceptLattice P = ParallelBuilder::buildLattice(Ctx, Pool);
  bool Identical = P.size() == Serial.size() && P.top() == Serial.top() &&
                   P.bottom() == Serial.bottom() &&
                   P.numEdges() == Serial.numEdges();
  for (ConceptLattice::NodeId Id = 0; Identical && Id < P.size(); ++Id)
    Identical = P.node(Id).Extent == Serial.node(Id).Extent &&
                P.node(Id).Intent == Serial.node(Id).Intent &&
                P.parents(Id) == Serial.parents(Id) &&
                P.children(Id) == Serial.children(Id);

  State.counters["threads"] = static_cast<double>(Pool.numThreads());
  State.counters["concepts"] = static_cast<double>(Concepts);
  State.counters["lattices_per_s"] =
      benchmark::Counter(static_cast<double>(State.iterations()),
                         benchmark::Counter::kIsRate);
  State.counters["speedup_vs_serial"] =
      ParallelSecs > 0 ? SerialSecs / ParallelSecs : 0;
  State.counters["identical"] = Identical ? 1 : 0;
}

/// Bit-for-bit lattice equality (the sharded/parallel determinism
/// contract, as a bench counter rather than an EXPECT).
bool latticesIdentical(const ConceptLattice &A, const ConceptLattice &B) {
  bool Same = A.size() == B.size() && A.top() == B.top() &&
              A.bottom() == B.bottom() && A.numEdges() == B.numEdges();
  for (ConceptLattice::NodeId Id = 0; Same && Id < A.size(); ++Id)
    Same = A.node(Id).Extent == B.node(Id).Extent &&
           A.node(Id).Intent == B.node(Id).Intent &&
           A.parents(Id) == B.parents(Id) && A.children(Id) == B.children(Id);
  return Same;
}

/// The multi-process builder at 1/2/4/8 worker processes on the sweep
/// context: what crash isolation costs over the in-process parallel path
/// (fork + wire serialization + supervised merge).
void BM_ShardedVsWorkers(benchmark::State &State) {
  unsigned NumWorkers = static_cast<unsigned>(State.range(0));
  Context Ctx = randomContext(/*NumObjects=*/512, /*K=*/6, /*PoolSize=*/24, 42);

  auto SerialStart = std::chrono::steady_clock::now();
  ConceptLattice Serial = NextClosureBuilder::buildLattice(Ctx);
  double SerialSecs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    SerialStart)
          .count();

  ShardOptions Opts;
  Opts.NumWorkers = NumWorkers;
  Opts.NumThreads = 4;
  size_t Concepts = 0;
  auto ShardedStart = std::chrono::steady_clock::now();
  for (auto _ : State) {
    ConceptLattice L = ShardedBuilder::buildLattice(Ctx, Opts);
    Concepts = L.size();
    benchmark::DoNotOptimize(L);
  }
  double ShardedSecs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    ShardedStart)
          .count() /
      static_cast<double>(State.iterations());

  bool Identical =
      latticesIdentical(Serial, ShardedBuilder::buildLattice(Ctx, Opts));

  State.counters["workers"] = static_cast<double>(NumWorkers);
  State.counters["concepts"] = static_cast<double>(Concepts);
  State.counters["lattices_per_s"] =
      benchmark::Counter(static_cast<double>(State.iterations()),
                         benchmark::Counter::kIsRate);
  State.counters["speedup_vs_serial"] =
      ShardedSecs > 0 ? SerialSecs / ShardedSecs : 0;
  State.counters["identical"] = Identical ? 1 : 0;
}

void BM_ExecutedTransitions(benchmark::State &State) {
  ProtocolModel M = protocolByName("XtFree");
  EventTable Table;
  WorkloadGenerator Gen(M, Table);
  RNG Rand(45);
  TraceSet Scenarios = Gen.generateScenarios(Rand, 64);
  Automaton Ref =
      makeUnorderedFA(templateAlphabet(Scenarios.traces()), Scenarios.table());
  size_t I = 0;
  for (auto _ : State) {
    BitVector Row = Ref.executedTransitions(
        Scenarios[I++ % Scenarios.size()], Scenarios.table());
    benchmark::DoNotOptimize(Row);
  }
}

//===----------------------------------------------------------------------===//
// Kernel & closure throughput probes (always emitted into the BENCH JSON;
// tests/bench/kernel_guard.sh gates on these sections and counters).
//===----------------------------------------------------------------------===//

double median(std::vector<double> Xs) {
  if (Xs.empty())
    return 0;
  std::sort(Xs.begin(), Xs.end());
  return Xs[Xs.size() / 2];
}

/// Contranominal scale N: the 2^N worst case; N=24 is the issue's closure
/// throughput workload (closures over random subsets, never a full
/// enumeration).
Context contranominal(size_t N) {
  Context Ctx(N, N);
  for (size_t O = 0; O < N; ++O)
    for (size_t A = 0; A < N; ++A)
      if (O != A)
        Ctx.relate(O, A);
  return Ctx;
}

/// The §5.2 trace-workload context at the evaluation scale: XtFree-style
/// traces against an unordered reference FA (~200 objects, FA-transition
/// attributes) — the realistic shape behind the paper's figures.
Context xtFreeScaleContext() {
  ProtocolModel M = protocolByName("XtFree");
  std::vector<ProtoEvent> Uses;
  for (size_t I = 0; I < 10; ++I)
    Uses.push_back(ProtoEvent{"Use" + std::to_string(I), {0}});
  M.Shapes[0].second.Steps[1] = ShapeStep::optional(Uses, 0.5);
  EventTable Table;
  WorkloadGenerator Gen(M, Table);
  RNG Rand(44);
  TraceSet Unique = Gen.generateScenarios(Rand, 200).dedup();
  Automaton Ref =
      makeUnorderedFA(templateAlphabet(Unique.traces()), Unique.table());
  Context Ctx(Unique.size(), Ref.numTransitions());
  for (size_t Obj = 0; Obj < Unique.size(); ++Obj)
    for (size_t A : Ref.executedTransitions(Unique[Obj], Unique.table()))
      Ctx.relate(Obj, A);
  return Ctx;
}

/// Times closeIntent over a fixed battery of random attribute subsets on
/// the fused path and the legacy reference path, records both sections,
/// and returns median(reference) / median(fused) — the speedup the guard
/// and the acceptance criterion key on.
double closureThroughputProbe(cable::bench::BenchReport &Report,
                              const std::string &Tag, const Context &Ctx,
                              int Samples, int Closures) {
  RNG Rand(0x5EED + Ctx.numAttributes());
  std::vector<BitVector> Subsets;
  for (int I = 0; I < 64; ++I) {
    BitVector S(Ctx.numAttributes());
    for (size_t A = 0; A < Ctx.numAttributes(); ++A)
      if (Rand.nextBool(0.35))
        S.set(A);
    Subsets.push_back(std::move(S));
  }
  BitVector ObjScratch(Ctx.numObjects()), Out(Ctx.numAttributes());
  std::vector<double> FusedMs, RefMs;
  for (int S = 0; S < Samples; ++S) {
    FusedMs.push_back(Report.timeSample("closure-" + Tag, [&] {
      for (int I = 0; I < Closures; ++I) {
        Ctx.closeIntentInto(Subsets[I % Subsets.size()], ObjScratch, Out);
        benchmark::DoNotOptimize(Out);
      }
    }));
    RefMs.push_back(Report.timeSample("closure-" + Tag + "-ref", [&] {
      for (int I = 0; I < Closures; ++I) {
        BitVector C =
            Ctx.closeIntentReference(Subsets[I % Subsets.size()]);
        benchmark::DoNotOptimize(C);
      }
    }));
  }
  double FusedMed = median(FusedMs), RefMed = median(RefMs);
  Report.counter("closures_per_s_" + Tag,
                 FusedMed > 0 ? 1e3 * Closures / FusedMed : 0);
  double Speedup = FusedMed > 0 ? RefMed / FusedMed : 0;
  Report.counter("closure_speedup_" + Tag, Speedup);
  return Speedup;
}

/// Per-kernel throughput sections at one dispatch level, pinned with
/// ForcedLevelGuard: kernel-{and,subset,popcount,andmany}-<level>.
void kernelThroughputProbe(cable::bench::BenchReport &Report, simd::Level L,
                           int Samples, int Reps) {
  simd::ForcedLevelGuard Guard(L);
  const simd::KernelOps &O = simd::ops();
  std::string Suffix = std::string("-") + simd::levelName(L);
  constexpr size_t W = 64; // 4096-bit operands: the XtFree row scale.
  std::vector<uint64_t> A(W), B(W), Dst(W);
  RNG Rand(7);
  for (size_t I = 0; I < W; ++I) {
    A[I] = Rand.next();
    B[I] = Rand.next();
  }
  const uint64_t *Rows[8] = {A.data(), B.data(), A.data(), B.data(),
                             A.data(), B.data(), A.data(), B.data()};
  for (int S = 0; S < Samples; ++S) {
    Report.timeSample("kernel-and" + Suffix, [&] {
      Dst = A;
      for (int I = 0; I < Reps; ++I) {
        O.AndInto(Dst.data(), B.data(), W);
        benchmark::DoNotOptimize(Dst.data());
      }
    });
    Report.timeSample("kernel-subset" + Suffix, [&] {
      bool R = false;
      for (int I = 0; I < Reps; ++I)
        R ^= O.IsSubsetOf(A.data(), B.data(), W, ~uint64_t(0));
      benchmark::DoNotOptimize(R);
    });
    Report.timeSample("kernel-popcount" + Suffix, [&] {
      size_t N = 0;
      for (int I = 0; I < Reps; ++I)
        N += O.Popcount(A.data(), W, ~uint64_t(0));
      benchmark::DoNotOptimize(N);
    });
    Report.timeSample("kernel-andmany" + Suffix, [&] {
      Dst = A;
      for (int I = 0; I < Reps; ++I) {
        O.AndManyInto(Dst.data(), Rows, 8, W);
        benchmark::DoNotOptimize(Dst.data());
      }
    });
  }
}

} // namespace

BENCHMARK(BM_GodinVsObjects)
    ->Arg(32)
    ->Arg(64)
    ->Arg(128)
    ->Arg(256)
    ->Arg(512)
    ->Unit(benchmark::kMillisecond)
    ->MinTime(0.05);
BENCHMARK(BM_LindigVsObjects)
    ->Arg(32)
    ->Arg(64)
    ->Arg(128)
    ->Unit(benchmark::kMillisecond)
    ->MinTime(0.05);
BENCHMARK(BM_GodinVsK)
    ->DenseRange(2, 9, 1)
    ->Unit(benchmark::kMillisecond)
    ->MinTime(0.05);
BENCHMARK(BM_LatticeVsTransitions)
    ->Arg(2)
    ->Arg(4)
    ->Arg(6)
    ->Arg(8)
    ->Arg(10)
    ->Unit(benchmark::kMillisecond)
    ->MinTime(0.05);
BENCHMARK(BM_SessionBuild)
    ->Arg(64)
    ->Arg(128)
    ->Arg(256)
    ->Unit(benchmark::kMillisecond)
    ->MinTime(0.05);
BENCHMARK(BM_NextClosureSerial)->Unit(benchmark::kMillisecond)->MinTime(0.05);
BENCHMARK(BM_ParallelVsThreads)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->MinTime(0.05);
BENCHMARK(BM_ShardedVsWorkers)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->MinTime(0.05);
BENCHMARK(BM_ExecutedTransitions)->MinTime(0.05);

// Custom main instead of BENCHMARK_MAIN(): always emit the BENCH JSON
// (fixed Godin / parallel-builder probes on the 512-object sweep
// context), and run the full google-benchmark sweeps only outside quick
// mode. This binary is also the subject of the disarmed-instrumentation
// overhead guard (tests/bench/overhead_guard.sh), which compares its
// probe medians across a CABLE_NO_INSTRUMENT build.
int main(int Argc, char **Argv) {
  cable::bench::BenchReport Report("scaling_lattice");
  {
    Context Ctx = randomContext(/*NumObjects=*/512, /*K=*/6, /*PoolSize=*/24,
                                42);
    int Samples = cable::bench::BenchReport::quick() ? 3 : 11;
    size_t Concepts = 0;
    for (int I = 0; I < Samples; ++I) {
      Report.timeSample("godin-512", [&] {
        ConceptLattice L = GodinBuilder::buildLattice(Ctx);
        Concepts = L.size();
        benchmark::DoNotOptimize(L);
      });
      Report.timeSample("next-closure-512", [&] {
        ConceptLattice L = NextClosureBuilder::buildLattice(Ctx);
        benchmark::DoNotOptimize(L);
      });
      Report.timeSample("parallel4-512", [&] {
        ConceptLattice L = ParallelBuilder::buildLattice(Ctx, 4u);
        benchmark::DoNotOptimize(L);
      });
    }
    Report.counter("concepts", static_cast<double>(Concepts));
  }

  // Sharded (multi-process) section: crash-isolated construction at
  // 1/2/4/8 worker processes on the same sweep context. Emitted in quick
  // mode too, so the bench-quick CI job records the fork + wire + merge
  // overhead and the identical flag on every run.
  {
    Context Ctx = randomContext(/*NumObjects=*/512, /*K=*/6, /*PoolSize=*/24,
                                42);
    int Samples = cable::bench::BenchReport::quick() ? 3 : 7;
    std::vector<double> SerialMs;
    ConceptLattice Serial;
    for (int I = 0; I < Samples; ++I)
      SerialMs.push_back(Report.timeSample("sharded-serial-512", [&] {
        Serial = NextClosureBuilder::buildLattice(Ctx);
        benchmark::DoNotOptimize(Serial);
      }));
    double SerialMed = median(SerialMs);
    bool Identical = true;
    for (unsigned W : {1u, 2u, 4u, 8u}) {
      ShardOptions Opts;
      Opts.NumWorkers = W;
      Opts.NumThreads = 4;
      std::vector<double> Ms;
      for (int I = 0; I < Samples; ++I)
        Ms.push_back(
            Report.timeSample("sharded" + std::to_string(W) + "-512", [&] {
              ConceptLattice L = ShardedBuilder::buildLattice(Ctx, Opts);
              Identical = Identical && latticesIdentical(Serial, L);
              benchmark::DoNotOptimize(L);
            }));
      double Med = median(Ms);
      Report.counter("sharded_speedup_w" + std::to_string(W),
                     Med > 0 ? SerialMed / Med : 0);
    }
    Report.counter("sharded_identical", Identical ? 1 : 0);
  }

  // Kernel + closure throughput probes for the kernel regression guard
  // and the SIMD acceptance numbers. Sections exist in quick mode too —
  // smaller, but the guard's one-sided comparisons still hold.
  {
    bool Quick = cable::bench::BenchReport::quick();
    int Samples = Quick ? 5 : 11;
    int Reps = Quick ? 2000 : 20000;
    std::vector<simd::Level> Levels = {simd::Level::Scalar,
                                       simd::Level::Unrolled};
    if (simd::maxSupportedLevel() == simd::Level::Vector)
      Levels.push_back(simd::Level::Vector);
    for (simd::Level L : Levels)
      kernelThroughputProbe(Report, L, Samples, Reps);
    Report.counter("kernel_active_level",
                   static_cast<double>(simd::activeLevel()));
    Report.counter("kernel_max_level",
                   static_cast<double>(simd::maxSupportedLevel()));

    int Closures = Quick ? 4000 : 40000;
    closureThroughputProbe(Report, "contranominal24", contranominal(24),
                           Samples, Closures);
    closureThroughputProbe(Report, "xtfree", xtFreeScaleContext(), Samples,
                           Quick ? 400 : 4000);
  }

  if (!cable::bench::BenchReport::quick()) {
    benchmark::Initialize(&Argc, Argv);
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
  }
  Report.write();
  return 0;
}
