//===- bench/table2_lattice_cost.cpp - Reproduces Table 2 ------------------===//
//
// Part of the Cable reproduction of "Debugging Temporal Specifications with
// Concept Analysis" (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//
//
// Table 2: the cost of concept analysis per specification — scenario
// traces, unique traces (the lattice is built from one representative per
// identical-trace class, §5.2), reference-FA transitions (= attributes),
// concepts in the lattice, and the Godin construction time (shortest of
// three runs, as the paper reports). The paper's ceiling was ~22 s on a
// 248 MHz UltraSPARC; the shape to check is that lattice size grows
// roughly linearly with FA transitions and times stay interactive.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "concepts/GodinBuilder.h"

#include <chrono>
#include <cstdio>

using namespace cable;
using namespace cable::bench;

namespace {

double bestOfThreeMs(const Context &Ctx) {
  double Best = 1e18;
  for (int Run = 0; Run < 3; ++Run) {
    auto Start = std::chrono::steady_clock::now();
    ConceptLattice L = GodinBuilder::buildLattice(Ctx);
    auto End = std::chrono::steady_clock::now();
    double Ms =
        std::chrono::duration<double, std::milli>(End - Start).count();
    if (BenchReport *R = BenchReport::current())
      R->sample("godin-build", Ms);
    if (L.size() > 0 && Ms < Best) // L.size() check keeps the build alive.
      Best = Ms;
  }
  return Best;
}

} // namespace

int main() {
  cable::bench::BenchReport Report("table2_lattice_cost");
  std::printf("Table 2: cost of concept analysis "
              "(time = shortest of three runs)\n\n");

  TablePrinter T({{"Specification", 14},
                  {"Traces", 6},
                  {"Unique", 6},
                  {"FA-trans", 8},
                  {"Concepts", 8},
                  {"Edges", 6},
                  {"Height", 6},
                  {"Build-ms", 8}});

  for (SpecEvaluation &E : evaluateAllProtocols()) {
    Session &S = *E.S;
    double Ms = bestOfThreeMs(S.context());
    T.addRow({E.Model.Name, cell(S.allTraces().size()), cell(S.numObjects()),
              cell(S.referenceFA().numTransitions()),
              cell(S.lattice().size()), cell(S.lattice().numEdges()),
              cell(S.lattice().height()), cell1(Ms)});
  }

  T.print();
  std::printf("\nPaper shape: lattice size roughly linear in FA "
              "transitions; construction\nnever exceeded ~22 s on 1998-era "
              "hardware (expect milliseconds here).\n");
  Report.write();
  return 0;
}
