//===- bench/ablation_coring.cpp - Coring vs Cable ablation ----------------===//
//
// Part of the Cable reproduction of "Debugging Temporal Specifications with
// Concept Analysis" (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//
//
// §6 motivates this paper against the original Strauss debugging
// mechanism, coring ("dropping low frequency transitions"): some buggy
// traces occur so frequently that a frequency threshold either keeps them
// or drops valid behavior with them. This ablation quantifies that: for
// each specification, learn (a) the raw mined FA, (b) cored FAs at
// several thresholds, and (c) the Cable-debugged FA (relearned from
// oracle-good traces), then score each against ground truth on the
// scenario corpus:
//
//   good-acc  = fraction of correct scenario classes accepted (recall);
//   bad-rej   = fraction of erroneous scenario classes rejected.
//
// Expected shape: coring trades the two off and never reaches Cable's
// (1.00, 1.00) on workloads with frequent errors.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "learner/Coring.h"

#include <cstdio>

using namespace cable;
using namespace cable::bench;

namespace {

struct Score {
  double GoodAcc = 0;
  double BadRej = 0;
};

Score score(const Automaton &FA, const Session &S,
            const ReferenceLabeling &Target, LabelId Good) {
  size_t Goods = 0, Bads = 0, GoodAccepted = 0, BadRejected = 0;
  for (size_t Obj = 0; Obj < S.numObjects(); ++Obj) {
    bool IsGood = Target.Target[Obj] == Good;
    bool Accepts = FA.accepts(S.object(Obj), S.table());
    if (IsGood) {
      ++Goods;
      GoodAccepted += Accepts;
    } else {
      ++Bads;
      BadRejected += !Accepts;
    }
  }
  Score Out;
  Out.GoodAcc = Goods ? static_cast<double>(GoodAccepted) / Goods : 1.0;
  Out.BadRej = Bads ? static_cast<double>(BadRejected) / Bads : 1.0;
  return Out;
}

std::string cell2(double D) {
  char Buf[16];
  std::snprintf(Buf, sizeof(Buf), "%.2f", D);
  return Buf;
}

} // namespace

int main() {
  cable::bench::BenchReport Report("ablation_coring");
  std::printf("Ablation: coring (frequency threshold) vs Cable debugging\n");
  std::printf("cells are good-acceptance / bad-rejection over scenario "
              "classes\n\n");

  TablePrinter T({{"Specification", 14},
                  {"mined", 11},
                  {"core@0.05", 11},
                  {"core@0.15", 11},
                  {"core@0.30", 11},
                  {"cable", 11}});

  size_t CableWins = 0, Rows = 0;
  for (SpecEvaluation &E : evaluateAllProtocols()) {
    Session &S = *E.S;
    LabelId Good = S.internLabel("good");

    // Training multiset: all scenario traces (with multiplicity).
    const std::vector<Trace> &Training = S.allTraces().traces();
    CountedAutomaton PTA = CountedAutomaton::buildPTA(Training);

    SkStringsOptions Learn;
    Learn.S = 1.0;
    Automaton Mined = learnSkStringsFA(Training, S.table(), Learn);
    Score MinedScore = score(Mined, S, E.Target, Good);

    std::vector<std::string> Row{E.Model.Name,
                                 cell2(MinedScore.GoodAcc) + "/" +
                                     cell2(MinedScore.BadRej)};

    for (double Threshold : {0.05, 0.15, 0.30}) {
      Automaton Cored = coreAutomaton(PTA, S.table(), Threshold);
      Score CoreScore = score(Cored, S, E.Target, Good);
      Row.push_back(cell2(CoreScore.GoodAcc) + "/" + cell2(CoreScore.BadRej));
    }

    // Cable: relearn from oracle-good traces.
    std::vector<Trace> GoodTraces;
    for (size_t Obj = 0; Obj < S.numObjects(); ++Obj)
      if (E.Target.Target[Obj] == Good)
        GoodTraces.push_back(S.object(Obj));
    Automaton Debugged = learnSkStringsFA(GoodTraces, S.table(), Learn);
    Score CableScore = score(Debugged, S, E.Target, Good);
    Row.push_back(cell2(CableScore.GoodAcc) + "/" + cell2(CableScore.BadRej));

    bool Win = true;
    for (double Threshold : {0.05, 0.15, 0.30}) {
      Automaton Cored = coreAutomaton(PTA, S.table(), Threshold);
      Score CoreScore = score(Cored, S, E.Target, Good);
      if (CoreScore.GoodAcc >= CableScore.GoodAcc &&
          CoreScore.BadRej >= CableScore.BadRej)
        Win = false;
    }
    CableWins += Win;
    ++Rows;
    T.addRow(std::move(Row));
  }

  T.print();
  std::printf("\nCable strictly dominates every coring threshold on %zu/%zu "
              "specifications.\n",
              CableWins, Rows);
  Report.write();
  return 0;
}
