//===- bench/fig1_6_stdio_specs.cpp - Reproduces Figs. 1 and 6 -------------===//
//
// Part of the Cable reproduction of "Debugging Temporal Specifications with
// Concept Analysis" (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//
//
// Figure 1: the buggy stdio specification (fclose allowed on any pointer,
// whatever its source). Figure 6: the fixed specification after the §2.1
// debugging session. Both are printed as transition listings and DOT, and
// the fix is validated: the fixed FA accepts popen/pclose scenarios and
// rejects popen/fclose ones.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "fa/Regex.h"
#include "trace/TraceSet.h"
#include "workload/Protocols.h"

#include <cstdio>

using namespace cable;

int main() {
  cable::bench::BenchReport Report("fig1_6_stdio_specs");
  EventTable Table;

  std::printf("Figure 1: buggy stdio specification\n");
  std::printf("  regex: %s\n", stdioBuggyRegex().c_str());
  Automaton Buggy = compileRegexOrDie(stdioBuggyRegex(), Table);
  std::printf("%s\n", Buggy.renderText(Table).c_str());

  std::printf("Figure 6: fixed stdio specification\n");
  std::string FixedRegex = stdioProtocol().CorrectRegex;
  std::printf("  regex: %s\n", FixedRegex.c_str());
  Automaton Fixed = compileRegexOrDie(FixedRegex, Table);
  std::printf("%s\n", Fixed.renderText(Table).c_str());

  // Validate the fix on the §2.1 example traces.
  auto Check = [&](const char *Text, bool BuggyExpect, bool FixedExpect) {
    std::string Err;
    std::optional<TraceSet> TS = TraceSet::parse(Text, Err);
    if (!TS) {
      std::printf("parse error: %s\n", Err.c_str());
      return;
    }
    // Re-express over the shared table.
    Trace T;
    for (EventId E : (*TS)[0].events())
      T.append(Table.internEvent(TS->table().event(E)));
    bool B = Buggy.accepts(T, Table);
    bool F = Fixed.accepts(T, Table);
    std::printf("  %-42s buggy:%-3s fixed:%-3s %s\n", Text,
                B ? "yes" : "no", F ? "yes" : "no",
                (B == BuggyExpect && F == FixedExpect) ? "[ok]"
                                                       : "[MISMATCH]");
  };
  std::printf("acceptance checks:\n");
  Check("fopen(v0) fread(v0) fclose(v0)", true, true);
  Check("popen(v0) fwrite(v0) pclose(v0)", false, true);
  Check("popen(v0) fread(v0) fclose(v0)", true, false);
  Check("fopen(v0) pclose(v0)", false, false);
  Check("popen(v0) fread(v0)", false, false);

  std::printf("\nDOT (Figure 1):\n%s",
              Buggy.renderDot(Table, "fig1_buggy").c_str());
  std::printf("\nDOT (Figure 6):\n%s",
              Fixed.renderDot(Table, "fig6_fixed").c_str());
  Report.write();
  return 0;
}
