//===- bench/fig9_10_animals.cpp - Reproduces Figs. 9 and 10 ---------------===//
//
// Part of the Cable reproduction of "Debugging Temporal Specifications with
// Concept Analysis" (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//
//
// Figure 9: the animals-and-adjectives formal context the paper borrows
// from Siff's thesis (the exact table lives in the figure, which the
// available text omits, so this is a representative instance). Figure 10:
// its concept lattice, built with both Godin's incremental algorithm and
// NextClosure, which must agree.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "concepts/GodinBuilder.h"
#include "concepts/NextClosureBuilder.h"

#include <cstdio>
#include <string>
#include <vector>

using namespace cable;

int main() {
  cable::bench::BenchReport Report("fig9_10_animals");
  std::vector<std::string> Animals{"cat", "gerbil", "dog", "dolphin",
                                   "whale"};
  std::vector<std::string> Adjectives{"four-legged", "hair-covered", "small",
                                      "smart", "marine"};
  Context Ctx(Animals.size(), Adjectives.size());
  Ctx.ObjectNames = Animals;
  Ctx.AttributeNames = Adjectives;
  auto Relate = [&](size_t Animal, std::initializer_list<size_t> Attrs) {
    for (size_t A : Attrs)
      Ctx.relate(Animal, A);
  };
  Relate(0, {0, 1, 2});    // cat: four-legged, hair-covered, small.
  Relate(1, {0, 1, 2});    // gerbil: four-legged, hair-covered, small.
  Relate(2, {0, 1, 3});    // dog: four-legged, hair-covered, smart.
  Relate(3, {3, 4});       // dolphin: smart, marine.
  Relate(4, {3, 4});       // whale: smart, marine.

  std::printf("Figure 9: a context of animals and adjectives\n\n");
  std::printf("%-10s", "");
  for (const std::string &A : Adjectives)
    std::printf(" %-12s", A.c_str());
  std::printf("\n");
  for (size_t O = 0; O < Animals.size(); ++O) {
    std::printf("%-10s", Animals[O].c_str());
    for (size_t A = 0; A < Adjectives.size(); ++A)
      std::printf(" %-12s", Ctx.related(O, A) ? "x" : "");
    std::printf("\n");
  }

  ConceptLattice L = GodinBuilder::buildLattice(Ctx);
  ConceptLattice L2 = NextClosureBuilder::buildLattice(Ctx);
  std::printf("\nFigure 10: concept lattice (%zu concepts; Godin and "
              "NextClosure agree: %s)\n\n",
              L.size(), L.size() == L2.size() ? "yes" : "NO");

  auto Label = [&](ConceptLattice::NodeId Id) {
    const Concept &C = L.node(Id);
    std::string Out = "{";
    bool First = true;
    for (size_t O : C.Extent) {
      if (!First)
        Out += ",";
      Out += Animals[O];
      First = false;
    }
    Out += "} x {";
    First = true;
    for (size_t A : C.Intent) {
      if (!First)
        Out += ",";
      Out += Adjectives[A];
      First = false;
    }
    return Out + "}";
  };

  for (ConceptLattice::NodeId Id : L.topDownOrder()) {
    std::printf("c%-2u %s\n", Id, Label(Id).c_str());
    for (ConceptLattice::NodeId C : L.children(Id))
      std::printf("      covers c%u\n", C);
  }

  std::printf("\nDOT:\n%s", L.renderDot("fig10_animals", Label).c_str());
  Report.write();
  return 0;
}
