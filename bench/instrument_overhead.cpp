//===- bench/instrument_overhead.cpp - Disarmed-instrumentation cost -------===//
//
// Part of the Cable reproduction of "Debugging Temporal Specifications with
// Concept Analysis" (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//
//
// The observability layer's contract is that *disarmed* instrumentation
// (no --metrics-out / --trace-out) costs one relaxed atomic load per
// site, so it can stay compiled into every hot loop. This binary puts a
// number on that: it times the NextClosure enumeration — the densest
// instrumentation site, one closure counter bump per candidate — with
// metrics disarmed and then armed, and prints greppable min-of-N lines.
//
// tests/bench/overhead_guard.sh runs the same binary from a nested
// -DCABLE_NO_INSTRUMENT=ON build and asserts the disarmed medians agree
// within 2%, turning "the disarmed path is free" from a comment into a
// regression test.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "concepts/NextClosureBuilder.h"
#include "concepts/ParallelBuilder.h"
#include "support/Metrics.h"
#include "support/RNG.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <vector>

using namespace cable;
using namespace cable::bench;

namespace {

Context randomContext(size_t NumObjects, size_t K, size_t PoolSize,
                      uint64_t Seed) {
  RNG Rand(Seed);
  Context Ctx(NumObjects, PoolSize);
  for (size_t O = 0; O < NumObjects; ++O)
    for (size_t J = 0; J < K; ++J)
      Ctx.relate(O, Rand.nextIndex(PoolSize));
  return Ctx;
}

double buildOnceMs(const Context &Ctx) {
  auto Start = std::chrono::steady_clock::now();
  ConceptLattice L = NextClosureBuilder::buildLattice(Ctx);
  double Ms = std::chrono::duration<double, std::milli>(
                  std::chrono::steady_clock::now() - Start)
                  .count();
  // Keep the build observable so the whole loop cannot be elided.
  return L.size() > 0 ? Ms : -1;
}

double minOf(const std::vector<double> &Samples) {
  return *std::min_element(Samples.begin(), Samples.end());
}

double medianOf(std::vector<double> Samples) {
  std::sort(Samples.begin(), Samples.end());
  return Samples[Samples.size() / 2];
}

} // namespace

int main() {
  Context Ctx = randomContext(/*NumObjects=*/512, /*K=*/6, /*PoolSize=*/24,
                              42);
  int Samples = BenchReport::quick() ? 7 : 21;

  // Measure the disarmed path FIRST, before BenchReport arms the
  // registry; this is the state every un-flagged production run is in
  // (and the only state a CABLE_NO_INSTRUMENT build has).
  Metrics::setEnabled(false);
  buildOnceMs(Ctx); // warm-up: fault in code and the context's pages
  std::vector<double> Disarmed;
  for (int I = 0; I < Samples; ++I)
    Disarmed.push_back(buildOnceMs(Ctx));

  Metrics::setEnabled(true);
  std::vector<double> Armed;
  for (int I = 0; I < Samples; ++I)
    Armed.push_back(buildOnceMs(Ctx));

  double DisarmedMedian = medianOf(Disarmed);
  double ArmedMedian = medianOf(Armed);
  double OverheadPct =
      DisarmedMedian > 0
          ? (ArmedMedian - DisarmedMedian) / DisarmedMedian * 100.0
          : 0;

  // Greppable lines for the overhead-guard script; min-of-N is the
  // noise-robust statistic for same-machine comparisons.
  std::printf("instrument_overhead: next-closure 512 objects, %d samples\n",
              Samples);
  std::printf("disarmed_min_ms %.4f\n", minOf(Disarmed));
  std::printf("disarmed_median_ms %.4f\n", DisarmedMedian);
  std::printf("armed_min_ms %.4f\n", minOf(Armed));
  std::printf("armed_median_ms %.4f\n", ArmedMedian);
  std::printf("armed_overhead_pct %.2f\n", OverheadPct);

  BenchReport Report("instrument_overhead");
  for (double Ms : Disarmed)
    Report.sample("next-closure-disarmed", Ms);
  for (double Ms : Armed)
    Report.sample("next-closure-armed", Ms);
  Report.counter("armed_overhead_pct", OverheadPct);
  Report.write();
  return 0;
}
