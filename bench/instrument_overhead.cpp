//===- bench/instrument_overhead.cpp - Disarmed-instrumentation cost -------===//
//
// Part of the Cable reproduction of "Debugging Temporal Specifications with
// Concept Analysis" (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//
//
// The observability layer's contract is that *disarmed* instrumentation
// (no --metrics-out / --trace-out) costs one relaxed atomic load per
// site, so it can stay compiled into every hot loop. This binary puts a
// number on that: it times the NextClosure enumeration — the densest
// instrumentation site, one closure counter bump per candidate — with
// metrics disarmed and then armed, and prints greppable min-of-N lines.
//
// tests/bench/overhead_guard.sh runs the same binary from a nested
// -DCABLE_NO_INSTRUMENT=ON build and asserts the disarmed medians agree
// within 2%, turning "the disarmed path is free" from a comment into a
// regression test.
//
// A second probe prices *armed* telemetry on the multi-process path: the
// same context built via ShardedBuilder with telemetry off and then with
// metrics + trace rings armed in every process (worker deltas and spans
// crossing the wire and merging in the supervisor).
// tests/bench/telemetry_guard.sh bounds that one-sided.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "concepts/NextClosureBuilder.h"
#include "concepts/ParallelBuilder.h"
#include "concepts/ShardedBuilder.h"
#include "support/Log.h"
#include "support/Metrics.h"
#include "support/RNG.h"
#include "support/TraceEvent.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <vector>

using namespace cable;
using namespace cable::bench;

namespace {

Context randomContext(size_t NumObjects, size_t K, size_t PoolSize,
                      uint64_t Seed) {
  RNG Rand(Seed);
  Context Ctx(NumObjects, PoolSize);
  for (size_t O = 0; O < NumObjects; ++O)
    for (size_t J = 0; J < K; ++J)
      Ctx.relate(O, Rand.nextIndex(PoolSize));
  return Ctx;
}

double buildOnceMs(const Context &Ctx) {
  auto Start = std::chrono::steady_clock::now();
  ConceptLattice L = NextClosureBuilder::buildLattice(Ctx);
  double Ms = std::chrono::duration<double, std::milli>(
                  std::chrono::steady_clock::now() - Start)
                  .count();
  // Keep the build observable so the whole loop cannot be elided.
  return L.size() > 0 ? Ms : -1;
}

double buildShardedOnceMs(const Context &Ctx, unsigned Workers) {
  ShardOptions Opts;
  Opts.NumWorkers = Workers;
  auto Start = std::chrono::steady_clock::now();
  ConceptLattice L = ShardedBuilder::buildLattice(Ctx, Opts);
  double Ms = std::chrono::duration<double, std::milli>(
                  std::chrono::steady_clock::now() - Start)
                  .count();
  return L.size() > 0 ? Ms : -1;
}

double minOf(const std::vector<double> &Samples) {
  return *std::min_element(Samples.begin(), Samples.end());
}

double medianOf(std::vector<double> Samples) {
  std::sort(Samples.begin(), Samples.end());
  return Samples[Samples.size() / 2];
}

} // namespace

int main() {
  Context Ctx = randomContext(/*NumObjects=*/512, /*K=*/6, /*PoolSize=*/24,
                              42);
  int Samples = BenchReport::quick() ? 7 : 21;

  // Measure the disarmed path FIRST, before BenchReport arms the
  // registry; this is the state every un-flagged production run is in
  // (and the only state a CABLE_NO_INSTRUMENT build has).
  Metrics::setEnabled(false);
  buildOnceMs(Ctx); // warm-up: fault in code and the context's pages
  std::vector<double> Disarmed;
  for (int I = 0; I < Samples; ++I)
    Disarmed.push_back(buildOnceMs(Ctx));

  Metrics::setEnabled(true);
  std::vector<double> Armed;
  for (int I = 0; I < Samples; ++I)
    Armed.push_back(buildOnceMs(Ctx));

  // Armed-but-quiet logging: --log-out arms the Log gate for the whole
  // process, but log events mark rare conditions (cache faults, worker
  // crashes, torn journals) — the closure hot loop emits nothing. The
  // only admissible cost is the relaxed load at whatever CABLE_LOG sites
  // the build passes, so this phase must clock in at disarmed speed.
  Metrics::setEnabled(false);
  Log::setEnabled(true);
  std::vector<double> LogArmed;
  for (int I = 0; I < Samples; ++I)
    LogArmed.push_back(buildOnceMs(Ctx));
  Log::setEnabled(false);
  Log::drainRecords(); // drop anything a cold path emitted

  double DisarmedMedian = medianOf(Disarmed);
  double ArmedMedian = medianOf(Armed);
  double OverheadPct =
      DisarmedMedian > 0
          ? (ArmedMedian - DisarmedMedian) / DisarmedMedian * 100.0
          : 0;
  double LogArmedMedian = medianOf(LogArmed);
  double LogOverheadPct =
      DisarmedMedian > 0
          ? (LogArmedMedian - DisarmedMedian) / DisarmedMedian * 100.0
          : 0;

  // The sharded probe: the same context built through the multi-process
  // path, first with telemetry disarmed (workers compute, no flush
  // payloads beyond the empty frames) and then fully armed (metrics +
  // trace rings on in every process, deltas and spans crossing the wire
  // and merging in the supervisor). The delta prices the whole telemetry
  // harvest — encode, frame, decode, merge — against a build that
  // already pays fork/IPC costs, which is the honest denominator.
  Metrics::setEnabled(false);
  TraceLog::setEnabled(false);
  buildShardedOnceMs(Ctx, /*Workers=*/4); // warm-up: first fork set
  std::vector<double> ShardedDisarmed;
  for (int I = 0; I < Samples; ++I)
    ShardedDisarmed.push_back(buildShardedOnceMs(Ctx, 4));

  Metrics::setEnabled(true);
  TraceLog::setEnabled(true);
  std::vector<double> ShardedArmed;
  for (int I = 0; I < Samples; ++I)
    ShardedArmed.push_back(buildShardedOnceMs(Ctx, 4));
  TraceLog::setEnabled(false);
  TraceLog::reset(); // drop the harvested worker spans; bench never exports

  double ShardedDisarmedMedian = medianOf(ShardedDisarmed);
  double ShardedArmedMedian = medianOf(ShardedArmed);
  double ShardedOverheadPct =
      ShardedDisarmedMedian > 0
          ? (ShardedArmedMedian - ShardedDisarmedMedian) /
                ShardedDisarmedMedian * 100.0
          : 0;

  // Greppable lines for the overhead-guard script; min-of-N is the
  // noise-robust statistic for same-machine comparisons.
  std::printf("instrument_overhead: next-closure 512 objects, %d samples\n",
              Samples);
  std::printf("disarmed_min_ms %.4f\n", minOf(Disarmed));
  std::printf("disarmed_median_ms %.4f\n", DisarmedMedian);
  std::printf("armed_min_ms %.4f\n", minOf(Armed));
  std::printf("armed_median_ms %.4f\n", ArmedMedian);
  std::printf("armed_overhead_pct %.2f\n", OverheadPct);
  std::printf("log_armed_min_ms %.4f\n", minOf(LogArmed));
  std::printf("log_armed_median_ms %.4f\n", LogArmedMedian);
  std::printf("log_armed_overhead_pct %.2f\n", LogOverheadPct);
  std::printf("sharded_disarmed_min_ms %.4f\n", minOf(ShardedDisarmed));
  std::printf("sharded_disarmed_median_ms %.4f\n", ShardedDisarmedMedian);
  std::printf("sharded_armed_min_ms %.4f\n", minOf(ShardedArmed));
  std::printf("sharded_armed_median_ms %.4f\n", ShardedArmedMedian);
  std::printf("sharded_telemetry_overhead_pct %.2f\n", ShardedOverheadPct);

  BenchReport Report("instrument_overhead");
  for (double Ms : Disarmed)
    Report.sample("next-closure-disarmed", Ms);
  for (double Ms : Armed)
    Report.sample("next-closure-armed", Ms);
  for (double Ms : LogArmed)
    Report.sample("next-closure-log-armed", Ms);
  for (double Ms : ShardedDisarmed)
    Report.sample("sharded-disarmed", Ms);
  for (double Ms : ShardedArmed)
    Report.sample("sharded-armed-telemetry", Ms);
  Report.counter("armed_overhead_pct", OverheadPct);
  Report.counter("log_armed_overhead_pct", LogOverheadPct);
  Report.counter("sharded_telemetry_overhead_pct", ShardedOverheadPct);
  Report.write();
  return 0;
}
