//===- bench/cache_startup.cpp - Artifact-cache warm-start speedup ---------===//
//
// Part of the Cable reproduction of "Debugging Temporal Specifications with
// Concept Analysis" (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//
//
// The point of the lattice artifact store is startup latency: a debugging
// session over an unchanged specification should pay a verified load, not
// a NextClosure rebuild. This bench measures that on the XtFree workload
// (the largest Table 1 protocol, on the order of a hundred concepts).
//
// The headline pair times exactly the work the cache replaces:
//
//   rebuild      NextClosureBuilder::buildLattice over the XtFree context
//                — what every uncached startup pays.
//   warm-load    ArtifactStore::load + full deserialize (mmap, header and
//                body CRC, every structural check) — what a warm startup
//                pays instead.
//
// `warm_speedup` (median rebuild / median warm-load) backs the "warm
// start is >= 10x cheaper than a rebuild" claim in docs/README.md.
//
// Two end-to-end sections put the same swap in session context — whole
// Session::build cold vs against a warm store — where scenario extraction
// and FA compilation dilute the ratio (`session_speedup`); both numbers
// are reported so neither can be mistaken for the other.
//
//===----------------------------------------------------------------------===//

#include "cable/Session.h"
#include "concepts/NextClosureBuilder.h"
#include "support/ArtifactStore.h"
#include "workload/Protocols.h"

#include "BenchCommon.h"

#include <algorithm>
#include <optional>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

using namespace cable;

namespace {

double median(std::vector<double> V) {
  std::sort(V.begin(), V.end());
  return V[V.size() / 2];
}

double msSince(std::chrono::steady_clock::time_point T0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - T0)
      .count();
}

} // namespace

int main() {
  bench::BenchReport Report("cache_startup");

  // The front half of the pipeline, once: deterministic XtFree workload,
  // scenarios, reference FA, and the session whose context we cache.
  // XtFree at session scale: the Table 1 sizing knobs multiplied so the
  // lattice is big enough that construction cost (the thing the cache
  // removes) dominates the syscall floor of a load. The workload stays
  // deterministic — the seed derives from the unchanged protocol name.
  ProtocolModel Model = protocolByName("XtFree");
  Model.NumRuns *= 10;
  Model.ScenariosPerRun *= 2;
  bench::SpecEvaluation Eval = bench::evaluateProtocol(Model);
  Session &S = *Eval.S;
  const Context &Ctx = S.context();
  size_t Concepts = S.lattice().size();

  LatticeArtifactMeta Meta;
  Meta.ContextHash = Ctx.contentHash();
  Meta.Builder = "nextclosure";
  Meta.Budget = "full";
  Meta.NumObjects = Ctx.numObjects();
  Meta.NumAttributes = Ctx.numAttributes();

  std::string CacheDir = "/tmp/cable_bench_cache";
  std::string Purge = "rm -rf " + CacheDir;
  std::system(Purge.c_str());
  ArtifactStore Store(CacheDir);
  if (!Store.prepare().isOk()) {
    std::fprintf(stderr, "FATAL: cannot create %s\n", CacheDir.c_str());
    return 1;
  }
  std::string Key = Meta.ContextHash + ".nextclosure.full";

  const int Reps = bench::BenchReport::quick() ? 5 : 25;
  std::vector<double> Rebuild, WarmLoad, WarmLoadHeader;

  // One-time warm-up price: serialize + atomic publish.
  {
    bench::BenchTimer Timer(Report, "store-publish");
    Status St = Store.store(Key, S.lattice().serialize(Meta));
    if (!St.isOk()) {
      std::fprintf(stderr, "FATAL: store failed: %s\n", St.message().c_str());
      return 1;
    }
  }

  // The loaded lattice is kept alive past the timer: a real warm start
  // moves it into the session, so its eventual destruction is not a
  // startup cost (the rebuild loop gets the same treatment).
  auto LoadOnce = [&](const char *Section, LatticeVerify Verify,
                      std::vector<double> &Out) {
    std::optional<ConceptLattice> Keep;
    auto T0 = std::chrono::steady_clock::now();
    Status St = Store.load(Key, [&](std::string_view Bytes) {
      StatusOr<ConceptLattice> L = ConceptLattice::deserialize(
          Bytes, Meta, Verify, Store.artifactPath(Key));
      if (!L.isOk())
        return L.status();
      Keep.emplace(std::move(L.value()));
      return Status::ok();
    });
    double Ms = msSince(T0);
    if (!St.isOk() || !Keep || Keep->size() != Concepts) {
      std::fprintf(stderr, "FATAL: warm load failed: %s\n",
                   St.message().c_str());
      std::exit(1);
    }
    Report.sample(Section, Ms);
    Out.push_back(Ms);
  };

  for (int R = 0; R < Reps; ++R) {
    {
      std::optional<ConceptLattice> L;
      auto T0 = std::chrono::steady_clock::now();
      L.emplace(NextClosureBuilder::buildLattice(Ctx));
      double Ms = msSince(T0);
      if (L->size() != Concepts)
        return 1;
      Report.sample("rebuild", Ms);
      Rebuild.push_back(Ms);
    }
    LoadOnce("warm-load", LatticeVerify::Full, WarmLoad);
    LoadOnce("warm-load-header", LatticeVerify::Header, WarmLoadHeader);
  }

  // End-to-end context: the same swap inside Session::build, where the
  // non-lattice startup work (scenario copies, FA compilation) dilutes
  // the ratio.
  std::vector<double> SessionCold, SessionWarm;
  const int SessionReps = bench::BenchReport::quick() ? 3 : 7;
  for (int R = 0; R < SessionReps; ++R) {
    SessionOptions Opts;
    for (bool Warm : {false, true}) {
      Opts.CacheDir = Warm ? CacheDir : "";
      auto T0 = std::chrono::steady_clock::now();
      StatusOr<Session> Built =
          Session::build(Eval.S->allTraces(), Eval.S->referenceFA(), Opts);
      double Ms = msSince(T0);
      if (!Built.isOk()) {
        std::fprintf(stderr, "FATAL: session build failed: %s\n",
                     Built.status().message().c_str());
        return 1;
      }
      Report.sample(Warm ? "session-warm" : "session-cold", Ms);
      (Warm ? SessionWarm : SessionCold).push_back(Ms);
    }
  }
  std::system(Purge.c_str());

  double Speedup = median(Rebuild) / median(WarmLoad);
  double SpeedupHeader = median(Rebuild) / median(WarmLoadHeader);
  double SessionSpeedup = median(SessionCold) / median(SessionWarm);
  Report.counter("concepts", static_cast<double>(Concepts));
  Report.counter("warm_speedup", Speedup);
  Report.counter("warm_speedup_header_verify", SpeedupHeader);
  Report.counter("session_speedup", SessionSpeedup);

  std::printf("cache startup (XtFree, %zu concepts, %d reps)\n", Concepts,
              Reps);
  std::printf("  rebuild            %8.3f ms (median)\n", median(Rebuild));
  std::printf("  warm-load (full)   %8.3f ms (median)\n", median(WarmLoad));
  std::printf("  warm-load (header) %8.3f ms (median)\n",
              median(WarmLoadHeader));
  std::printf("  warm_speedup       %8.1fx (full verify)\n", Speedup);
  std::printf("  session cold/warm  %8.3f / %.3f ms -> %.1fx\n",
              median(SessionCold), median(SessionWarm), SessionSpeedup);
  Report.write();
  return 0;
}
