//===- bench/fig7_8_strauss_pipeline.cpp - Reproduces Figs. 7 and 8 --------===//
//
// Part of the Cable reproduction of "Debugging Temporal Specifications with
// Concept Analysis" (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//
//
// Figure 7: the Strauss architecture — a front end extracting scenario
// traces from program execution traces and a machine-learning back end
// inferring a specification FA. This binary drives both halves and prints
// what flows between them. Figure 8: good scenario traces from which a
// miner should generalize the fread/fwrite loop.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "miner/Miner.h"
#include "support/RNG.h"
#include "workload/Generator.h"
#include "workload/Oracle.h"

#include <cstdio>

using namespace cable;

int main() {
  cable::bench::BenchReport Report("fig7_8_strauss_pipeline");
  ProtocolModel Model = stdioProtocol();
  EventTable Table;
  WorkloadGenerator Gen(Model, Table);
  RNG Rand(0xF78);
  TraceSet Runs = Gen.generateRuns(Rand);

  std::printf("Figure 7: the Strauss pipeline\n\n");
  std::printf("[program execution traces] -> front end -> "
              "[scenario traces] -> back end -> [specification FA]\n\n");
  std::printf("input: %zu program runs, first run (%zu events):\n  %.160s...\n\n",
              Runs.size(), Runs[0].size(),
              Runs[0].render(Runs.table()).c_str());

  MinerOptions Options;
  Options.Extract.SeedNames = Model.Seeds;
  Options.Learn.S = 1.0;
  Miner M(Options);
  MiningResult Result = M.mine(Runs, "stdio");

  TraceClasses Classes = Result.Scenarios.computeClasses();
  std::printf("front end: %zu scenario traces (%zu unique classes)\n",
              Result.Scenarios.size(), Classes.numClasses());
  std::printf("back end (sk-strings): %zu states, %zu transitions\n\n",
              Result.Spec.numStates(), Result.Spec.numTransitions());
  std::printf("mined specification:\n%s\n",
              Result.Spec.FA.renderText(Result.Scenarios.table()).c_str());

  std::printf("Figure 8: good scenario traces (generalization fodder)\n");
  Oracle Truth(Model, Result.Scenarios.table());
  size_t Shown = 0;
  for (size_t C = 0; C < Classes.numClasses() && Shown < 8; ++C) {
    const Trace &T = Classes.Representatives[C];
    if (!Truth.isCorrect(T, Result.Scenarios.table()))
      continue;
    std::printf("  %s   (x%u)\n",
                T.render(Result.Scenarios.table()).c_str(),
                Classes.Multiplicity[C]);
    ++Shown;
  }

  // The generalization check Fig. 8 motivates: unbounded reads accepted.
  std::string Err;
  std::optional<TraceSet> Long = TraceSet::parse(
      "fopen(v0) fread(v0) fread(v0) fread(v0) fread(v0) fread(v0) "
      "fread(v0) fclose(v0)\n",
      Err);
  if (Long) {
    Trace T;
    for (EventId E : (*Long)[0].events())
      T.append(Result.Scenarios.table().internEvent(Long->table().event(E)));
    std::printf("\ngeneralization: 6-read trace accepted by mined spec: "
                "%s\n",
                Result.Spec.FA.accepts(T, Result.Scenarios.table()) ? "yes"
                                                                     : "no");
  }
  Report.write();
  return 0;
}
