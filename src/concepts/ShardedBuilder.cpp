//===- concepts/ShardedBuilder.cpp - Multi-process construction ------------===//
//
// Part of the Cable reproduction of "Debugging Temporal Specifications with
// Concept Analysis" (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//
//
// Wire protocol (payloads ride inside Subprocess frames; see FORMATS.md):
//
//   request  'B' : u8 'B', u32 block, u64 maxConcepts (0 = none),
//                  u32 deadlineMs (0 = none)
//   request  'Q' : u8 'Q'                    -> worker _exit(0)
//   reply    'K' : u8 'K', u32 block, u8 stop, u64 numIntents, u64 numBits,
//                  numIntents * ceil(numBits/64) LE u64 words
//   reply    'E' : u8 'E', u32 block, u8 errorCode, message bytes
//
// All integers little-endian. A reply whose length does not match its own
// counts, whose stop/tag/block is out of range, or whose frame fails the
// CRC is rejected and handled exactly like a worker crash: the block is
// reassigned, never trusted.
//
// Failure handling is a ladder, every rung preserving determinism:
//
//   worker error reply ('E')     -> retry the block (worker stays up)
//   worker crash / torn frame /
//   timeout / protocol violation -> SIGKILL + respawn with backoff,
//                                   block reassigned
//   block out of retries         -> computed inline in the supervisor
//   restart budget exhausted or
//   fork unavailable             -> in-process ParallelBuilder fallback
//
//===----------------------------------------------------------------------===//

#include "concepts/ShardedBuilder.h"

#include "concepts/NextClosureBuilder.h"
#include "concepts/ParallelBuilder.h"
#include "support/AtomicFile.h"
#include "support/Failpoint.h"
#include "support/Metrics.h"
#include "support/Subprocess.h"
#include "support/ThreadPool.h"
#include "support/TraceEvent.h"

#include <algorithm>
#include <limits>
#include <new>
#include <thread>
#include <utility>

#include <poll.h>

using namespace cable;

namespace {

// Worker-lifecycle failpoints. All four fire in the worker process only
// (shard-pre-fork in the freshly forked child, the rest while serving a
// block), so a `crash` kills the worker and exercises the supervisor's
// recovery path rather than the build.
Failpoint::Registrar RegPostCompute("shard-post-compute");
Failpoint::Registrar RegPreReply("shard-pre-reply");
Failpoint::Registrar RegMidFrame("shard-mid-frame");

Metrics::Counter &ShardBuilds = Metrics::counter("shard.builds");
Metrics::Counter &BlocksDispatched =
    Metrics::counter("shard.blocks-dispatched");
Metrics::Counter &ShardRetries = Metrics::counter("shard.retries");
Metrics::Counter &ShardReassigned = Metrics::counter("shard.reassigned");
Metrics::Counter &ShardTimedOut = Metrics::counter("shard.timed-out");
Metrics::Counter &WorkerRestarts = Metrics::counter("shard.worker-restarts");
Metrics::Counter &WorkerCrashes = Metrics::counter("shard.worker-crashes");
Metrics::Counter &FramesRejected = Metrics::counter("shard.frames-rejected");
Metrics::Counter &ErrorReplies = Metrics::counter("shard.error-replies");
Metrics::Counter &DegradedBlocks = Metrics::counter("shard.degraded-blocks");
Metrics::Counter &DegradedBuilds = Metrics::counter("shard.degraded-builds");

// -- Payload encoding ------------------------------------------------------

void putU8(std::string &S, uint8_t V) { S.push_back(static_cast<char>(V)); }

void putU32(std::string &S, uint32_t V) {
  for (int I = 0; I < 4; ++I)
    S.push_back(static_cast<char>((V >> (8 * I)) & 0xff));
}

void putU64(std::string &S, uint64_t V) {
  for (int I = 0; I < 8; ++I)
    S.push_back(static_cast<char>((V >> (8 * I)) & 0xff));
}

bool getU8(std::string_view &S, uint8_t &V) {
  if (S.size() < 1)
    return false;
  V = static_cast<uint8_t>(S[0]);
  S.remove_prefix(1);
  return true;
}

bool getU32(std::string_view &S, uint32_t &V) {
  if (S.size() < 4)
    return false;
  V = 0;
  for (int I = 3; I >= 0; --I)
    V = (V << 8) | static_cast<uint8_t>(S[I]);
  S.remove_prefix(4);
  return true;
}

bool getU64(std::string_view &S, uint64_t &V) {
  if (S.size() < 8)
    return false;
  V = 0;
  for (int I = 7; I >= 0; --I)
    V = (V << 8) | static_cast<uint8_t>(S[I]);
  S.remove_prefix(8);
  return true;
}

std::string encodeBlockRequest(uint32_t Block, uint64_t MaxConcepts,
                               uint32_t DeadlineMs) {
  std::string S;
  putU8(S, 'B');
  putU32(S, Block);
  putU64(S, MaxConcepts);
  putU32(S, DeadlineMs);
  return S;
}

std::string encodeBlockReply(uint32_t Block, BuildStop Stop, uint64_t NumBits,
                             const std::vector<BitVector> &Intents) {
  std::string S;
  S.reserve(1 + 4 + 1 + 8 + 8 + Intents.size() * ((NumBits + 63) / 64) * 8);
  putU8(S, 'K');
  putU32(S, Block);
  putU8(S, static_cast<uint8_t>(Stop));
  putU64(S, Intents.size());
  putU64(S, NumBits);
  for (const BitVector &V : Intents)
    for (size_t W = 0; W < V.numWords(); ++W)
      putU64(S, V.words()[W]);
  return S;
}

std::string encodeErrorReply(uint32_t Block, const Status &S) {
  std::string Out;
  putU8(Out, 'E');
  putU32(Out, Block);
  putU8(Out, static_cast<uint8_t>(S.code()));
  Out.append(S.message());
  return Out;
}

/// A decoded worker reply. Exactly one of Intents / Err is meaningful,
/// keyed on Tag.
struct ShardReply {
  uint8_t Tag = 0; ///< 'K' or 'E'.
  uint32_t Block = 0;
  BuildStop Stop = BuildStop::Complete;
  std::vector<BitVector> Intents;
  Status Err;
};

/// Strict reply decode: every count is cross-checked against the payload
/// length and the context's attribute universe, so a corrupted-but-CRC-
/// valid frame (a buggy worker) is rejected, not trusted.
StatusOr<ShardReply> decodeReply(std::string_view S, size_t NumAttributes) {
  ShardReply R;
  if (!getU8(S, R.Tag) || !getU32(S, R.Block))
    return Status::error(ErrorCode::IoError, "shard reply too short");
  if (R.Tag == 'E') {
    uint8_t Code = 0;
    if (!getU8(S, Code) || Code > static_cast<uint8_t>(ErrorCode::Internal) ||
        Code == 0)
      return Status::error(ErrorCode::IoError,
                           "shard error reply with a bad error code");
    R.Err = Status::error(static_cast<ErrorCode>(Code), std::string(S));
    return R;
  }
  if (R.Tag != 'K')
    return Status::error(ErrorCode::IoError, "unknown shard reply tag");
  uint8_t StopByte = 0;
  uint64_t NumIntents = 0, NumBits = 0;
  if (!getU8(S, StopByte) || !getU64(S, NumIntents) || !getU64(S, NumBits))
    return Status::error(ErrorCode::IoError, "shard reply header too short");
  if (StopByte > static_cast<uint8_t>(BuildStop::Memory))
    return Status::error(ErrorCode::IoError,
                         "shard reply with a bad stop reason");
  R.Stop = static_cast<BuildStop>(StopByte);
  if (NumBits != NumAttributes)
    return Status::error(ErrorCode::IoError,
                         "shard reply universe mismatch: " +
                             std::to_string(NumBits) + " bits, expected " +
                             std::to_string(NumAttributes));
  size_t WordsPer = (NumAttributes + 63) / 64;
  if (WordsPer == 0 ||
      NumIntents > static_cast<uint64_t>(MaxFrameBytes) / (WordsPer * 8) ||
      S.size() != NumIntents * WordsPer * 8)
    return Status::error(ErrorCode::IoError,
                         "shard reply length does not match its counts");
  R.Intents.reserve(NumIntents);
  for (uint64_t I = 0; I < NumIntents; ++I) {
    BitVector V(NumAttributes);
    for (size_t W = 0; W < WordsPer; ++W) {
      uint64_t Word = 0;
      getU64(S, Word);
      if (W + 1 == WordsPer)
        Word &= V.tailMask(); // Re-establish the tail invariant defensively.
      V.words()[W] = Word;
    }
    R.Intents.push_back(std::move(V));
  }
  return R;
}

// -- Worker ----------------------------------------------------------------

/// Sends one reply frame in two halves with the `shard-mid-frame`
/// failpoint between them: a `crash` there leaves a genuinely torn frame
/// on the wire, an `error` abandons the stream mid-frame (the worker bails
/// like a failed write), a `hang` wedges with half a frame sent — each a
/// distinct supervisor-recovery path.
bool sendReplySplit(int Fd, std::string_view Payload) {
  std::string Frame = encodeFramedRecord(Payload);
  size_t Half = Frame.size() / 2;
  if (!sendBytes(Fd, Frame.data(), Half).isOk())
    return false;
  if (!Failpoint::hit("shard-mid-frame").isOk())
    return false;
  return sendBytes(Fd, Frame.data() + Half, Frame.size() - Half).isOk();
}

/// The shard worker loop: serve block requests until 'Q' or a broken
/// parent socket. Runs in the forked child, which inherits the read-only
/// \p Ctx and \p TopIntent — only indices and intents cross the wire.
/// Exit codes: 0 clean, 3 parent socket broken, 4 protocol violation,
/// 9 reply write failed (includes an injected mid-frame fault).
int shardWorkerMain(const Context &Ctx, const BitVector &TopIntent, int Fd) {
  size_t M = Ctx.numAttributes();
  for (;;) {
    StatusOr<std::string> FrameOr = recvFrame(Fd);
    if (!FrameOr)
      return 3;
    std::string_view In = *FrameOr;
    uint8_t Tag = 0;
    if (!getU8(In, Tag))
      return 4;
    if (Tag == 'Q')
      return 0;
    uint32_t Block = 0, DeadlineMs = 0;
    uint64_t MaxConcepts = 0;
    if (Tag != 'B' || !getU32(In, Block) || !getU64(In, MaxConcepts) ||
        !getU32(In, DeadlineMs) || Block >= M)
      return 4;

    std::string Reply;
    try {
      Budget B;
      if (MaxConcepts)
        B.MaxConcepts = MaxConcepts;
      if (DeadlineMs)
        B.TimeLimit = std::chrono::milliseconds(DeadlineMs);
      BudgetMeter WorkerMeter(B);
      BuildStop Stop = BuildStop::Complete;
      std::vector<BitVector> Intents = ParallelBuilder::blockIntentsBudgeted(
          Ctx, Block, TopIntent, WorkerMeter, Stop);
      if (Status S = Failpoint::hit("shard-post-compute"); !S.isOk())
        Reply = encodeErrorReply(Block, S);
      else {
        Reply = encodeBlockReply(Block, Stop, M, Intents);
        if (Status S2 = Failpoint::hit("shard-pre-reply"); !S2.isOk())
          Reply = encodeErrorReply(Block, S2);
      }
    } catch (const std::bad_alloc &) {
      // blockIntentsBudgeted contains its own OOM (Memory stop); this
      // covers allocation failure while serializing the reply. The worker
      // reports instead of vanishing.
      Reply = encodeErrorReply(
          Block, Status::error(ErrorCode::ResourceExhausted,
                               "shard worker out of memory on block " +
                                   std::to_string(Block)));
    }
    if (!sendReplySplit(Fd, Reply))
      return 9;
  }
}

// -- Supervisor ------------------------------------------------------------

using Clock = std::chrono::steady_clock;

struct WorkerSlot {
  Subprocess Proc;
  int Block = -1; ///< Block in flight, -1 when idle.
  Clock::time_point Deadline{};
  Clock::time_point RespawnAt{};
  unsigned ConsecutiveFailures = 0;
  bool Alive = false;
  bool Retired = false; ///< Out of restart budget; never respawned.
};

/// Remaining whole milliseconds of the meter's deadline, clamped to
/// [1, u32max]; 0 = no deadline configured.
uint32_t remainingBudgetMs(const BudgetMeter &Meter) {
  const auto &Limit = Meter.budget().TimeLimit;
  if (!Limit)
    return 0;
  int64_t Left = Limit->count() - Meter.elapsed().count();
  if (Left <= 0)
    return 1; // Expired: workers see an already-dead deadline.
  return static_cast<uint32_t>(
      std::min<int64_t>(Left, std::numeric_limits<uint32_t>::max()));
}

class Supervisor {
public:
  Supervisor(const Context &Ctx, const BudgetMeter &Meter,
             const ShardOptions &Opts, const BitVector &TopIntent)
      : Ctx(Ctx), Meter(Meter), Opts(Opts), TopIntent(TopIntent),
        M(Ctx.numAttributes()), Blocks(M), Stops(M, BuildStop::Complete),
        State(M, BlockState::Pending), Attempts(M, 0) {
    unsigned Workers = std::min<size_t>(Opts.NumWorkers, M ? M : 1);
    Slots.resize(std::max(1u, Workers));
    RestartBudget = static_cast<unsigned>(Slots.size()) *
                        (Opts.MaxRetries + 1) +
                    8;
  }

  /// Runs the supervision loop to completion. On return every block is
  /// Done (computed by a worker or inline) and all workers are shut down.
  void run() {
    TraceSpan Span("shard-supervise", static_cast<int64_t>(Slots.size()));
    for (size_t I = 0; I < Slots.size(); ++I)
      trySpawn(Slots[I], /*IsRestart=*/false);
    while (NumDone < M) {
      if (Meter.expired()) {
        // Deadline or cancel: take the worker group down and let the
        // inline path stamp Time stops on whatever remains (each inline
        // call sees the expired meter and returns immediately).
        shutdownWorkers();
        degradeRemaining();
        break;
      }
      respawnDueSlots();
      assignPending();
      if (!anyInFlight()) {
        if (!anyUsableSlot()) {
          // Every slot dead with no budget left: finish in-process.
          degradeRemaining();
          break;
        }
        if (NumDone < M && !anyAssignable()) {
          // Workers exist but all are backing off; wait out the nearest
          // respawn time rather than spinning.
          sleepUntilNextEvent();
        }
        continue;
      }
      pollInFlight();
      expireDeadlines();
    }
    shutdownWorkers();
  }

  std::vector<std::vector<BitVector>> takeBlocks() {
    return std::move(Blocks);
  }
  const std::vector<BuildStop> &stops() const { return Stops; }

private:
  enum class BlockState : uint8_t { Pending, InFlight, Done };

  const Context &Ctx;
  const BudgetMeter &Meter;
  const ShardOptions &Opts;
  const BitVector &TopIntent;
  size_t M;
  std::vector<std::vector<BitVector>> Blocks;
  std::vector<BuildStop> Stops;
  std::vector<BlockState> State;
  std::vector<unsigned> Attempts;
  std::vector<WorkerSlot> Slots;
  unsigned RestartBudget = 0;
  size_t NumDone = 0;

  /// Next block to hand out: highest pending minimum attribute, matching
  /// the canonical merge order so the merge's prefix completes earliest.
  int nextPending() const {
    for (size_t P = M; P > 0; --P)
      if (State[P - 1] == BlockState::Pending)
        return static_cast<int>(P - 1);
    return -1;
  }

  bool anyInFlight() const {
    for (const WorkerSlot &S : Slots)
      if (S.Alive && S.Block >= 0)
        return true;
    return false;
  }

  bool anyUsableSlot() const {
    for (const WorkerSlot &S : Slots)
      if (S.Alive || !S.Retired)
        return true;
    return false;
  }

  bool anyAssignable() const {
    for (const WorkerSlot &S : Slots)
      if (S.Alive && S.Block < 0)
        return true;
    return false;
  }

  std::vector<int> siblingFds(const WorkerSlot &Except) const {
    std::vector<int> Fds;
    for (const WorkerSlot &S : Slots)
      if (&S != &Except && S.Alive && S.Proc.fd() >= 0)
        Fds.push_back(S.Proc.fd());
    return Fds;
  }

  void trySpawn(WorkerSlot &Slot, bool IsRestart) {
    if (Slot.Retired)
      return;
    if (IsRestart) {
      if (RestartBudget == 0) {
        Slot.Retired = true;
        return;
      }
      --RestartBudget;
    }
    StatusOr<Subprocess> P = Subprocess::spawn(
        [this](int Fd) { return shardWorkerMain(Ctx, TopIntent, Fd); },
        siblingFds(Slot));
    if (!P) {
      // fork/socketpair failure: retire the slot; if every slot retires
      // the run loop degrades in-process.
      Slot.Retired = true;
      return;
    }
    Slot.Proc = std::move(*P);
    Slot.Alive = true;
    Slot.Block = -1;
    if (IsRestart)
      WorkerRestarts.add();
  }

  void respawnDueSlots() {
    Clock::time_point Now = Clock::now();
    for (WorkerSlot &S : Slots)
      if (!S.Alive && !S.Retired && Now >= S.RespawnAt)
        trySpawn(S, /*IsRestart=*/true);
  }

  void assignPending() {
    for (WorkerSlot &S : Slots) {
      if (!S.Alive || S.Block >= 0)
        continue;
      int P = nextPending();
      if (P < 0)
        return;
      ++Attempts[P];
      std::string Req = encodeBlockRequest(
          static_cast<uint32_t>(P),
          Meter.budget().MaxConcepts.value_or(0), remainingBudgetMs(Meter));
      if (!sendFrame(S.Proc.fd(), Req).isOk()) {
        // The worker died while idle; its socket is a dead letter box.
        --Attempts[P]; // The attempt never started.
        slotFailed(S, /*TimedOut=*/false);
        continue;
      }
      State[P] = BlockState::InFlight;
      S.Block = P;
      S.Deadline = Clock::now() + Opts.ShardTimeout;
      BlocksDispatched.add();
    }
  }

  /// Computes a block in the supervisor with the build's own meter — the
  /// per-block degradation rung, used when a block runs out of retries.
  void computeInline(size_t P) {
    DegradedBlocks.add();
    Blocks[P] = ParallelBuilder::blockIntentsBudgeted(Ctx, P, TopIntent,
                                                      Meter, Stops[P]);
    State[P] = BlockState::Done;
    ++NumDone;
  }

  void degradeRemaining() {
    for (size_t P = M; P > 0; --P)
      if (State[P - 1] != BlockState::Done)
        computeInline(P - 1);
  }

  /// A block attempt failed (crash, timeout, torn frame, error reply).
  /// Requeues it, or computes it inline once its retries are spent.
  void blockAttemptFailed(size_t P) {
    if (Attempts[P] >= Opts.MaxRetries + 1)
      computeInline(P);
    else
      State[P] = BlockState::Pending;
  }

  /// Kills and reaps a failed worker, reassigns its block, and schedules a
  /// backed-off respawn.
  void slotFailed(WorkerSlot &S, bool TimedOut) {
    if (TimedOut)
      ShardTimedOut.add();
    if (S.Block >= 0) {
      ShardReassigned.add();
      size_t P = static_cast<size_t>(S.Block);
      S.Block = -1;
      blockAttemptFailed(P);
    }
    S.Proc.kill();
    Subprocess::ExitStatus Exit = S.Proc.wait();
    if (Exit.Signaled || Exit.Code != 0)
      WorkerCrashes.add();
    S.Proc.closeFd();
    S.Alive = false;
    unsigned Shift = std::min(S.ConsecutiveFailures, 6u);
    ++S.ConsecutiveFailures;
    S.RespawnAt = Clock::now() + Opts.RetryBackoff * (1u << Shift);
    if (RestartBudget == 0)
      S.Retired = true;
  }

  /// One worker produced a complete, CRC-valid frame; act on it.
  void handleReply(WorkerSlot &S, std::string_view Payload) {
    StatusOr<ShardReply> ReplyOr = decodeReply(Payload, M);
    if (!ReplyOr ||
        ReplyOr->Block != static_cast<uint32_t>(S.Block)) {
      // Structurally bad or misaddressed reply: treat the worker as
      // compromised — same path as a crash.
      FramesRejected.add();
      slotFailed(S, /*TimedOut=*/false);
      return;
    }
    size_t P = static_cast<size_t>(S.Block);
    S.Block = -1;
    S.ConsecutiveFailures = 0;
    if (ReplyOr->Tag == 'E') {
      // The worker reported a failure but is itself healthy: retry
      // without a respawn.
      ErrorReplies.add();
      ShardRetries.add();
      blockAttemptFailed(P);
      return;
    }
    Blocks[P] = std::move(ReplyOr->Intents);
    Stops[P] = ReplyOr->Stop;
    State[P] = BlockState::Done;
    ++NumDone;
  }

  void pollInFlight() {
    std::vector<struct pollfd> Fds;
    std::vector<WorkerSlot *> FdSlots;
    Clock::time_point Now = Clock::now();
    Clock::time_point Nearest = Now + std::chrono::milliseconds(50);
    for (WorkerSlot &S : Slots) {
      if (S.Alive && S.Block >= 0) {
        Fds.push_back({S.Proc.fd(), POLLIN, 0});
        FdSlots.push_back(&S);
        Nearest = std::min(Nearest, S.Deadline);
      }
      if (!S.Alive && !S.Retired)
        Nearest = std::min(Nearest, S.RespawnAt);
    }
    if (Fds.empty())
      return;
    auto WaitMs = std::chrono::duration_cast<std::chrono::milliseconds>(
        Nearest - Now);
    int Timeout = static_cast<int>(std::max<int64_t>(0, WaitMs.count()));
    int Rc = ::poll(Fds.data(), Fds.size(), Timeout);
    if (Rc <= 0)
      return; // Timeout or EINTR; deadlines are handled by the caller.
    for (size_t I = 0; I < Fds.size(); ++I) {
      if (!(Fds[I].revents & (POLLIN | POLLHUP | POLLERR)))
        continue;
      WorkerSlot &S = *FdSlots[I];
      if (!S.Alive || S.Block < 0)
        continue; // A previous iteration already failed this slot.
      // Data (or EOF) is ready; bound the frame read by the shard
      // deadline so a worker that wedges mid-frame cannot stall the
      // supervisor past it.
      int FrameMs = static_cast<int>(std::max<int64_t>(
          1, std::chrono::duration_cast<std::chrono::milliseconds>(
                 S.Deadline - Clock::now())
                 .count()));
      StatusOr<std::string> FrameOr = recvFrame(S.Proc.fd(), FrameMs);
      if (!FrameOr) {
        // EOF, torn frame, corrupt frame, or a mid-frame wedge: all are
        // worker failures, distinguished only in metrics.
        bool TimedOut = FrameOr.status().code() == ErrorCode::ResourceExhausted;
        if (!TimedOut)
          FramesRejected.add();
        slotFailed(S, TimedOut);
        continue;
      }
      handleReply(S, *FrameOr);
    }
  }

  void expireDeadlines() {
    Clock::time_point Now = Clock::now();
    for (WorkerSlot &S : Slots)
      if (S.Alive && S.Block >= 0 && Now >= S.Deadline)
        slotFailed(S, /*TimedOut=*/true);
  }

  void sleepUntilNextEvent() {
    Clock::time_point Now = Clock::now();
    Clock::time_point Nearest = Now + std::chrono::milliseconds(50);
    for (const WorkerSlot &S : Slots)
      if (!S.Alive && !S.Retired)
        Nearest = std::min(Nearest, S.RespawnAt);
    if (Nearest > Now)
      std::this_thread::sleep_for(Nearest - Now);
  }

  void shutdownWorkers() {
    // Best-effort graceful quit so clean exits show up as such; a worker
    // that does not exit promptly is killed. Idle workers are blocked in
    // recvFrame, so 'Q' turns around fast.
    for (WorkerSlot &S : Slots) {
      if (!S.Alive)
        continue;
      bool Sent = sendFrame(S.Proc.fd(), std::string(1, 'Q')).isOk();
      if (!Sent)
        S.Proc.kill();
      if (Sent) {
        // Give it a beat, then force.
        for (int I = 0; I < 100 && S.Proc.running(); ++I) {
          if (S.Proc.tryWait())
            break;
          std::this_thread::sleep_for(std::chrono::milliseconds(2));
        }
        if (S.Proc.running())
          S.Proc.kill();
      }
      S.Proc.wait();
      S.Proc.closeFd();
      S.Alive = false;
    }
  }
};

} // namespace

LatticeBuildResult
ShardedBuilder::buildLatticeBudgeted(const Context &Ctx,
                                     const BudgetMeter &Meter,
                                     const ShardOptions &Opts) {
  if (Opts.NumWorkers == 0 || !Subprocess::forkSupported()) {
    // Sharding unavailable or not requested: the whole-build rung of the
    // degradation ladder.
    if (Opts.NumWorkers != 0)
      DegradedBuilds.add();
    return ParallelBuilder::buildLatticeBudgeted(Ctx, Meter, Opts.NumThreads);
  }

  Status Cells = checkContextCells(Ctx, Meter.budget());
  if (!Cells.isOk()) {
    LatticeBuildResult R;
    R.Lattice = finalizeTruncatedConcepts(Ctx, {}, DeadlineKeepCap);
    R.BuildStatus = std::move(Cells);
    R.Truncated = true;
    return R;
  }

  ShardBuilds.add();
  size_t M = Ctx.numAttributes();
  size_t Max = Meter.budget().MaxConcepts.value_or(SIZE_MAX);
  BitVector TopIntent = Ctx.closeIntent(BitVector(M));

  // Workers are forked while this process is still single-threaded (the
  // cover-computation pool below is created only after every worker has
  // exited), so children never inherit a held malloc or pool lock.
  std::vector<std::vector<BitVector>> BlockIntents;
  std::vector<BuildStop> BlockStops;
  if (M > 0) {
    Supervisor Sup(Ctx, Meter, Opts, TopIntent);
    Sup.run();
    BlockIntents = Sup.takeBlocks();
    BlockStops = Sup.stops();
  }

  try {
    // Canonical merge, identical to ParallelBuilder::allClosedIntentsBudgeted:
    // descending minimum attribute, cut at the global cap or the first
    // incomplete block. Everything kept is a lectic prefix.
    BuildStop Stop = BuildStop::Complete;
    std::vector<BitVector> Out;
    size_t Total = 1;
    for (const std::vector<BitVector> &B : BlockIntents)
      Total += B.size();
    Out.reserve(std::min(Total, Max));
    Out.push_back(std::move(TopIntent));
    for (size_t P = M; P > 0 && Stop == BuildStop::Complete; --P) {
      for (BitVector &Intent : BlockIntents[P - 1]) {
        if (Out.size() >= Max) {
          Stop = BuildStop::ConceptCap;
          break;
        }
        Out.push_back(std::move(Intent));
      }
      if (Stop == BuildStop::Complete &&
          BlockStops[P - 1] != BuildStop::Complete)
        Stop = BlockStops[P - 1];
    }

    if (Stop == BuildStop::Complete && Meter.expired())
      Stop = BuildStop::Time;
    if (Stop != BuildStop::Complete) {
      size_t NumEnumerated = Out.size();
      return makeTruncatedFromIntents(Ctx, std::move(Out), Stop, Meter,
                                      NumEnumerated);
    }

    LatticeBuildResult R;
    R.NumEnumerated = Out.size();
    ThreadPool Pool(ThreadPool::resolveThreadCount(Opts.NumThreads));
    R.Lattice = ParallelBuilder::assembleLattice(Ctx, Pool, std::move(Out));
    return R;
  } catch (const std::bad_alloc &) {
    // Same boundary containment as the in-process builders.
    Metrics::counter("lattice.oom-contained").add();
    LatticeBuildResult R;
    R.Truncated = true;
    R.BuildStatus =
        truncationStatus(BuildStop::Memory, Meter, "lattice construction");
    R.Lattice = finalizeTruncatedConcepts(Ctx, {}, DeadlineKeepCap);
    return R;
  }
}

ConceptLattice ShardedBuilder::buildLattice(const Context &Ctx,
                                            const ShardOptions &Opts) {
  BudgetMeter Meter{Budget{}};
  return buildLatticeBudgeted(Ctx, Meter, Opts).Lattice;
}
