//===- concepts/ShardedBuilder.cpp - Multi-process construction ------------===//
//
// Part of the Cable reproduction of "Debugging Temporal Specifications with
// Concept Analysis" (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//
//
// Wire protocol (payloads ride inside Subprocess frames; see FORMATS.md):
//
//   request  'B' : u8 'B', u32 block, u64 maxConcepts (0 = none),
//                  u32 deadlineMs (0 = none), u64 flowId, u8 telemetry
//   request  'Q' : u8 'Q', u8 telemetry      -> final 'T' if requested,
//                                               then worker _exit(0)
//   reply    'K' : u8 'K', u32 block, u8 stop, u64 numIntents, u64 numBits,
//                  numIntents * ceil(numBits/64) LE u64 words
//   reply    'E' : u8 'E', u32 block, u8 errorCode, message bytes
//   reply    'T' : u8 'T', u32 block (0xffffffff = shutdown flush),
//                  u64 flowId, u32 metricsLen, Metrics::encodeSamples
//                  bytes, u32 numSpans, numSpans span records (see
//                  FORMATS.md), u64 droppedDelta
//
// All integers little-endian. A reply whose length does not match its own
// counts, whose stop/tag/block is out of range, or whose frame fails the
// CRC is rejected and handled exactly like a worker crash: the block is
// reassigned, never trusted.
//
// When telemetry is requested ('B'/'Q' flag, set when Metrics or TraceLog
// is armed in the supervisor), a worker follows every K/E reply — and
// answers every 'Q' — with one 'T' frame carrying its Metrics delta since
// the previous flush plus its drained TraceLog ring. The supervisor
// merges deltas into the process-wide registry and stitches spans into
// the trace export as per-pid tracks; a flush that never arrives (crash,
// timeout, torn frame) is counted on `shard.telemetry-lost`, never
// retried — block results are authoritative, telemetry is best-effort.
//
// Failure handling is a ladder, every rung preserving determinism:
//
//   worker error reply ('E')     -> retry the block (worker stays up)
//   worker crash / torn frame /
//   timeout / protocol violation -> SIGKILL + respawn with backoff,
//                                   block reassigned
//   block out of retries         -> computed inline in the supervisor
//   restart budget exhausted or
//   fork unavailable             -> in-process ParallelBuilder fallback
//
//===----------------------------------------------------------------------===//

#include "concepts/ShardedBuilder.h"

#include "concepts/NextClosureBuilder.h"
#include "concepts/ParallelBuilder.h"
#include "support/AtomicFile.h"
#include "support/CrashDump.h"
#include "support/Failpoint.h"
#include "support/Json.h"
#include "support/Log.h"
#include "support/Metrics.h"
#include "support/RunReport.h"
#include "support/Subprocess.h"
#include "support/ThreadPool.h"
#include "support/TraceEvent.h"

#include <algorithm>
#include <atomic>
#include <limits>
#include <new>
#include <thread>
#include <utility>

#include <poll.h>

using namespace cable;

namespace {

// Worker-lifecycle failpoints. All four fire in the worker process only
// (shard-pre-fork in the freshly forked child, the rest while serving a
// block), so a `crash` kills the worker and exercises the supervisor's
// recovery path rather than the build.
Failpoint::Registrar RegPostCompute("shard-post-compute");
Failpoint::Registrar RegPreReply("shard-pre-reply");
Failpoint::Registrar RegMidFrame("shard-mid-frame");

Metrics::Counter &ShardBuilds = Metrics::counter("shard.builds");
Metrics::Counter &BlocksDispatched =
    Metrics::counter("shard.blocks-dispatched");
Metrics::Counter &ShardRetries = Metrics::counter("shard.retries");
Metrics::Counter &ShardReassigned = Metrics::counter("shard.reassigned");
Metrics::Counter &ShardTimedOut = Metrics::counter("shard.timed-out");
Metrics::Counter &WorkerRestarts = Metrics::counter("shard.worker-restarts");
Metrics::Counter &WorkerCrashes = Metrics::counter("shard.worker-crashes");
Metrics::Counter &FramesRejected = Metrics::counter("shard.frames-rejected");
Metrics::Counter &ErrorReplies = Metrics::counter("shard.error-replies");
Metrics::Counter &DegradedBlocks = Metrics::counter("shard.degraded-blocks");
Metrics::Counter &DegradedBuilds = Metrics::counter("shard.degraded-builds");
Metrics::Counter &TelemetryMerged =
    Metrics::counter("shard.telemetry-merged");
Metrics::Counter &TelemetryLost = Metrics::counter("shard.telemetry-lost");
Metrics::Gauge &WorkersGauge = Metrics::gauge("shard.workers");

// The same registry entries the in-process builders maintain: the merge
// below is the sharded path's share of the closure/concept ledger, and
// fault-free it must sum (with the workers' flushed deltas) to exactly
// the serial builder's counts.
Metrics::Counter &NumClosures = Metrics::counter("lattice.closures");
Metrics::Counter &NumConcepts = Metrics::counter("lattice.concepts");

/// Process-unique flow ids, one per dispatched block attempt. The
/// supervisor stamps the id into the 'B' request and records the 's'
/// flow instant; the worker echoes it as a 't' inside its compute span;
/// the merge records the 'f' — one arrow per block across pid tracks.
std::atomic<uint64_t> NextFlowId{1};

// -- Payload encoding ------------------------------------------------------

void putU8(std::string &S, uint8_t V) { S.push_back(static_cast<char>(V)); }

void putU16(std::string &S, uint16_t V) {
  S.push_back(static_cast<char>(V & 0xff));
  S.push_back(static_cast<char>((V >> 8) & 0xff));
}

void putU32(std::string &S, uint32_t V) {
  for (int I = 0; I < 4; ++I)
    S.push_back(static_cast<char>((V >> (8 * I)) & 0xff));
}

void putU64(std::string &S, uint64_t V) {
  for (int I = 0; I < 8; ++I)
    S.push_back(static_cast<char>((V >> (8 * I)) & 0xff));
}

bool getU8(std::string_view &S, uint8_t &V) {
  if (S.size() < 1)
    return false;
  V = static_cast<uint8_t>(S[0]);
  S.remove_prefix(1);
  return true;
}

bool getU16(std::string_view &S, uint16_t &V) {
  if (S.size() < 2)
    return false;
  V = static_cast<uint16_t>(static_cast<uint8_t>(S[0]) |
                            (static_cast<uint16_t>(static_cast<uint8_t>(S[1]))
                             << 8));
  S.remove_prefix(2);
  return true;
}

bool getU32(std::string_view &S, uint32_t &V) {
  if (S.size() < 4)
    return false;
  V = 0;
  for (int I = 3; I >= 0; --I)
    V = (V << 8) | static_cast<uint8_t>(S[I]);
  S.remove_prefix(4);
  return true;
}

bool getU64(std::string_view &S, uint64_t &V) {
  if (S.size() < 8)
    return false;
  V = 0;
  for (int I = 7; I >= 0; --I)
    V = (V << 8) | static_cast<uint8_t>(S[I]);
  S.remove_prefix(8);
  return true;
}

std::string encodeBlockRequest(uint32_t Block, uint64_t MaxConcepts,
                               uint32_t DeadlineMs, uint64_t FlowId,
                               bool Telemetry) {
  std::string S;
  putU8(S, 'B');
  putU32(S, Block);
  putU64(S, MaxConcepts);
  putU32(S, DeadlineMs);
  putU64(S, FlowId);
  putU8(S, Telemetry ? 1 : 0);
  return S;
}

std::string encodeBlockReply(uint32_t Block, BuildStop Stop, uint64_t NumBits,
                             const std::vector<BitVector> &Intents) {
  std::string S;
  S.reserve(1 + 4 + 1 + 8 + 8 + Intents.size() * ((NumBits + 63) / 64) * 8);
  putU8(S, 'K');
  putU32(S, Block);
  putU8(S, static_cast<uint8_t>(Stop));
  putU64(S, Intents.size());
  putU64(S, NumBits);
  for (const BitVector &V : Intents)
    for (size_t W = 0; W < V.numWords(); ++W)
      putU64(S, V.words()[W]);
  return S;
}

std::string encodeErrorReply(uint32_t Block, const Status &S) {
  std::string Out;
  putU8(Out, 'E');
  putU32(Out, Block);
  putU8(Out, static_cast<uint8_t>(S.code()));
  Out.append(S.message());
  return Out;
}

/// The `block` value a worker stamps on the final flush it sends in
/// answer to 'Q' — there is no block, the flush covers everything since
/// the last one.
constexpr uint32_t ShutdownFlushBlock = 0xffffffffu;

/// Telemetry decode bounds: a corrupted-but-CRC-valid frame (a buggy
/// worker) must not drive giant allocations in the supervisor.
constexpr uint32_t MaxWireSpans = 1u << 20;
constexpr uint16_t MaxWireSpanName = 4096;

/// Encodes one telemetry flush ('T'). Span records are fixed-layout:
/// u16 nameLen, name, u64 startUs, u64 durUs, u64 arg, u8 hasArg,
/// u8 flowPhase, u64 flowId, u32 tid, u16 threadNameLen, threadName.
std::string encodeTelemetry(uint32_t Block, uint64_t FlowId,
                            const std::vector<Metrics::Sample> &Delta,
                            const std::vector<TraceLog::RawSpan> &Spans,
                            uint64_t DroppedDelta,
                            const std::vector<Log::Record> &LogRecords,
                            uint64_t LogDroppedDelta) {
  std::string S;
  putU8(S, 'T');
  putU32(S, Block);
  putU64(S, FlowId);
  std::string Blob = Metrics::encodeSamples(Delta);
  putU32(S, static_cast<uint32_t>(Blob.size()));
  S.append(Blob);
  putU32(S, static_cast<uint32_t>(Spans.size()));
  for (const TraceLog::RawSpan &Sp : Spans) {
    size_t NameLen = std::min<size_t>(Sp.Name.size(), MaxWireSpanName);
    putU16(S, static_cast<uint16_t>(NameLen));
    S.append(Sp.Name, 0, NameLen);
    putU64(S, Sp.StartUs);
    putU64(S, Sp.DurUs);
    putU64(S, static_cast<uint64_t>(Sp.Arg));
    putU8(S, Sp.HasArg ? 1 : 0);
    putU8(S, Sp.FlowPhase);
    putU64(S, Sp.FlowId);
    putU32(S, static_cast<uint32_t>(Sp.Tid));
    size_t ThreadLen = std::min<size_t>(Sp.ThreadName.size(), MaxWireSpanName);
    putU16(S, static_cast<uint16_t>(ThreadLen));
    S.append(Sp.ThreadName, 0, ThreadLen);
  }
  putU64(S, DroppedDelta);
  // Piggybacked structured-log delta (docs/FORMATS.md): the records a
  // worker emitted since its previous flush, riding the same frame so the
  // supervisor merges one coherent multi-process log with no extra wire
  // round-trips.
  std::string LogBlob = Log::encodeRecords(LogRecords);
  putU32(S, static_cast<uint32_t>(LogBlob.size()));
  S.append(LogBlob);
  putU64(S, LogDroppedDelta);
  return S;
}

/// A decoded worker telemetry flush.
struct TelemetryRecord {
  uint32_t Block = 0;
  uint64_t FlowId = 0;
  std::vector<Metrics::Sample> Delta;
  std::vector<TraceLog::RawSpan> Spans;
  uint64_t DroppedDelta = 0;
  std::vector<Log::Record> LogRecords;
  uint64_t LogDroppedDelta = 0;
};

bool getBytes(std::string_view &S, size_t N, std::string &Out) {
  if (S.size() < N)
    return false;
  Out.assign(S.substr(0, N));
  S.remove_prefix(N);
  return true;
}

/// Strict telemetry decode, the same stance as decodeReply: every count
/// is bounds-checked and the payload must be consumed exactly. A failure
/// costs the flush, never the already-accepted block result.
bool decodeTelemetry(std::string_view S, TelemetryRecord &T) {
  uint8_t Tag = 0;
  if (!getU8(S, Tag) || Tag != 'T' || !getU32(S, T.Block) ||
      !getU64(S, T.FlowId))
    return false;
  uint32_t MetricsLen = 0;
  if (!getU32(S, MetricsLen) || S.size() < MetricsLen ||
      !Metrics::decodeSamples(S.substr(0, MetricsLen), T.Delta))
    return false;
  S.remove_prefix(MetricsLen);
  uint32_t NumSpans = 0;
  if (!getU32(S, NumSpans) || NumSpans > MaxWireSpans)
    return false;
  T.Spans.clear();
  T.Spans.reserve(std::min<uint32_t>(NumSpans, 4096));
  for (uint32_t I = 0; I < NumSpans; ++I) {
    TraceLog::RawSpan Sp;
    uint16_t NameLen = 0, ThreadLen = 0;
    uint64_t Arg = 0;
    uint8_t HasArg = 0;
    uint32_t Tid = 0;
    if (!getU16(S, NameLen) || NameLen > MaxWireSpanName ||
        !getBytes(S, NameLen, Sp.Name) || !getU64(S, Sp.StartUs) ||
        !getU64(S, Sp.DurUs) || !getU64(S, Arg) || !getU8(S, HasArg) ||
        !getU8(S, Sp.FlowPhase) || !getU64(S, Sp.FlowId) ||
        !getU32(S, Tid) || !getU16(S, ThreadLen) ||
        ThreadLen > MaxWireSpanName || !getBytes(S, ThreadLen, Sp.ThreadName))
      return false;
    Sp.Arg = static_cast<int64_t>(Arg);
    Sp.HasArg = HasArg != 0;
    Sp.Tid = static_cast<int>(Tid);
    T.Spans.push_back(std::move(Sp));
  }
  if (!getU64(S, T.DroppedDelta))
    return false;
  uint32_t LogLen = 0;
  if (!getU32(S, LogLen) || S.size() < LogLen ||
      !Log::decodeRecords(S.substr(0, LogLen), T.LogRecords))
    return false;
  S.remove_prefix(LogLen);
  return getU64(S, T.LogDroppedDelta) && S.empty();
}

/// A decoded worker reply. Exactly one of Intents / Err is meaningful,
/// keyed on Tag.
struct ShardReply {
  uint8_t Tag = 0; ///< 'K' or 'E'.
  uint32_t Block = 0;
  BuildStop Stop = BuildStop::Complete;
  std::vector<BitVector> Intents;
  Status Err;
};

/// Strict reply decode: every count is cross-checked against the payload
/// length and the context's attribute universe, so a corrupted-but-CRC-
/// valid frame (a buggy worker) is rejected, not trusted.
StatusOr<ShardReply> decodeReply(std::string_view S, size_t NumAttributes) {
  ShardReply R;
  if (!getU8(S, R.Tag) || !getU32(S, R.Block))
    return Status::error(ErrorCode::IoError, "shard reply too short");
  if (R.Tag == 'E') {
    uint8_t Code = 0;
    if (!getU8(S, Code) || Code > static_cast<uint8_t>(ErrorCode::Internal) ||
        Code == 0)
      return Status::error(ErrorCode::IoError,
                           "shard error reply with a bad error code");
    R.Err = Status::error(static_cast<ErrorCode>(Code), std::string(S));
    return R;
  }
  if (R.Tag != 'K')
    return Status::error(ErrorCode::IoError, "unknown shard reply tag");
  uint8_t StopByte = 0;
  uint64_t NumIntents = 0, NumBits = 0;
  if (!getU8(S, StopByte) || !getU64(S, NumIntents) || !getU64(S, NumBits))
    return Status::error(ErrorCode::IoError, "shard reply header too short");
  if (StopByte > static_cast<uint8_t>(BuildStop::Memory))
    return Status::error(ErrorCode::IoError,
                         "shard reply with a bad stop reason");
  R.Stop = static_cast<BuildStop>(StopByte);
  if (NumBits != NumAttributes)
    return Status::error(ErrorCode::IoError,
                         "shard reply universe mismatch: " +
                             std::to_string(NumBits) + " bits, expected " +
                             std::to_string(NumAttributes));
  size_t WordsPer = (NumAttributes + 63) / 64;
  if (WordsPer == 0 ||
      NumIntents > static_cast<uint64_t>(MaxFrameBytes) / (WordsPer * 8) ||
      S.size() != NumIntents * WordsPer * 8)
    return Status::error(ErrorCode::IoError,
                         "shard reply length does not match its counts");
  R.Intents.reserve(NumIntents);
  for (uint64_t I = 0; I < NumIntents; ++I) {
    BitVector V(NumAttributes);
    for (size_t W = 0; W < WordsPer; ++W) {
      uint64_t Word = 0;
      getU64(S, Word);
      if (W + 1 == WordsPer)
        Word &= V.tailMask(); // Re-establish the tail invariant defensively.
      V.words()[W] = Word;
    }
    R.Intents.push_back(std::move(V));
  }
  return R;
}

// -- Worker ----------------------------------------------------------------

/// Sends one reply frame in two halves with the `shard-mid-frame`
/// failpoint between them: a `crash` there leaves a genuinely torn frame
/// on the wire, an `error` abandons the stream mid-frame (the worker bails
/// like a failed write), a `hang` wedges with half a frame sent — each a
/// distinct supervisor-recovery path.
bool sendReplySplit(int Fd, std::string_view Payload) {
  std::string Frame = encodeFramedRecord(Payload);
  size_t Half = Frame.size() / 2;
  if (!sendBytes(Fd, Frame.data(), Half).isOk())
    return false;
  if (!Failpoint::hit("shard-mid-frame").isOk())
    return false;
  return sendBytes(Fd, Frame.data() + Half, Frame.size() - Half).isOk();
}

/// The shard worker loop: serve block requests until 'Q' or a broken
/// parent socket. Runs in the forked child, which inherits the read-only
/// \p Ctx and \p TopIntent — only indices, intents, and telemetry cross
/// the wire.
/// Exit codes: 0 clean, 3 parent socket broken, 4 protocol violation,
/// 9 reply or flush write failed (includes an injected mid-frame fault).
int shardWorkerMain(const Context &Ctx, const BitVector &TopIntent, int Fd) {
  size_t M = Ctx.numAttributes();
  // The fork copied the supervisor's live counter values into this
  // process; baseline them away so each flush carries only what this
  // worker did since the previous one. (The trace rings were already
  // cleared by Subprocess::spawn.)
  std::vector<Metrics::Sample> Baseline = Metrics::snapshot();
  uint64_t DroppedBase = TraceLog::droppedCount();
  uint64_t LogDroppedBase = Log::droppedCount();
  // One hello per worker: even a fault-free merged log shows every
  // process that took part, and the kill matrix can tell "worker died
  // before serving" from "worker never started".
  CABLE_LOG_INFO("shard", "shard-worker-started",
                 "worker online, serving block requests",
                 {Log::num("attributes", static_cast<int64_t>(M))});
  auto flushTelemetry = [&](uint32_t Block, uint64_t FlowId) {
    std::vector<Metrics::Sample> Delta = Metrics::deltaSince(Baseline);
    std::vector<TraceLog::RawSpan> Spans = TraceLog::drainSpans();
    uint64_t Dropped = TraceLog::droppedCount();
    // drainRecords is its own delta: Subprocess::spawn cleared the rings
    // at fork, and each flush empties them again.
    std::vector<Log::Record> LogRecords = Log::drainRecords();
    uint64_t LogDropped = Log::droppedCount();
    std::string T =
        encodeTelemetry(Block, FlowId, Delta, Spans, Dropped - DroppedBase,
                        LogRecords, LogDropped - LogDroppedBase);
    DroppedBase = Dropped;
    LogDroppedBase = LogDropped;
    Baseline = Metrics::snapshot();
    return sendFrame(Fd, T).isOk();
  };
  for (;;) {
    StatusOr<std::string> FrameOr = recvFrame(Fd);
    if (!FrameOr)
      return 3;
    std::string_view In = *FrameOr;
    uint8_t Tag = 0;
    if (!getU8(In, Tag))
      return 4;
    if (Tag == 'Q') {
      // The shutdown flush: whatever accumulated since the last block
      // reply (for a worker that never served one, its whole life).
      uint8_t Telemetry = 0;
      if (getU8(In, Telemetry) && Telemetry &&
          !flushTelemetry(ShutdownFlushBlock, 0))
        return 9;
      return 0;
    }
    uint32_t Block = 0, DeadlineMs = 0;
    uint64_t MaxConcepts = 0, FlowId = 0;
    uint8_t Telemetry = 0;
    if (Tag != 'B' || !getU32(In, Block) || !getU64(In, MaxConcepts) ||
        !getU32(In, DeadlineMs) || !getU64(In, FlowId) ||
        !getU8(In, Telemetry) || Block >= M)
      return 4;

    std::string Reply;
    try {
      Budget B;
      if (MaxConcepts)
        B.MaxConcepts = MaxConcepts;
      if (DeadlineMs)
        B.TimeLimit = std::chrono::milliseconds(DeadlineMs);
      BudgetMeter WorkerMeter(B);
      BuildStop Stop = BuildStop::Complete;
      std::vector<BitVector> Intents;
      {
        // The worker leg of the dispatch -> compute -> merge flow arrow;
        // the supervisor stamped FlowId into the request.
        TraceSpan BlockSpan("shard-block", static_cast<int64_t>(Block));
        TraceLog::recordFlow(FlowId, 't');
        Intents = ParallelBuilder::blockIntentsBudgeted(
            Ctx, Block, TopIntent, WorkerMeter, Stop);
      }
      if (Status S = Failpoint::hit("shard-post-compute"); !S.isOk())
        Reply = encodeErrorReply(Block, S);
      else {
        Reply = encodeBlockReply(Block, Stop, M, Intents);
        if (Status S2 = Failpoint::hit("shard-pre-reply"); !S2.isOk())
          Reply = encodeErrorReply(Block, S2);
      }
    } catch (const std::bad_alloc &) {
      // blockIntentsBudgeted contains its own OOM (Memory stop); this
      // covers allocation failure while serializing the reply. The worker
      // reports instead of vanishing.
      Reply = encodeErrorReply(
          Block, Status::error(ErrorCode::ResourceExhausted,
                               "shard worker out of memory on block " +
                                   std::to_string(Block)));
    }
    if (!sendReplySplit(Fd, Reply))
      return 9;
    if (Telemetry && !flushTelemetry(Block, FlowId))
      return 9;
  }
}

// -- Supervisor ------------------------------------------------------------

using Clock = std::chrono::steady_clock;

struct WorkerSlot {
  Subprocess Proc;
  int Index = 0;  ///< Stable slot number; names the worker's trace track.
  int Block = -1; ///< Block in flight, -1 when idle.
  uint64_t FlowId = 0; ///< Flow id stamped on the in-flight dispatch.
  Metrics::Counter *BlocksServed = nullptr; ///< shard.worker-blocks.<index>.
  Clock::time_point Deadline{};
  Clock::time_point RespawnAt{};
  unsigned ConsecutiveFailures = 0;
  bool Alive = false;
  bool Retired = false; ///< Out of restart budget; never respawned.
};

/// Remaining whole milliseconds of the meter's deadline, clamped to
/// [1, u32max]; 0 = no deadline configured.
uint32_t remainingBudgetMs(const BudgetMeter &Meter) {
  const auto &Limit = Meter.budget().TimeLimit;
  if (!Limit)
    return 0;
  int64_t Left = Limit->count() - Meter.elapsed().count();
  if (Left <= 0)
    return 1; // Expired: workers see an already-dead deadline.
  return static_cast<uint32_t>(
      std::min<int64_t>(Left, std::numeric_limits<uint32_t>::max()));
}

class Supervisor {
public:
  Supervisor(const Context &Ctx, const BudgetMeter &Meter,
             const ShardOptions &Opts, const BitVector &TopIntent)
      : Ctx(Ctx), Meter(Meter), Opts(Opts), TopIntent(TopIntent),
        M(Ctx.numAttributes()), Blocks(M), Stops(M, BuildStop::Complete),
        State(M, BlockState::Pending), Attempts(M, 0),
        TelemetryOn(Metrics::enabled() || TraceLog::enabled() ||
                    Log::structuredEnabled()) {
    // Every closed intent contains closure(∅), so blocks whose minimum
    // attribute lies above min(closure(∅)) are provably empty: serial
    // NextClosure never probes there, and dispatching them would both
    // waste workers and tilt the closure-count conservation ledger.
    // Mark them Done up front.
    size_t MinTop = TopIntent.findFirst();
    size_t NumBlocks = MinTop == BitVector::npos ? M : MinTop + 1;
    for (size_t P = NumBlocks; P < M; ++P)
      State[P] = BlockState::Done;
    NumDone = M - NumBlocks;
    unsigned Workers =
        std::min<size_t>(Opts.NumWorkers, NumBlocks ? NumBlocks : 1);
    Slots.resize(std::max(1u, Workers));
    for (size_t I = 0; I < Slots.size(); ++I) {
      Slots[I].Index = static_cast<int>(I);
      Slots[I].BlocksServed =
          &Metrics::counter("shard.worker-blocks." + std::to_string(I));
    }
    WorkersGauge.set(static_cast<int64_t>(Slots.size()));
    WorkersGauge.addHighWater(0); // Raise the high-water to the new value.
    RestartBudget = static_cast<unsigned>(Slots.size()) *
                        (Opts.MaxRetries + 1) +
                    8;
  }

  /// Runs the supervision loop to completion. On return every block is
  /// Done (computed by a worker or inline) and all workers are shut down.
  void run() {
    TraceSpan Span("shard-supervise", static_cast<int64_t>(Slots.size()));
    for (size_t I = 0; I < Slots.size(); ++I)
      trySpawn(Slots[I], /*IsRestart=*/false);
    while (NumDone < M) {
      if (Meter.expired()) {
        // Deadline or cancel: take the worker group down and let the
        // inline path stamp Time stops on whatever remains (each inline
        // call sees the expired meter and returns immediately).
        shutdownWorkers();
        degradeRemaining();
        break;
      }
      respawnDueSlots();
      assignPending();
      if (!anyInFlight()) {
        if (!anyUsableSlot()) {
          // Every slot dead with no budget left: finish in-process.
          degradeRemaining();
          break;
        }
        if (NumDone < M && !anyAssignable()) {
          // Workers exist but all are backing off; wait out the nearest
          // respawn time rather than spinning.
          sleepUntilNextEvent();
        }
        continue;
      }
      pollInFlight();
      expireDeadlines();
    }
    shutdownWorkers();
  }

  std::vector<std::vector<BitVector>> takeBlocks() {
    return std::move(Blocks);
  }
  const std::vector<BuildStop> &stops() const { return Stops; }

private:
  enum class BlockState : uint8_t { Pending, InFlight, Done };

  const Context &Ctx;
  const BudgetMeter &Meter;
  const ShardOptions &Opts;
  const BitVector &TopIntent;
  size_t M;
  std::vector<std::vector<BitVector>> Blocks;
  std::vector<BuildStop> Stops;
  std::vector<BlockState> State;
  std::vector<unsigned> Attempts;
  std::vector<WorkerSlot> Slots;
  unsigned RestartBudget = 0;
  size_t NumDone = 0;
  /// Captured once at construction: whether 'B'/'Q' requests ask workers
  /// to flush telemetry. Workers inherit the armed substrate flags by
  /// fork, so the supervisor's view is authoritative for the whole build.
  bool TelemetryOn = false;

  /// Next block to hand out: highest pending minimum attribute, matching
  /// the canonical merge order so the merge's prefix completes earliest.
  int nextPending() const {
    for (size_t P = M; P > 0; --P)
      if (State[P - 1] == BlockState::Pending)
        return static_cast<int>(P - 1);
    return -1;
  }

  bool anyInFlight() const {
    for (const WorkerSlot &S : Slots)
      if (S.Alive && S.Block >= 0)
        return true;
    return false;
  }

  bool anyUsableSlot() const {
    for (const WorkerSlot &S : Slots)
      if (S.Alive || !S.Retired)
        return true;
    return false;
  }

  bool anyAssignable() const {
    for (const WorkerSlot &S : Slots)
      if (S.Alive && S.Block < 0)
        return true;
    return false;
  }

  std::vector<int> siblingFds(const WorkerSlot &Except) const {
    std::vector<int> Fds;
    for (const WorkerSlot &S : Slots)
      if (&S != &Except && S.Alive && S.Proc.fd() >= 0)
        Fds.push_back(S.Proc.fd());
    return Fds;
  }

  void trySpawn(WorkerSlot &Slot, bool IsRestart) {
    if (Slot.Retired)
      return;
    if (IsRestart) {
      if (RestartBudget == 0) {
        Slot.Retired = true;
        return;
      }
      --RestartBudget;
    }
    StatusOr<Subprocess> P = Subprocess::spawn(
        [this](int Fd) { return shardWorkerMain(Ctx, TopIntent, Fd); },
        siblingFds(Slot));
    if (!P) {
      // fork/socketpair failure: retire the slot; if every slot retires
      // the run loop degrades in-process.
      Slot.Retired = true;
      return;
    }
    Slot.Proc = std::move(*P);
    Slot.Alive = true;
    Slot.Block = -1;
    if (IsRestart) {
      WorkerRestarts.add();
      CABLE_LOG_INFO("shard", "shard-worker-respawn",
                     "worker slot respawned after a failure",
                     {Log::num("slot", Slot.Index),
                      Log::num("pid", Slot.Proc.pid())});
    }
  }

  void respawnDueSlots() {
    Clock::time_point Now = Clock::now();
    for (WorkerSlot &S : Slots)
      if (!S.Alive && !S.Retired && Now >= S.RespawnAt)
        trySpawn(S, /*IsRestart=*/true);
  }

  void assignPending() {
    for (WorkerSlot &S : Slots) {
      if (!S.Alive || S.Block >= 0)
        continue;
      int P = nextPending();
      if (P < 0)
        return;
      ++Attempts[P];
      uint64_t FlowId = NextFlowId.fetch_add(1, std::memory_order_relaxed);
      std::string Req = encodeBlockRequest(
          static_cast<uint32_t>(P), Meter.budget().MaxConcepts.value_or(0),
          remainingBudgetMs(Meter), FlowId, TelemetryOn);
      bool SendOk;
      {
        // The supervisor-side origin of the per-block flow arrow; the
        // 's' instant binds to this span on the supervisor track.
        TraceSpan Dispatch("shard-dispatch", static_cast<int64_t>(P));
        SendOk = sendFrame(S.Proc.fd(), Req).isOk();
        if (SendOk)
          TraceLog::recordFlow(FlowId, 's');
      }
      if (!SendOk) {
        // The worker died while idle; its socket is a dead letter box.
        --Attempts[P]; // The attempt never started.
        slotFailed(S, /*TimedOut=*/false);
        continue;
      }
      State[P] = BlockState::InFlight;
      S.Block = P;
      S.FlowId = FlowId;
      S.Deadline = Clock::now() + Opts.ShardTimeout;
      BlocksDispatched.add();
    }
  }

  /// Computes a block in the supervisor with the build's own meter — the
  /// per-block degradation rung, used when a block runs out of retries.
  void computeInline(size_t P) {
    DegradedBlocks.add();
    CABLE_LOG_WARN("shard", "shard-block-degraded",
                   "block out of retries; computing in the supervisor",
                   {Log::num("block", static_cast<int64_t>(P)),
                    Log::num("attempts", Attempts[P])});
    Blocks[P] = ParallelBuilder::blockIntentsBudgeted(Ctx, P, TopIntent,
                                                      Meter, Stops[P]);
    State[P] = BlockState::Done;
    ++NumDone;
  }

  void degradeRemaining() {
    for (size_t P = M; P > 0; --P)
      if (State[P - 1] != BlockState::Done)
        computeInline(P - 1);
  }

  /// A block attempt failed (crash, timeout, torn frame, error reply).
  /// Requeues it, or computes it inline once its retries are spent.
  void blockAttemptFailed(size_t P) {
    if (Attempts[P] >= Opts.MaxRetries + 1)
      computeInline(P);
    else
      State[P] = BlockState::Pending;
  }

  /// Attaches a crashed worker's flight-recorder dump to the run report
  /// (sharded.crash_dumps). Only dumps the worker actually wrote count:
  /// SIGKILLed and hung workers leave an empty pre-opened file, which is
  /// skipped, as is anything that fails JSON validation — a half-written
  /// dump must not corrupt the report.
  void collectWorkerDump(int Pid) {
    if (!CrashDump::installed())
      return;
    StatusOr<std::string> Doc =
        readFileToString(CrashDump::dumpPathForPid(Pid));
    if (!Doc || Doc->empty())
      return;
    while (!Doc->empty() && (Doc->back() == '\n' || Doc->back() == ' '))
      Doc->pop_back();
    std::string Err;
    if (Doc->empty() || !validateJson(*Doc, Err))
      return;
    addCollectedCrashDump(std::move(*Doc));
  }

  /// Kills and reaps a failed worker, reassigns its block, and schedules a
  /// backed-off respawn.
  void slotFailed(WorkerSlot &S, bool TimedOut) {
    int FailedBlock = S.Block;
    // wait() reaps the child and clears its pid; the log records and the
    // flight-recorder dump path both need the pid it died under.
    int FailedPid = static_cast<int>(S.Proc.pid());
    if (TimedOut) {
      ShardTimedOut.add();
      CABLE_LOG_WARN("shard", "shard-worker-hung",
                     "worker missed its shard deadline; killing it",
                     {Log::num("slot", S.Index), Log::num("pid", FailedPid),
                      Log::num("block", FailedBlock)});
    }
    if (S.Block >= 0) {
      ShardReassigned.add();
      // The in-flight attempt's flush dies with the worker: whatever it
      // counted toward this attempt is gone, and the ledger says so.
      if (TelemetryOn) {
        TelemetryLost.add();
        CABLE_LOG_WARN("shard", "shard-telemetry-lost",
                       "in-flight attempt's flush died with the worker",
                       {Log::num("slot", S.Index),
                        Log::num("block", FailedBlock)});
      }
      size_t P = static_cast<size_t>(S.Block);
      S.Block = -1;
      blockAttemptFailed(P);
    }
    S.Proc.kill();
    Subprocess::ExitStatus Exit = S.Proc.wait();
    if (Exit.Signaled || Exit.Code != 0) {
      WorkerCrashes.add();
      CABLE_LOG_WARN("shard", "shard-worker-crashed",
                     "worker died abnormally; containing the failure",
                     {Log::num("slot", S.Index), Log::num("pid", FailedPid),
                      Log::num("block", FailedBlock),
                      Log::str("cause", Exit.Signaled ? "signal" : "exit"),
                      Log::num("code", Exit.Code)});
      collectWorkerDump(FailedPid);
    }
    S.Proc.closeFd();
    S.Alive = false;
    unsigned Shift = std::min(S.ConsecutiveFailures, 6u);
    ++S.ConsecutiveFailures;
    S.RespawnAt = Clock::now() + Opts.RetryBackoff * (1u << Shift);
    if (RestartBudget == 0)
      S.Retired = true;
  }

  /// One worker produced a complete, CRC-valid frame; act on it. Returns
  /// true when the worker is still trusted (so a telemetry flush may
  /// follow on the same stream), false when it was failed and killed.
  bool handleReply(WorkerSlot &S, std::string_view Payload) {
    StatusOr<ShardReply> ReplyOr = decodeReply(Payload, M);
    if (!ReplyOr ||
        ReplyOr->Block != static_cast<uint32_t>(S.Block)) {
      // Structurally bad or misaddressed reply: treat the worker as
      // compromised — same path as a crash.
      FramesRejected.add();
      slotFailed(S, /*TimedOut=*/false);
      return false;
    }
    size_t P = static_cast<size_t>(S.Block);
    S.Block = -1;
    S.ConsecutiveFailures = 0;
    if (ReplyOr->Tag == 'E') {
      // The worker reported a failure but is itself healthy: retry
      // without a respawn.
      ErrorReplies.add();
      ShardRetries.add();
      blockAttemptFailed(P);
      return true;
    }
    {
      // Close this block's dispatch -> compute -> merge flow arrow on
      // the supervisor track.
      TraceSpan Merge("shard-merge", static_cast<int64_t>(P));
      TraceLog::recordFlow(S.FlowId, 'f');
      Blocks[P] = std::move(ReplyOr->Intents);
      Stops[P] = ReplyOr->Stop;
    }
    State[P] = BlockState::Done;
    ++NumDone;
    S.BlocksServed->add();
    return true;
  }

  /// Reads and merges the telemetry flush a worker sends right after a
  /// block reply. The block result (already accepted) is never rolled
  /// back: a bad or missing flush costs only the flush itself, counted
  /// on shard.telemetry-lost, and the worker is recycled like a crash.
  void readTelemetry(WorkerSlot &S) {
    int FrameMs = static_cast<int>(std::max<int64_t>(
        1, std::chrono::duration_cast<std::chrono::milliseconds>(
               S.Deadline - Clock::now())
               .count()));
    StatusOr<std::string> FrameOr = recvFrame(S.Proc.fd(), FrameMs);
    bool TimedOut =
        !FrameOr && FrameOr.status().code() == ErrorCode::ResourceExhausted;
    TelemetryRecord T;
    if (!FrameOr || !decodeTelemetry(*FrameOr, T)) {
      TelemetryLost.add();
      CABLE_LOG_WARN("shard", "shard-telemetry-lost",
                     "post-reply flush missing or torn",
                     {Log::num("slot", S.Index)});
      slotFailed(S, TimedOut);
      return;
    }
    mergeTelemetry(S, T);
  }

  /// Folds one decoded flush into the process-wide registry and trace:
  /// counters add, histograms merge bucket-wise, gauges keep the high
  /// water; spans land on a per-pid foreign track named after the slot.
  void mergeTelemetry(WorkerSlot &S, TelemetryRecord &T) {
    Metrics::mergeDelta(T.Delta);
    // Ingest even an empty flush: it registers the worker's pid track,
    // so the exported trace shows every spawned process — an idle
    // worker renders as an empty named track, not a gap.
    TraceLog::ingestRemote(S.Proc.pid(),
                           "shard-worker-" + std::to_string(S.Index),
                           std::move(T.Spans), T.DroppedDelta);
    Log::ingestRemote(static_cast<int>(S.Proc.pid()),
                      std::move(T.LogRecords), T.LogDroppedDelta);
    TelemetryMerged.add();
  }

  void pollInFlight() {
    std::vector<struct pollfd> Fds;
    std::vector<WorkerSlot *> FdSlots;
    Clock::time_point Now = Clock::now();
    Clock::time_point Nearest = Now + std::chrono::milliseconds(50);
    for (WorkerSlot &S : Slots) {
      if (S.Alive && S.Block >= 0) {
        Fds.push_back({S.Proc.fd(), POLLIN, 0});
        FdSlots.push_back(&S);
        Nearest = std::min(Nearest, S.Deadline);
      }
      if (!S.Alive && !S.Retired)
        Nearest = std::min(Nearest, S.RespawnAt);
    }
    if (Fds.empty())
      return;
    auto WaitMs = std::chrono::duration_cast<std::chrono::milliseconds>(
        Nearest - Now);
    int Timeout = static_cast<int>(std::max<int64_t>(0, WaitMs.count()));
    int Rc = ::poll(Fds.data(), Fds.size(), Timeout);
    if (Rc <= 0)
      return; // Timeout or EINTR; deadlines are handled by the caller.
    for (size_t I = 0; I < Fds.size(); ++I) {
      if (!(Fds[I].revents & (POLLIN | POLLHUP | POLLERR)))
        continue;
      WorkerSlot &S = *FdSlots[I];
      if (!S.Alive || S.Block < 0)
        continue; // A previous iteration already failed this slot.
      // Data (or EOF) is ready; bound the frame read by the shard
      // deadline so a worker that wedges mid-frame cannot stall the
      // supervisor past it.
      int FrameMs = static_cast<int>(std::max<int64_t>(
          1, std::chrono::duration_cast<std::chrono::milliseconds>(
                 S.Deadline - Clock::now())
                 .count()));
      StatusOr<std::string> FrameOr = recvFrame(S.Proc.fd(), FrameMs);
      if (!FrameOr) {
        // EOF, torn frame, corrupt frame, or a mid-frame wedge: all are
        // worker failures, distinguished only in metrics.
        bool TimedOut = FrameOr.status().code() == ErrorCode::ResourceExhausted;
        if (!TimedOut)
          FramesRejected.add();
        slotFailed(S, TimedOut);
        continue;
      }
      if (handleReply(S, *FrameOr) && TelemetryOn)
        readTelemetry(S);
    }
  }

  void expireDeadlines() {
    Clock::time_point Now = Clock::now();
    for (WorkerSlot &S : Slots)
      if (S.Alive && S.Block >= 0 && Now >= S.Deadline)
        slotFailed(S, /*TimedOut=*/true);
  }

  void sleepUntilNextEvent() {
    Clock::time_point Now = Clock::now();
    Clock::time_point Nearest = Now + std::chrono::milliseconds(50);
    for (const WorkerSlot &S : Slots)
      if (!S.Alive && !S.Retired)
        Nearest = std::min(Nearest, S.RespawnAt);
    if (Nearest > Now)
      std::this_thread::sleep_for(Nearest - Now);
  }

  void shutdownWorkers() {
    // Best-effort graceful quit so clean exits show up as such; a worker
    // that does not exit promptly is killed. Idle workers are blocked in
    // recvFrame, so 'Q' turns around fast. With telemetry armed the 'Q'
    // also requests a final flush, which the worker sends before exiting.
    for (WorkerSlot &S : Slots) {
      if (!S.Alive)
        continue;
      if (S.Block >= 0) {
        // Mid-block at shutdown (cancel or deadline): the next frame on
        // the wire would be the block reply, not a flush — skip the
        // handshake, write the attempt's telemetry off as lost, and put
        // the worker down hard.
        if (TelemetryOn) {
          TelemetryLost.add();
          CABLE_LOG_WARN("shard", "shard-telemetry-lost",
                         "worker still mid-block at shutdown",
                         {Log::num("slot", S.Index),
                          Log::num("block", S.Block)});
        }
        S.Block = -1;
        S.Proc.kill();
        S.Proc.wait();
        S.Proc.closeFd();
        S.Alive = false;
        continue;
      }
      std::string Quit(1, 'Q');
      putU8(Quit, TelemetryOn ? 1 : 0);
      bool Sent = sendFrame(S.Proc.fd(), Quit).isOk();
      if (!Sent)
        S.Proc.kill();
      if (Sent && TelemetryOn) {
        // The final-flush handshake: a worker that cannot produce it
        // within a second forfeits the flush, never the shutdown.
        StatusOr<std::string> FrameOr = recvFrame(S.Proc.fd(), 1000);
        TelemetryRecord T;
        if (FrameOr && decodeTelemetry(*FrameOr, T)) {
          mergeTelemetry(S, T);
        } else {
          TelemetryLost.add();
          CABLE_LOG_WARN("shard", "shard-telemetry-lost",
                         "final flush not produced within the grace period",
                         {Log::num("slot", S.Index)});
        }
      }
      if (Sent) {
        // Give it a beat, then force.
        for (int I = 0; I < 100 && S.Proc.running(); ++I) {
          if (S.Proc.tryWait())
            break;
          std::this_thread::sleep_for(std::chrono::milliseconds(2));
        }
        if (S.Proc.running())
          S.Proc.kill();
      }
      S.Proc.wait();
      S.Proc.closeFd();
      S.Alive = false;
    }
  }
};

} // namespace

LatticeBuildResult
ShardedBuilder::buildLatticeBudgeted(const Context &Ctx,
                                     const BudgetMeter &Meter,
                                     const ShardOptions &Opts) {
  if (Opts.NumWorkers == 0 || !Subprocess::forkSupported()) {
    // Sharding unavailable or not requested: the whole-build rung of the
    // degradation ladder.
    if (Opts.NumWorkers != 0) {
      DegradedBuilds.add();
      CABLE_LOG_WARN("shard", "shard-build-degraded",
                     "sharding unavailable; whole build runs in-process",
                     {Log::num("workers_requested",
                               static_cast<int64_t>(Opts.NumWorkers))});
    }
    return ParallelBuilder::buildLatticeBudgeted(Ctx, Meter, Opts.NumThreads);
  }

  Status Cells = checkContextCells(Ctx, Meter.budget());
  if (!Cells.isOk()) {
    LatticeBuildResult R;
    R.Lattice = finalizeTruncatedConcepts(Ctx, {}, DeadlineKeepCap);
    R.BuildStatus = std::move(Cells);
    R.Truncated = true;
    return R;
  }

  ShardBuilds.add();
  size_t M = Ctx.numAttributes();
  size_t Max = Meter.budget().MaxConcepts.value_or(SIZE_MAX);
  BitVector TopIntent = Ctx.closeIntent(BitVector(M));

  // Workers are forked while this process is still single-threaded (the
  // cover-computation pool below is created only after every worker has
  // exited), so children never inherit a held malloc or pool lock.
  std::vector<std::vector<BitVector>> BlockIntents;
  std::vector<BuildStop> BlockStops;
  if (M > 0) {
    Supervisor Sup(Ctx, Meter, Opts, TopIntent);
    Sup.run();
    BlockIntents = Sup.takeBlocks();
    BlockStops = Sup.stops();
  }

  try {
    // Canonical merge, identical to ParallelBuilder::allClosedIntentsBudgeted:
    // descending minimum attribute, cut at the global cap or the first
    // incomplete block. Everything kept is a lectic prefix.
    BuildStop Stop = BuildStop::Complete;
    std::vector<BitVector> Out;
    size_t Total = 1;
    for (const std::vector<BitVector> &B : BlockIntents)
      Total += B.size();
    Out.reserve(std::min(Total, Max));
    Out.push_back(std::move(TopIntent));
    for (size_t P = M; P > 0 && Stop == BuildStop::Complete; --P) {
      for (BitVector &Intent : BlockIntents[P - 1]) {
        if (Out.size() >= Max) {
          Stop = BuildStop::ConceptCap;
          break;
        }
        Out.push_back(std::move(Intent));
      }
      if (Stop == BuildStop::Complete &&
          BlockStops[P - 1] != BuildStop::Complete)
        Stop = BlockStops[P - 1];
    }

    // The supervisor's share of the ledger the in-process builders keep:
    // closure(∅) was computed once, above, in this process. Block-level
    // closures arrive through worker telemetry flushes (or the inline
    // degradation path), so a fault-free sharded build's merged
    // lattice.closures equals the serial builder's count exactly.
    NumClosures.add(1);
    NumConcepts.add(Out.size());

    if (Stop == BuildStop::Complete && Meter.expired())
      Stop = BuildStop::Time;
    if (Stop != BuildStop::Complete) {
      size_t NumEnumerated = Out.size();
      return makeTruncatedFromIntents(Ctx, std::move(Out), Stop, Meter,
                                      NumEnumerated);
    }

    LatticeBuildResult R;
    R.NumEnumerated = Out.size();
    ThreadPool Pool(ThreadPool::resolveThreadCount(Opts.NumThreads));
    R.Lattice = ParallelBuilder::assembleLattice(Ctx, Pool, std::move(Out));
    return R;
  } catch (const std::bad_alloc &) {
    // Same boundary containment as the in-process builders.
    Metrics::counter("lattice.oom-contained").add();
    LatticeBuildResult R;
    R.Truncated = true;
    R.BuildStatus =
        truncationStatus(BuildStop::Memory, Meter, "lattice construction");
    R.Lattice = finalizeTruncatedConcepts(Ctx, {}, DeadlineKeepCap);
    return R;
  }
}

ConceptLattice ShardedBuilder::buildLattice(const Context &Ctx,
                                            const ShardOptions &Opts) {
  BudgetMeter Meter{Budget{}};
  return buildLatticeBudgeted(Ctx, Meter, Opts).Lattice;
}
