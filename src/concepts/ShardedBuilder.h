//===- concepts/ShardedBuilder.h - Multi-process construction ---*- C++ -*-===//
//
// Part of the Cable reproduction of "Debugging Temporal Specifications with
// Concept Analysis" (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Crash-isolated lattice construction: ParallelBuilder's lectic-prefix
/// partition lifted across OS processes. A supervisor in the parent forks
/// N shard workers (which inherit the read-only Context through fork, so
/// nothing large crosses the wire), hands each worker one block at a time
/// over a CRC-framed socketpair protocol (see Subprocess.h / FORMATS.md,
/// "Shard wire protocol"), and merges the returned intent shards with the
/// same canonical descending-minimum merge ParallelBuilder uses — so the
/// result is bit-for-bit identical to serial NextClosure at any worker
/// count.
///
/// The robustness contract: a worker that crashes (SIGSEGV, SIGKILL,
/// nonzero exit), wedges past its per-shard deadline, or returns a torn or
/// corrupt frame never aborts the build. Its block is reassigned under a
/// bounded retry budget with exponential respawn backoff; when the budget
/// runs out — or forking is unavailable — construction degrades to the
/// in-process path (whole-build ParallelBuilder fallback, or per-block
/// inline computation), which preserves the determinism guarantee.
///
/// BudgetMeter limits propagate into workers: MaxConcepts caps each block
/// exactly as in ParallelBuilder (so a ConceptCap truncation is identical
/// at every worker count), the remaining deadline rides in each block
/// request, and a cancel kills the worker group.
///
/// Worker-lifecycle failpoints (`shard-pre-fork`, `shard-post-compute`,
/// `shard-pre-reply`, `shard-mid-frame`) fire in the worker process only;
/// the kill matrix drives every supervisor recovery path through them.
/// Supervision is surfaced through `shard.*` metrics, and when
/// observability is armed the workers themselves are not blind spots:
/// each block reply (and a final shutdown handshake) carries a telemetry
/// flush — metric deltas, trace spans, ring-drop counts — that the
/// supervisor merges into the process-wide registry and trace, stitching
/// worker activity onto the supervisor's timeline as per-process tracks
/// with dispatch -> compute -> merge flow arrows. Telemetry is
/// best-effort: a worker that dies mid-interval loses only that
/// interval, the loss ticks `shard.telemetry-lost`, and the lattice
/// result is unaffected. Fault-free, merged counters equal a serial
/// build's exactly. (See docs/OBSERVABILITY.md, "Multi-process
/// observability".)
///
//===----------------------------------------------------------------------===//

#ifndef CABLE_CONCEPTS_SHARDEDBUILDER_H
#define CABLE_CONCEPTS_SHARDEDBUILDER_H

#include "concepts/BuildResult.h"
#include "concepts/Lattice.h"

#include <chrono>

namespace cable {

/// Supervisor knobs. Defaults match the `--shard-*` tool flags.
struct ShardOptions {
  /// Worker processes to fork. 0 disables sharding entirely (the caller
  /// should use ParallelBuilder); the supervisor clamps to the number of
  /// partition blocks.
  unsigned NumWorkers = 0;

  /// Per-shard deadline: how long one worker may hold one block before the
  /// supervisor declares it wedged, SIGKILLs it, and reassigns the block.
  std::chrono::milliseconds ShardTimeout{30000};

  /// Retries per block beyond the first attempt. Once a block has failed
  /// 1 + MaxRetries times it is computed inline in the supervisor.
  unsigned MaxRetries = 3;

  /// Base respawn backoff after a worker death; doubles per consecutive
  /// failure of the same worker slot (capped at 64x).
  std::chrono::milliseconds RetryBackoff{10};

  /// Threads for the in-process phases (cover computation, and the
  /// whole-build fallback). Same semantics as ParallelBuilder.
  unsigned NumThreads = 0;
};

/// Multi-process batch construction with a supervising parent.
class ShardedBuilder {
public:
  /// Builds the full concept lattice of \p Ctx with Opts.NumWorkers shard
  /// worker processes. Bit-for-bit identical to
  /// NextClosureBuilder::buildLattice regardless of worker count or
  /// injected worker failures.
  static ConceptLattice buildLattice(const Context &Ctx,
                                     const ShardOptions &Opts);

  /// Budgeted construction with the same truncation semantics as
  /// ParallelBuilder::buildLatticeBudgeted: a MaxConcepts cut is exact and
  /// identical at every worker count; deadline/cancel cuts keep a clean
  /// lectic prefix. Worker failures consume the retry budget, never the
  /// build.
  static LatticeBuildResult buildLatticeBudgeted(const Context &Ctx,
                                                 const BudgetMeter &Meter,
                                                 const ShardOptions &Opts);
};

} // namespace cable

#endif // CABLE_CONCEPTS_SHARDEDBUILDER_H
