//===- concepts/LindigBuilder.cpp - Neighbor-based construction -----------===//
//
// Part of the Cable reproduction of "Debugging Temporal Specifications with
// Concept Analysis" (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//

#include "concepts/LindigBuilder.h"

#include "support/Metrics.h"
#include "support/TraceEvent.h"

#include <cassert>
#include <deque>
#include <unordered_map>

using namespace cable;

namespace {

Metrics::Counter &NumClosures = Metrics::counter("lattice.closures");
Metrics::Counter &NumConcepts = Metrics::counter("lattice.concepts");

} // namespace

std::vector<BitVector>
LindigBuilder::upperNeighborExtents(const Context &Ctx,
                                    const BitVector &Extent,
                                    const BudgetMeter *Meter) {
  assert(Ctx.closeExtent(Extent) == Extent && "extent must be closed");
  size_t N = Ctx.numObjects();

  // Lindig's neighbors algorithm: try every object g outside the extent
  // as a generator; closure(Extent ∪ {g}) is an upper *neighbor* iff no
  // previously disqualified generator sneaks into the closure alongside g.
  BitVector Min(N);
  for (size_t G = 0; G < N; ++G)
    if (!Extent.test(G))
      Min.set(G);

  std::vector<BitVector> Out;
  uint64_t LocalClosures = 0;
  // Candidate scratch reused across generators: a disqualified generator
  // (the common case) performs no allocation.
  BitVector Gen(N), Closed(N), Extra(N), AttrScratch(Ctx.numAttributes());
  for (size_t G = 0; G < N; ++G) {
    if (Extent.test(G))
      continue;
    if (Meter && Meter->expired()) {
      NumClosures.add(LocalClosures);
      return Out;
    }
    Gen = Extent;
    Gen.set(G);
    Ctx.closeExtentInto(Gen, AttrScratch, Closed);
    ++LocalClosures;
    // Extra = Closed \ Extent \ {g}.
    Extra = Closed;
    Extra.andNot(Extent);
    Extra.reset(G);
    if (!Extra.intersects(Min)) {
      // Deduplicate: several minimal generators may produce one neighbor.
      bool Seen = false;
      for (const BitVector &Existing : Out)
        if (Existing == Closed) {
          Seen = true;
          break;
        }
      if (!Seen)
        // Copy, not move: Closed stays live as next iteration's scratch.
        Out.push_back(Closed);
    } else {
      Min.reset(G);
    }
  }
  NumClosures.add(LocalClosures);
  return Out;
}

ConceptLattice LindigBuilder::buildLattice(const Context &Ctx) {
  TraceSpan Span("lindig-build");
  std::vector<Concept> Concepts;
  std::vector<std::pair<ConceptLattice::NodeId, ConceptLattice::NodeId>>
      Covers;
  std::unordered_map<BitVector, ConceptLattice::NodeId, BitVectorHash> Ids;

  auto GetId = [&](const BitVector &Extent) {
    auto It = Ids.find(Extent);
    if (It != Ids.end())
      return std::make_pair(It->second, false);
    ConceptLattice::NodeId Id =
        static_cast<ConceptLattice::NodeId>(Concepts.size());
    Concept C;
    C.Extent = Extent;
    C.Intent = Ctx.sigma(Extent);
    Concepts.push_back(std::move(C));
    Ids.emplace(Extent, Id);
    return std::make_pair(Id, true);
  };

  // Start at the bottom concept and climb.
  BitVector Bottom = Ctx.closeExtent(BitVector(Ctx.numObjects()));
  std::deque<ConceptLattice::NodeId> Worklist;
  Worklist.push_back(GetId(Bottom).first);

  while (!Worklist.empty()) {
    ConceptLattice::NodeId Id = Worklist.front();
    Worklist.pop_front();
    // Copy the extent: Concepts may reallocate while neighbors are added.
    BitVector Extent = Concepts[Id].Extent;
    for (BitVector &Neighbor : upperNeighborExtents(Ctx, Extent)) {
      auto [ParentId, IsNew] = GetId(Neighbor);
      Covers.emplace_back(ParentId, Id);
      if (IsNew)
        Worklist.push_back(ParentId);
    }
  }
  NumConcepts.add(Concepts.size());
  return ConceptLattice::fromConceptsAndCovers(std::move(Concepts), Covers);
}

LatticeBuildResult
LindigBuilder::buildLatticeBudgeted(const Context &Ctx,
                                    const BudgetMeter &Meter) {
  Status Cells = checkContextCells(Ctx, Meter.budget());
  if (!Cells.isOk()) {
    LatticeBuildResult R;
    R.Lattice = finalizeTruncatedConcepts(Ctx, {}, DeadlineKeepCap);
    R.BuildStatus = std::move(Cells);
    R.Truncated = true;
    return R;
  }

  TraceSpan Span("lindig-build");
  size_t Max = Meter.budget().MaxConcepts.value_or(SIZE_MAX);
  std::vector<Concept> Concepts;
  std::vector<std::pair<ConceptLattice::NodeId, ConceptLattice::NodeId>>
      Covers;
  std::unordered_map<BitVector, ConceptLattice::NodeId, BitVectorHash> Ids;

  // As GetId in buildLattice, but refuses to create concept Max + 1: the
  // nullopt return proves more concepts exist, making Truncated exact.
  auto GetId = [&](const BitVector &Extent)
      -> std::optional<std::pair<ConceptLattice::NodeId, bool>> {
    auto It = Ids.find(Extent);
    if (It != Ids.end())
      return std::make_pair(It->second, false);
    if (Concepts.size() >= Max)
      return std::nullopt;
    ConceptLattice::NodeId Id =
        static_cast<ConceptLattice::NodeId>(Concepts.size());
    Concept C;
    C.Extent = Extent;
    C.Intent = Ctx.sigma(Extent);
    Concepts.push_back(std::move(C));
    Ids.emplace(Extent, Id);
    return std::make_pair(Id, true);
  };

  BuildStop Stop = BuildStop::Complete;
  BitVector Bottom = Ctx.closeExtent(BitVector(Ctx.numObjects()));
  std::deque<ConceptLattice::NodeId> Worklist;
  if (auto First = GetId(Bottom))
    Worklist.push_back(First->first);
  else
    Stop = BuildStop::ConceptCap; // MaxConcepts == 0.

  while (!Worklist.empty()) {
    if (Meter.expired()) {
      Stop = BuildStop::Time;
      break;
    }
    ConceptLattice::NodeId Id = Worklist.front();
    Worklist.pop_front();
    BitVector Extent = Concepts[Id].Extent;
    for (BitVector &Neighbor : upperNeighborExtents(Ctx, Extent, &Meter)) {
      auto Parent = GetId(Neighbor);
      if (!Parent) {
        Stop = BuildStop::ConceptCap;
        break;
      }
      Covers.emplace_back(Parent->first, Id);
      if (Parent->second)
        Worklist.push_back(Parent->first);
    }
    if (Stop != BuildStop::Complete)
      break;
    // upperNeighborExtents may have returned early on expiry, leaving
    // this node's cover list incomplete; catch that before trusting it.
    if (Meter.expired()) {
      Stop = BuildStop::Time;
      break;
    }
  }

  LatticeBuildResult R;
  R.NumEnumerated = Concepts.size();
  NumConcepts.add(Concepts.size());
  if (Stop == BuildStop::Complete) {
    R.Lattice =
        ConceptLattice::fromConceptsAndCovers(std::move(Concepts), Covers);
    return R;
  }
  R.Truncated = true;
  R.BuildStatus = truncationStatus(Stop, Meter, "lattice construction");
  size_t Cap = Stop == BuildStop::Time ? DeadlineKeepCap : SIZE_MAX;
  // The native cover edges reference dropped neighbors; discard them and
  // let the truncated epilogue recompute covers over the retained subset.
  R.Lattice = finalizeTruncatedConcepts(Ctx, std::move(Concepts), Cap);
  return R;
}
