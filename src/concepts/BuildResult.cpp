//===- concepts/BuildResult.cpp - Budgeted construction results -----------===//
//
// Part of the Cable reproduction of "Debugging Temporal Specifications with
// Concept Analysis" (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//

#include "concepts/BuildResult.h"

#include <algorithm>
#include <numeric>
#include <unordered_set>

using namespace cable;

ConceptLattice cable::finalizeTruncatedConcepts(const Context &Ctx,
                                                std::vector<Concept> Concepts,
                                                size_t Cap) {
  // Keep the Cap most general concepts (largest extents). Deterministic:
  // stable sort by descending extent cardinality, then restore the input's
  // relative order among the survivors.
  if (Concepts.size() > Cap) {
    std::vector<size_t> Idx(Concepts.size());
    std::iota(Idx.begin(), Idx.end(), 0);
    std::vector<size_t> Card(Concepts.size());
    for (size_t I = 0; I < Concepts.size(); ++I)
      Card[I] = Concepts[I].Extent.count();
    std::stable_sort(Idx.begin(), Idx.end(),
                     [&](size_t A, size_t B) { return Card[A] > Card[B]; });
    Idx.resize(Cap);
    std::sort(Idx.begin(), Idx.end());
    std::vector<Concept> Keep;
    Keep.reserve(Cap);
    for (size_t I : Idx)
      Keep.push_back(std::move(Concepts[I]));
    Concepts = std::move(Keep);
  }

  std::unordered_set<BitVector, BitVectorHash> Extents;
  for (const Concept &C : Concepts)
    Extents.insert(C.Extent);

  // The top concept: extent = all objects (tau(sigma(G)) ⊇ G).
  BitVector AllObjects(Ctx.numObjects());
  AllObjects.setAll();
  if (!Extents.count(AllObjects)) {
    Concept Top;
    Top.Extent = AllObjects;
    Top.Intent = Ctx.sigma(AllObjects);
    Extents.insert(Top.Extent);
    Concepts.insert(Concepts.begin(), std::move(Top));
  }

  // The bottom concept: extent = tau(M), a subset of every extent because
  // tau is antitone. Its presence gives the partial order a unique minimum.
  BitVector AllAttributes(Ctx.numAttributes());
  AllAttributes.setAll();
  BitVector BottomExtent = Ctx.tau(AllAttributes);
  if (!Extents.count(BottomExtent)) {
    Concept Bottom;
    Bottom.Intent = Ctx.sigma(BottomExtent);
    Bottom.Extent = std::move(BottomExtent);
    Concepts.push_back(std::move(Bottom));
  }

  return ConceptLattice::fromConcepts(std::move(Concepts));
}

Status cable::truncationStatus(BuildStop Stop, const BudgetMeter &Meter,
                               const char *What) {
  if (Stop == BuildStop::Time)
    return Meter.stopStatus(What);
  if (Stop == BuildStop::Memory)
    return Status::error(ErrorCode::ResourceExhausted,
                         std::string(What) +
                             " ran out of memory (allocation failure "
                             "contained; a partial prefix was kept)");
  size_t Max = Meter.budget().MaxConcepts.value_or(0);
  return Status::error(ErrorCode::ResourceExhausted,
                       std::string(What) + " exceeded the concept budget (" +
                           std::to_string(Max) + " concepts)");
}

Status cable::checkContextCells(const Context &Ctx, const Budget &B) {
  if (!B.MaxContextCells)
    return Status::ok();
  size_t Cells = Ctx.numObjects() * Ctx.numAttributes();
  if (Cells <= *B.MaxContextCells)
    return Status::ok();
  return Status::error(ErrorCode::ResourceExhausted,
                       "context has " + std::to_string(Cells) +
                           " cells (" + std::to_string(Ctx.numObjects()) +
                           " objects x " +
                           std::to_string(Ctx.numAttributes()) +
                           " attributes), exceeding the budget of " +
                           std::to_string(*B.MaxContextCells));
}

LatticeBuildResult
cable::makeTruncatedFromIntents(const Context &Ctx,
                                std::vector<BitVector> Intents,
                                BuildStop Stop, const BudgetMeter &Meter,
                                size_t NumEnumerated) {
  LatticeBuildResult R;
  R.Truncated = true;
  R.NumEnumerated = NumEnumerated;
  R.BuildStatus = truncationStatus(Stop, Meter, "lattice construction");
  // Memory cuts are capped like deadline cuts: the enumerated prefix can
  // be the very allocation pressure that triggered containment, and the
  // quadratic cover computation must not re-trip it.
  size_t Cap = Stop == BuildStop::Time || Stop == BuildStop::Memory
                   ? DeadlineKeepCap
                   : SIZE_MAX;
  // Drop past the cap before deriving extents: the lectic prefix starts at
  // the top concept, so the front is already the most general slice.
  if (Intents.size() > Cap)
    Intents.resize(Cap);
  std::vector<Concept> Concepts;
  Concepts.reserve(Intents.size());
  for (BitVector &Intent : Intents) {
    Concept C;
    C.Extent = Ctx.tau(Intent);
    C.Intent = std::move(Intent);
    Concepts.push_back(std::move(C));
  }
  R.Lattice = finalizeTruncatedConcepts(Ctx, std::move(Concepts), Cap);
  return R;
}
