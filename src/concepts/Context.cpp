//===- concepts/Context.cpp - Formal contexts ------------------------------===//
//
// Part of the Cable reproduction of "Debugging Temporal Specifications with
// Concept Analysis" (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//

#include "concepts/Context.h"

#include "support/Metrics.h"
#include "support/simd/Kernels.h"

#include <bit>
#include <cassert>
#include <cstdio>
#include <unordered_map>

using namespace cable;

namespace {

// Fused-derivation call volume, split by operator. One flush per call;
// the disarmed cost is a single relaxed load (see support/Metrics.h).
Metrics::Counter &NumSigma = Metrics::counter("context.sigma-calls");
Metrics::Counter &NumTau = Metrics::counter("context.tau-calls");

/// Register-resident closure for one-word intents (RowStride == 1) and a
/// compile-time column stride CS: the whole extent lives in CS registers
/// and the intermediate never round-trips through memory. This is the
/// regime of every workload in the paper (attributes = FA transitions
/// fit one word; objects = traces fit CS*64), where the generic batched
/// path's gather/dispatch overhead would rival the ANDs themselves.
///
/// closeIntent: Sel is the (one-word) attribute selector; Extent/Out are
/// CS and 1 words respectively.
template <size_t CS>
void closeIntent1xN(const uint64_t *RowArena, const uint64_t *ColArena,
                    uint64_t SelAttrs, uint64_t ObjTailMask,
                    uint64_t AttrTailMask, uint64_t *ExtentOut,
                    uint64_t *IntentOut) {
  uint64_t Ext[CS];
  for (size_t I = 0; I + 1 < CS; ++I)
    Ext[I] = ~uint64_t(0);
  Ext[CS - 1] = ObjTailMask; // tau(∅) = all objects
  while (SelAttrs != 0) {
    const uint64_t *Col =
        ColArena + static_cast<size_t>(std::countr_zero(SelAttrs)) * CS;
    SelAttrs &= SelAttrs - 1;
    for (size_t I = 0; I < CS; ++I)
      Ext[I] &= Col[I];
  }
  uint64_t Intent = AttrTailMask; // sigma(∅) = all attributes
  for (size_t W = 0; W < CS; ++W) {
    uint64_t Bits = Ext[W];
    const uint64_t *Base = RowArena + W * 64;
    while (Bits != 0) {
      Intent &= Base[static_cast<size_t>(std::countr_zero(Bits))];
      Bits &= Bits - 1;
    }
    ExtentOut[W] = Ext[W];
  }
  *IntentOut = Intent;
}

/// closeExtent counterpart: SelObjects spans CS words, the intermediate
/// intent is one register, and the closed extent is folded back into CS
/// registers.
template <size_t CS>
void closeExtent1xN(const uint64_t *RowArena, const uint64_t *ColArena,
                    const uint64_t *SelObjects, uint64_t ObjTailMask,
                    uint64_t AttrTailMask, uint64_t *IntentOut,
                    uint64_t *ExtentOut) {
  uint64_t Intent = AttrTailMask;
  for (size_t W = 0; W < CS; ++W) {
    uint64_t Bits = SelObjects[W];
    const uint64_t *Base = RowArena + W * 64;
    while (Bits != 0) {
      Intent &= Base[static_cast<size_t>(std::countr_zero(Bits))];
      Bits &= Bits - 1;
    }
  }
  *IntentOut = Intent;
  uint64_t Ext[CS];
  for (size_t I = 0; I + 1 < CS; ++I)
    Ext[I] = ~uint64_t(0);
  Ext[CS - 1] = ObjTailMask;
  while (Intent != 0) {
    const uint64_t *Col =
        ColArena + static_cast<size_t>(std::countr_zero(Intent)) * CS;
    Intent &= Intent - 1;
    for (size_t I = 0; I < CS; ++I)
      Ext[I] &= Col[I];
  }
  for (size_t I = 0; I < CS; ++I)
    ExtentOut[I] = Ext[I];
}

} // namespace

Context::Context(size_t NumObjects, size_t NumAttributes)
    : NObj(NumObjects), NAttr(NumAttributes),
      RowStride((NumAttributes + 63) / 64), ColStride((NumObjects + 63) / 64),
      RowArena(NumObjects * RowStride, 0), ColArena(NumAttributes * ColStride, 0),
      ObjectRows(NumObjects, BitVector(NumAttributes)),
      AttributeColsRef(NumAttributes, BitVector(NumObjects)) {}

void Context::relate(size_t Obj, size_t Attr) {
  assert(Obj < numObjects() && Attr < numAttributes() && "index out of range");
  RowArena[Obj * RowStride + Attr / 64] |= uint64_t(1) << (Attr % 64);
  ColArena[Attr * ColStride + Obj / 64] |= uint64_t(1) << (Obj % 64);
  ObjectRows[Obj].set(Attr);
  AttributeColsRef[Attr].set(Obj);
}

bool Context::related(size_t Obj, size_t Attr) const {
  assert(Obj < numObjects() && Attr < numAttributes() && "index out of range");
  return (RowArena[Obj * RowStride + Attr / 64] >> (Attr % 64)) & 1;
}

BitVector Context::sigmaReference(const BitVector &Objects) const {
  assert(Objects.size() == numObjects() && "object universe mismatch");
  BitVector Out(numAttributes());
  Out.setAll();
  for (size_t O : Objects)
    Out &= ObjectRows[O];
  return Out;
}

BitVector Context::tauReference(const BitVector &Attrs) const {
  assert(Attrs.size() == numAttributes() && "attribute universe mismatch");
  BitVector Out(numObjects());
  Out.setAll();
  for (size_t A : Attrs)
    Out &= AttributeColsRef[A];
  return Out;
}

void Context::sigmaInto(const BitVector &Objects, BitVector &Out) const {
  assert(Objects.size() == numObjects() && "object universe mismatch");
  assert(Out.size() == numAttributes() && "output universe mismatch");
  NumSigma.add();
  Out.setAll();
  if (UseReferencePaths) {
    for (size_t O : Objects)
      Out &= ObjectRows[O];
    return;
  }
  simd::andSelectInto(Out.words(), RowArena.data(), RowStride,
                      Objects.words(), Objects.numWords(), Out.numWords());
  assert(Out.tailIsClean());
}

void Context::tauInto(const BitVector &Attrs, BitVector &Out) const {
  assert(Attrs.size() == numAttributes() && "attribute universe mismatch");
  assert(Out.size() == numObjects() && "output universe mismatch");
  NumTau.add();
  Out.setAll();
  if (UseReferencePaths) {
    for (size_t A : Attrs)
      Out &= AttributeColsRef[A];
    return;
  }
  simd::andSelectInto(Out.words(), ColArena.data(), ColStride, Attrs.words(),
                      Attrs.numWords(), Out.numWords());
  assert(Out.tailIsClean());
}

BitVector Context::sigma(const BitVector &Objects) const {
  BitVector Out(numAttributes());
  sigmaInto(Objects, Out);
  return Out;
}

BitVector Context::tau(const BitVector &Attrs) const {
  BitVector Out(numObjects());
  tauInto(Attrs, Out);
  return Out;
}

BitVector Context::closeExtent(const BitVector &Objects) const {
  BitVector AttrScratch(numAttributes());
  BitVector Out(numObjects());
  closeExtentInto(Objects, AttrScratch, Out);
  return Out;
}

BitVector Context::closeIntent(const BitVector &Attrs) const {
  BitVector ObjScratch(numObjects());
  BitVector Out(numAttributes());
  closeIntentInto(Attrs, ObjScratch, Out);
  return Out;
}

void Context::closeIntentInto(const BitVector &Attrs, BitVector &ObjScratch,
                              BitVector &Out) const {
  // Contexts whose attributes fit one word (the paper's regime: attributes
  // are FA transitions) and whose objects fit eight run the whole closure
  // in registers; the switch picks a fully unrolled column stride.
  if (!UseReferencePaths && RowStride == 1 && ColStride >= 1 &&
      ColStride <= 8) {
    assert(Attrs.size() == NAttr && Out.size() == NAttr &&
           ObjScratch.size() == NObj && "universe mismatch");
    NumTau.add();
    NumSigma.add();
    uint64_t Sel = Attrs.words()[0];
    uint64_t ObjMask = ObjScratch.tailMask(), AttrMask = Out.tailMask();
    uint64_t *Ext = ObjScratch.words(), *Int = Out.words();
    switch (ColStride) {
    case 1:
      closeIntent1xN<1>(RowArena.data(), ColArena.data(), Sel, ObjMask,
                        AttrMask, Ext, Int);
      break;
    case 2:
      closeIntent1xN<2>(RowArena.data(), ColArena.data(), Sel, ObjMask,
                        AttrMask, Ext, Int);
      break;
    case 3:
      closeIntent1xN<3>(RowArena.data(), ColArena.data(), Sel, ObjMask,
                        AttrMask, Ext, Int);
      break;
    case 4:
      closeIntent1xN<4>(RowArena.data(), ColArena.data(), Sel, ObjMask,
                        AttrMask, Ext, Int);
      break;
    case 5:
      closeIntent1xN<5>(RowArena.data(), ColArena.data(), Sel, ObjMask,
                        AttrMask, Ext, Int);
      break;
    case 6:
      closeIntent1xN<6>(RowArena.data(), ColArena.data(), Sel, ObjMask,
                        AttrMask, Ext, Int);
      break;
    case 7:
      closeIntent1xN<7>(RowArena.data(), ColArena.data(), Sel, ObjMask,
                        AttrMask, Ext, Int);
      break;
    case 8:
      closeIntent1xN<8>(RowArena.data(), ColArena.data(), Sel, ObjMask,
                        AttrMask, Ext, Int);
      break;
    }
    assert(Out.tailIsClean() && ObjScratch.tailIsClean());
    return;
  }
  tauInto(Attrs, ObjScratch);
  sigmaInto(ObjScratch, Out);
}

void Context::closeExtentInto(const BitVector &Objects, BitVector &AttrScratch,
                              BitVector &Out) const {
  if (!UseReferencePaths && RowStride == 1 && ColStride >= 1 &&
      ColStride <= 8) {
    assert(Objects.size() == NObj && Out.size() == NObj &&
           AttrScratch.size() == NAttr && "universe mismatch");
    NumSigma.add();
    NumTau.add();
    const uint64_t *Sel = Objects.words();
    uint64_t ObjMask = Out.tailMask(), AttrMask = AttrScratch.tailMask();
    uint64_t *Int = AttrScratch.words(), *Ext = Out.words();
    switch (ColStride) {
    case 1:
      closeExtent1xN<1>(RowArena.data(), ColArena.data(), Sel, ObjMask,
                        AttrMask, Int, Ext);
      break;
    case 2:
      closeExtent1xN<2>(RowArena.data(), ColArena.data(), Sel, ObjMask,
                        AttrMask, Int, Ext);
      break;
    case 3:
      closeExtent1xN<3>(RowArena.data(), ColArena.data(), Sel, ObjMask,
                        AttrMask, Int, Ext);
      break;
    case 4:
      closeExtent1xN<4>(RowArena.data(), ColArena.data(), Sel, ObjMask,
                        AttrMask, Int, Ext);
      break;
    case 5:
      closeExtent1xN<5>(RowArena.data(), ColArena.data(), Sel, ObjMask,
                        AttrMask, Int, Ext);
      break;
    case 6:
      closeExtent1xN<6>(RowArena.data(), ColArena.data(), Sel, ObjMask,
                        AttrMask, Int, Ext);
      break;
    case 7:
      closeExtent1xN<7>(RowArena.data(), ColArena.data(), Sel, ObjMask,
                        AttrMask, Int, Ext);
      break;
    case 8:
      closeExtent1xN<8>(RowArena.data(), ColArena.data(), Sel, ObjMask,
                        AttrMask, Int, Ext);
      break;
    }
    assert(Out.tailIsClean() && AttrScratch.tailIsClean());
    return;
  }
  sigmaInto(Objects, AttrScratch);
  tauInto(AttrScratch, Out);
}

std::string Context::contentHash() const {
  // FNV-1a 64 over a canonical little-endian byte stream. Deliberately a
  // plain scalar loop: the digest keys the artifact store, so it must not
  // depend on the simd dispatch level or any parallel decomposition.
  uint64_t H = 1469598103934665603ULL;
  auto Mix = [&H](uint64_t W) {
    for (int B = 0; B < 8; ++B) {
      H ^= (W >> (8 * B)) & 0xffu;
      H *= 1099511628211ULL;
    }
  };
  Mix(NObj);
  Mix(NAttr);
  for (size_t O = 0; O < NObj; ++O)
    for (size_t W = 0; W < RowStride; ++W)
      Mix(RowArena[O * RowStride + W]);
  char Hex[17];
  std::snprintf(Hex, sizeof(Hex), "%016llx",
                static_cast<unsigned long long>(H));
  return std::string(Hex, 16);
}

Context Context::clarified(std::vector<size_t> *ObjectMap,
                           std::vector<size_t> *AttributeMap) const {
  // Dedup object rows.
  std::unordered_map<BitVector, size_t, BitVectorHash> RowIds;
  std::vector<size_t> ObjOf(numObjects());
  std::vector<const BitVector *> Rows;
  for (size_t O = 0; O < numObjects(); ++O) {
    auto [It, Inserted] = RowIds.emplace(ObjectRows[O], Rows.size());
    if (Inserted)
      Rows.push_back(&ObjectRows[O]);
    ObjOf[O] = It->second;
  }
  // Dedup attribute columns.
  std::unordered_map<BitVector, size_t, BitVectorHash> ColIds;
  std::vector<size_t> AttrOf(numAttributes());
  std::vector<size_t> ColRep;
  for (size_t A = 0; A < numAttributes(); ++A) {
    auto [It, Inserted] = ColIds.emplace(AttributeColsRef[A], ColRep.size());
    if (Inserted)
      ColRep.push_back(A);
    AttrOf[A] = It->second;
  }

  Context Out(Rows.size(), ColRep.size());
  for (size_t O = 0; O < numObjects(); ++O)
    for (size_t A : ObjectRows[O])
      if (!Out.related(ObjOf[O], AttrOf[A]))
        Out.relate(ObjOf[O], AttrOf[A]);
  if (ObjectMap)
    *ObjectMap = std::move(ObjOf);
  if (AttributeMap)
    *AttributeMap = std::move(AttrOf);
  return Out;
}
