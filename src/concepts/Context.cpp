//===- concepts/Context.cpp - Formal contexts ------------------------------===//
//
// Part of the Cable reproduction of "Debugging Temporal Specifications with
// Concept Analysis" (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//

#include "concepts/Context.h"

#include <cassert>
#include <unordered_map>

using namespace cable;

Context::Context(size_t NumObjects, size_t NumAttributes)
    : ObjectRows(NumObjects, BitVector(NumAttributes)),
      AttributeCols(NumAttributes, BitVector(NumObjects)) {}

void Context::relate(size_t Obj, size_t Attr) {
  assert(Obj < numObjects() && Attr < numAttributes() && "index out of range");
  ObjectRows[Obj].set(Attr);
  AttributeCols[Attr].set(Obj);
}

bool Context::related(size_t Obj, size_t Attr) const {
  assert(Obj < numObjects() && Attr < numAttributes() && "index out of range");
  return ObjectRows[Obj].test(Attr);
}

BitVector Context::sigma(const BitVector &Objects) const {
  assert(Objects.size() == numObjects() && "object universe mismatch");
  BitVector Out(numAttributes());
  Out.setAll();
  for (size_t O : Objects)
    Out &= ObjectRows[O];
  return Out;
}

BitVector Context::tau(const BitVector &Attrs) const {
  assert(Attrs.size() == numAttributes() && "attribute universe mismatch");
  BitVector Out(numObjects());
  Out.setAll();
  for (size_t A : Attrs)
    Out &= AttributeCols[A];
  return Out;
}

Context Context::clarified(std::vector<size_t> *ObjectMap,
                           std::vector<size_t> *AttributeMap) const {
  // Dedup object rows.
  std::unordered_map<BitVector, size_t, BitVectorHash> RowIds;
  std::vector<size_t> ObjOf(numObjects());
  std::vector<const BitVector *> Rows;
  for (size_t O = 0; O < numObjects(); ++O) {
    auto [It, Inserted] = RowIds.emplace(ObjectRows[O], Rows.size());
    if (Inserted)
      Rows.push_back(&ObjectRows[O]);
    ObjOf[O] = It->second;
  }
  // Dedup attribute columns.
  std::unordered_map<BitVector, size_t, BitVectorHash> ColIds;
  std::vector<size_t> AttrOf(numAttributes());
  std::vector<size_t> ColRep;
  for (size_t A = 0; A < numAttributes(); ++A) {
    auto [It, Inserted] = ColIds.emplace(AttributeCols[A], ColRep.size());
    if (Inserted)
      ColRep.push_back(A);
    AttrOf[A] = It->second;
  }

  Context Out(Rows.size(), ColRep.size());
  for (size_t O = 0; O < numObjects(); ++O)
    for (size_t A : ObjectRows[O])
      if (!Out.related(ObjOf[O], AttrOf[A]))
        Out.relate(ObjOf[O], AttrOf[A]);
  if (ObjectMap)
    *ObjectMap = std::move(ObjOf);
  if (AttributeMap)
    *AttributeMap = std::move(AttrOf);
  return Out;
}
