//===- concepts/Context.h - Formal contexts ---------------------*- C++ -*-===//
//
// Part of the Cable reproduction of "Debugging Temporal Specifications with
// Concept Analysis" (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A formal context (O, A, R): objects, attributes, and a binary relation
/// between them (§3.1). Provides the derivation operators
///
///   sigma(X) = { a | forall x in X. (x,a) in R }
///   tau(Y)   = { o | forall y in Y. (o,y) in R }
///
/// with the standard conventions sigma(∅) = A and tau(∅) = O, and the
/// paper's similarity measure sim(X) = |sigma(X)|.
///
/// Layout: the incidence matrix is stored twice as packed 64-bit-word
/// arenas — object-major (row p at RowArena + p * RowStride) and
/// transposed attribute-major (column a at ColArena + a * ColStride) — so
/// sigma and tau each reduce to one fused simd::andSelectInto walking
/// contiguous cache lines, instead of striding through per-BitVector heap
/// allocations. BitVector object rows are additionally mirrored for the
/// objectRow()/attributeCol() API (GodinBuilder consumes rows directly).
///
/// The pre-arena derivation code is kept as sigmaReference/tauReference:
/// it is the bit-for-bit oracle for the layout differential tests and the
/// "pre-PR scalar" baseline the closure-throughput benches compare
/// against. setUseReferencePaths(true) routes sigma/tau through it so
/// whole lattice builds can be replayed on the legacy path.
///
//===----------------------------------------------------------------------===//

#ifndef CABLE_CONCEPTS_CONTEXT_H
#define CABLE_CONCEPTS_CONTEXT_H

#include "support/BitVector.h"

#include <string>
#include <vector>

namespace cable {

/// A formal context over fixed object and attribute universes.
class Context {
public:
  Context() = default;
  Context(size_t NumObjects, size_t NumAttributes);

  size_t numObjects() const { return NObj; }
  size_t numAttributes() const { return NAttr; }

  /// Records (Obj, Attr) in R.
  void relate(size_t Obj, size_t Attr);

  /// Returns true if (Obj, Attr) is in R.
  bool related(size_t Obj, size_t Attr) const;

  /// The attribute set of one object.
  const BitVector &objectRow(size_t Obj) const { return ObjectRows[Obj]; }

  /// The object set of one attribute.
  const BitVector &attributeCol(size_t Attr) const {
    return AttributeColsRef[Attr];
  }

  /// sigma: attributes common to all objects in \p Objects.
  BitVector sigma(const BitVector &Objects) const;

  /// tau: objects possessing all attributes in \p Attrs.
  BitVector tau(const BitVector &Attrs) const;

  /// sigma into a caller-owned buffer sized numAttributes(): the hot form
  /// — no allocation, one fused kernel pass over the row arena.
  void sigmaInto(const BitVector &Objects, BitVector &Out) const;

  /// tau into a caller-owned buffer sized numObjects().
  void tauInto(const BitVector &Attrs, BitVector &Out) const;

  /// Extent closure: tau(sigma(Objects)).
  BitVector closeExtent(const BitVector &Objects) const;

  /// Intent closure: sigma(tau(Attrs)).
  BitVector closeIntent(const BitVector &Attrs) const;

  /// Allocation-free intent closure: \p ObjScratch must be sized
  /// numObjects(), \p Out numAttributes(). The builders call this once
  /// per lectic candidate, so it must not touch the heap.
  void closeIntentInto(const BitVector &Attrs, BitVector &ObjScratch,
                       BitVector &Out) const;

  /// Allocation-free extent closure: \p AttrScratch sized numAttributes(),
  /// \p Out sized numObjects().
  void closeExtentInto(const BitVector &Objects, BitVector &AttrScratch,
                       BitVector &Out) const;

  /// The paper's similarity of a set of objects: |sigma(Objects)| (§3.1).
  size_t similarity(const BitVector &Objects) const {
    return sigma(Objects).count();
  }

  /// The pre-arena sigma: setAll then one operator&= per selected row
  /// BitVector. Kept verbatim as the differential oracle and the bench
  /// baseline for "pre-PR scalar" closure throughput.
  BitVector sigmaReference(const BitVector &Objects) const;

  /// The pre-arena tau (per-column BitVector intersections).
  BitVector tauReference(const BitVector &Attrs) const;

  /// tau(sigma(Objects)) on the reference path.
  BitVector closeExtentReference(const BitVector &Objects) const {
    return tauReference(sigmaReference(Objects));
  }

  /// sigma(tau(Attrs)) on the reference path.
  BitVector closeIntentReference(const BitVector &Attrs) const {
    return sigmaReference(tauReference(Attrs));
  }

  /// Routes sigma/tau (and everything built on them) through the
  /// reference implementations — the old-path side of the builder
  /// differential tests.
  void setUseReferencePaths(bool On) { UseReferencePaths = On; }
  bool useReferencePaths() const { return UseReferencePaths; }

  /// Canonical content hash of the context: a 16-hex-digit FNV-1a digest
  /// of (numObjects, numAttributes, object-major incidence words in
  /// little-endian byte order). This is the content-addressing key of the
  /// lattice artifact store, so it is computed with a plain scalar loop —
  /// never a SIMD kernel — and is byte-identical regardless of the
  /// CABLE_KERNEL dispatch level, thread count, or shard-worker count.
  /// Arena tail bits past numAttributes() are always zero (only relate()
  /// writes them), so the digest is a pure function of the relation.
  std::string contentHash() const;

  /// Standard FCA clarification: merges objects with identical rows and
  /// attributes with identical columns. The clarified context has an
  /// isomorphic concept lattice but can be much smaller to build. The
  /// optional out-parameters receive, for each original object/attribute,
  /// its index in the clarified context.
  Context clarified(std::vector<size_t> *ObjectMap = nullptr,
                    std::vector<size_t> *AttributeMap = nullptr) const;

  /// Optional display names (used by renderers; may stay empty).
  std::vector<std::string> ObjectNames;
  std::vector<std::string> AttributeNames;

private:
  size_t NObj = 0;
  size_t NAttr = 0;
  /// Words per row in RowArena: ceil(NAttr / 64).
  size_t RowStride = 0;
  /// Words per column in ColArena: ceil(NObj / 64).
  size_t ColStride = 0;
  /// Object-major packed incidence matrix (row p at p * RowStride).
  std::vector<uint64_t> RowArena;
  /// Transposed attribute-major matrix (column a at a * ColStride).
  std::vector<uint64_t> ColArena;
  /// BitVector mirror of the rows for the objectRow() API; AttributeColsRef
  /// mirrors columns solely for the reference tau path.
  std::vector<BitVector> ObjectRows;
  std::vector<BitVector> AttributeColsRef;
  bool UseReferencePaths = false;
};

} // namespace cable

#endif // CABLE_CONCEPTS_CONTEXT_H
