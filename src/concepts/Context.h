//===- concepts/Context.h - Formal contexts ---------------------*- C++ -*-===//
//
// Part of the Cable reproduction of "Debugging Temporal Specifications with
// Concept Analysis" (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A formal context (O, A, R): objects, attributes, and a binary relation
/// between them (§3.1). Provides the derivation operators
///
///   sigma(X) = { a | forall x in X. (x,a) in R }
///   tau(Y)   = { o | forall y in Y. (o,y) in R }
///
/// with the standard conventions sigma(∅) = A and tau(∅) = O, and the
/// paper's similarity measure sim(X) = |sigma(X)|.
///
//===----------------------------------------------------------------------===//

#ifndef CABLE_CONCEPTS_CONTEXT_H
#define CABLE_CONCEPTS_CONTEXT_H

#include "support/BitVector.h"

#include <string>
#include <vector>

namespace cable {

/// A formal context over fixed object and attribute universes.
class Context {
public:
  Context() = default;
  Context(size_t NumObjects, size_t NumAttributes);

  size_t numObjects() const { return ObjectRows.size(); }
  size_t numAttributes() const { return AttributeCols.size(); }

  /// Records (Obj, Attr) in R.
  void relate(size_t Obj, size_t Attr);

  /// Returns true if (Obj, Attr) is in R.
  bool related(size_t Obj, size_t Attr) const;

  /// The attribute set of one object.
  const BitVector &objectRow(size_t Obj) const { return ObjectRows[Obj]; }

  /// The object set of one attribute.
  const BitVector &attributeCol(size_t Attr) const {
    return AttributeCols[Attr];
  }

  /// sigma: attributes common to all objects in \p Objects.
  BitVector sigma(const BitVector &Objects) const;

  /// tau: objects possessing all attributes in \p Attrs.
  BitVector tau(const BitVector &Attrs) const;

  /// Extent closure: tau(sigma(Objects)).
  BitVector closeExtent(const BitVector &Objects) const {
    return tau(sigma(Objects));
  }

  /// Intent closure: sigma(tau(Attrs)).
  BitVector closeIntent(const BitVector &Attrs) const {
    return sigma(tau(Attrs));
  }

  /// The paper's similarity of a set of objects: |sigma(Objects)| (§3.1).
  size_t similarity(const BitVector &Objects) const {
    return sigma(Objects).count();
  }

  /// Standard FCA clarification: merges objects with identical rows and
  /// attributes with identical columns. The clarified context has an
  /// isomorphic concept lattice but can be much smaller to build. The
  /// optional out-parameters receive, for each original object/attribute,
  /// its index in the clarified context.
  Context clarified(std::vector<size_t> *ObjectMap = nullptr,
                    std::vector<size_t> *AttributeMap = nullptr) const;

  /// Optional display names (used by renderers; may stay empty).
  std::vector<std::string> ObjectNames;
  std::vector<std::string> AttributeNames;

private:
  std::vector<BitVector> ObjectRows;
  std::vector<BitVector> AttributeCols;
};

} // namespace cable

#endif // CABLE_CONCEPTS_CONTEXT_H
