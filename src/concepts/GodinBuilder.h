//===- concepts/GodinBuilder.h - Incremental lattice construction -* C++ *-===//
//
// Part of the Cable reproduction of "Debugging Temporal Specifications with
// Concept Analysis" (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Incremental concept-set construction after Godin, Missaoui, and Alaoui
/// ("Incremental concept formation algorithms based on Galois (concept)
/// lattices", 1995) — the algorithm the paper uses (§3.1.1), with running
/// time O(2^2k · |O|) for k an upper bound on attributes per object.
///
/// Objects arrive one at a time with their attribute sets. For each new
/// object x with attributes f(x), existing concepts are visited in
/// ascending intent size:
///
///  - a concept (A, B) with B ⊆ f(x) is *modified*: x joins its extent;
///  - otherwise it proposes the intent B ∩ f(x); the first proposer (which
///    provably has the maximal extent) creates the *new* concept
///    (A ∪ {x}, B ∩ f(x)) unless that intent is already present.
///
/// The builder maintains only the concept set; cover edges are computed
/// when build() assembles the ConceptLattice.
///
//===----------------------------------------------------------------------===//

#ifndef CABLE_CONCEPTS_GODINBUILDER_H
#define CABLE_CONCEPTS_GODINBUILDER_H

#include "concepts/BuildResult.h"
#include "concepts/Lattice.h"

namespace cable {

/// Incrementally accumulates the concepts of a growing context.
class GodinBuilder {
public:
  /// \p NumAttributes fixes the attribute universe up front.
  explicit GodinBuilder(size_t NumAttributes);

  /// Adds the next object (object ids are assigned 0, 1, ... in call
  /// order). \p Attrs must be sized to the attribute universe.
  void addObject(const BitVector &Attrs);

  /// Budgeted addObject: visits existing concepts with a \p Meter
  /// checkpoint per visit, and refuses insertions that would push the
  /// concept count past \p MaxConcepts. All mutation is committed at the
  /// end, so a false return (budget hit) leaves the builder exactly as it
  /// was — the complete lattice of the objects added so far.
  bool addObjectBudgeted(const BitVector &Attrs, const BudgetMeter &Meter,
                         size_t MaxConcepts);

  size_t numObjects() const { return NumObjects; }
  size_t numConcepts() const { return Concepts.size(); }

  /// Assembles the lattice (computes covers, top, bottom).
  ConceptLattice build() const;

  /// The accumulated concepts, extents resized to \p ExtentUniverse
  /// objects (pass the full context size to make a truncated snapshot
  /// comparable with batch-built concepts).
  std::vector<Concept> snapshotConcepts(size_t ExtentUniverse) const;

  /// Convenience: runs the incremental algorithm over all objects of
  /// \p Ctx in index order.
  static ConceptLattice buildLattice(const Context &Ctx);

  /// Budgeted construction: the full lattice when the budget suffices,
  /// otherwise a partial lattice flagged Truncated, containing the
  /// concepts of the objects inserted before exhaustion plus the full
  /// context's top and bottom (see BuildResult.h).
  static LatticeBuildResult buildLatticeBudgeted(const Context &Ctx,
                                                 const BudgetMeter &Meter);

private:
  size_t NumAttributes;
  size_t NumObjects = 0;
  std::vector<Concept> Concepts;
};

} // namespace cable

#endif // CABLE_CONCEPTS_GODINBUILDER_H
