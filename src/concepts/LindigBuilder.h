//===- concepts/LindigBuilder.h - Neighbor-based construction ---*- C++ -*-===//
//
// Part of the Cable reproduction of "Debugging Temporal Specifications with
// Concept Analysis" (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Lindig's lattice construction ("Fast Concept Analysis", 2000): start
/// from the bottom concept and repeatedly compute each concept's *upper
/// neighbors* directly, which yields the concepts and the cover (Hasse)
/// edges in one pass. This is the third independent construction in the
/// library — Godin (incremental, the paper's algorithm) and NextClosure
/// (lectic enumeration) produce the concept set, with covers derived
/// afterwards; Lindig produces covers natively, so the three
/// cross-validate both the concept set and the edge set.
///
//===----------------------------------------------------------------------===//

#ifndef CABLE_CONCEPTS_LINDIGBUILDER_H
#define CABLE_CONCEPTS_LINDIGBUILDER_H

#include "concepts/BuildResult.h"
#include "concepts/Lattice.h"

namespace cable {

/// Batch construction via upper neighbors.
class LindigBuilder {
public:
  /// Computes the extents of the upper neighbors (immediate covers) of the
  /// concept whose extent is \p Extent. \p Extent must be closed. A
  /// non-null \p Meter is checked before each generator closure; on
  /// expiry the (then incomplete) neighbor list found so far is returned
  /// and the caller is expected to stop.
  static std::vector<BitVector>
  upperNeighborExtents(const Context &Ctx, const BitVector &Extent,
                       const BudgetMeter *Meter = nullptr);

  /// Builds the full concept lattice of \p Ctx, with cover edges taken
  /// from the neighbor computation itself (not recomputed afterwards).
  static ConceptLattice buildLattice(const Context &Ctx);

  /// Budgeted construction: the BFS from the bottom concept stops at the
  /// deadline or as soon as a discovery would exceed Budget::MaxConcepts,
  /// returning the concepts found so far as a Truncated partial lattice
  /// (covers recomputed over the retained subset; see BuildResult.h).
  static LatticeBuildResult buildLatticeBudgeted(const Context &Ctx,
                                                 const BudgetMeter &Meter);
};

} // namespace cable

#endif // CABLE_CONCEPTS_LINDIGBUILDER_H
