//===- concepts/NextClosureBuilder.cpp - Batch lattice construction -------===//
//
// Part of the Cable reproduction of "Debugging Temporal Specifications with
// Concept Analysis" (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//

#include "concepts/NextClosureBuilder.h"

#include "support/Failpoint.h"
#include "support/Metrics.h"
#include "support/TraceEvent.h"

#include <new>
#include <utility>

using namespace cable;

namespace {

// Shared with ParallelBuilder (same registry entries): total closure
// computations and concepts emitted across every builder in the process.
// Enumeration loops accumulate locally and flush once per call, so the
// hot loop never touches an atomic.
Metrics::Counter &NumClosures = Metrics::counter("lattice.closures");
Metrics::Counter &NumConcepts = Metrics::counter("lattice.concepts");
Metrics::Counter &OomContained = Metrics::counter("lattice.oom-contained");

// Deterministic OOM for the containment tests: an `error` here is
// translated into a real std::bad_alloc at the enumeration checkpoint.
Failpoint::Registrar RegLatticeOom("lattice-oom");

} // namespace

std::vector<BitVector>
NextClosureBuilder::allClosedIntents(const Context &Ctx) {
  TraceSpan Span("next-closure-enumerate");
  size_t M = Ctx.numAttributes();
  uint64_t LocalClosures = 1;
  std::vector<BitVector> Out;

  // All candidate/closure buffers live outside the enumeration loop: a
  // rejected candidate (the common case) costs zero allocations, only an
  // accepted concept pays one copy into Out.
  BitVector A(M), B(M), Closed(M), ObjScratch(Ctx.numObjects());
  Ctx.closeIntentInto(BitVector(M), ObjScratch, A);
  Out.push_back(A);

  // The lectically largest closed set is the closure of the full set, which
  // is the full set itself only if reached; iterate until no successor.
  for (;;) {
    bool Advanced = false;
    // Find the lectic successor of A.
    for (size_t IPlus1 = M; IPlus1 > 0; --IPlus1) {
      size_t I = IPlus1 - 1;
      if (A.test(I))
        continue;
      // Candidate: closure((A ∩ {0..I-1}) ∪ {I}).
      B.resetAll();
      for (size_t J : A) {
        if (J >= I)
          break;
        B.set(J);
      }
      B.set(I);
      Ctx.closeIntentInto(B, ObjScratch, Closed);
      ++LocalClosures;
      // Accept iff the closure agrees with A below I (B +_i A in Ganter's
      // notation).
      bool Agrees = true;
      for (size_t J : Closed) {
        if (J >= I)
          break;
        if (!A.test(J)) {
          Agrees = false;
          break;
        }
      }
      if (Agrees) {
        Out.push_back(Closed);
        std::swap(A, Closed);
        Advanced = true;
        break;
      }
    }
    if (!Advanced)
      break;
  }
  NumClosures.add(LocalClosures);
  NumConcepts.add(Out.size());
  return Out;
}

ConceptLattice NextClosureBuilder::buildLattice(const Context &Ctx) {
  std::vector<Concept> Concepts;
  for (BitVector &Intent : allClosedIntents(Ctx)) {
    Concept C;
    C.Extent = Ctx.tau(Intent);
    C.Intent = std::move(Intent);
    Concepts.push_back(std::move(C));
  }
  return ConceptLattice::fromConcepts(std::move(Concepts));
}

std::vector<BitVector>
NextClosureBuilder::allClosedIntentsBudgeted(const Context &Ctx,
                                             const BudgetMeter &Meter,
                                             BuildStop &Stop) {
  TraceSpan Span("next-closure-enumerate");
  size_t M = Ctx.numAttributes();
  size_t Max = Meter.budget().MaxConcepts.value_or(SIZE_MAX);
  uint64_t LocalClosures = 1;
  std::vector<BitVector> Out;
  Stop = BuildStop::Complete;

  // The lectic least closed intent is emitted unconditionally so even an
  // already-expired meter yields a nonempty prefix (the top concept).
  BitVector A(M), B(M), Closed(M), ObjScratch(Ctx.numObjects());
  Ctx.closeIntentInto(BitVector(M), ObjScratch, A);
  Out.push_back(A);

  try {
  for (;;) {
    bool Advanced = false;
    for (size_t IPlus1 = M; IPlus1 > 0; --IPlus1) {
      size_t I = IPlus1 - 1;
      if (A.test(I))
        continue;
      // One checkpoint per candidate closure; the closure dominates the
      // cost of the atomic load by orders of magnitude.
      if (Meter.expired()) {
        Stop = BuildStop::Time;
        NumClosures.add(LocalClosures);
        NumConcepts.add(Out.size());
        return Out;
      }
      if (!Failpoint::hit("lattice-oom").isOk())
        throw std::bad_alloc();
      B.resetAll();
      for (size_t J : A) {
        if (J >= I)
          break;
        B.set(J);
      }
      B.set(I);
      Ctx.closeIntentInto(B, ObjScratch, Closed);
      ++LocalClosures;
      bool Agrees = true;
      for (size_t J : Closed) {
        if (J >= I)
          break;
        if (!A.test(J)) {
          Agrees = false;
          break;
        }
      }
      if (Agrees) {
        if (Out.size() >= Max) {
          // A successor exists beyond the cap, so the prefix is proper.
          // Deciding this only *after* finding the successor makes the
          // Truncated flag exact: a context with exactly Max concepts
          // builds complete.
          Stop = BuildStop::ConceptCap;
          NumClosures.add(LocalClosures);
          NumConcepts.add(Out.size());
          return Out;
        }
        Out.push_back(Closed);
        std::swap(A, Closed);
        Advanced = true;
        break;
      }
    }
    if (!Advanced)
      break;
  }
  } catch (const std::bad_alloc &) {
    // Containment: an allocation failure becomes a Memory stop keeping the
    // lectic prefix enumerated so far, so an OOMing build (or shard
    // worker) reports a truncated result instead of terminating.
    Stop = BuildStop::Memory;
    OomContained.add();
  }
  NumClosures.add(LocalClosures);
  NumConcepts.add(Out.size());
  return Out;
}

LatticeBuildResult
NextClosureBuilder::buildLatticeBudgeted(const Context &Ctx,
                                         const BudgetMeter &Meter) {
  Status Cells = checkContextCells(Ctx, Meter.budget());
  if (!Cells.isOk()) {
    LatticeBuildResult R;
    R.Lattice = finalizeTruncatedConcepts(Ctx, {}, DeadlineKeepCap);
    R.BuildStatus = std::move(Cells);
    R.Truncated = true;
    return R;
  }

  try {
    BuildStop Stop;
    std::vector<BitVector> Intents =
        allClosedIntentsBudgeted(Ctx, Meter, Stop);
    // If the deadline hit right as enumeration finished, do not start the
    // quadratic cover computation over a possibly huge complete set.
    if (Stop == BuildStop::Complete && Meter.expired())
      Stop = BuildStop::Time;
    if (Stop != BuildStop::Complete) {
      size_t NumEnumerated = Intents.size();
      return makeTruncatedFromIntents(Ctx, std::move(Intents), Stop, Meter,
                                      NumEnumerated);
    }

    LatticeBuildResult R;
    R.NumEnumerated = Intents.size();
    std::vector<Concept> Concepts;
    Concepts.reserve(Intents.size());
    for (BitVector &Intent : Intents) {
      Concept C;
      C.Extent = Ctx.tau(Intent);
      C.Intent = std::move(Intent);
      Concepts.push_back(std::move(C));
    }
    R.Lattice = ConceptLattice::fromConcepts(std::move(Concepts));
    return R;
  } catch (const std::bad_alloc &) {
    // Last-resort boundary: extent or cover computation ran out of memory
    // after a (possibly complete) enumeration. The intents are gone, but
    // the process — and a shard worker's ability to report — survives.
    OomContained.add();
    LatticeBuildResult R;
    R.Truncated = true;
    R.BuildStatus =
        truncationStatus(BuildStop::Memory, Meter, "lattice construction");
    R.Lattice = finalizeTruncatedConcepts(Ctx, {}, DeadlineKeepCap);
    return R;
  }
}
