//===- concepts/NextClosureBuilder.cpp - Batch lattice construction -------===//
//
// Part of the Cable reproduction of "Debugging Temporal Specifications with
// Concept Analysis" (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//

#include "concepts/NextClosureBuilder.h"

using namespace cable;

std::vector<BitVector>
NextClosureBuilder::allClosedIntents(const Context &Ctx) {
  size_t M = Ctx.numAttributes();
  std::vector<BitVector> Out;

  BitVector A = Ctx.closeIntent(BitVector(M));
  Out.push_back(A);

  // The lectically largest closed set is the closure of the full set, which
  // is the full set itself only if reached; iterate until no successor.
  for (;;) {
    bool Advanced = false;
    // Find the lectic successor of A.
    for (size_t IPlus1 = M; IPlus1 > 0; --IPlus1) {
      size_t I = IPlus1 - 1;
      if (A.test(I))
        continue;
      // Candidate: closure((A ∩ {0..I-1}) ∪ {I}).
      BitVector B(M);
      for (size_t J : A) {
        if (J >= I)
          break;
        B.set(J);
      }
      B.set(I);
      B = Ctx.closeIntent(B);
      // Accept iff B agrees with A below I (B +_i A in Ganter's notation).
      bool Agrees = true;
      for (size_t J : B) {
        if (J >= I)
          break;
        if (!A.test(J)) {
          Agrees = false;
          break;
        }
      }
      if (Agrees) {
        A = std::move(B);
        Out.push_back(A);
        Advanced = true;
        break;
      }
    }
    if (!Advanced)
      break;
  }
  return Out;
}

ConceptLattice NextClosureBuilder::buildLattice(const Context &Ctx) {
  std::vector<Concept> Concepts;
  for (BitVector &Intent : allClosedIntents(Ctx)) {
    Concept C;
    C.Extent = Ctx.tau(Intent);
    C.Intent = std::move(Intent);
    Concepts.push_back(std::move(C));
  }
  return ConceptLattice::fromConcepts(std::move(Concepts));
}
