//===- concepts/ParallelBuilder.h - Parallel batch construction -*- C++ -*-===//
//
// Part of the Cable reproduction of "Debugging Temporal Specifications with
// Concept Analysis" (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Parallel batch lattice construction. NextClosure's lectic enumeration
/// space is partitioned by first-attribute prefix: the closed intents with
/// minimum attribute p form one contiguous lectic range ("block") per p,
/// each enumerable independently with a prefix-restricted NextClosure, so
/// workers never synchronize during enumeration. Extents and the cover
/// (Hasse) relation are then computed by sharding concepts across workers.
///
/// The output is bit-for-bit identical to NextClosureBuilder::buildLattice
/// at every thread count: node ids are assigned in canonical lectic order
/// and the cover relation is emitted in the same canonical scan order
/// ConceptLattice::fromConcepts uses (see docs/ALGORITHMS.md, "Parallel
/// construction").
///
//===----------------------------------------------------------------------===//

#ifndef CABLE_CONCEPTS_PARALLELBUILDER_H
#define CABLE_CONCEPTS_PARALLELBUILDER_H

#include "concepts/BuildResult.h"
#include "concepts/Lattice.h"
#include "support/ThreadPool.h"

namespace cable {

/// Parallel batch construction by lectic-prefix partitioning.
class ParallelBuilder {
public:
  /// Builds the full concept lattice of \p Ctx with \p NumThreads workers
  /// (0 = hardware concurrency, 1 = the exact serial NextClosure path).
  static ConceptLattice buildLattice(const Context &Ctx,
                                     unsigned NumThreads = 0);

  /// As above, reusing an existing pool.
  static ConceptLattice buildLattice(const Context &Ctx, ThreadPool &Pool);

  /// Enumerates every closed intent of \p Ctx in lectic order, the blocks
  /// computed in parallel on \p Pool. Identical to
  /// NextClosureBuilder::allClosedIntents at any thread count.
  static std::vector<BitVector> allClosedIntents(const Context &Ctx,
                                                 ThreadPool &Pool);

  /// The closed intents whose minimum attribute is \p P, in ascending
  /// lectic order (exposed for the differential tests). \p TopIntent must
  /// be the closure of the empty attribute set, which is emitted by the
  /// caller, never by a block.
  static std::vector<BitVector> blockIntents(const Context &Ctx, size_t P,
                                             const BitVector &TopIntent);

  /// Budgeted construction. Truncation lands at a deterministic place:
  /// each worker caps its block at Budget::MaxConcepts intents (with the
  /// same exact has-a-successor test the serial enumerator uses), and the
  /// canonical merge truncates the concatenation to the cap — which is
  /// provably the first MaxConcepts intents of the full lectic order, so
  /// a ConceptCap result is bit-for-bit identical to the serial one at
  /// every thread count. A deadline stop keeps, per block, whatever was
  /// enumerated before expiry and merges up to the first interrupted
  /// block, which is again a clean lectic prefix. \p NumThreads as in
  /// buildLattice (1 = the exact serial NextClosure path).
  static LatticeBuildResult buildLatticeBudgeted(const Context &Ctx,
                                                 const BudgetMeter &Meter,
                                                 unsigned NumThreads = 0);

  /// As above, reusing an existing pool.
  static LatticeBuildResult buildLatticeBudgeted(const Context &Ctx,
                                                 const BudgetMeter &Meter,
                                                 ThreadPool &Pool);

  /// Budgeted blockIntents: checks \p Meter before every candidate
  /// closure and stops after Budget::MaxConcepts intents *within this
  /// block*. The result is always a lectic prefix of the block.
  static std::vector<BitVector>
  blockIntentsBudgeted(const Context &Ctx, size_t P,
                       const BitVector &TopIntent, const BudgetMeter &Meter,
                       BuildStop &Stop);

  /// Budgeted allClosedIntents: always returns a (possibly complete)
  /// prefix of the full lectic enumeration; \p Stop reports whether and
  /// why it is proper.
  static std::vector<BitVector>
  allClosedIntentsBudgeted(const Context &Ctx, ThreadPool &Pool,
                           const BudgetMeter &Meter, BuildStop &Stop);

  /// Shared tail of every complete-construction path: computes extents and
  /// the cover relation for \p Intents (which must be a complete lectic
  /// enumeration of \p Ctx's closed intents) sharded across \p Pool in the
  /// canonical scan order. Exposed so out-of-process construction
  /// (ShardedBuilder) can assemble the identical lattice from merged
  /// worker shards.
  static ConceptLattice assembleLattice(const Context &Ctx, ThreadPool &Pool,
                                        std::vector<BitVector> Intents);
};

} // namespace cable

#endif // CABLE_CONCEPTS_PARALLELBUILDER_H
