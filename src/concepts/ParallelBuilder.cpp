//===- concepts/ParallelBuilder.cpp - Parallel batch construction ----------===//
//
// Part of the Cable reproduction of "Debugging Temporal Specifications with
// Concept Analysis" (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//
//
// Why the partition is sound. Order attributes 0 < 1 < ... < M-1 and use
// Ganter's lectic order (the set owning the smallest differing attribute
// is the greater one). Then:
//
//  1. closure(∅) is a subset of every closed intent, hence lectically
//     least; every other closed intent B has a well-defined minimum
//     attribute min(B).
//  2. For closed B, C with min(B) < min(C), the smallest differing
//     attribute is min(B), so B > C: intents grouped by minimum attribute
//     occupy contiguous lectic ranges ("blocks"), blocks with larger
//     minima coming first.
//  3. Within block p, the standard NextClosure successor of A is found at
//     some position i > p (a success at i < p would yield closure({i}),
//     which contains i < p and so left the block), and the acceptance
//     test "agrees with A below i" forces the candidate to keep p and
//     exclude everything below p. Restricting the successor scan to
//     positions strictly above p therefore enumerates exactly the rest of
//     the block and stops at its end.
//
// Concatenating closure(∅) and the blocks for p = M-1 down to 0 yields
// the full enumeration in exact lectic order, independent of how blocks
// were scheduled — the canonical order node ids are assigned in.
//
//===----------------------------------------------------------------------===//

#include "concepts/ParallelBuilder.h"

#include "concepts/NextClosureBuilder.h"
#include "support/Failpoint.h"
#include "support/Metrics.h"
#include "support/TraceEvent.h"

#include <cassert>
#include <new>
#include <utility>

using namespace cable;

namespace {

// Same registry entries NextClosureBuilder flushes into; per-block loops
// accumulate locally and flush once per block.
Metrics::Counter &NumClosures = Metrics::counter("lattice.closures");
Metrics::Counter &NumConcepts = Metrics::counter("lattice.concepts");
Metrics::Histogram &PartitionSize =
    Metrics::histogram("lattice.partition-size");
Metrics::Counter &OomContained = Metrics::counter("lattice.oom-contained");

} // namespace

std::vector<BitVector> ParallelBuilder::blockIntents(const Context &Ctx,
                                                     size_t P,
                                                     const BitVector &TopIntent) {
  // args.n is the partition's minimum attribute — the block id.
  TraceSpan Span("lattice-block", static_cast<int64_t>(P));
  size_t M = Ctx.numAttributes();
  uint64_t LocalClosures = 0;
  std::vector<BitVector> Out;

  // Per-block scratch set, reused across every candidate in the block so
  // only accepted concepts allocate (one copy into Out).
  BitVector A(M), B(M), Closed(M), ObjScratch(Ctx.numObjects());
  if (TopIntent.test(P)) {
    // p ∈ closure(∅) forces closure({p}) == closure(∅) (monotonicity both
    // ways), so the probe is free — and must not be counted: the serial
    // enumerator reaches this block by successor steps from closure(∅)
    // without ever computing closure({p}), and lattice.closures is kept
    // schedule-invariant (serial == parallel == sharded).
    A = TopIntent;
  } else {
    B.set(P);
    Ctx.closeIntentInto(B, ObjScratch, A);
    ++LocalClosures;
  }
  // closure({p}) is contained in every closed set whose minimum is p, so
  // it is the block's lectic least — unless it pulls in an attribute
  // below p, in which case no closed set has minimum p at all.
  if (A.findFirst() != P) {
    NumClosures.add(LocalClosures);
    PartitionSize.record(0);
    return Out;
  }
  // closure(∅) can coincide with closure({p}); the caller emits it.
  if (!(A == TopIntent))
    Out.push_back(A);

  for (;;) {
    bool Advanced = false;
    // Lectic successor, restricted to candidate positions above P (the
    // prefix-restriction trick; see the file comment).
    for (size_t IPlus1 = M; IPlus1 > P + 1; --IPlus1) {
      size_t I = IPlus1 - 1;
      if (A.test(I))
        continue;
      B.resetAll();
      for (size_t J : A) {
        if (J >= I)
          break;
        B.set(J);
      }
      B.set(I);
      Ctx.closeIntentInto(B, ObjScratch, Closed);
      ++LocalClosures;
      bool Agrees = true;
      for (size_t J : Closed) {
        if (J >= I)
          break;
        if (!A.test(J)) {
          Agrees = false;
          break;
        }
      }
      if (Agrees) {
        Out.push_back(Closed);
        std::swap(A, Closed);
        Advanced = true;
        break;
      }
    }
    if (!Advanced)
      break;
  }
  NumClosures.add(LocalClosures);
  PartitionSize.record(Out.size());
  return Out;
}

std::vector<BitVector> ParallelBuilder::allClosedIntents(const Context &Ctx,
                                                         ThreadPool &Pool) {
  TraceSpan Span("lattice-enumerate");
  size_t M = Ctx.numAttributes();
  BitVector TopIntent = Ctx.closeIntent(BitVector(M));

  // Every closed intent contains closure(∅), so no closed set has a
  // minimum attribute above min(TopIntent): blocks past it are provably
  // empty and are not probed — exactly the positions the serial
  // enumerator never tries, which keeps closure counts schedule-invariant.
  size_t MinTop = TopIntent.findFirst();
  size_t NumBlocks = MinTop == BitVector::npos ? M : MinTop + 1;

  // Each block is an independent task; results are merged by attribute
  // index, so the output does not depend on scheduling.
  std::vector<std::vector<BitVector>> Blocks(NumBlocks);
  Pool.parallelFor(NumBlocks, [&](size_t Begin, size_t End) {
    for (size_t P = Begin; P < End; ++P)
      Blocks[P] = blockIntents(Ctx, P, TopIntent);
  });

  std::vector<BitVector> Out;
  size_t Total = 1;
  for (const std::vector<BitVector> &B : Blocks)
    Total += B.size();
  Out.reserve(Total);
  Out.push_back(std::move(TopIntent));
  for (size_t P = NumBlocks; P > 0; --P)
    for (BitVector &Intent : Blocks[P - 1])
      Out.push_back(std::move(Intent));
  NumClosures.add(1); // TopIntent's closure.
  NumConcepts.add(Out.size());
  return Out;
}

ConceptLattice ParallelBuilder::assembleLattice(const Context &Ctx,
                                                ThreadPool &Pool,
                                                std::vector<BitVector> Intents) {
  using NodeId = ConceptLattice::NodeId;

  TraceSpan Span("lattice-covers",
                 static_cast<int64_t>(Intents.size()));
  size_t N = Intents.size();

  // Extents shard trivially: every concept is written by exactly one
  // worker, at an index fixed by the canonical enumeration order.
  std::vector<Concept> Concepts(N);
  Pool.parallelFor(N, [&](size_t Begin, size_t End) {
    for (size_t I = Begin; I < End; ++I) {
      Concepts[I].Extent = Ctx.tau(Intents[I]);
      Concepts[I].Intent = std::move(Intents[I]);
    }
  });

  // Cover relation: same canonical scan order as fromConcepts, the
  // per-concept scans sharded across workers (each is a pure function of
  // the read-only concept vector).
  std::vector<size_t> Card(N);
  Pool.parallelFor(N, [&](size_t Begin, size_t End) {
    for (size_t I = Begin; I < End; ++I)
      Card[I] = Concepts[I].Extent.count();
  });
  std::vector<NodeId> Order = ConceptLattice::coverScanOrder(Card);
  std::vector<std::vector<NodeId>> CoversOf(N);
  Pool.parallelFor(N, [&](size_t Begin, size_t End) {
    for (size_t AI = Begin; AI < End; ++AI)
      CoversOf[AI] = ConceptLattice::coversAt(Concepts, Order, Card, AI);
  });

  // Emit edges in the serial path's insertion order so the per-node
  // parent/child lists come out identical.
  std::vector<std::pair<NodeId, NodeId>> Edges;
  size_t NumEdges = 0;
  for (const std::vector<NodeId> &C : CoversOf)
    NumEdges += C.size();
  Edges.reserve(NumEdges);
  for (size_t AI = 0; AI < N; ++AI)
    for (NodeId B : CoversOf[AI])
      Edges.emplace_back(B, Order[AI]);
  return ConceptLattice::fromConceptsAndCovers(std::move(Concepts), Edges);
}

ConceptLattice ParallelBuilder::buildLattice(const Context &Ctx,
                                             ThreadPool &Pool) {
  return assembleLattice(Ctx, Pool, allClosedIntents(Ctx, Pool));
}

ConceptLattice ParallelBuilder::buildLattice(const Context &Ctx,
                                             unsigned NumThreads) {
  unsigned Resolved = ThreadPool::resolveThreadCount(NumThreads);
  if (Resolved == 1)
    return NextClosureBuilder::buildLattice(Ctx); // Exact serial fallback.
  ThreadPool Pool(Resolved);
  return buildLattice(Ctx, Pool);
}

std::vector<BitVector>
ParallelBuilder::blockIntentsBudgeted(const Context &Ctx, size_t P,
                                      const BitVector &TopIntent,
                                      const BudgetMeter &Meter,
                                      BuildStop &Stop) {
  TraceSpan Span("lattice-block", static_cast<int64_t>(P));
  size_t M = Ctx.numAttributes();
  size_t Max = Meter.budget().MaxConcepts.value_or(SIZE_MAX);
  uint64_t LocalClosures = 0;
  std::vector<BitVector> Out;
  Stop = BuildStop::Complete;

  BitVector A(M), B(M), Closed(M), ObjScratch(Ctx.numObjects());
  if (TopIntent.test(P)) {
    // See blockIntents: closure({p}) == closure(∅) here, and counting a
    // closure for it would break serial/parallel counter conservation.
    A = TopIntent;
  } else {
    B.set(P);
    Ctx.closeIntentInto(B, ObjScratch, A);
    ++LocalClosures;
  }
  if (A.findFirst() != P) {
    NumClosures.add(LocalClosures);
    PartitionSize.record(0);
    return Out;
  }
  if (!(A == TopIntent))
    Out.push_back(A);

  try {
  for (;;) {
    bool Advanced = false;
    for (size_t IPlus1 = M; IPlus1 > P + 1; --IPlus1) {
      size_t I = IPlus1 - 1;
      if (A.test(I))
        continue;
      // This is the cancellation checkpoint the pool workers run on.
      if (Meter.expired()) {
        Stop = BuildStop::Time;
        NumClosures.add(LocalClosures);
        PartitionSize.record(Out.size());
        return Out;
      }
      if (!Failpoint::hit("lattice-oom").isOk())
        throw std::bad_alloc();
      B.resetAll();
      for (size_t J : A) {
        if (J >= I)
          break;
        B.set(J);
      }
      B.set(I);
      Ctx.closeIntentInto(B, ObjScratch, Closed);
      ++LocalClosures;
      bool Agrees = true;
      for (size_t J : Closed) {
        if (J >= I)
          break;
        if (!A.test(J)) {
          Agrees = false;
          break;
        }
      }
      if (Agrees) {
        if (Out.size() >= Max) {
          // Same exact successor-exists test as the serial enumerator, so
          // the merge below can reconstruct precisely where the serial
          // run would have stopped.
          Stop = BuildStop::ConceptCap;
          NumClosures.add(LocalClosures);
          PartitionSize.record(Out.size());
          return Out;
        }
        Out.push_back(Closed);
        std::swap(A, Closed);
        Advanced = true;
        break;
      }
    }
    if (!Advanced)
      break;
  }
  } catch (const std::bad_alloc &) {
    // Containment as in the serial enumerator: the block keeps its lectic
    // prefix and reports a Memory stop; the canonical merge cuts at this
    // block like any other interrupted one.
    Stop = BuildStop::Memory;
    OomContained.add();
  }
  NumClosures.add(LocalClosures);
  PartitionSize.record(Out.size());
  return Out;
}

std::vector<BitVector>
ParallelBuilder::allClosedIntentsBudgeted(const Context &Ctx,
                                          ThreadPool &Pool,
                                          const BudgetMeter &Meter,
                                          BuildStop &Stop) {
  TraceSpan Span("lattice-enumerate");
  size_t M = Ctx.numAttributes();
  size_t Max = Meter.budget().MaxConcepts.value_or(SIZE_MAX);
  BitVector TopIntent = Ctx.closeIntent(BitVector(M));

  // As in allClosedIntents: blocks above min(TopIntent) are empty and
  // skipping them preserves serial/parallel closure-count conservation.
  size_t MinTop = TopIntent.findFirst();
  size_t NumBlocks = MinTop == BitVector::npos ? M : MinTop + 1;

  std::vector<std::vector<BitVector>> Blocks(NumBlocks);
  std::vector<BuildStop> Stops(NumBlocks, BuildStop::Complete);
  Pool.parallelFor(NumBlocks, [&](size_t Begin, size_t End) {
    for (size_t P = Begin; P < End; ++P)
      Blocks[P] = blockIntentsBudgeted(Ctx, P, TopIntent, Meter, Stops[P]);
  });

  // Canonical merge, descending minimum attribute. The concatenation is
  // cut at the first gap: either the global cap (with intents left over —
  // the serial enumerator's exact stopping point) or the first block that
  // was interrupted mid-enumeration. Everything kept is a lectic prefix.
  std::vector<BitVector> Out;
  Stop = BuildStop::Complete;
  Out.push_back(std::move(TopIntent));
  NumClosures.add(1); // TopIntent's closure.
  for (size_t P = NumBlocks; P > 0; --P) {
    for (BitVector &Intent : Blocks[P - 1]) {
      if (Out.size() >= Max) {
        Stop = BuildStop::ConceptCap;
        NumConcepts.add(Out.size());
        return Out;
      }
      Out.push_back(std::move(Intent));
    }
    if (Stops[P - 1] != BuildStop::Complete) {
      Stop = Stops[P - 1];
      NumConcepts.add(Out.size());
      return Out;
    }
  }
  NumConcepts.add(Out.size());
  return Out;
}

LatticeBuildResult
ParallelBuilder::buildLatticeBudgeted(const Context &Ctx,
                                      const BudgetMeter &Meter,
                                      ThreadPool &Pool) {
  Status Cells = checkContextCells(Ctx, Meter.budget());
  if (!Cells.isOk()) {
    LatticeBuildResult R;
    R.Lattice = finalizeTruncatedConcepts(Ctx, {}, DeadlineKeepCap);
    R.BuildStatus = std::move(Cells);
    R.Truncated = true;
    return R;
  }

  try {
    BuildStop Stop;
    std::vector<BitVector> Intents =
        allClosedIntentsBudgeted(Ctx, Pool, Meter, Stop);
    if (Stop == BuildStop::Complete && Meter.expired())
      Stop = BuildStop::Time;
    if (Stop != BuildStop::Complete) {
      // The truncated epilogue is intentionally the serial one, shared
      // with NextClosureBuilder, so truncated lattices agree bit-for-bit
      // across thread counts.
      size_t NumEnumerated = Intents.size();
      return makeTruncatedFromIntents(Ctx, std::move(Intents), Stop, Meter,
                                      NumEnumerated);
    }

    LatticeBuildResult R;
    R.NumEnumerated = Intents.size();
    R.Lattice = assembleLattice(Ctx, Pool, std::move(Intents));
    return R;
  } catch (const std::bad_alloc &) {
    // Boundary containment, as in NextClosureBuilder::buildLatticeBudgeted.
    OomContained.add();
    LatticeBuildResult R;
    R.Truncated = true;
    R.BuildStatus =
        truncationStatus(BuildStop::Memory, Meter, "lattice construction");
    R.Lattice = finalizeTruncatedConcepts(Ctx, {}, DeadlineKeepCap);
    return R;
  }
}

LatticeBuildResult
ParallelBuilder::buildLatticeBudgeted(const Context &Ctx,
                                      const BudgetMeter &Meter,
                                      unsigned NumThreads) {
  unsigned Resolved = ThreadPool::resolveThreadCount(NumThreads);
  if (Resolved == 1)
    return NextClosureBuilder::buildLatticeBudgeted(Ctx, Meter);
  ThreadPool Pool(Resolved);
  return buildLatticeBudgeted(Ctx, Meter, Pool);
}
