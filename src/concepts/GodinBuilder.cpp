//===- concepts/GodinBuilder.cpp - Incremental lattice construction -------===//
//
// Part of the Cable reproduction of "Debugging Temporal Specifications with
// Concept Analysis" (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//

#include "concepts/GodinBuilder.h"

#include "support/Metrics.h"
#include "support/TraceEvent.h"

#include <algorithm>
#include <cassert>
#include <numeric>
#include <unordered_map>

using namespace cable;

namespace {

Metrics::Counter &ObjectsAdded = Metrics::counter("godin.objects-added");
Metrics::Counter &ConceptsCreated = Metrics::counter("godin.concepts-created");

} // namespace

GodinBuilder::GodinBuilder(size_t NumAttributes)
    : NumAttributes(NumAttributes) {
  // Seed with the bottom concept (tau(A), A). With no objects yet,
  // tau(A) = ∅ over an empty object universe.
  Concept Bottom;
  Bottom.Extent = BitVector(0);
  Bottom.Intent = BitVector(NumAttributes);
  Bottom.Intent.setAll();
  Concepts.push_back(std::move(Bottom));
}

void GodinBuilder::addObject(const BitVector &Attrs) {
  assert(Attrs.size() == NumAttributes && "attribute universe mismatch");
  size_t X = NumObjects++;

  // Grow every extent to the new object universe.
  for (Concept &C : Concepts)
    C.Extent.resize(NumObjects);

  // Visit existing concepts in ascending intent size.
  std::vector<size_t> Order(Concepts.size());
  std::iota(Order.begin(), Order.end(), 0);
  std::vector<size_t> IntentCard(Concepts.size());
  for (size_t I = 0; I < Concepts.size(); ++I)
    IntentCard[I] = Concepts[I].Intent.count();
  std::sort(Order.begin(), Order.end(), [&](size_t A, size_t B) {
    return IntentCard[A] < IntentCard[B];
  });

  // Intents already present in the updated lattice (modified concepts keep
  // theirs; created concepts add theirs). Blocks duplicate creation.
  std::unordered_map<BitVector, size_t, BitVectorHash> Present;

  size_t NumOld = Concepts.size();
  std::vector<Concept> Created;
  // Candidate-intent scratch reused across the visit: a duplicate intent
  // (the common case on dense lattices) costs no allocation.
  BitVector Int(NumAttributes);
  for (size_t I = 0; I < NumOld; ++I) {
    Concept &C = Concepts[Order[I]];
    if (C.Intent.isSubsetOf(Attrs)) {
      // Modified concept: x joins the extent.
      C.Extent.set(X);
      Present.emplace(C.Intent, Order[I]);
      continue;
    }
    Int = C.Intent;
    Int &= Attrs;
    if (Present.find(Int) != Present.end())
      continue;
    // C is the generator with maximal extent for this intent (it is visited
    // first because its intent is the smallest producing Int).
    Concept N;
    N.Extent = C.Extent;
    N.Extent.set(X);
    N.Intent = Int;
    Present.emplace(N.Intent, NumOld + Created.size());
    Created.push_back(std::move(N));
  }
  for (Concept &N : Created)
    Concepts.push_back(std::move(N));
  ObjectsAdded.add();
  ConceptsCreated.add(Created.size());
}

bool GodinBuilder::addObjectBudgeted(const BitVector &Attrs,
                                     const BudgetMeter &Meter,
                                     size_t MaxConcepts) {
  assert(Attrs.size() == NumAttributes && "attribute universe mismatch");
  if (Meter.expired())
    return false;
  size_t X = NumObjects;

  std::vector<size_t> Order(Concepts.size());
  std::iota(Order.begin(), Order.end(), 0);
  std::vector<size_t> IntentCard(Concepts.size());
  for (size_t I = 0; I < Concepts.size(); ++I)
    IntentCard[I] = Concepts[I].Intent.count();
  std::sort(Order.begin(), Order.end(), [&](size_t A, size_t B) {
    return IntentCard[A] < IntentCard[B];
  });

  // Unlike addObject, nothing is mutated during the visit: modified
  // concepts and created concepts are staged and committed only once the
  // whole visit fits the budget, so stopping needs no rollback.
  std::unordered_map<BitVector, size_t, BitVectorHash> Present;
  std::vector<size_t> Modified;
  std::vector<Concept> Created;
  size_t NumOld = Concepts.size();
  BitVector Int(NumAttributes);
  for (size_t I = 0; I < NumOld; ++I) {
    if (Meter.expired())
      return false;
    Concept &C = Concepts[Order[I]];
    if (C.Intent.isSubsetOf(Attrs)) {
      Modified.push_back(Order[I]);
      Present.emplace(C.Intent, Order[I]);
      continue;
    }
    Int = C.Intent;
    Int &= Attrs;
    if (Present.find(Int) != Present.end())
      continue;
    Concept N;
    N.Extent = C.Extent;
    N.Intent = Int;
    Present.emplace(N.Intent, NumOld + Created.size());
    Created.push_back(std::move(N));
  }
  if (NumOld + Created.size() > MaxConcepts)
    return false;

  NumObjects = X + 1;
  for (Concept &C : Concepts)
    C.Extent.resize(NumObjects);
  for (size_t I : Modified)
    Concepts[I].Extent.set(X);
  for (Concept &N : Created) {
    N.Extent.resize(NumObjects);
    N.Extent.set(X);
    Concepts.push_back(std::move(N));
  }
  ObjectsAdded.add();
  ConceptsCreated.add(Created.size());
  return true;
}

ConceptLattice GodinBuilder::build() const {
  std::vector<Concept> Copy = Concepts;
  // With zero objects the seed concept has a zero-sized extent universe;
  // normalize so downstream code can rely on extents sized to numObjects().
  for (Concept &C : Copy)
    C.Extent.resize(NumObjects);
  return ConceptLattice::fromConcepts(std::move(Copy));
}

std::vector<Concept>
GodinBuilder::snapshotConcepts(size_t ExtentUniverse) const {
  assert(ExtentUniverse >= NumObjects && "snapshot universe too small");
  std::vector<Concept> Copy = Concepts;
  for (Concept &C : Copy)
    C.Extent.resize(ExtentUniverse);
  return Copy;
}

ConceptLattice GodinBuilder::buildLattice(const Context &Ctx) {
  TraceSpan Span("godin-build", static_cast<int64_t>(Ctx.numObjects()));
  GodinBuilder B(Ctx.numAttributes());
  for (size_t O = 0; O < Ctx.numObjects(); ++O)
    B.addObject(Ctx.objectRow(O));
  return B.build();
}

LatticeBuildResult
GodinBuilder::buildLatticeBudgeted(const Context &Ctx,
                                   const BudgetMeter &Meter) {
  Status Cells = checkContextCells(Ctx, Meter.budget());
  if (!Cells.isOk()) {
    LatticeBuildResult R;
    R.Lattice = finalizeTruncatedConcepts(Ctx, {}, DeadlineKeepCap);
    R.BuildStatus = std::move(Cells);
    R.Truncated = true;
    return R;
  }

  TraceSpan Span("godin-build", static_cast<int64_t>(Ctx.numObjects()));
  GodinBuilder B(Ctx.numAttributes());
  size_t Max = Meter.budget().MaxConcepts.value_or(SIZE_MAX);
  bool Stopped = false;
  for (size_t O = 0; O < Ctx.numObjects(); ++O) {
    if (!B.addObjectBudgeted(Ctx.objectRow(O), Meter, Max)) {
      Stopped = true;
      break;
    }
  }

  LatticeBuildResult R;
  R.NumEnumerated = B.numConcepts();
  // Even a completed insertion sequence defers to the truncated epilogue
  // when the clock ran out: build()'s cover computation is quadratic in
  // the concept count and must not start unbounded.
  if (!Stopped && !Meter.expired()) {
    R.Lattice = B.build();
    return R;
  }
  BuildStop Stop = Meter.expired() ? BuildStop::Time : BuildStop::ConceptCap;
  R.Truncated = true;
  R.BuildStatus = truncationStatus(Stop, Meter, "lattice construction");
  size_t Cap = Stop == BuildStop::Time ? DeadlineKeepCap : SIZE_MAX;
  R.Lattice = finalizeTruncatedConcepts(
      Ctx, B.snapshotConcepts(Ctx.numObjects()), Cap);
  return R;
}
