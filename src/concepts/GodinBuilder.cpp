//===- concepts/GodinBuilder.cpp - Incremental lattice construction -------===//
//
// Part of the Cable reproduction of "Debugging Temporal Specifications with
// Concept Analysis" (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//

#include "concepts/GodinBuilder.h"

#include <algorithm>
#include <cassert>
#include <numeric>
#include <unordered_map>

using namespace cable;

GodinBuilder::GodinBuilder(size_t NumAttributes)
    : NumAttributes(NumAttributes) {
  // Seed with the bottom concept (tau(A), A). With no objects yet,
  // tau(A) = ∅ over an empty object universe.
  Concept Bottom;
  Bottom.Extent = BitVector(0);
  Bottom.Intent = BitVector(NumAttributes);
  Bottom.Intent.setAll();
  Concepts.push_back(std::move(Bottom));
}

void GodinBuilder::addObject(const BitVector &Attrs) {
  assert(Attrs.size() == NumAttributes && "attribute universe mismatch");
  size_t X = NumObjects++;

  // Grow every extent to the new object universe.
  for (Concept &C : Concepts)
    C.Extent.resize(NumObjects);

  // Visit existing concepts in ascending intent size.
  std::vector<size_t> Order(Concepts.size());
  std::iota(Order.begin(), Order.end(), 0);
  std::vector<size_t> IntentCard(Concepts.size());
  for (size_t I = 0; I < Concepts.size(); ++I)
    IntentCard[I] = Concepts[I].Intent.count();
  std::sort(Order.begin(), Order.end(), [&](size_t A, size_t B) {
    return IntentCard[A] < IntentCard[B];
  });

  // Intents already present in the updated lattice (modified concepts keep
  // theirs; created concepts add theirs). Blocks duplicate creation.
  std::unordered_map<BitVector, size_t, BitVectorHash> Present;

  size_t NumOld = Concepts.size();
  std::vector<Concept> Created;
  for (size_t I = 0; I < NumOld; ++I) {
    Concept &C = Concepts[Order[I]];
    if (C.Intent.isSubsetOf(Attrs)) {
      // Modified concept: x joins the extent.
      C.Extent.set(X);
      Present.emplace(C.Intent, Order[I]);
      continue;
    }
    BitVector Int = C.Intent & Attrs;
    if (Present.count(Int))
      continue;
    // C is the generator with maximal extent for this intent (it is visited
    // first because its intent is the smallest producing Int).
    Concept N;
    N.Extent = C.Extent;
    N.Extent.set(X);
    N.Intent = Int;
    Present.emplace(N.Intent, NumOld + Created.size());
    Created.push_back(std::move(N));
  }
  for (Concept &N : Created)
    Concepts.push_back(std::move(N));
}

ConceptLattice GodinBuilder::build() const {
  std::vector<Concept> Copy = Concepts;
  // With zero objects the seed concept has a zero-sized extent universe;
  // normalize so downstream code can rely on extents sized to numObjects().
  for (Concept &C : Copy)
    C.Extent.resize(NumObjects);
  return ConceptLattice::fromConcepts(std::move(Copy));
}

ConceptLattice GodinBuilder::buildLattice(const Context &Ctx) {
  GodinBuilder B(Ctx.numAttributes());
  for (size_t O = 0; O < Ctx.numObjects(); ++O)
    B.addObject(Ctx.objectRow(O));
  return B.build();
}
