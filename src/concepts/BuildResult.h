//===- concepts/BuildResult.h - Budgeted construction results ---*- C++ -*-===//
//
// Part of the Cable reproduction of "Debugging Temporal Specifications with
// Concept Analysis" (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Shared result type and helpers for budgeted lattice construction.
/// Concept lattices are worst-case exponential in the context, so every
/// builder has a buildLatticeBudgeted entry point that stops cooperatively
/// at a BudgetMeter checkpoint and returns a *partial* lattice flagged
/// Truncated instead of running unbounded.
///
/// A truncated result is always a well-formed ConceptLattice (the top and
/// bottom concepts of the full context are ensured), just not the complete
/// one; downstream consumers (Session, meet/join) degrade to best
/// approximations on it.
///
//===----------------------------------------------------------------------===//

#ifndef CABLE_CONCEPTS_BUILDRESULT_H
#define CABLE_CONCEPTS_BUILDRESULT_H

#include "concepts/Lattice.h"
#include "support/Budget.h"
#include "support/Status.h"

namespace cable {

/// Why a budgeted enumeration stopped.
enum class BuildStop : uint8_t {
  Complete,   ///< Ran to the end; the lattice is the full one.
  ConceptCap, ///< Budget::MaxConcepts was hit with concepts remaining.
  Time,       ///< The deadline passed or the meter was cancelled.
  Memory,     ///< std::bad_alloc was contained; the prefix survived.
};

/// What a budgeted builder hands back: a lattice (complete, or a partial
/// one when Truncated), the status explaining any truncation, and how many
/// concepts were enumerated before stopping (which can exceed the size of
/// a deadline-truncated lattice; see DeadlineKeepCap).
struct LatticeBuildResult {
  ConceptLattice Lattice;
  Status BuildStatus;
  bool Truncated = false;
  size_t NumEnumerated = 0;
};

/// How many concepts a deadline-truncated result retains. Enumeration can
/// race far past what cover computation (quadratic in the concept count)
/// can afford within the same deadline, so the kept prefix is capped; this
/// keeps "returns within a small factor of the deadline" true regardless
/// of how fast closures are. Budget::MaxConcepts truncation is exact and
/// is not capped.
inline constexpr size_t DeadlineKeepCap = 1024;

/// Assembles a well-formed lattice from an arbitrary subset of a context's
/// concepts: reduces to \p Cap (keeping the most general concepts,
/// deterministically), then ensures the context's true top and bottom are
/// present so ConceptLattice's structural invariants hold. Preserves the
/// input order of the kept concepts. Cover edges are recomputed serially —
/// truncated sets are small by construction.
ConceptLattice finalizeTruncatedConcepts(const Context &Ctx,
                                         std::vector<Concept> Concepts,
                                         size_t Cap);

/// The Status describing a truncated build: Cancelled / ResourceExhausted
/// with a message naming the exhausted limit. \p Stop must not be
/// Complete.
Status truncationStatus(BuildStop Stop, const BudgetMeter &Meter,
                        const char *What);

/// Ok, or ResourceExhausted when the context is larger than
/// Budget::MaxContextCells allows (cells = objects × attributes).
Status checkContextCells(const Context &Ctx, const Budget &B);

/// The common truncated-path epilogue for the lectic enumerators
/// (NextClosure and ParallelBuilder): turns a lectic prefix of closed
/// intents into a LatticeBuildResult. Serial and parallel construction
/// funnel through this one function so a ConceptCap truncation is
/// bit-for-bit identical at every thread count.
LatticeBuildResult makeTruncatedFromIntents(const Context &Ctx,
                                            std::vector<BitVector> Intents,
                                            BuildStop Stop,
                                            const BudgetMeter &Meter,
                                            size_t NumEnumerated);

} // namespace cable

#endif // CABLE_CONCEPTS_BUILDRESULT_H
