//===- concepts/Lattice.h - Concept lattices --------------------*- C++ -*-===//
//
// Part of the Cable reproduction of "Debugging Temporal Specifications with
// Concept Analysis" (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The concept lattice (§3.1): all concepts of a context, ordered by extent
/// inclusion, with the cover (Hasse) relation materialized.
///
/// A concept pairs an extent X (objects) with an intent Y (attributes) such
/// that sigma(X) = Y and tau(Y) = X. The lattice is a subset lattice on
/// extents and simultaneously a superset lattice on intents; similarity
/// sim(X) = |Y| therefore increases moving down.
///
//===----------------------------------------------------------------------===//

#ifndef CABLE_CONCEPTS_LATTICE_H
#define CABLE_CONCEPTS_LATTICE_H

#include "concepts/Context.h"
#include "support/BitVector.h"
#include "support/Status.h"

#include <functional>
#include <optional>
#include <string>
#include <vector>

namespace cable {

/// Metadata stamped into (serialize) and verified against (deserialize) a
/// `cable-lattice/1` artifact. The (ContextHash, Builder, Budget) triple is
/// the artifact store's content-addressing key; object/attribute counts
/// pin the bit-vector geometry so a hash collision or a renamed file can
/// never be decoded against the wrong context shape.
struct LatticeArtifactMeta {
  /// Context::contentHash() of the source context (16 hex digits).
  std::string ContextHash;
  /// Builder family id, e.g. "nextclosure". Names the canonical concept
  /// order, not the execution engine: serial, parallel, and sharded
  /// builds all produce this same artifact byte-for-byte.
  std::string Builder;
  /// Budget fingerprint, e.g. "full" or "mc500" (see Session).
  std::string Budget;
  size_t NumObjects = 0;
  size_t NumAttributes = 0;
  /// True when the lattice is a budget-truncated prefix. The store only
  /// keeps complete lattices, but the format records it regardless.
  bool Truncated = false;
};

/// Verification depth for ConceptLattice::deserialize. Structural bounds
/// (node ids, section lengths, bit-vector tails) are always checked —
/// Header only skips the body CRC pass.
enum class LatticeVerify { Full, Header };

/// A formal concept: an extent/intent pair.
struct Concept {
  BitVector Extent;
  BitVector Intent;
};

/// The complete lattice of concepts of a context.
///
/// Node ids index an internal vector and are stable for the lifetime of the
/// lattice. Parents are *more general* (larger extent, smaller intent);
/// children are more specific. "Top" is the unique maximal concept (extent
/// = all objects) and "bottom" the unique minimal one.
class ConceptLattice {
public:
  using NodeId = uint32_t;

  /// Builds from a complete set of concepts (covers are computed here).
  /// \p Concepts must be exactly the concepts of some context, including
  /// top and bottom.
  static ConceptLattice fromConcepts(std::vector<Concept> Concepts);

  /// Builds from concepts plus an externally computed cover relation
  /// (pairs are (parent, child) node indices into \p Concepts). Used by
  /// constructions that produce the Hasse diagram natively (Lindig).
  static ConceptLattice
  fromConceptsAndCovers(std::vector<Concept> Concepts,
                        const std::vector<std::pair<NodeId, NodeId>> &Covers);

  size_t size() const { return Concepts.size(); }
  const Concept &node(NodeId Id) const { return Concepts[Id]; }

  NodeId top() const { return Top; }
  NodeId bottom() const { return Bottom; }

  /// Upper covers (immediately more general concepts).
  const std::vector<NodeId> &parents(NodeId Id) const { return Parents[Id]; }

  /// Lower covers (immediately more specific concepts).
  const std::vector<NodeId> &children(NodeId Id) const { return Children[Id]; }

  /// Number of cover edges.
  size_t numEdges() const;

  /// Partial order: true if \p A <= \p B (extent(A) subset of extent(B)).
  bool lessEqual(NodeId A, NodeId B) const {
    return Concepts[A].Extent.isSubsetOf(Concepts[B].Extent);
  }

  /// Finds the concept with exactly this extent, if any.
  std::optional<NodeId> findByExtent(const BitVector &Extent) const;

  /// Finds the concept with exactly this intent, if any.
  std::optional<NodeId> findByIntent(const BitVector &Intent) const;

  /// Greatest lower bound (meet): extent intersection, closed. On a
  /// lattice truncated by a budget the exact meet may be absent; the
  /// largest present concept below both arguments is returned instead.
  NodeId meet(NodeId A, NodeId B) const;

  /// Least upper bound (join): intent intersection on the dual side, with
  /// the dual best-approximation fallback on truncated lattices.
  NodeId join(NodeId A, NodeId B) const;

  /// The longest chain length from top to bottom (lattice height).
  size_t height() const;

  /// Ids sorted topologically from top downwards (every parent precedes
  /// each of its children).
  std::vector<NodeId> topDownOrder() const;

  /// The canonical scan order cover computation uses: ascending extent
  /// cardinality, ties broken by node id. \p Card[i] must be the extent
  /// cardinality of concept i. Exposed so batch builders that compute the
  /// cover relation themselves (in parallel) reproduce fromConcepts
  /// bit-for-bit.
  static std::vector<NodeId> coverScanOrder(const std::vector<size_t> &Card);

  /// Upper covers of the concept at scan position \p AI: the minimal
  /// strict superset extents among later scan positions, in scan order.
  /// Pure function of its arguments, safe to call concurrently for
  /// different positions.
  static std::vector<NodeId> coversAt(const std::vector<Concept> &Concepts,
                                      const std::vector<NodeId> &Order,
                                      const std::vector<size_t> &Card,
                                      size_t AI);

  /// Encodes the lattice as a `cable-lattice/1` artifact (docs/FORMATS.md):
  /// a fixed little-endian preamble (magic, format version, section
  /// lengths and CRCs), a hand-readable text header carrying \p Meta and
  /// the build stamp, and a packed body — extent and intent words, then
  /// both cover adjacency lists (parents and children, in stored order) as
  /// CSR offset/id arrays, so a round-trip restores the label-inheritance
  /// structure bit-for-bit, including iteration order.
  std::string serialize(const LatticeArtifactMeta &Meta) const;

  /// Decodes a serialize() artifact, verifying magic, format version,
  /// header CRC, and that \p Expect's context hash / builder / budget /
  /// dimensions match the stamped header (empty Expect fields match
  /// anything). \p Mode Full additionally checks the body CRC. Every
  /// structural invariant is validated before use: section bounds, node
  /// ids in range, clean bit-vector tails, parent/child symmetry, and
  /// top/bottom consistency. Failures produce a positioned Diagnostic
  /// naming \p File and the byte offset — corrupt artifacts are rejected,
  /// never half-loaded. \p Got, when non-null, receives the stamped
  /// metadata (even on some failures, best-effort).
  static StatusOr<ConceptLattice> deserialize(std::string_view Bytes,
                                              const LatticeArtifactMeta &Expect,
                                              LatticeVerify Mode,
                                              const std::string &File,
                                              LatticeArtifactMeta *Got
                                              = nullptr);

  /// Verifies lattice integrity against \p Ctx: every node is a concept of
  /// \p Ctx, every concept of the order appears exactly once, cover edges
  /// are exactly the transitive reduction. Intended for tests; O(n^2).
  bool verify(const Context &Ctx, std::string *WhyNot = nullptr) const;

  /// Renders DOT. \p NodeLabel maps a node to its display label.
  std::string
  renderDot(std::string_view Name,
            const std::function<std::string(NodeId)> &NodeLabel) const;

private:
  std::vector<Concept> Concepts;
  std::vector<std::vector<NodeId>> Parents;
  std::vector<std::vector<NodeId>> Children;
  NodeId Top = 0;
  NodeId Bottom = 0;

  void computeCovers();
  void locateTopAndBottom();
};

} // namespace cable

#endif // CABLE_CONCEPTS_LATTICE_H
