//===- concepts/NextClosureBuilder.h - Batch lattice construction * C++ *-===//
//
// Part of the Cable reproduction of "Debugging Temporal Specifications with
// Concept Analysis" (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Ganter's NextClosure algorithm: enumerates all closed intents of a
/// context in lectic order and assembles the concept lattice. Used as an
/// independent oracle against GodinBuilder — the two must produce the same
/// concept set — and as an alternative batch builder.
///
//===----------------------------------------------------------------------===//

#ifndef CABLE_CONCEPTS_NEXTCLOSUREBUILDER_H
#define CABLE_CONCEPTS_NEXTCLOSUREBUILDER_H

#include "concepts/Lattice.h"

namespace cable {

/// Batch construction via NextClosure.
class NextClosureBuilder {
public:
  /// Enumerates every closed intent of \p Ctx, in lectic order.
  static std::vector<BitVector> allClosedIntents(const Context &Ctx);

  /// Builds the full concept lattice of \p Ctx.
  static ConceptLattice buildLattice(const Context &Ctx);
};

} // namespace cable

#endif // CABLE_CONCEPTS_NEXTCLOSUREBUILDER_H
