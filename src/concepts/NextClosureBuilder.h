//===- concepts/NextClosureBuilder.h - Batch lattice construction * C++ *-===//
//
// Part of the Cable reproduction of "Debugging Temporal Specifications with
// Concept Analysis" (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Ganter's NextClosure algorithm: enumerates all closed intents of a
/// context in lectic order and assembles the concept lattice. Used as an
/// independent oracle against GodinBuilder — the two must produce the same
/// concept set — and as an alternative batch builder.
///
//===----------------------------------------------------------------------===//

#ifndef CABLE_CONCEPTS_NEXTCLOSUREBUILDER_H
#define CABLE_CONCEPTS_NEXTCLOSUREBUILDER_H

#include "concepts/BuildResult.h"
#include "concepts/Lattice.h"

namespace cable {

/// Batch construction via NextClosure.
class NextClosureBuilder {
public:
  /// Enumerates every closed intent of \p Ctx, in lectic order.
  static std::vector<BitVector> allClosedIntents(const Context &Ctx);

  /// Builds the full concept lattice of \p Ctx.
  static ConceptLattice buildLattice(const Context &Ctx);

  /// As allClosedIntents, but checks \p Meter before every candidate
  /// closure and stops at Budget::MaxConcepts. The returned vector is
  /// always a (possibly complete) prefix of the lectic enumeration; \p
  /// Stop reports whether and why it is proper.
  static std::vector<BitVector>
  allClosedIntentsBudgeted(const Context &Ctx, const BudgetMeter &Meter,
                           BuildStop &Stop);

  /// Budgeted construction: the full lattice when the budget suffices,
  /// otherwise a partial lattice flagged Truncated (see BuildResult.h).
  static LatticeBuildResult buildLatticeBudgeted(const Context &Ctx,
                                                 const BudgetMeter &Meter);
};

} // namespace cable

#endif // CABLE_CONCEPTS_NEXTCLOSUREBUILDER_H
