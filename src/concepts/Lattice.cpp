//===- concepts/Lattice.cpp - Concept lattices -----------------------------===//
//
// Part of the Cable reproduction of "Debugging Temporal Specifications with
// Concept Analysis" (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//

#include "concepts/Lattice.h"

#include "support/AtomicFile.h"
#include "support/BuildInfo.h"
#include "support/Dot.h"

#include <algorithm>
#include <bit>
#include <cassert>
#include <cstring>
#include <numeric>
#include <unordered_map>

using namespace cable;

ConceptLattice ConceptLattice::fromConcepts(std::vector<Concept> Concepts) {
  assert(!Concepts.empty() && "a concept lattice is never empty");
  ConceptLattice L;
  L.Concepts = std::move(Concepts);
  L.Parents.assign(L.Concepts.size(), {});
  L.Children.assign(L.Concepts.size(), {});
  L.computeCovers();
  L.locateTopAndBottom();
  return L;
}

ConceptLattice ConceptLattice::fromConceptsAndCovers(
    std::vector<Concept> Concepts,
    const std::vector<std::pair<NodeId, NodeId>> &Covers) {
  assert(!Concepts.empty() && "a concept lattice is never empty");
  ConceptLattice L;
  L.Concepts = std::move(Concepts);
  L.Parents.assign(L.Concepts.size(), {});
  L.Children.assign(L.Concepts.size(), {});
  for (const auto &[Parent, Child] : Covers) {
    assert(Parent < L.Concepts.size() && Child < L.Concepts.size() &&
           "cover edge out of range");
    L.Parents[Child].push_back(Parent);
    L.Children[Parent].push_back(Child);
  }
  L.locateTopAndBottom();
  return L;
}

void ConceptLattice::locateTopAndBottom() {
  // Top has the unique maximal extent; bottom the unique minimal one.
  Top = 0;
  Bottom = 0;
  for (NodeId Id = 0; Id < Concepts.size(); ++Id) {
    if (Concepts[Top].Extent.isSubsetOf(Concepts[Id].Extent))
      Top = Id;
    if (Concepts[Id].Extent.isSubsetOf(Concepts[Bottom].Extent))
      Bottom = Id;
  }
  assert(Parents[Top].empty() && "top must have no parents");
  assert(Children[Bottom].empty() && "bottom must have no children");
}

std::vector<ConceptLattice::NodeId>
ConceptLattice::coverScanOrder(const std::vector<size_t> &Card) {
  std::vector<NodeId> Order(Card.size());
  std::iota(Order.begin(), Order.end(), 0);
  // The id tie-break makes the order a total one, so serial and sharded
  // cover computation see the same scan sequence.
  std::sort(Order.begin(), Order.end(), [&](NodeId A, NodeId B) {
    return Card[A] != Card[B] ? Card[A] < Card[B] : A < B;
  });
  return Order;
}

std::vector<ConceptLattice::NodeId>
ConceptLattice::coversAt(const std::vector<Concept> &Concepts,
                         const std::vector<NodeId> &Order,
                         const std::vector<size_t> &Card, size_t AI) {
  NodeId A = Order[AI];
  // Candidates: strictly larger extents containing extent(A), scanned in
  // ascending cardinality so accepted covers are found before anything
  // they are contained in.
  std::vector<NodeId> Covers;
  for (size_t BI = AI + 1; BI < Order.size(); ++BI) {
    NodeId B = Order[BI];
    if (Card[B] == Card[A])
      continue; // Equal cardinality can't be a strict superset.
    if (!Concepts[A].Extent.isSubsetOf(Concepts[B].Extent))
      continue;
    bool Dominated = false;
    for (NodeId C : Covers)
      if (Concepts[C].Extent.isSubsetOf(Concepts[B].Extent)) {
        Dominated = true;
        break;
      }
    if (!Dominated)
      Covers.push_back(B);
  }
  return Covers;
}

void ConceptLattice::computeCovers() {
  // B covers A iff extent(A) < extent(B) and no C with
  // extent(A) < extent(C) < extent(B).
  size_t N = Concepts.size();
  std::vector<size_t> Card(N);
  for (size_t I = 0; I < N; ++I)
    Card[I] = Concepts[I].Extent.count();
  std::vector<NodeId> Order = coverScanOrder(Card);

  for (size_t AI = 0; AI < N; ++AI) {
    NodeId A = Order[AI];
    for (NodeId B : coversAt(Concepts, Order, Card, AI)) {
      Parents[A].push_back(B);
      Children[B].push_back(A);
    }
  }
}

size_t ConceptLattice::numEdges() const {
  size_t N = 0;
  for (const auto &P : Parents)
    N += P.size();
  return N;
}

std::optional<ConceptLattice::NodeId>
ConceptLattice::findByExtent(const BitVector &Extent) const {
  for (NodeId Id = 0; Id < Concepts.size(); ++Id)
    if (Concepts[Id].Extent == Extent)
      return Id;
  return std::nullopt;
}

std::optional<ConceptLattice::NodeId>
ConceptLattice::findByIntent(const BitVector &Intent) const {
  for (NodeId Id = 0; Id < Concepts.size(); ++Id)
    if (Concepts[Id].Intent == Intent)
      return Id;
  return std::nullopt;
}

ConceptLattice::NodeId ConceptLattice::meet(NodeId A, NodeId B) const {
  // The meet's extent is the largest concept extent contained in
  // extent(A) & extent(B); because concept extents are closed under
  // intersection, that intersection is itself an extent of the *context*.
  // On a complete lattice it is present and is returned exactly. On a
  // truncated lattice it may be missing; fall back to the largest present
  // extent contained in the intersection (the bottom concept always
  // qualifies, so a best approximation exists).
  BitVector Want = Concepts[A].Extent & Concepts[B].Extent;
  std::optional<NodeId> Found = findByExtent(Want);
  if (Found)
    return *Found;
  NodeId Best = Bottom;
  size_t BestCard = Concepts[Bottom].Extent.count();
  for (NodeId Id = 0; Id < Concepts.size(); ++Id) {
    if (!Concepts[Id].Extent.isSubsetOf(Want))
      continue;
    size_t Card = Concepts[Id].Extent.count();
    if (Card > BestCard) {
      Best = Id;
      BestCard = Card;
    }
  }
  return Best;
}

ConceptLattice::NodeId ConceptLattice::join(NodeId A, NodeId B) const {
  // Dual of meet: sigma(X ∪ Y) = sigma(X) ∩ sigma(Y), so the join's intent
  // is exactly the intent intersection. Same truncation fallback on the
  // intent side (the top concept's intent is a subset of every intent).
  BitVector Want = Concepts[A].Intent & Concepts[B].Intent;
  std::optional<NodeId> Found = findByIntent(Want);
  if (Found)
    return *Found;
  NodeId Best = Top;
  size_t BestCard = Concepts[Top].Intent.count();
  for (NodeId Id = 0; Id < Concepts.size(); ++Id) {
    if (!Concepts[Id].Intent.isSubsetOf(Want))
      continue;
    size_t Card = Concepts[Id].Intent.count();
    if (Card > BestCard) {
      Best = Id;
      BestCard = Card;
    }
  }
  return Best;
}

std::vector<ConceptLattice::NodeId> ConceptLattice::topDownOrder() const {
  // Kahn's algorithm from top: a node is emitted once all parents are.
  std::vector<size_t> Pending(Concepts.size());
  std::vector<NodeId> Out;
  std::vector<NodeId> Ready;
  for (NodeId Id = 0; Id < Concepts.size(); ++Id) {
    Pending[Id] = Parents[Id].size();
    if (Pending[Id] == 0)
      Ready.push_back(Id);
  }
  while (!Ready.empty()) {
    NodeId Id = Ready.back();
    Ready.pop_back();
    Out.push_back(Id);
    for (NodeId C : Children[Id])
      if (--Pending[C] == 0)
        Ready.push_back(C);
  }
  assert(Out.size() == Concepts.size() && "cover relation has a cycle");
  return Out;
}

size_t ConceptLattice::height() const {
  std::vector<size_t> Depth(Concepts.size(), 0);
  size_t Max = 0;
  for (NodeId Id : topDownOrder()) {
    for (NodeId C : Children[Id])
      Depth[C] = std::max(Depth[C], Depth[Id] + 1);
    Max = std::max(Max, Depth[Id]);
  }
  return Max;
}

bool ConceptLattice::verify(const Context &Ctx, std::string *WhyNot) const {
  auto Fail = [&](const std::string &Msg) {
    if (WhyNot)
      *WhyNot = Msg;
    return false;
  };

  // 1. Every node is a concept: sigma(Extent) == Intent, tau(Intent) ==
  //    Extent.
  for (NodeId Id = 0; Id < Concepts.size(); ++Id) {
    const Concept &C = Concepts[Id];
    if (!(Ctx.sigma(C.Extent) == C.Intent))
      return Fail("node " + std::to_string(Id) + ": sigma(extent) != intent");
    if (!(Ctx.tau(C.Intent) == C.Extent))
      return Fail("node " + std::to_string(Id) + ": tau(intent) != extent");
  }

  // 2. No duplicate extents.
  std::unordered_map<BitVector, NodeId, BitVectorHash> Seen;
  for (NodeId Id = 0; Id < Concepts.size(); ++Id)
    if (!Seen.emplace(Concepts[Id].Extent, Id).second)
      return Fail("duplicate extent at node " + std::to_string(Id));

  // 3. Completeness: every closed extent appears. Closure of every subset
  //    is too expensive; instead check closure of every single object and
  //    of the empty and full sets, plus closure under pairwise
  //    intersection of known extents.
  {
    BitVector Empty(Ctx.numObjects());
    if (!Seen.count(Ctx.closeExtent(Empty)))
      return Fail("missing closure of the empty object set");
    BitVector Full(Ctx.numObjects());
    Full.setAll();
    if (!Seen.count(Ctx.closeExtent(Full)))
      return Fail("missing top concept");
    for (size_t O = 0; O < Ctx.numObjects(); ++O) {
      BitVector Single(Ctx.numObjects());
      Single.set(O);
      if (!Seen.count(Ctx.closeExtent(Single)))
        return Fail("missing closure of object " + std::to_string(O));
    }
    for (NodeId A = 0; A < Concepts.size(); ++A)
      for (NodeId B = static_cast<NodeId>(A + 1); B < Concepts.size(); ++B) {
        BitVector Meet = Concepts[A].Extent & Concepts[B].Extent;
        if (!Seen.count(Meet))
          return Fail("extents not closed under intersection (" +
                      std::to_string(A) + ", " + std::to_string(B) + ")");
      }
  }

  // 4. Cover edges are the transitive reduction of extent inclusion.
  for (NodeId A = 0; A < Concepts.size(); ++A) {
    for (NodeId P : Parents[A]) {
      if (!(Concepts[A].Extent.isSubsetOf(Concepts[P].Extent)) ||
          Concepts[A].Extent == Concepts[P].Extent)
        return Fail("cover edge not a strict inclusion");
      for (NodeId M = 0; M < Concepts.size(); ++M) {
        if (M == A || M == P)
          continue;
        if (Concepts[A].Extent.isSubsetOf(Concepts[M].Extent) &&
            Concepts[M].Extent.isSubsetOf(Concepts[P].Extent))
          return Fail("cover edge skips an intermediate concept");
      }
    }
    // And every true cover is present: count strict supersets with no
    // intermediate.
    for (NodeId B = 0; B < Concepts.size(); ++B) {
      if (A == B)
        continue;
      if (!Concepts[A].Extent.isSubsetOf(Concepts[B].Extent) ||
          Concepts[A].Extent == Concepts[B].Extent)
        continue;
      bool HasMid = false;
      for (NodeId M = 0; M < Concepts.size(); ++M) {
        if (M == A || M == B)
          continue;
        if (Concepts[A].Extent.isSubsetOf(Concepts[M].Extent) &&
            Concepts[M].Extent.isSubsetOf(Concepts[B].Extent)) {
          HasMid = true;
          break;
        }
      }
      bool EdgePresent =
          std::find(Parents[A].begin(), Parents[A].end(), B) !=
          Parents[A].end();
      if (!HasMid && !EdgePresent)
        return Fail("missing cover edge " + std::to_string(A) + " -> " +
                    std::to_string(B));
    }
  }
  return true;
}

std::string ConceptLattice::renderDot(
    std::string_view Name,
    const std::function<std::string(NodeId)> &NodeLabel) const {
  DotWriter W{std::string(Name)};
  W.addRaw("rankdir=TB;");
  for (NodeId Id = 0; Id < Concepts.size(); ++Id)
    W.addNode("c" + std::to_string(Id), NodeLabel(Id), "shape=box");
  // Draw parent -> child so more general concepts sit higher.
  for (NodeId Id = 0; Id < Concepts.size(); ++Id)
    for (NodeId C : Children[Id])
      W.addEdge("c" + std::to_string(Id), "c" + std::to_string(C));
  return W.str();
}

//===----------------------------------------------------------------------===//
// cable-lattice/1 artifact codec (docs/FORMATS.md)
//
// Layout, all integers little-endian:
//
//   preamble (40 bytes)
//     0  magic            "CABLELAT"
//     8  u32 format       1
//     12 u32 header_len   padded text-header length (multiple of 8)
//     16 u32 header_crc   crc32 of the padded header bytes
//     20 u32 body_crc     crc32 of the body bytes
//     24 u64 body_len
//     32 u64 reserved     0
//   header (header_len bytes)
//     `key value` lines, '\n'-padded to an 8-byte multiple
//   body (body_len bytes, 8-aligned in the file for mmap word access)
//     extents   C * ceil(NObj/64)  u64
//     intents   C * ceil(NAttr/64) u64
//     parent_offsets (C+1) u32, then parent_ids E u32
//     child_offsets  (C+1) u32, then child_ids  E u32
//
// Both adjacency lists are stored in their exact in-memory order so a
// deserialized lattice iterates covers — and therefore renders DOT,
// orders topDownOrder(), and inherits labels — bit-for-bit like the
// freshly built original.
//===----------------------------------------------------------------------===//

namespace {

constexpr char kLatticeMagic[8] = {'C', 'A', 'B', 'L', 'E', 'L', 'A', 'T'};
constexpr uint32_t kLatticeFormatVersion = 1;
constexpr size_t kPreambleSize = 40;

void appendLE32(std::string &Out, uint32_t V) {
  for (int B = 0; B < 4; ++B)
    Out.push_back(static_cast<char>((V >> (8 * B)) & 0xff));
}

void appendLE64(std::string &Out, uint64_t V) {
  for (int B = 0; B < 8; ++B)
    Out.push_back(static_cast<char>((V >> (8 * B)) & 0xff));
}

uint32_t readLE32(std::string_view Data, size_t Off) {
  uint32_t V = 0;
  for (int B = 0; B < 4; ++B)
    V |= static_cast<uint32_t>(static_cast<unsigned char>(Data[Off + B]))
         << (8 * B);
  return V;
}

uint64_t readLE64(std::string_view Data, size_t Off) {
  uint64_t V = 0;
  for (int B = 0; B < 8; ++B)
    V |= static_cast<uint64_t>(static_cast<unsigned char>(Data[Off + B]))
         << (8 * B);
  return V;
}

Status artifactError(const std::string &File, size_t Offset,
                     std::string What) {
  Diagnostic D;
  D.Level = Severity::Error;
  D.Code = ErrorCode::ParseError;
  D.File = File;
  D.Message = "cable-lattice artifact: " + std::move(What) +
              " (byte offset " + std::to_string(Offset) + ")";
  return Status::error(std::move(D));
}

/// One `key value` line of the text header.
std::optional<std::string_view> headerValue(std::string_view Header,
                                            std::string_view Key) {
  size_t Pos = 0;
  while (Pos < Header.size()) {
    size_t Eol = Header.find('\n', Pos);
    if (Eol == std::string_view::npos)
      Eol = Header.size();
    std::string_view Line = Header.substr(Pos, Eol - Pos);
    if (Line.size() > Key.size() && Line.substr(0, Key.size()) == Key &&
        Line[Key.size()] == ' ')
      return Line.substr(Key.size() + 1);
    Pos = Eol + 1;
  }
  return std::nullopt;
}

std::optional<uint64_t> headerNumber(std::string_view Header,
                                     std::string_view Key) {
  std::optional<std::string_view> V = headerValue(Header, Key);
  if (!V || V->empty())
    return std::nullopt;
  uint64_t N = 0;
  for (char C : *V) {
    if (C < '0' || C > '9')
      return std::nullopt;
    N = N * 10 + static_cast<uint64_t>(C - '0');
  }
  return N;
}

} // namespace

std::string ConceptLattice::serialize(const LatticeArtifactMeta &Meta) const {
  const size_t C = Concepts.size();
  const size_t EW = (Meta.NumObjects + 63) / 64;
  const size_t IW = (Meta.NumAttributes + 63) / 64;
  size_t E = 0;
  for (const std::vector<NodeId> &P : Parents)
    E += P.size();

  std::string Header;
  Header += "format cable-lattice/1\n";
  Header += "tool cable ";
  Header += buildinfo::kVersion;
  Header += "\n";
  Header += "context " + Meta.ContextHash + "\n";
  Header += "builder " + Meta.Builder + "\n";
  Header += "budget " + Meta.Budget + "\n";
  Header += "objects " + std::to_string(Meta.NumObjects) + "\n";
  Header += "attributes " + std::to_string(Meta.NumAttributes) + "\n";
  Header += "concepts " + std::to_string(C) + "\n";
  Header += "edges " + std::to_string(E) + "\n";
  Header += "top " + std::to_string(Top) + "\n";
  Header += "bottom " + std::to_string(Bottom) + "\n";
  Header += std::string("truncated ") + (Meta.Truncated ? "1" : "0") + "\n";
  // Pad with newlines so the body starts 8-aligned (the preamble is 40
  // bytes): mmap'd extent/intent words can then be read at natural
  // alignment straight out of the mapping.
  while (Header.size() % 8 != 0)
    Header += '\n';

  std::string Body;
  Body.reserve(C * (EW + IW) * 8 + (2 * C + 2 + 2 * E) * 4 + 8);
  for (const Concept &N : Concepts) {
    assert(N.Extent.size() == Meta.NumObjects && N.Extent.tailIsClean());
    for (size_t W = 0; W < EW; ++W)
      appendLE64(Body, N.Extent.words()[W]);
  }
  for (const Concept &N : Concepts) {
    assert(N.Intent.size() == Meta.NumAttributes && N.Intent.tailIsClean());
    for (size_t W = 0; W < IW; ++W)
      appendLE64(Body, N.Intent.words()[W]);
  }
  auto AppendAdjacency = [&](const std::vector<std::vector<NodeId>> &Adj) {
    uint32_t Off = 0;
    for (size_t I = 0; I <= C; ++I) {
      appendLE32(Body, Off);
      if (I < C)
        Off += static_cast<uint32_t>(Adj[I].size());
    }
    for (const std::vector<NodeId> &Ids : Adj)
      for (NodeId Id : Ids)
        appendLE32(Body, Id);
  };
  AppendAdjacency(Parents);
  AppendAdjacency(Children);
  while (Body.size() % 8 != 0)
    Body.push_back('\0');

  std::string Out;
  Out.reserve(kPreambleSize + Header.size() + Body.size());
  Out.append(kLatticeMagic, sizeof(kLatticeMagic));
  appendLE32(Out, kLatticeFormatVersion);
  appendLE32(Out, static_cast<uint32_t>(Header.size()));
  appendLE32(Out, crc32(Header));
  appendLE32(Out, crc32(Body));
  appendLE64(Out, Body.size());
  appendLE64(Out, 0);
  Out += Header;
  Out += Body;
  return Out;
}

StatusOr<ConceptLattice>
ConceptLattice::deserialize(std::string_view Bytes,
                            const LatticeArtifactMeta &Expect,
                            LatticeVerify Mode, const std::string &File,
                            LatticeArtifactMeta *Got) {
  if (Bytes.size() < kPreambleSize)
    return artifactError(File, Bytes.size(),
                         "truncated preamble: " + std::to_string(Bytes.size()) +
                             " byte(s), need " + std::to_string(kPreambleSize));
  if (Bytes.compare(0, sizeof(kLatticeMagic),
                    std::string_view(kLatticeMagic, sizeof(kLatticeMagic))) !=
      0)
    return artifactError(File, 0, "bad magic, not a cable-lattice file");
  uint32_t Format = readLE32(Bytes, 8);
  if (Format != kLatticeFormatVersion)
    return artifactError(File, 8,
                         "unsupported format version " +
                             std::to_string(Format) + ", this build reads " +
                             std::to_string(kLatticeFormatVersion));
  uint64_t HeaderLen = readLE32(Bytes, 12);
  uint32_t HeaderCrc = readLE32(Bytes, 16);
  uint32_t BodyCrc = readLE32(Bytes, 20);
  uint64_t BodyLen = readLE64(Bytes, 24);
  if (kPreambleSize + HeaderLen + BodyLen != Bytes.size())
    return artifactError(
        File, 12,
        "section lengths disagree with the file size: header " +
            std::to_string(HeaderLen) + " + body " + std::to_string(BodyLen) +
            " + preamble != " + std::to_string(Bytes.size()));
  std::string_view Header = Bytes.substr(kPreambleSize, HeaderLen);
  if (crc32(Header) != HeaderCrc)
    return artifactError(File, 16, "header checksum mismatch");
  std::string_view Body = Bytes.substr(kPreambleSize + HeaderLen);

  // The header CRC held, so the stamped metadata is trustworthy from here.
  if (std::optional<std::string_view> F = headerValue(Header, "format");
      !F || *F != "cable-lattice/1")
    return artifactError(File, kPreambleSize, "header names a foreign format");
  LatticeArtifactMeta M;
  M.ContextHash = std::string(headerValue(Header, "context").value_or(""));
  M.Builder = std::string(headerValue(Header, "builder").value_or(""));
  M.Budget = std::string(headerValue(Header, "budget").value_or(""));
  std::optional<uint64_t> NObj = headerNumber(Header, "objects");
  std::optional<uint64_t> NAttr = headerNumber(Header, "attributes");
  std::optional<uint64_t> NumC = headerNumber(Header, "concepts");
  std::optional<uint64_t> NumE = headerNumber(Header, "edges");
  std::optional<uint64_t> TopId = headerNumber(Header, "top");
  std::optional<uint64_t> BottomId = headerNumber(Header, "bottom");
  std::optional<uint64_t> Trunc = headerNumber(Header, "truncated");
  if (!NObj || !NAttr || !NumC || !NumE || !TopId || !BottomId || !Trunc)
    return artifactError(File, kPreambleSize, "header is missing fields");
  M.NumObjects = *NObj;
  M.NumAttributes = *NAttr;
  M.Truncated = *Trunc != 0;
  if (Got)
    *Got = M;

  // Content-addressing checks: a stale rename or a reused key must be
  // caught before any body bytes are interpreted.
  if (!Expect.ContextHash.empty() && Expect.ContextHash != M.ContextHash)
    return artifactError(File, kPreambleSize,
                         "context hash mismatch: artifact " + M.ContextHash +
                             ", expected " + Expect.ContextHash);
  if (!Expect.Builder.empty() && Expect.Builder != M.Builder)
    return artifactError(File, kPreambleSize,
                         "builder mismatch: artifact '" + M.Builder +
                             "', expected '" + Expect.Builder + "'");
  if (!Expect.Budget.empty() && Expect.Budget != M.Budget)
    return artifactError(File, kPreambleSize,
                         "budget mismatch: artifact '" + M.Budget +
                             "', expected '" + Expect.Budget + "'");
  if (Expect.NumObjects && Expect.NumObjects != M.NumObjects)
    return artifactError(File, kPreambleSize, "object count mismatch");
  if (Expect.NumAttributes && Expect.NumAttributes != M.NumAttributes)
    return artifactError(File, kPreambleSize, "attribute count mismatch");

  if (Mode == LatticeVerify::Full && crc32(Body) != BodyCrc)
    return artifactError(File, 20, "body checksum mismatch");

  const size_t C = *NumC;
  const size_t E = *NumE;
  if (C == 0)
    return artifactError(File, kPreambleSize, "empty lattice");
  if (*TopId >= C || *BottomId >= C)
    return artifactError(File, kPreambleSize, "top/bottom id out of range");
  const size_t EW = (M.NumObjects + 63) / 64;
  const size_t IW = (M.NumAttributes + 63) / 64;
  const size_t WordsLen = C * (EW + IW) * 8;
  const size_t AdjLen = 2 * ((C + 1) + E) * 4;
  const size_t NeedLen = (WordsLen + AdjLen + 7) / 8 * 8;
  if (Body.size() != NeedLen)
    return artifactError(File, kPreambleSize + HeaderLen,
                         "body length " + std::to_string(Body.size()) +
                             " does not match the header geometry (" +
                             std::to_string(NeedLen) + ")");

  ConceptLattice L;
  L.Concepts.resize(C);
  size_t Off = 0;
  // Word decode: one readLE64 per word keeps the loop endian-correct; on
  // little-endian hosts the format is the in-memory layout, so the whole
  // span is one memcpy (the tail-invariant check still touches every
  // vector afterwards).
  auto CopyWords = [&Body](uint64_t *Dst, size_t At, size_t NumWords) {
    if constexpr (std::endian::native == std::endian::little)
      std::memcpy(Dst, Body.data() + At, NumWords * 8);
    else
      for (size_t W = 0; W < NumWords; ++W)
        Dst[W] = readLE64(Body, At + W * 8);
  };
  for (size_t I = 0; I < C; ++I) {
    BitVector Ext(M.NumObjects);
    CopyWords(Ext.words(), Off, EW);
    Off += EW * 8;
    if (!Ext.tailIsClean())
      return artifactError(File, kPreambleSize + HeaderLen + Off - 8,
                           "extent " + std::to_string(I) +
                               " has bits past the object universe");
    L.Concepts[I].Extent = std::move(Ext);
  }
  for (size_t I = 0; I < C; ++I) {
    BitVector Int(M.NumAttributes);
    CopyWords(Int.words(), Off, IW);
    Off += IW * 8;
    if (!Int.tailIsClean())
      return artifactError(File, kPreambleSize + HeaderLen + Off - 8,
                           "intent " + std::to_string(I) +
                               " has bits past the attribute universe");
    L.Concepts[I].Intent = std::move(Int);
  }

  auto CopyU32 = [&Body](uint32_t *Dst, size_t At, size_t Num) {
    if constexpr (std::endian::native == std::endian::little)
      std::memcpy(Dst, Body.data() + At, Num * 4);
    else
      for (size_t I = 0; I < Num; ++I)
        Dst[I] = readLE32(Body, At + I * 4);
  };
  std::vector<uint32_t> Ids(E);
  auto ReadAdjacency =
      [&](std::vector<std::vector<NodeId>> &Adj) -> std::optional<size_t> {
    std::vector<uint32_t> Offsets(C + 1);
    CopyU32(Offsets.data(), Off, C + 1);
    Off += (C + 1) * 4;
    if (Offsets[0] != 0 || Offsets[C] != E)
      return Off - 4;
    for (size_t I = 0; I < C; ++I)
      if (Offsets[I] > Offsets[I + 1])
        return Off;
    CopyU32(Ids.data(), Off, E);
    for (size_t J = 0; J < E; ++J)
      if (Ids[J] >= C)
        return Off + J * 4;
    Adj.resize(C);
    for (size_t I = 0; I < C; ++I)
      Adj[I].assign(Ids.begin() + Offsets[I], Ids.begin() + Offsets[I + 1]);
    Off += E * 4;
    return std::nullopt;
  };
  if (std::optional<size_t> Bad = ReadAdjacency(L.Parents))
    return artifactError(File, kPreambleSize + HeaderLen + *Bad,
                         "malformed parent adjacency");
  if (std::optional<size_t> Bad = ReadAdjacency(L.Children))
    return artifactError(File, kPreambleSize + HeaderLen + *Bad,
                         "malformed child adjacency");

  // Cover symmetry: every parent edge must have exactly one matching child
  // edge — this is the hottest validation step on the warm startup path,
  // catching any adjacency-only bit flips the CRC pass was told to skip
  // (Header mode). For the lattice sizes the paper's protocols produce, a
  // C x C edge bitset makes it O(E): mark each child edge (rejecting
  // duplicates), then consume each parent edge; both multisets match iff
  // every mark is consumed exactly once. Past the quadratic-memory cutoff,
  // fall back to packing both edge multisets into u64 keys and sorting.
  bool Symmetric = true;
  if (C <= 2048) {
    std::vector<uint64_t> EdgeBits((C * C + 63) / 64, 0);
    size_t Marked = 0;
    for (size_t I = 0; I < C && Symmetric; ++I)
      for (NodeId Ch : L.Children[I]) {
        size_t Bit = I * C + Ch;
        if (EdgeBits[Bit / 64] & (1ull << (Bit % 64))) {
          Symmetric = false; // duplicate child edge
          break;
        }
        EdgeBits[Bit / 64] |= 1ull << (Bit % 64);
        ++Marked;
      }
    for (size_t I = 0; I < C && Symmetric; ++I)
      for (NodeId P : L.Parents[I]) {
        size_t Bit = static_cast<size_t>(P) * C + I;
        if (!(EdgeBits[Bit / 64] & (1ull << (Bit % 64)))) {
          Symmetric = false; // unmatched or duplicate parent edge
          break;
        }
        EdgeBits[Bit / 64] &= ~(1ull << (Bit % 64));
        --Marked;
      }
    Symmetric = Symmetric && Marked == 0;
  } else {
    std::vector<uint64_t> FromParents, FromChildren;
    FromParents.reserve(E);
    FromChildren.reserve(E);
    for (size_t I = 0; I < C; ++I) {
      for (NodeId P : L.Parents[I])
        FromParents.push_back(static_cast<uint64_t>(P) << 32 | I);
      for (NodeId Ch : L.Children[I])
        FromChildren.push_back(static_cast<uint64_t>(I) << 32 | Ch);
    }
    std::sort(FromParents.begin(), FromParents.end());
    std::sort(FromChildren.begin(), FromChildren.end());
    Symmetric = FromParents == FromChildren;
  }
  if (!Symmetric)
    return artifactError(File, kPreambleSize + HeaderLen + WordsLen,
                         "parent/child adjacency lists disagree");
  if (!L.Parents[*TopId].empty() || !L.Children[*BottomId].empty())
    return artifactError(File, kPreambleSize,
                         "stamped top/bottom have covers above/below");
  L.Top = static_cast<NodeId>(*TopId);
  L.Bottom = static_cast<NodeId>(*BottomId);
  return L;
}
