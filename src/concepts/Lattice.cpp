//===- concepts/Lattice.cpp - Concept lattices -----------------------------===//
//
// Part of the Cable reproduction of "Debugging Temporal Specifications with
// Concept Analysis" (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//

#include "concepts/Lattice.h"

#include "support/Dot.h"

#include <algorithm>
#include <cassert>
#include <numeric>
#include <unordered_map>

using namespace cable;

ConceptLattice ConceptLattice::fromConcepts(std::vector<Concept> Concepts) {
  assert(!Concepts.empty() && "a concept lattice is never empty");
  ConceptLattice L;
  L.Concepts = std::move(Concepts);
  L.Parents.assign(L.Concepts.size(), {});
  L.Children.assign(L.Concepts.size(), {});
  L.computeCovers();
  L.locateTopAndBottom();
  return L;
}

ConceptLattice ConceptLattice::fromConceptsAndCovers(
    std::vector<Concept> Concepts,
    const std::vector<std::pair<NodeId, NodeId>> &Covers) {
  assert(!Concepts.empty() && "a concept lattice is never empty");
  ConceptLattice L;
  L.Concepts = std::move(Concepts);
  L.Parents.assign(L.Concepts.size(), {});
  L.Children.assign(L.Concepts.size(), {});
  for (const auto &[Parent, Child] : Covers) {
    assert(Parent < L.Concepts.size() && Child < L.Concepts.size() &&
           "cover edge out of range");
    L.Parents[Child].push_back(Parent);
    L.Children[Parent].push_back(Child);
  }
  L.locateTopAndBottom();
  return L;
}

void ConceptLattice::locateTopAndBottom() {
  // Top has the unique maximal extent; bottom the unique minimal one.
  Top = 0;
  Bottom = 0;
  for (NodeId Id = 0; Id < Concepts.size(); ++Id) {
    if (Concepts[Top].Extent.isSubsetOf(Concepts[Id].Extent))
      Top = Id;
    if (Concepts[Id].Extent.isSubsetOf(Concepts[Bottom].Extent))
      Bottom = Id;
  }
  assert(Parents[Top].empty() && "top must have no parents");
  assert(Children[Bottom].empty() && "bottom must have no children");
}

std::vector<ConceptLattice::NodeId>
ConceptLattice::coverScanOrder(const std::vector<size_t> &Card) {
  std::vector<NodeId> Order(Card.size());
  std::iota(Order.begin(), Order.end(), 0);
  // The id tie-break makes the order a total one, so serial and sharded
  // cover computation see the same scan sequence.
  std::sort(Order.begin(), Order.end(), [&](NodeId A, NodeId B) {
    return Card[A] != Card[B] ? Card[A] < Card[B] : A < B;
  });
  return Order;
}

std::vector<ConceptLattice::NodeId>
ConceptLattice::coversAt(const std::vector<Concept> &Concepts,
                         const std::vector<NodeId> &Order,
                         const std::vector<size_t> &Card, size_t AI) {
  NodeId A = Order[AI];
  // Candidates: strictly larger extents containing extent(A), scanned in
  // ascending cardinality so accepted covers are found before anything
  // they are contained in.
  std::vector<NodeId> Covers;
  for (size_t BI = AI + 1; BI < Order.size(); ++BI) {
    NodeId B = Order[BI];
    if (Card[B] == Card[A])
      continue; // Equal cardinality can't be a strict superset.
    if (!Concepts[A].Extent.isSubsetOf(Concepts[B].Extent))
      continue;
    bool Dominated = false;
    for (NodeId C : Covers)
      if (Concepts[C].Extent.isSubsetOf(Concepts[B].Extent)) {
        Dominated = true;
        break;
      }
    if (!Dominated)
      Covers.push_back(B);
  }
  return Covers;
}

void ConceptLattice::computeCovers() {
  // B covers A iff extent(A) < extent(B) and no C with
  // extent(A) < extent(C) < extent(B).
  size_t N = Concepts.size();
  std::vector<size_t> Card(N);
  for (size_t I = 0; I < N; ++I)
    Card[I] = Concepts[I].Extent.count();
  std::vector<NodeId> Order = coverScanOrder(Card);

  for (size_t AI = 0; AI < N; ++AI) {
    NodeId A = Order[AI];
    for (NodeId B : coversAt(Concepts, Order, Card, AI)) {
      Parents[A].push_back(B);
      Children[B].push_back(A);
    }
  }
}

size_t ConceptLattice::numEdges() const {
  size_t N = 0;
  for (const auto &P : Parents)
    N += P.size();
  return N;
}

std::optional<ConceptLattice::NodeId>
ConceptLattice::findByExtent(const BitVector &Extent) const {
  for (NodeId Id = 0; Id < Concepts.size(); ++Id)
    if (Concepts[Id].Extent == Extent)
      return Id;
  return std::nullopt;
}

std::optional<ConceptLattice::NodeId>
ConceptLattice::findByIntent(const BitVector &Intent) const {
  for (NodeId Id = 0; Id < Concepts.size(); ++Id)
    if (Concepts[Id].Intent == Intent)
      return Id;
  return std::nullopt;
}

ConceptLattice::NodeId ConceptLattice::meet(NodeId A, NodeId B) const {
  // The meet's extent is the largest concept extent contained in
  // extent(A) & extent(B); because concept extents are closed under
  // intersection, that intersection is itself an extent of the *context*.
  // On a complete lattice it is present and is returned exactly. On a
  // truncated lattice it may be missing; fall back to the largest present
  // extent contained in the intersection (the bottom concept always
  // qualifies, so a best approximation exists).
  BitVector Want = Concepts[A].Extent & Concepts[B].Extent;
  std::optional<NodeId> Found = findByExtent(Want);
  if (Found)
    return *Found;
  NodeId Best = Bottom;
  size_t BestCard = Concepts[Bottom].Extent.count();
  for (NodeId Id = 0; Id < Concepts.size(); ++Id) {
    if (!Concepts[Id].Extent.isSubsetOf(Want))
      continue;
    size_t Card = Concepts[Id].Extent.count();
    if (Card > BestCard) {
      Best = Id;
      BestCard = Card;
    }
  }
  return Best;
}

ConceptLattice::NodeId ConceptLattice::join(NodeId A, NodeId B) const {
  // Dual of meet: sigma(X ∪ Y) = sigma(X) ∩ sigma(Y), so the join's intent
  // is exactly the intent intersection. Same truncation fallback on the
  // intent side (the top concept's intent is a subset of every intent).
  BitVector Want = Concepts[A].Intent & Concepts[B].Intent;
  std::optional<NodeId> Found = findByIntent(Want);
  if (Found)
    return *Found;
  NodeId Best = Top;
  size_t BestCard = Concepts[Top].Intent.count();
  for (NodeId Id = 0; Id < Concepts.size(); ++Id) {
    if (!Concepts[Id].Intent.isSubsetOf(Want))
      continue;
    size_t Card = Concepts[Id].Intent.count();
    if (Card > BestCard) {
      Best = Id;
      BestCard = Card;
    }
  }
  return Best;
}

std::vector<ConceptLattice::NodeId> ConceptLattice::topDownOrder() const {
  // Kahn's algorithm from top: a node is emitted once all parents are.
  std::vector<size_t> Pending(Concepts.size());
  std::vector<NodeId> Out;
  std::vector<NodeId> Ready;
  for (NodeId Id = 0; Id < Concepts.size(); ++Id) {
    Pending[Id] = Parents[Id].size();
    if (Pending[Id] == 0)
      Ready.push_back(Id);
  }
  while (!Ready.empty()) {
    NodeId Id = Ready.back();
    Ready.pop_back();
    Out.push_back(Id);
    for (NodeId C : Children[Id])
      if (--Pending[C] == 0)
        Ready.push_back(C);
  }
  assert(Out.size() == Concepts.size() && "cover relation has a cycle");
  return Out;
}

size_t ConceptLattice::height() const {
  std::vector<size_t> Depth(Concepts.size(), 0);
  size_t Max = 0;
  for (NodeId Id : topDownOrder()) {
    for (NodeId C : Children[Id])
      Depth[C] = std::max(Depth[C], Depth[Id] + 1);
    Max = std::max(Max, Depth[Id]);
  }
  return Max;
}

bool ConceptLattice::verify(const Context &Ctx, std::string *WhyNot) const {
  auto Fail = [&](const std::string &Msg) {
    if (WhyNot)
      *WhyNot = Msg;
    return false;
  };

  // 1. Every node is a concept: sigma(Extent) == Intent, tau(Intent) ==
  //    Extent.
  for (NodeId Id = 0; Id < Concepts.size(); ++Id) {
    const Concept &C = Concepts[Id];
    if (!(Ctx.sigma(C.Extent) == C.Intent))
      return Fail("node " + std::to_string(Id) + ": sigma(extent) != intent");
    if (!(Ctx.tau(C.Intent) == C.Extent))
      return Fail("node " + std::to_string(Id) + ": tau(intent) != extent");
  }

  // 2. No duplicate extents.
  std::unordered_map<BitVector, NodeId, BitVectorHash> Seen;
  for (NodeId Id = 0; Id < Concepts.size(); ++Id)
    if (!Seen.emplace(Concepts[Id].Extent, Id).second)
      return Fail("duplicate extent at node " + std::to_string(Id));

  // 3. Completeness: every closed extent appears. Closure of every subset
  //    is too expensive; instead check closure of every single object and
  //    of the empty and full sets, plus closure under pairwise
  //    intersection of known extents.
  {
    BitVector Empty(Ctx.numObjects());
    if (!Seen.count(Ctx.closeExtent(Empty)))
      return Fail("missing closure of the empty object set");
    BitVector Full(Ctx.numObjects());
    Full.setAll();
    if (!Seen.count(Ctx.closeExtent(Full)))
      return Fail("missing top concept");
    for (size_t O = 0; O < Ctx.numObjects(); ++O) {
      BitVector Single(Ctx.numObjects());
      Single.set(O);
      if (!Seen.count(Ctx.closeExtent(Single)))
        return Fail("missing closure of object " + std::to_string(O));
    }
    for (NodeId A = 0; A < Concepts.size(); ++A)
      for (NodeId B = static_cast<NodeId>(A + 1); B < Concepts.size(); ++B) {
        BitVector Meet = Concepts[A].Extent & Concepts[B].Extent;
        if (!Seen.count(Meet))
          return Fail("extents not closed under intersection (" +
                      std::to_string(A) + ", " + std::to_string(B) + ")");
      }
  }

  // 4. Cover edges are the transitive reduction of extent inclusion.
  for (NodeId A = 0; A < Concepts.size(); ++A) {
    for (NodeId P : Parents[A]) {
      if (!(Concepts[A].Extent.isSubsetOf(Concepts[P].Extent)) ||
          Concepts[A].Extent == Concepts[P].Extent)
        return Fail("cover edge not a strict inclusion");
      for (NodeId M = 0; M < Concepts.size(); ++M) {
        if (M == A || M == P)
          continue;
        if (Concepts[A].Extent.isSubsetOf(Concepts[M].Extent) &&
            Concepts[M].Extent.isSubsetOf(Concepts[P].Extent))
          return Fail("cover edge skips an intermediate concept");
      }
    }
    // And every true cover is present: count strict supersets with no
    // intermediate.
    for (NodeId B = 0; B < Concepts.size(); ++B) {
      if (A == B)
        continue;
      if (!Concepts[A].Extent.isSubsetOf(Concepts[B].Extent) ||
          Concepts[A].Extent == Concepts[B].Extent)
        continue;
      bool HasMid = false;
      for (NodeId M = 0; M < Concepts.size(); ++M) {
        if (M == A || M == B)
          continue;
        if (Concepts[A].Extent.isSubsetOf(Concepts[M].Extent) &&
            Concepts[M].Extent.isSubsetOf(Concepts[B].Extent)) {
          HasMid = true;
          break;
        }
      }
      bool EdgePresent =
          std::find(Parents[A].begin(), Parents[A].end(), B) !=
          Parents[A].end();
      if (!HasMid && !EdgePresent)
        return Fail("missing cover edge " + std::to_string(A) + " -> " +
                    std::to_string(B));
    }
  }
  return true;
}

std::string ConceptLattice::renderDot(
    std::string_view Name,
    const std::function<std::string(NodeId)> &NodeLabel) const {
  DotWriter W{std::string(Name)};
  W.addRaw("rankdir=TB;");
  for (NodeId Id = 0; Id < Concepts.size(); ++Id)
    W.addNode("c" + std::to_string(Id), NodeLabel(Id), "shape=box");
  // Draw parent -> child so more general concepts sit higher.
  for (NodeId Id = 0; Id < Concepts.size(); ++Id)
    for (NodeId C : Children[Id])
      W.addEdge("c" + std::to_string(Id), "c" + std::to_string(C));
  return W.str();
}
