//===- trace/TraceSet.h - Collections of traces -----------------*- C++ -*-===//
//
// Part of the Cable reproduction of "Debugging Temporal Specifications with
// Concept Analysis" (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A TraceSet bundles traces with the EventTable their event ids refer to.
/// It provides the identical-trace classing of §5 (Strauss extracts many
/// identical scenario traces; the paper builds the lattice from one
/// representative per class and the Baseline method's cost is two ops per
/// class), plus a line-oriented text format for files and tests.
///
//===----------------------------------------------------------------------===//

#ifndef CABLE_TRACE_TRACESET_H
#define CABLE_TRACE_TRACESET_H

#include "support/Diagnostic.h"
#include "trace/Trace.h"

#include <optional>
#include <string>
#include <vector>

namespace cable {

/// The result of grouping a TraceSet into classes of identical traces.
struct TraceClasses {
  /// One representative trace per class, in first-appearance order.
  std::vector<Trace> Representatives;
  /// Multiplicity[i] = how many original traces are in class i.
  std::vector<uint32_t> Multiplicity;
  /// Members[i] = original trace indices in class i.
  std::vector<std::vector<size_t>> Members;
  /// ClassOf[j] = class index of original trace j.
  std::vector<size_t> ClassOf;

  size_t numClasses() const { return Representatives.size(); }
};

/// Traces plus the event table they are expressed over.
class TraceSet {
public:
  EventTable &table() { return Table; }
  const EventTable &table() const { return Table; }

  void add(Trace T) { Traces.push_back(std::move(T)); }

  size_t size() const { return Traces.size(); }
  bool empty() const { return Traces.empty(); }
  const Trace &operator[](size_t I) const { return Traces[I]; }
  const std::vector<Trace> &traces() const { return Traces; }

  /// Groups the traces into classes of identical event sequences.
  TraceClasses computeClasses() const;

  /// Returns a new TraceSet (sharing no table state beyond copied entries)
  /// with one representative per identical-trace class.
  TraceSet dedup() const;

  /// Returns the subset of traces at the given \p Indices.
  TraceSet subset(const std::vector<size_t> &Indices) const;

  /// Returns the traces satisfying \p Keep (e.g. the paper's Table 2
  /// footnote: traces with uninteresting selection values were removed
  /// before debugging three specifications).
  template <typename Pred> TraceSet filter(Pred &&Keep) const {
    TraceSet Out;
    Out.Table = Table;
    for (const Trace &T : Traces)
      if (Keep(T))
        Out.Traces.push_back(T);
    return Out;
  }

  /// Renders one trace per line.
  std::string render() const;

  /// Parses the line-oriented format: each nonempty, non-`#` line is one
  /// trace of whitespace-separated events (`name` or `name(v0,v1)`).
  /// Returns std::nullopt and sets \p ErrorMsg (with a 1-based
  /// `line N, col C:` position) on the first bad line.
  static std::optional<TraceSet> parse(std::string_view Text,
                                       std::string &ErrorMsg);

  /// As above with a structured diagnostic: Diag.Pos carries the 1-based
  /// line and column of the offending character.
  static std::optional<TraceSet> parse(std::string_view Text,
                                       Diagnostic &Diag);

private:
  EventTable Table;
  std::vector<Trace> Traces;
};

} // namespace cable

#endif // CABLE_TRACE_TRACESET_H
