//===- trace/EventTable.cpp - Event interning -----------------------------===//
//
// Part of the Cable reproduction of "Debugging Temporal Specifications with
// Concept Analysis" (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//

#include "trace/EventTable.h"

#include "support/StringUtil.h"

#include <cassert>

using namespace cable;

NameId EventTable::internName(std::string_view Name) {
  auto It = NameIds.find(std::string(Name));
  if (It != NameIds.end())
    return It->second;
  NameId Id = static_cast<NameId>(Names.size());
  Names.emplace_back(Name);
  NameIds.emplace(Names.back(), Id);
  return Id;
}

std::optional<NameId> EventTable::lookupName(std::string_view Name) const {
  auto It = NameIds.find(std::string(Name));
  if (It == NameIds.end())
    return std::nullopt;
  return It->second;
}

const std::string &EventTable::nameText(NameId Id) const {
  assert(Id < Names.size() && "bad NameId");
  return Names[Id];
}

EventId EventTable::internEvent(const Event &E) {
  assert(E.Name < Names.size() && "event uses an uninterned name");
  auto It = EventIds.find(E);
  if (It != EventIds.end())
    return It->second;
  EventId Id = static_cast<EventId>(Events.size());
  Events.push_back(E);
  EventIds.emplace(E, Id);
  return Id;
}

EventId EventTable::internEvent(std::string_view Name,
                                const std::vector<ValueId> &Args) {
  return internEvent(Event(internName(Name), Args));
}

const Event &EventTable::event(EventId Id) const {
  assert(Id < Events.size() && "bad EventId");
  return Events[Id];
}

std::string EventTable::renderEvent(EventId Id) const {
  return renderEvent(event(Id));
}

std::string EventTable::renderEvent(const Event &E) const {
  std::string Out = nameText(E.Name);
  if (E.Args.empty())
    return Out;
  Out += '(';
  for (size_t I = 0; I < E.Args.size(); ++I) {
    if (I != 0)
      Out += ',';
    Out += 'v';
    Out += std::to_string(E.Args[I]);
  }
  Out += ')';
  return Out;
}

std::optional<EventId> EventTable::parseEvent(std::string_view Text,
                                              std::string &ErrorMsg) {
  Diagnostic Diag;
  std::optional<EventId> Id = parseEvent(Text, Diag);
  if (!Id)
    ErrorMsg = "col " + std::to_string(Diag.Pos.Col) + ": " + Diag.Message;
  return Id;
}

std::optional<EventId> EventTable::parseEvent(std::string_view Text,
                                              Diagnostic &Diag) {
  std::string_view Raw = Text;
  Text = trimString(Text);
  // Columns are 1-based offsets into the *caller's* text, so leading
  // whitespace stripped by the trim counts toward them.
  size_t TrimOff =
      static_cast<size_t>(Text.empty() ? 0 : Text.data() - Raw.data());
  auto Fail = [&](size_t Off, std::string Msg) {
    Diag.Level = Severity::Error;
    Diag.Code = ErrorCode::ParseError;
    Diag.Pos.Col = static_cast<uint32_t>(Off + 1);
    Diag.Message = std::move(Msg);
    return std::nullopt;
  };
  if (Text.empty())
    return Fail(0, "empty event");
  size_t Paren = Text.find('(');
  if (Paren == std::string_view::npos) {
    // Bare name; reject stray close-paren.
    size_t Close = Text.find(')');
    if (Close != std::string_view::npos)
      return Fail(TrimOff + Close,
                  "unmatched ')' in event '" + std::string(Text) + "'");
    return internEvent(Text);
  }
  if (Text.back() != ')')
    return Fail(TrimOff + Paren,
                "missing ')' in event '" + std::string(Text) + "'");
  std::string_view Name = trimString(Text.substr(0, Paren));
  if (Name.empty())
    return Fail(TrimOff + Paren,
                "missing event name in '" + std::string(Text) + "'");
  std::string_view ArgText = Text.substr(Paren + 1, Text.size() - Paren - 2);
  std::vector<ValueId> Args;
  if (!trimString(ArgText).empty()) {
    size_t FieldOff = 0; // Offset of the current field within ArgText.
    for (const std::string &Tok : splitString(ArgText, ',')) {
      std::string_view Arg = trimString(std::string_view(Tok));
      std::optional<unsigned long> Val;
      if (Arg.size() >= 2 && Arg[0] == 'v')
        Val = parseUnsignedLong(Arg.substr(1));
      if (!Val) {
        size_t Lead = static_cast<size_t>(Arg.data() - Tok.data());
        return Fail(TrimOff + Paren + 1 + FieldOff + Lead,
                    "bad value token '" + std::string(Arg) +
                        "' (expected v<digits>) in '" + std::string(Text) +
                        "'");
      }
      Args.push_back(static_cast<ValueId>(*Val));
      FieldOff += Tok.size() + 1;
    }
  }
  return internEvent(Name, Args);
}
