//===- trace/EventTable.cpp - Event interning -----------------------------===//
//
// Part of the Cable reproduction of "Debugging Temporal Specifications with
// Concept Analysis" (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//

#include "trace/EventTable.h"

#include "support/StringUtil.h"

#include <cassert>

using namespace cable;

NameId EventTable::internName(std::string_view Name) {
  auto It = NameIds.find(std::string(Name));
  if (It != NameIds.end())
    return It->second;
  NameId Id = static_cast<NameId>(Names.size());
  Names.emplace_back(Name);
  NameIds.emplace(Names.back(), Id);
  return Id;
}

std::optional<NameId> EventTable::lookupName(std::string_view Name) const {
  auto It = NameIds.find(std::string(Name));
  if (It == NameIds.end())
    return std::nullopt;
  return It->second;
}

const std::string &EventTable::nameText(NameId Id) const {
  assert(Id < Names.size() && "bad NameId");
  return Names[Id];
}

EventId EventTable::internEvent(const Event &E) {
  assert(E.Name < Names.size() && "event uses an uninterned name");
  auto It = EventIds.find(E);
  if (It != EventIds.end())
    return It->second;
  EventId Id = static_cast<EventId>(Events.size());
  Events.push_back(E);
  EventIds.emplace(E, Id);
  return Id;
}

EventId EventTable::internEvent(std::string_view Name,
                                const std::vector<ValueId> &Args) {
  return internEvent(Event(internName(Name), Args));
}

const Event &EventTable::event(EventId Id) const {
  assert(Id < Events.size() && "bad EventId");
  return Events[Id];
}

std::string EventTable::renderEvent(EventId Id) const {
  return renderEvent(event(Id));
}

std::string EventTable::renderEvent(const Event &E) const {
  std::string Out = nameText(E.Name);
  if (E.Args.empty())
    return Out;
  Out += '(';
  for (size_t I = 0; I < E.Args.size(); ++I) {
    if (I != 0)
      Out += ',';
    Out += 'v';
    Out += std::to_string(E.Args[I]);
  }
  Out += ')';
  return Out;
}

std::optional<EventId> EventTable::parseEvent(std::string_view Text,
                                              std::string &ErrorMsg) {
  Text = trimString(Text);
  if (Text.empty()) {
    ErrorMsg = "empty event";
    return std::nullopt;
  }
  size_t Paren = Text.find('(');
  if (Paren == std::string_view::npos) {
    // Bare name; reject stray close-paren.
    if (Text.find(')') != std::string_view::npos) {
      ErrorMsg = "unmatched ')' in event '" + std::string(Text) + "'";
      return std::nullopt;
    }
    return internEvent(Text);
  }
  if (Text.back() != ')') {
    ErrorMsg = "missing ')' in event '" + std::string(Text) + "'";
    return std::nullopt;
  }
  std::string_view Name = trimString(Text.substr(0, Paren));
  if (Name.empty()) {
    ErrorMsg = "missing event name in '" + std::string(Text) + "'";
    return std::nullopt;
  }
  std::string_view ArgText = Text.substr(Paren + 1, Text.size() - Paren - 2);
  std::vector<ValueId> Args;
  if (!trimString(ArgText).empty()) {
    for (const std::string &Tok : splitString(ArgText, ',')) {
      std::string_view Arg = trimString(Tok);
      if (Arg.size() < 2 || Arg[0] != 'v' || !isAllDigits(Arg.substr(1))) {
        ErrorMsg = "bad value token '" + std::string(Arg) +
                   "' (expected v<digits>) in '" + std::string(Text) + "'";
        return std::nullopt;
      }
      Args.push_back(
          static_cast<ValueId>(std::stoul(std::string(Arg.substr(1)))));
    }
  }
  return internEvent(Name, Args);
}
