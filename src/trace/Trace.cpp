//===- trace/Trace.cpp - Program execution traces -------------------------===//
//
// Part of the Cable reproduction of "Debugging Temporal Specifications with
// Concept Analysis" (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//

#include "trace/Trace.h"

#include <unordered_map>

using namespace cable;

std::string Trace::render(const EventTable &Table) const {
  std::string Out;
  for (size_t I = 0; I < Events.size(); ++I) {
    if (I != 0)
      Out += ' ';
    Out += Table.renderEvent(Events[I]);
  }
  return Out;
}

Trace Trace::canonicalized(EventTable &Table) const {
  std::unordered_map<ValueId, ValueId> Renaming;
  Trace Out;
  for (EventId Id : Events) {
    Event E = Table.event(Id);
    for (ValueId &V : E.Args) {
      auto It = Renaming.find(V);
      if (It == Renaming.end()) {
        ValueId Fresh = static_cast<ValueId>(Renaming.size());
        It = Renaming.emplace(V, Fresh).first;
      }
      V = It->second;
    }
    Out.append(Table.internEvent(E));
  }
  return Out;
}
