//===- trace/EventTable.h - Event interning ---------------------*- C++ -*-===//
//
// Part of the Cable reproduction of "Debugging Temporal Specifications with
// Concept Analysis" (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Interning tables for interaction names and full events. One EventTable is
/// shared by everything that must agree on ids: the traces, the reference
/// automaton's transition labels, and the learner.
///
//===----------------------------------------------------------------------===//

#ifndef CABLE_TRACE_EVENTTABLE_H
#define CABLE_TRACE_EVENTTABLE_H

#include "support/Diagnostic.h"
#include "trace/Event.h"

#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace cable {

/// Bidirectional interning of names and events.
class EventTable {
public:
  /// Interns \p Name, returning a stable NameId.
  NameId internName(std::string_view Name);

  /// Returns the NameId for \p Name if already interned.
  std::optional<NameId> lookupName(std::string_view Name) const;

  /// Returns the spelling of \p Id.
  const std::string &nameText(NameId Id) const;

  /// Number of distinct names interned so far.
  size_t numNames() const { return Names.size(); }

  /// Interns \p E, returning a stable EventId.
  EventId internEvent(const Event &E);

  /// Convenience: interns name and event in one call.
  EventId internEvent(std::string_view Name,
                      const std::vector<ValueId> &Args = {});

  /// Returns the structured event for \p Id.
  const Event &event(EventId Id) const;

  /// Number of distinct events interned so far.
  size_t numEvents() const { return Events.size(); }

  /// Renders \p Id as `name` or `name(v0,v1)`.
  std::string renderEvent(EventId Id) const;

  /// Renders a structured event (which need not be interned).
  std::string renderEvent(const Event &E) const;

  /// Parses `name` or `name(v0,v1,...)`. Value tokens must be `v<digits>`
  /// (canonical form). Returns std::nullopt and sets \p ErrorMsg on bad
  /// syntax (the message carries a 1-based `col N:` position relative to
  /// the start of \p Text). Interns the name and event as a side effect.
  std::optional<EventId> parseEvent(std::string_view Text,
                                    std::string &ErrorMsg);

  /// As above, but fills a structured diagnostic; Diag.Pos.Col is the
  /// 1-based offset of the offending character within \p Text.
  std::optional<EventId> parseEvent(std::string_view Text, Diagnostic &Diag);

private:
  std::vector<std::string> Names;
  std::unordered_map<std::string, NameId> NameIds;
  std::vector<Event> Events;
  std::unordered_map<Event, EventId, EventHash> EventIds;
};

} // namespace cable

#endif // CABLE_TRACE_EVENTTABLE_H
