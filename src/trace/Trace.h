//===- trace/Trace.h - Program execution traces -----------------*- C++ -*-===//
//
// Part of the Cable reproduction of "Debugging Temporal Specifications with
// Concept Analysis" (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A Trace is a finite sequence of interned events. Scenario traces (the
/// miner's output) and violation traces (a verifier's output) are both
/// represented this way.
///
//===----------------------------------------------------------------------===//

#ifndef CABLE_TRACE_TRACE_H
#define CABLE_TRACE_TRACE_H

#include "trace/Event.h"
#include "trace/EventTable.h"

#include <string>
#include <vector>

namespace cable {

/// A finite sequence of events. Event ids refer to an EventTable that the
/// surrounding TraceSet (or caller) owns.
class Trace {
public:
  Trace() = default;
  explicit Trace(std::vector<EventId> Events) : Events(std::move(Events)) {}

  size_t size() const { return Events.size(); }
  bool empty() const { return Events.empty(); }
  EventId operator[](size_t I) const { return Events[I]; }

  const std::vector<EventId> &events() const { return Events; }

  void append(EventId E) { Events.push_back(E); }

  bool operator==(const Trace &RHS) const { return Events == RHS.Events; }

  /// Renders as space-separated events, e.g. `fopen(v0) fread(v0)`.
  std::string render(const EventTable &Table) const;

  /// Rewrites the trace so values are numbered by first occurrence
  /// (v0, v1, ...). Interns any new events into \p Table.
  Trace canonicalized(EventTable &Table) const;

private:
  std::vector<EventId> Events;
};

/// Hash functor for Trace (for identical-trace classing).
struct TraceHash {
  size_t operator()(const Trace &T) const {
    uint64_t H = 0xcbf29ce484222325ULL;
    for (EventId E : T.events()) {
      H ^= E + 0x9e3779b9ULL;
      H *= 0x100000001b3ULL;
    }
    return static_cast<size_t>(H);
  }
};

} // namespace cable

#endif // CABLE_TRACE_TRACE_H
