//===- trace/Event.h - Program events ---------------------------*- C++ -*-===//
//
// Part of the Cable reproduction of "Debugging Temporal Specifications with
// Concept Analysis" (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The event vocabulary for program execution traces.
///
/// An event is an interaction name (e.g. `fopen`, `pclose`) plus a list of
/// value arguments. Following the paper's Strauss front end, values inside a
/// scenario trace are *canonicalized*: the first distinct value becomes v0,
/// the second v1, and so on. Canonicalization makes automaton simulation
/// propositional — a transition label can match a concrete canonical value
/// rather than performing unification — and it is what lets two scenario
/// traces from different program runs compare equal (the identical-trace
/// classes of §5).
///
//===----------------------------------------------------------------------===//

#ifndef CABLE_TRACE_EVENT_H
#define CABLE_TRACE_EVENT_H

#include <cstddef>
#include <cstdint>
#include <vector>

namespace cable {

/// Interned interaction name (index into EventTable's name table).
using NameId = uint32_t;

/// A value argument. In canonicalized traces, value k is the (k+1)-th
/// distinct value seen in the trace.
using ValueId = uint32_t;

/// Interned full event (name + arguments); index into EventTable's event
/// table. Traces are sequences of EventIds, so identical-trace detection is
/// a vector compare.
using EventId = uint32_t;

/// A structured event: interaction name plus value arguments.
struct Event {
  NameId Name = 0;
  std::vector<ValueId> Args;

  Event() = default;
  Event(NameId Name, std::vector<ValueId> Args)
      : Name(Name), Args(std::move(Args)) {}

  bool operator==(const Event &RHS) const {
    return Name == RHS.Name && Args == RHS.Args;
  }
};

/// Hash functor for Event (FNV-1a over name and args).
struct EventHash {
  size_t operator()(const Event &E) const {
    uint64_t H = 0xcbf29ce484222325ULL;
    auto Mix = [&H](uint64_t V) {
      H ^= V;
      H *= 0x100000001b3ULL;
    };
    Mix(E.Name);
    for (ValueId V : E.Args)
      Mix(V + 0x9e3779b9ULL);
    return static_cast<size_t>(H);
  }
};

} // namespace cable

#endif // CABLE_TRACE_EVENT_H
