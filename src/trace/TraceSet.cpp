//===- trace/TraceSet.cpp - Collections of traces -------------------------===//
//
// Part of the Cable reproduction of "Debugging Temporal Specifications with
// Concept Analysis" (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//

#include "trace/TraceSet.h"

#include "support/StringUtil.h"

#include <unordered_map>

using namespace cable;

TraceClasses TraceSet::computeClasses() const {
  TraceClasses Out;
  std::unordered_map<Trace, size_t, TraceHash> ClassIndex;
  Out.ClassOf.reserve(Traces.size());
  for (size_t J = 0; J < Traces.size(); ++J) {
    const Trace &T = Traces[J];
    auto It = ClassIndex.find(T);
    if (It == ClassIndex.end()) {
      size_t C = Out.Representatives.size();
      ClassIndex.emplace(T, C);
      Out.Representatives.push_back(T);
      Out.Multiplicity.push_back(0);
      Out.Members.emplace_back();
      It = ClassIndex.find(T);
    }
    size_t C = It->second;
    ++Out.Multiplicity[C];
    Out.Members[C].push_back(J);
    Out.ClassOf.push_back(C);
  }
  return Out;
}

TraceSet TraceSet::dedup() const {
  TraceClasses Classes = computeClasses();
  TraceSet Out;
  Out.Table = Table;
  Out.Traces = std::move(Classes.Representatives);
  return Out;
}

TraceSet TraceSet::subset(const std::vector<size_t> &Indices) const {
  TraceSet Out;
  Out.Table = Table;
  for (size_t I : Indices)
    Out.Traces.push_back(Traces[I]);
  return Out;
}

std::string TraceSet::render() const {
  std::string Out;
  for (const Trace &T : Traces) {
    Out += T.render(Table);
    Out += '\n';
  }
  return Out;
}

std::optional<TraceSet> TraceSet::parse(std::string_view Text,
                                        std::string &ErrorMsg) {
  Diagnostic Diag;
  std::optional<TraceSet> Out = parse(Text, Diag);
  if (!Out)
    ErrorMsg = "line " + std::to_string(Diag.Pos.Line) + ", col " +
               std::to_string(Diag.Pos.Col) + ": " + Diag.Message;
  return Out;
}

std::optional<TraceSet> TraceSet::parse(std::string_view Text,
                                        Diagnostic &Diag) {
  TraceSet Out;
  size_t LineNo = 0;
  for (const std::string &Line : splitString(Text, '\n')) {
    ++LineNo;
    std::string_view Body = trimString(std::string_view(Line));
    if (Body.empty() || Body[0] == '#')
      continue;
    Trace T;
    for (const TokenSpan &Tok : splitWhitespaceSpans(Line)) {
      std::optional<EventId> Id = Out.Table.parseEvent(Tok.Text, Diag);
      if (!Id) {
        // parseEvent's column is relative to the token; rebase it onto
        // the raw line (both 1-based).
        Diag.Pos.Line = static_cast<uint32_t>(LineNo);
        Diag.Pos.Col += static_cast<uint32_t>(Tok.Offset);
        return std::nullopt;
      }
      T.append(*Id);
    }
    Out.add(std::move(T));
  }
  return Out;
}
