//===- verifier/Verifier.cpp - Specification testing harness ---------------===//
//
// Part of the Cable reproduction of "Debugging Temporal Specifications with
// Concept Analysis" (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//

#include "verifier/Verifier.h"

using namespace cable;

VerificationResult cable::verifyScenarios(const TraceSet &Scenarios,
                                          const Automaton &Spec) {
  VerificationResult Out;
  Out.Violations.table() = Scenarios.table();
  Out.Accepted.table() = Scenarios.table();
  Out.NumScenarios = Scenarios.size();
  for (const Trace &T : Scenarios.traces()) {
    if (Spec.accepts(T, Scenarios.table()))
      Out.Accepted.add(T);
    else
      Out.Violations.add(T);
  }
  return Out;
}

VerificationResult cable::verifyAgainstRuns(const TraceSet &Runs,
                                            const Automaton &Spec,
                                            const ExtractorOptions &Extract) {
  return verifyScenarios(extractScenarios(Runs, Extract), Spec);
}
