//===- verifier/Verifier.cpp - Specification testing harness ---------------===//
//
// Part of the Cable reproduction of "Debugging Temporal Specifications with
// Concept Analysis" (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//

#include "verifier/Verifier.h"

#include "support/Metrics.h"
#include "support/TraceEvent.h"

using namespace cable;

VerificationResult cable::verifyScenarios(const TraceSet &Scenarios,
                                          const Automaton &Spec,
                                          const BudgetMeter &Meter) {
  TraceSpan Span("verify-scenarios",
                 static_cast<int64_t>(Scenarios.traces().size()));
  VerificationResult Out;
  Out.Violations.table() = Scenarios.table();
  Out.Accepted.table() = Scenarios.table();
  for (const Trace &T : Scenarios.traces()) {
    // One checkpoint per scenario: simulation is linear in the trace, so
    // overshoot past the deadline is bounded by one trace's work.
    if (Meter.expired()) {
      Out.Truncated = true;
      Out.CheckStatus = Meter.stopStatus("verification");
      break;
    }
    ++Out.NumScenarios;
    if (Spec.accepts(T, Scenarios.table()))
      Out.Accepted.add(T);
    else
      Out.Violations.add(T);
  }
  Metrics::counter("verifier.scenarios-checked").add(Out.NumScenarios);
  Metrics::counter("verifier.violations")
      .add(Out.Violations.traces().size());
  return Out;
}

VerificationResult cable::verifyScenarios(const TraceSet &Scenarios,
                                          const Automaton &Spec) {
  BudgetMeter Unlimited{Budget{}};
  return verifyScenarios(Scenarios, Spec, Unlimited);
}

VerificationResult cable::verifyAgainstRuns(const TraceSet &Runs,
                                            const Automaton &Spec,
                                            const ExtractorOptions &Extract,
                                            const BudgetMeter &Meter) {
  return verifyScenarios(extractScenarios(Runs, Extract), Spec, Meter);
}

VerificationResult cable::verifyAgainstRuns(const TraceSet &Runs,
                                            const Automaton &Spec,
                                            const ExtractorOptions &Extract) {
  return verifyScenarios(extractScenarios(Runs, Extract), Spec);
}
