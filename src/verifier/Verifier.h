//===- verifier/Verifier.h - Specification testing harness ------*- C++ -*-===//
//
// Part of the Cable reproduction of "Debugging Temporal Specifications with
// Concept Analysis" (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The "program verification tool" of §2.1, reduced to what the paper's
/// method actually consumes. A real verifier analyzes a program against a
/// temporal specification and reports *violation traces* — short execution
/// traces that appear in the program but are rejected by the specification
/// FA. Here the program is represented by its (synthetic) execution runs:
/// the verifier slices them into per-object scenarios exactly as the miner
/// front end does, checks each against the specification, and reports the
/// rejected ones. That reproduces both properties §2.1 leans on: traces
/// arrive in no particular order and contain all the calls they make, not
/// just the relevant ones.
///
//===----------------------------------------------------------------------===//

#ifndef CABLE_VERIFIER_VERIFIER_H
#define CABLE_VERIFIER_VERIFIER_H

#include "fa/Automaton.h"
#include "miner/ScenarioExtractor.h"
#include "support/Budget.h"
#include "support/Status.h"

namespace cable {

/// Result of checking a specification against program runs.
struct VerificationResult {
  /// Scenarios the specification rejected, in discovery order.
  TraceSet Violations;
  /// Scenarios the specification accepted.
  TraceSet Accepted;
  /// Scenarios examined (< the total when Truncated).
  size_t NumScenarios = 0;
  /// True when a budget expired or cancel() fired before every scenario
  /// was checked; Violations/Accepted then cover a prefix only.
  bool Truncated = false;
  /// Ok, or the diagnostic explaining the truncation.
  Status CheckStatus;
};

/// Tests \p Spec against the program runs in \p Runs (§2.1 "debugging by
/// testing"). \p Extract controls scenario slicing.
VerificationResult verifyAgainstRuns(const TraceSet &Runs,
                                     const Automaton &Spec,
                                     const ExtractorOptions &Extract);

/// Tests \p Spec against already-extracted scenario traces.
VerificationResult verifyScenarios(const TraceSet &Scenarios,
                                   const Automaton &Spec);

/// Budgeted variants: check \p Meter between scenarios and stop early —
/// with Truncated set and a prefix of the results — when it expires or is
/// cancelled.
VerificationResult verifyAgainstRuns(const TraceSet &Runs,
                                     const Automaton &Spec,
                                     const ExtractorOptions &Extract,
                                     const BudgetMeter &Meter);
VerificationResult verifyScenarios(const TraceSet &Scenarios,
                                   const Automaton &Spec,
                                   const BudgetMeter &Meter);

} // namespace cable

#endif // CABLE_VERIFIER_VERIFIER_H
