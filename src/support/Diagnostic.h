//===- support/Diagnostic.h - Structured diagnostics ------------*- C++ -*-===//
//
// Part of the Cable reproduction of "Debugging Temporal Specifications with
// Concept Analysis" (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Structured diagnostics: an error code taxonomy, a severity level, an
/// optional 1-based source position, and a render-to-string that matches the
/// conventional compiler format `file:line:col: severity: message [code]`.
///
/// Positions are 1-based. Line 0 / column 0 mean "no position"; a diagnostic
/// may carry a line without a column (e.g. an error that applies to a whole
/// trace line), but never a column without a line.
///
//===----------------------------------------------------------------------===//

#ifndef CABLE_SUPPORT_DIAGNOSTIC_H
#define CABLE_SUPPORT_DIAGNOSTIC_H

#include <cstdint>
#include <string>

namespace cable {

/// Coarse error taxonomy, loosely following the gRPC/absl canonical codes.
enum class ErrorCode : uint8_t {
  Ok = 0,
  /// A caller-supplied value is malformed regardless of system state
  /// (bad regex, epsilon reference FA, zero budget).
  InvalidArgument,
  /// Structured text failed to parse (trace file, automaton file, event).
  ParseError,
  /// A named entity does not exist (unknown protocol, unknown label).
  NotFound,
  /// A budget limit was hit (deadline, max concepts, max context cells).
  ResourceExhausted,
  /// The operation was cancelled from outside before it completed.
  Cancelled,
  /// A file could not be read or written.
  IoError,
  /// An internal invariant failed; indicates a bug in Cable itself.
  Internal,
};

/// Stable lower-case name for \p Code, e.g. "parse-error".
const char *errorCodeName(ErrorCode Code);

enum class Severity : uint8_t {
  Note,
  Warning,
  Error,
  Fatal,
};

/// Stable lower-case name for \p S, e.g. "warning".
const char *severityName(Severity S);

/// A 1-based source position. Zero fields mean "unknown".
struct SourcePos {
  uint32_t Line = 0;
  uint32_t Col = 0;

  bool valid() const { return Line != 0; }
  bool hasCol() const { return Col != 0; }
};

/// One structured diagnostic. Render order: file, position, severity,
/// message, bracketed code name.
struct Diagnostic {
  Severity Level = Severity::Error;
  ErrorCode Code = ErrorCode::Internal;
  SourcePos Pos;
  std::string File;
  std::string Message;

  /// Renders e.g. "traces.txt:3:14: error: bad value token 'vx'
  /// [parse-error]". Omitted fields (file, position) drop cleanly.
  std::string render() const;
};

} // namespace cable

#endif // CABLE_SUPPORT_DIAGNOSTIC_H
