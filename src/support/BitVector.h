//===- support/BitVector.h - Dynamic bit set --------------------*- C++ -*-===//
//
// Part of the Cable reproduction of "Debugging Temporal Specifications with
// Concept Analysis" (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A dynamic bit vector with the set-algebra operations concept analysis
/// needs: intersection, union, subset tests, popcount, and fast iteration
/// over set bits. Concept extents and intents are BitVectors, so these
/// operations dominate lattice construction time.
///
/// The word-level work is delegated to the runtime-dispatched kernels in
/// support/simd/Kernels.h (scalar / unrolled / AVX2 / NEON), with a
/// single-word fast path inline here because most intents in the paper's
/// workloads fit one word. Two invariants the kernels rely on:
///
///  - Tail invariant: bits at positions >= size() in the last word are
///    always zero after every mutating operation (each one re-masks the
///    tail, and read paths additionally apply a tail mask so a dirty tail
///    could never leak into popcount or subset verdicts).
///  - Words.size() == ceil(size() / 64) at all times.
///
//===----------------------------------------------------------------------===//

#ifndef CABLE_SUPPORT_BITVECTOR_H
#define CABLE_SUPPORT_BITVECTOR_H

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace cable {

/// A fixed-universe dynamic bit set.
///
/// The universe size is set at construction (or by resize) and all binary
/// operations require both operands to have the same universe size.
class BitVector {
public:
  BitVector() = default;

  /// Creates a vector over a universe of \p NumBits bits, all clear.
  explicit BitVector(size_t NumBits)
      : NumBits(NumBits), Words((NumBits + 63) / 64, 0) {}

  /// Returns the universe size in bits.
  size_t size() const { return NumBits; }

  /// Grows or shrinks the universe to \p NewSize bits; new bits are clear.
  void resize(size_t NewSize);

  /// Sets bit \p I.
  void set(size_t I) {
    assert(I < NumBits && "bit index out of range");
    Words[I / 64] |= uint64_t(1) << (I % 64);
  }

  /// Clears bit \p I.
  void reset(size_t I) {
    assert(I < NumBits && "bit index out of range");
    Words[I / 64] &= ~(uint64_t(1) << (I % 64));
  }

  /// Sets all bits in the universe.
  void setAll();

  /// Clears all bits.
  void resetAll() {
    for (uint64_t &W : Words)
      W = 0;
  }

  /// Returns bit \p I.
  bool test(size_t I) const {
    assert(I < NumBits && "bit index out of range");
    return (Words[I / 64] >> (I % 64)) & 1;
  }

  /// Returns the number of set bits.
  size_t count() const;

  /// Returns true if no bit is set.
  bool none() const;

  /// Returns true if at least one bit is set.
  bool any() const { return !none(); }

  /// In-place intersection.
  BitVector &operator&=(const BitVector &RHS);
  /// In-place union.
  BitVector &operator|=(const BitVector &RHS);
  /// In-place symmetric difference.
  BitVector &operator^=(const BitVector &RHS);
  /// In-place set difference (this \ RHS).
  BitVector &andNot(const BitVector &RHS);
  /// Flips every bit in the universe.
  void flipAll();

  bool operator==(const BitVector &RHS) const {
    return NumBits == RHS.NumBits && Words == RHS.Words;
  }

  /// Returns true if every set bit of this is also set in \p RHS.
  bool isSubsetOf(const BitVector &RHS) const;

  /// Returns true if this and \p RHS share at least one set bit.
  bool intersects(const BitVector &RHS) const;

  /// Returns the index of the first set bit, or npos if none.
  size_t findFirst() const;

  /// Returns the index of the first set bit strictly after \p Prev, or npos.
  size_t findNext(size_t Prev) const;

  /// Sentinel returned by findFirst/findNext when no bit qualifies.
  static constexpr size_t npos = static_cast<size_t>(-1);

  /// Forward iterator over the indices of set bits.
  class SetBitIterator {
  public:
    SetBitIterator(const BitVector *Parent, size_t Pos)
        : Parent(Parent), Pos(Pos) {}
    size_t operator*() const { return Pos; }
    SetBitIterator &operator++() {
      Pos = Parent->findNext(Pos);
      return *this;
    }
    bool operator!=(const SetBitIterator &RHS) const { return Pos != RHS.Pos; }
    bool operator==(const SetBitIterator &RHS) const { return Pos == RHS.Pos; }

  private:
    const BitVector *Parent;
    size_t Pos;
  };

  SetBitIterator begin() const { return SetBitIterator(this, findFirst()); }
  SetBitIterator end() const { return SetBitIterator(this, npos); }

  /// Returns the set bits as a vector of indices (convenience for tests and
  /// printing; prefer iteration in hot paths).
  std::vector<size_t> toIndices() const;

  /// Hashes the bit pattern (for unordered containers keyed on extents).
  size_t hashValue() const;

  /// Raw word access for the kernel layer (Context packs these into its
  /// arenas; simd::andSelectInto reads selectors through this).
  const uint64_t *words() const { return Words.data(); }
  uint64_t *words() { return Words.data(); }

  /// Number of 64-bit words backing the universe: ceil(size() / 64).
  size_t numWords() const { return Words.size(); }

  /// Mask of the valid bits in the final word (all-ones when the universe
  /// is word-aligned; meaningless when numWords() == 0).
  uint64_t tailMask() const {
    size_t Tail = NumBits % 64;
    return Tail == 0 ? ~uint64_t(0) : (uint64_t(1) << Tail) - 1;
  }

  /// True when no bit past size() is set — the tail invariant every
  /// mutating operation re-establishes. Exposed for the audit tests.
  bool tailIsClean() const {
    return Words.empty() || (Words.back() & ~tailMask()) == 0;
  }

private:
  void clearUnusedBits();

  size_t NumBits = 0;
  std::vector<uint64_t> Words;

  /// Test-only backdoor (tests/support/BitVectorTest.cpp) used to plant
  /// dirty tail bits and prove they cannot leak through read operations
  /// or survive a mutating one.
  friend struct BitVectorTestPeer;
};

/// Returns the intersection of \p A and \p B.
BitVector operator&(const BitVector &A, const BitVector &B);
/// Returns the union of \p A and \p B.
BitVector operator|(const BitVector &A, const BitVector &B);

/// Hash functor so BitVector can key std::unordered_map/set.
struct BitVectorHash {
  size_t operator()(const BitVector &BV) const { return BV.hashValue(); }
};

} // namespace cable

#endif // CABLE_SUPPORT_BITVECTOR_H
