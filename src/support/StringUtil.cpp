//===- support/StringUtil.cpp - String helpers ----------------------------===//
//
// Part of the Cable reproduction of "Debugging Temporal Specifications with
// Concept Analysis" (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/StringUtil.h"

#include <cctype>
#include <charconv>

using namespace cable;

std::vector<std::string> cable::splitString(std::string_view Text, char Sep) {
  std::vector<std::string> Out;
  size_t Start = 0;
  for (;;) {
    size_t Pos = Text.find(Sep, Start);
    if (Pos == std::string_view::npos) {
      Out.emplace_back(Text.substr(Start));
      return Out;
    }
    Out.emplace_back(Text.substr(Start, Pos - Start));
    Start = Pos + 1;
  }
}

std::vector<std::string> cable::splitWhitespace(std::string_view Text) {
  std::vector<std::string> Out;
  size_t I = 0;
  while (I < Text.size()) {
    while (I < Text.size() && std::isspace(static_cast<unsigned char>(Text[I])))
      ++I;
    size_t Start = I;
    while (I < Text.size() &&
           !std::isspace(static_cast<unsigned char>(Text[I])))
      ++I;
    if (I > Start)
      Out.emplace_back(Text.substr(Start, I - Start));
  }
  return Out;
}

std::vector<TokenSpan> cable::splitWhitespaceSpans(std::string_view Text) {
  std::vector<TokenSpan> Out;
  size_t I = 0;
  while (I < Text.size()) {
    while (I < Text.size() && std::isspace(static_cast<unsigned char>(Text[I])))
      ++I;
    size_t Start = I;
    while (I < Text.size() &&
           !std::isspace(static_cast<unsigned char>(Text[I])))
      ++I;
    if (I > Start)
      Out.push_back({std::string(Text.substr(Start, I - Start)), Start});
  }
  return Out;
}

std::string_view cable::trimString(std::string_view Text) {
  size_t B = 0, E = Text.size();
  while (B < E && std::isspace(static_cast<unsigned char>(Text[B])))
    ++B;
  while (E > B && std::isspace(static_cast<unsigned char>(Text[E - 1])))
    --E;
  return Text.substr(B, E - B);
}

std::string cable::joinStrings(const std::vector<std::string> &Parts,
                               std::string_view Sep) {
  std::string Out;
  for (size_t I = 0; I < Parts.size(); ++I) {
    if (I != 0)
      Out += Sep;
    Out += Parts[I];
  }
  return Out;
}

bool cable::isAllDigits(std::string_view Text) {
  if (Text.empty())
    return false;
  for (char C : Text)
    if (!std::isdigit(static_cast<unsigned char>(C)))
      return false;
  return true;
}

std::optional<unsigned long>
cable::parseUnsignedLong(std::string_view Text) {
  if (!isAllDigits(Text))
    return std::nullopt;
  unsigned long Out = 0;
  const char *First = Text.data();
  const char *Last = First + Text.size();
  std::from_chars_result R = std::from_chars(First, Last, Out);
  if (R.ec != std::errc() || R.ptr != Last)
    return std::nullopt;
  return Out;
}

std::string cable::padString(std::string_view Text, size_t Width) {
  std::string Out(Text.substr(0, Width));
  while (Out.size() < Width)
    Out += ' ';
  return Out;
}
