//===- support/RNG.h - Deterministic random numbers ------------*- C++ -*-===//
//
// Part of the Cable reproduction of "Debugging Temporal Specifications with
// Concept Analysis" (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small deterministic random number generator (SplitMix64). All random
/// behavior in the library — workload generation, the Random labeling
/// strategy, property-test case generation — flows through this class so
/// that every run is reproducible from a seed.
///
//===----------------------------------------------------------------------===//

#ifndef CABLE_SUPPORT_RNG_H
#define CABLE_SUPPORT_RNG_H

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace cable {

/// Deterministic PRNG based on SplitMix64 (Steele, Lea, Flood 2014).
///
/// Not cryptographic; chosen for speed, statistical quality adequate for
/// workload generation, and trivially portable determinism.
class RNG {
public:
  explicit RNG(uint64_t Seed = 0x9e3779b97f4a7c15ULL) : State(Seed) {}

  /// Returns the next raw 64-bit value.
  uint64_t next() {
    State += 0x9e3779b97f4a7c15ULL;
    uint64_t Z = State;
    Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebULL;
    return Z ^ (Z >> 31);
  }

  /// Returns a uniformly distributed integer in [0, Bound). \p Bound must be
  /// positive. Uses rejection sampling to avoid modulo bias.
  uint64_t nextBounded(uint64_t Bound) {
    assert(Bound > 0 && "nextBounded requires a positive bound");
    uint64_t Threshold = -Bound % Bound;
    for (;;) {
      uint64_t R = next();
      if (R >= Threshold)
        return R % Bound;
    }
  }

  /// Returns a uniformly distributed size_t index in [0, Size).
  size_t nextIndex(size_t Size) {
    return static_cast<size_t>(nextBounded(static_cast<uint64_t>(Size)));
  }

  /// Returns a double uniformly distributed in [0, 1).
  double nextDouble() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Returns true with probability \p P (clamped to [0, 1]).
  bool nextBool(double P) { return nextDouble() < P; }

  /// Fisher-Yates shuffles \p Items in place.
  template <typename T> void shuffle(std::vector<T> &Items) {
    for (size_t I = Items.size(); I > 1; --I) {
      size_t J = nextIndex(I);
      std::swap(Items[I - 1], Items[J]);
    }
  }

  /// Picks an index in [0, Weights.size()) with probability proportional to
  /// Weights[i]. At least one weight must be positive.
  size_t pickWeighted(const std::vector<double> &Weights) {
    double Total = 0;
    for (double W : Weights) {
      assert(W >= 0 && "negative weight");
      Total += W;
    }
    assert(Total > 0 && "pickWeighted requires a positive total weight");
    double X = nextDouble() * Total;
    for (size_t I = 0; I < Weights.size(); ++I) {
      X -= Weights[I];
      if (X < 0)
        return I;
    }
    return Weights.size() - 1; // Floating-point slop: last positive bucket.
  }

  /// Forks a statistically independent child generator. Deterministic: the
  /// child stream depends only on the parent's current state.
  RNG fork() { return RNG(next() ^ 0x5851f42d4c957f2dULL); }

private:
  uint64_t State;
};

} // namespace cable

#endif // CABLE_SUPPORT_RNG_H
