//===- support/Json.cpp - Minimal JSON emission and validation -------------===//
//
// Part of the Cable reproduction of "Debugging Temporal Specifications with
// Concept Analysis" (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/Json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstring>

using namespace cable;

std::string JsonWriter::quote(std::string_view S) {
  std::string Out;
  Out.reserve(S.size() + 2);
  Out.push_back('"');
  for (unsigned char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\r':
      Out += "\\r";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      if (C < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        Out += Buf;
      } else {
        Out.push_back(static_cast<char>(C));
      }
    }
  }
  Out.push_back('"');
  return Out;
}

void JsonWriter::comma() {
  if (PendingKey) {
    PendingKey = false;
    return; // The key already placed the comma.
  }
  if (!NeedComma.empty()) {
    if (NeedComma.back())
      Out.push_back(',');
    NeedComma.back() = true;
  }
}

void JsonWriter::beginObject() {
  comma();
  Out.push_back('{');
  NeedComma.push_back(false);
}

void JsonWriter::endObject() {
  NeedComma.pop_back();
  Out.push_back('}');
}

void JsonWriter::beginArray() {
  comma();
  Out.push_back('[');
  NeedComma.push_back(false);
}

void JsonWriter::endArray() {
  NeedComma.pop_back();
  Out.push_back(']');
}

void JsonWriter::key(std::string_view K) {
  if (!NeedComma.empty()) {
    if (NeedComma.back())
      Out.push_back(',');
    NeedComma.back() = true;
  }
  Out += quote(K);
  Out += ": ";
  PendingKey = true;
}

void JsonWriter::value(std::string_view S) {
  comma();
  Out += quote(S);
}

void JsonWriter::value(double D) {
  comma();
  if (!std::isfinite(D)) {
    Out += "null"; // JSON has no Inf/NaN.
    return;
  }
  char Buf[40];
  std::snprintf(Buf, sizeof(Buf), "%.6g", D);
  Out += Buf;
}

void JsonWriter::value(uint64_t N) {
  comma();
  Out += std::to_string(N);
}

void JsonWriter::value(int64_t N) {
  comma();
  Out += std::to_string(N);
}

void JsonWriter::value(bool B) {
  comma();
  Out += B ? "true" : "false";
}

void JsonWriter::valueNull() {
  comma();
  Out += "null";
}

void JsonWriter::rawValue(std::string_view Json) {
  comma();
  Out += Json;
}

// -- Validation -------------------------------------------------------------

namespace {

class Validator {
public:
  Validator(std::string_view Text, std::string &Error)
      : Text(Text), Error(Error) {}

  bool run() {
    skipWs();
    if (!parseValue())
      return false;
    skipWs();
    if (At != Text.size())
      return fail("trailing garbage after the top-level value");
    return true;
  }

private:
  bool fail(const std::string &What) {
    Error = "byte " + std::to_string(At) + ": " + What;
    return false;
  }

  void skipWs() {
    while (At < Text.size() &&
           (Text[At] == ' ' || Text[At] == '\t' || Text[At] == '\n' ||
            Text[At] == '\r'))
      ++At;
  }

  bool eat(char C) {
    if (At < Text.size() && Text[At] == C) {
      ++At;
      return true;
    }
    return false;
  }

  bool parseValue() {
    if (At >= Text.size())
      return fail("unexpected end of input");
    switch (Text[At]) {
    case '{':
      return parseObject();
    case '[':
      return parseArray();
    case '"':
      return parseString();
    case 't':
      return parseLiteral("true");
    case 'f':
      return parseLiteral("false");
    case 'n':
      return parseLiteral("null");
    default:
      return parseNumber();
    }
  }

  bool parseLiteral(std::string_view Lit) {
    if (Text.substr(At, Lit.size()) != Lit)
      return fail("bad literal");
    At += Lit.size();
    return true;
  }

  bool parseString() {
    ++At; // opening quote
    while (At < Text.size()) {
      unsigned char C = static_cast<unsigned char>(Text[At]);
      if (C == '"') {
        ++At;
        return true;
      }
      if (C == '\\') {
        ++At;
        if (At >= Text.size())
          return fail("truncated escape");
        char E = Text[At];
        if (E == 'u') {
          for (int I = 1; I <= 4; ++I)
            if (At + I >= Text.size() ||
                !std::isxdigit(static_cast<unsigned char>(Text[At + I])))
              return fail("bad \\u escape");
          At += 4;
        } else if (!std::strchr("\"\\/bfnrt", E)) {
          return fail("bad escape character");
        }
        ++At;
        continue;
      }
      if (C < 0x20)
        return fail("raw control character in string");
      ++At;
    }
    return fail("unterminated string");
  }

  bool parseNumber() {
    size_t Start = At;
    if (eat('-')) {
    }
    if (At >= Text.size() || !std::isdigit(static_cast<unsigned char>(Text[At])))
      return fail("bad number");
    if (Text[At] == '0')
      ++At;
    else
      while (At < Text.size() &&
             std::isdigit(static_cast<unsigned char>(Text[At])))
        ++At;
    if (eat('.')) {
      if (At >= Text.size() ||
          !std::isdigit(static_cast<unsigned char>(Text[At])))
        return fail("bad fraction");
      while (At < Text.size() &&
             std::isdigit(static_cast<unsigned char>(Text[At])))
        ++At;
    }
    if (At < Text.size() && (Text[At] == 'e' || Text[At] == 'E')) {
      ++At;
      if (At < Text.size() && (Text[At] == '+' || Text[At] == '-'))
        ++At;
      if (At >= Text.size() ||
          !std::isdigit(static_cast<unsigned char>(Text[At])))
        return fail("bad exponent");
      while (At < Text.size() &&
             std::isdigit(static_cast<unsigned char>(Text[At])))
        ++At;
    }
    return At > Start;
  }

  bool parseObject() {
    ++At; // '{'
    skipWs();
    if (eat('}'))
      return true;
    for (;;) {
      skipWs();
      if (At >= Text.size() || Text[At] != '"')
        return fail("expected object key");
      if (!parseString())
        return false;
      skipWs();
      if (!eat(':'))
        return fail("expected ':' after key");
      skipWs();
      if (!parseValue())
        return false;
      skipWs();
      if (eat(','))
        continue;
      if (eat('}'))
        return true;
      return fail("expected ',' or '}' in object");
    }
  }

  bool parseArray() {
    ++At; // '['
    skipWs();
    if (eat(']'))
      return true;
    for (;;) {
      skipWs();
      if (!parseValue())
        return false;
      skipWs();
      if (eat(','))
        continue;
      if (eat(']'))
        return true;
      return fail("expected ',' or ']' in array");
    }
  }

  std::string_view Text;
  std::string &Error;
  size_t At = 0;
};

} // namespace

bool cable::validateJson(std::string_view Text, std::string &Error) {
  return Validator(Text, Error).run();
}
