//===- support/Log.h - Structured event logging -----------------*- C++ -*-===//
//
// Part of the Cable reproduction of "Debugging Temporal Specifications with
// Concept Analysis" (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Process-wide structured logging: the machine-readable counterpart of
/// the ad-hoc stderr warnings, in the same cost model as Metrics and
/// Failpoint (docs/OBSERVABILITY.md):
///
///  - Disarmed (the default), every site is one relaxed atomic load and a
///    predicted branch; the CABLE_LOG_* macros skip even the field
///    construction. -DCABLE_NO_INSTRUMENT=ON compiles the sites out.
///  - Armed, records land in lock-free-against-each-other per-thread
///    overwrite-oldest rings (the per-ring mutex only serializes an
///    appender against the exporter, mirroring TraceLog), plus a fixed
///    crash ring of pre-rendered JSON lines the flight recorder
///    (support/CrashDump.h) can read from a signal handler.
///
/// Two arming bits, one combined gate:
///
///  - setEnabled(true) (the `--log-out` / CABLE_LOG path) arms structured
///    collection: records are kept for exportJsonl / the shard telemetry
///    flush.
///  - setCrashCapture(true) (done by CrashDump::install) arms only the
///    crash ring, so a process with a flight recorder but no --log-out
///    still dies with its last events on record.
///
/// A record is a monotonic per-process sequence number, a microsecond
/// timestamp, a level, a stable kebab-case event code, a subsystem, a
/// short message, and up to a handful of key/value fields. Event codes
/// are API: the catalog lives in docs/OBSERVABILITY.md and harnesses
/// assert on them; messages are prose and carry no contract.
///
/// Exported form is `cable-log/1` JSONL: one header object (schema, tool,
/// build stamp, pid), then one object per record ordered by (pid, seq).
/// Worker-process records arrive through ingestRemote (the shard `T`
/// telemetry flush, docs/FORMATS.md) and keep their own pid, so a sharded
/// run exports one merged multi-process log.
///
//===----------------------------------------------------------------------===//

#ifndef CABLE_SUPPORT_LOG_H
#define CABLE_SUPPORT_LOG_H

#include "support/Status.h"

#include <atomic>
#include <cstdint>
#include <initializer_list>
#include <string>
#include <string_view>
#include <vector>

namespace cable {

class Log {
public:
  enum class Level : uint8_t { Debug = 0, Info = 1, Warn = 2, Error = 3 };

  /// True when any collection (structured or crash ring) is armed — the
  /// one-relaxed-load hot-path gate.
  static bool enabled() {
#ifdef CABLE_NO_INSTRUMENT
    return false;
#else
    return Armed.load(std::memory_order_relaxed) != 0;
#endif
  }

  /// True when structured collection (export / wire flush) was requested;
  /// crash-ring-only arming does not count. This is what the shard
  /// supervisor consults when deciding whether workers should flush log
  /// deltas.
  static bool structuredEnabled() {
#ifdef CABLE_NO_INSTRUMENT
    return false;
#else
    return (Armed.load(std::memory_order_relaxed) & kStructuredBit) != 0;
#endif
  }

  static void setEnabled(bool On);      ///< Structured rings (`--log-out`).
  static void setCrashCapture(bool On); ///< Crash ring only (flight recorder).

  /// Records below the threshold are dropped at the emit site. Default
  /// Info.
  static void setLevel(Level L);
  static Level level();
  /// Parses "debug" / "info" / "warn" / "error" (the `--log-level` values).
  static bool parseLevel(std::string_view Text, Level &Out);
  static const char *levelName(Level L);

  /// One key/value field. Numeric fields render unquoted in JSON.
  struct Field {
    std::string Key;
    std::string Value;
    bool Numeric = false;
  };
  static Field str(std::string_view Key, std::string_view Value) {
    return Field{std::string(Key), std::string(Value), false};
  }
  static Field num(std::string_view Key, int64_t Value) {
    return Field{std::string(Key), std::to_string(Value), true};
  }

  /// One structured record. TimeUs is microseconds since the process
  /// epoch (fork-preserved, so supervisor and worker records share a
  /// timeline like trace spans do).
  struct Record {
    uint64_t Seq = 0;
    uint64_t TimeUs = 0;
    Level Lvl = Level::Info;
    std::string Event;     ///< stable kebab-case code (the contract)
    std::string Subsystem; ///< kebab-case subsystem (cache, shard, ...)
    std::string Msg;       ///< human prose, no contract
    std::vector<Field> Fields;
    uint32_t Tid = 0;
  };

  /// Appends a record (when armed and at/above the level threshold).
  /// Prefer the CABLE_LOG_* macros, which skip argument construction when
  /// disarmed.
  static void emit(Level L, std::string_view Subsystem,
                   std::string_view Event, std::string_view Msg,
                   std::initializer_list<Field> Fields = {});

  /// Removes and returns every locally buffered record, oldest first —
  /// the worker-side flush primitive. Foreign records are not drained.
  static std::vector<Record> drainRecords();

  /// Records overwritten in local rings (plus dropped deltas folded in by
  /// ingestRemote) since process start.
  static uint64_t droppedCount();

  /// Folds a worker's flushed delta into this process's export set. The
  /// records keep \p Pid in the merged JSONL; \p DroppedDelta adds to
  /// droppedCount.
  static void ingestRemote(int Pid, std::vector<Record> Records,
                           uint64_t DroppedDelta);

  /// Forked children call this (Subprocess::spawn does) so their flushes
  /// carry only records they emitted themselves. The sequence counter and
  /// epoch survive, keeping per-pid sequences monotonic.
  static void resetAfterFork();

  /// The `cable-log/1` JSONL document: header line then records ordered
  /// by (pid, seq). Drains local rings; includes ingested foreign
  /// records.
  static std::string exportJsonl(std::string_view Tool);
  static Status writeJsonl(const std::string &Path, std::string_view Tool);

  /// Byte-exact little-endian wire form for the shard `T` flush
  /// (docs/FORMATS.md). decodeRecords is strict: truncation, over-limit
  /// counts or lengths, or trailing bytes return false.
  static std::string encodeRecords(const std::vector<Record> &Records);
  static bool decodeRecords(std::string_view Bytes,
                            std::vector<Record> &Out);

  /// Async-signal-safe: copies the crash ring's pre-rendered JSON object
  /// lines, oldest first, newline-separated, into \p Buf. Returns bytes
  /// written. Torn slots (a writer was mid-copy when the signal landed)
  /// are skipped, never emitted half-written.
  static size_t copyCrashRecords(char *Buf, size_t Cap);

  /// Wire limits (shared with the decoder; a frame past these is corrupt).
  static constexpr size_t kMaxWireRecords = 65536;
  static constexpr size_t kMaxWireStringLen = 4096;
  static constexpr size_t kMaxWireFields = 16;

private:
  static constexpr unsigned kStructuredBit = 1;
  static constexpr unsigned kCrashBit = 2;
  static std::atomic<unsigned> Armed;
};

} // namespace cable

/// Emission macros: field/message construction is skipped entirely when
/// disarmed, and the whole site compiles out under CABLE_NO_INSTRUMENT.
#ifdef CABLE_NO_INSTRUMENT
#define CABLE_LOG_EVENT(Lvl, Subsys, Event, Msg, ...)                          \
  do {                                                                         \
  } while (0)
#else
#define CABLE_LOG_EVENT(Lvl, Subsys, Event, Msg, ...)                          \
  do {                                                                         \
    if (::cable::Log::enabled())                                               \
      ::cable::Log::emit(Lvl, Subsys, Event, Msg, ##__VA_ARGS__);              \
  } while (0)
#endif

#define CABLE_LOG_INFO(Subsys, Event, Msg, ...)                                \
  CABLE_LOG_EVENT(::cable::Log::Level::Info, Subsys, Event, Msg,               \
                  ##__VA_ARGS__)
#define CABLE_LOG_WARN(Subsys, Event, Msg, ...)                                \
  CABLE_LOG_EVENT(::cable::Log::Level::Warn, Subsys, Event, Msg,               \
                  ##__VA_ARGS__)
#define CABLE_LOG_ERROR(Subsys, Event, Msg, ...)                               \
  CABLE_LOG_EVENT(::cable::Log::Level::Error, Subsys, Event, Msg,              \
                  ##__VA_ARGS__)

#endif // CABLE_SUPPORT_LOG_H
