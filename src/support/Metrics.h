//===- support/Metrics.h - Process-wide metrics registry --------*- C++ -*-===//
//
// Part of the Cable reproduction of "Debugging Temporal Specifications with
// Concept Analysis" (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A process-wide registry of named counters, gauges, and fixed-bucket
/// latency histograms — the instrumentation substrate for the whole
/// pipeline (builders, thread pool, journal, budgets, sessions, tools).
///
/// Cost model, mirroring support/Failpoint.h:
///
///  - Disarmed (the default), every hot-path call is a single relaxed
///    atomic load and a predicted branch. Nothing else is touched; timers
///    do not even sample the clock.
///  - Armed (Metrics::setEnabled(true), done by `--stats`,
///    `--metrics-out`, `--run-report`, and the bench harness), the hot
///    path is lock-free: counters and gauges are one relaxed fetch_add,
///    histograms one fetch_add into a bucket plus two for sum/count.
///  - Compiled out entirely with -DCABLE_NO_INSTRUMENT=ON: the mutating
///    calls become empty inline functions the optimizer deletes, which is
///    what the overhead-guard bench compares against.
///
/// Handles are registered once (mutex-protected) and cached in static
/// references at the instrumentation site, so name lookup never happens
/// on a hot path:
///
///   namespace { Metrics::Counter &NumClosures =
///       Metrics::counter("lattice.closures"); }
///   ...
///   NumClosures.add(LocalCount);   // once per build, not per closure
///
/// Metric names are kebab-case segments joined by dots, subsystem first:
/// `journal.fsync-us`, `threadpool.queue-depth` (docs/OBSERVABILITY.md
/// has the full catalog).
///
//===----------------------------------------------------------------------===//

#ifndef CABLE_SUPPORT_METRICS_H
#define CABLE_SUPPORT_METRICS_H

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace cable {

class Metrics {
public:
  /// True when collection is armed (one relaxed load; the hot-path gate).
  static bool enabled() {
#ifdef CABLE_NO_INSTRUMENT
    return false;
#else
    return Armed.load(std::memory_order_relaxed);
#endif
  }

  static void setEnabled(bool On);

  /// A monotonically increasing count.
  class Counter {
  public:
    void add(uint64_t N = 1) {
#ifndef CABLE_NO_INSTRUMENT
      if (enabled())
        V.fetch_add(N, std::memory_order_relaxed);
#else
      (void)N;
#endif
    }
    uint64_t value() const { return V.load(std::memory_order_relaxed); }

  private:
    friend class Metrics;
    std::atomic<uint64_t> V{0};
  };

  /// A signed instantaneous value (queue depths, headroom).
  class Gauge {
  public:
    void set(int64_t N) {
#ifndef CABLE_NO_INSTRUMENT
      if (enabled())
        V.store(N, std::memory_order_relaxed);
#else
      (void)N;
#endif
    }
    void add(int64_t N) {
#ifndef CABLE_NO_INSTRUMENT
      if (enabled())
        V.fetch_add(N, std::memory_order_relaxed);
#else
      (void)N;
#endif
    }
    int64_t value() const { return V.load(std::memory_order_relaxed); }
    /// Highest value ever set/added to (updated on the armed path only).
    int64_t high() const { return Hi.load(std::memory_order_relaxed); }

    /// add() that also maintains the high-water mark.
    void addHighWater(int64_t N) {
#ifndef CABLE_NO_INSTRUMENT
      if (!enabled())
        return;
      int64_t Now = V.fetch_add(N, std::memory_order_relaxed) + N;
      int64_t Seen = Hi.load(std::memory_order_relaxed);
      while (Now > Seen &&
             !Hi.compare_exchange_weak(Seen, Now, std::memory_order_relaxed))
        ;
#else
      (void)N;
#endif
    }

  private:
    friend class Metrics;
    std::atomic<int64_t> V{0};
    std::atomic<int64_t> Hi{0};
  };

  /// Fixed-bucket histogram for latencies and sizes. Bucket \c i holds
  /// values v with bucketIndex(v) == i: bucket 0 holds v == 0, bucket
  /// i >= 1 holds 2^(i-1) <= v < 2^i, and the last bucket absorbs
  /// everything larger (the overflow bucket). Recording is three relaxed
  /// fetch_adds plus a CAS loop for the max.
  class Histogram {
  public:
    static constexpr size_t kNumBuckets = 30;

    static size_t bucketIndex(uint64_t V) {
      if (V == 0)
        return 0;
      size_t I = 1;
      while (V > 1 && I < kNumBuckets - 1) {
        V >>= 1;
        ++I;
      }
      return I;
    }

    /// Inclusive upper edge of bucket \p I (2^I - 1; UINT64_MAX for the
    /// overflow bucket).
    static uint64_t bucketUpperEdge(size_t I);

    void record(uint64_t V) {
#ifndef CABLE_NO_INSTRUMENT
      if (!enabled())
        return;
      Buckets[bucketIndex(V)].fetch_add(1, std::memory_order_relaxed);
      Sum.fetch_add(V, std::memory_order_relaxed);
      N.fetch_add(1, std::memory_order_relaxed);
      uint64_t Seen = Max.load(std::memory_order_relaxed);
      while (V > Seen &&
             !Max.compare_exchange_weak(Seen, V, std::memory_order_relaxed))
        ;
#else
      (void)V;
#endif
    }

    uint64_t count() const { return N.load(std::memory_order_relaxed); }
    uint64_t sum() const { return Sum.load(std::memory_order_relaxed); }
    uint64_t max() const { return Max.load(std::memory_order_relaxed); }
    uint64_t bucketCount(size_t I) const {
      return Buckets[I].load(std::memory_order_relaxed);
    }

    /// Bucket-resolution quantile estimate: the upper edge of the first
    /// bucket at which the cumulative count reaches \p Q (0 < Q <= 1).
    uint64_t quantile(double Q) const;

  private:
    friend class Metrics;
    std::atomic<uint64_t> Buckets[kNumBuckets] = {};
    std::atomic<uint64_t> Sum{0};
    std::atomic<uint64_t> N{0};
    std::atomic<uint64_t> Max{0};
  };

  /// Registry lookups: find-or-create by name. Safe from static
  /// initializers (Meyers-style, intentionally leaked registry) and from
  /// any thread; returned references stay valid for the process lifetime.
  /// A name registers as exactly one kind; reusing it as another aborts.
  static Counter &counter(std::string_view Name);
  static Gauge &gauge(std::string_view Name);
  static Histogram &histogram(std::string_view Name);

  /// Current value of a named counter (0 when never registered) — for
  /// tests and the kill-matrix harness.
  static uint64_t counterValue(std::string_view Name);

  /// Zeroes every registered metric (test/bench isolation). Registration
  /// survives; handles stay valid.
  static void reset();

  /// One registered metric, flattened for rendering.
  struct Sample {
    enum Kind { KindCounter, KindGauge, KindHistogram };
    std::string Name;
    Kind K = KindCounter;
    uint64_t Count = 0;   ///< counter value / histogram count
    int64_t Value = 0;    ///< gauge value
    int64_t High = 0;     ///< gauge high-water mark
    uint64_t Sum = 0;     ///< histogram sum
    uint64_t Max = 0;     ///< histogram max
    uint64_t P50 = 0;     ///< histogram quantile estimates
    uint64_t P90 = 0;
    std::vector<uint64_t> Buckets; ///< histogram raw buckets (kNumBuckets)
  };

  /// Every registered metric, sorted by name.
  static std::vector<Sample> snapshot();

  /// The change since \p Baseline (an earlier snapshot() of this same
  /// registry), for cross-process telemetry flushes: counters and
  /// histograms are subtracted element-wise (a histogram delta keeps the
  /// current max — maxima do not subtract), gauges are carried at their
  /// current value/high when either moved. Samples with no change are
  /// omitted. Names absent from the baseline are included whole.
  static std::vector<Sample> deltaSince(const std::vector<Sample> &Baseline);

  /// Folds a remote process's delta into this registry: counters and
  /// histograms add (bucket-wise, plus sum/count; max merges by maximum),
  /// gauges merge by high-water policy (value and high both take the
  /// maximum of local and remote). Unknown names are registered; a name
  /// already registered as a different kind is skipped, never aborted on —
  /// remote bytes must not be able to kill the supervisor. Bypasses the
  /// armed gate: the caller decides whether telemetry is on.
  static void mergeDelta(const std::vector<Sample> &Delta);

  /// Byte-exact little-endian wire form of a sample list, for the shard
  /// telemetry frame (layout in docs/FORMATS.md). decodeSamples is
  /// strict: any truncation, over-limit count, or trailing bytes returns
  /// false and leaves \p Out unspecified.
  static std::string encodeSamples(const std::vector<Sample> &Samples);
  static bool decodeSamples(std::string_view Bytes, std::vector<Sample> &Out);

  /// The snapshot as one JSON object:
  /// {"counters": {...}, "gauges": {...}, "histograms": {...}}.
  /// Keys are sorted; histograms carry count/sum/max/p50/p90 plus the raw
  /// bucket array (docs/OBSERVABILITY.md documents the shape).
  static std::string snapshotJson();

  /// The snapshot as a fixed-width human table (the `stats` command and
  /// `--stats` flag); empty metrics are omitted.
  static std::string renderTable();

  /// One metric as read by the async-signal-safe crash index: the name
  /// pointer is the registry's own (stable — the registry is leaked and
  /// map nodes never move), values are plain relaxed atomic loads.
  /// Histograms carry count/sum/max only; bucket arrays are a normal
  /// snapshot's job.
  struct CrashEntry {
    const char *Name = nullptr;
    Sample::Kind K = Sample::KindCounter;
    uint64_t Count = 0; ///< counter value / histogram count
    int64_t Value = 0;  ///< gauge value
    int64_t High = 0;   ///< gauge high-water mark
    uint64_t Sum = 0;   ///< histogram sum
    uint64_t Max = 0;   ///< histogram max
  };

  /// Async-signal-safe registry walk for the flight recorder: fills up to
  /// \p Cap entries from the fixed crash index (no locks, no allocation)
  /// and returns how many were written. Entries appear in registration
  /// order.
  static size_t crashIndexRead(CrashEntry *Out, size_t Cap);

private:
  static std::atomic<bool> Armed;
};

/// RAII latency timer: samples the steady clock only when metrics are
/// armed, and records elapsed microseconds into \p H on destruction.
class MetricTimer {
public:
  explicit MetricTimer(Metrics::Histogram &H)
      : H(&H), Armed(Metrics::enabled()) {
    if (Armed)
      Start = std::chrono::steady_clock::now();
  }
  MetricTimer(const MetricTimer &) = delete;
  MetricTimer &operator=(const MetricTimer &) = delete;
  ~MetricTimer() {
    if (Armed)
      H->record(static_cast<uint64_t>(
          std::chrono::duration_cast<std::chrono::microseconds>(
              std::chrono::steady_clock::now() - Start)
              .count()));
  }

private:
  Metrics::Histogram *H;
  bool Armed;
  std::chrono::steady_clock::time_point Start;
};

} // namespace cable

#endif // CABLE_SUPPORT_METRICS_H
