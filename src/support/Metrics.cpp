//===- support/Metrics.cpp - Process-wide metrics registry -----------------===//
//
// Part of the Cable reproduction of "Debugging Temporal Specifications with
// Concept Analysis" (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/Metrics.h"

#include "support/Json.h"
#include "support/StringUtil.h"

#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <mutex>

using namespace cable;

std::atomic<bool> Metrics::Armed{false};

namespace {

struct Entry {
  Metrics::Sample::Kind Kind;
  std::unique_ptr<Metrics::Counter> C;
  std::unique_ptr<Metrics::Gauge> G;
  std::unique_ptr<Metrics::Histogram> H;
};

struct Registry {
  std::mutex Mutex;
  std::map<std::string, Entry, std::less<>> Entries;
};

/// Intentionally leaked: instrumentation sites hold references obtained
/// during static init, and counters may still tick during static
/// destruction (thread pool teardown, atexit I/O).
Registry &registry() {
  static Registry *R = new Registry;
  return *R;
}

/// Fixed-size crash index over the registry, readable from a signal
/// handler: name pointers into the leaked map's keys (stable), value
/// pointers at the never-freed metric objects. Appends publish the new
/// count with a release store; crashIndexRead walks it acquire-side with
/// no lock. 4096 slots is an order of magnitude beyond the catalog.
constexpr size_t kMaxCrashIndex = 4096;

struct CrashIndexSlot {
  const char *Name = nullptr;
  Metrics::Sample::Kind Kind = Metrics::Sample::KindCounter;
  const Metrics::Counter *C = nullptr;
  const Metrics::Gauge *G = nullptr;
  const Metrics::Histogram *H = nullptr;
};

CrashIndexSlot GCrashIndex[kMaxCrashIndex];
std::atomic<size_t> GCrashIndexCount{0};

/// Called under the registry mutex, once per newly registered metric.
void crashIndexAppend(const std::string &Name, const Entry &E) {
  size_t N = GCrashIndexCount.load(std::memory_order_relaxed);
  if (N >= kMaxCrashIndex)
    return; // overflow: the tail of the catalog is absent from dumps
  CrashIndexSlot &S = GCrashIndex[N];
  S.Name = Name.c_str();
  S.Kind = E.Kind;
  S.C = E.C.get();
  S.G = E.G.get();
  S.H = E.H.get();
  GCrashIndexCount.store(N + 1, std::memory_order_release);
}

Entry &findOrCreate(std::string_view Name, Metrics::Sample::Kind Kind) {
  Registry &R = registry();
  std::lock_guard<std::mutex> Lock(R.Mutex);
  auto It = R.Entries.find(Name);
  if (It == R.Entries.end()) {
    Entry E;
    E.Kind = Kind;
    switch (Kind) {
    case Metrics::Sample::KindCounter:
      E.C = std::make_unique<Metrics::Counter>();
      break;
    case Metrics::Sample::KindGauge:
      E.G = std::make_unique<Metrics::Gauge>();
      break;
    case Metrics::Sample::KindHistogram:
      E.H = std::make_unique<Metrics::Histogram>();
      break;
    }
    It = R.Entries.emplace(std::string(Name), std::move(E)).first;
    crashIndexAppend(It->first, It->second);
  }
  if (It->second.Kind != Kind) {
    std::fprintf(stderr,
                 "fatal: metric '%s' registered as two different kinds\n",
                 std::string(Name).c_str());
    std::abort();
  }
  return It->second;
}

} // namespace

void Metrics::setEnabled(bool On) {
  Armed.store(On, std::memory_order_relaxed);
}

size_t Metrics::crashIndexRead(CrashEntry *Out, size_t Cap) {
  size_t N = GCrashIndexCount.load(std::memory_order_acquire);
  size_t Written = 0;
  for (size_t I = 0; I < N && Written < Cap; ++I) {
    const CrashIndexSlot &S = GCrashIndex[I];
    CrashEntry &E = Out[Written];
    E.Name = S.Name;
    E.K = S.Kind;
    switch (S.Kind) {
    case Sample::KindCounter:
      E.Count = S.C->value();
      break;
    case Sample::KindGauge:
      E.Value = S.G->value();
      E.High = S.G->high();
      break;
    case Sample::KindHistogram:
      E.Count = S.H->count();
      E.Sum = S.H->sum();
      E.Max = S.H->max();
      break;
    }
    ++Written;
  }
  return Written;
}

Metrics::Counter &Metrics::counter(std::string_view Name) {
  return *findOrCreate(Name, Sample::KindCounter).C;
}

Metrics::Gauge &Metrics::gauge(std::string_view Name) {
  return *findOrCreate(Name, Sample::KindGauge).G;
}

Metrics::Histogram &Metrics::histogram(std::string_view Name) {
  return *findOrCreate(Name, Sample::KindHistogram).H;
}

uint64_t Metrics::counterValue(std::string_view Name) {
  Registry &R = registry();
  std::lock_guard<std::mutex> Lock(R.Mutex);
  auto It = R.Entries.find(Name);
  if (It == R.Entries.end() || It->second.Kind != Sample::KindCounter)
    return 0;
  return It->second.C->value();
}

void Metrics::reset() {
  Registry &R = registry();
  std::lock_guard<std::mutex> Lock(R.Mutex);
  for (auto &[Name, E] : R.Entries) {
    switch (E.Kind) {
    case Sample::KindCounter:
      E.C->V.store(0, std::memory_order_relaxed);
      break;
    case Sample::KindGauge:
      E.G->V.store(0, std::memory_order_relaxed);
      E.G->Hi.store(0, std::memory_order_relaxed);
      break;
    case Sample::KindHistogram:
      for (auto &B : E.H->Buckets)
        B.store(0, std::memory_order_relaxed);
      E.H->Sum.store(0, std::memory_order_relaxed);
      E.H->N.store(0, std::memory_order_relaxed);
      E.H->Max.store(0, std::memory_order_relaxed);
      break;
    }
  }
}

uint64_t Metrics::Histogram::bucketUpperEdge(size_t I) {
  if (I == 0)
    return 0;
  if (I >= kNumBuckets - 1)
    return UINT64_MAX;
  return (uint64_t(1) << I) - 1;
}

uint64_t Metrics::Histogram::quantile(double Q) const {
  uint64_t Total = count();
  if (Total == 0)
    return 0;
  uint64_t Need = static_cast<uint64_t>(Q * static_cast<double>(Total));
  if (Need == 0)
    Need = 1;
  uint64_t Seen = 0;
  for (size_t I = 0; I < kNumBuckets; ++I) {
    Seen += bucketCount(I);
    if (Seen >= Need) {
      // Cap the estimate at the recorded max (tighter than the edge of
      // the overflow bucket, and exact for single-bucket distributions).
      uint64_t Edge = bucketUpperEdge(I);
      uint64_t M = max();
      return Edge < M ? Edge : M;
    }
  }
  return max();
}

std::vector<Metrics::Sample> Metrics::snapshot() {
  Registry &R = registry();
  std::lock_guard<std::mutex> Lock(R.Mutex);
  std::vector<Sample> Out;
  Out.reserve(R.Entries.size());
  for (const auto &[Name, E] : R.Entries) {
    Sample S;
    S.Name = Name;
    S.K = E.Kind;
    switch (E.Kind) {
    case Sample::KindCounter:
      S.Count = E.C->value();
      break;
    case Sample::KindGauge:
      S.Value = E.G->value();
      S.High = E.G->high();
      break;
    case Sample::KindHistogram:
      S.Count = E.H->count();
      S.Sum = E.H->sum();
      S.Max = E.H->max();
      S.P50 = E.H->quantile(0.50);
      S.P90 = E.H->quantile(0.90);
      S.Buckets.resize(Histogram::kNumBuckets);
      for (size_t I = 0; I < Histogram::kNumBuckets; ++I)
        S.Buckets[I] = E.H->bucketCount(I);
      break;
    }
    Out.push_back(std::move(S));
  }
  return Out;
}

std::vector<Metrics::Sample>
Metrics::deltaSince(const std::vector<Sample> &Baseline) {
  std::vector<Sample> Now = snapshot();
  std::vector<Sample> Out;
  // Both lists are name-sorted (registry map order); a single merge walk
  // pairs each current sample with its baseline, if any. The registry
  // only grows, so every baseline name is present in Now.
  size_t BI = 0;
  for (Sample &S : Now) {
    while (BI < Baseline.size() && Baseline[BI].Name < S.Name)
      ++BI;
    const Sample *B =
        (BI < Baseline.size() && Baseline[BI].Name == S.Name) ? &Baseline[BI]
                                                              : nullptr;
    switch (S.K) {
    case Sample::KindCounter: {
      uint64_t Base = B ? B->Count : 0;
      if (S.Count == Base)
        continue;
      S.Count -= Base;
      break;
    }
    case Sample::KindGauge:
      if (B ? (S.Value == B->Value && S.High == B->High)
            : (S.Value == 0 && S.High == 0))
        continue;
      break;
    case Sample::KindHistogram: {
      uint64_t Base = B ? B->Count : 0;
      if (S.Count == Base)
        continue;
      if (B) {
        S.Count -= B->Count;
        S.Sum -= B->Sum;
        for (size_t I = 0; I < S.Buckets.size() && I < B->Buckets.size(); ++I)
          S.Buckets[I] -= B->Buckets[I];
      }
      break;
    }
    }
    Out.push_back(std::move(S));
  }
  return Out;
}

void Metrics::mergeDelta(const std::vector<Sample> &Delta) {
  Registry &R = registry();
  std::lock_guard<std::mutex> Lock(R.Mutex);
  for (const Sample &S : Delta) {
    auto It = R.Entries.find(S.Name);
    if (It == R.Entries.end()) {
      Entry E;
      E.Kind = S.K;
      switch (S.K) {
      case Sample::KindCounter:
        E.C = std::make_unique<Counter>();
        break;
      case Sample::KindGauge:
        E.G = std::make_unique<Gauge>();
        break;
      case Sample::KindHistogram:
        E.H = std::make_unique<Histogram>();
        break;
      }
      It = R.Entries.emplace(S.Name, std::move(E)).first;
    }
    Entry &E = It->second;
    if (E.Kind != S.K)
      continue; // A lying worker must not abort the supervisor.
    switch (S.K) {
    case Sample::KindCounter:
      E.C->V.fetch_add(S.Count, std::memory_order_relaxed);
      break;
    case Sample::KindGauge: {
      // High-water policy: both the value and the mark take the maximum
      // of what either process saw.
      if (S.Value > E.G->V.load(std::memory_order_relaxed))
        E.G->V.store(S.Value, std::memory_order_relaxed);
      int64_t Hi = S.High > S.Value ? S.High : S.Value;
      if (Hi > E.G->Hi.load(std::memory_order_relaxed))
        E.G->Hi.store(Hi, std::memory_order_relaxed);
      break;
    }
    case Sample::KindHistogram:
      for (size_t I = 0; I < Histogram::kNumBuckets && I < S.Buckets.size();
           ++I)
        E.H->Buckets[I].fetch_add(S.Buckets[I], std::memory_order_relaxed);
      E.H->Sum.fetch_add(S.Sum, std::memory_order_relaxed);
      E.H->N.fetch_add(S.Count, std::memory_order_relaxed);
      if (S.Max > E.H->Max.load(std::memory_order_relaxed))
        E.H->Max.store(S.Max, std::memory_order_relaxed);
      break;
    }
  }
}

namespace {

void putU16(std::string &Out, uint16_t V) {
  Out.push_back(static_cast<char>(V & 0xff));
  Out.push_back(static_cast<char>((V >> 8) & 0xff));
}

void putU32(std::string &Out, uint32_t V) {
  for (int I = 0; I < 4; ++I)
    Out.push_back(static_cast<char>((V >> (8 * I)) & 0xff));
}

void putU64(std::string &Out, uint64_t V) {
  for (int I = 0; I < 8; ++I)
    Out.push_back(static_cast<char>((V >> (8 * I)) & 0xff));
}

bool getU16(std::string_view S, size_t &Pos, uint16_t &V) {
  if (S.size() - Pos < 2)
    return false;
  V = static_cast<uint16_t>(static_cast<uint8_t>(S[Pos]) |
                            (static_cast<uint8_t>(S[Pos + 1]) << 8));
  Pos += 2;
  return true;
}

bool getU32(std::string_view S, size_t &Pos, uint32_t &V) {
  if (S.size() - Pos < 4)
    return false;
  V = 0;
  for (int I = 0; I < 4; ++I)
    V |= static_cast<uint32_t>(static_cast<uint8_t>(S[Pos + I])) << (8 * I);
  Pos += 4;
  return true;
}

bool getU64(std::string_view S, size_t &Pos, uint64_t &V) {
  if (S.size() - Pos < 8)
    return false;
  V = 0;
  for (int I = 0; I < 8; ++I)
    V |= static_cast<uint64_t>(static_cast<uint8_t>(S[Pos + I])) << (8 * I);
  Pos += 8;
  return true;
}

// Sanity ceilings for remote-supplied telemetry: a corrupt (but
// CRC-valid) frame must not drive a giant allocation.
constexpr uint32_t kMaxWireSamples = 65536;
constexpr uint16_t kMaxWireNameLen = 512;

} // namespace

std::string Metrics::encodeSamples(const std::vector<Sample> &Samples) {
  std::string Out;
  putU32(Out, static_cast<uint32_t>(Samples.size()));
  for (const Sample &S : Samples) {
    Out.push_back(static_cast<char>(S.K));
    putU16(Out, static_cast<uint16_t>(S.Name.size()));
    Out += S.Name;
    switch (S.K) {
    case Sample::KindCounter:
      putU64(Out, S.Count);
      break;
    case Sample::KindGauge:
      putU64(Out, static_cast<uint64_t>(S.Value));
      putU64(Out, static_cast<uint64_t>(S.High));
      break;
    case Sample::KindHistogram:
      putU64(Out, S.Count);
      putU64(Out, S.Sum);
      putU64(Out, S.Max);
      Out.push_back(static_cast<char>(S.Buckets.size()));
      for (uint64_t B : S.Buckets)
        putU64(Out, B);
      break;
    }
  }
  return Out;
}

bool Metrics::decodeSamples(std::string_view Bytes,
                            std::vector<Sample> &Out) {
  Out.clear();
  size_t Pos = 0;
  uint32_t Num = 0;
  if (!getU32(Bytes, Pos, Num) || Num > kMaxWireSamples)
    return false;
  Out.reserve(Num);
  for (uint32_t I = 0; I < Num; ++I) {
    if (Bytes.size() - Pos < 3)
      return false;
    uint8_t Kind = static_cast<uint8_t>(Bytes[Pos++]);
    if (Kind > Sample::KindHistogram)
      return false;
    uint16_t NameLen = 0;
    if (!getU16(Bytes, Pos, NameLen) || NameLen == 0 ||
        NameLen > kMaxWireNameLen || Bytes.size() - Pos < NameLen)
      return false;
    Sample S;
    S.K = static_cast<Sample::Kind>(Kind);
    S.Name.assign(Bytes.data() + Pos, NameLen);
    Pos += NameLen;
    switch (S.K) {
    case Sample::KindCounter:
      if (!getU64(Bytes, Pos, S.Count))
        return false;
      break;
    case Sample::KindGauge: {
      uint64_t V = 0, H = 0;
      if (!getU64(Bytes, Pos, V) || !getU64(Bytes, Pos, H))
        return false;
      S.Value = static_cast<int64_t>(V);
      S.High = static_cast<int64_t>(H);
      break;
    }
    case Sample::KindHistogram: {
      if (!getU64(Bytes, Pos, S.Count) || !getU64(Bytes, Pos, S.Sum) ||
          !getU64(Bytes, Pos, S.Max) || Bytes.size() - Pos < 1)
        return false;
      uint8_t NumBuckets = static_cast<uint8_t>(Bytes[Pos++]);
      if (NumBuckets > Histogram::kNumBuckets)
        return false;
      S.Buckets.resize(NumBuckets);
      for (uint8_t B = 0; B < NumBuckets; ++B)
        if (!getU64(Bytes, Pos, S.Buckets[B]))
          return false;
      break;
    }
    }
    Out.push_back(std::move(S));
  }
  return Pos == Bytes.size();
}

std::string Metrics::snapshotJson() {
  std::vector<Sample> Samples = snapshot();
  JsonWriter W;
  W.beginObject();
  W.key("counters");
  W.beginObject();
  for (const Sample &S : Samples)
    if (S.K == Sample::KindCounter)
      W.member(S.Name, S.Count);
  W.endObject();
  W.key("gauges");
  W.beginObject();
  for (const Sample &S : Samples)
    if (S.K == Sample::KindGauge) {
      W.key(S.Name);
      W.beginObject();
      W.member("value", S.Value);
      W.member("high", S.High);
      W.endObject();
    }
  W.endObject();
  W.key("histograms");
  W.beginObject();
  for (const Sample &S : Samples) {
    if (S.K != Sample::KindHistogram)
      continue;
    W.key(S.Name);
    W.beginObject();
    W.member("count", S.Count);
    W.member("sum", S.Sum);
    W.member("max", S.Max);
    W.member("p50", S.P50);
    W.member("p90", S.P90);
    W.key("buckets");
    W.beginArray();
    for (uint64_t B : S.Buckets)
      W.value(B);
    W.endArray();
    W.endObject();
  }
  W.endObject();
  W.endObject();
  return W.take();
}

std::string Metrics::renderTable() {
  std::vector<Sample> Samples = snapshot();
  std::string Out;
  char Line[256];
  std::snprintf(Line, sizeof(Line), "%-36s %12s %12s %10s %10s\n", "metric",
                "count/value", "sum", "p50", "p90");
  Out += Line;
  Out += std::string(84, '-') + "\n";
  size_t Shown = 0;
  for (const Sample &S : Samples) {
    switch (S.K) {
    case Sample::KindCounter:
      if (S.Count == 0)
        continue;
      std::snprintf(Line, sizeof(Line), "%-36s %12llu\n", S.Name.c_str(),
                    static_cast<unsigned long long>(S.Count));
      break;
    case Sample::KindGauge:
      if (S.Value == 0 && S.High == 0)
        continue;
      std::snprintf(Line, sizeof(Line), "%-36s %12lld   (high %lld)\n",
                    S.Name.c_str(), static_cast<long long>(S.Value),
                    static_cast<long long>(S.High));
      break;
    case Sample::KindHistogram:
      if (S.Count == 0)
        continue;
      std::snprintf(Line, sizeof(Line),
                    "%-36s %12llu %12llu %10llu %10llu\n", S.Name.c_str(),
                    static_cast<unsigned long long>(S.Count),
                    static_cast<unsigned long long>(S.Sum),
                    static_cast<unsigned long long>(S.P50),
                    static_cast<unsigned long long>(S.P90));
      break;
    }
    Out += Line;
    ++Shown;
  }
  if (Shown == 0)
    Out += "(no metrics recorded; was collection armed?)\n";
  return Out;
}
