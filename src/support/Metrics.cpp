//===- support/Metrics.cpp - Process-wide metrics registry -----------------===//
//
// Part of the Cable reproduction of "Debugging Temporal Specifications with
// Concept Analysis" (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/Metrics.h"

#include "support/Json.h"
#include "support/StringUtil.h"

#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <mutex>

using namespace cable;

std::atomic<bool> Metrics::Armed{false};

namespace {

struct Entry {
  Metrics::Sample::Kind Kind;
  std::unique_ptr<Metrics::Counter> C;
  std::unique_ptr<Metrics::Gauge> G;
  std::unique_ptr<Metrics::Histogram> H;
};

struct Registry {
  std::mutex Mutex;
  std::map<std::string, Entry, std::less<>> Entries;
};

/// Intentionally leaked: instrumentation sites hold references obtained
/// during static init, and counters may still tick during static
/// destruction (thread pool teardown, atexit I/O).
Registry &registry() {
  static Registry *R = new Registry;
  return *R;
}

Entry &findOrCreate(std::string_view Name, Metrics::Sample::Kind Kind) {
  Registry &R = registry();
  std::lock_guard<std::mutex> Lock(R.Mutex);
  auto It = R.Entries.find(Name);
  if (It == R.Entries.end()) {
    Entry E;
    E.Kind = Kind;
    switch (Kind) {
    case Metrics::Sample::KindCounter:
      E.C = std::make_unique<Metrics::Counter>();
      break;
    case Metrics::Sample::KindGauge:
      E.G = std::make_unique<Metrics::Gauge>();
      break;
    case Metrics::Sample::KindHistogram:
      E.H = std::make_unique<Metrics::Histogram>();
      break;
    }
    It = R.Entries.emplace(std::string(Name), std::move(E)).first;
  }
  if (It->second.Kind != Kind) {
    std::fprintf(stderr,
                 "fatal: metric '%s' registered as two different kinds\n",
                 std::string(Name).c_str());
    std::abort();
  }
  return It->second;
}

} // namespace

void Metrics::setEnabled(bool On) {
  Armed.store(On, std::memory_order_relaxed);
}

Metrics::Counter &Metrics::counter(std::string_view Name) {
  return *findOrCreate(Name, Sample::KindCounter).C;
}

Metrics::Gauge &Metrics::gauge(std::string_view Name) {
  return *findOrCreate(Name, Sample::KindGauge).G;
}

Metrics::Histogram &Metrics::histogram(std::string_view Name) {
  return *findOrCreate(Name, Sample::KindHistogram).H;
}

uint64_t Metrics::counterValue(std::string_view Name) {
  Registry &R = registry();
  std::lock_guard<std::mutex> Lock(R.Mutex);
  auto It = R.Entries.find(Name);
  if (It == R.Entries.end() || It->second.Kind != Sample::KindCounter)
    return 0;
  return It->second.C->value();
}

void Metrics::reset() {
  Registry &R = registry();
  std::lock_guard<std::mutex> Lock(R.Mutex);
  for (auto &[Name, E] : R.Entries) {
    switch (E.Kind) {
    case Sample::KindCounter:
      E.C->V.store(0, std::memory_order_relaxed);
      break;
    case Sample::KindGauge:
      E.G->V.store(0, std::memory_order_relaxed);
      E.G->Hi.store(0, std::memory_order_relaxed);
      break;
    case Sample::KindHistogram:
      for (auto &B : E.H->Buckets)
        B.store(0, std::memory_order_relaxed);
      E.H->Sum.store(0, std::memory_order_relaxed);
      E.H->N.store(0, std::memory_order_relaxed);
      E.H->Max.store(0, std::memory_order_relaxed);
      break;
    }
  }
}

uint64_t Metrics::Histogram::bucketUpperEdge(size_t I) {
  if (I == 0)
    return 0;
  if (I >= kNumBuckets - 1)
    return UINT64_MAX;
  return (uint64_t(1) << I) - 1;
}

uint64_t Metrics::Histogram::quantile(double Q) const {
  uint64_t Total = count();
  if (Total == 0)
    return 0;
  uint64_t Need = static_cast<uint64_t>(Q * static_cast<double>(Total));
  if (Need == 0)
    Need = 1;
  uint64_t Seen = 0;
  for (size_t I = 0; I < kNumBuckets; ++I) {
    Seen += bucketCount(I);
    if (Seen >= Need) {
      // Cap the estimate at the recorded max (tighter than the edge of
      // the overflow bucket, and exact for single-bucket distributions).
      uint64_t Edge = bucketUpperEdge(I);
      uint64_t M = max();
      return Edge < M ? Edge : M;
    }
  }
  return max();
}

std::vector<Metrics::Sample> Metrics::snapshot() {
  Registry &R = registry();
  std::lock_guard<std::mutex> Lock(R.Mutex);
  std::vector<Sample> Out;
  Out.reserve(R.Entries.size());
  for (const auto &[Name, E] : R.Entries) {
    Sample S;
    S.Name = Name;
    S.K = E.Kind;
    switch (E.Kind) {
    case Sample::KindCounter:
      S.Count = E.C->value();
      break;
    case Sample::KindGauge:
      S.Value = E.G->value();
      S.High = E.G->high();
      break;
    case Sample::KindHistogram:
      S.Count = E.H->count();
      S.Sum = E.H->sum();
      S.Max = E.H->max();
      S.P50 = E.H->quantile(0.50);
      S.P90 = E.H->quantile(0.90);
      break;
    }
    Out.push_back(std::move(S));
  }
  return Out;
}

std::string Metrics::snapshotJson() {
  std::vector<Sample> Samples = snapshot();
  // Histograms need their bucket arrays, which Sample does not carry;
  // fetch them under the lock in a second pass keyed by name.
  JsonWriter W;
  W.beginObject();
  W.key("counters");
  W.beginObject();
  for (const Sample &S : Samples)
    if (S.K == Sample::KindCounter)
      W.member(S.Name, S.Count);
  W.endObject();
  W.key("gauges");
  W.beginObject();
  for (const Sample &S : Samples)
    if (S.K == Sample::KindGauge) {
      W.key(S.Name);
      W.beginObject();
      W.member("value", S.Value);
      W.member("high", S.High);
      W.endObject();
    }
  W.endObject();
  W.key("histograms");
  W.beginObject();
  {
    Registry &R = registry();
    std::lock_guard<std::mutex> Lock(R.Mutex);
    for (const auto &[Name, E] : R.Entries) {
      if (E.Kind != Sample::KindHistogram)
        continue;
      const Histogram &H = *E.H;
      W.key(Name);
      W.beginObject();
      W.member("count", H.count());
      W.member("sum", H.sum());
      W.member("max", H.max());
      W.member("p50", H.quantile(0.50));
      W.member("p90", H.quantile(0.90));
      W.key("buckets");
      W.beginArray();
      for (size_t I = 0; I < Histogram::kNumBuckets; ++I)
        W.value(H.bucketCount(I));
      W.endArray();
      W.endObject();
    }
  }
  W.endObject();
  W.endObject();
  return W.take();
}

std::string Metrics::renderTable() {
  std::vector<Sample> Samples = snapshot();
  std::string Out;
  char Line[256];
  std::snprintf(Line, sizeof(Line), "%-36s %12s %12s %10s %10s\n", "metric",
                "count/value", "sum", "p50", "p90");
  Out += Line;
  Out += std::string(84, '-') + "\n";
  size_t Shown = 0;
  for (const Sample &S : Samples) {
    switch (S.K) {
    case Sample::KindCounter:
      if (S.Count == 0)
        continue;
      std::snprintf(Line, sizeof(Line), "%-36s %12llu\n", S.Name.c_str(),
                    static_cast<unsigned long long>(S.Count));
      break;
    case Sample::KindGauge:
      if (S.Value == 0 && S.High == 0)
        continue;
      std::snprintf(Line, sizeof(Line), "%-36s %12lld   (high %lld)\n",
                    S.Name.c_str(), static_cast<long long>(S.Value),
                    static_cast<long long>(S.High));
      break;
    case Sample::KindHistogram:
      if (S.Count == 0)
        continue;
      std::snprintf(Line, sizeof(Line),
                    "%-36s %12llu %12llu %10llu %10llu\n", S.Name.c_str(),
                    static_cast<unsigned long long>(S.Count),
                    static_cast<unsigned long long>(S.Sum),
                    static_cast<unsigned long long>(S.P50),
                    static_cast<unsigned long long>(S.P90));
      break;
    }
    Out += Line;
    ++Shown;
  }
  if (Shown == 0)
    Out += "(no metrics recorded; was collection armed?)\n";
  return Out;
}
