//===- support/ThreadPool.h - Deterministic thread pool ---------*- C++ -*-===//
//
// Part of the Cable reproduction of "Debugging Temporal Specifications with
// Concept Analysis" (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A deterministic, work-stealing-free thread pool. Tasks are assigned to
/// workers statically (round-robin at submit time, contiguous chunks for
/// parallelFor) and each worker drains only its own queue, so the mapping
/// from task to executing worker depends on submission order alone — never
/// on scheduling. Callers that index results by task id therefore get
/// bit-for-bit identical output at every thread count, which is the
/// property the parallel lattice builder is built on.
///
/// A pool resolved to one thread runs everything inline on the caller: the
/// exact serial fallback, with no threads created at all.
///
//===----------------------------------------------------------------------===//

#ifndef CABLE_SUPPORT_THREADPOOL_H
#define CABLE_SUPPORT_THREADPOOL_H

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace cable {

/// A fixed-size pool of workers with static task assignment.
class ThreadPool {
public:
  /// Creates a pool of resolveThreadCount(\p NumThreads) workers. A pool
  /// of one worker executes submitted work inline on the calling thread.
  explicit ThreadPool(unsigned NumThreads = 0);

  /// Finishes every task already submitted (queued work is drained, never
  /// dropped), then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool &) = delete;
  ThreadPool &operator=(const ThreadPool &) = delete;

  /// Number of workers (>= 1; 1 means inline execution).
  unsigned numThreads() const { return NumWorkers; }

  /// Maps a requested thread count to an actual one: 0 becomes the
  /// hardware concurrency (at least 1), anything else is taken literally.
  static unsigned resolveThreadCount(unsigned Requested);

  /// Enqueues \p Task on the next worker in round-robin order. The future
  /// carries any exception the task throws. With one worker the task runs
  /// before submit returns.
  std::future<void> submit(std::function<void()> Task);

  /// Splits [0, \p N) into numThreads() contiguous chunks, runs
  /// \p Body(Begin, End) for each, and waits for all of them. Chunk
  /// boundaries depend only on N and the worker count. If chunks throw,
  /// the exception of the lowest-indexed throwing chunk is rethrown after
  /// every chunk has finished.
  void parallelFor(size_t N,
                   const std::function<void(size_t Begin, size_t End)> &Body);

private:
  struct Worker {
    std::thread Thread;
    std::mutex Mutex;
    std::condition_variable WorkAvailable;
    std::deque<std::packaged_task<void()>> Queue;
    bool ShuttingDown = false;
  };

  void workerLoop(Worker &W, unsigned Index);

  unsigned NumWorkers = 1;
  std::vector<std::unique_ptr<Worker>> Workers;
  size_t NextWorker = 0;
  std::mutex SubmitMutex;
};

} // namespace cable

#endif // CABLE_SUPPORT_THREADPOOL_H
