//===- support/ArtifactStore.cpp - Content-addressed artifacts -------------===//
//
// Part of the Cable reproduction of "Debugging Temporal Specifications with
// Concept Analysis" (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/ArtifactStore.h"

#include "support/AtomicFile.h"
#include "support/Failpoint.h"
#include "support/Log.h"
#include "support/Metrics.h"

#include <cerrno>
#include <cstring>
#include <thread>

#include <fcntl.h>
#include <sys/file.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

using namespace cable;

namespace {

// The five cache fault-injection sites. cache-serialize guards the encode
// step in Session (before any bytes exist to publish); the other four are
// hit below at their syscall boundaries.
Failpoint::Registrar RegSerialize("cache-serialize");
Failpoint::Registrar RegPublish("cache-publish");
Failpoint::Registrar RegLock("cache-lock");
Failpoint::Registrar RegLoad("cache-load");
Failpoint::Registrar RegMmap("cache-mmap");

Status ioError(const std::string &Path, const std::string &What) {
  Diagnostic D;
  D.Level = Severity::Error;
  D.Code = ErrorCode::IoError;
  D.File = Path;
  D.Message = What + ": " + std::strerror(errno);
  return Status::error(std::move(D));
}

Status notFound(const std::string &Path) {
  Diagnostic D;
  D.Level = Severity::Error;
  D.Code = ErrorCode::NotFound;
  D.File = Path;
  D.Message = "no artifact for this key";
  return Status::error(std::move(D));
}

/// RAII over either an mmap'd region or a heap copy of the file.
class FileBytes {
public:
  ~FileBytes() {
    if (Mapped)
      ::munmap(Mapped, MappedLen);
  }
  std::string_view view() const {
    return Mapped ? std::string_view(static_cast<const char *>(Mapped),
                                     MappedLen)
                  : std::string_view(Copy);
  }
  void *Mapped = nullptr;
  size_t MappedLen = 0;
  std::string Copy;
};

} // namespace

Status ArtifactStore::prepare() const {
  // mkdir -p over the store path; EEXIST at every level is the fast path.
  std::string Partial;
  Partial.reserve(Dir.size());
  for (size_t I = 0; I <= Dir.size(); ++I) {
    if (I < Dir.size() && Dir[I] != '/') {
      Partial += Dir[I];
      continue;
    }
    if (!Partial.empty() &&
        ::mkdir(Partial.c_str(), 0755) != 0 && errno != EEXIST)
      return ioError(Partial, "cannot create cache directory");
    if (I < Dir.size())
      Partial += '/';
  }
  return Status::ok();
}

std::string ArtifactStore::artifactPath(const std::string &Key) const {
  return Dir + "/" + Key;
}

Status ArtifactStore::load(
    const std::string &Key,
    const std::function<Status(std::string_view)> &Consume) const {
  const std::string Path = artifactPath(Key);
  if (Status S = Failpoint::hit("cache-load"); !S.isOk())
    return S;
  int Fd = ::open(Path.c_str(), O_RDONLY | O_CLOEXEC);
  if (Fd < 0)
    return errno == ENOENT ? notFound(Path) : ioError(Path, "cannot open");
  struct stat St;
  if (::fstat(Fd, &St) != 0) {
    Status S = ioError(Path, "cannot stat");
    ::close(Fd);
    return S;
  }
  const size_t Len = static_cast<size_t>(St.st_size);

  FileBytes Bytes;
  // Small artifacts are cheaper to read() than to fault in page by page;
  // mmap only pays past a few hundred KB, where it also caps peak RSS.
  // The failpoint is evaluated unconditionally so the site stays live in
  // the kill matrix at every artifact size.
  constexpr size_t kMmapThreshold = 256 * 1024;
  bool MmapOk = Failpoint::hit("cache-mmap").isOk();
  bool UseMap = Len >= kMmapThreshold && MmapOk;
  if (UseMap) {
    void *Map = ::mmap(nullptr, Len, PROT_READ, MAP_PRIVATE, Fd, 0);
    if (Map == MAP_FAILED)
      UseMap = false; // degrade to read()
    else {
      Bytes.Mapped = Map;
      Bytes.MappedLen = Len;
    }
  }
  if (!UseMap && Len > 0) {
    Bytes.Copy.resize(Len);
    size_t Got = 0;
    while (Got < Len) {
      ssize_t N = ::read(Fd, Bytes.Copy.data() + Got, Len - Got);
      if (N < 0 && errno == EINTR)
        continue;
      if (N <= 0) {
        Status S = ioError(Path, "short read");
        ::close(Fd);
        return S;
      }
      Got += static_cast<size_t>(N);
    }
  }
  ::close(Fd);

  Status Verdict = Consume(Bytes.view());
  if (!Verdict.isOk()) {
    // The consumer rejected the bytes: the artifact is corrupt (or keyed
    // wrong). Move it out of the hot path so the rebuild can republish,
    // and keep the evidence for post-mortem.
    Metrics::counter("cache.verify-failed").add();
    CABLE_LOG_WARN("cache", "cache-verify-failed",
                   "stored artifact failed verification",
                   {Log::str("key", Key),
                    Log::str("error", Verdict.message())});
    if (quarantine(Key).isOk()) {
      Metrics::counter("cache.quarantined").add();
      CABLE_LOG_WARN("cache", "cache-quarantined",
                     "corrupt artifact moved aside for post-mortem",
                     {Log::str("key", Key)});
    }
  }
  return Verdict;
}

Status ArtifactStore::store(const std::string &Key,
                            std::string_view Bytes) const {
  if (Status S = Failpoint::hit("cache-publish"); !S.isOk())
    return S;
  if (Status S = AtomicFile::write(artifactPath(Key), Bytes); !S.isOk())
    return S;
  Metrics::counter("cache.stores").add();
  return Status::ok();
}

StatusOr<std::string> ArtifactStore::quarantine(const std::string &Key) const {
  const std::string Path = artifactPath(Key);
  for (unsigned N = 0; N < 1000; ++N) {
    std::string Target = Path + ".corrupt." + std::to_string(N);
    // O_EXCL claims the slot atomically even when several processes
    // quarantine the same artifact at once.
    int Fd = ::open(Target.c_str(), O_CREAT | O_EXCL | O_WRONLY | O_CLOEXEC,
                    0644);
    if (Fd < 0) {
      if (errno == EEXIST)
        continue;
      return ioError(Target, "cannot create quarantine slot");
    }
    ::close(Fd);
    if (::rename(Path.c_str(), Target.c_str()) != 0) {
      Status S = ioError(Path, "cannot quarantine");
      ::unlink(Target.c_str());
      return S;
    }
    return Target;
  }
  return Status::error(ErrorCode::IoError,
                       "quarantine slots exhausted for " + Path);
}

ArtifactStore::KeyLock &
ArtifactStore::KeyLock::operator=(KeyLock &&O) noexcept {
  if (this != &O) {
    release();
    Fd = O.Fd;
    O.Fd = -1;
  }
  return *this;
}

void ArtifactStore::KeyLock::release() {
  if (Fd >= 0) {
    ::flock(Fd, LOCK_UN);
    ::close(Fd);
    Fd = -1;
  }
}

ArtifactStore::KeyLock
ArtifactStore::lockKey(const std::string &Key,
                       std::chrono::milliseconds MaxWait) const {
  if (!Failpoint::hit("cache-lock").isOk())
    return KeyLock();
  const std::string Path = artifactPath(Key) + ".lock";
  int Fd = ::open(Path.c_str(), O_CREAT | O_RDWR | O_CLOEXEC, 0644);
  if (Fd < 0)
    return KeyLock();
  if (::flock(Fd, LOCK_EX | LOCK_NB) == 0)
    return KeyLock(Fd);

  // Contended: another process is building this key. Wait (bounded) for
  // it to publish; the kernel frees the flock the moment the holder exits
  // for any reason, so only a live-but-wedged holder can run the clock
  // out — and then we break the stalemate by building inline.
  Metrics::counter("cache.lock-waits").add();
  const auto Start = std::chrono::steady_clock::now();
  const auto Deadline = Start + MaxWait;
  for (;;) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    if (::flock(Fd, LOCK_EX | LOCK_NB) == 0) {
      Metrics::counter("cache.lock-wait-ms")
          .add(static_cast<uint64_t>(
              std::chrono::duration_cast<std::chrono::milliseconds>(
                  std::chrono::steady_clock::now() - Start)
                  .count()));
      return KeyLock(Fd);
    }
    if (std::chrono::steady_clock::now() >= Deadline)
      break;
  }
  Metrics::counter("cache.lock-wait-ms")
      .add(static_cast<uint64_t>(MaxWait.count()));
  Metrics::counter("cache.lock-timeouts").add();
  CABLE_LOG_WARN("cache", "cache-lock-timeout",
                 "single-flight lock wait timed out; building inline",
                 {Log::str("key", Key),
                  Log::num("wait_ms", static_cast<int64_t>(MaxWait.count()))});
  ::close(Fd);
  return KeyLock();
}
