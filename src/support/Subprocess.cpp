//===- support/Subprocess.cpp - Crash-isolated worker processes ------------===//
//
// Part of the Cable reproduction of "Debugging Temporal Specifications with
// Concept Analysis" (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/Subprocess.h"

#include "support/AtomicFile.h"
#include "support/CrashDump.h"
#include "support/Failpoint.h"
#include "support/Log.h"
#include "support/TraceEvent.h"

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <optional>

#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

using namespace cable;

namespace {

Failpoint::Registrar RegPreFork("shard-pre-fork");

/// Async-signal-safe table of live child pids. Slots are claimed with a
/// CAS on spawn and cleared on reap; a terminate-signal handler walks it
/// with plain loads and kill(2), both signal-safe.
constexpr size_t MaxTrackedChildren = 256;
std::atomic<pid_t> ActiveChildren[MaxTrackedChildren];

void trackChild(pid_t Pid) {
  for (size_t I = 0; I < MaxTrackedChildren; ++I) {
    pid_t Expected = 0;
    if (ActiveChildren[I].compare_exchange_strong(Expected, Pid,
                                                  std::memory_order_relaxed))
      return;
  }
  // Table full: the child is still reaped normally, it just cannot be
  // killed from a signal handler. 256 slots is far beyond any worker
  // count the supervisor spawns.
}

void untrackChild(pid_t Pid) {
  for (size_t I = 0; I < MaxTrackedChildren; ++I) {
    pid_t Expected = Pid;
    if (ActiveChildren[I].compare_exchange_strong(Expected, 0,
                                                  std::memory_order_relaxed))
      return;
  }
}

Status ioError(const char *What) {
  return Status::error(ErrorCode::IoError,
                       std::string(What) + ": " + std::strerror(errno));
}

/// Milliseconds left before \p Deadline, clamped to >= 0; -1 = unbounded.
int remainingMs(const std::optional<std::chrono::steady_clock::time_point>
                    &Deadline) {
  if (!Deadline)
    return -1;
  auto Left = std::chrono::duration_cast<std::chrono::milliseconds>(
      *Deadline - std::chrono::steady_clock::now());
  return Left.count() > 0 ? static_cast<int>(Left.count()) : 0;
}

/// Reads exactly \p Len bytes into \p Buf within \p Deadline. Returns the
/// number of bytes read on clean EOF-before-first-byte (0) or full success
/// (Len); any other outcome is an error Status.
StatusOr<size_t>
readFull(int Fd, char *Buf, size_t Len,
         const std::optional<std::chrono::steady_clock::time_point>
             &Deadline) {
  size_t Got = 0;
  while (Got < Len) {
    struct pollfd P;
    P.fd = Fd;
    P.events = POLLIN;
    P.revents = 0;
    int Rc = ::poll(&P, 1, remainingMs(Deadline));
    if (Rc < 0) {
      if (errno == EINTR)
        continue;
      return ioError("poll on worker socket");
    }
    if (Rc == 0)
      return Status::error(ErrorCode::ResourceExhausted,
                           "timed out waiting for a frame");
    ssize_t N = ::read(Fd, Buf + Got, Len - Got);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      return ioError("read on worker socket");
    }
    if (N == 0)
      return Got; // EOF: 0 = peer closed cleanly, mid-count = torn.
    Got += static_cast<size_t>(N);
  }
  return Got;
}

} // namespace

Status cable::sendBytes(int Fd, const char *Data, size_t Len) {
  size_t Sent = 0;
  while (Sent < Len) {
    ssize_t N = ::send(Fd, Data + Sent, Len - Sent, MSG_NOSIGNAL);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      return ioError("send on worker socket");
    }
    Sent += static_cast<size_t>(N);
  }
  return Status::ok();
}

Status cable::sendFrame(int Fd, std::string_view Payload) {
  if (Payload.size() > MaxFrameBytes)
    return Status::error(ErrorCode::InvalidArgument,
                         "frame payload exceeds the 1 GiB wire limit");
  std::string Frame = encodeFramedRecord(Payload);
  return sendBytes(Fd, Frame.data(), Frame.size());
}

StatusOr<std::string> cable::recvFrame(int Fd, int TimeoutMs) {
  std::optional<std::chrono::steady_clock::time_point> Deadline;
  if (TimeoutMs >= 0)
    Deadline = std::chrono::steady_clock::now() +
               std::chrono::milliseconds(TimeoutMs);

  char Header[8];
  StatusOr<size_t> HeaderGot = readFull(Fd, Header, sizeof(Header), Deadline);
  if (!HeaderGot)
    return HeaderGot.status();
  if (*HeaderGot == 0)
    return Status::error(ErrorCode::IoError, "peer closed the connection");
  if (*HeaderGot < sizeof(Header))
    return Status::error(ErrorCode::IoError,
                         "torn frame: EOF inside the 8-byte header");

  uint32_t Len = 0, Crc = 0;
  for (int I = 3; I >= 0; --I) {
    Len = (Len << 8) | static_cast<unsigned char>(Header[I]);
    Crc = (Crc << 8) | static_cast<unsigned char>(Header[I + 4]);
  }
  if (Len > MaxFrameBytes)
    return Status::error(ErrorCode::IoError,
                         "corrupt frame: length " + std::to_string(Len) +
                             " exceeds the wire limit");

  std::string Payload(Len, '\0');
  if (Len > 0) {
    StatusOr<size_t> BodyGot = readFull(Fd, Payload.data(), Len, Deadline);
    if (!BodyGot)
      return BodyGot.status();
    if (*BodyGot < Len)
      return Status::error(ErrorCode::IoError,
                           "torn frame: EOF after " + std::to_string(*BodyGot) +
                               " of " + std::to_string(Len) +
                               " payload bytes");
  }
  if (crc32(Payload) != Crc)
    return Status::error(ErrorCode::IoError,
                         "corrupt frame: payload checksum mismatch");
  return Payload;
}

bool Subprocess::forkSupported() {
#if defined(__unix__) || defined(__APPLE__)
  return true;
#else
  return false;
#endif
}

StatusOr<Subprocess> Subprocess::spawn(const ChildMain &Main,
                                       const std::vector<int> &CloseInChild) {
  int Pair[2];
  if (::socketpair(AF_UNIX, SOCK_STREAM, 0, Pair) != 0)
    return ioError("socketpair");

  pid_t Pid = ::fork();
  if (Pid < 0) {
    int E = errno;
    ::close(Pair[0]);
    ::close(Pair[1]);
    return Status::error(ErrorCode::ResourceExhausted,
                         std::string("fork: ") + std::strerror(E));
  }
  if (Pid == 0) {
    // Child. Drop the parent's end and every sibling fd so a sibling
    // worker's death is visible to the supervisor as a prompt EOF.
    ::close(Pair[0]);
    for (int Sibling : CloseInChild)
      if (Sibling >= 0)
        ::close(Sibling);
    // The fork copied the parent's trace and log rings wholesale; clear
    // them so the child's telemetry flushes carry only events it recorded
    // itself. The shared epoch survives, keeping both processes on one
    // timeline, and the flight recorder re-points at crash.<childpid>.json
    // before the first failpoint can fire.
    TraceLog::resetAfterFork();
    Log::resetAfterFork();
    CrashDump::reinstallAfterFork();
    // The first worker-lifecycle failpoint: a `crash` here simulates a
    // worker SIGKILLed before it ever answers (the supervisor must respawn
    // or degrade); an `error` is a worker that comes up broken and exits
    // nonzero before serving a single shard.
    int Code;
    if (Status S = Failpoint::hit("shard-pre-fork"); !S.isOk())
      Code = 7;
    else
      Code = Main(Pair[1]);
    // _exit, not exit: the child shares the parent's stdio buffers and
    // atexit list and must touch neither.
    ::_exit(Code);
  }

  ::close(Pair[1]);
  trackChild(Pid);
  Subprocess P;
  P.Fd = Pair[0];
  P.Pid = Pid;
  return P;
}

Subprocess::Subprocess(Subprocess &&Other) noexcept
    : Fd(Other.Fd), Pid(Other.Pid) {
  Other.Fd = -1;
  Other.Pid = -1;
}

Subprocess &Subprocess::operator=(Subprocess &&Other) noexcept {
  if (this != &Other) {
    if (running()) {
      kill();
      wait();
    }
    closeFd();
    Fd = Other.Fd;
    Pid = Other.Pid;
    Other.Fd = -1;
    Other.Pid = -1;
  }
  return *this;
}

Subprocess::~Subprocess() {
  if (running()) {
    kill();
    wait();
  }
  closeFd();
}

void Subprocess::kill() {
  if (Pid > 0)
    ::kill(Pid, SIGKILL);
}

void Subprocess::closeFd() {
  if (Fd >= 0) {
    ::close(Fd);
    Fd = -1;
  }
}

Subprocess::ExitStatus Subprocess::wait() {
  ExitStatus Out;
  if (Pid <= 0)
    return Out;
  int Raw = 0;
  pid_t Reaped;
  do {
    Reaped = ::waitpid(Pid, &Raw, 0);
  } while (Reaped < 0 && errno == EINTR);
  untrackChild(Pid);
  Pid = -1;
  if (Reaped > 0) {
    if (WIFSIGNALED(Raw)) {
      Out.Signaled = true;
      Out.Code = WTERMSIG(Raw);
    } else if (WIFEXITED(Raw)) {
      Out.Code = WEXITSTATUS(Raw);
    }
  }
  return Out;
}

std::optional<Subprocess::ExitStatus> Subprocess::tryWait() {
  if (Pid <= 0)
    return std::nullopt;
  int Raw = 0;
  pid_t Reaped = ::waitpid(Pid, &Raw, WNOHANG);
  if (Reaped == 0)
    return std::nullopt;
  untrackChild(Pid);
  Pid = -1;
  ExitStatus Out;
  if (Reaped > 0) {
    if (WIFSIGNALED(Raw)) {
      Out.Signaled = true;
      Out.Code = WTERMSIG(Raw);
    } else if (WIFEXITED(Raw)) {
      Out.Code = WEXITSTATUS(Raw);
    }
  }
  return Out;
}

void Subprocess::killActiveFromSignalHandler() {
  for (size_t I = 0; I < MaxTrackedChildren; ++I) {
    pid_t Pid = ActiveChildren[I].load(std::memory_order_relaxed);
    if (Pid > 0)
      ::kill(Pid, SIGKILL);
  }
}
