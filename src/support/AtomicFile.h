//===- support/AtomicFile.h - Crash-safe file output ------------*- C++ -*-===//
//
// Part of the Cable reproduction of "Debugging Temporal Specifications with
// Concept Analysis" (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Crash-safe file primitives shared by the session journal and every tool
/// output path:
///
///  - AtomicFile::write: write-temp + fsync + rename + directory fsync, so
///    readers see either the old contents or the new contents, never a
///    partial file — the standard POSIX atomic-replace recipe.
///  - crc32: the CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) used
///    to checksum both framed journal records and headered text files.
///  - Framed records: `[u32 length][u32 crc32(payload)][payload]`, both
///    fields little-endian. scanFramedRecords stops at the first frame
///    whose length or checksum does not hold — the torn tail a crash during
///    append leaves behind — and reports it with a positioned Diagnostic
///    instead of failing the whole scan.
///  - Checksum-headered text: `#%<magic> v<version> crc=<8 hex>` as the
///    first line, protecting label saves and snapshots against truncation
///    and bit rot while staying hand-readable.
///
/// Every I/O step is failpoint-instrumented (support/Failpoint.h) so the
/// crash-recovery suite can kill or fail the process at each syscall
/// boundary: `atomicfile-open`, `atomicfile-write`, `atomicfile-fsync`,
/// `atomicfile-rename`, `file-read`.
///
//===----------------------------------------------------------------------===//

#ifndef CABLE_SUPPORT_ATOMICFILE_H
#define CABLE_SUPPORT_ATOMICFILE_H

#include "support/Status.h"

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace cable {

/// CRC-32 (IEEE) of \p Data. \p Seed chains incremental computations:
/// crc32(a+b) == crc32(b, crc32(a)).
uint32_t crc32(std::string_view Data, uint32_t Seed = 0);

/// Atomic whole-file replacement.
class AtomicFile {
public:
  /// Replaces \p Path with \p Contents atomically: writes
  /// `<Path>.tmp.<pid>`, fsyncs it, renames it over \p Path, and fsyncs
  /// the containing directory so the rename itself is durable. On any
  /// failure the temporary is unlinked and \p Path is untouched.
  static Status write(const std::string &Path, std::string_view Contents);
};

/// Reads all of \p Path. Fails with an io-error Status (file in the
/// diagnostic) on open/read failure; failpoint `file-read` injects here.
StatusOr<std::string> readFileToString(const std::string &Path);

// -- Framed records --------------------------------------------------------

/// Encodes one `[len][crc][payload]` frame.
std::string encodeFramedRecord(std::string_view Payload);

/// One decoded frame and where it started in the input.
struct FramedRecord {
  std::string Payload;
  size_t Offset;
};

/// Result of scanning a stream of frames.
struct FramedScan {
  std::vector<FramedRecord> Records;
  /// True when trailing bytes did not form a whole, checksummed frame —
  /// the expected residue of a crash mid-append. The bytes are skipped.
  bool Torn = false;
  /// Byte offset of the torn frame, and a Warning-severity diagnostic
  /// describing it (positioned by 1-based record number).
  size_t TornOffset = 0;
  Status TornStatus;
};

/// Decodes frames from \p Data until the end or the first frame whose
/// length or CRC does not hold.
FramedScan scanFramedRecords(std::string_view Data);

// -- Checksum-headered text ------------------------------------------------

/// Prepends `#%<Magic> v<Version> crc=<8 lowercase hex of Body>\n`.
std::string withChecksumHeader(std::string_view Magic, unsigned Version,
                               std::string_view Body);

/// A verified checksummed text file.
struct CheckedText {
  std::string Body;
  unsigned Version = 0;
  /// True when \p Text had no header and was accepted as-is (legacy).
  bool Legacy = false;
};

/// Verifies and strips a checksum header. A malformed header, an
/// unsupported version, or a CRC mismatch produce a positioned Diagnostic
/// (line 1, \p File) — corruption is reported, never silently half-loaded.
/// Headerless input is accepted as legacy when \p AllowLegacy is set, and
/// rejected otherwise.
StatusOr<CheckedText> readChecksumHeader(std::string_view Magic,
                                         std::string_view Text,
                                         const std::string &File,
                                         bool AllowLegacy);

} // namespace cable

#endif // CABLE_SUPPORT_ATOMICFILE_H
