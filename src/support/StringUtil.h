//===- support/StringUtil.h - String helpers --------------------*- C++ -*-===//
//
// Part of the Cable reproduction of "Debugging Temporal Specifications with
// Concept Analysis" (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Small string helpers used by the trace parser, the Cable REPL, and the
/// table printers in bench/.
///
//===----------------------------------------------------------------------===//

#ifndef CABLE_SUPPORT_STRINGUTIL_H
#define CABLE_SUPPORT_STRINGUTIL_H

#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace cable {

/// Splits \p Text on \p Sep. Adjacent separators produce empty fields;
/// splitting an empty string yields one empty field.
std::vector<std::string> splitString(std::string_view Text, char Sep);

/// Splits \p Text on runs of whitespace, dropping empty fields.
std::vector<std::string> splitWhitespace(std::string_view Text);

/// A whitespace-delimited token together with its byte offset in the
/// original text, so parsers can report 1-based column positions.
struct TokenSpan {
  std::string Text;
  size_t Offset;
};

/// Like splitWhitespace, but each token remembers where it started.
std::vector<TokenSpan> splitWhitespaceSpans(std::string_view Text);

/// Returns \p Text with leading and trailing whitespace removed.
std::string_view trimString(std::string_view Text);

/// Joins \p Parts with \p Sep between consecutive elements.
std::string joinStrings(const std::vector<std::string> &Parts,
                        std::string_view Sep);

/// Returns true if \p Text consists only of decimal digits (and is
/// nonempty).
bool isAllDigits(std::string_view Text);

/// Parses \p Text as a decimal unsigned long. Returns std::nullopt on an
/// empty string, a non-digit character, or overflow — never throws, so
/// user-supplied numbers (value tokens, state names, CLI flags) can be
/// rejected with a diagnostic instead of an abort.
std::optional<unsigned long> parseUnsignedLong(std::string_view Text);

/// Left-pads or truncates \p Text to exactly \p Width columns.
std::string padString(std::string_view Text, size_t Width);

} // namespace cable

#endif // CABLE_SUPPORT_STRINGUTIL_H
