//===- support/ArtifactStore.h - Content-addressed artifacts ----*- C++ -*-===//
//
// Part of the Cable reproduction of "Debugging Temporal Specifications with
// Concept Analysis" (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A crash-safe, content-addressed artifact store: one directory of
/// immutable files, each named by its content key. Designed so a poisoned
/// or torn cache can cost time but never correctness:
///
///  - store() publishes only through AtomicFile (write-temp + fsync +
///    rename + parent-directory fsync), so a crash at any instant leaves
///    the key either absent or fully written — never torn.
///  - load() memory-maps the artifact read-only (falling back to read())
///    and hands the bytes to a caller-supplied verifying consumer. When
///    the consumer rejects them, the artifact is moved aside to
///    `<key>.corrupt.<n>` (quarantine — kept for post-mortem, out of the
///    hot path) and the rejection is returned so the caller can rebuild.
///  - lockKey() takes a per-key advisory flock on `<key>.lock` so N
///    concurrent processes racing a cold key build once: one wins the
///    lock and publishes, the rest wait, re-load, and hit. The kernel
///    releases an flock when its holder dies, so a crashed builder never
///    strands the key; a *wedged* holder is broken by the bounded wait —
///    the waiter times out, builds inline, and simply skips publishing.
///
/// Every syscall boundary is failpoint-instrumented (`cache-lock`,
/// `cache-load`, `cache-mmap`, `cache-publish`; `cache-serialize` is
/// registered here for the encode step its callers run) and ticks the
/// `cache.*` metric counters documented in docs/OBSERVABILITY.md.
///
//===----------------------------------------------------------------------===//

#ifndef CABLE_SUPPORT_ARTIFACTSTORE_H
#define CABLE_SUPPORT_ARTIFACTSTORE_H

#include "support/Status.h"

#include <chrono>
#include <functional>
#include <string>
#include <string_view>

namespace cable {

class ArtifactStore {
public:
  /// A store rooted at \p Dir. No I/O happens until prepare().
  explicit ArtifactStore(std::string Dir) : Dir(std::move(Dir)) {}

  const std::string &dir() const { return Dir; }

  /// Creates the store directory (and parents) if absent.
  Status prepare() const;

  /// Path of \p Key's artifact file.
  std::string artifactPath(const std::string &Key) const;

  /// Loads \p Key and passes the bytes (mmap'd when possible) to
  /// \p Consume, which must verify before trusting them. Returns
  /// not-found when the key is absent, an io-error on read failure, and
  /// \p Consume's own status otherwise. A rejecting consumer quarantines
  /// the artifact (ticking `cache.verify-failed` / `cache.quarantined`);
  /// the bytes are only valid for the duration of the call.
  Status load(const std::string &Key,
              const std::function<Status(std::string_view)> &Consume) const;

  /// Publishes \p Bytes under \p Key atomically. Ticks `cache.stores`.
  Status store(const std::string &Key, std::string_view Bytes) const;

  /// Moves \p Key's artifact aside to `<key>.corrupt.<n>` (first free n).
  /// Returns the quarantine path.
  StatusOr<std::string> quarantine(const std::string &Key) const;

  /// A held (or failed/timed-out) per-key advisory lock. Releases on
  /// destruction; the `.lock` file itself is left behind — it carries no
  /// state, the kernel flock does.
  class KeyLock {
  public:
    KeyLock() = default;
    KeyLock(KeyLock &&O) noexcept : Fd(O.Fd) { O.Fd = -1; }
    KeyLock &operator=(KeyLock &&O) noexcept;
    ~KeyLock() { release(); }
    KeyLock(const KeyLock &) = delete;
    KeyLock &operator=(const KeyLock &) = delete;

    /// True when this process holds the exclusive lock.
    bool held() const { return Fd >= 0; }
    void release();

  private:
    friend class ArtifactStore;
    explicit KeyLock(int Fd) : Fd(Fd) {}
    int Fd = -1;
  };

  /// Acquires `<key>.lock` exclusively, waiting up to \p MaxWait for a
  /// concurrent holder. On timeout (or any lock error) the returned
  /// KeyLock reports !held() — the caller proceeds without the lock and
  /// must then skip store(), which keeps a wedged peer from blocking
  /// progress while the eventual winner's atomic rename stays safe.
  /// Ticks `cache.lock-waits` / `cache.lock-wait-ms` / `cache.lock-timeouts`.
  KeyLock lockKey(const std::string &Key,
                  std::chrono::milliseconds MaxWait) const;

private:
  std::string Dir;
};

} // namespace cable

#endif // CABLE_SUPPORT_ARTIFACTSTORE_H
