//===- support/ThreadPool.cpp - Deterministic thread pool ------------------===//
//
// Part of the Cable reproduction of "Debugging Temporal Specifications with
// Concept Analysis" (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/ThreadPool.h"

#include "support/Failpoint.h"
#include "support/Metrics.h"
#include "support/TraceEvent.h"

#include <stdexcept>
#include <string>

using namespace cable;

namespace {

// Injected at every task dispatch. Error mode throws into the task's
// future (parallelFor rethrows it deterministically); crash mode kills
// the process mid-build — the crash-recovery suite's way of dying inside
// lattice construction.
Failpoint::Registrar RegDispatch("threadpool-dispatch");

Metrics::Counter &NumDispatches = Metrics::counter("threadpool.dispatches");
Metrics::Gauge &QueueDepth = Metrics::gauge("threadpool.queue-depth");
Metrics::Histogram &TaskUs = Metrics::histogram("threadpool.task-us");

} // namespace

unsigned ThreadPool::resolveThreadCount(unsigned Requested) {
  if (Requested != 0)
    return Requested;
  unsigned HW = std::thread::hardware_concurrency();
  return HW == 0 ? 1 : HW;
}

ThreadPool::ThreadPool(unsigned NumThreads)
    : NumWorkers(resolveThreadCount(NumThreads)) {
  if (NumWorkers == 1)
    return; // Inline execution; no workers, no queues.
  Workers.reserve(NumWorkers);
  for (unsigned I = 0; I < NumWorkers; ++I) {
    Workers.push_back(std::make_unique<Worker>());
    Worker &W = *Workers.back();
    W.Thread = std::thread([this, &W, I] { workerLoop(W, I); });
  }
}

ThreadPool::~ThreadPool() {
  for (std::unique_ptr<Worker> &W : Workers) {
    {
      std::lock_guard<std::mutex> Lock(W->Mutex);
      W->ShuttingDown = true;
    }
    W->WorkAvailable.notify_all();
  }
  for (std::unique_ptr<Worker> &W : Workers)
    W->Thread.join();
}

void ThreadPool::workerLoop(Worker &W, unsigned Index) {
  TraceLog::setThreadName("pool-worker-" + std::to_string(Index));
  for (;;) {
    std::packaged_task<void()> Task;
    {
      std::unique_lock<std::mutex> Lock(W.Mutex);
      W.WorkAvailable.wait(
          Lock, [&] { return W.ShuttingDown || !W.Queue.empty(); });
      // Shutdown drains the queue: exit only once it is empty.
      if (W.Queue.empty())
        return;
      Task = std::move(W.Queue.front());
      W.Queue.pop_front();
    }
    QueueDepth.add(-1);
    {
      MetricTimer Timer(TaskUs);
      Task(); // Exceptions land in the task's future.
    }
  }
}

std::future<void> ThreadPool::submit(std::function<void()> Task) {
  std::packaged_task<void()> Packaged(
      [Task = std::move(Task)] {
        if (Status S = Failpoint::hit("threadpool-dispatch"); !S.isOk())
          throw std::runtime_error(S.message());
        Task();
      });
  std::future<void> Result = Packaged.get_future();
  NumDispatches.add();
  if (NumWorkers == 1) {
    MetricTimer Timer(TaskUs);
    Packaged(); // Serial fallback: run on the caller, eagerly.
    return Result;
  }
  Worker *W;
  {
    std::lock_guard<std::mutex> Lock(SubmitMutex);
    W = Workers[NextWorker].get();
    NextWorker = (NextWorker + 1) % Workers.size();
  }
  {
    std::lock_guard<std::mutex> Lock(W->Mutex);
    W->Queue.push_back(std::move(Packaged));
  }
  QueueDepth.addHighWater(1);
  W->WorkAvailable.notify_one();
  return Result;
}

void ThreadPool::parallelFor(
    size_t N, const std::function<void(size_t Begin, size_t End)> &Body) {
  if (N == 0)
    return;
  if (NumWorkers == 1) {
    Body(0, N);
    return;
  }
  size_t NumChunks = std::min<size_t>(NumWorkers, N);
  std::vector<std::future<void>> Futures;
  Futures.reserve(NumChunks);
  for (size_t C = 0; C < NumChunks; ++C) {
    size_t Begin = C * N / NumChunks;
    size_t End = (C + 1) * N / NumChunks;
    Futures.push_back(submit([&Body, Begin, End] { Body(Begin, End); }));
  }
  // Wait for everything, then rethrow the lowest-indexed chunk's
  // exception so the choice of surfaced error is deterministic.
  std::exception_ptr First;
  for (std::future<void> &F : Futures) {
    try {
      F.get();
    } catch (...) {
      if (!First)
        First = std::current_exception();
    }
  }
  if (First)
    std::rethrow_exception(First);
}
