//===- support/Diagnostic.cpp - Structured diagnostics --------------------===//
//
// Part of the Cable reproduction of "Debugging Temporal Specifications with
// Concept Analysis" (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/Diagnostic.h"

using namespace cable;

const char *cable::errorCodeName(ErrorCode Code) {
  switch (Code) {
  case ErrorCode::Ok:
    return "ok";
  case ErrorCode::InvalidArgument:
    return "invalid-argument";
  case ErrorCode::ParseError:
    return "parse-error";
  case ErrorCode::NotFound:
    return "not-found";
  case ErrorCode::ResourceExhausted:
    return "resource-exhausted";
  case ErrorCode::Cancelled:
    return "cancelled";
  case ErrorCode::IoError:
    return "io-error";
  case ErrorCode::Internal:
    return "internal";
  }
  return "unknown";
}

const char *cable::severityName(Severity S) {
  switch (S) {
  case Severity::Note:
    return "note";
  case Severity::Warning:
    return "warning";
  case Severity::Error:
    return "error";
  case Severity::Fatal:
    return "fatal";
  }
  return "unknown";
}

std::string Diagnostic::render() const {
  std::string Out;
  if (!File.empty()) {
    Out += File;
    Out += ':';
  }
  if (Pos.valid()) {
    Out += std::to_string(Pos.Line);
    Out += ':';
    if (Pos.hasCol()) {
      Out += std::to_string(Pos.Col);
      Out += ':';
    }
  }
  if (!Out.empty())
    Out += ' ';
  Out += severityName(Level);
  Out += ": ";
  Out += Message;
  if (Code != ErrorCode::Ok) {
    Out += " [";
    Out += errorCodeName(Code);
    Out += ']';
  }
  return Out;
}
